// Command benchdiff compares two BENCH_*.json measurement files and fails
// when any wall-time leaf regressed beyond a threshold. It is
// shape-agnostic: both files are walked generically and every numeric
// leaf whose key ends in "_ms" is matched by its JSON path (object keys
// joined with '.', array elements keyed by the sibling string fields that
// identify them, falling back to the index). Leaves present in only one
// file are reported but do not fail the run — experiments grow columns.
//
// Usage:
//
//	benchdiff OLD.json NEW.json [threshold-pct]
//
// threshold-pct defaults to 10: a new wall time above old*1.10 fails.
// Zero or negative old values never fail (nothing meaningful to compare).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 2 || len(args) > 3 {
		return fmt.Errorf("usage: benchdiff OLD.json NEW.json [threshold-pct]")
	}
	threshold := 10.0
	if len(args) == 3 {
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad threshold %q: %w", args[2], err)
		}
		threshold = v
	}
	old, err := load(args[0])
	if err != nil {
		return err
	}
	new_, err := load(args[1])
	if err != nil {
		return err
	}
	oldMS, newMS := map[string]float64{}, map[string]float64{}
	collect(old, "", oldMS)
	collect(new_, "", newMS)

	paths := make([]string, 0, len(oldMS))
	for p := range oldMS {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	regressions := 0
	for _, p := range paths {
		o := oldMS[p]
		n, ok := newMS[p]
		if !ok {
			fmt.Printf("MISSING  %-60s old %.3fms, absent in new\n", p, o)
			continue
		}
		delta := 0.0
		if o > 0 {
			delta = 100 * (n - o) / o
		}
		status := "ok"
		if o > 0 && n > o*(1+threshold/100) {
			status = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-10s %-60s %10.3fms -> %10.3fms  %+7.1f%%\n", status, p, o, n, delta)
	}
	for p, n := range newMS {
		if _, ok := oldMS[p]; !ok {
			fmt.Printf("NEW      %-60s %.3fms (no baseline)\n", p, n)
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d wall-time leaves regressed more than %.0f%%", regressions, threshold)
	}
	fmt.Printf("no wall-time regressions beyond %.0f%%\n", threshold)
	return nil
}

func load(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

// collect walks v and records every numeric leaf whose key ends in "_ms"
// under its identifying path.
func collect(v any, path string, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			if f, ok := child.(float64); ok && strings.HasSuffix(k, "_ms") {
				out[p] = f
				continue
			}
			collect(child, p, out)
		}
	case []any:
		for i, child := range x {
			collect(child, path+"."+elemKey(child, i), out)
		}
	}
}

// elemKey identifies an array element by its string-valued fields (e.g.
// {"workload":"dense","operator":"join"} -> "dense/join"), falling back
// to the index, so reordered result arrays still match up.
func elemKey(v any, i int) string {
	m, ok := v.(map[string]any)
	if !ok {
		return strconv.Itoa(i)
	}
	keys := make([]string, 0, len(m))
	for k, val := range m {
		if _, isStr := val.(string); isStr {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return strconv.Itoa(i)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for j, k := range keys {
		parts[j] = m[k].(string)
	}
	return strings.Join(parts, "/")
}
