#!/bin/sh
# benchdiff.sh OLD.json NEW.json [threshold-pct]
#
# Compares two BENCH_*.json measurement files (any cdbbench -json shape)
# and exits nonzero when a wall-time leaf regressed beyond the threshold
# (default 10%). Thin wrapper over scripts/benchdiff.
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/benchdiff "$@"
