#!/bin/sh
# Full local gate: vet plus the race-enabled test suite. The race run is
# what protects the parallel execution layer (internal/exec and the *Ctx
# operators in internal/cqa) and the sharded sat-cache
# (internal/constraint SatCache) — run it before sending any change that
# touches them.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go test -race ./...'
go test -race ./...

# A focused second pass over the canonical-kernel and observability
# packages with a higher -count: the sat-cache, the *Ctx operators and
# the span/metrics plumbing are where fresh races would live, and
# repetition shakes out scheduling-dependent ones cheaply.
echo '>> go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation ./internal/obs'
go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation ./internal/obs

# Corpus replay: the committed fuzz corpora under testdata/fuzz/ run as
# ordinary seed inputs here — every input that ever broke the parsers or
# the canonical kernel stays fixed without a long -fuzz session.
echo '>> fuzz corpus replay'
go test -run Fuzz -count=1 ./internal/constraint ./internal/query ./internal/calculus

# CLI smoke: both binaries must build and execute an end-to-end run —
# cqacdb with the observability flags on, cdbbench on the cqa experiment
# and on a short differential run against the semantic oracle.
echo '>> cli smoke'
go build -o /dev/null ./cmd/cqacdb ./cmd/cdbbench
go run ./cmd/cqacdb -demo hurricane -explain -stats \
    -e 'R = select landId = A from Landownership' >/dev/null
go run ./cmd/cdbbench -expt cqa -par 2 -cqasize 8 >/dev/null
go run ./cmd/cdbbench -expt diff -n 25 -seed 7 -par 2 >/dev/null

# Prune smoke: the filter-and-refine experiment checks filtered output is
# byte-identical to the dense loop on every workload shape, then benchdiff
# self-compares the JSON (validates the regression tool without wall-time
# flakiness).
echo '>> prune smoke'
go run ./cmd/cdbbench -expt prune -cqasize 16 -rounds 1 \
    -json /tmp/cdb_prune_smoke.json >/dev/null
scripts/benchdiff.sh /tmp/cdb_prune_smoke.json /tmp/cdb_prune_smoke.json >/dev/null
echo 'OK'
