#!/bin/sh
# Full local gate: vet plus the race-enabled test suite. The race run is
# what protects the parallel execution layer (internal/exec and the *Ctx
# operators in internal/cqa) and the sharded sat-cache
# (internal/constraint SatCache) — run it before sending any change that
# touches them.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go test -race ./...'
go test -race ./...

# A focused second pass over the canonical-kernel, observability and
# snapshot packages with a higher -count: the sat-cache, the *Ctx
# operators, the span/metrics plumbing and the snapshot store's
# commit/fork/release paths are where fresh races would live, and
# repetition shakes out scheduling-dependent ones cheaply.
echo '>> go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation ./internal/obs ./internal/server ./internal/snapshot ./internal/vector'
go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation ./internal/obs ./internal/server ./internal/snapshot ./internal/vector

# Corpus replay: the committed fuzz corpora under testdata/fuzz/ run as
# ordinary seed inputs here — every input that ever broke the parsers,
# the canonical kernel or the snapshot WAL stays fixed without a long
# -fuzz session.
echo '>> fuzz corpus replay'
go test -run Fuzz -count=1 ./internal/constraint ./internal/query ./internal/calculus ./internal/snapshot ./internal/vector

# CLI smoke: both binaries must build and execute an end-to-end run —
# cqacdb with the observability flags on, cdbbench on the cqa experiment
# and on a short differential run against the semantic oracle.
echo '>> cli smoke'
go build -o /dev/null ./cmd/cqacdb ./cmd/cdbbench
go run ./cmd/cqacdb -demo hurricane -explain -stats \
    -e 'R = select landId = A from Landownership' >/dev/null
go run ./cmd/cdbbench -expt cqa -par 2 -cqasize 8 >/dev/null
go run ./cmd/cdbbench -expt diff -n 25 -seed 7 -par 2 >/dev/null

# Server smoke: boot the real cqacdbd on a free port, open a session, run
# the case-study query, scrape /metrics, then SIGTERM it and require a
# clean drain (exit 0 + the "bye" line).
echo '>> server smoke'
go build -o /tmp/cdb_cqacdbd ./cmd/cqacdbd
/tmp/cdb_cqacdbd -demo hurricane -addr 127.0.0.1:0 -quiet \
    > /tmp/cdb_cqacdbd.out 2>&1 &
SRV_PID=$!
BASE=''
for _ in $(seq 1 100); do
    BASE=$(sed -n 's#^cqacdbd listening on \(http://.*\)$#\1#p' /tmp/cdb_cqacdbd.out)
    [ -n "$BASE" ] && break
    sleep 0.05
done
[ -n "$BASE" ] || { echo 'server never printed its listen line'; kill "$SRV_PID"; exit 1; }
SID=$(curl -s -X POST "$BASE/v1/sessions" -d '{"par": 2}' \
      | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$SID" ] || { echo 'session create failed'; kill "$SRV_PID"; exit 1; }
curl -s "$BASE/v1/query" -d '{
  "session": "'"$SID"'",
  "query": "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"
}' | grep -q '"count": 4' || { echo 'case-study query wrong'; kill "$SRV_PID"; exit 1; }
curl -s "$BASE/metrics" | grep -q '^cqacdbd_queries_total 1$' \
    || { echo '/metrics missing query counter'; kill "$SRV_PID"; exit 1; }
# Flight recorder: the finished query must show up in the bounded
# history with a terminal outcome, and the human view must render.
curl -s "$BASE/v1/queries/recent" | grep -q '"outcome": "ok"' \
    || { echo 'queries/recent missing the finished query'; kill "$SRV_PID"; exit 1; }
curl -s "$BASE/debug/queries" | grep -q 'recent queries' \
    || { echo '/debug/queries not rendering'; kill "$SRV_PID"; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo 'server exited non-zero'; exit 1; }
grep -q 'cqacdbd: bye' /tmp/cdb_cqacdbd.out || { echo 'no graceful drain'; exit 1; }

# Snapshot smoke: the copy-on-write store survives a real kill -9.
# Phase 1 commits a snapshot of the hurricane db and drains cleanly.
# Phase 2 restarts with the crash hook armed (-snapshot-fault wal:1: the
# first WAL append writes a torn prefix and hangs) and kill -9s the
# daemon mid-commit. Phase 3 reopens the same store and requires the
# phase-1 snapshot intact, forkable and queryable through a bound
# session — old state, never a torn mix.
echo '>> snapshot smoke'
SNAPDIR=$(mktemp -d /tmp/cdb_snapsmoke.XXXXXX)
trap 'rm -rf "$SNAPDIR"' EXIT
/tmp/cdb_cqacdbd -demo hurricane -addr 127.0.0.1:0 -quiet -snapshot-dir "$SNAPDIR" \
    > /tmp/cdb_snap1.out 2>&1 &
SRV_PID=$!
BASE=''
for _ in $(seq 1 100); do
    BASE=$(sed -n 's#^cqacdbd listening on \(http://.*\)$#\1#p' /tmp/cdb_snap1.out)
    [ -n "$BASE" ] && break
    sleep 0.05
done
[ -n "$BASE" ] || { echo 'phase 1: no listen line'; kill "$SRV_PID"; exit 1; }
SNAP=$(curl -s -X POST "$BASE/v1/dbs/hurricane/snapshots" \
       | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$SNAP" ] || { echo 'phase 1: snapshot commit failed'; kill "$SRV_PID"; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo 'phase 1: server exited non-zero'; exit 1; }

/tmp/cdb_cqacdbd -demo hurricane -addr 127.0.0.1:0 -quiet \
    -snapshot-dir "$SNAPDIR" -snapshot-fault wal:1 \
    > /tmp/cdb_snap2.out 2>&1 &
SRV_PID=$!
BASE=''
for _ in $(seq 1 100); do
    BASE=$(sed -n 's#^cqacdbd listening on \(http://.*\)$#\1#p' /tmp/cdb_snap2.out)
    [ -n "$BASE" ] && break
    sleep 0.05
done
[ -n "$BASE" ] || { echo 'phase 2: no listen line'; kill -9 "$SRV_PID"; exit 1; }
# This commit hits the armed fault: the WAL append writes a torn prefix
# and hangs, holding the daemon mid-commit for the kill below.
curl -s -m 10 -X POST "$BASE/v1/dbs/hurricane/snapshots" >/dev/null 2>&1 &
CURL_PID=$!
sleep 1
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
wait "$CURL_PID" 2>/dev/null || true

/tmp/cdb_cqacdbd -demo hurricane -addr 127.0.0.1:0 -quiet -snapshot-dir "$SNAPDIR" \
    > /tmp/cdb_snap3.out 2>&1 &
SRV_PID=$!
BASE=''
for _ in $(seq 1 100); do
    BASE=$(sed -n 's#^cqacdbd listening on \(http://.*\)$#\1#p' /tmp/cdb_snap3.out)
    [ -n "$BASE" ] && break
    sleep 0.05
done
[ -n "$BASE" ] || { echo 'phase 3: store did not reopen after kill -9'; kill -9 "$SRV_PID" 2>/dev/null; exit 1; }
curl -s "$BASE/v1/snapshots" | grep -q "\"$SNAP\"" \
    || { echo "phase 3: snapshot $SNAP lost in the crash"; kill "$SRV_PID"; exit 1; }
FORK=$(curl -s -X POST "$BASE/v1/snapshots/$SNAP/fork" \
       | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$FORK" ] || { echo 'phase 3: fork failed'; kill "$SRV_PID"; exit 1; }
SID=$(curl -s -X POST "$BASE/v1/sessions" -d '{"snapshot": "'"$FORK"'", "par": 2}' \
      | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$SID" ] || { echo 'phase 3: snapshot-bound session failed'; kill "$SRV_PID"; exit 1; }
curl -s "$BASE/v1/query" -d '{
  "session": "'"$SID"'",
  "query": "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"
}' | grep -q '"count": 4' || { echo 'phase 3: query on recovered fork wrong'; kill "$SRV_PID"; exit 1; }
kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo 'phase 3: server exited non-zero'; exit 1; }
# The committed snapshot measurement file must stay diffable against a
# fresh (small) run, same shape guard as the prune/plan files below.
go run ./cmd/cdbbench -expt snapshot -cqasize 8 -rounds 1 \
    -json /tmp/cdb_snap_smoke.json >/dev/null
scripts/benchdiff.sh /tmp/cdb_snap_smoke.json /tmp/cdb_snap_smoke.json >/dev/null
scripts/benchdiff.sh BENCH_snapshot.json /tmp/cdb_snap_smoke.json 1000000 >/dev/null

# Prune smoke: the filter-and-refine experiment checks filtered output is
# byte-identical to the dense loop on every workload shape, then benchdiff
# self-compares the JSON (validates the regression tool without wall-time
# flakiness).
echo '>> prune smoke'
go run ./cmd/cdbbench -expt prune -cqasize 16 -rounds 1 \
    -json /tmp/cdb_prune_smoke.json >/dev/null
scripts/benchdiff.sh /tmp/cdb_prune_smoke.json /tmp/cdb_prune_smoke.json >/dev/null
# The committed measurement file must stay diffable against a fresh run
# (guards the JSON shape `make bench-all` writes). The huge threshold
# means only shape breakage fails, never machine-speed variance;
# leaves that exist only at the committed -cqasize report MISSING and
# pass by design.
scripts/benchdiff.sh BENCH_prune.json /tmp/cdb_prune_smoke.json 1000000 >/dev/null

# Plan smoke: the physical-planner experiment forces every pairing
# strategy (dense, sweep, index) against the cost model's auto pick and
# fails inside cdbbench unless all outputs are byte-identical; benchdiff
# then self-compares the JSON so the plan measurements stay diffable. The
# 200-case oracle run guards the planner end to end: cost rewrites plus
# strategy switching against the naive reference evaluator, zero
# disagreements allowed.
echo '>> plan smoke'
go run ./cmd/cdbbench -expt plan -cqasize 16 -rounds 1 \
    -json /tmp/cdb_plan_smoke.json >/dev/null
scripts/benchdiff.sh /tmp/cdb_plan_smoke.json /tmp/cdb_plan_smoke.json >/dev/null
scripts/benchdiff.sh BENCH_plan.json /tmp/cdb_plan_smoke.json 1000000 >/dev/null
go run ./cmd/cdbbench -expt diff -n 200 -seed 3 -par 2 >/dev/null

# Vector smoke: the vector experiment forces every spatial decision
# through exact polygon clipping against the pure-FM baseline and fails
# inside cdbbench unless outputs are byte-identical; benchdiff then
# self-compares the JSON and shape-guards the committed BENCH_vector.json.
# The 200-case spatial oracle run drives polygon workloads through the
# forced vector path against the naive reference evaluator — clipper,
# float filter, scoped staircase and FM fallback all end to end, zero
# disagreements allowed.
echo '>> vector smoke'
go run ./cmd/cdbbench -expt vector -cqasize 16 -rounds 1 \
    -json /tmp/cdb_vector_smoke.json >/dev/null
scripts/benchdiff.sh /tmp/cdb_vector_smoke.json /tmp/cdb_vector_smoke.json >/dev/null
scripts/benchdiff.sh BENCH_vector.json /tmp/cdb_vector_smoke.json 1000000 >/dev/null
go run ./cmd/cdbbench -expt diff -n 200 -seed 5 -par 2 -spatial -plan vector >/dev/null
echo 'OK'
