#!/bin/sh
# Full local gate: vet plus the race-enabled test suite. The race run is
# what protects the parallel execution layer (internal/exec and the *Ctx
# operators in internal/cqa) and the sharded sat-cache
# (internal/constraint SatCache) — run it before sending any change that
# touches them.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go test -race ./...'
go test -race ./...

# A focused second pass over the canonical-kernel packages with a higher
# -count: the sat-cache and the *Ctx operators are where fresh races
# would live, and repetition shakes out scheduling-dependent ones cheaply.
echo '>> go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation'
go test -race -count=2 ./internal/constraint ./internal/exec ./internal/cqa ./internal/relation
echo 'OK'
