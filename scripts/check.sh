#!/bin/sh
# Full local gate: vet plus the race-enabled test suite. The race run is
# what protects the parallel execution layer (internal/exec and the *Ctx
# operators in internal/cqa) — run it before sending any change that
# touches them.
set -eu
cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...
echo '>> go test -race ./...'
go test -race ./...
echo 'OK'
