package cdb

// This file is the benchmark harness mandated by DESIGN.md: one bench per
// paper table/figure plus the ablation benches for the design decisions
// DESIGN.md calls out. The per-figure benches pre-build the indexing
// structures once and replay the paper's query files per iteration,
// reporting the paper's metric (disk accesses per query) as a custom
// benchmark metric, so `go test -bench=.` regenerates every figure's
// headline numbers. cmd/cdbbench renders the full bucketed series.
//
// Scale note: benches run at 1/5 of the paper scale (2,000 boxes) so the
// suite stays fast; cmd/cdbbench runs the full 10,000-box workload. The
// shapes are identical at both scales (see EXPERIMENTS.md).

import (
	"fmt"
	"sync"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/exec"
	"cdb/internal/geometry"
	"cdb/internal/hurricane"
	"cdb/internal/query"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/rstar"
	"cdb/internal/schema"
	"cdb/internal/spatial"
	"cdb/internal/storage"
)

const benchPageSize = 512

func benchParams() datagen.Params {
	return datagen.Scaled(5) // 2,000 boxes, 20+ queries
}

// figureFixture holds pre-built indexes for one experiment configuration.
type figureFixture struct {
	joint   *rstar.JointIndex
	sep     *rstar.SeparateIndex
	queries []rstar.Rect
}

var fixtureCache sync.Map // string -> *figureFixture

func getFixture(b *testing.B, key string, data, queries []rstar.Rect) *figureFixture {
	b.Helper()
	if v, ok := fixtureCache.Load(key); ok {
		return v.(*figureFixture)
	}
	joint, err := rstar.NewJointIndex(2, benchPageSize, rstar.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sep, err := rstar.NewSeparateIndex(2, benchPageSize, rstar.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i, r := range data {
		if err := joint.Add(r, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := sep.Add(r, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	f := &figureFixture{joint: joint, sep: sep, queries: queries}
	fixtureCache.Store(key, f)
	return f
}

// replay runs the query file against both strategies and reports the
// paper's metric.
func replay(b *testing.B, f *figureFixture) {
	b.Helper()
	b.ResetTimer()
	var joint, sep uint64
	var queries int
	for i := 0; i < b.N; i++ {
		for _, q := range f.queries {
			_, aj, err := f.joint.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			_, as, err := f.sep.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			joint += aj
			sep += as
			queries++
		}
	}
	b.ReportMetric(float64(joint)/float64(queries), "joint-accesses/query")
	b.ReportMetric(float64(sep)/float64(queries), "separate-accesses/query")
}

// BenchmarkFigure4A regenerates Figure 4 / experiment 1-A: constraint
// attributes, queries restricting both attributes. Expected shape: joint
// accesses well below separate.
func BenchmarkFigure4A(b *testing.B) {
	p := benchParams()
	replay(b, getFixture(b, "4A", datagen.Boxes(p), datagen.TwoAttrQueries(p)))
}

// BenchmarkFigure4B regenerates Figure 4 / experiment 1-B: relational
// attributes (degenerate boxes), two-attribute queries.
func BenchmarkFigure4B(b *testing.B) {
	p := benchParams()
	replay(b, getFixture(b, "4B", datagen.Points(p), datagen.TwoAttrQueries(p)))
}

// BenchmarkFigure5A regenerates Figure 5 / experiment 2-A: constraint
// attributes, one-attribute queries. Expected shape: separate below joint.
func BenchmarkFigure5A(b *testing.B) {
	p := benchParams()
	replay(b, getFixture(b, "5A", datagen.Boxes(p), datagen.OneAttrQueries(p, 0)))
}

// BenchmarkFigure5B regenerates Figure 5 / experiment 2-B: relational
// attributes, one-attribute queries.
func BenchmarkFigure5B(b *testing.B) {
	p := benchParams()
	replay(b, getFixture(b, "5B", datagen.Points(p), datagen.OneAttrQueries(p, 0)))
}

// BenchmarkExperiment3 regenerates the inferred 500-query mixed workload.
func BenchmarkExperiment3(b *testing.B) {
	p := benchParams()
	p.NumQueries *= 5
	replay(b, getFixture(b, "E3", datagen.Boxes(p), datagen.MixedQueries(p)))
}

// BenchmarkCornerCase regenerates the §5.3 adversarial workload: the gap
// between the two metrics is the paper's "linear to logarithmic" claim.
func BenchmarkCornerCase(b *testing.B) {
	p := benchParams()
	var queries []rstar.Rect
	for i := 0; i < p.NumQueries; i++ {
		a := p.CoordMax * float64(i+1) / float64(p.NumQueries+1)
		queries = append(queries, rstar.Rect2(-1e308, a, a, 1e308))
	}
	replay(b, getFixture(b, "corner", datagen.DiagonalBoxes(p), queries))
}

// --- ablation benches (DESIGN.md §6) ---

// BenchmarkAblationReinsert quantifies R* forced reinsertion: the same
// workload on trees built with and without it.
func BenchmarkAblationReinsert(b *testing.B) {
	p := benchParams()
	data := datagen.Boxes(p)
	queries := datagen.TwoAttrQueries(p)
	for _, cfg := range []struct {
		name string
		opts rstar.Options
	}{
		{"reinsert-on", rstar.Options{}},
		{"reinsert-off", rstar.Options{DisableReinsert: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			joint, err := rstar.NewJointIndex(2, benchPageSize, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			for i, r := range data {
				if err := joint.Add(r, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var accesses uint64
			var n int
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					_, a, err := joint.Query(q)
					if err != nil {
						b.Fatal(err)
					}
					accesses += a
					n++
				}
			}
			b.ReportMetric(float64(accesses)/float64(n), "accesses/query")
		})
	}
}

// ablationSystem builds a conjunction whose elimination blows up without
// the redundancy sweep.
func ablationSystem(nVars, nCons int) constraint.Conjunction {
	var cs []constraint.Constraint
	for i := 0; i < nCons; i++ {
		e := constraint.Expr{}
		for v := 0; v < nVars; v++ {
			coef := rational.FromInt(int64((i*7+v*3)%5 - 2))
			e = e.Add(constraint.Var(fmt.Sprintf("v%d", v)).Scale(coef))
		}
		cs = append(cs, constraint.Constraint{
			Expr: e.AddConst(rational.FromInt(int64(i%11 - 5))), Op: constraint.Le})
	}
	return constraint.And(cs...)
}

// BenchmarkAblationFMRedundancySweep: Fourier-Motzkin elimination with and
// without the per-step redundancy sweep.
func BenchmarkAblationFMRedundancySweep(b *testing.B) {
	j := ablationSystem(4, 10)
	vars := []string{"v1", "v2", "v3"}
	b.Run("sweep-on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := j.Eliminate(vars...)
			b.ReportMetric(float64(out.Len()), "output-constraints")
		}
	})
	b.Run("sweep-off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := j.EliminateNoSweep(vars...)
			b.ReportMetric(float64(out.Len()), "output-constraints")
		}
	})
}

// BenchmarkAblationDifferencePruning: tuple difference with eager vs. lazy
// satisfiability pruning of the complement expansion.
func BenchmarkAblationDifferencePruning(b *testing.B) {
	mkBox := func(lo int64) constraint.Conjunction {
		return constraint.And(
			constraint.GeConst("x", rational.FromInt(lo)),
			constraint.LeConst("x", rational.FromInt(lo+4)),
			constraint.GeConst("y", rational.FromInt(lo)),
			constraint.LeConst("y", rational.FromInt(lo+4)),
		)
	}
	big := mkBox(0)
	sub := constraint.And(
		constraint.GeConst("x", rational.FromInt(1)),
		constraint.LeConst("x", rational.FromInt(2)),
		constraint.GeConst("y", rational.FromInt(1)),
		constraint.LeConst("y", rational.FromInt(2)),
	)
	b.Run("eager-prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := constraint.Subtract(big, sub)
			b.ReportMetric(float64(len(d)), "disjuncts")
		}
	})
	b.Run("lazy-prune", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := constraint.SubtractLazy(big, sub)
			b.ReportMetric(float64(len(d)), "disjuncts")
		}
	})
}

// BenchmarkAblationBufferJoinIndex: plain O(n·m) Buffer-Join vs. the
// R*-tree-accelerated variant.
func BenchmarkAblationBufferJoinIndex(b *testing.B) {
	mkLayers := func() (*spatial.Layer, *spatial.Layer) {
		a, c := spatial.NewLayer("a"), spatial.NewLayer("b")
		for i := 0; i < 150; i++ {
			x := int64((i * 37) % 900)
			y := int64((i * 53) % 900)
			a.MustAdd(spatial.Feature{ID: fmt.Sprintf("a%d", i),
				Geom: spatial.RegionGeom(geometry.RectPoly(x, y, x+8, y+8))})
			c.MustAdd(spatial.Feature{ID: fmt.Sprintf("b%d", i),
				Geom: spatial.PointGeom(geometry.Pt((x+400)%900, (y+300)%900))})
		}
		return a, c
	}
	l1, l2 := mkLayers()
	d := rational.FromInt(25)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spatial.BufferJoin(l1, l2, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := spatial.BufferJoinIndexed(l1, l2, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBulkLoad compares query accesses on an STR bulk-loaded
// tree vs. the same data inserted one at a time (node fill / clustering
// effect).
func BenchmarkAblationBulkLoad(b *testing.B) {
	p := benchParams()
	data := datagen.Boxes(p)
	queries := datagen.TwoAttrQueries(p)
	items := make([]rstar.BulkItem, len(data))
	for i, r := range data {
		items[i] = rstar.BulkItem{Rect: r, Data: int64(i)}
	}
	run := func(b *testing.B, tree *rstar.Tree, pager *storage.MemPager) {
		b.Helper()
		b.ResetTimer()
		var accesses uint64
		var n int
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				before := pager.Stats().Reads
				if _, err := tree.Search(q); err != nil {
					b.Fatal(err)
				}
				accesses += pager.Stats().Reads - before
				n++
			}
		}
		b.ReportMetric(float64(accesses)/float64(n), "accesses/query")
	}
	b.Run("bulk-str", func(b *testing.B) {
		pager := storage.NewMemPager(benchPageSize)
		tree, err := rstar.BulkLoad(pager, 2, items, rstar.Options{})
		if err != nil {
			b.Fatal(err)
		}
		run(b, tree, pager)
	})
	b.Run("incremental", func(b *testing.B) {
		pager := storage.NewMemPager(benchPageSize)
		tree, err := rstar.New(pager, 2, rstar.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if err := tree.Insert(it.Rect, it.Data); err != nil {
				b.Fatal(err)
			}
		}
		run(b, tree, pager)
	})
}

// --- core-engine micro benches (throughput context for the figures) ---

func benchRelation(n int) *relation.Relation {
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	for i := 0; i < n; i++ {
		lo := int64(i % 100)
		r.MustAdd(relation.NewTuple(
			map[string]relation.Value{"id": relation.Str(fmt.Sprintf("f%d", i))},
			constraint.And(
				constraint.GeConst("x", rational.FromInt(lo)),
				constraint.LeConst("x", rational.FromInt(lo+10)),
				constraint.GeConst("y", rational.FromInt(lo/2)),
				constraint.LeConst("y", rational.FromInt(lo/2+10)),
			)))
	}
	return r
}

// BenchmarkCQASelect measures select throughput over constraint tuples.
func BenchmarkCQASelect(b *testing.B) {
	r := benchRelation(500)
	cond := cqa.Condition{cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(50))}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cqa.Select(r, cond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCQAProject measures projection (Fourier-Motzkin per tuple).
func BenchmarkCQAProject(b *testing.B) {
	r := benchRelation(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cqa.Project(r, "id", "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCQAJoin measures the natural join of two 60-tuple relations.
func BenchmarkCQAJoin(b *testing.B) {
	r1 := benchRelation(60)
	r2 := benchRelation(60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cqa.Join(r1, r2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryParse measures the ASCII front end.
func BenchmarkQueryParse(b *testing.B) {
	src := `R0 = join Landownership and Land
R1 = join R0 and Hurricane
R2 = select t >= 4, t <= 9, x + 2y <= 30 from R1
R3 = project R2 on name`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHurricaneSuite runs all five case-study queries end to end.
func BenchmarkHurricaneSuite(b *testing.B) {
	d := hurricane.Build()
	qs := hurricane.Queries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nq := range qs {
			if _, err := d.Run(nq.Text); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- parallel execution benches (internal/exec worker pool) ---

// parBenchInputs builds two workload-derived constraint relations with no
// shared relational attribute, so the natural join degenerates to the
// worst case: every one of the n×n tuple pairs reaches the merge +
// satisfiability check that the exec layer fans out.
func parBenchInputs(b *testing.B, n int) (*relation.Relation, *relation.Relation) {
	b.Helper()
	p := datagen.Scaled(10)
	r1 := datagen.BoxRelation(p, n, 0)
	p2 := p
	p2.Seed += 1000
	r2, err := cqa.Rename(datagen.BoxRelation(p2, n, 0), "id", "id2")
	if err != nil {
		b.Fatal(err)
	}
	return r1, r2
}

// parWorkerCounts are the pool sizes the parallel benches sweep; compare
// workers=1 (sequential) against workers=4 for the speedup headline.
var parWorkerCounts = []int{1, 2, 4}

func benchOpParallel(b *testing.B, run func(ec *exec.Context) error) {
	b.Helper()
	for _, workers := range parWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ec := exec.New(workers)
			ec.SeqThreshold = 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(ec); err != nil {
					b.Fatal(err)
				}
				ec.Reset()
			}
		})
	}
}

// BenchmarkJoinParallel: natural join over 40×40 = 1,600 tuple pairs,
// every pair satisfiability-checked, at 1/2/4 workers.
func BenchmarkJoinParallel(b *testing.B) {
	r1, r2 := parBenchInputs(b, 40)
	benchOpParallel(b, func(ec *exec.Context) error {
		_, err := cqa.JoinCtx(ec, r1, r2)
		return err
	})
}

// BenchmarkIntersectParallel: intersection (join of equal schemas) of two
// 40-tuple relations.
func BenchmarkIntersectParallel(b *testing.B) {
	p := datagen.Scaled(10)
	r1 := datagen.BoxRelation(p, 40, 0)
	p2 := p
	p2.Seed += 1000
	r2 := datagen.BoxRelation(p2, 40, 0)
	benchOpParallel(b, func(ec *exec.Context) error {
		_, err := cqa.IntersectCtx(ec, r1, r2)
		return err
	})
}

// BenchmarkSelectParallel: selection with a !=-split atom over 1,000
// constraint tuples.
func BenchmarkSelectParallel(b *testing.B) {
	p := datagen.Scaled(1)
	r := datagen.BoxRelation(p, 1000, 0)
	cond := cqa.Condition{
		cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(1500)),
		cqa.AttrCmpConst("y", cqa.OpNe, rational.FromInt(700)),
	}
	benchOpParallel(b, func(ec *exec.Context) error {
		_, err := cqa.SelectCtx(ec, r, cond)
		return err
	})
}

// BenchmarkDifferenceParallel: difference with repeated relational parts
// (idMod 8), so tuples subtract full complement expansions.
func BenchmarkDifferenceParallel(b *testing.B) {
	p := datagen.Scaled(10)
	r1 := datagen.BoxRelation(p, 120, 8)
	p2 := p
	p2.Seed += 1000
	r2 := datagen.BoxRelation(p2, 60, 8)
	benchOpParallel(b, func(ec *exec.Context) error {
		_, err := cqa.DifferenceCtx(ec, r1, r2)
		return err
	})
}

// BenchmarkJoinTupleMerge compares the fused single-allocation relational
// merge (relation.JoinTuple, what joinCtx's refine step uses) against the
// two-copy shape it replaced: t1.RVals() + overlaying t2.RVals() + a
// defensive NewTuple copy. Run with -benchmem; the fused path allocates
// one map where the old shape allocated three.
func BenchmarkJoinTupleMerge(b *testing.B) {
	con := constraint.And(
		constraint.GeConst("x", rational.FromInt(10)),
		constraint.LeConst("x", rational.FromInt(90)),
		constraint.GeConst("y", rational.FromInt(20)),
		constraint.LeConst("y", rational.FromInt(80)),
	).Canon()
	t1 := relation.NewTuple(map[string]relation.Value{
		"id": relation.Str("b1"), "owner": relation.Str("alice"),
	}, con)
	t2 := relation.NewTuple(map[string]relation.Value{
		"id": relation.Str("b1"), "parcel": relation.Str("p9"),
	}, con)
	b.Run("fused", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = relation.JoinTuple(t1, t2, con)
		}
	})
	b.Run("two-copy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := t1.RVals()
			for k, v := range t2.RVals() {
				m[k] = v
			}
			_ = relation.NewTuple(m, con)
		}
	})
}

// BenchmarkJoinPruning: the filter-and-refine join against the dense
// nested loop on the skewed-bucket workload (Zipf relational ids, boxes
// over the full coordinate range) — the shape the candidate filter is
// built for.
func BenchmarkJoinPruning(b *testing.B) {
	p := datagen.Scaled(10)
	r1 := datagen.SkewedBoxRelation(p, 64, 12)
	p2 := p
	p2.Seed += 1000
	r2 := datagen.SkewedBoxRelation(p2, 64, 12)
	for name, noPrune := range map[string]bool{"filtered": false, "dense": true} {
		b.Run(name, func(b *testing.B) {
			ec := &exec.Context{Parallelism: 1, NoPrune: noPrune}
			for i := 0; i < b.N; i++ {
				if _, err := cqa.JoinCtx(ec, r1, r2); err != nil {
					b.Fatal(err)
				}
				ec.Reset()
			}
		})
	}
}
