// Package cdb is the public facade of the CQA/CDB constraint database
// system — a from-scratch Go implementation of the system described in
// "The Constraint Database Framework: Lessons Learned from CQA/CDB"
// (Goldin, Kutlu, Song; ICDE 2003).
//
// The facade re-exports the stable surface of the internal packages:
//
//   - the heterogeneous data model: schemas with the C/R flag
//     (NewSchema, Rel, Con), heterogeneous relations and tuples;
//   - the constraint engine: exact rational arithmetic, linear
//     constraints, conjunctions with satisfiability / entailment /
//     projection;
//   - the Constraint Query Algebra: Select, Project, Join, Union, Rename,
//     Difference, plans and the optimiser;
//   - the query language: Parse / Run of multi-step programs in the
//     paper's ASCII syntax;
//   - the whole-feature spatial operators: BufferJoin, KNearest over
//     feature layers and spatial constraint relations;
//   - the index layer: R*-trees with joint vs. separate strategies and
//     disk-access accounting;
//   - the experiment harness reproducing the paper's Figures 4-5;
//   - the observability layer: query tracing with EXPLAIN ANALYZE-style
//     rendering (Tracer, ExplainTree), metrics with Prometheus/expvar
//     exposition (MetricsRegistry, ServeMetrics).
//
// A minimal end-to-end example:
//
//	d := cdb.NewDatabase()
//	land := cdb.NewRelation(cdb.MustSchema(
//		cdb.Rel("landId", cdb.String), cdb.Con("x"), cdb.Con("y")))
//	// ... add tuples ...
//	d.Put("Land", land)
//	out, err := d.Run(`R = select x >= 5 from Land`)
//
// See the runnable programs under examples/ for complete scenarios.
package cdb

import (
	"cdb/internal/calculus"
	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/db"
	"cdb/internal/exec"
	"cdb/internal/experiments"
	"cdb/internal/geometry"
	"cdb/internal/indefinite"
	"cdb/internal/nested"
	"cdb/internal/obs"
	"cdb/internal/query"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/render"
	"cdb/internal/rstar"
	"cdb/internal/schema"
	"cdb/internal/spatial"
	"cdb/internal/storage"
)

// --- exact rational arithmetic ---

// Rat is an exact rational number (see internal/rational).
type Rat = rational.Rat

// ParseRat parses "42", "3/4" or "2.5" into an exact rational.
func ParseRat(s string) (Rat, error) { return rational.Parse(s) }

// MustRat is ParseRat that panics on error (fixtures, tests).
func MustRat(s string) Rat { return rational.MustParse(s) }

// RatFromInt converts an int64.
func RatFromInt(n int64) Rat { return rational.FromInt(n) }

// --- schemas: the heterogeneous data model ---

// Schema is a heterogeneous relation schema; every attribute carries the
// paper's C/R flag.
type Schema = schema.Schema

// Attribute is one schema column.
type Attribute = schema.Attribute

// Attribute types and kinds.
const (
	String     = schema.String
	Rational   = schema.Rational
	Relational = schema.Relational
	Constraint = schema.Constraint
)

// NewSchema validates and builds a schema.
func NewSchema(attrs ...Attribute) (Schema, error) { return schema.New(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) Schema { return schema.MustNew(attrs...) }

// Rel declares a relational (narrow-semantics) attribute.
func Rel(name string, t schema.Type) Attribute { return schema.Rel(name, t) }

// Con declares a constraint (broad-semantics, rational) attribute.
func Con(name string) Attribute { return schema.Con(name) }

// --- relations and tuples ---

// Relation is a heterogeneous constraint relation.
type Relation = relation.Relation

// Tuple is one heterogeneous constraint tuple.
type Tuple = relation.Tuple

// Value is a concrete relational-attribute value (string, rational, NULL).
type Value = relation.Value

// NewRelation returns an empty relation over the schema.
func NewRelation(s Schema) *Relation { return relation.New(s) }

// NewTuple builds a tuple from relational bindings and a constraint part.
func NewTuple(rvals map[string]Value, con Conjunction) Tuple {
	return relation.NewTuple(rvals, con)
}

// Str, RatVal, Null build relational values.
func Str(s string) Value   { return relation.Str(s) }
func RatVal(r Rat) Value   { return relation.Rat(r) }
func Null() Value          { return relation.Null() }
func IntVal(n int64) Value { return relation.Int(n) }

// --- the constraint engine ---

// Expr is a linear expression over rational attributes.
type Expr = constraint.Expr

// LinearConstraint is one atomic linear constraint.
type LinearConstraint = constraint.Constraint

// Conjunction is a constraint tuple's conjunction of atomic constraints.
type Conjunction = constraint.Conjunction

// VarExpr returns the expression consisting of one variable.
func VarExpr(name string) Expr { return constraint.Var(name) }

// ConstExpr returns a constant expression.
func ConstExpr(r Rat) Expr { return constraint.Const(r) }

// NewConstraint builds lhs op rhs for op in =, <, <=, >, >=.
func NewConstraint(lhs Expr, op string, rhs Expr) (LinearConstraint, error) {
	return constraint.New(lhs, op, rhs)
}

// And conjoins constraints into a constraint tuple.
func And(cs ...LinearConstraint) Conjunction { return constraint.And(cs...) }

// ParseConstraints parses "x >= 0, x + 2y <= 3" into atomic constraints.
func ParseConstraints(src string) ([]LinearConstraint, error) {
	return query.ParseConstraints(src)
}

// --- the algebra (CQA) ---

// Select, Project, Join, Intersect, Union, Rename, Difference are the six
// (plus derived) CQA operators over heterogeneous relations.
var (
	Select     = cqa.Select
	Project    = cqa.Project
	Join       = cqa.Join
	Intersect  = cqa.Intersect
	Union      = cqa.Union
	Rename     = cqa.Rename
	Difference = cqa.Difference
)

// Condition is a conjunction of selection atoms.
type Condition = cqa.Condition

// PlanNode is a CQA plan (expression tree).
type PlanNode = cqa.Node

// Env maps relation names to relations for plan evaluation.
type Env = cqa.Env

// Optimize rewrites a plan (selection pushdown, projection collapse, ...).
func Optimize(n PlanNode, schemas cqa.SchemaEnv) PlanNode { return cqa.Optimize(n, schemas) }

// --- parallel execution (package exec) ---

// ExecContext carries the parallel execution policy (worker-pool size,
// sequential-fallback threshold) and collects per-operator statistics.
// Pass it to the *Ctx operator variants, Database.RunCtx, or
// Program.RunCtx; a nil *ExecContext means sequential with no stats.
// Parallel execution is deterministic: results are byte-identical to the
// sequential path at any parallelism.
type ExecContext = exec.Context

// OpStats is one operator invocation's execution record (tuples in/out,
// satisfiability checks, pruned-unsat count, sat-cache hits/misses, wall
// time).
type OpStats = exec.OpStats

// NewExecContext returns an execution context with the given worker-pool
// size (0 = GOMAXPROCS).
func NewExecContext(parallelism int) *ExecContext { return exec.New(parallelism) }

// --- canonical forms and the memoized satisfiability engine ---

// SatCache is the sharded, bounded-LRU memo of satisfiability decisions,
// keyed by canonical-form fingerprint. Set it on ExecContext.SatCache to
// have every operator's decisions memoized; share one across contexts and
// queries to carry the memo between runs. Safe for concurrent use.
type SatCache = constraint.SatCache

// CacheStats is a point-in-time snapshot of a SatCache's counters.
type CacheStats = constraint.CacheStats

// DefaultSatCacheSize is the entry bound used for non-positive capacities.
const DefaultSatCacheSize = constraint.DefaultSatCacheSize

// NewSatCache returns a sat-cache bounded to roughly capacity entries
// (non-positive = DefaultSatCacheSize).
func NewSatCache(capacity int) *SatCache { return constraint.NewSatCache(capacity) }

// SatDecisionCount returns the number of raw Fourier-Motzkin satisfiability
// decisions made by this process so far — the quantity the sat-cache saves.
// Monotonic; read deltas around a workload.
func SatDecisionCount() int64 { return constraint.DecisionCount() }

// FormatStats renders operator records as an aligned table.
func FormatStats(stats []OpStats) string { return exec.FormatStats(stats) }

// --- observability (package obs) ---

// Tracer collects hierarchical query execution spans. Set it on
// ExecContext.Tracer and every plan node, calculus rule, database
// load/save and pool fan-out records a span; render the result with
// ExplainTree or serialise it with TraceJSON. All tracing APIs are
// nil-safe: a nil Tracer (the default) costs a nil check.
type Tracer = obs.Tracer

// Span is one traced region: named, timed, parent-linked, carrying
// named int64 counters (tuples in/out, sat checks, cache hits, ...).
type Span = obs.Span

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// ExplainTreeOptions tune ExplainTree rendering.
type ExplainTreeOptions = obs.TreeOptions

// ExplainTree renders finished spans as an EXPLAIN ANALYZE-style plan
// tree (what `cqacdb -explain` prints).
func ExplainTree(roots []*Span, opt ExplainTreeOptions) string {
	return obs.FormatTree(roots, opt)
}

// TraceJSON serialises finished spans as a JSON tree.
func TraceJSON(roots []*Span) ([]byte, error) { return obs.TraceJSON(roots) }

// MetricsRegistry is a registry of counters, gauges and histograms with
// Prometheus text and expvar exposition. Install it on an ExecContext
// with InstallMetrics to collect per-operator, sat-cache and FM-decision
// metrics.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsServer is a live observability HTTP listener.
type MetricsServer = obs.Server

// ServeMetrics starts an HTTP listener serving /metrics (Prometheus
// text format), /debug/vars (expvar) and /debug/pprof/... for the
// registry. Close the returned server to stop it.
func ServeMetrics(addr string, reg *MetricsRegistry) (*MetricsServer, error) {
	return obs.ServeMetrics(addr, reg)
}

// SelectCtx, ProjectCtx, JoinCtx, IntersectCtx, UnionCtx, RenameCtx,
// DifferenceCtx are the CQA operators under an execution context: the
// per-tuple(-pair) satisfiability work fans out over the context's worker
// pool and per-operator stats are recorded on it.
var (
	SelectCtx     = cqa.SelectCtx
	ProjectCtx    = cqa.ProjectCtx
	JoinCtx       = cqa.JoinCtx
	IntersectCtx  = cqa.IntersectCtx
	UnionCtx      = cqa.UnionCtx
	RenameCtx     = cqa.RenameCtx
	DifferenceCtx = cqa.DifferenceCtx
)

// --- the query language ---

// Program is a parsed multi-step query in the paper's ASCII syntax.
type Program = query.Program

// ParseQuery parses a multi-statement query program.
func ParseQuery(src string) (*Program, error) { return query.Parse(src) }

// --- the declarative (calculus) front end ---

// RuleProgram is a parsed program of non-recursive conjunctive rules —
// the declarative CQC-style front end that translates to CQA plans.
type RuleProgram = calculus.Program

// ParseRules parses a rule program like
//
//	owned(name, t) :- Landownership(name, t, id), id = "A".
func ParseRules(src string) (*RuleProgram, error) { return calculus.Parse(src) }

// --- rendering (the §6 display conversion) ---

// RenderOptions tune SVG rendering.
type RenderOptions = render.Options

// RenderLayer renders a feature layer as an SVG document.
func RenderLayer(l *Layer, opts RenderOptions) (string, error) {
	return render.Layer(l, opts)
}

// RenderRelation renders a spatial constraint relation as SVG via the §6
// reverse conversion (constraint tuples → vertex lists → outlines).
func RenderRelation(r *Relation, fid, x, y string, opts RenderOptions) (string, error) {
	return render.Relation(r, fid, x, y, opts)
}

// --- nested and indefinite extensions ---

// NestedRelation is the Dedale-style feature-grouped representation (§6):
// relational bindings stored once per feature, extents as nested sets of
// constraint tuples.
type NestedRelation = nested.Relation

// Nest groups a flat relation by its relational part; Unnest (a method on
// NestedRelation) flattens back.
func Nest(r *Relation) *NestedRelation { return nested.Nest(r) }

// IndefiniteRelation reinterprets constraint parts disjunctively (§3.1):
// one satisfying assignment is the truth, queries answer possibly or
// certainly.
type IndefiniteRelation = indefinite.Relation

// Answer modes for indefinite queries.
const (
	Possibly  = indefinite.Possibly
	Certainly = indefinite.Certainly
)

// NewIndefinite wraps a heterogeneous relation as indefinite information,
// rejecting inconsistent tuples.
func NewIndefinite(r *Relation) (*IndefiniteRelation, error) { return indefinite.New(r) }

// --- the catalog ---

// Database is a named collection of relations with text serialisation.
type Database = db.Database

// NewDatabase returns an empty database.
func NewDatabase() *Database { return db.New() }

// LoadDatabase reads a database file in the text format.
func LoadDatabase(path string) (*Database, error) { return db.LoadFile(path) }

// --- spatial layer ---

// Layer is a set of identified spatial features (the vector-side view of
// a spatial constraint relation).
type Layer = spatial.Layer

// Feature, Geometry, Pair, Neighbor are the spatial operator vocabulary.
type (
	Feature  = spatial.Feature
	Geometry = spatial.Geometry
	Pair     = spatial.Pair
	Neighbor = spatial.Neighbor
)

// NewLayer returns an empty feature layer.
func NewLayer(name string) *Layer { return spatial.NewLayer(name) }

// Geometry constructors.
var (
	PointGeom  = spatial.PointGeom
	LineGeom   = spatial.LineGeom
	RegionGeom = spatial.RegionGeom
)

// BufferJoin and KNearest are the paper's safe whole-feature operators;
// Overlaps, CoveredBy and WithinDistOf extend the same family (exact
// predicates, ID-relation outputs).
var (
	BufferJoin   = spatial.BufferJoin
	KNearest     = spatial.KNearest
	Overlaps     = spatial.Overlaps
	CoveredBy    = spatial.CoveredBy
	WithinDistOf = spatial.WithinDistOf
)

// SqDist returns the exact squared Euclidean distance between geometries
// — the rational object the spatial operators compare.
func SqDist(a, b Geometry) Rat { return spatial.SqDist(a, b) }

// DistanceApprox returns the display-only float distance; the exact
// object is SqDist (Euclidean distance is irrational in general, which is
// what makes a raw distance operator unsafe as query output).
func DistanceApprox(a, b Geometry) float64 { return spatial.Distance(a, b) }

// Geometric primitives.
type (
	Point    = geometry.Point
	Segment  = geometry.Segment
	Polyline = geometry.Polyline
	Polygon  = geometry.Polygon
)

// Pt builds an integer point; NewPolygon/NewPolyline validate vertex
// lists.
var (
	Pt          = geometry.Pt
	NewPolygon  = geometry.NewPolygon
	NewPolyline = geometry.NewPolyline
)

// --- index layer ---

// Index is a multi-attribute index strategy (joint / separate / scan).
type Index = rstar.Index

// Rect is an axis-aligned key rectangle.
type Rect = rstar.Rect

// Index strategy constructors and helpers.
var (
	NewJointIndex    = rstar.NewJointIndex
	NewSeparateIndex = rstar.NewSeparateIndex
	NewScanIndex     = rstar.NewScanIndex
	Rect1            = rstar.Rect1
	Rect2            = rstar.Rect2
	UnboundedQuery   = rstar.UnboundedQuery
)

// RStarOptions tune the underlying R*-trees.
type RStarOptions = rstar.Options

// NewRect validates and builds a key rectangle of any dimension.
func NewRect(min, max []float64) (Rect, error) { return rstar.NewRect(min, max) }

// IndexAdvice is the advisor's measured ranking of attribute partitions
// (the paper's §5 open problem, solved empirically per workload).
type IndexAdvice = rstar.Advice

// NewPartitionedIndex builds one R*-tree per attribute block — the
// generalisation of the joint (one block) and separate (singletons)
// strategies.
var NewPartitionedIndex = rstar.NewPartitionedIndex

// AdviseIndexes enumerates all attribute partitions, replays the workload
// on each, and returns the measured costs, best first.
var AdviseIndexes = rstar.Advise

// Pager abstracts paged storage with disk-access counting.
type Pager = storage.Pager

// NewMemPager returns an in-memory pager (size 0 = 4 KiB pages).
func NewMemPager(size int) *storage.MemPager { return storage.NewMemPager(size) }

// --- experiments ---

// ExperimentParams are the §5.4 workload parameters.
type ExperimentParams = datagen.Params

// PaperWorkload returns the exact published workload parameters.
func PaperWorkload() ExperimentParams { return datagen.Paper() }

// ExperimentSeries is one experiment's measured disk-access series.
type ExperimentSeries = experiments.Series

// The per-figure experiment runners.
var (
	Figure4A    = experiments.Figure4A
	Figure4B    = experiments.Figure4B
	Figure5A    = experiments.Figure5A
	Figure5B    = experiments.Figure5B
	Experiment3 = experiments.Experiment3
	CornerCase  = experiments.Corner
)
