// Command cqacdbd is the CQA/CDB server: a resident process serving
// many concurrent sessions against shared in-memory constraint
// databases over a JSON HTTP API (package server).
//
// Usage:
//
//	cqacdbd -demo hurricane                       # serve the §3.3 case study on :8344
//	cqacdbd -db parcels=parcels.cqa -addr :9000   # serve a database file
//	cqacdbd -db a=a.cqa -db b=b.cqa               # several databases, one process
//	cqacdbd -demo hurricane -addr 127.0.0.1:0     # pick a free port (printed on stdout)
//
// The API (full reference: docs/SERVER.md):
//
//	POST   /v1/sessions        open a session (its own sat-cache, worker pool, knobs)
//	POST   /v1/query           run a query or rules program on a session
//	GET    /v1/sessions        list sessions        GET /v1/sessions/{id}  inspect one
//	DELETE /v1/sessions/{id}   close a session
//	GET    /v1/dbs             the shared database registry
//	GET    /v1/queries         queries executing right now; DELETE /v1/queries/{id} cancels one
//	GET    /v1/queries/recent  finished-query history (?min_ms=&limit=); /debug/queries for humans
//	GET    /healthz            liveness (reports "draining" during shutdown)
//	GET    /metrics            Prometheus text format; /debug/vars, /debug/pprof/...
//
// With -snapshot-dir the daemon gains durable, branchable state (the
// copy-on-write snapshot store, package snapshot):
//
//	POST   /v1/dbs/{name}/snapshots    commit a registry database
//	POST   /v1/sessions/{id}/snapshot  commit a session's state (base + results)
//	GET    /v1/snapshots               list;  GET /v1/snapshots/{id} inspect
//	POST   /v1/snapshots/{id}/fork     O(1) branch;  DELETE /v1/snapshots/{id} release
//
// and sessions may bind to a snapshot with {"snapshot": "<id>"}.
// Snapshots survive restarts: the store WAL-replays on open.
//
// Load and lifetime knobs: -max-inflight caps concurrently executing
// queries (beyond it the server sheds with 429 + Retry-After);
// -query-timeout bounds each query (requests may shorten it with
// timeout_ms); -session-idle-timeout reaps abandoned sessions;
// -max-sessions caps open sessions. -par and -sat-cache set the
// defaults new sessions inherit (each session may override them).
//
// Flight recorder knobs: -query-history sizes the finished-query ring
// behind /v1/queries/recent, -query-log appends every finished query as
// NDJSON to a file, -qerror-warn sets the planner-misestimate warning
// threshold.
//
// On SIGINT/SIGTERM the server drains: new queries get 503, in-flight
// queries run to completion (bounded by -shutdown-grace), sessions are
// closed, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cdb/internal/constraint"
	"cdb/internal/db"
	"cdb/internal/hurricane"
	"cdb/internal/obs"
	"cdb/internal/server"
	"cdb/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cqacdbd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cqacdbd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8344", "listen address (host:port; port 0 picks a free port)")
	demo := fs.String("demo", "", "serve a built-in demo database (hurricane)")
	maxInflight := fs.Int("max-inflight", server.DefaultMaxInflight,
		"max concurrently executing queries before shedding with 429")
	maxSessions := fs.Int("max-sessions", server.DefaultMaxSessions,
		"max concurrently open sessions")
	queryTimeout := fs.Duration("query-timeout", server.DefaultQueryTimeout,
		"per-query execution deadline (0 = none; requests may shorten it)")
	idleTimeout := fs.Duration("session-idle-timeout", server.DefaultSessionIdleTimeout,
		"close sessions idle this long (0 = never)")
	par := fs.Int("par", 0, "default session worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	satCache := fs.Int("sat-cache", constraint.DefaultSatCacheSize,
		"default session sat-cache size in entries (0 = disabled)")
	grace := fs.Duration("shutdown-grace", 30*time.Second,
		"how long shutdown waits for in-flight queries to drain")
	quiet := fs.Bool("quiet", false, "suppress request logging on stderr")
	queryHistory := fs.Int("query-history", obs.DefaultFlightCapacity,
		"finished queries retained for GET /v1/queries/recent")
	queryLog := fs.String("query-log", "",
		"append every finished query as one NDJSON record to this file")
	qerrorWarn := fs.Float64("qerror-warn", obs.DefaultQErrorThreshold,
		"log a planner-misestimate warning when a plan node's q-error reaches this ratio")
	snapshotDir := fs.String("snapshot-dir", "",
		"enable the copy-on-write snapshot store rooted at this directory (/v1/snapshots API)")
	snapshotFault := fs.String("snapshot-fault", "",
		"crash-test hook: inject a fault at the Nth snapshot storage op (wal:N or page:N; the op hangs so the process can be killed mid-commit)")

	dbs := map[string]*db.Database{}
	fs.Func("db", "serve a database file as name=path (repeatable)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-db wants name=path, got %q", v)
		}
		if _, dup := dbs[name]; dup {
			return fmt.Errorf("-db %q given twice", name)
		}
		d, err := db.LoadFile(path)
		if err != nil {
			return err
		}
		dbs[name] = d
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *demo == "hurricane":
		dbs["hurricane"] = hurricane.Build()
	case *demo != "":
		return fmt.Errorf("unknown demo %q (try: hurricane)", *demo)
	}
	if len(dbs) == 0 {
		return fmt.Errorf("no databases to serve: give -db name=path or -demo hurricane")
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = nil
	}
	var queryLogW io.Writer
	if *queryLog != "" {
		f, err := os.OpenFile(*queryLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("-query-log: %w", err)
		}
		defer f.Close()
		queryLogW = f
	}
	var snaps *snapshot.Store
	if *snapshotDir != "" {
		fault, err := parseFault(*snapshotFault)
		if err != nil {
			return err
		}
		snaps, err = snapshot.Open(*snapshotDir, snapshot.Options{Fault: fault})
		if err != nil {
			return err
		}
		defer snaps.Close()
		st := snaps.Stats()
		fmt.Fprintf(out, "snapshot store %s: %d snapshots, %d live pages, %d free\n",
			*snapshotDir, st.Snapshots, st.PagesLive, st.PagesFree)
		for _, meta := range snaps.List() {
			fmt.Fprintf(out, "  %s db=%s tuples=%d pages=%d\n", meta.ID, meta.DB, meta.Tuples, meta.Pages)
		}
	} else if *snapshotFault != "" {
		return fmt.Errorf("-snapshot-fault needs -snapshot-dir")
	}

	srv := server.New(dbs, server.Config{
		MaxInflight:        *maxInflight,
		MaxSessions:        *maxSessions,
		QueryTimeout:       *queryTimeout,
		SessionIdleTimeout: *idleTimeout,
		DefaultPar:         *par,
		DefaultSatCache:    cacheSize(*satCache),
		QueryHistory:       *queryHistory,
		QueryLog:           queryLogW,
		QErrorThreshold:    *qerrorWarn,
		Snapshots:          snaps,
		Logger:             logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}

	for _, name := range sortedNames(dbs) {
		fmt.Fprintf(out, "serving %s: %d relations, %d tuples\n",
			name, len(dbs[name].Names()), dbs[name].TupleCount())
	}
	// The smoke scripts and -addr :0 users parse this line for the port.
	fmt.Fprintf(out, "cqacdbd listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(out, "cqacdbd: draining...")
	graceCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Drain order: first the query layer (new queries 503, in-flight run
	// to completion), then the HTTP layer (idle connections closed).
	if err := srv.Shutdown(graceCtx); err != nil {
		fmt.Fprintf(out, "cqacdbd: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(graceCtx); err != nil {
		return err
	}
	fmt.Fprintln(out, "cqacdbd: bye")
	return nil
}

// parseFault decodes the -snapshot-fault hook: "wal:N" arms the Nth WAL
// record append, "page:N" the Nth page write. The injected op writes a
// torn prefix and hangs, holding the daemon mid-commit so the crash
// smoke can kill -9 it and assert the reopened store recovered.
func parseFault(spec string) (*snapshot.Fault, error) {
	if spec == "" {
		return nil, nil
	}
	kind, nstr, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("-snapshot-fault wants wal:N or page:N, got %q", spec)
	}
	var n int
	if _, err := fmt.Sscanf(nstr, "%d", &n); err != nil || n <= 0 {
		return nil, fmt.Errorf("-snapshot-fault wants a positive op number, got %q", spec)
	}
	f := &snapshot.Fault{Torn: true, Hang: true}
	switch kind {
	case "wal":
		f.WALAppendN = n
	case "page":
		f.PageWriteN = n
	default:
		return nil, fmt.Errorf("-snapshot-fault wants wal:N or page:N, got %q", spec)
	}
	return f, nil
}

// cacheSize maps the CLI convention (0 = disabled) onto the Config one
// (0 = default, negative = disabled).
func cacheSize(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

func sortedNames(dbs map[string]*db.Database) []string {
	names := make([]string, 0, len(dbs))
	for name := range dbs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
