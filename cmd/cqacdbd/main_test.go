package main

// End-to-end daemon test: boot the real entry point on a free port,
// talk to it over HTTP, deliver SIGTERM to the process, and check the
// graceful-drain path runs to completion.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// lockedBuf is an io.Writer the daemon goroutine and the test poll
// concurrently.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRe = regexp.MustCompile(`cqacdbd listening on (http://\S+)`)

// startDaemon boots run() on a free port and waits for the listen line.
func startDaemon(t *testing.T, args []string) (base string, out *lockedBuf, done chan error) {
	t.Helper()
	out = &lockedBuf{}
	done = make(chan error, 1)
	go func() { done <- run(args, out) }()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return m[1], out, done
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	t.Fatalf("daemon never printed its listen line:\n%s", out.String())
	return "", nil, nil
}

func TestDaemonEndToEnd(t *testing.T) {
	base, out, done := startDaemon(t, []string{"-demo", "hurricane", "-addr", "127.0.0.1:0", "-quiet"})

	if !strings.Contains(out.String(), "serving hurricane: 4 relations, 11 tuples") {
		t.Fatalf("startup banner missing the db summary:\n%s", out.String())
	}

	// Open a session and run the §3.3 case-study query.
	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sess.ID == "" {
		t.Fatalf("session create: %d id=%q", resp.StatusCode, sess.ID)
	}

	q := `{"session": %q, "query": "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"}`
	resp, err = http.Post(base+"/v1/query", "application/json",
		strings.NewReader(fmt.Sprintf(q, sess.ID)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr struct {
		Count  int      `json:"count"`
		Tuples []string `json:"tuples"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 4 {
		t.Fatalf("case-study query count %d, want 4:\n%s", qr.Count, body)
	}

	// Metrics come off the same listener.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("cqacdbd_queries_total 1")) {
		t.Fatalf("/metrics missing query counter:\n%.2000s", metrics)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM:\n%s", out.String())
	}
	got := out.String()
	if !strings.Contains(got, "cqacdbd: draining...") || !strings.Contains(got, "cqacdbd: bye") {
		t.Fatalf("drain messages missing:\n%s", got)
	}
}

func TestDaemonServesDatabaseFile(t *testing.T) {
	// A minimal database file exercises the -db name=path flag.
	path := filepath.Join(t.TempDir(), "tiny.cqa")
	src := "relation Box\nschema x rational constraint, y rational constraint\ntuple | x >= 0, x <= 2, y >= 0, y <= 2\nend\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	base, _, done := startDaemon(t, []string{"-db", "tiny=" + path, "-addr", "127.0.0.1:0", "-quiet"})

	resp, err := http.Get(base + "/v1/dbs")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(body, []byte(`"tiny"`)) || !bytes.Contains(body, []byte(`"Box"`)) {
		t.Fatalf("/v1/dbs missing the loaded file:\n%s", body)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("daemon exit: %v", err)
	}
}

func TestFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-demo", "nope"}, &out); err == nil {
		t.Fatal("unknown demo accepted")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("no databases accepted")
	}
	if err := run([]string{"-db", "broken"}, &out); err == nil {
		t.Fatal("malformed -db accepted")
	}
}

// TestDaemonFlightRecorder boots with the flight-recorder flags and
// exercises the query-history endpoints plus the NDJSON query log.
func TestDaemonFlightRecorder(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "queries.ndjson")
	base, out, done := startDaemon(t, []string{"-demo", "hurricane",
		"-addr", "127.0.0.1:0", "-quiet",
		"-query-history", "8", "-query-log", logPath})

	resp, err := http.Post(base+"/v1/sessions", "application/json", strings.NewReader(`{"par": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Post(base+"/v1/query", "application/json", strings.NewReader(fmt.Sprintf(
		`{"session": %q, "query": "R = select x >= 1 from Land"}`, sess.ID)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"query_id"`)) {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}

	// The finished query is in the history ring...
	resp, err = http.Get(base + "/v1/queries/recent")
	if err != nil {
		t.Fatal(err)
	}
	recent, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	// The encoder escapes ">" in the statement, so match around it.
	if !bytes.Contains(recent, []byte(`"outcome": "ok"`)) ||
		!bytes.Contains(recent, []byte("1 from Land")) {
		t.Fatalf("queries/recent missing the query:\n%s", recent)
	}
	// ...on the human view...
	resp, err = http.Get(base + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	debug, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(debug, []byte("recent queries")) {
		t.Fatalf("debug/queries:\n%s", debug)
	}
	// ...and in the NDJSON log file.
	logged, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(logged, []byte(`"outcome":"ok"`)) {
		t.Fatalf("query log:\n%s", logged)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited with error: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM:\n%s", out.String())
	}
}
