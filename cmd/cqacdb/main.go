// Command cqacdb is the CQA/CDB shell: it loads a constraint database
// (text format, see internal/db) and executes query programs written in
// the paper's ASCII query language, either from files, from -e, or
// interactively.
//
// Usage:
//
//	cqacdb -demo hurricane                  # interactive shell on the case study
//	cqacdb -db parcels.cqa script.cqa       # run a script
//	cqacdb -db parcels.cqa -e 'R = select x >= 5 from Land'
//	cqacdb -par 8 -stats -e '...'           # 8 workers + per-operator stats
//	cqacdb -explain -e '...'                # EXPLAIN ANALYZE-style plan tree
//	cqacdb -metrics-addr :8080 -demo hurricane   # /metrics + pprof while the shell runs
//
// Snapshot store (package snapshot; shared with cqacdbd's -snapshot-dir):
//
//	cqacdb -snapshot-dir ./snaps -demo hurricane -snap-commit    # commit the db, print its id
//	cqacdb -snapshot-dir ./snaps -snap-list                      # list snapshots
//	cqacdb -snapshot-dir ./snaps -snap-fork snap1-xxxxxxxx       # O(1) copy-on-write branch
//	cqacdb -snapshot-dir ./snaps -snap-restore snap2-xxxxxxxx    # shell over a snapshot
//
// Queries execute on the parallel CQA layer (package exec): -par sets the
// worker-pool size (0 = GOMAXPROCS, 1 = sequential), -par-threshold the
// input size below which operators stay sequential, and -stats prints a
// per-operator execution table (tuples in/out, satisfiability checks,
// pruned-unsat count, sat-cache hits/misses, raw FM decisions, wall time)
// after each program, followed by the sat-cache counters when the cache is
// on. -sat-cache sets the size of the memoized satisfiability engine
// (entries; 0 disables it), which persists across the statements and
// programs of a session, so repeated shapes are decided once. The binary
// operators pair tuples through a filter-and-refine candidate filter
// (relational hash partitioning + constraint envelopes + strategy-
// switched enumeration); -no-prune falls back to the dense nested loop,
// and -plan forces one pairing strategy (dense, sweep, index, vector) or
// leaves the choice to the cost-based physical planner (auto, the
// default). Parallel output is byte-identical to sequential output, with
// or without the cache or the filter, and across every -plan mode.
//
// Observability (package obs):
//
//   - -explain prints each program's execution as an EXPLAIN ANALYZE-style
//     plan tree: one line per plan node, annotated with the per-span
//     counters (tuples in/out, sat checks, pruned, cache hits/misses, raw
//     Fourier-Motzkin eliminations) and wall time, with pool fan-outs shown
//     as child spans carrying queue-wait and per-worker busy time;
//   - -trace-json FILE writes the same span tree as JSON (overwritten per
//     program; the last program's trace remains);
//   - -metrics-addr HOST:PORT starts an HTTP listener serving /metrics
//     (Prometheus text format), /debug/vars (expvar) and /debug/pprof/...
//     for the life of the process;
//   - -slowlog D (e.g. 10ms) logs every span at least that slow through
//     log/slog on stderr, so pathological conjunctions surface themselves;
//   - -query-log FILE appends every executed program as one NDJSON
//     flight record (query id, wall time, rows, outcome, per-operator
//     rollups with planner est/act pair counts and q-error) and warns on
//     stderr when a plan node's cardinality estimate is badly off.
//
// When any of -explain, -trace-json, -slowlog or -query-log is active,
// each program gets a flight-recorder query id ("q<seq>-<8 hex>"): root
// spans carry it as a query_id label, slow-span records and NDJSON
// flight records reference it, so the three outputs join.
//
// Tracing changes what is *reported*, never what is computed: operator
// outputs are byte-identical with observability on or off.
//
// Interactive commands (besides query statements "Name = ..."):
//
//	\list            list relations
//	\show NAME       print a relation
//	\schema NAME     print a relation's schema
//	\svg R FILE      render a spatial relation to an SVG file
//	\save PATH       save the database (including session results)
//	\quit            exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"cdb/internal/calculus"
	"cdb/internal/constraint"
	"cdb/internal/db"
	"cdb/internal/exec"
	"cdb/internal/hurricane"
	"cdb/internal/obs"
	"cdb/internal/query"
	"cdb/internal/relation"
	"cdb/internal/render"
	"cdb/internal/schema"
	"cdb/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqacdb:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cqacdb", flag.ContinueOnError)
	dbPath := fs.String("db", "", "database file to load (text format)")
	demo := fs.String("demo", "", "load a built-in demo database (hurricane)")
	expr := fs.String("e", "", "execute one query program and print the result")
	rules := fs.String("rules", "", "execute one declarative rule program (calculus front end)")
	maxRows := fs.Int("rows", 50, "maximum tuples to print per relation")
	par := fs.Int("par", 0, "CQA worker-pool size (0 = GOMAXPROCS, 1 = sequential)")
	parThreshold := fs.Int("par-threshold", 0, "input size below which operators run sequentially (0 = default)")
	stats := fs.Bool("stats", false, "print per-operator execution stats after each program")
	satCache := fs.Int("sat-cache", constraint.DefaultSatCacheSize,
		"memoized satisfiability engine size in entries (0 = disabled)")
	explain := fs.Bool("explain", false, "print each program's EXPLAIN ANALYZE-style plan tree")
	traceJSON := fs.String("trace-json", "", "write each program's span tree as JSON to this file")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, expvar and /debug/pprof on this address")
	slowlog := fs.Duration("slowlog", 0, "log spans at least this slow via slog (0 = off)")
	noPrune := fs.Bool("no-prune", false, "disable the binary operators' candidate filter (dense nested-loop pairing)")
	plan := fs.String("plan", exec.PlanAuto, "pairing strategy: auto (cost-based planner), dense, sweep, index, or vector")
	queryLog := fs.String("query-log", "", "append every executed program as one NDJSON flight record to this file")
	snapshotDir := fs.String("snapshot-dir", "", "copy-on-write snapshot store directory (enables -snap-* commands)")
	snapList := fs.Bool("snap-list", false, "list the store's snapshots and exit")
	snapCommit := fs.Bool("snap-commit", false, "commit the loaded database as a snapshot and exit")
	snapFork := fs.String("snap-fork", "", "fork this snapshot id (O(1) copy-on-write branch) and exit")
	snapRestore := fs.String("snap-restore", "", "load the database from this snapshot id instead of -db/-demo")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !exec.ValidPlanMode(*plan) {
		return fmt.Errorf("invalid -plan %q (want auto, dense, sweep, index or vector)", *plan)
	}
	ec := exec.New(*par)
	ec.SeqThreshold = *parThreshold
	ec.NoPrune = *noPrune
	ec.PlanMode = *plan
	if *satCache > 0 {
		ec.SatCache = constraint.NewSatCache(*satCache)
	}
	s := &session{ec: ec, stats: *stats, explain: *explain, traceJSON: *traceJSON}
	if *explain || *traceJSON != "" || *slowlog > 0 {
		s.tracer = obs.NewTracer()
		s.tracer.SlowThreshold = *slowlog
		if *slowlog > 0 {
			s.tracer.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
		ec.Tracer = s.tracer
	}
	if *queryLog != "" {
		f, err := os.OpenFile(*queryLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("-query-log: %w", err)
		}
		defer f.Close()
		// Capacity 1: the CLI never serves the history ring; the recorder
		// is here for the NDJSON stream and the misestimate warnings.
		s.flight = obs.NewFlight(1)
		s.flight.Log = f
		if s.tracer != nil && s.tracer.Logger != nil {
			s.flight.Logger = s.tracer.Logger
		} else {
			s.flight.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	}
	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		ec.InstallMetrics(reg)
		if s.tracer != nil {
			s.tracer.Metrics = reg
		}
		if s.flight != nil {
			s.flight.Metrics = reg
		}
		srv, err := obs.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics /debug/vars /debug/pprof/\n", srv.Addr())
	}

	// The snapshot store: -snap-list and -snap-fork are standalone
	// commands; -snap-restore swaps the database source; -snap-commit
	// runs after load, below.
	var snaps *snapshot.Store
	if *snapshotDir != "" {
		var err error
		snaps, err = snapshot.Open(*snapshotDir, snapshot.Options{EC: ec})
		if err != nil {
			return err
		}
		defer snaps.Close()
	} else if *snapList || *snapCommit || *snapFork != "" || *snapRestore != "" {
		return fmt.Errorf("-snap-list/-snap-commit/-snap-fork/-snap-restore need -snapshot-dir")
	}
	if *snapList {
		st := snaps.Stats()
		fmt.Printf("snapshot store %s: %d snapshots, %d live pages, %d free, page size %d\n",
			*snapshotDir, st.Snapshots, st.PagesLive, st.PagesFree, st.PageSize)
		for _, meta := range snaps.List() {
			parent := meta.Parent
			if parent == "" {
				parent = "-"
			}
			fmt.Printf("  %-22s parent=%-22s db=%-12s tuples=%-5d pages=%-4d new=%-4d shared=%d\n",
				meta.ID, parent, meta.DB, meta.Tuples, meta.Pages, meta.NewPages, meta.SharedPages)
		}
		return nil
	}
	if *snapFork != "" {
		meta, err := snaps.Fork(*snapFork)
		if err != nil {
			return err
		}
		fmt.Printf("forked %s -> %s (%d pages, all shared)\n", meta.Parent, meta.ID, meta.Pages)
		return nil
	}

	var d *db.Database
	dbLabel := ""
	switch {
	case *snapRestore != "":
		var err error
		d, err = snaps.MaterializeCtx(*snapRestore, ec)
		if err != nil {
			return err
		}
		meta, _ := snaps.Get(*snapRestore)
		dbLabel = meta.DB
		fmt.Printf("restored snapshot %s (db=%s): relations %s\n",
			*snapRestore, meta.DB, strings.Join(d.Names(), ", "))
	case *demo == "hurricane":
		d = hurricane.Build()
		dbLabel = "hurricane"
		fmt.Println("loaded demo database: hurricane (§3.3 case study)")
	case *demo != "":
		return fmt.Errorf("unknown demo %q (try: hurricane)", *demo)
	case *dbPath != "":
		var err error
		d, err = db.LoadFileCtx(*dbPath, ec)
		if err != nil {
			return err
		}
		dbLabel = *dbPath
		fmt.Printf("loaded %s: relations %s\n", *dbPath, strings.Join(d.Names(), ", "))
	default:
		d = db.New()
	}

	if *snapCommit {
		parent := *snapRestore // lineage when committing a restored branch
		meta, err := snaps.CommitCtx(d, parent, dbLabel, ec)
		if err != nil {
			return err
		}
		fmt.Printf("committed %s: %d tuples, %d pages (%d new, %d shared)\n",
			meta.ID, meta.Tuples, meta.Pages, meta.NewPages, meta.SharedPages)
		return nil
	}

	if *expr != "" {
		s.begin()
		out, err := d.RunCtx(*expr, ec)
		if err != nil {
			s.finish(*expr, 0, err)
			return err
		}
		s.finish(*expr, out.Len(), nil)
		printRelation(out, *maxRows)
		return s.report(os.Stdout)
	}
	if *rules != "" {
		prog, err := calculus.Parse(*rules)
		if err != nil {
			return err
		}
		s.begin()
		out, err := prog.RunCtx(d.Env(), ec)
		if err != nil {
			s.finish(*rules, 0, err)
			return err
		}
		s.finish(*rules, out.Len(), nil)
		printRelation(out, *maxRows)
		return s.report(os.Stdout)
	}
	if fs.NArg() > 0 {
		for _, path := range fs.Args() {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			s.begin()
			out, err := d.RunCtx(string(src), ec)
			if err != nil {
				s.finish(string(src), 0, err)
				return fmt.Errorf("%s: %w", path, err)
			}
			s.finish(string(src), out.Len(), nil)
			fmt.Printf("== %s ==\n", path)
			printRelation(out, *maxRows)
			if err := s.report(os.Stdout); err != nil {
				return err
			}
		}
		return nil
	}
	return repl(d, *maxRows, s, os.Stdin, os.Stdout)
}

// session bundles one CLI invocation's execution context with its
// observability outputs (-stats table, -explain tree, -trace-json file,
// -query-log flight records).
type session struct {
	ec        *exec.Context
	tracer    *obs.Tracer
	flight    *obs.Flight
	stats     bool
	explain   bool
	traceJSON string

	// Per-program flight-recorder state, set by begin and consumed by
	// finish. qid is empty when no observability sink wants an identity.
	qid    string
	start  time.Time
	cache0 constraint.CacheStats
}

// begin opens a query identity for the next program. The id is
// generated only when something consumes it — the tracer stamps it on
// root spans and slow-span records, the flight recorder keys NDJSON
// records by it — so plain runs stay id-free and byte-identical.
func (s *session) begin() {
	if s.tracer == nil && s.flight == nil {
		return
	}
	s.qid = obs.NewQueryID()
	s.start = time.Now()
	if s.tracer != nil {
		s.tracer.QueryID = s.qid
	}
	if s.ec.SatCache != nil {
		s.cache0 = s.ec.SatCache.Stats()
	}
}

// finish records the finished program as a flight record: NDJSON to the
// -query-log file plus misestimate warnings on stderr. It must run
// before report(), which resets the per-operator stats the record's
// rollups are derived from.
func (s *session) finish(src string, rows int, err error) {
	if s.flight == nil || s.qid == "" {
		return
	}
	elapsed := time.Since(s.start)
	rec := obs.FlightRecord{
		ID:           s.qid,
		Statement:    firstLine(src),
		StartUnixMS:  s.start.UnixMilli(),
		WallMS:       float64(elapsed.Microseconds()) / 1000,
		Rows:         rows,
		Outcome:      obs.OutcomeOf(err),
		CacheHitRate: -1,
		Ops:          exec.FlightRollup(s.ec.Stats()),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if s.ec.SatCache != nil {
		rec.CacheHitRate = 0
		st := s.ec.SatCache.Stats()
		if dh, dm := st.Hits-s.cache0.Hits, st.Misses-s.cache0.Misses; dh+dm > 0 {
			rec.CacheHitRate = float64(dh) / float64(dh+dm)
		}
	}
	s.flight.Finish(rec)
}

// firstLine returns the first non-empty line of src (the flight
// record's statement field).
func firstLine(src string) string {
	for _, line := range strings.Split(src, "\n") {
		if line = strings.TrimSpace(line); line != "" {
			return line
		}
	}
	return ""
}

// report renders and clears the per-program observability state: the
// -stats table (plus the session-cumulative sat-cache counters), the
// -explain span tree, and the -trace-json file (overwritten each
// program). Stats and spans are reset either way so a session does not
// accumulate silently ignored records.
func (s *session) report(w io.Writer) error {
	if s.stats {
		fmt.Fprint(w, exec.FormatStats(s.ec.Summary()))
		if s.ec.SatCache != nil {
			fmt.Fprintf(w, "sat-cache: %s\n", s.ec.SatCache.Stats())
		}
	}
	s.ec.Reset()
	if s.tracer == nil {
		return nil
	}
	roots := s.tracer.Roots()
	defer s.tracer.Reset()
	if s.explain {
		fmt.Fprint(w, obs.FormatTree(roots, obs.TreeOptions{Wall: true}))
	}
	if s.traceJSON != "" {
		b, err := obs.TraceJSON(roots)
		if err != nil {
			return err
		}
		if err := os.WriteFile(s.traceJSON, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func repl(d *db.Database, maxRows int, s *session, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "CQA/CDB shell. Statements: Name = select ... | \\list \\show R \\schema R \\save PATH \\quit")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "cqa> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return nil
		case line == `\list` || line == `\l`:
			for _, name := range d.Names() {
				r, _ := d.Get(name)
				fmt.Fprintf(out, "  %-16s %3d tuples  %s\n", name, r.Len(), r.Schema())
			}
		case strings.HasPrefix(line, `\show `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\show `))
			if r, ok := d.Get(name); ok {
				fprintRelation(out, r, maxRows)
			} else {
				fmt.Fprintf(out, "no relation %q\n", name)
			}
		case strings.HasPrefix(line, `\schema `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\schema `))
			if r, ok := d.Get(name); ok {
				fmt.Fprintln(out, r.Schema())
			} else {
				fmt.Fprintf(out, "no relation %q\n", name)
			}
		case strings.HasPrefix(line, `\svg `):
			args := strings.Fields(strings.TrimPrefix(line, `\svg `))
			if len(args) != 2 {
				fmt.Fprintln(out, `usage: \svg RELATION FILE.svg`)
				continue
			}
			r, ok := d.Get(args[0])
			if !ok {
				fmt.Fprintf(out, "no relation %q\n", args[0])
				continue
			}
			fid, x, y, derr := deduceSpatialShell(r)
			if derr != nil {
				fmt.Fprintln(out, derr)
				continue
			}
			svg, rerr := render.Relation(r, fid, x, y, render.Options{})
			if rerr != nil {
				fmt.Fprintln(out, rerr)
				continue
			}
			if werr := os.WriteFile(args[1], []byte(svg), 0o644); werr != nil {
				fmt.Fprintln(out, werr)
				continue
			}
			fmt.Fprintln(out, "wrote", args[1])
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := d.SaveFile(path); err != nil {
				fmt.Fprintln(out, "save failed:", err)
			} else {
				fmt.Fprintln(out, "saved", path)
			}
		case strings.HasPrefix(line, `\`):
			fmt.Fprintf(out, "unknown command %q\n", line)
		default:
			prog, err := query.Parse(line)
			if err != nil {
				fmt.Fprintln(out, err)
				continue
			}
			s.begin()
			res, err := prog.RunOptimizedCtx(d.Env(), s.ec)
			if err != nil {
				s.finish(line, 0, err)
				fmt.Fprintln(out, err)
				continue
			}
			s.finish(line, res.Len(), nil)
			// Persist every statement's target so later lines can build on
			// earlier ones.
			for _, st := range prog.Stmts {
				if r, err := evalTo(d, prog, st.Target); err == nil {
					_ = d.Put(st.Target, r)
				}
			}
			last := prog.Stmts[len(prog.Stmts)-1].Target
			_ = d.Put(last, res)
			fprintRelation(out, res, maxRows)
			if err := s.report(out); err != nil {
				fmt.Fprintln(out, err)
			}
		}
	}
}

// evalTo re-evaluates the program prefix ending at the statement defining
// target (cheap at shell scale; keeps the session environment coherent).
func evalTo(d *db.Database, prog *query.Program, target string) (*relation.Relation, error) {
	var prefix query.Program
	for _, st := range prog.Stmts {
		prefix.Stmts = append(prefix.Stmts, st)
		if st.Target == target {
			break
		}
	}
	return prefix.RunOptimized(d.Env())
}

func printRelation(r *relation.Relation, maxRows int) {
	fprintRelation(os.Stdout, r, maxRows)
}

func fprintRelation(w io.Writer, r *relation.Relation, maxRows int) {
	fmt.Fprintln(w, r.Schema())
	tuples := r.Sorted()
	for i, t := range tuples {
		if i >= maxRows {
			fmt.Fprintf(w, "  ... (%d more tuples)\n", len(tuples)-maxRows)
			break
		}
		fmt.Fprintf(w, "  %s\n", t)
	}
	fmt.Fprintf(w, "(%d tuples)\n", len(tuples))
}

// deduceSpatialShell finds the (fid, x, y) triple of a spatial relation
// for the \svg command.
func deduceSpatialShell(r *relation.Relation) (fid, x, y string, err error) {
	var fids, cons []string
	for _, a := range r.Schema().Attrs() {
		switch {
		case a.Kind == schema.Relational && a.Type == schema.String:
			fids = append(fids, a.Name)
		case a.Kind == schema.Constraint:
			cons = append(cons, a.Name)
		}
	}
	if len(fids) != 1 || len(cons) != 2 {
		return "", "", "", fmt.Errorf("not a spatial relation (need 1 string id + 2 constraint attrs): %s", r.Schema())
	}
	return fids[0], cons[0], cons[1], nil
}
