package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cdb/internal/db"
	"cdb/internal/exec"
	"cdb/internal/hurricane"
	"cdb/internal/obs"
)

func TestRunEvalFlag(t *testing.T) {
	if err := run([]string{"-demo", "hurricane", "-e",
		"R = select landId = A from Landownership"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScriptFile(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "h.cqa")
	if err := hurricane.Build().SaveFile(dbPath); err != nil {
		t.Fatal(err)
	}
	script := filepath.Join(dir, "q.cqa")
	if err := os.WriteFile(script, []byte(hurricane.Queries()[2].Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-db", dbPath, script}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-demo", "nope"}); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run([]string{"-db", "/no/such/file.cqa", "-e", "R = X"}); err == nil {
		t.Error("missing db file accepted")
	}
	if err := run([]string{"-demo", "hurricane", "-e", "R = select from X"}); err == nil {
		t.Error("bad query accepted")
	}
	if err := run([]string{"-demo", "hurricane", "/no/such/script.cqa"}); err == nil {
		t.Error("missing script accepted")
	}
}

func TestREPLSession(t *testing.T) {
	d := hurricane.Build()
	savePath := filepath.Join(t.TempDir(), "session.cqa")
	in := strings.NewReader(strings.Join([]string{
		`\list`,
		`R0 = select landId = A from Landownership`,
		`R1 = project R0 on name`,
		`\show R1`,
		`\schema Land`,
		`\show Missing`,
		`\schema Missing`,
		`\badcmd`,
		`R2 = select broken ===`,
		`R3 = select z = 1 from Land`,
		``,
		`\save ` + savePath,
		`\quit`,
	}, "\n"))
	var out bytes.Buffer
	if err := repl(d, 10, &session{ec: exec.New(1)}, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Landownership",               // \list
		`name="ann"`,                  // query result
		"[landId: string, relational", // \schema Land
		`no relation "Missing"`,
		`unknown command`,
		"saved " + savePath,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("repl output missing %q:\n%s", want, got)
		}
	}
	// The session's intermediate results were persisted and saved.
	re, err := db.LoadFile(savePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := re.Get("R1"); !ok {
		t.Errorf("session result R1 not saved; relations: %v", re.Names())
	}
	// EOF without \quit is a clean exit.
	var out2 bytes.Buffer
	if err := repl(d, 10, &session{ec: exec.New(1)}, strings.NewReader("\\list\n"), &out2); err != nil {
		t.Fatal(err)
	}
}

func TestREPLSvgCommand(t *testing.T) {
	d := hurricane.Build()
	svgPath := filepath.Join(t.TempDir(), "land.svg")
	in := strings.NewReader(strings.Join([]string{
		`\svg Land ` + svgPath,
		`\svg Landownership ` + svgPath, // not spatial: error message, no crash
		`\svg Missing ` + svgPath,
		`\svg toofewargs`,
		`\quit`,
	}, "\n"))
	var out bytes.Buffer
	if err := repl(d, 10, &session{ec: exec.New(1)}, in, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<svg") {
		t.Error("svg file malformed")
	}
	got := out.String()
	for _, want := range []string{"wrote " + svgPath, "not a spatial relation", `no relation "Missing"`, "usage:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunParallelAndStatsFlags(t *testing.T) {
	// -par/-stats must not change results or fail; stats go to stdout.
	for _, args := range [][]string{
		{"-demo", "hurricane", "-par", "4", "-stats", "-e",
			"R = join Landownership and Land"},
		{"-demo", "hurricane", "-par", "1", "-par-threshold", "1", "-e",
			"R = select landId = A from Landownership"},
		{"-demo", "hurricane", "-par", "2", "-stats", "-rules",
			`owned(name, t) :- Landownership(name, t, id), id = "A".`},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunObservabilityFlags(t *testing.T) {
	// -explain, -slowlog and -metrics-addr must not change results or fail.
	for _, args := range [][]string{
		{"-demo", "hurricane", "-explain", "-stats", "-par", "4", "-e",
			"R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"},
		{"-demo", "hurricane", "-explain", "-rules",
			`owned(name, t) :- Landownership(name, t, id), id = "A".`},
		{"-demo", "hurricane", "-slowlog", "1h", "-explain", "-e",
			"R = select landId = A from Landownership"},
		{"-demo", "hurricane", "-metrics-addr", "127.0.0.1:0", "-e",
			"R = select landId = A from Landownership"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunTraceJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-demo", "hurricane", "-trace-json", path, "-e",
		"R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.SpanJSON
	if err := json.Unmarshal(b, &spans); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(spans) == 0 || spans[0].Name != "query" {
		t.Fatalf("trace roots = %+v, want a query span", spans)
	}
	var names []string
	var collect func(s obs.SpanJSON)
	collect = func(s obs.SpanJSON) {
		names = append(names, s.Name)
		for _, c := range s.Children {
			collect(c)
		}
	}
	for _, s := range spans {
		collect(s)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"stmt", "join", "select", "project", "normalize"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
}

func TestSessionReportExplain(t *testing.T) {
	d := hurricane.Build()
	ec := exec.New(4)
	ec.SeqThreshold = 1
	s := &session{ec: ec, stats: true, explain: true, tracer: obs.NewTracer()}
	ec.Tracer = s.tracer
	if _, err := d.RunCtx("R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name", ec); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.report(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"operator", "query", "└─", "join", "fanout"} {
		if !strings.Contains(got, want) {
			t.Errorf("report output missing %q:\n%s", want, got)
		}
	}
	if len(s.tracer.Roots()) != 0 {
		t.Error("spans not reset after report")
	}
}

func TestREPLStats(t *testing.T) {
	d := hurricane.Build()
	ec := exec.New(4)
	ec.SeqThreshold = 1
	in := strings.NewReader("R0 = join Landownership and Land\n\\quit\n")
	var out bytes.Buffer
	if err := repl(d, 10, &session{ec: ec, stats: true}, in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"operator", "join", "sat-checks"} {
		if !strings.Contains(got, want) {
			t.Errorf("repl -stats output missing %q:\n%s", want, got)
		}
	}
	if len(ec.Stats()) != 0 {
		t.Error("stats not reset after printing")
	}
}

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed (run() prints results through package fmt).
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	b, readErr := io.ReadAll(r)
	r.Close()
	if readErr != nil {
		t.Fatal(readErr)
	}
	return string(b), runErr
}

func TestQueryLogNDJSON(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "queries.ndjson")
	args := []string{"-demo", "hurricane", "-e",
		"R0 = join Landownership and Land\nR1 = project R0 on name"}

	plain, err := captureStdout(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	logged, err := captureStdout(t, func() error {
		return run(append([]string{"-query-log", logPath}, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	// The recorder observes; it never changes what is printed.
	if plain != logged {
		t.Fatalf("-query-log changed stdout:\n--- plain ---\n%s\n--- logged ---\n%s", plain, logged)
	}

	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 1 {
		t.Fatalf("query log has %d lines, want 1:\n%s", len(lines), b)
	}
	var rec obs.FlightRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line not JSON: %v\n%s", err, lines[0])
	}
	if !strings.HasPrefix(rec.ID, "q") || rec.Outcome != obs.OutcomeOK || rec.Rows == 0 {
		t.Fatalf("flight record: %+v", rec)
	}
	if rec.Statement != "R0 = join Landownership and Land" {
		t.Fatalf("record statement %q", rec.Statement)
	}
	if len(rec.Ops) == 0 || len(rec.Strategies) == 0 {
		t.Fatalf("record missing rollups: %+v", rec)
	}
	if rec.CacheHitRate < 0 {
		t.Fatalf("cache hit rate %v with the default cache on", rec.CacheHitRate)
	}

	// A failing program appends an error record (the file is O_APPEND:
	// one process's records follow another's).
	_, err = captureStdout(t, func() error {
		return run([]string{"-demo", "hurricane", "-query-log", logPath, "-e", "R = select from X"})
	})
	if err == nil {
		t.Fatal("bad query accepted")
	}
	b, _ = os.ReadFile(logPath)
	lines = strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 2 {
		t.Fatalf("query log has %d lines after error, want 2:\n%s", len(lines), b)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Outcome != obs.OutcomeError || rec.Error == "" {
		t.Fatalf("error record: %+v", rec)
	}
}

func TestExplainCarriesQueryID(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "queries.ndjson")
	out, err := captureStdout(t, func() error {
		return run([]string{"-demo", "hurricane", "-explain", "-query-log", logPath,
			"-e", "R = select landId = A from Landownership"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The root span is stamped with the flight-recorder id, so the
	// EXPLAIN tree and the NDJSON record join on it.
	if !strings.Contains(out, "query_id=q") {
		t.Fatalf("explain output missing query_id label:\n%s", out)
	}
	b, _ := os.ReadFile(logPath)
	var rec obs.FlightRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(b))), &rec); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "query_id="+rec.ID) {
		t.Fatalf("explain id and record id differ: record %q, explain:\n%s", rec.ID, out)
	}
}
