package main

// Golden end-to-end tests (ISSUE 4 satellite): run the real CLI entry
// point over the committed testdata database and query scripts and pin the
// rendered output byte-for-byte. Regenerate with:
//
//	go test ./cmd/cqacdb -run TestGolden -update
//
// and review the diff like any other code change.

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// captureRun runs the CLI with os.Stdout redirected through a pipe and
// returns everything it printed.
func captureRun(t *testing.T, args []string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run(%v): %v\noutput so far:\n%s", args, runErr, out)
	}
	return string(out)
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenQuery3(t *testing.T) {
	got := captureRun(t, []string{
		"-db", filepath.Join("..", "..", "testdata", "hurricane.cqa"),
		filepath.Join("..", "..", "testdata", "query3.cqa"),
	})
	checkGolden(t, "query3.golden", got)
}

// TestGoldenHurricaneDB pins the whole-database rendering: loading the
// committed hurricane database and listing every relation exercises the
// db text format end to end.
func TestGoldenHurricaneDB(t *testing.T) {
	got := captureRun(t, []string{
		"-db", filepath.Join("..", "..", "testdata", "hurricane.cqa"),
		"-e", "R = select t >= 4, t <= 9 from (join Hurricane and Land)",
	})
	checkGolden(t, "hurricane_select.golden", got)
}
