package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	for _, expt := range []string{"fig4", "fig5", "exp3", "corner"} {
		if err := run([]string{"-expt", expt, "-scale", "50", "-page", "512"}); err != nil {
			t.Errorf("%s: %v", expt, err)
		}
	}
}

func TestRunVerifySmallScale(t *testing.T) {
	// At 1/5 scale (2,000 boxes) with 512-byte pages every qualitative
	// claim holds. (Below ~1,000 boxes the secondary "advantage size"
	// claim gets noisy — see the page-size note in EXPERIMENTS.md.)
	if err := run([]string{"-verify", "-scale", "5", "-page", "512", "-buckets", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-expt", "nonsense", "-scale", "100"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCQAExperiment(t *testing.T) {
	// Small input; also verifies parallel output == sequential output.
	if err := run([]string{"-expt", "cqa", "-par", "4", "-cqasize", "16", "-stats"}); err != nil {
		t.Fatal(err)
	}
}
