package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, expt := range []string{"fig4", "fig5", "exp3", "corner"} {
		if err := run([]string{"-expt", expt, "-scale", "50", "-page", "512"}); err != nil {
			t.Errorf("%s: %v", expt, err)
		}
	}
}

func TestRunVerifySmallScale(t *testing.T) {
	// At 1/5 scale (2,000 boxes) with 512-byte pages every qualitative
	// claim holds. (Below ~1,000 boxes the secondary "advantage size"
	// claim gets noisy — see the page-size note in EXPERIMENTS.md.)
	if err := run([]string{"-verify", "-scale", "5", "-page", "512", "-buckets", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-expt", "nonsense", "-scale", "100"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunCQAExperiment(t *testing.T) {
	// Small input; also verifies parallel output == sequential output.
	if err := run([]string{"-expt", "cqa", "-par", "4", "-cqasize", "16", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCQAExperimentJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cqa.json")
	if err := run([]string{"-expt", "cqa", "-par", "4", "-cqasize", "16", "-json", path}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res cqaResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("cqa -json output not valid JSON: %v", err)
	}
	if res.Experiment != "cqa" || res.TuplesPerSide != 16 || res.Workers != 4 {
		t.Errorf("header wrong: %+v", res)
	}
	if len(res.Operators) != 4 {
		t.Fatalf("got %d operator records, want 4", len(res.Operators))
	}
	byName := map[string]cqaOpResult{}
	for _, o := range res.Operators {
		byName[o.Operator] = o
		if o.SequentialMS <= 0 || o.ParallelMS <= 0 || o.Speedup <= 0 {
			t.Errorf("%s: non-positive timings: %+v", o.Operator, o)
		}
	}
	j, ok := byName["join"]
	if !ok {
		t.Fatal("join record missing")
	}
	// Cross-product join: every pair of the parallel run is sat-checked.
	if j.SatChecks != 16*16 {
		t.Errorf("join sat checks = %d, want 256", j.SatChecks)
	}
	if j.TuplesIn != 32 {
		t.Errorf("join tuples in = %d, want 32", j.TuplesIn)
	}
	if j.FMDecisions <= 0 {
		t.Errorf("join fm decisions = %d, want > 0 (no cache configured)", j.FMDecisions)
	}
}

func TestRunPruneJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prune.json")
	if err := run([]string{"-expt", "prune", "-par", "2", "-cqasize", "16",
		"-rounds", "1", "-json", path, "-stats"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res pruneResult
	if err := json.Unmarshal(b, &res); err != nil {
		t.Fatalf("prune -json output not valid JSON: %v", err)
	}
	if res.Experiment != "prune" || res.TuplesPerSide != 16 || res.Rounds != 1 {
		t.Errorf("header wrong: %+v", res)
	}
	if len(res.Results) != 8 { // dense×2 + skewed×3 + clustered×3
		t.Fatalf("got %d results, want 8: %+v", len(res.Results), res.Results)
	}
	prunedSomewhere := false
	for _, r := range res.Results {
		if !r.OutputsIdentical {
			t.Errorf("%s %s: outputs not identical", r.Workload, r.Operator)
		}
		if r.PairsTotal <= 0 {
			t.Errorf("%s %s: no pairs recorded: %+v", r.Workload, r.Operator, r)
		}
		if r.PairsPruned > 0 {
			prunedSomewhere = true
		}
		if r.PairsPruned > r.PairsTotal {
			t.Errorf("%s %s: pruned %d of %d pairs", r.Workload, r.Operator, r.PairsPruned, r.PairsTotal)
		}
	}
	if !prunedSomewhere {
		t.Error("no workload pruned any pairs; the experiment measures nothing")
	}
}
