// Command cdbbench regenerates the paper's evaluation (§5.4): it builds
// the joint and separate indexing structures over the published workload
// distributions and reports disk accesses per query, bucketed the way
// Figures 4 and 5 plot them.
//
// Usage:
//
//	cdbbench                    # all experiments at paper scale (10,000 boxes)
//	cdbbench -expt fig4         # only Figure 4 (expts 1-A and 1-B)
//	cdbbench -expt fig5         # only Figure 5 (expts 2-A and 2-B)
//	cdbbench -expt exp3         # the 500-query mixed workload
//	cdbbench -expt corner       # the §5.3 corner case
//	cdbbench -expt cqa          # parallel vs sequential CQA operator timings
//	cdbbench -expt canon        # sat-cache cold vs warm decision counts
//	cdbbench -expt vector       # vector fast path vs pure Fourier-Motzkin
//	cdbbench -expt diff         # differential check: engine vs semantic oracle
//	cdbbench -scale 10          # 1/10th of the data for a quick run
//	cdbbench -page 512          # page (node) size in bytes
//	cdbbench -buckets 8         # plot buckets per series
//	cdbbench -verify            # check the paper's qualitative claims
//
// The cqa experiment times Join, Select, Intersect and Difference over
// workload-derived constraint relations, sequentially and on the parallel
// execution layer (-par workers, 0 = GOMAXPROCS; -cqasize tuples per
// side), and reports per-operator speedups; -stats adds the per-operator
// execution table (tuples in/out, satisfiability checks, pruned-unsat
// count, sat-cache hits/misses, wall time); -json writes the timings and
// the parallel run's per-operator stats as a JSON object.
//
// The canon experiment runs the same operator workload -rounds times, cold
// (no sat-cache) and warm (one -sat-cache shared across rounds), and
// compares the raw Fourier-Motzkin decision counts, the cache hit rate and
// the wall times; it fails if the warm output is not byte-identical to the
// cold output. -json writes the measurements as a JSON object (the
// `make bench-canon` target writes BENCH_canon.json this way).
//
// The prune experiment measures the filter-and-refine candidate filter
// (internal/cqa/pairing.go): the binary operators run over three workload
// shapes — dense (one heavily overlapping cluster: worst case, measures
// filter overhead), skewed-bucket (Zipf-distributed relational ids:
// partition pruning), spatially-clustered (all-NULL ids, separated box
// clusters: envelope + interval-sweep pruning) — once with the filter off
// (the dense nested loop) and once with it on, -rounds times each. It
// reports pairs considered/pruned, refine-stage sat decisions under both
// modes and the wall-time delta, checks the outputs are byte-identical
// (failing otherwise), and -json writes the measurements (the
// `make bench-prune` target writes BENCH_prune.json this way).
//
// The plan experiment measures the physical planner's pairing strategies
// (internal/cqa/planner.go): the binary operators run over the prune
// experiment's three workload shapes with each strategy forced in turn
// (-plan dense | sweep | index) and once under the cost-based planner
// (auto), -rounds times each. It reports per-mode wall time, refine-stage
// sat decisions and the estimator's est_pairs vs the actual surviving
// act_pairs, records which strategy auto picked, checks that every mode's
// output is byte-identical (failing otherwise), and -json writes the
// measurements (the `make bench-plan` target writes BENCH_plan.json this
// way). The global -plan flag also forces a strategy for the prune
// experiment's filtered contexts.
//
// The vector experiment measures the vector-representation fast path
// (internal/vector): select, intersect and difference over convex-polygon
// and triangulated-concave-polygon workloads, once with every decision
// forced through the Fourier-Motzkin eliminator (-plan dense), once with
// the exact polygon clipper forced (-plan vector) and once under the
// cost-based planner (auto), -rounds times each. It reports wall time,
// raw FM decision counts (constraint.DecisionCount deltas), sat-oracle
// decisions and the vector counters (hits, fallbacks, float rejects),
// derives the FM-decision reduction and the speedup of vector over the
// FM baseline, checks that every mode's output is byte-identical (failing
// otherwise), and -json writes the measurements (the `make bench-vector`
// target writes BENCH_vector.json this way).
//
// The diff experiment runs the semantic oracle's differential harness
// (internal/oracle): -n random (relation, operator) cases across all seven
// CQA operators, engine output vs the naive reference evaluator, exact
// rational membership compared on witness point sets. -seed makes the run
// reproducible, -par sets the engine's worker pool, -spatial draws
// polygon-shaped spatial inputs (the vector fast path's workload) instead
// of random heterogeneous ones, the global -plan forces the engine's
// pairing strategy under test, and -json writes the
// report (cases, per-operator counts, points compared, minimised failure
// pairs) as a JSON object. Any disagreement is printed and fails the run
// with a nonzero exit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/db"
	"cdb/internal/exec"
	"cdb/internal/experiments"
	"cdb/internal/oracle"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/snapshot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdbbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdbbench", flag.ContinueOnError)
	expt := fs.String("expt", "all", "experiment: fig4 | fig5 | exp3 | corner | cqa | canon | prune | plan | vector | diff | snapshot | all")
	scale := fs.Int("scale", 1, "shrink factor for the workload (1 = paper scale)")
	page := fs.Int("page", 4096, "page size in bytes (one R*-tree node per page)")
	buckets := fs.Int("buckets", 8, "buckets per rendered series")
	seed := fs.Int64("seed", 0, "override the workload seed (0 = default)")
	verify := fs.Bool("verify", false, "verify the paper's qualitative claims against the measurements")
	par := fs.Int("par", 0, "cqa/canon experiments: worker-pool size (0 = GOMAXPROCS)")
	cqaSize := fs.Int("cqasize", 48, "cqa/canon experiments: tuples per input relation")
	stats := fs.Bool("stats", false, "cqa/canon experiments: print the per-operator execution table")
	rounds := fs.Int("rounds", 3, "canon experiment: times to repeat the workload")
	satCache := fs.Int("sat-cache", 32768, "canon experiment: warm-run sat-cache size in entries")
	jsonPath := fs.String("json", "", "cqa/canon/diff experiments: write the measurements to this JSON file")
	cases := fs.Int("n", 100, "diff experiment: number of random (relation, operator) cases")
	spatial := fs.Bool("spatial", false, "diff experiment: draw polygon-shaped spatial inputs")
	plan := fs.String("plan", exec.PlanAuto, "pairing strategy for the prune experiment's filtered contexts and the diff experiment's engine: auto | dense | sweep | index | vector")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !exec.ValidPlanMode(*plan) {
		return fmt.Errorf("invalid -plan %q (want auto, dense, sweep, index or vector)", *plan)
	}
	p := datagen.Scaled(*scale)
	if *seed != 0 {
		p.Seed = *seed
	}
	if *expt == "cqa" {
		return runCQA(p, *par, *cqaSize, *jsonPath, *stats)
	}
	if *expt == "canon" {
		return runCanon(p, *par, *cqaSize, *rounds, *satCache, *jsonPath, *stats)
	}
	if *expt == "prune" {
		return runPrune(p, *par, *cqaSize, *rounds, *plan, *jsonPath, *stats)
	}
	if *expt == "plan" {
		return runPlan(p, *par, *cqaSize, *rounds, *jsonPath, *stats)
	}
	if *expt == "vector" {
		return runVector(p, *par, *cqaSize, *rounds, *jsonPath, *stats)
	}
	if *expt == "diff" {
		return runDiff(*seed, *cases, *par, *plan, *spatial, *jsonPath)
	}
	if *expt == "snapshot" {
		return runSnapshot(p, *cqaSize*8, *rounds*30, *jsonPath)
	}
	fmt.Printf("workload: %d boxes, %d queries, coords [0,%g], sizes [%g,%g], seed %d, page %d bytes\n\n",
		p.NumData, p.NumQueries, p.CoordMax, p.SizeMin, p.SizeMax, p.Seed, *page)

	var f4a, f4b, f5a, f5b, corner experiments.Series
	var err error
	show := func(s experiments.Series) {
		fmt.Println(s.Render(*buckets))
	}
	wantAll := *expt == "all" || *verify

	if *expt == "fig4" || wantAll {
		if f4a, err = experiments.Figure4A(p, *page); err != nil {
			return err
		}
		show(f4a)
		if f4b, err = experiments.Figure4B(p, *page); err != nil {
			return err
		}
		show(f4b)
	}
	if *expt == "fig5" || wantAll {
		if f5a, err = experiments.Figure5A(p, *page); err != nil {
			return err
		}
		show(f5a)
		if f5b, err = experiments.Figure5B(p, *page); err != nil {
			return err
		}
		show(f5b)
	}
	if *expt == "exp3" || wantAll {
		e3, err := experiments.Experiment3(p, *page)
		if err != nil {
			return err
		}
		show(e3)
	}
	if *expt == "corner" || wantAll {
		if corner, err = experiments.Corner(p, *page); err != nil {
			return err
		}
		show(corner)
	}
	switch *expt {
	case "fig4", "fig5", "exp3", "corner", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *expt)
	}

	if *verify {
		bad := experiments.VerifyShapes(f4a, f4b, f5a, f5b, corner)
		if len(bad) == 0 {
			fmt.Println("shape verification: all of the paper's qualitative claims hold on this run")
		} else {
			for _, b := range bad {
				fmt.Println("shape violation:", b)
			}
			return fmt.Errorf("%d shape violations", len(bad))
		}
	}
	return nil
}

// cqaOpResult is one operator's measurement in the cqa experiment's
// -json output.
type cqaOpResult struct {
	Operator     string  `json:"operator"`
	SequentialMS float64 `json:"sequential_ms"`
	ParallelMS   float64 `json:"parallel_ms"`
	Speedup      float64 `json:"speedup"`
	TuplesIn     int64   `json:"tuples_in"`
	TuplesOut    int64   `json:"tuples_out"`
	SatChecks    int64   `json:"sat_checks"`
	PrunedUnsat  int64   `json:"pruned_unsat"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	FMDecisions  int64   `json:"fm_decisions"`
}

// cqaResult is the measurement record of the cqa experiment (its -json
// output shape); the per-operator stats are from the parallel run.
type cqaResult struct {
	Experiment    string        `json:"experiment"`
	TuplesPerSide int           `json:"tuples_per_side"`
	Workers       int           `json:"workers"`
	Operators     []cqaOpResult `json:"operators"`
}

// runCQA times the parallelised CQA operators over workload-derived
// constraint relations, sequentially and under the worker pool, and
// reports the speedup. Parallel output is byte-identical to sequential
// output (checked here on every run), so the timings compare equal work.
// -json writes the timings plus the parallel run's per-operator stats as
// a JSON object.
func runCQA(p datagen.Params, par, size int, jsonPath string, stats bool) error {
	// The experiment measures the worker pool against the sequential loop
	// over equal work, so the candidate filter is off in both contexts —
	// with it on, the dense pair space never materialises and the timings
	// would mostly measure the filter (that is the prune experiment's job).
	ecSeq := exec.New(1)
	ecSeq.NoPrune = true
	ecPar := exec.New(par)
	ecPar.SeqThreshold = 1
	ecPar.NoPrune = true
	r1 := datagen.BoxRelation(p, size, 0)
	p2 := p
	p2.Seed = p.Seed + 1000
	r2 := datagen.BoxRelation(p2, size, 0)
	// A cross-product-style second input: no shared relational attribute,
	// so every tuple pair reaches the satisfiability check.
	r2x, err := cqa.Rename(r2, "id", "id2")
	if err != nil {
		return err
	}
	cond := cqa.Condition{
		cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(1500)),
		cqa.AttrCmpConst("y", cqa.OpNe, rational.FromInt(700)),
	}
	fmt.Printf("cqa operators: %d tuples per side (%d pairs), %d workers vs sequential\n\n",
		size, size*size, ecPar.Workers())
	type op struct {
		name string
		run  func(ec *exec.Context) (*relation.Relation, error)
	}
	ops := []op{
		{"join", func(ec *exec.Context) (*relation.Relation, error) { return cqa.JoinCtx(ec, r1, r2x) }},
		{"select", func(ec *exec.Context) (*relation.Relation, error) { return cqa.SelectCtx(ec, r1, cond) }},
		{"intersect", func(ec *exec.Context) (*relation.Relation, error) { return cqa.IntersectCtx(ec, r1, r2) }},
		{"difference", func(ec *exec.Context) (*relation.Relation, error) { return cqa.DifferenceCtx(ec, r1, r2) }},
	}
	res := cqaResult{Experiment: "cqa", TuplesPerSide: size, Workers: ecPar.Workers()}
	fmt.Printf("%-12s %12s %12s %8s\n", "operator", "sequential", "parallel", "speedup")
	for _, o := range ops {
		t0 := time.Now()
		seqOut, err := o.run(ecSeq)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", o.name, err)
		}
		seqWall := time.Since(t0)
		recorded := len(ecPar.Stats())
		t0 = time.Now()
		parOut, err := o.run(ecPar)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", o.name, err)
		}
		parWall := time.Since(t0)
		if seqOut.String() != parOut.String() {
			return fmt.Errorf("%s: parallel output diverges from sequential", o.name)
		}
		fmt.Printf("%-12s %12s %12s %7.2fx\n", o.name,
			seqWall.Round(time.Microsecond), parWall.Round(time.Microsecond),
			float64(seqWall)/float64(parWall))
		// Aggregate the parallel run's stats records (some operators record
		// more than one: intersect is a join plus a select, for instance).
		opRes := cqaOpResult{
			Operator:     o.name,
			SequentialMS: float64(seqWall) / float64(time.Millisecond),
			ParallelMS:   float64(parWall) / float64(time.Millisecond),
			Speedup:      float64(seqWall) / float64(parWall),
		}
		for _, s := range ecPar.Stats()[recorded:] {
			opRes.TuplesIn += s.TuplesIn
			opRes.TuplesOut += s.TuplesOut
			opRes.SatChecks += s.SatChecks
			opRes.PrunedUnsat += s.PrunedUnsat
			opRes.CacheHits += s.CacheHits
			opRes.CacheMisses += s.CacheMisses
			opRes.FMDecisions += s.FMDecisions
		}
		res.Operators = append(res.Operators, opRes)
	}
	if stats {
		fmt.Println("\nparallel run, per-operator stats:")
		fmt.Print(exec.FormatStats(ecPar.Summary()))
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	return nil
}

// canonResult is the measurement record of the canon experiment (also its
// -json output shape).
type canonResult struct {
	Experiment     string  `json:"experiment"`
	TuplesPerSide  int     `json:"tuples_per_side"`
	Rounds         int     `json:"rounds"`
	Workers        int     `json:"workers"`
	CacheSize      int     `json:"cache_size"`
	ColdDecisions  int64   `json:"cold_raw_decisions"`
	WarmDecisions  int64   `json:"warm_raw_decisions"`
	DecisionsSaved int64   `json:"raw_decisions_saved"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	HitRate        float64 `json:"hit_rate"`
	Evictions      int64   `json:"evictions"`
	Collisions     int64   `json:"collisions"`
	ColdWallMS     float64 `json:"cold_wall_ms"`
	WarmWallMS     float64 `json:"warm_wall_ms"`
	Identical      bool    `json:"outputs_identical"`
}

// runCanon measures what the canonical-form sat-cache saves: the same CQA
// operator workload (join, select, intersect, union, difference over
// workload-derived constraint relations) repeated `rounds` times, once cold
// — every satisfiability question answered by the raw Fourier-Motzkin
// eliminator — and once warm, with one bounded cache shared across the
// rounds. The raw decision counts come from constraint.DecisionCount, so
// they count eliminator runs, not operator-level checks. The warm output
// must be byte-identical to the cold output; the run fails otherwise.
func runCanon(p datagen.Params, par, size, rounds, cacheSize int, jsonPath string, stats bool) error {
	if rounds < 1 {
		rounds = 1
	}
	r1 := datagen.BoxRelation(p, size, 0)
	p2 := p
	p2.Seed = p.Seed + 1000
	r2 := datagen.BoxRelation(p2, size, 0)
	r2x, err := cqa.Rename(r2, "id", "id2")
	if err != nil {
		return err
	}
	cond := cqa.Condition{
		cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(1500)),
		cqa.AttrCmpConst("y", cqa.OpNe, rational.FromInt(700)),
	}
	// workload runs every operator once and returns the concatenated
	// rendered outputs (the byte-identity witness).
	workload := func(ec *exec.Context) (string, error) {
		var dump strings.Builder
		runs := []func() (*relation.Relation, error){
			func() (*relation.Relation, error) { return cqa.JoinCtx(ec, r1, r2x) },
			func() (*relation.Relation, error) { return cqa.SelectCtx(ec, r1, cond) },
			func() (*relation.Relation, error) { return cqa.IntersectCtx(ec, r1, r2) },
			func() (*relation.Relation, error) { return cqa.UnionCtx(ec, r1, r2) },
			func() (*relation.Relation, error) { return cqa.DifferenceCtx(ec, r1, r2) },
		}
		for _, run := range runs {
			out, err := run()
			if err != nil {
				return "", err
			}
			dump.WriteString(out.String())
			dump.WriteByte('\n')
		}
		return dump.String(), nil
	}
	repeat := func(ec *exec.Context) (dump string, decisions int64, wall time.Duration, err error) {
		base := constraint.DecisionCount()
		t0 := time.Now()
		for i := 0; i < rounds; i++ {
			dump, err = workload(ec)
			if err != nil {
				return "", 0, 0, err
			}
		}
		return dump, constraint.DecisionCount() - base, time.Since(t0), nil
	}

	// Filter off in both runs: the experiment counts what the sat-cache
	// alone saves, so every pair must actually reach a decision.
	ecCold := exec.New(par)
	ecCold.SeqThreshold = 1
	ecCold.NoPrune = true
	coldDump, coldDecisions, coldWall, err := repeat(ecCold)
	if err != nil {
		return fmt.Errorf("canon cold: %w", err)
	}

	cache := constraint.NewSatCache(cacheSize)
	ecWarm := exec.New(par)
	ecWarm.SeqThreshold = 1
	ecWarm.NoPrune = true
	ecWarm.SatCache = cache
	warmDump, warmDecisions, warmWall, err := repeat(ecWarm)
	if err != nil {
		return fmt.Errorf("canon warm: %w", err)
	}

	cs := cache.Stats()
	res := canonResult{
		Experiment:     "canon",
		TuplesPerSide:  size,
		Rounds:         rounds,
		Workers:        ecWarm.Workers(),
		CacheSize:      cacheSize,
		ColdDecisions:  coldDecisions,
		WarmDecisions:  warmDecisions,
		DecisionsSaved: coldDecisions - warmDecisions,
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		HitRate:        cs.HitRate(),
		Evictions:      cs.Evictions,
		Collisions:     cs.Collisions,
		ColdWallMS:     float64(coldWall) / float64(time.Millisecond),
		WarmWallMS:     float64(warmWall) / float64(time.Millisecond),
		Identical:      coldDump == warmDump,
	}

	fmt.Printf("canonical-form sat-cache: %d tuples per side, %d rounds, %d workers, cache %d entries\n\n",
		size, rounds, res.Workers, cacheSize)
	fmt.Printf("%-28s %12s %12s\n", "", "cold", "warm")
	fmt.Printf("%-28s %12d %12d\n", "raw FM decisions", coldDecisions, warmDecisions)
	fmt.Printf("%-28s %12s %12s\n", "wall time",
		coldWall.Round(time.Microsecond), warmWall.Round(time.Microsecond))
	fmt.Printf("\nsat-cache: %s\n", cs)
	fmt.Printf("raw decisions saved by the cache: %d (%.1f%%)\n",
		res.DecisionsSaved, 100*float64(res.DecisionsSaved)/float64(maxInt64(coldDecisions, 1)))
	if !res.Identical {
		return fmt.Errorf("canon: warm output diverges from cold output")
	}
	fmt.Println("outputs byte-identical with and without the cache")
	if stats {
		fmt.Println("\nwarm run, per-operator stats:")
		fmt.Print(exec.FormatStats(ecWarm.Summary()))
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	return nil
}

// pruneOpResult is one (workload, operator) measurement of the prune
// experiment.
type pruneOpResult struct {
	Workload          string  `json:"workload"`
	Operator          string  `json:"operator"`
	PairsTotal        int64   `json:"pairs_total"`
	PairsPruned       int64   `json:"pairs_pruned"`
	DenseSatChecks    int64   `json:"dense_sat_checks"`
	FilteredSatChecks int64   `json:"filtered_sat_checks"`
	SatCheckRatio     float64 `json:"sat_check_ratio"` // dense / filtered; 0 when filtered is 0
	DenseWallMS       float64 `json:"dense_wall_ms"`
	FilteredWallMS    float64 `json:"filtered_wall_ms"`
	WallDeltaPct      float64 `json:"wall_delta_pct"` // filtered vs dense; negative = filter is faster
	TuplesOut         int64   `json:"tuples_out"`
	OutputsIdentical  bool    `json:"outputs_identical"`
}

// pruneResult is the prune experiment's measurement record (also its
// -json output shape).
type pruneResult struct {
	Experiment    string          `json:"experiment"`
	TuplesPerSide int             `json:"tuples_per_side"`
	Rounds        int             `json:"rounds"`
	Workers       int             `json:"workers"`
	Results       []pruneOpResult `json:"results"`
}

// relDump renders a relation in storage order, so equal dumps mean
// byte-identical output including tuple order (Relation.String sorts).
func relDump(r *relation.Relation) string {
	var b strings.Builder
	b.WriteString(r.Schema().String())
	for _, t := range r.Tuples() {
		b.WriteByte('\n')
		b.WriteString(t.String())
	}
	return b.String()
}

// runPrune measures the filter-and-refine candidate filter: the binary
// operators over three workload shapes, filter off (the dense nested
// loop) vs on, `rounds` repetitions each. See the package comment for the
// workload rationale. Outputs must be byte-identical between the two
// modes on every (workload, operator) pair; the run fails otherwise.
func runPrune(p datagen.Params, par, size, rounds int, plan, jsonPath string, stats bool) error {
	if rounds < 1 {
		rounds = 1
	}
	centerSeed := p.Seed + 77 // shared cluster geography across both inputs
	pDense := p
	pDense.SizeMin = 50 // big boxes in one tight cluster: nearly every pair overlaps
	p2 := p
	p2.Seed = p.Seed + 1000
	p2Dense := pDense
	p2Dense.Seed = p.Seed + 1000
	type workload struct {
		name   string
		r1, r2 *relation.Relation
		ops    []string
	}
	// difference is skipped on the dense workload: with nearly every
	// subtrahend intersecting every minuend, the staircase subtraction
	// fragments combinatorially and the run time has nothing to do with
	// the filter under measurement.
	workloads := []workload{
		{"dense",
			datagen.ClusteredBoxRelation(pDense, size, 1, 10, centerSeed),
			datagen.ClusteredBoxRelation(p2Dense, size, 1, 10, centerSeed),
			[]string{"join", "intersect"}},
		{"skewed-bucket",
			datagen.SkewedBoxRelation(p, size, 12),
			datagen.SkewedBoxRelation(p2, size, 12),
			[]string{"join", "intersect", "difference"}},
		{"clustered",
			datagen.ClusteredBoxRelation(p, size, 8, 60, centerSeed),
			datagen.ClusteredBoxRelation(p2, size, 8, 60, centerSeed),
			[]string{"join", "intersect", "difference"}},
	}
	opFuncs := map[string]func(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error){
		"join":       cqa.JoinCtx,
		"intersect":  cqa.IntersectCtx,
		"difference": cqa.DifferenceCtx,
	}
	ecDense := exec.New(par)
	ecDense.SeqThreshold = 1
	ecDense.NoPrune = true
	ecFilt := exec.New(par)
	ecFilt.SeqThreshold = 1
	ecFilt.PlanMode = plan

	res := pruneResult{Experiment: "prune", TuplesPerSide: size, Rounds: rounds, Workers: ecFilt.Workers()}
	fmt.Printf("filter-and-refine: %d tuples per side (%d pairs), %d rounds, %d workers\n\n",
		size, size*size, rounds, res.Workers)
	fmt.Printf("%-16s %-12s %10s %10s %10s %10s %12s %12s %8s\n",
		"workload", "operator", "pairs", "filtered", "sat dense", "sat filt",
		"wall dense", "wall filt", "Δwall")
	identical := true
	for _, w := range workloads {
		for _, opName := range w.ops {
			op := opFuncs[opName]
			measure := func(ec *exec.Context) (string, time.Duration, int64, int64, int64, int64, error) {
				var out *relation.Relation
				recorded := len(ec.Stats())
				t0 := time.Now()
				for i := 0; i < rounds; i++ {
					var err error
					out, err = op(ec, w.r1, w.r2)
					if err != nil {
						return "", 0, 0, 0, 0, 0, err
					}
				}
				wall := time.Since(t0)
				var sat, pairs, pruned int64
				for _, s := range ec.Stats()[recorded:] {
					sat += s.SatChecks
					pairs += s.PairsTotal
					pruned += s.PairsPruned
				}
				return relDump(out), wall, sat, pairs, pruned, int64(out.Len()), nil
			}
			denseDump, denseWall, denseSat, _, _, tuplesOut, err := measure(ecDense)
			if err != nil {
				return fmt.Errorf("%s %s dense: %w", w.name, opName, err)
			}
			filtDump, filtWall, filtSat, pairs, pruned, _, err := measure(ecFilt)
			if err != nil {
				return fmt.Errorf("%s %s filtered: %w", w.name, opName, err)
			}
			r := pruneOpResult{
				Workload:          w.name,
				Operator:          opName,
				PairsTotal:        pairs / int64(rounds),
				PairsPruned:       pruned / int64(rounds),
				DenseSatChecks:    denseSat / int64(rounds),
				FilteredSatChecks: filtSat / int64(rounds),
				DenseWallMS:       float64(denseWall) / float64(time.Millisecond) / float64(rounds),
				FilteredWallMS:    float64(filtWall) / float64(time.Millisecond) / float64(rounds),
				TuplesOut:         tuplesOut,
				OutputsIdentical:  denseDump == filtDump,
			}
			if r.FilteredSatChecks > 0 {
				r.SatCheckRatio = float64(r.DenseSatChecks) / float64(r.FilteredSatChecks)
			}
			if denseWall > 0 {
				r.WallDeltaPct = 100 * (float64(filtWall) - float64(denseWall)) / float64(denseWall)
			}
			identical = identical && r.OutputsIdentical
			res.Results = append(res.Results, r)
			fmt.Printf("%-16s %-12s %10d %10d %10d %10d %12s %12s %+7.1f%%\n",
				w.name, opName, r.PairsTotal, r.PairsPruned, r.DenseSatChecks, r.FilteredSatChecks,
				(denseWall / time.Duration(rounds)).Round(time.Microsecond),
				(filtWall / time.Duration(rounds)).Round(time.Microsecond),
				r.WallDeltaPct)
		}
	}
	if stats {
		fmt.Println("\nfiltered runs, per-operator stats:")
		fmt.Print(exec.FormatStats(ecFilt.Summary()))
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if !identical {
		return fmt.Errorf("prune: filtered output diverges from dense output")
	}
	fmt.Println("\noutputs byte-identical with the filter on and off, every workload and operator")
	return nil
}

// planModeResult is one (workload, operator, strategy) measurement of
// the plan experiment.
type planModeResult struct {
	Mode      string  `json:"mode"`
	WallMS    float64 `json:"wall_ms"`
	SatChecks int64   `json:"sat_checks"`
	EstPairs  int64   `json:"est_pairs"`
	ActPairs  int64   `json:"act_pairs"`
}

// planOpResult groups one (workload, operator)'s per-strategy runs.
type planOpResult struct {
	Workload         string           `json:"workload"`
	Operator         string           `json:"operator"`
	AutoStrategy     string           `json:"auto_strategy"` // what the cost model picked under auto
	Modes            []planModeResult `json:"modes"`
	TuplesOut        int64            `json:"tuples_out"`
	OutputsIdentical bool             `json:"outputs_identical"`
}

// planResult is the plan experiment's measurement record (also its -json
// output shape).
type planResult struct {
	Experiment    string         `json:"experiment"`
	TuplesPerSide int            `json:"tuples_per_side"`
	Rounds        int            `json:"rounds"`
	Workers       int            `json:"workers"`
	Results       []planOpResult `json:"results"`
}

// runPlan measures the physical planner's pairing strategies: the binary
// operators over the prune experiment's three workload shapes, each
// strategy forced in turn plus the cost-based auto mode, `rounds`
// repetitions each. Every mode's output must be byte-identical to forced
// dense (the strategies are candidate-enumeration orders over the same
// surviving set); the run fails otherwise.
func runPlan(p datagen.Params, par, size, rounds int, jsonPath string, stats bool) error {
	if rounds < 1 {
		rounds = 1
	}
	centerSeed := p.Seed + 77
	pDense := p
	pDense.SizeMin = 50
	p2 := p
	p2.Seed = p.Seed + 1000
	p2Dense := pDense
	p2Dense.Seed = p.Seed + 1000
	type workload struct {
		name   string
		r1, r2 *relation.Relation
		ops    []string
	}
	// difference is skipped on the dense workload for the prune
	// experiment's reason: the staircase subtraction fragments
	// combinatorially there and measures nothing about pairing.
	workloads := []workload{
		{"dense",
			datagen.ClusteredBoxRelation(pDense, size, 1, 10, centerSeed),
			datagen.ClusteredBoxRelation(p2Dense, size, 1, 10, centerSeed),
			[]string{"join", "intersect"}},
		{"skewed-bucket",
			datagen.SkewedBoxRelation(p, size, 12),
			datagen.SkewedBoxRelation(p2, size, 12),
			[]string{"join", "intersect", "difference"}},
		{"clustered",
			datagen.ClusteredBoxRelation(p, size, 8, 60, centerSeed),
			datagen.ClusteredBoxRelation(p2, size, 8, 60, centerSeed),
			[]string{"join", "intersect", "difference"}},
	}
	opFuncs := map[string]func(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error){
		"join":       cqa.JoinCtx,
		"intersect":  cqa.IntersectCtx,
		"difference": cqa.DifferenceCtx,
	}
	modes := []string{exec.PlanDense, exec.PlanSweep, exec.PlanIndex, exec.PlanAuto}
	res := planResult{Experiment: "plan", TuplesPerSide: size, Rounds: rounds, Workers: exec.New(par).Workers()}
	fmt.Printf("pairing strategies: %d tuples per side (%d pairs), %d rounds, %d workers\n\n",
		size, size*size, rounds, res.Workers)
	fmt.Printf("%-16s %-12s %-7s %12s %10s %10s %10s %-8s\n",
		"workload", "operator", "mode", "wall", "sat", "est", "act", "auto→")
	identical := true
	ecs := map[string]*exec.Context{}
	for _, mode := range modes {
		ec := exec.New(par)
		ec.SeqThreshold = 1
		ec.PlanMode = mode
		ecs[mode] = ec
	}
	for _, w := range workloads {
		for _, opName := range w.ops {
			op := opFuncs[opName]
			r := planOpResult{Workload: w.name, Operator: opName, OutputsIdentical: true}
			var denseDump string
			for _, mode := range modes {
				ec := ecs[mode]
				recorded := len(ec.Stats())
				var out *relation.Relation
				t0 := time.Now()
				for i := 0; i < rounds; i++ {
					var err error
					out, err = op(ec, w.r1, w.r2)
					if err != nil {
						return fmt.Errorf("%s %s %s: %w", w.name, opName, mode, err)
					}
				}
				wall := time.Since(t0)
				m := planModeResult{Mode: mode, WallMS: float64(wall) / float64(time.Millisecond) / float64(rounds)}
				for _, s := range ec.Stats()[recorded:] {
					m.SatChecks += s.SatChecks
					m.EstPairs += s.EstPairs
					m.ActPairs += s.PairsTotal - s.PairsPruned
					if mode == exec.PlanAuto && s.Strategy != "" && r.AutoStrategy == "" {
						r.AutoStrategy = s.Strategy
					}
				}
				m.SatChecks /= int64(rounds)
				m.EstPairs /= int64(rounds)
				m.ActPairs /= int64(rounds)
				r.TuplesOut = int64(out.Len())
				dumpStr := relDump(out)
				if mode == exec.PlanDense {
					denseDump = dumpStr
				} else if dumpStr != denseDump {
					r.OutputsIdentical = false
				}
				r.Modes = append(r.Modes, m)
				autoCol := ""
				if mode == exec.PlanAuto {
					autoCol = r.AutoStrategy
				}
				fmt.Printf("%-16s %-12s %-7s %12s %10d %10d %10d %-8s\n",
					w.name, opName, mode, (wall / time.Duration(rounds)).Round(time.Microsecond),
					m.SatChecks, m.EstPairs, m.ActPairs, autoCol)
			}
			identical = identical && r.OutputsIdentical
			res.Results = append(res.Results, r)
		}
	}
	if stats {
		fmt.Println("\nauto runs, per-operator stats:")
		fmt.Print(exec.FormatStats(ecs[exec.PlanAuto].Summary()))
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if !identical {
		return fmt.Errorf("plan: some strategy's output diverges from forced dense")
	}
	fmt.Println("\noutputs byte-identical across dense, sweep, index and auto, every workload and operator")
	return nil
}

// vectorModeResult is one (workload, operator, mode) measurement of the
// vector experiment (the _ms leaves are benchdiff-compatible).
type vectorModeResult struct {
	Mode         string  `json:"mode"`
	WallMS       float64 `json:"wall_ms"`
	FMDecisions  int64   `json:"fm_decisions"`
	SatChecks    int64   `json:"sat_checks"`
	VectorHits   int64   `json:"vector_hits"`
	VectorFalls  int64   `json:"vector_fallbacks"`
	FloatRejects int64   `json:"float_rejects"`
}

// vectorOpResult groups one (workload, operator)'s per-mode runs and the
// derived fast-path wins: FMReduction = FM decisions under the forced-FM
// baseline / FM decisions under forced vector (the satellite acceptance
// gate reads this), Speedup = baseline wall / vector wall.
type vectorOpResult struct {
	Workload         string             `json:"workload"`
	Operator         string             `json:"operator"`
	TuplesOut        int64              `json:"tuples_out"`
	OutputsIdentical bool               `json:"outputs_identical"`
	FMReduction      float64            `json:"fm_reduction"`
	Speedup          float64            `json:"speedup"`
	Modes            []vectorModeResult `json:"modes"`
}

// vectorResult is the vector experiment's measurement record (-json
// output; `make bench-vector` writes it to BENCH_vector.json).
type vectorResult struct {
	Experiment    string           `json:"experiment"`
	TuplesPerSide int              `json:"tuples_per_side"`
	Rounds        int              `json:"rounds"`
	Workers       int              `json:"workers"`
	Results       []vectorOpResult `json:"results"`
}

// runVector measures the vector-representation fast path: spatial
// operators over polygon-shaped constraint relations, decided once purely
// by the Fourier-Motzkin eliminator (forced dense), once by exact polygon
// clipping (forced vector) and once under the cost-based planner (auto).
// Every mode must produce byte-identical output; the run fails otherwise.
func runVector(p datagen.Params, par, size, rounds int, jsonPath string, stats bool) error {
	if rounds < 1 {
		rounds = 1
	}
	centerSeed := p.Seed + 123
	p2 := p
	p2.Seed = p.Seed + 2000
	spread := p.CoordMax / 12
	convex1 := datagen.PolygonRelation(p, size, 6, spread, centerSeed)
	convex2 := datagen.PolygonRelation(p2, size, 6, spread, centerSeed)
	concave1 := datagen.ConcavePolygonRelation(p, size, 6, spread, centerSeed)
	concave2 := datagen.ConcavePolygonRelation(p2, size, 6, spread, centerSeed)
	// A two-atom spatial selection cutting through the cluster field: keep
	// the half-plane below the main diagonal, then a vertical slab.
	selCond := cqa.Condition{
		cqa.Linear(constraint.Var("x").Add(constraint.Var("y")), cqa.OpLe,
			constraint.Const(rational.FromInt(int64(p.CoordMax)))),
		cqa.AttrCmpConst("x", cqa.OpGe, rational.FromInt(int64(p.CoordMax/4))),
	}
	runs := []struct {
		workload, operator string
		run                func(ec *exec.Context) (*relation.Relation, error)
	}{
		{"poly-convex", "select", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.SelectCtx(ec, convex1, selCond)
		}},
		{"poly-convex", "intersect", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.IntersectCtx(ec, convex1, convex2)
		}},
		{"poly-convex", "difference", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.DifferenceCtx(ec, convex1, convex2)
		}},
		{"poly-concave", "select", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.SelectCtx(ec, concave1, selCond)
		}},
		{"poly-concave", "intersect", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.IntersectCtx(ec, concave1, concave2)
		}},
		{"poly-concave", "difference", func(ec *exec.Context) (*relation.Relation, error) {
			return cqa.DifferenceCtx(ec, concave1, concave2)
		}},
	}
	// Forced dense is the pure-FM baseline: the vector refine is gated on
	// the resolved strategy (binary operators) and on auto/vector mode
	// (select), so dense never consults the clipper.
	modes := []string{exec.PlanDense, exec.PlanVector, exec.PlanAuto}
	res := vectorResult{Experiment: "vector", TuplesPerSide: size, Rounds: rounds, Workers: exec.New(par).Workers()}
	fmt.Printf("vector fast path: %d tuples per side, %d rounds, %d workers\n\n", size, rounds, res.Workers)
	fmt.Printf("%-14s %-12s %-7s %12s %10s %10s %10s %10s\n",
		"workload", "operator", "mode", "wall", "fm", "sat", "vec", "vec-fb")
	identical := true
	var statEC *exec.Context
	for _, r := range runs {
		or := vectorOpResult{Workload: r.workload, Operator: r.operator, OutputsIdentical: true}
		var baseDump string
		var baseline, vec vectorModeResult
		for _, mode := range modes {
			ec := exec.New(par)
			ec.SeqThreshold = 1
			ec.PlanMode = mode
			fm0 := constraint.DecisionCount()
			var out *relation.Relation
			t0 := time.Now()
			for i := 0; i < rounds; i++ {
				var err error
				out, err = r.run(ec)
				if err != nil {
					return fmt.Errorf("%s %s %s: %w", r.workload, r.operator, mode, err)
				}
			}
			wall := time.Since(t0)
			m := vectorModeResult{
				Mode:        mode,
				WallMS:      float64(wall) / float64(time.Millisecond) / float64(rounds),
				FMDecisions: (constraint.DecisionCount() - fm0) / int64(rounds),
			}
			for _, s := range ec.Stats() {
				m.SatChecks += s.SatChecks
				m.VectorHits += s.VectorHits
				m.VectorFalls += s.VectorFalls
				m.FloatRejects += s.FloatRejects
			}
			m.SatChecks /= int64(rounds)
			m.VectorHits /= int64(rounds)
			m.VectorFalls /= int64(rounds)
			m.FloatRejects /= int64(rounds)
			or.TuplesOut = int64(out.Len())
			dumpStr := relDump(out)
			switch mode {
			case exec.PlanDense:
				baseDump = dumpStr
				baseline = m
			case exec.PlanVector:
				vec = m
				if statEC == nil {
					statEC = ec
				}
			}
			if mode != exec.PlanDense && dumpStr != baseDump {
				or.OutputsIdentical = false
			}
			or.Modes = append(or.Modes, m)
			fmt.Printf("%-14s %-12s %-7s %12s %10d %10d %10d %10d\n",
				r.workload, r.operator, mode, (wall / time.Duration(rounds)).Round(time.Microsecond),
				m.FMDecisions, m.SatChecks, m.VectorHits, m.VectorFalls)
		}
		or.FMReduction = float64(baseline.FMDecisions) / float64(maxInt64(vec.FMDecisions, 1))
		if vec.WallMS > 0 {
			or.Speedup = baseline.WallMS / vec.WallMS
		}
		fmt.Printf("%-14s %-12s %-7s FM decisions %d -> %d (%.1fx), wall %.2fms -> %.2fms (%.2fx)\n",
			r.workload, r.operator, "", baseline.FMDecisions, vec.FMDecisions, or.FMReduction,
			baseline.WallMS, vec.WallMS, or.Speedup)
		identical = identical && or.OutputsIdentical
		res.Results = append(res.Results, or)
	}
	if stats && statEC != nil {
		fmt.Println("\nforced-vector runs, per-operator stats:")
		fmt.Print(exec.FormatStats(statEC.Summary()))
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if !identical {
		return fmt.Errorf("vector: some mode's output diverges from the FM baseline")
	}
	fmt.Println("\noutputs byte-identical across dense (pure FM), vector and auto, every workload and operator")
	return nil
}

// runDiff runs the semantic oracle's differential harness: n seeded random
// cases across all seven CQA operators, engine vs naive reference
// evaluator, membership compared at every witness point. Failures are
// already minimised by the harness; any disagreement fails the run.
func runDiff(seed int64, n, par int, plan string, spatial bool, jsonPath string) error {
	rep, err := oracle.Diff(oracle.Config{Cases: n, Seed: seed, Workers: par, Plan: plan, Spatial: spatial})
	if err != nil {
		return err
	}
	mode := "heterogeneous"
	if spatial {
		mode = "spatial"
	}
	planName := plan
	if planName == "" {
		planName = exec.PlanAuto
	}
	fmt.Printf("differential oracle: %d %s cases, seed %d, plan %s, %d workers\n\n",
		rep.Cases, mode, rep.Seed, planName, rep.Workers)
	ops := make([]string, 0, len(rep.PerOp))
	for op := range rep.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		fmt.Printf("%-12s %6d cases\n", op, rep.PerOp[op])
	}
	fmt.Printf("\nwitness points compared: %d\n", rep.Points)
	if jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Printf("\nFAILURE: %s\n", f)
		}
		return fmt.Errorf("diff: %d engine/oracle disagreements in %d cases (seed %d reproduces)",
			len(rep.Failures), rep.Cases, rep.Seed)
	}
	fmt.Println("engine and oracle agree at every witness point")
	return nil
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// snapshotResult is the measurement record of the snapshot experiment
// (-json output; the _ms leaves are benchdiff-compatible).
type snapshotResult struct {
	Experiment      string  `json:"experiment"`
	Tuples          int     `json:"tuples"`
	Pages           int     `json:"pages"`
	PageSize        int     `json:"page_size"`
	CommitBaseMS    float64 `json:"commit_base_ms"`
	CommitDerivedMS float64 `json:"commit_derived_ms"`
	SharedPageRatio float64 `json:"shared_page_ratio"`
	ForkMS          float64 `json:"fork_ms"`
	FullCopyMS      float64 `json:"full_copy_ms"`
	MaterializeMS   float64 `json:"materialize_ms"`
	ForkSpeedup     float64 `json:"fork_speedup_vs_copy"`
	WALBytes        int64   `json:"wal_bytes"`
}

// runSnapshot measures the copy-on-write snapshot store: commit latency
// for a base state and a lightly-mutated derived state, the shared-page
// ratio the derived commit achieves, fork latency (amortised over many
// forks — a fork is a manifest copy, no page I/O), and the full-copy
// baseline (db.Save + db.Load of the same state) a system without CoW
// sharing would pay per branch.
func runSnapshot(p datagen.Params, size, forks int, jsonPath string) error {
	if forks <= 0 {
		forks = 100
	}
	dir, err := os.MkdirTemp("", "cdbbench-snapshot-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := snapshot.Open(dir, snapshot.Options{})
	if err != nil {
		return err
	}
	defer store.Close()

	// Base state: two generated spatial relations. The derived state adds
	// a third, so its commit shares every base page.
	base := db.New()
	if err := base.Put("Boxes", datagen.BoxRelation(p, size, 0)); err != nil {
		return err
	}
	p2 := p
	p2.Seed = p.Seed + 1000
	if err := base.Put("Probes", datagen.BoxRelation(p2, size/2, 0)); err != nil {
		return err
	}
	derived := db.New()
	for _, name := range base.Names() {
		r, _ := base.Get(name)
		if err := derived.Put(name, r); err != nil {
			return err
		}
	}
	p3 := p
	p3.Seed = p.Seed + 2000
	if err := derived.Put("Delta", datagen.BoxRelation(p3, size/4, 0)); err != nil {
		return err
	}

	t0 := time.Now()
	baseSnap, err := store.Commit(base, "", "bench")
	if err != nil {
		return err
	}
	commitBase := time.Since(t0)

	t0 = time.Now()
	derivedSnap, err := store.Commit(derived, baseSnap.ID, "bench")
	if err != nil {
		return err
	}
	commitDerived := time.Since(t0)
	sharedRatio := 0.0
	if derivedSnap.Pages > 0 {
		sharedRatio = float64(derivedSnap.SharedPages) / float64(derivedSnap.Pages)
	}

	t0 = time.Now()
	for i := 0; i < forks; i++ {
		if _, err := store.Fork(baseSnap.ID); err != nil {
			return err
		}
	}
	forkMS := float64(time.Since(t0).Microseconds()) / 1000 / float64(forks)

	// Full-copy baseline: what a branch costs without page sharing.
	t0 = time.Now()
	var buf strings.Builder
	if err := base.Save(&buf); err != nil {
		return err
	}
	if _, err := db.Load(strings.NewReader(buf.String())); err != nil {
		return err
	}
	fullCopy := time.Since(t0)

	t0 = time.Now()
	if _, err := store.Materialize(derivedSnap.ID); err != nil {
		return err
	}
	materialize := time.Since(t0)

	st := store.Stats()
	res := snapshotResult{
		Experiment:      "snapshot",
		Tuples:          base.TupleCount(),
		Pages:           baseSnap.Pages,
		PageSize:        st.PageSize,
		CommitBaseMS:    float64(commitBase.Microseconds()) / 1000,
		CommitDerivedMS: float64(commitDerived.Microseconds()) / 1000,
		SharedPageRatio: sharedRatio,
		ForkMS:          forkMS,
		FullCopyMS:      float64(fullCopy.Microseconds()) / 1000,
		MaterializeMS:   float64(materialize.Microseconds()) / 1000,
		WALBytes:        st.WALBytes,
	}
	if forkMS > 0 {
		res.ForkSpeedup = res.FullCopyMS / forkMS
	}

	fmt.Printf("snapshot store: %d tuples, %d pages of %d bytes\n\n", res.Tuples, res.Pages, res.PageSize)
	fmt.Printf("%-24s %10.3f ms\n", "commit (base)", res.CommitBaseMS)
	fmt.Printf("%-24s %10.3f ms   shared ratio %.2f\n", "commit (derived)", res.CommitDerivedMS, res.SharedPageRatio)
	fmt.Printf("%-24s %10.3f ms   (avg over %d forks)\n", "fork", res.ForkMS, forks)
	fmt.Printf("%-24s %10.3f ms\n", "full copy (save+load)", res.FullCopyMS)
	fmt.Printf("%-24s %10.3f ms\n", "materialize", res.MaterializeMS)
	if res.ForkSpeedup > 0 {
		fmt.Printf("\nfork is %.0fx cheaper than a full copy at this scale\n", res.ForkSpeedup)
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	return nil
}
