// Command cdbbench regenerates the paper's evaluation (§5.4): it builds
// the joint and separate indexing structures over the published workload
// distributions and reports disk accesses per query, bucketed the way
// Figures 4 and 5 plot them.
//
// Usage:
//
//	cdbbench                    # all experiments at paper scale (10,000 boxes)
//	cdbbench -expt fig4         # only Figure 4 (expts 1-A and 1-B)
//	cdbbench -expt fig5         # only Figure 5 (expts 2-A and 2-B)
//	cdbbench -expt exp3         # the 500-query mixed workload
//	cdbbench -expt corner       # the §5.3 corner case
//	cdbbench -expt cqa          # parallel vs sequential CQA operator timings
//	cdbbench -scale 10          # 1/10th of the data for a quick run
//	cdbbench -page 512          # page (node) size in bytes
//	cdbbench -buckets 8         # plot buckets per series
//	cdbbench -verify            # check the paper's qualitative claims
//
// The cqa experiment times Join, Select, Intersect and Difference over
// workload-derived constraint relations, sequentially and on the parallel
// execution layer (-par workers, 0 = GOMAXPROCS; -cqasize tuples per
// side), and reports per-operator speedups; -stats adds the per-operator
// execution table (tuples in/out, satisfiability checks, pruned-unsat
// count, wall time).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/exec"
	"cdb/internal/experiments"
	"cdb/internal/rational"
	"cdb/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdbbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdbbench", flag.ContinueOnError)
	expt := fs.String("expt", "all", "experiment: fig4 | fig5 | exp3 | corner | all")
	scale := fs.Int("scale", 1, "shrink factor for the workload (1 = paper scale)")
	page := fs.Int("page", 4096, "page size in bytes (one R*-tree node per page)")
	buckets := fs.Int("buckets", 8, "buckets per rendered series")
	seed := fs.Int64("seed", 0, "override the workload seed (0 = default)")
	verify := fs.Bool("verify", false, "verify the paper's qualitative claims against the measurements")
	par := fs.Int("par", 0, "cqa experiment: worker-pool size (0 = GOMAXPROCS)")
	cqaSize := fs.Int("cqasize", 48, "cqa experiment: tuples per input relation")
	stats := fs.Bool("stats", false, "cqa experiment: print the per-operator execution table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := datagen.Scaled(*scale)
	if *seed != 0 {
		p.Seed = *seed
	}
	if *expt == "cqa" {
		return runCQA(p, *par, *cqaSize, *stats)
	}
	fmt.Printf("workload: %d boxes, %d queries, coords [0,%g], sizes [%g,%g], seed %d, page %d bytes\n\n",
		p.NumData, p.NumQueries, p.CoordMax, p.SizeMin, p.SizeMax, p.Seed, *page)

	var f4a, f4b, f5a, f5b, corner experiments.Series
	var err error
	show := func(s experiments.Series) {
		fmt.Println(s.Render(*buckets))
	}
	wantAll := *expt == "all" || *verify

	if *expt == "fig4" || wantAll {
		if f4a, err = experiments.Figure4A(p, *page); err != nil {
			return err
		}
		show(f4a)
		if f4b, err = experiments.Figure4B(p, *page); err != nil {
			return err
		}
		show(f4b)
	}
	if *expt == "fig5" || wantAll {
		if f5a, err = experiments.Figure5A(p, *page); err != nil {
			return err
		}
		show(f5a)
		if f5b, err = experiments.Figure5B(p, *page); err != nil {
			return err
		}
		show(f5b)
	}
	if *expt == "exp3" || wantAll {
		e3, err := experiments.Experiment3(p, *page)
		if err != nil {
			return err
		}
		show(e3)
	}
	if *expt == "corner" || wantAll {
		if corner, err = experiments.Corner(p, *page); err != nil {
			return err
		}
		show(corner)
	}
	switch *expt {
	case "fig4", "fig5", "exp3", "corner", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *expt)
	}

	if *verify {
		bad := experiments.VerifyShapes(f4a, f4b, f5a, f5b, corner)
		if len(bad) == 0 {
			fmt.Println("shape verification: all of the paper's qualitative claims hold on this run")
		} else {
			for _, b := range bad {
				fmt.Println("shape violation:", b)
			}
			return fmt.Errorf("%d shape violations", len(bad))
		}
	}
	return nil
}

// runCQA times the parallelised CQA operators over workload-derived
// constraint relations, sequentially and under the worker pool, and
// reports the speedup. Parallel output is byte-identical to sequential
// output (checked here on every run), so the timings compare equal work.
func runCQA(p datagen.Params, par, size int, stats bool) error {
	ecSeq := exec.New(1)
	ecPar := exec.New(par)
	ecPar.SeqThreshold = 1
	r1 := datagen.BoxRelation(p, size, 0)
	p2 := p
	p2.Seed = p.Seed + 1000
	r2 := datagen.BoxRelation(p2, size, 0)
	// A cross-product-style second input: no shared relational attribute,
	// so every tuple pair reaches the satisfiability check.
	r2x, err := cqa.Rename(r2, "id", "id2")
	if err != nil {
		return err
	}
	cond := cqa.Condition{
		cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(1500)),
		cqa.AttrCmpConst("y", cqa.OpNe, rational.FromInt(700)),
	}
	fmt.Printf("cqa operators: %d tuples per side (%d pairs), %d workers vs sequential\n\n",
		size, size*size, ecPar.Workers())
	type op struct {
		name string
		run  func(ec *exec.Context) (*relation.Relation, error)
	}
	ops := []op{
		{"join", func(ec *exec.Context) (*relation.Relation, error) { return cqa.JoinCtx(ec, r1, r2x) }},
		{"select", func(ec *exec.Context) (*relation.Relation, error) { return cqa.SelectCtx(ec, r1, cond) }},
		{"intersect", func(ec *exec.Context) (*relation.Relation, error) { return cqa.IntersectCtx(ec, r1, r2) }},
		{"difference", func(ec *exec.Context) (*relation.Relation, error) { return cqa.DifferenceCtx(ec, r1, r2) }},
	}
	fmt.Printf("%-12s %12s %12s %8s\n", "operator", "sequential", "parallel", "speedup")
	for _, o := range ops {
		t0 := time.Now()
		seqOut, err := o.run(ecSeq)
		if err != nil {
			return fmt.Errorf("%s sequential: %w", o.name, err)
		}
		seqWall := time.Since(t0)
		t0 = time.Now()
		parOut, err := o.run(ecPar)
		if err != nil {
			return fmt.Errorf("%s parallel: %w", o.name, err)
		}
		parWall := time.Since(t0)
		if seqOut.String() != parOut.String() {
			return fmt.Errorf("%s: parallel output diverges from sequential", o.name)
		}
		fmt.Printf("%-12s %12s %12s %7.2fx\n", o.name,
			seqWall.Round(time.Microsecond), parWall.Round(time.Microsecond),
			float64(seqWall)/float64(parWall))
	}
	if stats {
		fmt.Println("\nparallel run, per-operator stats:")
		fmt.Print(exec.FormatStats(ecPar.Summary()))
	}
	return nil
}
