// Command cdbbench regenerates the paper's evaluation (§5.4): it builds
// the joint and separate indexing structures over the published workload
// distributions and reports disk accesses per query, bucketed the way
// Figures 4 and 5 plot them.
//
// Usage:
//
//	cdbbench                    # all experiments at paper scale (10,000 boxes)
//	cdbbench -expt fig4         # only Figure 4 (expts 1-A and 1-B)
//	cdbbench -expt fig5         # only Figure 5 (expts 2-A and 2-B)
//	cdbbench -expt exp3         # the 500-query mixed workload
//	cdbbench -expt corner       # the §5.3 corner case
//	cdbbench -scale 10          # 1/10th of the data for a quick run
//	cdbbench -page 512          # page (node) size in bytes
//	cdbbench -buckets 8         # plot buckets per series
//	cdbbench -verify            # check the paper's qualitative claims
package main

import (
	"flag"
	"fmt"
	"os"

	"cdb/internal/datagen"
	"cdb/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cdbbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cdbbench", flag.ContinueOnError)
	expt := fs.String("expt", "all", "experiment: fig4 | fig5 | exp3 | corner | all")
	scale := fs.Int("scale", 1, "shrink factor for the workload (1 = paper scale)")
	page := fs.Int("page", 4096, "page size in bytes (one R*-tree node per page)")
	buckets := fs.Int("buckets", 8, "buckets per rendered series")
	seed := fs.Int64("seed", 0, "override the workload seed (0 = default)")
	verify := fs.Bool("verify", false, "verify the paper's qualitative claims against the measurements")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := datagen.Scaled(*scale)
	if *seed != 0 {
		p.Seed = *seed
	}
	fmt.Printf("workload: %d boxes, %d queries, coords [0,%g], sizes [%g,%g], seed %d, page %d bytes\n\n",
		p.NumData, p.NumQueries, p.CoordMax, p.SizeMin, p.SizeMax, p.Seed, *page)

	var f4a, f4b, f5a, f5b, corner experiments.Series
	var err error
	show := func(s experiments.Series) {
		fmt.Println(s.Render(*buckets))
	}
	wantAll := *expt == "all" || *verify

	if *expt == "fig4" || wantAll {
		if f4a, err = experiments.Figure4A(p, *page); err != nil {
			return err
		}
		show(f4a)
		if f4b, err = experiments.Figure4B(p, *page); err != nil {
			return err
		}
		show(f4b)
	}
	if *expt == "fig5" || wantAll {
		if f5a, err = experiments.Figure5A(p, *page); err != nil {
			return err
		}
		show(f5a)
		if f5b, err = experiments.Figure5B(p, *page); err != nil {
			return err
		}
		show(f5b)
	}
	if *expt == "exp3" || wantAll {
		e3, err := experiments.Experiment3(p, *page)
		if err != nil {
			return err
		}
		show(e3)
	}
	if *expt == "corner" || wantAll {
		if corner, err = experiments.Corner(p, *page); err != nil {
			return err
		}
		show(corner)
	}
	switch *expt {
	case "fig4", "fig5", "exp3", "corner", "all":
	default:
		return fmt.Errorf("unknown experiment %q", *expt)
	}

	if *verify {
		bad := experiments.VerifyShapes(f4a, f4b, f5a, f5b, corner)
		if len(bad) == 0 {
			fmt.Println("shape verification: all of the paper's qualitative claims hold on this run")
		} else {
			for _, b := range bad {
				fmt.Println("shape violation:", b)
			}
			return fmt.Errorf("%d shape violations", len(bad))
		}
	}
	return nil
}
