package cdb

import (
	"testing"

	"cdb/internal/core"
	"cdb/internal/cqa"
)

// cqaAttrGe builds "attr >= k" through the algebra's atom constructors.
func cqaAttrGe(attr string, k Rat) cqa.Atom {
	return cqa.AttrCmpConst(attr, cqa.OpGe, k)
}

// TestFacadeEndToEnd drives the whole system through the public facade
// only: build a heterogeneous database, query it in the ASCII language,
// run spatial operators, and touch the index layer.
func TestFacadeEndToEnd(t *testing.T) {
	land := NewRelation(MustSchema(
		Rel("landId", String), Con("x"), Con("y")))
	cs, err := ParseConstraints("x >= 0, x <= 4, y >= 0, y <= 4")
	if err != nil {
		t.Fatal(err)
	}
	land.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, And(cs...)))
	cs2, _ := ParseConstraints("x >= 5, x <= 9, y >= 0, y <= 4")
	land.MustAdd(NewTuple(map[string]Value{"landId": Str("B")}, And(cs2...)))

	d := NewDatabase()
	if err := d.Put("Land", land); err != nil {
		t.Fatal(err)
	}
	out, err := d.Run(`
R0 = select x >= 1, x + y <= 5 from Land
R1 = project R0 on landId, x`)
	if err != nil {
		t.Fatal(err)
	}
	// A contributes x in [1,4]; B's corner (5,0) also satisfies x+y <= 5,
	// pinning x to exactly 5 in the projected tuple.
	if out.Len() != 2 {
		t.Fatalf("query result:\n%s", out)
	}
	for _, tp := range out.Tuples() {
		id, _ := tp.RVal("landId")
		iv, ok := tp.Constraint().VarBounds("x")
		if !ok {
			t.Fatalf("unsat tuple: %s", tp)
		}
		switch s, _ := id.AsString(); s {
		case "A":
			if !iv.Lower.Equal(RatFromInt(1)) || !iv.Upper.Equal(RatFromInt(4)) {
				t.Errorf("A bounds = %+v", iv)
			}
		case "B":
			if !iv.IsPoint() || !iv.Lower.Equal(RatFromInt(5)) {
				t.Errorf("B bounds = %+v", iv)
			}
		default:
			t.Errorf("unexpected id %s", id)
		}
	}

	// Algebra functions re-exported.
	sel, err := Select(land, Condition{})
	if err != nil || sel.Len() != 2 {
		t.Errorf("empty-condition select: %v %v", sel.Len(), err)
	}
	ren, err := Rename(land, "x", "lon")
	if err != nil || !ren.Schema().Has("lon") {
		t.Errorf("rename: %v", err)
	}
	diff, err := Difference(land, land)
	if err != nil || diff.Len() != 0 {
		t.Errorf("self difference: %d, %v", diff.Len(), err)
	}

	// Spatial layer.
	layer := NewLayer("parcels")
	poly, err := NewPolygon([]Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)})
	if err != nil {
		t.Fatal(err)
	}
	layer.MustAdd(Feature{ID: "A", Geom: RegionGeom(poly)})
	layer.MustAdd(Feature{ID: "P", Geom: PointGeom(Pt(10, 0))})
	pairs, err := BufferJoin(layer, layer, RatFromInt(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Errorf("buffer join pairs = %v", pairs)
	}
	ns, err := KNearest(layer, PointGeom(Pt(9, 0)), 1)
	if err != nil || len(ns) != 1 || ns[0].ID != "P" {
		t.Errorf("k nearest = %v, %v", ns, err)
	}
	if !SqDist(PointGeom(Pt(0, 0)), PointGeom(Pt(3, 4))).Equal(RatFromInt(25)) {
		t.Error("SqDist wrong")
	}
	if d := DistanceApprox(PointGeom(Pt(0, 0)), PointGeom(Pt(3, 4))); d < 4.999 || d > 5.001 {
		t.Errorf("DistanceApprox = %g", d)
	}

	// Index layer.
	joint, err := NewJointIndex(2, 0, RStarOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := joint.Add(Rect2(float64(i), 0, float64(i)+1, 1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Boxes [9,10], [10,11], [11,12], [12,13] all touch [10,12] (closed
	// rectangles intersect at shared edges).
	ids, accesses, err := joint.Query(Rect2(10, 0, 12, 1))
	if err != nil || len(ids) != 4 || accesses == 0 {
		t.Errorf("index query: %v ids, %d accesses, %v", ids, accesses, err)
	}

	// Rationals.
	if !MustRat("2/4").Equal(MustRat("1/2")) {
		t.Error("rational equality")
	}
	if _, err := ParseRat("zebra"); err == nil {
		t.Error("ParseRat accepted garbage")
	}
}

// TestCorePackage exercises the narrow internal/core re-export.
func TestCorePackage(t *testing.T) {
	s, err := core.NewSchema(core.Rel("id", String), core.Con("x"))
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRelation(s)
	cs, _ := ParseConstraints("x >= 0, x <= 1")
	r.MustAdd(NewTuple(map[string]Value{"id": Str("a")}, And(cs...)))
	got, err := core.Project(r, "x")
	if err != nil || got.Len() != 1 {
		t.Fatalf("core project: %v %v", got, err)
	}
	u, err := core.Union(r, r)
	if err != nil || u.Len() != 1 {
		t.Errorf("core union: %v %v", u, err)
	}
}

// TestExperimentRunnersExported smoke-tests the re-exported experiment
// API at tiny scale.
func TestExperimentRunnersExported(t *testing.T) {
	p := PaperWorkload()
	p.NumData, p.NumQueries = 300, 10
	s, err := Figure4A(p, 512)
	if err != nil {
		t.Fatal(err)
	}
	j, sep, _ := s.Totals()
	if j == 0 || sep == 0 {
		t.Errorf("totals: %d %d", j, sep)
	}
	if s2, err := CornerCase(p, 512); err != nil || len(s2.Costs) == 0 {
		t.Errorf("corner: %v", err)
	}
}

// TestNestedAndIndefiniteFacade drives the §6 nested representation and
// the §3.1 indefinite-information extension through the facade.
func TestNestedAndIndefiniteFacade(t *testing.T) {
	s := MustSchema(Rel("id", String), Con("x"))
	flat := NewRelation(s)
	cs1, _ := ParseConstraints("x >= 0, x <= 1")
	cs2, _ := ParseConstraints("x >= 2, x <= 3")
	flat.MustAdd(NewTuple(map[string]Value{"id": Str("f")}, And(cs1...)))
	flat.MustAdd(NewTuple(map[string]Value{"id": Str("f")}, And(cs2...)))

	n := Nest(flat)
	if n.Len() != 1 || len(n.Tuples()[0].Extent()) != 2 {
		t.Fatalf("nested: %s", n)
	}
	back, err := n.Unnest()
	if err != nil || !back.Equivalent(flat) {
		t.Errorf("unnest: %v", err)
	}

	ind, err := NewIndefinite(flat)
	if err != nil {
		t.Fatal(err)
	}
	cond := Condition{cqaAttrGe("x", RatFromInt(1))}
	poss, err := ind.Select(cond, Possibly)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ind.Select(cond, Certainly)
	if err != nil {
		t.Fatal(err)
	}
	// x >= 1: the [0,1] tuple possibly (x could be 1) but not certainly;
	// the [2,3] tuple certainly.
	if poss.Len() != 2 || cert.Len() != 1 {
		t.Errorf("possible %d, certain %d", poss.Len(), cert.Len())
	}
}
