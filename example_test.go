package cdb_test

import (
	"fmt"
	"log"

	"cdb"
)

// ExampleDatabase_Run shows the paper's Example 3 through the ASCII query
// language: the same data answers differently depending on which attribute
// the condition touches, because x is relational (narrow NULL semantics)
// and y is a constraint attribute (broad semantics).
func ExampleDatabase_Run() {
	s := cdb.MustSchema(cdb.Rel("x", cdb.Rational), cdb.Con("y"))
	r := cdb.NewRelation(s)
	yEq := func(k int64) cdb.Conjunction {
		c, _ := cdb.NewConstraint(cdb.VarExpr("y"), "=", cdb.ConstExpr(cdb.RatFromInt(k)))
		return cdb.And(c)
	}
	r.MustAdd(cdb.NewTuple(map[string]cdb.Value{"x": cdb.IntVal(1)}, cdb.And()))
	r.MustAdd(cdb.NewTuple(nil, yEq(1)))
	r.MustAdd(cdb.NewTuple(map[string]cdb.Value{"x": cdb.IntVal(17)}, yEq(17)))

	d := cdb.NewDatabase()
	if err := d.Put("R", r); err != nil {
		log.Fatal(err)
	}
	byX, _ := d.Run(`A = select x = 17 from R`)
	byY, _ := d.Run(`A = select y = 17 from R`)
	fmt.Printf("select x=17: %d tuple(s)\n", byX.Len())
	fmt.Printf("select y=17: %d tuple(s)\n", byY.Len())
	// Output:
	// select x=17: 1 tuple(s)
	// select y=17: 2 tuple(s)
}

// ExampleKNearest shows a whole-feature operator: exact squared-distance
// ranking with deterministic tie-breaks.
func ExampleKNearest() {
	l := cdb.NewLayer("towns")
	square := func(x0, y0 int64) cdb.Feature {
		p, _ := cdb.NewPolygon([]cdb.Point{
			cdb.Pt(x0, y0), cdb.Pt(x0+4, y0), cdb.Pt(x0+4, y0+4), cdb.Pt(x0, y0+4)})
		return cdb.Feature{Geom: cdb.RegionGeom(p)}
	}
	a, b := square(0, 0), square(10, 0)
	a.ID, b.ID = "west", "east"
	l.MustAdd(a)
	l.MustAdd(b)
	ns, _ := cdb.KNearest(l, cdb.PointGeom(cdb.Pt(7, 2)), 2)
	for _, n := range ns {
		fmt.Printf("%s sqdist=%s\n", n.ID, n.SqDist)
	}
	// Output:
	// east sqdist=9
	// west sqdist=9
}

// ExampleParseRules runs a declarative rule against a database built in
// code: repeated variables express the join.
func ExampleParseRules() {
	land := cdb.NewRelation(cdb.MustSchema(
		cdb.Rel("id", cdb.String), cdb.Con("x")))
	cs, _ := cdb.ParseConstraints("x >= 0, x <= 5")
	land.MustAdd(cdb.NewTuple(map[string]cdb.Value{"id": cdb.Str("A")}, cdb.And(cs...)))

	prog, _ := cdb.ParseRules(`near(id) :- Land(id, x), x <= 2.`)
	out, _ := prog.Run(cdb.Env{"Land": land})
	fmt.Println(out.Len(), "feature(s)")
	// Output:
	// 1 feature(s)
}
