// Hurricane: the paper's §3.3 case study, end to end.
//
// Prints the heterogeneous database instance (Figure 2, reconstructed)
// and runs the five case-study queries in the ASCII query language.
//
// Run: go run ./examples/hurricane
package main

import (
	"fmt"
	"log"

	"cdb/internal/hurricane"
)

func main() {
	d := hurricane.Build()

	fmt.Println("=== The Hurricane Database (heterogeneous data model) ===")
	for _, name := range d.Names() {
		r, _ := d.Get(name)
		fmt.Printf("\n%s %s\n", name, r.Schema())
		for _, t := range r.Sorted() {
			fmt.Printf("  %s\n", t)
		}
	}

	for _, nq := range hurricane.Queries() {
		fmt.Printf("\n=== %s: %s ===\n", nq.Name, nq.Description)
		fmt.Println(nq.Text)
		out, err := d.Run(nq.Text)
		if err != nil {
			log.Fatalf("%s: %v", nq.Name, err)
		}
		fmt.Println("-- result --")
		fmt.Println(out)
	}
}
