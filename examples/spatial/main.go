// Spatial: the §4 whole-feature operators on a synthetic city.
//
// Builds feature layers (hospitals as points, roads as polylines,
// districts as polygons — one concave), runs Buffer-Join and k-Nearest,
// and shows why these operators are *safe* while raw distance is not:
// every comparison happens on exact squared distances, and the results
// are plain relations over feature IDs.
//
// Run: go run ./examples/spatial
package main

import (
	"fmt"
	"log"

	"cdb"
)

func main() {
	// Districts: two rectangles and one concave L-shaped district.
	districts := cdb.NewLayer("districts")
	addRegion := func(id string, verts ...cdb.Point) {
		p, err := cdb.NewPolygon(verts)
		if err != nil {
			log.Fatal(err)
		}
		districts.MustAdd(cdb.Feature{ID: id, Geom: cdb.RegionGeom(p)})
	}
	addRegion("old-town", cdb.Pt(0, 0), cdb.Pt(40, 0), cdb.Pt(40, 40), cdb.Pt(0, 40))
	addRegion("harbour", cdb.Pt(60, 0), cdb.Pt(100, 0), cdb.Pt(100, 30), cdb.Pt(60, 30))
	addRegion("riverside", // concave L
		cdb.Pt(0, 60), cdb.Pt(50, 60), cdb.Pt(50, 80),
		cdb.Pt(20, 80), cdb.Pt(20, 100), cdb.Pt(0, 100))

	// Roads.
	roads := cdb.NewLayer("roads")
	addRoad := func(id string, verts ...cdb.Point) {
		l, err := cdb.NewPolyline(verts)
		if err != nil {
			log.Fatal(err)
		}
		roads.MustAdd(cdb.Feature{ID: id, Geom: cdb.LineGeom(l)})
	}
	addRoad("main-st", cdb.Pt(50, -10), cdb.Pt(50, 110))  // between old-town and harbour
	addRoad("shore-rd", cdb.Pt(-10, 50), cdb.Pt(110, 50)) // between old-town and riverside
	addRoad("diagonal", cdb.Pt(90, 90), cdb.Pt(120, 120)) // far corner

	// Hospitals.
	hospitals := cdb.NewLayer("hospitals")
	for _, h := range []struct {
		id   string
		x, y int64
	}{
		{"st-mary", 45, 45}, {"general", 95, 10}, {"north", 10, 95}, {"east", 105, 55},
	} {
		hospitals.MustAdd(cdb.Feature{ID: h.id, Geom: cdb.PointGeom(cdb.Pt(h.x, h.y))})
	}

	// Buffer-Join: districts within distance 12 of each road — "which
	// districts does each road serve?" (cf. the paper's Example 5: the
	// area within 5 miles of the hurricane's path).
	twelve := cdb.RatFromInt(12)
	pairs, err := cdb.BufferJoin(roads, districts, twelve)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Buffer-Join(roads, districts, 12):")
	for _, p := range pairs {
		fmt.Printf("  %-10s serves %s\n", p.Left, p.Right)
	}

	// The same operator at an exact boundary: old-town ends at x=40,
	// main-st runs at x=50 — distance exactly 10. Included at 10,
	// excluded at 9999/1000. No epsilon anywhere.
	ten := cdb.RatFromInt(10)
	almostTen := cdb.MustRat("9999/1000")
	at10, _ := cdb.BufferJoin(roads, districts, ten)
	at999, _ := cdb.BufferJoin(roads, districts, almostTen)
	fmt.Printf("\nexact boundary: %d pairs at distance 10, %d at 9.999\n", len(at10), len(at999))

	// k-Nearest: the 2 hospitals nearest each district's centre of
	// interest (cf. Example 6).
	fmt.Println("\nk-Nearest(hospitals, district, k=2):")
	for _, d := range districts.Features() {
		ns, err := cdb.KNearest(hospitals, d.Geom, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s ->", d.ID)
		for _, n := range ns {
			fmt.Printf("  %s (sqdist %s)", n.ID, n.SqDist)
		}
		fmt.Println()
	}

	// Safety (§2.4/§4): the operators above returned *relations over
	// feature IDs* — representable, closed, safe. The distance itself is
	// irrational in general; printing it requires leaving the constraint
	// class (display only):
	st, _ := hospitals.Get("st-mary")
	ot, _ := districts.Get("old-town")
	fmt.Printf("\ndisplay-only distance st-mary -> old-town: %.6f (sqdist is the exact object: %s)\n",
		cdb.DistanceApprox(st.Geom, ot.Geom), cdb.SqDist(st.Geom, ot.Geom))
}
