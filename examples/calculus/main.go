// Calculus: the declarative side of the CQC ≡ CQA story (§2.2).
//
// The same Hurricane queries, written as conjunctive rules instead of
// algebra programs. Rules are translated to CQA plans, optimised, and
// evaluated — "declarative user queries are translated into algebraic
// expressions before they are optimized and evaluated".
//
// Run: go run ./examples/calculus
package main

import (
	"fmt"
	"log"

	"cdb"
	"cdb/internal/hurricane"
)

func main() {
	d := hurricane.Build()
	env := d.Env()

	programs := []struct {
		title string
		src   string
	}{
		{
			"Query 1: who owned Land A and when (constant in a comparison)",
			`owned(name, t) :- Landownership(name, t, id), id = "A".`,
		},
		{
			"Query 2: lands the hurricane passed (join by repeated variables)",
			`passed(id) :- Hurricane(t, x, y), Land(id, x, y).`,
		},
		{
			"Query 3: owners hit during [4,9] (two rules, comparisons)",
			`hitAt(name, t) :- Landownership(name, t, id), Land(id, x, y), Hurricane(t, x, y).
answer(name)   :- hitAt(name, t), t >= 4, t <= 9.`,
		},
		{
			"Where was the hurricane at t = 6? (rational constant in an atom)",
			`at6(x, y) :- Hurricane(6, x, y).`,
		},
		{
			"Self-symmetric track points: x = y via a repeated variable",
			`sym(t) :- Hurricane(t, v, v).`,
		},
	}

	for _, p := range programs {
		fmt.Printf("=== %s ===\n%s\n", p.title, p.src)
		prog, err := cdb.ParseRules(p.src)
		if err != nil {
			log.Fatal(err)
		}
		out, err := prog.Run(env)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("-- result --\n%s\n\n", out)
	}

	fmt.Println("Every rule above was translated to a CQA plan (rename/join/select/")
	fmt.Println("project), optimised by selection pushdown, and evaluated by the")
	fmt.Println("algebra — the CQC-to-CQA pipeline of the paper's Figure 1.")
}
