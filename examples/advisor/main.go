// Advisor: solving the paper's §5 open problem empirically.
//
// "Given a constraint relation over attributes X = {x1, ..., xk},
//
//	determine a set of subsets of X that should correspond to indices
//	over X, with one index per subset."
//
// This example builds a 3-attribute relation (think: x, y, t of a
// spatiotemporal relation) and three different workloads, and lets the
// advisor enumerate every attribute partition, replay the workload on
// each, and report the measured disk-access costs.
//
// Run: go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cdb"
)

func main() {
	rng := rand.New(rand.NewSource(2003))
	const n = 3000

	// Data: 3-D boxes — two spatial extents plus a time interval.
	var data []cdb.Rect
	for i := 0; i < n; i++ {
		x, y, t := rng.Float64()*3000, rng.Float64()*3000, rng.Float64()*3000
		w, h, d := 1+rng.Float64()*99, 1+rng.Float64()*99, 1+rng.Float64()*99
		r, err := cdb.NewRect([]float64{x, y, t}, []float64{x + w, y + h, t + d})
		if err != nil {
			log.Fatal(err)
		}
		data = append(data, r)
	}

	workloads := map[string][]cdb.Rect{}
	// Workload 1: spatial window queries (x and y together, t free).
	for i := 0; i < 40; i++ {
		lx, ly := rng.Float64()*2900, rng.Float64()*2900
		workloads["spatial windows (x,y)"] = append(workloads["spatial windows (x,y)"],
			cdb.UnboundedQuery(3, map[int][2]float64{0: {lx, lx + 100}, 1: {ly, ly + 100}}))
	}
	// Workload 2: pure time-slice queries.
	for i := 0; i < 40; i++ {
		lt := rng.Float64() * 2900
		workloads["time slices (t)"] = append(workloads["time slices (t)"],
			cdb.UnboundedQuery(3, map[int][2]float64{2: {lt, lt + 50}}))
	}
	// Workload 3: spatiotemporal boxes (all three).
	for i := 0; i < 40; i++ {
		lx, ly, lt := rng.Float64()*2900, rng.Float64()*2900, rng.Float64()*2900
		workloads["spatiotemporal boxes (x,y,t)"] = append(workloads["spatiotemporal boxes (x,y,t)"],
			cdb.UnboundedQuery(3, map[int][2]float64{
				0: {lx, lx + 150}, 1: {ly, ly + 150}, 2: {lt, lt + 150}}))
	}

	for _, name := range []string{"spatial windows (x,y)", "time slices (t)", "spatiotemporal boxes (x,y,t)"} {
		adv, err := cdb.AdviseIndexes(3, data, workloads[name], 512, cdb.RStarOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload: %s\n", name)
		for i, c := range adv.Candidates {
			marker := "  "
			if i == 0 {
				marker = "->"
			}
			fmt.Printf("  %s %-18s %7d accesses\n", marker, c, c.Accesses)
		}
		fmt.Println()
	}
	fmt.Println("(x0, x1 = spatial attributes; x2 = time)")
	fmt.Println("The advisor derives the paper's §5.4 findings instead of asserting them:")
	fmt.Println("co-queried attributes belong in one joint index; never-co-queried ones apart.")
}
