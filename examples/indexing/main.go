// Indexing: the §5 narrative — joint vs. separate multi-attribute
// indexing — on a miniature of the paper's workload, with live
// disk-access counts.
//
// A relational attribute value is a degenerate interval and a constraint
// attribute's range is a proper interval, so both attribute kinds index
// uniformly as rectangles; the question §5 answers is whether to put two
// indexed attributes in one 2-D R*-tree (joint) or in two 1-D R*-trees
// (separate).
//
// Run: go run ./examples/indexing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cdb"
)

func main() {
	const n = 5000
	rng := rand.New(rand.NewSource(7))

	joint, err := cdb.NewJointIndex(2, 0, cdb.RStarOptions{})
	if err != nil {
		log.Fatal(err)
	}
	sep, err := cdb.NewSeparateIndex(2, 0, cdb.RStarOptions{})
	if err != nil {
		log.Fatal(err)
	}
	scan := cdb.NewScanIndex(2, 4096)

	// The paper's data distribution: boxes with sides in [1,100], corners
	// in [0,3000]².
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*3000, rng.Float64()*3000
		w, h := 1+rng.Float64()*99, 1+rng.Float64()*99
		r := cdb.Rect2(x, y, x+w, y+h)
		for _, ix := range []cdb.Index{joint, sep, scan} {
			if err := ix.Add(r, int64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("indexed %d boxes in a joint 2-D R*-tree, two separate 1-D R*-trees, and a heap file\n\n", n)

	show := func(title string, q cdb.Rect) {
		idsJ, aj, err := joint.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		idsS, as, _ := sep.Query(q)
		_, ac, _ := scan.Query(q)
		fmt.Printf("%-46s %5d results | joint %4d, separate %4d, scan %4d accesses\n",
			title, len(idsJ), aj, as, ac)
		if len(idsJ) != len(idsS) {
			log.Fatalf("strategies disagree: %d vs %d", len(idsJ), len(idsS))
		}
	}

	fmt.Println("-- queries restricting BOTH attributes (§5.4.1: joint wins) --")
	show("small window [100,200]x[100,200]", cdb.Rect2(100, 100, 200, 200))
	show("medium window [0,600]x[0,600]", cdb.Rect2(0, 0, 600, 600))
	show("large window [0,1500]x[0,1500]", cdb.Rect2(0, 0, 1500, 1500))

	fmt.Println("\n-- queries restricting ONE attribute (§5.4.2: separate wins) --")
	show("x in [100,200], y free",
		cdb.UnboundedQuery(2, map[int][2]float64{0: {100, 200}}))
	show("y in [2000,2100], x free",
		cdb.UnboundedQuery(2, map[int][2]float64{1: {2000, 2100}}))

	fmt.Println("\n-- the §5.3 corner case: individually ~50% selective, jointly empty --")
	// Rebuild with diagonal data so x<=a correlates with y<=a.
	jointD, _ := cdb.NewJointIndex(2, 0, cdb.RStarOptions{})
	sepD, _ := cdb.NewSeparateIndex(2, 0, cdb.RStarOptions{})
	for i := 0; i < n; i++ {
		base := rng.Float64() * 3000
		r := cdb.Rect2(base, base, base+10, base+10)
		_ = jointD.Add(r, int64(i))
		_ = sepD.Add(r, int64(i))
	}
	q := cdb.Rect2(-1e308, 1500, 1500, 1e308) // x <= 1500 AND y >= 1500
	idsJ, aj, _ := jointD.Query(q)
	idsS, as, _ := sepD.Query(q)
	fmt.Printf("x<=1500 AND y>=1500 on diagonal data: %d results | joint %d accesses (logarithmic), separate %d (linear-ish)\n",
		len(idsJ), aj, as)
	if len(idsJ) != len(idsS) {
		log.Fatal("strategies disagree")
	}
}
