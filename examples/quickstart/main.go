// Quickstart: the heterogeneous data model and CQA in ~80 lines.
//
// Builds the paper's Example 3 relation (one relational attribute, one
// constraint attribute), shows the narrow/broad missing-attribute
// semantics, and runs a multi-step query in the ASCII query language.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cdb"
)

func main() {
	// Example 3 (§3.2): R = {(x=1), (y=1), (x=17, y=17)} with schema
	// [x: relational, y: constraint].
	s := cdb.MustSchema(
		cdb.Rel("x", cdb.Rational), // relational: missing ⇒ NULL (narrow)
		cdb.Con("y"),               // constraint: missing ⇒ any value (broad)
	)
	r := cdb.NewRelation(s)
	one, seventeen := cdb.RatFromInt(1), cdb.RatFromInt(17)

	// (x = 1): y is unconstrained, so it broadly admits every value.
	r.MustAdd(cdb.NewTuple(map[string]cdb.Value{"x": cdb.RatVal(one)}, cdb.And()))
	// (y = 1): x is NULL, which narrowly matches nothing.
	yEq1, err := cdb.NewConstraint(cdb.VarExpr("y"), "=", cdb.ConstExpr(one))
	if err != nil {
		log.Fatal(err)
	}
	r.MustAdd(cdb.NewTuple(nil, cdb.And(yEq1)))
	// (x = 17, y = 17).
	yEq17, _ := cdb.NewConstraint(cdb.VarExpr("y"), "=", cdb.ConstExpr(seventeen))
	r.MustAdd(cdb.NewTuple(map[string]cdb.Value{"x": cdb.RatVal(seventeen)}, cdb.And(yEq17)))

	d := cdb.NewDatabase()
	if err := d.Put("R", r); err != nil {
		log.Fatal(err)
	}

	// The paper's asymmetry, through the query language:
	// ς_{x=17} R returns one tuple (narrow: the (y=1) tuple has x = NULL).
	out1, err := d.Run(`A = select x = 17 from R`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select x = 17 from R  ->  %d tuple(s)\n%s\n\n", out1.Len(), out1)

	// ς_{y=17} R returns two tuples (broad: the (x=1) tuple's free y
	// admits 17).
	out2, err := d.Run(`A = select y = 17 from R`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select y = 17 from R  ->  %d tuple(s)\n%s\n\n", out2.Len(), out2)

	// A multi-step program: infinite data, finite answers. The constraint
	// attribute y ranges over an interval after a selection.
	out3, err := d.Run(`
S0 = select y >= 3, y <= 20 from R
S1 = project S0 on y`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("project (select 3 <= y <= 20 from R) on y:\n%s\n", out3)

	// Exactness: coefficients are rationals, not floats.
	out4, err := d.Run(`T = select 1/3y <= 1/3 from R`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselect 1/3·y <= 1/3 (exact arithmetic, y <= 1):\n%s\n", out4)
}
