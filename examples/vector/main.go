// Vector: the §6 argument — taking constraints out of CDBs.
//
// Shows the same spatial feature in both middle-layer representations:
// as rational linear constraint tuples and as a vertex list; converts
// losslessly in both directions; demonstrates the two redundancies §6
// identifies in the constraint form; and reproduces Example 8
// (projection by coordinate extrema on the vector side vs.
// Fourier-Motzkin elimination on the constraint side).
//
// Run: go run ./examples/vector
package main

import (
	"fmt"
	"log"

	"cdb/internal/constraint"
	"cdb/internal/convert"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

func main() {
	// A concave lake outline (an L-shape): the vector representation is
	// one vertex ring.
	lake := geometry.MustPolygon(
		geometry.Pt(0, 0), geometry.Pt(8, 0), geometry.Pt(8, 3),
		geometry.Pt(4, 3), geometry.Pt(4, 6), geometry.Pt(0, 6))
	fmt.Println("vector form (one vertex ring):")
	fmt.Printf("  %s  (area %s)\n\n", lake, lake.Area())

	// Constraint form: a union of convex constraint tuples (§6: "the
	// constraint data model requires us to represent this feature as a
	// union of convex polyhedra").
	tuples, err := convert.PolygonToConjunctions(lake, "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraint form (%d convex tuples):\n", len(tuples))
	for i, j := range tuples {
		fmt.Printf("  tuple %d: %s\n", i+1, j)
	}

	// Redundancy 2 (§6): "the constraints representing the boundaries of
	// each ... convex polyhedron are the same as for the tuples
	// representing neighboring ... polyhedra". Count repeated constraint
	// keys across tuples.
	// Two neighbouring tuples share a boundary *line* (each sees it from
	// the opposite side), so count distinct supporting lines: the key of
	// the constraint's boundary equality.
	seen := map[string]int{}
	for _, j := range tuples {
		for _, c := range j.Constraints() {
			line := constraint.Constraint{Expr: c.Expr, Op: constraint.Eq}
			seen[line.Key()]++
		}
	}
	shared := 0
	for _, n := range seen {
		if n > 1 {
			shared++
		}
	}
	fmt.Printf("\nboundary lines stored by more than one tuple: %d (the §6 type-2 redundancy)\n\n", shared)

	// Example 8: projection onto x. Vector side: take the extrema of the
	// vertex x-coordinates. Constraint side: eliminate y by
	// Fourier-Motzkin from every tuple and combine.
	minX, _, maxX, _ := lake.BBox()
	fmt.Printf("Example 8 — projection onto x:\n")
	fmt.Printf("  vector side (coordinate extrema):        [%s, %s]\n", minX, maxX)

	lo, hi, ok := projectUnion(tuples, "x")
	if !ok {
		log.Fatal("constraint-side projection empty")
	}
	fmt.Printf("  constraint side (Fourier-Motzkin):       [%s, %s]\n", lo, hi)
	if !lo.Equal(minX) || !hi.Equal(maxX) {
		log.Fatal("representations disagree!")
	}
	fmt.Println("  both representations agree exactly.")

	// Reverse conversion (§6: display requires constraints -> vertices).
	fmt.Println("\nreverse conversion (constraint tuples back to vertex lists):")
	var total = constraintAreaSum(tuples)
	fmt.Printf("  sum of reconstructed piece areas: %s (lake area %s)\n", total, lake.Area())

	// A linear feature: the three-constraint-per-segment form.
	river := geometry.MustPolyline(geometry.Pt(-2, 7), geometry.Pt(3, 9), geometry.Pt(9, 8))
	segTuples := convert.PolylineToConjunctions(river, "x", "y")
	fmt.Printf("\nriver %s\nas %d constraint tuples (one per segment):\n", river, len(segTuples))
	for i, j := range segTuples {
		fmt.Printf("  tuple %d: %s\n", i+1, j)
	}
	back, err := convert.ConjunctionToSegment(segTuples[0], "x", "y")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first tuple converts back to segment %s\n", back)
}

// projectUnion projects a union of conjunctions onto one variable by
// Fourier-Motzkin elimination and returns the combined closed range.
func projectUnion(tuples []constraint.Conjunction, v string) (lo, hi rational.Rat, ok bool) {
	first := true
	for _, j := range tuples {
		iv, sat := j.VarBounds(v)
		if !sat || !iv.HasLower || !iv.HasUpper {
			continue
		}
		if first {
			lo, hi, first = iv.Lower, iv.Upper, false
			continue
		}
		lo = rational.Min(lo, iv.Lower)
		hi = rational.Max(hi, iv.Upper)
	}
	return lo, hi, !first
}

// constraintAreaSum reconstructs each tuple's polygon and sums the areas.
func constraintAreaSum(tuples []constraint.Conjunction) string {
	total := rational.Zero
	for _, j := range tuples {
		poly, err := convert.ConjunctionToPolygon(j, "x", "y")
		if err != nil {
			log.Fatal(err)
		}
		total = total.Add(poly.Area())
	}
	return total.String()
}
