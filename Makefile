GO ?= go

.PHONY: build test check bench bench-parallel

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-submit gate: vet + race-enabled tests (same as scripts/check.sh).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

bench-parallel:
	$(GO) test -bench Parallel -benchtime 5x .
