GO ?= go

.PHONY: build test check bench bench-parallel bench-canon

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-submit gate: vet + race-enabled tests (same as scripts/check.sh).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

bench-parallel:
	$(GO) test -bench Parallel -benchtime 5x .

# Measures what the canonical-form sat-cache saves: raw Fourier-Motzkin
# decision counts and wall time, cold vs warm, on the cqa operator
# workload. Writes the measurements to BENCH_canon.json.
bench-canon:
	$(GO) run ./cmd/cdbbench -expt canon -cqasize 48 -rounds 5 -json BENCH_canon.json
