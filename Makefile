GO ?= go

.PHONY: build test check bench bench-parallel bench-all bench-canon bench-prune bench-plan bench-vector bench-snapshot obs-demo fuzz diff serve

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-submit gate: vet + race-enabled tests (same as scripts/check.sh).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

bench-parallel:
	$(GO) test -bench Parallel -benchtime 5x .

# The multi-session HTTP server on the hurricane demo database (:8344).
# See docs/SERVER.md for the API; SIGINT/SIGTERM drains and exits 0.
serve:
	$(GO) run ./cmd/cqacdbd -demo hurricane

# EXPLAIN ANALYZE demo: the hurricane case study with the span tree and
# the per-operator stats table. Add -metrics-addr 127.0.0.1:9190 to poke
# /metrics and /debug/pprof/ while a session runs.
obs-demo:
	$(GO) run ./cmd/cqacdb -demo hurricane -par 4 -explain -stats \
		-e "$$(printf 'R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name')"

# Regenerates all three committed measurement files in one shot. Run it
# before committing a change that touches the kernel, the pairing engine
# or the planner, and review the wall-time movement against the old
# files with scripts/benchdiff.sh:
#
#   git stash -- BENCH_*.json   # or: git show HEAD:BENCH_plan.json > /tmp/old.json
#   make bench-all
#   scripts/benchdiff.sh /tmp/old.json BENCH_plan.json
bench-all: bench-canon bench-prune bench-plan bench-vector bench-snapshot

# Measures what the canonical-form sat-cache saves: raw Fourier-Motzkin
# decision counts and wall time, cold vs warm, on the cqa operator
# workload. Writes the measurements to BENCH_canon.json.
bench-canon:
	$(GO) run ./cmd/cdbbench -expt canon -cqasize 48 -rounds 5 -json BENCH_canon.json

# Measures the filter-and-refine candidate filter: pairs considered vs
# pruned, refine-stage sat decisions and wall time, filter on vs off, on
# dense / skewed-bucket / spatially-clustered workloads. Fails unless the
# outputs are byte-identical in both modes. Writes BENCH_prune.json;
# compare two runs with scripts/benchdiff.sh OLD.json NEW.json.
bench-prune:
	$(GO) run ./cmd/cdbbench -expt prune -cqasize 96 -rounds 3 -json BENCH_prune.json

# Measures the physical planner's pairing strategies: each binary operator
# on each workload under every forced -plan mode and under the cost
# model's auto pick — wall time, sat decisions, est_pairs vs act_pairs.
# Fails unless all strategies produce byte-identical output. Writes
# BENCH_plan.json; compare two runs with scripts/benchdiff.sh.
bench-plan:
	$(GO) run ./cmd/cdbbench -expt plan -cqasize 96 -rounds 3 -json BENCH_plan.json

# Measures the vector-representation fast path: spatial select, intersect
# and difference over polygon workloads, pure Fourier-Motzkin (forced
# dense) vs exact polygon clipping (forced vector) vs the cost-based auto
# pick — wall time, raw FM decision counts, vector hit/fallback counters.
# Fails unless every mode's output is byte-identical. Writes
# BENCH_vector.json; compare two runs with scripts/benchdiff.sh.
bench-vector:
	$(GO) run ./cmd/cdbbench -expt vector -cqasize 48 -rounds 3 -json BENCH_vector.json

# Measures the copy-on-write snapshot store: commit cost, page-sharing
# ratio of a derived commit, O(1) fork vs a full save+load copy, and
# materialize cost. Writes BENCH_snapshot.json; compare two runs with
# scripts/benchdiff.sh.
bench-snapshot:
	$(GO) run ./cmd/cdbbench -expt snapshot -json BENCH_snapshot.json

# Native fuzzing: 30s per target. go's -fuzz takes one package at a time,
# so the seven targets run sequentially (~3.5min total). Inputs that fail are
# auto-saved under the package's testdata/fuzz/<Target>/ — commit them;
# they replay as regression tests in every ordinary `go test` run.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/constraint -run '^$$' -fuzz '^FuzzCanon$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/constraint -run '^$$' -fuzz '^FuzzFourierMotzkin$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query -run '^$$' -fuzz '^FuzzQueryParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/calculus -run '^$$' -fuzz '^FuzzCalculusParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/snapshot -run '^$$' -fuzz '^FuzzManifest$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/snapshot -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/vector -run '^$$' -fuzz '^FuzzVectorRoundTrip$$' -fuzztime $(FUZZTIME)

# Differential check against the semantic oracle: 500 seeded random cases
# across all seven CQA operators, engine vs naive reference evaluator.
diff:
	$(GO) run ./cmd/cdbbench -expt diff -n 500 -seed 1 -par 4
