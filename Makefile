GO ?= go

.PHONY: build test check bench bench-parallel bench-canon obs-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-submit gate: vet + race-enabled tests (same as scripts/check.sh).
check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x .

bench-parallel:
	$(GO) test -bench Parallel -benchtime 5x .

# EXPLAIN ANALYZE demo: the hurricane case study with the span tree and
# the per-operator stats table. Add -metrics-addr 127.0.0.1:9190 to poke
# /metrics and /debug/pprof/ while a session runs.
obs-demo:
	$(GO) run ./cmd/cqacdb -demo hurricane -par 4 -explain -stats \
		-e "$$(printf 'R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name')"

# Measures what the canonical-form sat-cache saves: raw Fourier-Motzkin
# decision counts and wall time, cold vs warm, on the cqa operator
# workload. Writes the measurements to BENCH_canon.json.
bench-canon:
	$(GO) run ./cmd/cdbbench -expt canon -cqasize 48 -rounds 5 -json BENCH_canon.json
