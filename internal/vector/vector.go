// Package vector is the vector-representation fast path of §6: it lets
// purely spatial constraint tuples *execute* as exact polygon geometry
// instead of through Fourier–Motzkin elimination.
//
// A conjunction is vector-eligible when it is a bounded, full-dimensional,
// closed region over exactly two variables — every atom a non-strict (Le)
// linear inequality mentioning at least one of them. For such a
// conjunction the region is a convex polygon, enumerated exactly by
// convert.ClosureVertices and cached on the canonical form via
// constraint.Memo (the same shared-box pattern as the envelope).
// Eligibility itself is decided geometrically — boundedness by a
// recession-cone test, satisfiability by the existence of feasible
// boundary intersections — so the probe makes zero FM decisions.
//
// On top of the exact polygon, every Form carries a float64 bounding box
// with outward-directed rounding: cheap float comparisons reject disjoint
// pairs soundly, exact rational clipping (Sutherland–Hodgman) confirms
// the rest — filter-and-refine one level below the envelope filter.
//
// The decision procedures (PairSat, SatExtras) replace only
// *satisfiability decisions*. The constraint forms the operators emit are
// built exactly as on the FM path, so outputs stay byte-identical.
package vector

import (
	"math"

	"cdb/internal/constraint"
	"cdb/internal/convert"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

// Form is the cached vector form of a vector-eligible conjunction: the
// exact convex polygon of its region, the polygon's edge half-planes
// (ready for clipping), and a float64 bounding box rounded outward so
// that float disjointness implies exact disjointness.
type Form struct {
	XVar, YVar string // the two spatial variables, sorted
	Poly       geometry.Polygon
	halves     []geometry.HalfPlane

	// Outward-rounded float bounds: MinX <= exact minX, MaxX >= exact
	// maxX, likewise for Y. Never NaN.
	MinX, MinY, MaxX, MaxY float64
}

// FormOf returns the vector form of j, or nil when j is not
// vector-eligible. The result is memoized on j's canonical form; on
// non-canonical conjunctions it is computed uncached. FormOf never makes
// a Fourier–Motzkin decision.
func FormOf(j constraint.Conjunction) *Form {
	v := j.Memo(func() any { return computeForm(j) })
	f, _ := v.(*Form)
	return f
}

func computeForm(j constraint.Conjunction) *Form {
	vars := j.Vars()
	if len(vars) != 2 {
		return nil
	}
	x, y := vars[0], vars[1]
	cs := j.Constraints()
	if len(cs) < 3 {
		return nil // fewer than 3 half-planes cannot bound a 2-D region
	}
	// Every atom must be a closed half-plane over (x, y): Op Le with a
	// non-zero normal. Strict or equality atoms make the region non-closed
	// or degenerate — the FM path handles those.
	normals := make([]geometry.Point, len(cs))
	for i, c := range cs {
		if c.Op != constraint.Le {
			return nil
		}
		a, b := c.Expr.Coef(x), c.Expr.Coef(y)
		if a.IsZero() && b.IsZero() {
			return nil // constant atom (e.g. the False sentinel 0 < 0)
		}
		normals[i] = geometry.Point{X: a, Y: b}
	}
	if unboundedDirection(normals) {
		return nil
	}
	// Bounded: the region, if non-empty, is the convex hull of the
	// feasible pairwise boundary intersections (every extreme point of a
	// bounded polyhedron is the intersection of two active constraint
	// boundaries). No feasible intersection means the closed region is
	// empty; fewer than 3 hull vertices means it is degenerate (a point or
	// segment). Both fall back to the FM path.
	verts := convert.ClosureVertices(j, x, y)
	if len(verts) < 3 {
		return nil
	}
	hull, err := geometry.ConvexHull(verts)
	if err != nil {
		return nil // collinear vertices: degenerate region
	}
	f := &Form{XVar: x, YVar: y, Poly: hull, halves: geometry.EdgeHalfPlanes(hull)}
	minX, minY, maxX, maxY := hull.BBox()
	f.MinX, f.MinY = floatDown(minX), floatDown(minY)
	f.MaxX, f.MaxY = floatUp(maxX), floatUp(maxY)
	return f
}

// unboundedDirection reports whether the recession cone
// {d : nᵢ·d <= 0 for all i} contains a non-zero direction — i.e. whether
// the region (if non-empty) is unbounded. In two dimensions the cone, if
// non-trivial, contains a boundary direction of some constraint (a cone
// that is a half-plane, a wedge or a single ray always has an extreme or
// boundary ray on some constraint line), so checking the two
// perpendiculars of every normal is complete.
func unboundedDirection(normals []geometry.Point) bool {
	for _, n := range normals {
		for _, d := range []geometry.Point{
			{X: n.Y, Y: n.X.Neg()},
			{X: n.Y.Neg(), Y: n.X},
		} {
			if d.X.IsZero() && d.Y.IsZero() {
				continue
			}
			ok := true
			for _, m := range normals {
				if m.Dot(d).Sign() > 0 {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// floatDown returns a float64 at or below the exact rational; floatUp at
// or above. Rat.Float64 is within ~1.5 ulp of the exact value (nearest
// big.Rat conversion, or one int64-to-float division), so four directed
// ulp steps are a safely conservative outward bound.
func floatDown(r rational.Rat) float64 {
	f := r.Float64()
	for i := 0; i < 4; i++ {
		f = math.Nextafter(f, math.Inf(-1))
	}
	return f
}

func floatUp(r rational.Rat) float64 {
	f := r.Float64()
	for i := 0; i < 4; i++ {
		f = math.Nextafter(f, math.Inf(1))
	}
	return f
}

// PairSat decides satisfiability of f1 ∧ f2 — the refine step of the
// pairing operators — entirely in vector form. floatReject reports that
// the cheap float bounding-box filter already proved the pair disjoint
// (sound by the outward rounding; the exact clip never runs). Both forms
// must be over the same variable pair (callers check; it panics
// otherwise, as a wrong-pair answer would be silently unsound).
//
// Both regions are closed, so the decision is exact: the clipped ring is
// non-empty — even degenerate to a shared edge or corner — if and only if
// the conjunction is satisfiable.
func PairSat(f1, f2 *Form) (sat, floatReject bool) {
	if f1.XVar != f2.XVar || f1.YVar != f2.YVar {
		panic("vector: PairSat forms over different variable pairs")
	}
	if f1.MaxX < f2.MinX || f2.MaxX < f1.MinX || f1.MaxY < f2.MinY || f2.MaxY < f1.MinY {
		return false, true
	}
	ring := f1.Poly.Vertices()
	for _, h := range f2.halves {
		ring = geometry.ClipRing(ring, h)
		if len(ring) == 0 {
			return false, false
		}
	}
	return true, false
}

// SatExtras decides satisfiability of f's conjunction extended with extra
// atoms (select predicates, or the staircase atoms of the difference
// operator). ok=false means the extras fall outside what the vector path
// can decide exactly — an extra variable, an unsupported operator, or a
// strict atom whose truth depends on a degenerate (measure-zero) region —
// and the caller must fall back to FM.
//
// Soundness: the clip runs on the *closed relaxation* of every extra
// (strict < relaxed to <=, equalities to a pair of opposing <=). An empty
// clip of the relaxation is exactly unsat. A full-dimensional clip
// (positive area) is sat even with strict atoms: the strict boundaries
// are finitely many lines, which cannot cover a region of positive area,
// so an interior point satisfying every strict atom strictly exists. Only
// a degenerate clip with strict atoms in play is undecided here.
// Constant atoms never reach the clip: trivially false decides unsat
// outright (the relaxation argument would be unsound for them — 0 < 0
// relaxes to 0 <= 0, which holds everywhere), trivially true ones are
// skipped.
func SatExtras(f *Form, extras []constraint.Constraint) (sat, ok bool) {
	ring := f.Poly.Vertices()
	strict := false
	for _, c := range extras {
		if triv, val := c.IsTrivial(); triv {
			if !val {
				return false, true
			}
			continue
		}
		a, b := c.Expr.Coef(f.XVar), c.Expr.Coef(f.YVar)
		for _, v := range c.Expr.Vars() {
			if v != f.XVar && v != f.YVar {
				return false, false
			}
		}
		k := c.Expr.ConstTerm()
		h := geometry.HalfPlane{A: a, B: b, C: k}
		switch c.Op {
		case constraint.Le:
			ring = geometry.ClipRing(ring, h)
		case constraint.Lt:
			strict = true
			ring = geometry.ClipRing(ring, h)
		case constraint.Eq:
			// An equality is closed: clip by both opposing half-planes. The
			// result degenerates to (part of) a line, which the no-strict
			// degenerate rule below still decides exactly.
			ring = geometry.ClipRing(ring, h)
			if len(ring) != 0 {
				ring = geometry.ClipRing(ring, geometry.HalfPlane{A: a.Neg(), B: b.Neg(), C: k.Neg()})
			}
		default:
			return false, false
		}
		if len(ring) == 0 {
			return false, true
		}
	}
	if !geometry.RingArea2(ring).IsZero() {
		return true, true
	}
	// Degenerate result. With no strict atoms every constraint is closed
	// and the non-empty ring is a witness; with strict atoms the witness
	// may sit exactly on a strict boundary — undecided here.
	if strict {
		return false, false
	}
	return true, true
}
