package vector

import (
	"encoding/binary"
	"testing"

	"cdb/internal/convert"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

// FuzzVectorRoundTrip drives the constraint → polygon → constraint cycle
// from raw vertex bytes: every simple polygon the input decodes to must
// convert to constraint tuples whose vector forms reproduce the exact
// geometry, and re-converting must reach a canonical fixpoint. Degenerate
// inputs (collinear rings, repeated points, needle slivers) must be
// rejected cleanly by NewPolygon or the eligibility probe, never
// mis-converted.
func FuzzVectorRoundTrip(f *testing.F) {
	// Seeds: a square, a triangle, a concave L-shape (triangulates), a
	// needle sliver and a collinear ring.
	f.Add([]byte{0, 0, 0, 0, 0, 10, 0, 0, 0, 10, 0, 10, 0, 0, 0, 10})
	f.Add([]byte{0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 0, 8})
	f.Add([]byte{0, 0, 0, 0, 0, 8, 0, 0, 0, 8, 0, 4, 0, 4, 0, 4, 0, 4, 0, 8, 0, 0, 0, 8})
	f.Add([]byte{0, 0, 0, 0, 3, 232, 0, 1, 7, 208, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 4, 0, 4, 0, 8, 0, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode up to 10 int16 coordinate pairs.
		n := len(data) / 4
		if n < 3 {
			return
		}
		if n > 10 {
			n = 10
		}
		pts := make([]geometry.Point, n)
		for i := 0; i < n; i++ {
			x := int16(binary.BigEndian.Uint16(data[4*i:]))
			y := int16(binary.BigEndian.Uint16(data[4*i+2:]))
			pts[i] = geometry.Pt(int64(x), int64(y))
		}
		poly, err := geometry.NewPolygon(pts)
		if err != nil {
			return // not a simple polygon: rejection is the correct outcome
		}
		js, err := convert.PolygonToConjunctions(poly, "x", "y")
		if err != nil {
			return // ear clipping can reject near-degenerate rings
		}
		total, back := rational.Zero, rational.Zero
		for _, j := range js {
			jc := j.Canon()
			form := FormOf(jc)
			if form == nil {
				t.Fatalf("convex piece ineligible for the vector path: %s", jc)
			}
			total = total.Add(form.Poly.Area())
			// Round trip: polygon → constraints → polygon → constraints
			// must reach a fixpoint under Canon.
			j2, err := convert.ConvexPolygonToConjunction(form.Poly, "x", "y")
			if err != nil {
				t.Fatalf("form polygon not convex: %v", err)
			}
			j2c := j2.Canon()
			f2 := FormOf(j2c)
			if f2 == nil {
				t.Fatalf("round-tripped conjunction ineligible: %s", j2c)
			}
			back = back.Add(f2.Poly.Area())
			j3, err := convert.ConvexPolygonToConjunction(f2.Poly, "x", "y")
			if err != nil {
				t.Fatalf("second round trip not convex: %v", err)
			}
			if j2c.Key() != j3.Canon().Key() {
				t.Fatalf("no canonical fixpoint:\n %s\n %s", j2c.Key(), j3.Canon().Key())
			}
			// The piece's region must survive both directions exactly.
			sat, reject := PairSat(form, f2)
			if !sat || reject {
				t.Fatalf("piece disagrees with its own round trip: sat=%v reject=%v", sat, reject)
			}
		}
		// Conservation of area: the triangulated pieces partition the
		// polygon, and the round trip preserves each piece exactly.
		if !total.Equal(poly.Area()) {
			t.Fatalf("piece areas sum to %s, polygon area %s", total, poly.Area())
		}
		if !back.Equal(poly.Area()) {
			t.Fatalf("round-trip areas sum to %s, polygon area %s", back, poly.Area())
		}
	})
}
