package vector

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/convert"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

func q(n int64) rational.Rat { return rational.FromInt(n) }

func boxConj(x0, y0, x1, y1 int64) constraint.Conjunction {
	return constraint.And(
		constraint.GeConst("x", q(x0)), constraint.LeConst("x", q(x1)),
		constraint.GeConst("y", q(y0)), constraint.LeConst("y", q(y1)),
	)
}

func TestFormOfEligibility(t *testing.T) {
	box := boxConj(0, 0, 4, 4).Canon()
	f := FormOf(box)
	if f == nil {
		t.Fatal("bounded box rejected")
	}
	if f.XVar != "x" || f.YVar != "y" {
		t.Fatalf("vars (%s, %s)", f.XVar, f.YVar)
	}
	if !f.Poly.Area().Equal(q(16)) {
		t.Fatalf("area = %s, want 16", f.Poly.Area())
	}
	// Memoized: same canonical form returns the same pointer.
	if FormOf(box) != f {
		t.Fatal("form not memoized on the canonical conjunction")
	}

	ineligible := []struct {
		name string
		j    constraint.Conjunction
	}{
		{"unbounded-quadrant", constraint.And(
			constraint.GeConst("x", q(0)), constraint.GeConst("y", q(0)))},
		{"half-open-strip", constraint.And(
			constraint.GeConst("x", q(0)), constraint.LeConst("x", q(4)),
			constraint.GeConst("y", q(0)))},
		{"three-vars", boxConj(0, 0, 4, 4).With(constraint.LeConst("z", q(1)))},
		{"one-var", constraint.And(
			constraint.GeConst("x", q(0)), constraint.LeConst("x", q(4)))},
		{"strict-atom", boxConj(0, 0, 4, 4).With(constraint.LtConst("x", q(3)))},
		{"equality-atom", boxConj(0, 0, 4, 4).With(
			constraint.Constraint{Expr: constraint.Var("x").Sub(constraint.Var("y")), Op: constraint.Eq})},
		{"unsat-box", boxConj(3, 0, 1, 4)},
		{"degenerate-point", constraint.And(
			constraint.GeConst("x", q(0)), constraint.LeConst("x", q(0)),
			constraint.GeConst("y", q(0)), constraint.LeConst("y", q(0)))},
		{"degenerate-segment", constraint.And(
			constraint.GeConst("x", q(0)), constraint.LeConst("x", q(5)),
			constraint.GeConst("y", q(2)), constraint.LeConst("y", q(2)))},
		{"false-sentinel", constraint.False()},
		{"true-sentinel", constraint.True()},
	}
	for _, tc := range ineligible {
		if FormOf(tc.j) != nil {
			t.Errorf("%s: expected ineligible", tc.name)
		}
		if FormOf(tc.j.Canon()) != nil {
			t.Errorf("%s (canon): expected ineligible", tc.name)
		}
	}
}

func TestFormOfTriangleFromConvert(t *testing.T) {
	tri := geometry.MustPolygon(geometry.Pt(0, 0), geometry.Pt(6, 0), geometry.Pt(0, 6))
	j, err := convert.ConvexPolygonToConjunction(tri, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	f := FormOf(j.Canon())
	if f == nil {
		t.Fatal("triangle conjunction rejected")
	}
	if !f.Poly.Area().Equal(tri.Area()) {
		t.Fatalf("area %s, want %s", f.Poly.Area(), tri.Area())
	}
	// Float bbox brackets the exact one.
	if f.MinX > 0 || f.MaxX < 6 || f.MinY > 0 || f.MaxY < 6 {
		t.Fatalf("float bbox [%g,%g]x[%g,%g] does not bracket [0,6]^2",
			f.MinX, f.MaxX, f.MinY, f.MaxY)
	}
}

// randomPoly builds a random convex polygon conjunction over (x, y), its
// form, and its canonical conjunction.
func randomPoly(rng *rand.Rand, t *testing.T) (constraint.Conjunction, *Form) {
	t.Helper()
	for {
		pts := make([]geometry.Point, 3+rng.Intn(5))
		for i := range pts {
			pts[i] = geometry.Pt(rng.Int63n(20), rng.Int63n(20))
		}
		hull, err := geometry.ConvexHull(pts)
		if err != nil {
			continue
		}
		j, err := convert.ConvexPolygonToConjunction(hull, "x", "y")
		if err != nil {
			continue
		}
		jc := j.Canon()
		f := FormOf(jc)
		if f == nil {
			t.Fatalf("random convex polygon ineligible: %s", jc)
		}
		return jc, f
	}
}

func TestPairSatAgainstFM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var sats, rejects int
	for i := 0; i < 120; i++ {
		j1, f1 := randomPoly(rng, t)
		j2, f2 := randomPoly(rng, t)
		sat, floatReject := PairSat(f1, f2)
		want := j1.Merge(j2).Canon().IsSatisfiable()
		if sat != want {
			t.Fatalf("case %d: PairSat = %v, FM = %v\n j1: %s\n j2: %s", i, sat, want, j1, j2)
		}
		if floatReject && sat {
			t.Fatalf("case %d: float reject on a satisfiable pair", i)
		}
		if sat {
			sats++
		}
		if floatReject {
			rejects++
		}
	}
	if sats == 0 {
		t.Fatal("workload produced no satisfiable pairs; test is vacuous")
	}
}

func TestPairSatTouchingRegions(t *testing.T) {
	// Closed regions sharing only an edge are satisfiable together —
	// the degenerate clip must count as sat, exactly like FM.
	a := FormOf(boxConj(0, 0, 2, 2).Canon())
	b := FormOf(boxConj(2, 0, 4, 2).Canon())
	sat, _ := PairSat(a, b)
	if !sat {
		t.Fatal("edge-touching boxes reported unsat")
	}
	// Corner touch.
	c := FormOf(boxConj(2, 2, 4, 4).Canon())
	if sat, _ := PairSat(a, c); !sat {
		t.Fatal("corner-touching boxes reported unsat")
	}
	// Disjoint, far: the float filter must fire.
	d := FormOf(boxConj(100, 100, 102, 102).Canon())
	sat, reject := PairSat(a, d)
	if sat || !reject {
		t.Fatalf("far-disjoint: sat=%v reject=%v, want false/true", sat, reject)
	}
}

func TestSatExtrasAgainstFM(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randExtra := func() constraint.Constraint {
		a, b := rng.Int63n(7)-3, rng.Int63n(7)-3
		k := rng.Int63n(41) - 20
		expr := constraint.NewExpr([]constraint.Term{
			{Var: "x", Coef: q(a)}, {Var: "y", Coef: q(b)},
		}, q(k))
		switch rng.Intn(4) {
		case 0:
			return constraint.Constraint{Expr: expr, Op: constraint.Lt}
		case 1:
			return constraint.Constraint{Expr: expr, Op: constraint.Eq}
		default:
			return constraint.Constraint{Expr: expr, Op: constraint.Le}
		}
	}
	var decided, fallbacks, sats int
	for i := 0; i < 300; i++ {
		j, f := randomPoly(rng, t)
		extras := make([]constraint.Constraint, 1+rng.Intn(3))
		for k := range extras {
			extras[k] = randExtra()
		}
		sat, ok := SatExtras(f, extras)
		if !ok {
			fallbacks++
			continue
		}
		decided++
		want := j.With(extras...).Canon().IsSatisfiable()
		if sat != want {
			t.Fatalf("case %d: SatExtras = %v, FM = %v\n j: %s\n extras: %v", i, sat, want, j, extras)
		}
		if sat {
			sats++
		}
	}
	if decided == 0 || sats == 0 {
		t.Fatalf("vacuous run: decided=%d sat=%d (fallbacks=%d)", decided, sats, fallbacks)
	}
}

func TestSatExtrasConstantAtoms(t *testing.T) {
	f := FormOf(boxConj(0, 0, 4, 4).Canon())
	// Trivially false strict atom (0 < 0): must be unsat even though its
	// closed relaxation holds everywhere.
	falseAtom := constraint.Constraint{Expr: constraint.ConstInt(0), Op: constraint.Lt}
	if sat, ok := SatExtras(f, []constraint.Constraint{falseAtom}); !ok || sat {
		t.Fatalf("trivially false atom: sat=%v ok=%v, want false/true", sat, ok)
	}
	// Trivially true atom is skipped.
	trueAtom := constraint.Constraint{Expr: constraint.ConstInt(-1), Op: constraint.Le}
	if sat, ok := SatExtras(f, []constraint.Constraint{trueAtom}); !ok || !sat {
		t.Fatalf("trivially true atom: sat=%v ok=%v, want true/true", sat, ok)
	}
	// Extra variable: undecidable here.
	if _, ok := SatExtras(f, []constraint.Constraint{constraint.LeConst("z", q(1))}); ok {
		t.Fatal("extra variable should force fallback")
	}
	// Strict atom cutting to a degenerate region: undecidable here.
	degen := []constraint.Constraint{
		constraint.GeConst("x", q(4)), constraint.LtConst("y", q(10)),
	}
	if _, ok := SatExtras(f, degen); ok {
		t.Fatal("strict atom on a degenerate region should force fallback")
	}
	// Same degenerate cut without the strict atom: decidable, sat.
	if sat, ok := SatExtras(f, degen[:1]); !ok || !sat {
		t.Fatalf("closed degenerate cut: sat=%v ok=%v, want true/true", sat, ok)
	}
}
