// Package core re-exports the paper's primary contribution — the
// heterogeneous data model (schemas with the C/R flag, heterogeneous
// constraint relations) and the Constraint Query Algebra — under one
// import path, matching the repository's mandated layout. The root
// package cdb is the full public facade; core is the narrow "just the
// contribution" view.
package core

import (
	"cdb/internal/cqa"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// Schema is a heterogeneous relation schema (attributes carry the C/R
// flag that resolves the paper's missing-attribute inconsistency).
type Schema = schema.Schema

// Attribute is one schema column.
type Attribute = schema.Attribute

// Relation is a heterogeneous constraint relation.
type Relation = relation.Relation

// Tuple is one heterogeneous constraint tuple: relational bindings plus a
// conjunction of rational linear constraints.
type Tuple = relation.Tuple

// Condition is a selection condition (a conjunction of atoms).
type Condition = cqa.Condition

// The six CQA operators (§2.4), reinterpreted over heterogeneous
// relations with narrow/broad missing-attribute semantics (§3).
var (
	Select     = cqa.Select
	Project    = cqa.Project
	Join       = cqa.Join
	Union      = cqa.Union
	Rename     = cqa.Rename
	Difference = cqa.Difference
)

// Rel and Con declare relational and constraint attributes.
var (
	Rel = schema.Rel
	Con = schema.Con
)

// NewSchema and NewRelation construct the data model.
var (
	NewSchema   = schema.New
	NewRelation = relation.New
)
