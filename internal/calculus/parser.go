package calculus

import (
	"fmt"
	"strings"
	"unicode"

	"cdb/internal/cqa"
	"cdb/internal/rational"
)

// The rule lexer/parser. Tokens: identifiers, numbers (with optional /
// fraction or decimal point handled at parse time), quoted strings, and
// the punctuation ( ) , . :- = != < <= > >= + - * / _.

type rtokKind int

const (
	rtokEOF rtokKind = iota
	rtokIdent
	rtokNumber
	rtokString
	rtokPunct // ( ) , . :- _ and comparison/arith operators
)

type rtok struct {
	kind rtokKind
	text string
	line int
}

func rlex(src string) ([]rtok, error) {
	var out []rtok
	line := 1
	i := 0
	emit := func(k rtokKind, t string) { out = append(out, rtok{kind: k, text: t, line: line}) }
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '%' || c == '#': // comments
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == ':' && i+1 < len(src) && src[i+1] == '-':
			emit(rtokPunct, ":-")
			i += 2
		case strings.ContainsRune("(),._+-*/", rune(c)):
			// '.' inside a number is handled by the number scanner first;
			// here it is the rule terminator.
			emit(rtokPunct, string(c))
			i++
		case c == '<' || c == '>' || c == '!':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			} else if c == '!' {
				return nil, fmt.Errorf("calculus: line %d: '!' must be followed by '='", line)
			}
			emit(rtokPunct, op)
		case c == '=':
			emit(rtokPunct, "=")
			i++
		case c == '"':
			i++
			var b strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\n' {
					return nil, fmt.Errorf("calculus: line %d: unterminated string", line)
				}
				if src[i] == '\\' && i+1 < len(src) {
					i++
					// The common escapes decode; any other escaped byte is
					// itself (so \" and \\ work). quoteStr is the inverse.
					switch src[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case 'r':
						b.WriteByte('\r')
					default:
						b.WriteByte(src[i])
					}
					i++
					continue
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= len(src) {
				return nil, fmt.Errorf("calculus: line %d: unterminated string", line)
			}
			i++
			emit(rtokString, b.String())
		case c >= '0' && c <= '9':
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9') {
				i++
			}
			if i < len(src) && src[i] == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9' {
				i++
				for i < len(src) && src[i] >= '0' && src[i] <= '9' {
					i++
				}
			}
			emit(rtokNumber, src[start:i])
		case unicode.IsLetter(rune(c)):
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			emit(rtokIdent, src[start:i])
		default:
			return nil, fmt.Errorf("calculus: line %d: unexpected character %q", line, c)
		}
	}
	emit(rtokEOF, "")
	return out, nil
}

type rparser struct {
	toks []rtok
	i    int
}

func (p *rparser) peek() rtok { return p.toks[p.i] }
func (p *rparser) next() rtok { t := p.toks[p.i]; p.i++; return t }

func (p *rparser) errf(format string, args ...any) error {
	return fmt.Errorf("calculus: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

func (p *rparser) expectPunct(t string) error {
	tok := p.peek()
	if tok.kind != rtokPunct || tok.text != t {
		return p.errf("expected %q, got %q", t, tok.text)
	}
	p.next()
	return nil
}

// Parse parses a rule program.
func Parse(src string) (*Program, error) {
	toks, err := rlex(src)
	if err != nil {
		return nil, err
	}
	p := &rparser{toks: toks}
	prog := &Program{}
	for p.peek().kind != rtokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, r)
	}
	if len(prog.Rules) == 0 {
		return nil, fmt.Errorf("calculus: empty program")
	}
	return prog, nil
}

func (p *rparser) parseRule() (Rule, error) {
	line := p.peek().line
	head := p.peek()
	if head.kind != rtokIdent {
		return Rule{}, p.errf("expected rule head, got %q", head.text)
	}
	p.next()
	if err := p.expectPunct("("); err != nil {
		return Rule{}, err
	}
	var headVars []string
	seen := map[string]bool{}
	for {
		t := p.peek()
		if t.kind != rtokIdent {
			return Rule{}, p.errf("head arguments must be variables, got %q", t.text)
		}
		if seen[t.text] {
			return Rule{}, p.errf("duplicate head variable %q", t.text)
		}
		seen[t.text] = true
		headVars = append(headVars, t.text)
		p.next()
		if p.peek().kind == rtokPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return Rule{}, err
	}
	if err := p.expectPunct(":-"); err != nil {
		return Rule{}, err
	}
	rule := Rule{HeadName: head.text, HeadVars: headVars, Line: line}
	for {
		// A body item is a relation atom IDENT( ... ) or a comparison.
		if p.peek().kind == rtokIdent && p.toks[p.i+1].kind == rtokPunct && p.toks[p.i+1].text == "(" {
			atom, err := p.parseRelAtom()
			if err != nil {
				return Rule{}, err
			}
			rule.Rels = append(rule.Rels, atom)
		} else {
			comp, err := p.parseCompAtom()
			if err != nil {
				return Rule{}, err
			}
			rule.Comps = append(rule.Comps, comp)
		}
		if p.peek().kind == rtokPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct("."); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func (p *rparser) parseRelAtom() (RelAtom, error) {
	name := p.next().text
	if err := p.expectPunct("("); err != nil {
		return RelAtom{}, err
	}
	atom := RelAtom{Name: name}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return RelAtom{}, err
		}
		atom.Terms = append(atom.Terms, t)
		if p.peek().kind == rtokPunct && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return RelAtom{}, err
	}
	return atom, nil
}

func (p *rparser) parseTerm() (Term, error) {
	t := p.peek()
	switch {
	case t.kind == rtokPunct && t.text == "_":
		p.next()
		return Term{Kind: TermAnon}, nil
	case t.kind == rtokIdent:
		p.next()
		return Term{Kind: TermVar, Var: t.text}, nil
	case t.kind == rtokString:
		p.next()
		return Term{Kind: TermStr, Str: t.text}, nil
	case t.kind == rtokNumber || (t.kind == rtokPunct && t.text == "-"):
		r, err := p.parseRatConst()
		if err != nil {
			return Term{}, err
		}
		return Term{Kind: TermRat, Rat: r}, nil
	default:
		return Term{}, p.errf("expected term, got %q", t.text)
	}
}

func (p *rparser) parseRatConst() (rational.Rat, error) {
	neg := false
	if p.peek().kind == rtokPunct && p.peek().text == "-" {
		neg = true
		p.next()
	}
	t := p.peek()
	if t.kind != rtokNumber {
		return rational.Rat{}, p.errf("expected number, got %q", t.text)
	}
	p.next()
	numStr := t.text
	if p.peek().kind == rtokPunct && p.peek().text == "/" {
		p.next()
		d := p.peek()
		if d.kind != rtokNumber {
			return rational.Rat{}, p.errf("expected denominator, got %q", d.text)
		}
		p.next()
		numStr += "/" + d.text
	}
	r, err := rational.Parse(numStr)
	if err != nil {
		return rational.Rat{}, err
	}
	if neg {
		r = r.Neg()
	}
	return r, nil
}

// parseCompAtom parses lhs OP rhs where each side is a linear combination
// of variables and rational constants, or a quoted string / variable (for
// string comparisons).
func (p *rparser) parseCompAtom() (CompAtom, error) {
	lTerms, lConst, lStr, lIsStr, lVar, err := p.parseCompSide()
	if err != nil {
		return CompAtom{}, err
	}
	opTok := p.peek()
	if opTok.kind != rtokPunct {
		return CompAtom{}, p.errf("expected comparison operator, got %q", opTok.text)
	}
	op, err := cqa.ParseCompOp(opTok.text)
	if err != nil {
		return CompAtom{}, p.errf("expected comparison operator, got %q", opTok.text)
	}
	p.next()
	rTerms, rConst, rStr, rIsStr, rVar, err := p.parseCompSide()
	if err != nil {
		return CompAtom{}, err
	}
	// String comparison cases.
	if lIsStr || rIsStr {
		if op != cqa.OpEq && op != cqa.OpNe {
			return CompAtom{}, p.errf("operator %s not defined on strings", op)
		}
		switch {
		case lIsStr && rVar != "":
			return CompAtom{IsStr: true, Var: rVar, Op: op, StrLit: lStr, HasLit: true}, nil
		case rIsStr && lVar != "":
			return CompAtom{IsStr: true, Var: lVar, Op: op, StrLit: rStr, HasLit: true}, nil
		default:
			return CompAtom{}, p.errf("string comparison needs one variable side")
		}
	}
	// Linear: lhs - rhs OP 0.
	terms := append([]LinTerm{}, lTerms...)
	for _, t := range rTerms {
		terms = append(terms, LinTerm{Coef: t.Coef.Neg(), Var: t.Var})
	}
	return CompAtom{Terms: terms, Const: lConst.Sub(rConst), Op: op}, nil
}

// parseCompSide parses a linear combination; it also reports whether the
// side was a lone string literal or a lone variable.
func (p *rparser) parseCompSide() (terms []LinTerm, c rational.Rat, str string, isStr bool, loneVar string, err error) {
	if p.peek().kind == rtokString {
		s := p.next().text
		return nil, rational.Zero, s, true, "", nil
	}
	first := true
	nVars := 0
	for {
		sign := rational.One
		t := p.peek()
		if t.kind == rtokPunct && (t.text == "+" || t.text == "-") {
			if t.text == "-" {
				sign = rational.FromInt(-1)
			}
			p.next()
		} else if !first {
			break
		}
		t = p.peek()
		switch {
		case t.kind == rtokNumber:
			r, perr := p.parseRatConst()
			if perr != nil {
				return nil, rational.Rat{}, "", false, "", perr
			}
			// Optional * var or adjacent var.
			if p.peek().kind == rtokPunct && p.peek().text == "*" {
				p.next()
			}
			if p.peek().kind == rtokIdent {
				v := p.next().text
				terms = append(terms, LinTerm{Coef: r.Mul(sign), Var: v})
				nVars++
			} else {
				c = c.Add(r.Mul(sign))
			}
		case t.kind == rtokIdent:
			p.next()
			terms = append(terms, LinTerm{Coef: sign, Var: t.text})
			nVars++
			if first && sign.Equal(rational.One) {
				loneVar = t.text
			}
		default:
			return nil, rational.Rat{}, "", false, "", p.errf("expected term, got %q", t.text)
		}
		first = false
		nxt := p.peek()
		if nxt.kind == rtokPunct && (nxt.text == "+" || nxt.text == "-") {
			continue
		}
		break
	}
	if nVars != 1 || len(terms) != 1 || !c.IsZero() {
		loneVar = ""
	}
	return terms, c, "", false, loneVar, nil
}
