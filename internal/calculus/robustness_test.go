package calculus

import (
	"math/rand"
	"testing"
)

// TestRuleParserNeverPanics mutates valid rule programs byte-wise and
// asserts graceful failure.
func TestRuleParserNeverPanics(t *testing.T) {
	seeds := []string{
		`owned(name, t) :- Landownership(name, t, id), id = "A".`,
		`a(x) :- R(x, _, 3/2), x + 2y <= 7, S(y).`,
		`p(v) :- T(6, v), v != -1.`,
	}
	chars := []byte(`abcXYZ0189 ():-=<>!,._+-*/"%`)
	rng := rand.New(rand.NewSource(7))
	for _, seed := range seeds {
		for iter := 0; iter < 400; iter++ {
			b := []byte(seed)
			for k := 0; k < 1+rng.Intn(4); k++ {
				switch rng.Intn(3) {
				case 0:
					b[rng.Intn(len(b))] = chars[rng.Intn(len(chars))]
				case 1:
					i := rng.Intn(len(b))
					b = append(b[:i], b[i+1:]...)
				default:
					i := rng.Intn(len(b) + 1)
					b = append(b[:i], append([]byte{chars[rng.Intn(len(chars))]}, b[i:]...)...)
				}
				if len(b) == 0 {
					b = []byte{'x'}
				}
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("rule parser panicked on %q: %v", b, r)
					}
				}()
				_, _ = Parse(string(b))
			}()
		}
	}
}
