package calculus

// Native fuzz target for the rule-calculus parser. Run with:
// go test ./internal/calculus -run '^$' -fuzz FuzzCalculusParse
// The committed corpus under testdata/fuzz/ replays as an ordinary test.

import "testing"

// FuzzCalculusParse asserts the parser never panics and that the printer
// is a right inverse: any accepted program must reparse from its String()
// form, and the printed form must be a fixpoint (print·parse·print is
// print). That pins the surface syntax both ways without a golden file
// per program.
func FuzzCalculusParse(f *testing.F) {
	seeds := []string{
		"",
		`owned(name, t) :- Landownership(name, t, id), id = "A".`,
		`a(x) :- R(x, _, 3/2), x + 2y <= 7, S(y).`,
		`p(v) :- T(6, v), v != -1.`,
		`q(x, y) :- R(x, y), x <= y, y < 10.`,
		`r(x) :- A(x), B(x). s(y) :- A(y).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not reparse:\n  input   %q\n  printed %q\n  error   %v", src, printed, err)
		}
		if got := again.String(); got != printed {
			t.Fatalf("printer not a fixpoint:\n  input %q\n  once  %q\n  twice %q", src, printed, got)
		}
	})
}
