package calculus

import (
	"sort"
	"testing"

	"cdb/internal/cqa"
	"cdb/internal/hurricane"
	"cdb/internal/rational"
	"cdb/internal/relation"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func hurricaneEnv() cqa.Env {
	d := hurricane.Build()
	return d.Env()
}

func names(r *relation.Relation, attr string) []string {
	set := map[string]bool{}
	for _, t := range r.Tuples() {
		if v, ok := t.RVal(attr); ok {
			if s, ok := v.AsString(); ok {
				set[s] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestRuleQuery1(t *testing.T) {
	// Paper Query 1 as a rule: who owned Land A and when.
	prog, err := Parse(`owned(name, t) :- Landownership(name, t, id), id = "A".`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "name")
	if len(got) != 2 || got[0] != "ann" || got[1] != "bob" {
		t.Errorf("owners = %v", got)
	}
	if !out.Schema().Has("t") || out.Schema().Len() != 2 {
		t.Errorf("schema = %s", out.Schema())
	}
}

func TestRuleQuery2JoinOnSharedVariables(t *testing.T) {
	// Paper Query 2: lands the hurricane passed — the join is expressed by
	// repeating variables across atoms, the calculus way.
	prog, err := Parse(`passed(id) :- Hurricane(t, x, y), Land(id, x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "id")
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("passed = %v, want [A B]", got)
	}
}

func TestRuleQuery3MultiRule(t *testing.T) {
	// Paper Query 3 as a two-rule program with a comparison atom; the
	// second rule consumes the first rule's head.
	prog, err := Parse(`
hitAt(name, t) :- Landownership(name, t, id), Land(id, x, y), Hurricane(t, x, y).
answer(name)   :- hitAt(name, t), t >= 4, t <= 9.`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "name")
	if len(got) != 2 || got[0] != "ann" || got[1] != "carol" {
		t.Errorf("hit owners = %v, want [ann carol]", got)
	}
}

func TestRuleConstantsAndAnonymous(t *testing.T) {
	// Rational constant in an atom position and anonymous variables.
	prog, err := Parse(`onPath(x) :- Hurricane(6, x, _).`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	// At t = 6 the hurricane (x = t - 1) is at x = 5 — both segments
	// touch t=6, both pin x to 5.
	if out.Len() == 0 {
		t.Fatal("no tuples")
	}
	for _, tp := range out.Tuples() {
		iv, ok := tp.Constraint().VarBounds("x")
		if !ok || !iv.IsPoint() || !iv.Lower.Equal(q("5")) {
			t.Errorf("x bounds = %+v", iv)
		}
	}
}

func TestRuleUnionOfRules(t *testing.T) {
	// Two rules with the same head union.
	prog, err := Parse(`
near(id) :- Land(id, x, y), x <= 4.
near(id) :- Land(id, x, y), y >= 5.`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "id")
	// x <= 4 matches A and C; y >= 5 matches C. Union: A, C.
	if len(got) != 2 || got[0] != "A" || got[1] != "C" {
		t.Errorf("union heads = %v", got)
	}
}

func TestRuleLinearComparisons(t *testing.T) {
	prog, err := Parse(`corner(id) :- Land(id, x, y), x + y <= 2, 2x >= 0.`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "id")
	if len(got) != 1 || got[0] != "A" {
		t.Errorf("corner = %v", got)
	}
	// Variable-variable comparison.
	prog2, err := Parse(`diag(id) :- Land(id, x, y), x = y.`)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := prog2.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got2 := names(out2, "id")
	// A: [0,4]² contains the diagonal; B: x∈[5,9], y∈[0,4] touches x=y
	// nowhere (x >= 5 > 4 >= y); C symmetric to B.
	if len(got2) != 1 || got2[0] != "A" {
		t.Errorf("diag = %v", got2)
	}
}

func TestRuleStringInequality(t *testing.T) {
	prog, err := Parse(`others(id) :- Land(id, x, y), id != "A".`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "id")
	if len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Errorf("others = %v", got)
	}
}

func TestRuleRepeatedVariableInOneAtom(t *testing.T) {
	// passed-through-origin-line trick: repeating a variable within one
	// atom forces equality between two positions.
	prog, err := Parse(`sym(t) :- Hurricane(t, v, v).`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := prog.Run(hurricaneEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Segment 1: x = t-1, y = 2 → x = y means t = 3. Segment 2:
	// x = t-1, y = t/2 - 1 → equal iff t = 0, outside [6,11]. So t = 3.
	if out.Len() != 1 {
		t.Fatalf("sym: %s", out)
	}
	iv, ok := out.Tuples()[0].Constraint().VarBounds("t")
	if !ok || !iv.IsPoint() || !iv.Lower.Equal(q("3")) {
		t.Errorf("t bounds = %+v", iv)
	}
}

func TestRuleErrors(t *testing.T) {
	env := hurricaneEnv()
	cases := []struct{ name, src string }{
		{"unknown relation", `a(x) :- Nope(x).`},
		{"arity mismatch", `a(x) :- Land(x).`},
		{"unsafe head", `a(z) :- Land(id, x, y).`},
		{"recursive", `a(x) :- a(x).`},
		{"type clash var", `a(n) :- Landownership(n, t, id), Land(t, x, y).`},
		{"string const at rational position", `a(x) :- Hurricane("hi", x, y).`},
		{"rational const at string position", `a(x) :- Land(3, x, y).`},
		{"string op on rational", `a(x) :- Land(id, x, y), x = "hi".`},
		{"ordered strings", `a(id) :- Land(id, x, y), id < "B".`},
		{"comparison unbound var", `a(x) :- Land(id, x, y), z <= 3.`},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err != nil {
			continue // parse-time rejection is fine too
		}
		if _, err := prog.Run(env); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Parse-time errors.
	for _, src := range []string{
		``, `a(x)`, `a(x) :- Land(id, x, y)`, // missing '.'
		`a(x, x) :- Land(x, x, y).`,   // duplicate head vars
		`a("lit") :- Land(id, x, y).`, // constant in head
		`a(x) :- Land(id, x, y,).`,    // trailing comma
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

// TestCalculusMatchesAlgebra cross-checks the rule translation against the
// hand-written algebra programs for the paper's queries (CQC ≡ CQA on
// this fragment).
func TestCalculusMatchesAlgebra(t *testing.T) {
	d := hurricane.Build()
	algebra, err := d.Run(hurricane.Queries()[1].Text) // Query 2
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Parse(`passed(landId) :- Hurricane(t, x, y), Land(landId, x, y).`)
	if err != nil {
		t.Fatal(err)
	}
	calc, err := prog.Run(d.Env())
	if err != nil {
		t.Fatal(err)
	}
	if !calc.Equivalent(algebra) {
		t.Errorf("calculus and algebra disagree:\n%s\nvs\n%s", calc, algebra)
	}
}

func TestProgramString(t *testing.T) {
	prog, err := Parse(`a(x) :- Land(x2, x, _), Hurricane(t, x, y), x <= 3.`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	for _, want := range []string{"a(x) :- ", "Land(", "_", "x <= 3"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// The printer is a right inverse of the parser: the printed program
	// reparses, and printing is a fixpoint.
	again, err := Parse(s)
	if err != nil {
		t.Fatalf("printed program %q does not reparse: %v", s, err)
	}
	if got := again.String(); got != s {
		t.Errorf("printer not a fixpoint: %q -> %q", s, got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
