// Package calculus implements a declarative, calculus-style front end for
// CQA/CDB: non-recursive conjunctive rules in the Datalog-with-constraints
// tradition of the constraint query calculi (CQC) of Kanellakis, Kuper and
// Revesz.
//
// §2.2 of the paper describes the architecture this package completes:
// "it is typical that declarative user queries are translated into
// algebraic expressions before they are optimized and evaluated" — rules
// here are *translated to CQA plans* (package cqa) and evaluated by the
// algebra, exercising the CQC ≡ CQA equivalence of Goldin-Kanellakis on
// the positive-conjunctive fragment.
//
// Syntax (one or more rules, each terminated by '.'):
//
//	owned(name, t)  :- Landownership(name, t, id), id = "A".
//	hit(name)       :- owned(name, t), Hurricane(t, x, y), Land(id2, x, y).
//
// Body atoms are relation atoms R(term, ...) — with positional terms that
// are variables, "_" (anonymous), quoted strings, or rational numbers —
// and comparison atoms over the variables (linear over rationals; = / !=
// against quoted strings). Rules are range-restricted: every head
// variable must occur in some relation atom. Later rules may use earlier
// rules' heads (non-recursive stratification is enforced). Rules sharing
// a head name union.
package calculus

import (
	"fmt"
	"strings"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// Term is one positional argument of a relation atom.
type Term struct {
	Var  string // variable name ("" when a constant or anonymous)
	Str  string
	Rat  rational.Rat
	Kind TermKind
}

// TermKind discriminates Term.
type TermKind int

const (
	// TermVar is a variable.
	TermVar TermKind = iota
	// TermAnon is the anonymous variable "_".
	TermAnon
	// TermStr is a quoted string constant.
	TermStr
	// TermRat is a rational constant.
	TermRat
)

// RelAtom is R(t1, ..., tn).
type RelAtom struct {
	Name  string
	Terms []Term
}

// CompAtom is a comparison over variables: either a linear comparison
// (Lhs Op Rhs as variable/constant combinations parsed into coefficient
// form by the parser) or a string comparison.
type CompAtom struct {
	// Linear form: sum of (Coef, Var) plus Const, OP 0.
	Terms []LinTerm
	Const rational.Rat
	Op    cqa.CompOp
	// String form (used when IsStr): Var op StrLit or Var op OtherVar.
	IsStr    bool
	Var      string
	OtherVar string
	StrLit   string
	HasLit   bool
}

// LinTerm is one coefficient-variable pair of a linear comparison.
type LinTerm struct {
	Coef rational.Rat
	Var  string
}

// quoteStr quotes a string literal in exactly the form the rule lexer
// decodes (its inverse): quote, backslash and the common control
// characters escape, every other byte is emitted raw. Go's %q is NOT
// suitable here — it emits escapes like \f that the lexer decodes to a
// plain 'f'.
func quoteStr(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '\r':
			b.WriteString(`\r`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// String renders the comparison back to rule syntax ("2 x - y <= 10",
// `id = "A"`), exactly the form the parser accepts, with the constant
// moved to the right-hand side.
func (a CompAtom) String() string {
	if a.IsStr {
		if a.HasLit {
			return fmt.Sprintf("%s %s %s", a.Var, a.Op, quoteStr(a.StrLit))
		}
		return fmt.Sprintf("%s %s %s", a.Var, a.Op, a.OtherVar)
	}
	var b strings.Builder
	if len(a.Terms) == 0 {
		b.WriteString("0")
	}
	for i, t := range a.Terms {
		coef := t.Coef
		if neg := coef.Sign() < 0; neg {
			coef = coef.Neg()
			if i == 0 {
				b.WriteString("-")
			} else {
				b.WriteString(" - ")
			}
		} else if i > 0 {
			b.WriteString(" + ")
		}
		if !coef.Equal(rational.One) {
			b.WriteString(coef.String())
			b.WriteString(" ")
		}
		b.WriteString(t.Var)
	}
	fmt.Fprintf(&b, " %s %s", a.Op, a.Const.Neg())
	return b.String()
}

// Rule is head :- body.
type Rule struct {
	HeadName string
	HeadVars []string
	Rels     []RelAtom
	Comps    []CompAtom
	Line     int
}

// Program is an ordered list of rules.
type Program struct {
	Rules []Rule
}

// Translate compiles one rule into a CQA plan against the given schema
// environment. The construction is the textbook conjunctive-query
// translation: rename every atom's attributes apart, cross-join, select
// the induced equalities and the comparison atoms, project onto the head
// variables' representatives, and rename them to the head variable names.
func (r Rule) Translate(env cqa.SchemaEnv) (cqa.Node, error) {
	if len(r.Rels) == 0 {
		return nil, fmt.Errorf("calculus: line %d: rule body has no relation atoms", r.Line)
	}
	// rep maps each variable to its representative fresh attribute; occ
	// collects all fresh attributes bound to a variable.
	rep := map[string]string{}
	repAttr := map[string]schema.Attribute{}
	var eqConds cqa.Condition
	var constConds cqa.Condition

	var plan cqa.Node
	for ai, atom := range r.Rels {
		s, ok := env[atom.Name]
		if !ok {
			return nil, fmt.Errorf("calculus: line %d: unknown relation %q", r.Line, atom.Name)
		}
		if len(atom.Terms) != s.Len() {
			return nil, fmt.Errorf("calculus: line %d: %s has arity %d, atom has %d terms",
				r.Line, atom.Name, s.Len(), len(atom.Terms))
		}
		// Rename every attribute of this atom to a fresh name.
		var node cqa.Node = cqa.Scan(atom.Name)
		attrs := s.Attrs()
		freshNames := make([]string, len(attrs))
		for i, a := range attrs {
			fresh := fmt.Sprintf("$a%dp%d", ai, i)
			freshNames[i] = fresh
			node = cqa.NewRename(node, a.Name, fresh)
		}
		if plan == nil {
			plan = node
		} else {
			plan = cqa.NewJoin(plan, node) // disjoint attrs: cross product
		}
		// Bind terms.
		for i, t := range atom.Terms {
			a := attrs[i]
			fresh := freshNames[i]
			switch t.Kind {
			case TermAnon:
				// nothing to bind
			case TermVar:
				if prev, seen := rep[t.Var]; seen {
					prevAttr := repAttr[t.Var]
					if prevAttr.Type != a.Type {
						return nil, fmt.Errorf("calculus: line %d: variable %q used at %s and %s positions",
							r.Line, t.Var, prevAttr.Type, a.Type)
					}
					if a.Type == schema.String {
						eqConds = append(eqConds, cqa.StrEqAttr(prev, fresh))
					} else {
						eqConds = append(eqConds, cqa.AttrCmpAttr(prev, cqa.OpEq, fresh))
					}
				} else {
					rep[t.Var] = fresh
					repAttr[t.Var] = schema.Attribute{Name: fresh, Type: a.Type, Kind: a.Kind}
				}
			case TermStr:
				if a.Type != schema.String {
					return nil, fmt.Errorf("calculus: line %d: string constant at rational position %d of %s",
						r.Line, i+1, atom.Name)
				}
				constConds = append(constConds, cqa.StrEq(fresh, t.Str))
			case TermRat:
				if a.Type != schema.Rational {
					return nil, fmt.Errorf("calculus: line %d: rational constant at string position %d of %s",
						r.Line, i+1, atom.Name)
				}
				constConds = append(constConds, cqa.AttrCmpConst(fresh, cqa.OpEq, t.Rat))
			}
		}
	}

	// Comparison atoms over representatives.
	var compConds cqa.Condition
	for _, c := range r.Comps {
		if c.IsStr {
			lrep, ok := rep[c.Var]
			if !ok {
				return nil, fmt.Errorf("calculus: line %d: comparison uses unbound variable %q", r.Line, c.Var)
			}
			if repAttr[c.Var].Type != schema.String {
				return nil, fmt.Errorf("calculus: line %d: string comparison on rational variable %q", r.Line, c.Var)
			}
			if c.HasLit {
				compConds = append(compConds, cqa.StringAtom{Attr: lrep, Op: c.Op, Lit: c.StrLit, IsLit: true})
			} else {
				rrep, ok := rep[c.OtherVar]
				if !ok {
					return nil, fmt.Errorf("calculus: line %d: comparison uses unbound variable %q", r.Line, c.OtherVar)
				}
				compConds = append(compConds, cqa.StringAtom{Attr: lrep, Op: c.Op, OtherAttr: rrep})
			}
			continue
		}
		expr := cqaExprFromLinear(c, rep)
		if expr == nil {
			return nil, fmt.Errorf("calculus: line %d: comparison uses unbound variable", r.Line)
		}
		compConds = append(compConds, cqa.LinearAtom{Expr: *expr, Op: c.Op})
	}

	cond := append(append(append(cqa.Condition{}, constConds...), eqConds...), compConds...)
	if len(cond) > 0 {
		plan = cqa.NewSelect(plan, cond)
	}

	// Project onto the head variables' representatives, then rename to the
	// head variable names.
	var cols []string
	for _, v := range r.HeadVars {
		fresh, ok := rep[v]
		if !ok {
			return nil, fmt.Errorf("calculus: line %d: head variable %q not bound by any relation atom (rule is not range-restricted)", r.Line, v)
		}
		cols = append(cols, fresh)
	}
	plan = cqa.NewProject(plan, cols...)
	for i, v := range r.HeadVars {
		plan = cqa.NewRename(plan, cols[i], v)
	}
	return plan, nil
}

func cqaExprFromLinear(c CompAtom, rep map[string]string) *constraint.Expr {
	e := constraint.Const(c.Const)
	for _, t := range c.Terms {
		fresh, ok := rep[t.Var]
		if !ok {
			return nil
		}
		e = e.Add(constraint.Var(fresh).Scale(t.Coef))
	}
	return &e
}

// Run evaluates the program: rules execute in order; rules with the same
// head name union; the final head's relation is returned.
func (p *Program) Run(env cqa.Env) (*relation.Relation, error) {
	return p.RunCtx(env, nil)
}

// RunCtx is Run under an execution context: the translated CQA plans fan
// their operator work out over ec's worker pool and record per-operator
// stats on ec. A nil ec is Run.
func (p *Program) RunCtx(env cqa.Env, ec *exec.Context) (*relation.Relation, error) {
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("calculus: empty program")
	}
	scratch := make(cqa.Env, len(env))
	for k, v := range env {
		scratch[k] = v
	}
	defined := map[string]bool{}
	for _, r := range p.Rules {
		// Deadline checkpoint between rules (see exec.Context.Ctx).
		if err := ec.Err(); err != nil {
			return nil, fmt.Errorf("calculus: line %d (%s): %w", r.Line, r.HeadName, err)
		}
		// Non-recursive check: the body must not mention the head (directly;
		// earlier heads are fine because they are already materialised).
		for _, atom := range r.Rels {
			if atom.Name == r.HeadName {
				return nil, fmt.Errorf("calculus: line %d: recursive rule %q is not supported", r.Line, r.HeadName)
			}
		}
		// One span per rule: translation (the calculus → algebra rewrite
		// step), optimisation and plan evaluation all happen under it, so
		// EXPLAIN shows which rule each plan subtree belongs to.
		sp := ec.BeginSpan("rule", r.HeadName)
		plan, err := r.Translate(scratch.Schemas())
		if err != nil {
			ec.EndSpan(sp)
			return nil, err
		}
		plan = cqa.Plan(plan, scratch, ec)
		out, err := plan.EvalCtx(scratch, ec)
		if err != nil {
			ec.EndSpan(sp)
			return nil, fmt.Errorf("calculus: line %d: %w", r.Line, err)
		}
		if defined[r.HeadName] {
			merged, err := cqa.UnionCtx(ec, scratch[r.HeadName], out)
			if err != nil {
				ec.EndSpan(sp)
				return nil, fmt.Errorf("calculus: line %d: rules for %q have incompatible heads: %w", r.Line, r.HeadName, err)
			}
			scratch[r.HeadName] = merged
		} else {
			scratch[r.HeadName] = out
			defined[r.HeadName] = true
		}
		sp.Set("out", int64(scratch[r.HeadName].Len()))
		ec.EndSpan(sp)
	}
	last := p.Rules[len(p.Rules)-1].HeadName
	sp := ec.BeginSpan("normalize", "")
	norm := scratch[last].NormalizeWith(ec.SatFunc())
	sp.Set("out", int64(norm.Len()))
	ec.EndSpan(sp)
	return norm, nil
}

// String renders the program back to rule syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		fmt.Fprintf(&b, "%s(%s) :- ", r.HeadName, strings.Join(r.HeadVars, ", "))
		var parts []string
		for _, a := range r.Rels {
			var ts []string
			for _, t := range a.Terms {
				switch t.Kind {
				case TermVar:
					ts = append(ts, t.Var)
				case TermAnon:
					ts = append(ts, "_")
				case TermStr:
					ts = append(ts, quoteStr(t.Str))
				default:
					ts = append(ts, t.Rat.String())
				}
			}
			parts = append(parts, fmt.Sprintf("%s(%s)", a.Name, strings.Join(ts, ", ")))
		}
		for _, c := range r.Comps {
			parts = append(parts, c.String())
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteString(".\n")
	}
	return b.String()
}
