package cqa_test

// The metamorphic suite: instead of knowing the right ANSWER for a random
// input, these tests know algebraic IDENTITIES the answers must satisfy —
// the paper's closure principle (§2.5), upward compatibility with classical
// relational semantics (§3), and the standard relational-algebra laws that
// survive the lift to constraint relations. Each identity is checked on
// seeded random heterogeneous inputs via relation.Equivalent (mutual
// semantic cover), so canonical-form differences never cause false alarms.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// TestMetamorphicCanonClosure asserts the closure principle's engineering
// face: every operator emits tuples whose constraint parts are already in
// canonical form (Canon is a fixpoint on operator output). Downstream
// consumers (dedup, fingerprint caches, difference) rely on this.
func TestMetamorphicCanonClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(ctx string, r *relation.Relation, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		for _, tu := range r.Tuples() {
			j := tu.Constraint()
			if got, want := j.Canon().String(), j.String(); got != want {
				t.Errorf("%s: output tuple not canonical:\n  emitted %s\n  canon   %s", ctx, want, got)
			}
		}
	}
	for i := 0; i < 40; i++ {
		r1, r2 := datagen.RandomRelationPair(rng, 4)
		cond := cqa.Condition{cqa.AttrCmpConst(r1.Schema().ConstraintNames()[0], cqa.OpLe, rational.FromInt(3))}

		out, err := cqa.Select(r1, cond)
		check(fmt.Sprintf("case %d select", i), out, err)
		out, err = cqa.Project(r1, r1.Schema().Names()[0])
		check(fmt.Sprintf("case %d project", i), out, err)
		out, err = cqa.Join(r1, r2)
		check(fmt.Sprintf("case %d join", i), out, err)
		out, err = cqa.Intersect(r1, r2)
		check(fmt.Sprintf("case %d intersect", i), out, err)
		out, err = cqa.Union(r1, r2)
		check(fmt.Sprintf("case %d union", i), out, err)
		out, err = cqa.Difference(r1, r2)
		check(fmt.Sprintf("case %d difference", i), out, err)
		old := r1.Schema().Names()[0]
		out, err = cqa.Rename(r1, old, "r"+old)
		check(fmt.Sprintf("case %d rename", i), out, err)
	}
}

// TestMetamorphicCommutativity: union and intersection are commutative up
// to semantic equivalence (the canonical tuple SETS may differ; the point
// sets may not).
func TestMetamorphicCommutativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 60; i++ {
		r1, r2 := datagen.RandomRelationPair(rng, 4)
		for _, op := range []struct {
			name string
			f    func(a, b *relation.Relation) (*relation.Relation, error)
		}{
			{"union", cqa.Union},
			{"intersect", cqa.Intersect},
		} {
			ab, err := op.f(r1, r2)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, op.name, err)
			}
			ba, err := op.f(r2, r1)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, op.name, err)
			}
			if !ab.Equivalent(ba) {
				t.Errorf("case %d: %s not commutative:\n  a op b = %s\n  b op a = %s",
					i, op.name, ab, ba)
			}
		}
	}
}

// TestMetamorphicDifferenceIdentity: R − (R − S) ≡ R ∩ S, the classic
// set-theoretic identity. It routes the same point sets through the two
// most divergent code paths in the engine — the staircase complement
// expansion versus the join-based intersection — so it catches asymmetric
// bugs either side's own tests miss.
func TestMetamorphicDifferenceIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		r, s := datagen.RandomRelationPair(rng, 4)
		rs, err := cqa.Difference(r, s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		lhs, err := cqa.Difference(r, rs)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		rhs, err := cqa.Intersect(r, s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !lhs.Equivalent(rhs) {
			t.Errorf("case %d: R−(R−S) ≢ R∩S\n  R = %s\n  S = %s\n  lhs = %s\n  rhs = %s",
				i, r, s, lhs, rhs)
		}
	}
}

// TestMetamorphicProjectCollapse: πX(πY(r)) ≡ πX(r) whenever X ⊆ Y —
// eliminating variables in two batches must agree with eliminating them in
// one (transitivity of Fourier–Motzkin projection).
func TestMetamorphicProjectCollapse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		s := datagen.RandomSchema(rng)
		r := datagen.RandomRelation(rng, s, 4)
		names := s.Names()
		if len(names) < 2 {
			continue
		}
		// Draw X ⊆ Y ⊆ names with X nonempty.
		var y []string
		for _, n := range names {
			if rng.Intn(3) != 0 {
				y = append(y, n)
			}
		}
		if len(y) == 0 {
			y = names[:1]
		}
		var x []string
		for _, n := range y {
			if rng.Intn(2) == 0 {
				x = append(x, n)
			}
		}
		if len(x) == 0 {
			x = y[:1]
		}
		py, err := cqa.Project(r, y...)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		twoStep, err := cqa.Project(py, x...)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		oneStep, err := cqa.Project(r, x...)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !twoStep.Equivalent(oneStep) {
			t.Errorf("case %d: π%v(π%v(r)) ≢ π%v(r)\n  r = %s\n  two-step = %s\n  one-step = %s",
				i, x, y, x, r, twoStep, oneStep)
		}
	}
}

// ---- Upward compatibility with classical relational semantics (§3) ----
//
// On a schema with NO constraint attributes, the CQA operators must agree
// with textbook relational algebra over finite tuple sets (with the
// paper's narrow NULL semantics: NULL is a distinguished quasi-value,
// identical only to itself, matching nothing in conditions). The naive
// implementations below are written directly against that definition.

type row map[string]relation.Value

func rowKey(names []string, r row) string {
	var b strings.Builder
	for _, n := range names {
		v, ok := r[n]
		if !ok {
			v = relation.Null()
		}
		b.WriteString(v.Key())
		b.WriteByte('|')
	}
	return b.String()
}

func dedupRows(names []string, rows []row) []row {
	seen := map[string]bool{}
	var out []row
	for _, r := range rows {
		k := rowKey(names, r)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

func toRelation(t *testing.T, s schema.Schema, rows []row) *relation.Relation {
	t.Helper()
	r := relation.New(s)
	for _, ro := range rows {
		rvals := map[string]relation.Value{}
		for k, v := range ro {
			if !v.IsNull() {
				rvals[k] = v
			}
		}
		r.MustAdd(relation.NewTuple(rvals, constraint.True()))
	}
	return r
}

func fromRelation(r *relation.Relation) []row {
	var out []row
	for _, t := range r.Tuples() {
		ro := row{}
		for _, n := range r.Schema().Names() {
			v, ok := t.RVal(n)
			if !ok {
				v = relation.Null()
			}
			ro[n] = v
		}
		out = append(out, ro)
	}
	return out
}

func randomRows(rng *rand.Rand, names []string, n int) []row {
	pool := []string{"a", "b", "c"}
	var out []row
	for i := 0; i < n; i++ {
		ro := row{}
		for _, name := range names {
			if rng.Intn(4) != 0 {
				ro[name] = relation.Str(pool[rng.Intn(len(pool))])
			} else {
				ro[name] = relation.Null()
			}
		}
		out = append(out, ro)
	}
	return out
}

// sameRows compares two classical relations as SETS of rows: relational
// semantics are set semantics, and the engine is free to emit physical
// duplicates that denote the same point set (e.g. after projection).
func sameRows(names []string, a, b []row) bool {
	keys := func(rows []row) string {
		set := map[string]bool{}
		for _, r := range rows {
			set[rowKey(names, r)] = true
		}
		ks := make([]string, 0, len(set))
		for k := range set {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return strings.Join(ks, "\n")
	}
	return keys(a) == keys(b)
}

// TestMetamorphicUpwardCompatibility runs every operator on purely
// relational random inputs and compares against the naive classical
// implementation, per §3's compatibility theorem.
func TestMetamorphicUpwardCompatibility(t *testing.T) {
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Rel("tag", schema.String))
	names := s.Names()
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 50; i++ {
		rows1 := dedupRows(names, randomRows(rng, names, rng.Intn(6)))
		rows2 := dedupRows(names, randomRows(rng, names, rng.Intn(6)))
		r1 := toRelation(t, s, rows1)
		r2 := toRelation(t, s, rows2)

		// Select id = 'a'.
		cond := cqa.Condition{cqa.StrEq("id", "a")}
		got, err := cqa.Select(r1, cond)
		if err != nil {
			t.Fatalf("case %d select: %v", i, err)
		}
		var want []row
		for _, ro := range rows1 {
			if !ro["id"].IsNull() && ro["id"].Equal(relation.Str("a")) {
				want = append(want, ro)
			}
		}
		if !sameRows(names, fromRelation(got), want) {
			t.Errorf("case %d: select diverges from classical semantics\n  in  = %s\n  out = %s", i, r1, got)
		}

		// Select id != tag (attribute comparison, narrow NULL).
		got, err = cqa.Select(r1, cqa.Condition{cqa.StrEqAttr("id", "tag")})
		if err != nil {
			t.Fatalf("case %d select attr: %v", i, err)
		}
		want = nil
		for _, ro := range rows1 {
			if !ro["id"].IsNull() && !ro["tag"].IsNull() && ro["id"].Equal(ro["tag"]) {
				want = append(want, ro)
			}
		}
		if !sameRows(names, fromRelation(got), want) {
			t.Errorf("case %d: attr select diverges\n  in  = %s\n  out = %s", i, r1, got)
		}

		// Project onto id (with classical dedup).
		got, err = cqa.Project(r1, "id")
		if err != nil {
			t.Fatalf("case %d project: %v", i, err)
		}
		want = nil
		for _, ro := range rows1 {
			want = append(want, row{"id": ro["id"]})
		}
		want = dedupRows([]string{"id"}, want)
		if !sameRows([]string{"id"}, fromRelation(got), want) {
			t.Errorf("case %d: project diverges\n  in  = %s\n  out = %s", i, r1, got)
		}

		// Union with dedup.
		got, err = cqa.Union(r1, r2)
		if err != nil {
			t.Fatalf("case %d union: %v", i, err)
		}
		want = dedupRows(names, append(append([]row{}, rows1...), rows2...))
		if !sameRows(names, fromRelation(got), want) {
			t.Errorf("case %d: union diverges\n  r1 = %s\n  r2 = %s\n  out = %s", i, r1, r2, got)
		}

		// Intersection: identical rows (NULL identical to NULL).
		got, err = cqa.Intersect(r1, r2)
		if err != nil {
			t.Fatalf("case %d intersect: %v", i, err)
		}
		want = nil
		in2 := map[string]bool{}
		for _, ro := range rows2 {
			in2[rowKey(names, ro)] = true
		}
		for _, ro := range rows1 {
			if in2[rowKey(names, ro)] {
				want = append(want, ro)
			}
		}
		if !sameRows(names, fromRelation(got), want) {
			t.Errorf("case %d: intersect diverges\n  r1 = %s\n  r2 = %s\n  out = %s", i, r1, r2, got)
		}

		// Difference: drop rows present (identically) in r2.
		got, err = cqa.Difference(r1, r2)
		if err != nil {
			t.Fatalf("case %d difference: %v", i, err)
		}
		want = nil
		for _, ro := range rows1 {
			if !in2[rowKey(names, ro)] {
				want = append(want, ro)
			}
		}
		if !sameRows(names, fromRelation(got), want) {
			t.Errorf("case %d: difference diverges\n  r1 = %s\n  r2 = %s\n  out = %s", i, r1, r2, got)
		}

		// Rename is a pure relabelling.
		got, err = cqa.Rename(r1, "id", "key")
		if err != nil {
			t.Fatalf("case %d rename: %v", i, err)
		}
		want = nil
		for _, ro := range rows1 {
			want = append(want, row{"key": ro["id"], "tag": ro["tag"]})
		}
		if !sameRows([]string{"key", "tag"}, fromRelation(got), want) {
			t.Errorf("case %d: rename diverges\n  in  = %s\n  out = %s", i, r1, got)
		}
	}
}
