package cqa

import (
	"math"

	"cdb/internal/exec"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// This file is the physical half of the two-phase planner. The logical
// phase (Optimize + the cost-driven rewrites in optimize_cost.go)
// reshapes the algebra tree; the physical phase decides *how* each
// binary node's filter stage enumerates candidate pairs — dense nested
// loop, interval sweep, or R*-tree index probe — with a small cost model
// over the estimates of estimate.go. The decision is made twice, by the
// same code: PlanPhysical stamps a strategy hint on binary nodes whose
// inputs are base relations (so EXPLAIN shows the plan before it runs,
// and the decision is made from exact input statistics), and the
// operators re-run the decision at execution time for inputs the planner
// could not see (intermediate results). An explicit exec.Context.PlanMode
// overrides both.
//
// Cost model. Unit = one envelope-interval comparison; k = number of
// shared constraint attributes (each surviving pair pays a k-interval
// Disjoint check whatever the strategy):
//
//	dense  = relPairs·k                    every bucket-matched pair checked
//	sweep  = (n+m)·log₂(n+m) + estSweep·k  sort both sides, check overlaps on the sweep attr
//	index  = (6m + 3n)·log₂(m) + estIndex·k  STR bulk load + probes, check multi-attr overlaps
//
// The index's build and probe weights are calibrated constants (page
// serialisation and node scans cost more than a comparison); its win
// condition is estIndex ≪ estSweep — pairs that overlap on one attribute
// but not on both, which is exactly the spatially-clustered workload.
// Ties prefer the simpler strategy (dense, then sweep, then index).

// decideStrategy is the cost model: it picks the cheapest applicable
// strategy for a pairing problem summarised by s. Inputs smaller than
// sweepSize (the legacy sweep crossover) always run dense — at that size
// strategy machinery costs more than the loop it replaces.
//
// The vector fast path is not an enumeration strategy but a refine-stage
// substitution (exact polygon clipping instead of Fourier–Motzkin on the
// eligible pairs), so its decision comes first and is driven by
// eligibility, not candidate counts: when at least half the candidate
// pairs are expected to be decidable in vector form, the FM savings
// dominate whatever the enumeration does. The candidate *enumeration*
// under PlanVector is still picked by the same cost model (decideEnum).
func decideStrategy(s pairStats, sweepSize int) string {
	if int64(s.n)*int64(s.m) < int64(sweepSize) {
		return exec.PlanDense
	}
	if s.vectorFrac() >= 0.5 {
		return exec.PlanVector
	}
	return decideEnum(s, sweepSize)
}

// decideEnum is the enumeration half of the cost model: dense, sweep or
// index. It is what decideStrategy returns for non-vector pairings, and
// what the filter stage runs *inside* a PlanVector pairing to enumerate
// candidates (the candidate set is strategy-independent, so the vector
// refine composes with any of the three).
func decideEnum(s pairStats, sweepSize int) string {
	if s.sweepAttr == "" || int64(s.n)*int64(s.m) < int64(sweepSize) {
		return exec.PlanDense
	}
	k := float64(len(s.overlap))
	if k < 1 {
		k = 1
	}
	logNM := math.Log2(float64(s.n+s.m) + 1)
	costDense := float64(s.relPairs) * k
	costSweep := float64(s.n+s.m)*logNM + float64(s.estSweep())*k
	best, bestCost := exec.PlanDense, costDense
	if costSweep < bestCost {
		best, bestCost = exec.PlanSweep, costSweep
	}
	if len(s.indexAttrs) > 0 {
		logM := math.Log2(float64(s.m) + 1)
		costIndex := (6*float64(s.m)+3*float64(s.n))*logM + float64(s.estIndex())*k
		if costIndex < bestCost {
			best = exec.PlanIndex
		}
	}
	return best
}

// resolveStrategy turns the three-level precedence — forced PlanMode >
// planner hint > runtime cost model — into the concrete strategy a
// pairing call runs. Forcing a strategy whose prerequisites are missing
// (sweep with no sweepable attribute, index with no indexable one)
// degrades to dense: the degenerate enumeration is the dense loop either
// way, and the stats then say so instead of flattering the forced mode.
func resolveStrategy(ec *exec.Context, hint string, s pairStats, sweepSize int) string {
	mode := ec.Plan()
	if mode == exec.PlanAuto && hint != "" {
		mode = hint
	}
	switch mode {
	case exec.PlanDense:
		return exec.PlanDense
	case exec.PlanSweep:
		if s.sweepAttr == "" {
			return exec.PlanDense
		}
		return exec.PlanSweep
	case exec.PlanIndex:
		if len(s.indexAttrs) == 0 {
			return exec.PlanDense
		}
		return exec.PlanIndex
	case exec.PlanVector:
		// Forcing vector with nothing eligible on either side would run
		// the FM fallback per pair while reporting strategy=vector;
		// degrade honestly instead. One eligible side is kept: the
		// difference staircase profits from the minuend's form alone.
		if s.elig1 == 0 && s.elig2 == 0 {
			return exec.PlanDense
		}
		return exec.PlanVector
	}
	return decideStrategy(s, sweepSize)
}

// scanRelation resolves a node to a base relation when the node is a
// plain scan — the only case where plan-time statistics are exact rather
// than propagated guesses, and therefore the only case PlanPhysical
// stamps hints for.
func scanRelation(n Node, env Env) (*relation.Relation, bool) {
	s, ok := n.(*ScanNode)
	if !ok {
		return nil, false
	}
	r, ok := env[s.Name]
	return r, ok
}

// pairStatsFor computes the estimator summary for a binary node over two
// resolved relations, deriving the shared attribute split the same way
// joinCtx does (difference passes equal schemas, so the split degenerates
// to all-relational + all-constraint attributes there).
func pairStatsFor(r1, r2 *relation.Relation) pairStats {
	var sharedRel, sharedCon []string
	for _, a := range r1.Schema().Attrs() {
		if !r2.Schema().Has(a.Name) {
			continue
		}
		if a.Kind == schema.Relational {
			sharedRel = append(sharedRel, a.Name)
		} else {
			sharedCon = append(sharedCon, a.Name)
		}
	}
	t1s, t2s := r1.Tuples(), r2.Tuples()
	env1, env2 := envelopes(t1s), envelopes(t2s)
	var p1, p2 *relation.Partition
	if len(sharedRel) > 0 {
		p1 = relation.NewPartition(t1s, sharedRel)
		p2 = relation.NewPartition(t2s, sharedRel)
	}
	stats := analyzePairing(env1, env2, p1, p2, sharedCon)
	stats.elig1, stats.elig2 = countVectorEligible(t1s), countVectorEligible(t2s)
	return stats
}

// PlanPhysical annotates the plan's binary nodes with pairing-strategy
// hints where plan-time statistics are exact: a JoinNode or DiffNode
// whose inputs are both base-relation scans gets the cost model's pick
// (or the forced PlanMode) stamped into its Strategy field, which
// EvalCtx forwards to the operator. Nodes over intermediate results are
// left unstamped — the operator re-decides at execution time, when the
// actual inputs exist. The returned tree shares unmodified subtrees with
// the input; the input tree itself is never mutated.
func PlanPhysical(n Node, env Env, ec *exec.Context) Node {
	switch node := n.(type) {
	case *SelectNode:
		return NewSelect(PlanPhysical(node.Input, env, ec), node.Cond)
	case *ProjectNode:
		return NewProject(PlanPhysical(node.Input, env, ec), node.Cols...)
	case *RenameNode:
		return NewRename(PlanPhysical(node.Input, env, ec), node.Old, node.New)
	case *UnionNode:
		return NewUnion(PlanPhysical(node.Left, env, ec), PlanPhysical(node.Right, env, ec))
	case *JoinNode:
		l, r := PlanPhysical(node.Left, env, ec), PlanPhysical(node.Right, env, ec)
		out := NewJoin(l, r)
		out.Strategy = planHint(l, r, env, ec)
		return out
	case *DiffNode:
		l, r := PlanPhysical(node.Left, env, ec), PlanPhysical(node.Right, env, ec)
		out := NewDiff(l, r)
		out.Strategy = planHint(l, r, env, ec)
		return out
	default:
		return n
	}
}

// planHint computes the strategy hint for one binary node, or "" when
// its inputs are not both base relations.
func planHint(l, r Node, env Env, ec *exec.Context) string {
	rl, ok := scanRelation(l, env)
	if !ok {
		return ""
	}
	rr, ok := scanRelation(r, env)
	if !ok {
		return ""
	}
	return resolveStrategy(ec, "", pairStatsFor(rl, rr), ec.SweepSize())
}

// Plan is the full two-phase planner: the logical fixpoint rules
// (Optimize), the cost-driven logical rewrites (join reordering and
// selectivity-ordered selections, optimize_cost.go), then the physical
// strategy annotation. This is what the query front end runs when
// optimisation is on and an environment of real relations is in hand;
// Optimize alone remains the schema-only entry point.
func Plan(n Node, env Env, ec *exec.Context) Node {
	n = Optimize(n, env.Schemas())
	n = optimizeCost(n, env)
	return PlanPhysical(n, env, ec)
}
