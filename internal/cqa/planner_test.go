package cqa

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/obs"
	"cdb/internal/rational"
	"cdb/internal/relation"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChooseSweepAttrTieBreak pins the documented tie-break of the sweep
// attribute choice: candidates are visited in lexicographic order and a
// later attribute needs a strictly greater boundedness score to replace
// the incumbent, so on a tie the lexicographically first attribute wins —
// regardless of the order the caller lists the shared attributes in.
func TestChooseSweepAttrTieBreak(t *testing.T) {
	// Both x and y are two-sided-bounded in every envelope on both sides:
	// identical scores, so the choice is decided purely by the tie-break.
	mk := func(n int) []constraint.Envelope {
		out := make([]constraint.Envelope, n)
		for i := range out {
			k := fmt.Sprint(i)
			out[i] = constraint.And(
				ge("x", k), le("x", fmt.Sprint(i+1)),
				ge("y", k), le("y", fmt.Sprint(i+1)),
			).Envelope()
		}
		return out
	}
	env1, env2 := mk(4), mk(3)
	for _, shared := range [][]string{{"x", "y"}, {"y", "x"}} {
		if got := chooseSweepAttr(shared, env1, env2); got != "x" {
			t.Errorf("chooseSweepAttr(%v) = %q, want lex-first %q on a tie", shared, got, "x")
		}
	}
	// A strictly better-scored later attribute must still win: unbound x
	// on one side so y's score dominates.
	lop := make([]constraint.Envelope, len(env1))
	for i := range env1 {
		lop[i] = constraint.And(ge("y", "0"), le("y", "9")).Envelope()
	}
	if got := chooseSweepAttr([]string{"x", "y"}, lop, env2); got != "y" {
		t.Errorf("chooseSweepAttr with x unbounded = %q, want %q", got, "y")
	}
}

// TestStrategyEquivalence is the physical planner's acceptance contract:
// every pairing strategy — forced dense, forced sweep, forced index,
// forced vector, and the cost model's auto pick — produces byte-identical
// output (same
// tuples, same order) on every binary operator and workload shape, both
// sequentially and under the worker pool. Forced modes disable the
// small-bucket dense escape, so sweep and index really run.
func TestStrategyEquivalence(t *testing.T) {
	ops := map[string]func(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error){
		"join":       JoinCtx,
		"intersect":  IntersectCtx,
		"difference": DifferenceCtx,
	}
	modes := []string{exec.PlanDense, exec.PlanSweep, exec.PlanIndex, exec.PlanVector, exec.PlanAuto}
	for wName, pair := range pruneInputs(t) {
		for opName, op := range ops {
			for _, par := range []int{1, 4} {
				baseline := &exec.Context{Parallelism: par, SeqThreshold: 1, PlanMode: exec.PlanDense}
				want, err := op(baseline, pair[0], pair[1])
				if err != nil {
					t.Fatalf("%s %s par%d dense: %v", wName, opName, par, err)
				}
				wantDump := dump(want)
				for _, mode := range modes {
					ec := &exec.Context{Parallelism: par, SeqThreshold: 1, PlanMode: mode}
					got, err := op(ec, pair[0], pair[1])
					if err != nil {
						t.Fatalf("%s %s par%d %s: %v", wName, opName, par, mode, err)
					}
					if dump(got) != wantDump {
						t.Errorf("%s %s par%d: -plan=%s output diverges from dense\ndense:\n%s\n%s:\n%s",
							wName, opName, par, mode, wantDump, mode, dump(got))
					}
				}
			}
		}
	}
}

// TestEstimatorBounds pins the estimator's property the EXPLAIN ANALYZE
// columns rely on: est_pairs is a true upper bound on the pairs that
// survive the filter stage (act_pairs), whichever strategy ran, and a
// non-empty join output implies a non-zero estimate (every join output
// tuple descends from a surviving pair).
func TestEstimatorBounds(t *testing.T) {
	ops := map[string]func(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error){
		"join":       JoinCtx,
		"intersect":  IntersectCtx,
		"difference": DifferenceCtx,
	}
	modes := []string{exec.PlanAuto, exec.PlanDense, exec.PlanSweep, exec.PlanIndex, exec.PlanVector}
	for wName, pair := range pruneInputs(t) {
		for opName, op := range ops {
			for _, mode := range modes {
				ec := &exec.Context{Parallelism: 2, SeqThreshold: 1, PlanMode: mode}
				out, err := op(ec, pair[0], pair[1])
				if err != nil {
					t.Fatalf("%s %s %s: %v", wName, opName, mode, err)
				}
				var est, act int64
				seen := false
				for _, s := range ec.Stats() {
					if s.Strategy == "" {
						continue
					}
					seen = true
					est += s.EstPairs
					act += s.PairsTotal - s.PairsPruned
				}
				if !seen {
					t.Fatalf("%s %s %s: no stats row carries a strategy", wName, opName, mode)
				}
				if est < act {
					t.Errorf("%s %s %s: est_pairs %d < act_pairs %d — the estimate is not an upper bound",
						wName, opName, mode, est, act)
				}
				if opName == "join" && out.Len() > 0 && est == 0 {
					t.Errorf("%s %s %s: output has %d tuples but est_pairs = 0",
						wName, opName, mode, out.Len())
				}
			}
		}
	}
}

// TestPlanPhysicalAnnotations: the physical pass stamps a strategy hint
// exactly where plan-time statistics are exact — binary nodes over two
// base-relation scans — and leaves nodes over intermediate results for
// the runtime decision. A forced PlanMode shows up in the stamp.
func TestPlanPhysicalAnnotations(t *testing.T) {
	pair := pruneInputs(t)["clustered"]
	env := Env{"R1": pair[0], "R2": pair[1]}

	ec := &exec.Context{}
	planned := PlanPhysical(NewJoin(Scan("R1"), Scan("R2")), env, ec)
	j, ok := planned.(*JoinNode)
	if !ok {
		t.Fatalf("PlanPhysical changed the node type: %T", planned)
	}
	switch j.Strategy {
	case exec.PlanDense, exec.PlanSweep, exec.PlanIndex, exec.PlanVector:
	default:
		t.Errorf("scan-children join stamped %q, want a concrete strategy", j.Strategy)
	}

	// A child that is not a base-relation scan leaves the node unstamped.
	cond := Condition{AttrCmpConst("x", OpLe, rational.FromInt(500))}
	planned = PlanPhysical(NewJoin(NewSelect(Scan("R1"), cond), Scan("R2")), env, ec)
	if s := planned.(*JoinNode).Strategy; s != "" {
		t.Errorf("join over an intermediate stamped %q, want unstamped", s)
	}

	// Difference gets the same treatment as join.
	planned = PlanPhysical(NewDiff(Scan("R1"), Scan("R2")), env, ec)
	if s := planned.(*DiffNode).Strategy; s == "" {
		t.Error("scan-children difference left unstamped")
	}

	// A forced mode overrides the cost model in the stamp (the clustered
	// boxes bound x and y on both sides, so index is applicable).
	forced := &exec.Context{PlanMode: exec.PlanIndex}
	planned = PlanPhysical(NewJoin(Scan("R1"), Scan("R2")), env, forced)
	if s := planned.(*JoinNode).Strategy; s != exec.PlanIndex {
		t.Errorf("forced index stamped %q", s)
	}
}

// TestExplainPlanGolden pins the EXPLAIN ANALYZE surface of the planner:
// the rendered span tree for a planned join shows the chosen strategy and
// the est_pairs/act_pairs columns, byte-for-byte. The render excludes
// wall times, and the fixture is seeded, so the output is deterministic.
// Regenerate with: go test ./internal/cqa -run TestExplainPlanGolden -update
func TestExplainPlanGolden(t *testing.T) {
	pair := pruneInputs(t)["clustered"]
	env := Env{"R1": pair[0], "R2": pair[1]}
	node := NewProject(NewJoin(Scan("R1"), Scan("R2")), "id", "x", "y")

	ec := &exec.Context{}
	ec.Tracer = obs.NewTracer()
	planned := Plan(node, env, ec)
	if _, err := planned.EvalCtx(env, ec); err != nil {
		t.Fatal(err)
	}
	got := obs.FormatTree(ec.Tracer.Roots(), obs.TreeOptions{})

	golden := filepath.Join("testdata", "explain_plan.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN tree diverges from golden %s (re-run with -update if intended)\nwant:\n%s\ngot:\n%s",
			golden, want, got)
	}
}
