// Package cqa implements the Constraint Query Algebra of CQA/CDB: the six
// primitive operators of relational algebra (project, select, natural-join,
// union, rename, difference) reinterpreted over heterogeneous constraint
// relations, per §2.4 and §3 of the paper.
//
// The closure principle (§2.5) holds for every operator: the output of an
// operator over rational-linear constraint relations is again a
// rational-linear constraint relation, so operators compose freely and each
// can be proven correct against the (infinite) point-set semantics.
//
// Missing-attribute semantics follow the heterogeneous data model:
//
//   - a selection condition over a *relational* attribute that is unbound
//     in a tuple rejects the tuple (narrow semantics — NULL is distinct
//     from every value);
//   - a selection condition over a *constraint* attribute simply conjoins
//     the constraint (broad semantics — an unconstrained attribute admits
//     every value).
//
// The §3.1 missing-attribute inconsistency of the pure constraint model is
// therefore resolved by the schema flag, not by a query-time mode switch:
// declaring every attribute Constraint reproduces the classical (broad)
// constraint model, declaring every attribute Relational reproduces the
// classical relational model, and the two give different answers to the
// paper's Example 2 (see the tests).
package cqa

import (
	"fmt"
	"strings"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
	"cdb/internal/vector"
)

// CompOp is a comparison operator of a selection atom.
type CompOp int

const (
	OpEq CompOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var compOpNames = map[CompOp]string{
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

func (o CompOp) String() string { return compOpNames[o] }

// ParseCompOp parses a comparison operator token.
func ParseCompOp(s string) (CompOp, error) {
	switch s {
	case "=", "==":
		return OpEq, nil
	case "!=", "<>":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("cqa: unknown comparison operator %q", s)
	}
}

// Atom is one atomic selection condition. A selection condition is a
// conjunction of atoms (ξ in the paper's select operator).
type Atom interface {
	fmt.Stringer
	// attrs returns the attribute names referenced by the atom.
	attrs() []string
	isAtom()
}

// LinearAtom compares a linear expression over rational attributes with
// zero: Expr OP 0. Attributes of either kind may appear as long as their
// type is rational; relational rational attributes are substituted with the
// tuple's value at evaluation time (narrow semantics when unbound).
type LinearAtom struct {
	Expr constraint.Expr
	Op   CompOp
}

func (LinearAtom) isAtom() {}

func (a LinearAtom) attrs() []string { return a.Expr.Vars() }

func (a LinearAtom) String() string {
	// Render as "expr OP rhs" with the constant moved right.
	lhs := a.Expr.Sub(constraint.Const(a.Expr.ConstTerm()))
	rhs := a.Expr.ConstTerm().Neg()
	return fmt.Sprintf("%s %s %s", lhs, a.Op, rhs)
}

// Linear builds a LinearAtom lhs op rhs.
func Linear(lhs constraint.Expr, op CompOp, rhs constraint.Expr) LinearAtom {
	return LinearAtom{Expr: lhs.Sub(rhs), Op: op}
}

// AttrCmpConst builds the atom "attr op k" for a rational constant.
func AttrCmpConst(attr string, op CompOp, k rational.Rat) LinearAtom {
	return Linear(constraint.Var(attr), op, constraint.Const(k))
}

// AttrCmpAttr builds the atom "a op b" for two rational attributes.
func AttrCmpAttr(a string, op CompOp, b string) LinearAtom {
	return Linear(constraint.Var(a), op, constraint.Var(b))
}

// StringAtom compares a string attribute with a literal or with another
// string attribute. Only = and != are defined on strings.
type StringAtom struct {
	Attr string
	Op   CompOp // OpEq or OpNe
	// Exactly one of Lit / OtherAttr is used.
	Lit       string
	OtherAttr string
	IsLit     bool
}

func (StringAtom) isAtom() {}

func (a StringAtom) attrs() []string {
	if a.IsLit {
		return []string{a.Attr}
	}
	return []string{a.Attr, a.OtherAttr}
}

func (a StringAtom) String() string {
	if a.IsLit {
		return fmt.Sprintf("%s %s %q", a.Attr, a.Op, a.Lit)
	}
	return fmt.Sprintf("%s %s %s", a.Attr, a.Op, a.OtherAttr)
}

// StrEq builds the atom attr = lit.
func StrEq(attr, lit string) StringAtom {
	return StringAtom{Attr: attr, Op: OpEq, Lit: lit, IsLit: true}
}

// StrNe builds the atom attr != lit.
func StrNe(attr, lit string) StringAtom {
	return StringAtom{Attr: attr, Op: OpNe, Lit: lit, IsLit: true}
}

// StrEqAttr builds the atom a = b over two string attributes.
func StrEqAttr(a, b string) StringAtom {
	return StringAtom{Attr: a, Op: OpEq, OtherAttr: b}
}

// Condition is a conjunction of atoms.
type Condition []Atom

func (c Condition) String() string {
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Validate checks the condition against a schema: every referenced
// attribute must exist; linear atoms must reference rational attributes;
// string atoms must reference string attributes and use =/!= only.
func (c Condition) Validate(s schema.Schema) error {
	for _, a := range c {
		switch at := a.(type) {
		case LinearAtom:
			for _, v := range at.Expr.Vars() {
				attr, ok := s.Attr(v)
				if !ok {
					return fmt.Errorf("cqa: condition references unknown attribute %q", v)
				}
				if attr.Type != schema.Rational {
					return fmt.Errorf("cqa: linear condition over non-rational attribute %q", v)
				}
			}
		case StringAtom:
			if at.Op != OpEq && at.Op != OpNe {
				return fmt.Errorf("cqa: operator %s not defined on strings", at.Op)
			}
			names := at.attrs()
			for _, v := range names {
				attr, ok := s.Attr(v)
				if !ok {
					return fmt.Errorf("cqa: condition references unknown attribute %q", v)
				}
				if attr.Type != schema.String {
					return fmt.Errorf("cqa: string condition over non-string attribute %q", v)
				}
			}
		default:
			return fmt.Errorf("cqa: unknown atom type %T", a)
		}
	}
	return nil
}

// evalAtom applies one atom to a tuple, returning the surviving tuple
// variants (empty = rejected; two variants for != over constraint
// attributes, which splits the region into the < and > half-spaces).
// Satisfiability decisions are recorded on rec (nil-safe); ec supplies
// the plan mode that gates the vector fast path in keepIfSat.
func evalAtom(a Atom, s schema.Schema, t relation.Tuple, ec *exec.Context, rec *exec.OpRecorder) ([]relation.Tuple, error) {
	switch at := a.(type) {
	case StringAtom:
		lv, bound := t.RVal(at.Attr)
		if !bound {
			return nil, nil // narrow semantics: NULL matches nothing
		}
		var rv relation.Value
		if at.IsLit {
			rv = relation.Str(at.Lit)
		} else {
			other, ok := t.RVal(at.OtherAttr)
			if !ok {
				return nil, nil
			}
			rv = other
		}
		eq := lv.Equal(rv)
		if (at.Op == OpEq && eq) || (at.Op == OpNe && !eq) {
			return []relation.Tuple{t}, nil
		}
		return nil, nil

	case LinearAtom:
		// Substitute relational rational attributes with their values.
		e := at.Expr
		for _, v := range at.Expr.Vars() {
			attr, _ := s.Attr(v)
			if attr.Kind != schema.Relational {
				continue
			}
			val, bound := t.RVal(v)
			if !bound {
				return nil, nil // narrow semantics
			}
			r, _ := val.AsRat()
			e = e.Substitute(v, constraint.Const(r))
		}
		// Remaining variables are constraint attributes: conjoin.
		switch at.Op {
		case OpEq, OpLe, OpLt:
			nc := constraint.Constraint{Expr: e, Op: map[CompOp]constraint.Op{
				OpEq: constraint.Eq, OpLe: constraint.Le, OpLt: constraint.Lt}[at.Op]}
			return keepIfSat(t, []constraint.Constraint{nc}, ec, rec), nil
		case OpGe:
			return keepIfSat(t, []constraint.Constraint{{Expr: e.Neg(), Op: constraint.Le}}, ec, rec), nil
		case OpGt:
			return keepIfSat(t, []constraint.Constraint{{Expr: e.Neg(), Op: constraint.Lt}}, ec, rec), nil
		case OpNe:
			// e != 0 splits into e < 0 and e > 0.
			var out []relation.Tuple
			out = append(out, keepIfSat(t, []constraint.Constraint{{Expr: e, Op: constraint.Lt}}, ec, rec)...)
			out = append(out, keepIfSat(t, []constraint.Constraint{{Expr: e.Neg(), Op: constraint.Lt}}, ec, rec)...)
			return out, nil
		}
	}
	return nil, fmt.Errorf("cqa: unknown atom type %T", a)
}

// keepIfSat conjoins the added atoms onto t, canonicalises, and keeps the
// result if satisfiable. Under PlanAuto and PlanVector the decision runs
// through the vector fast path when t's constraint part has a cached
// polygon form: the added atoms clip the polygon (vector.SatExtras)
// instead of rebuilding the conjunction for the eliminator. The emitted
// tuple is constructed identically on every path, so the output bytes
// never depend on which oracle decided; forcing dense/sweep/index keeps
// the decisions purely on FM for baseline comparisons.
func keepIfSat(t relation.Tuple, added []constraint.Constraint, ec *exec.Context, rec *exec.OpRecorder) []relation.Tuple {
	if mode := ec.Plan(); mode == exec.PlanAuto || mode == exec.PlanVector {
		if form := vector.FormOf(t.Constraint()); form != nil {
			if sat, ok := vector.SatExtras(form, added); ok {
				rec.VectorHit(sat, false)
				if !sat {
					// Rejected without ever building the conjoined
					// conjunction — rejected variants emit nothing, so
					// skipping their Canon cannot change the output.
					return nil
				}
				return []relation.Tuple{t.AndConstraints(added...).Canon()}
			}
			rec.VectorFallback()
		}
	}
	ct := t.AndConstraints(added...).Canon()
	if rec.Satisfiable(ct.Constraint()) {
		return []relation.Tuple{ct}
	}
	return nil
}
