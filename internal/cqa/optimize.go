package cqa

import "cdb/internal/schema"

// Optimize rewrites a CQA plan into an equivalent, usually cheaper one.
// This is the operator-reordering role the paper assigns to the algebra as
// the "middle layer" of a constraint database system (§1.1, Figure 1).
//
// Rules applied to fixpoint:
//
//  1. merge adjacent selections:            ς_a(ς_b(R)) → ς_{a∧b}(R)
//  2. push selections below joins:          ς_a(R ⋈ S)  → ς_a(R) ⋈ S
//     when every attribute of a is in α(R) (symmetrically for S);
//  3. push selections below unions:         ς_a(R ∪ S)  → ς_a(R) ∪ ς_a(S)
//  4. push selections below difference:     ς_a(R − S)  → ς_a(R) − S
//     (sound because difference filters by the left side's points);
//  5. collapse nested projections:          π_X(π_Y(R)) → π_X(R), X ⊆ Y
//  6. drop identity projections:            π_{α(R)}(R) → R (same order)
//  7. push projections below joins:
//     π_X(R ⋈ S) → π_X(π_{X∩α(R) ∪ J}(R) ⋈ π_{X∩α(S) ∪ J}(S)) with J the
//     shared attributes — constraint attributes are eliminated as early
//     as possible, which shrinks the Fourier-Motzkin work downstream.
//     Applied only when it actually narrows a side, to guarantee
//     termination.
//
// The environment's schemas are needed to decide rule 2; nodes whose
// schemas cannot be resolved are left untouched.
func Optimize(n Node, env SchemaEnv) Node {
	for {
		rewritten, changed := rewrite(n, env)
		n = rewritten
		if !changed {
			return n
		}
	}
}

func rewrite(n Node, env SchemaEnv) (Node, bool) {
	switch node := n.(type) {
	case *ScanNode:
		return node, false

	case *SelectNode:
		in, changed := rewrite(node.Input, env)
		node = NewSelect(in, node.Cond)
		switch child := in.(type) {
		case *SelectNode: // rule 1
			merged := append(append(Condition{}, child.Cond...), node.Cond...)
			return NewSelect(child.Input, merged), true
		case *JoinNode: // rule 2
			ls, lerr := child.Left.OutSchema(env)
			rs, rerr := child.Right.OutSchema(env)
			if lerr == nil && rerr == nil {
				var toLeft, toRight, stay Condition
				for _, a := range node.Cond {
					switch {
					case attrsWithin(a, ls):
						toLeft = append(toLeft, a)
					case attrsWithin(a, rs):
						toRight = append(toRight, a)
					default:
						stay = append(stay, a)
					}
				}
				if len(toLeft) > 0 || len(toRight) > 0 {
					l, r := child.Left, child.Right
					if len(toLeft) > 0 {
						l = NewSelect(l, toLeft)
					}
					if len(toRight) > 0 {
						r = NewSelect(r, toRight)
					}
					var out Node = NewJoin(l, r)
					if len(stay) > 0 {
						out = NewSelect(out, stay)
					}
					return out, true
				}
			}
		case *UnionNode: // rule 3
			return NewUnion(NewSelect(child.Left, node.Cond), NewSelect(child.Right, node.Cond)), true
		case *DiffNode: // rule 4
			return NewDiff(NewSelect(child.Left, node.Cond), child.Right), true
		}
		return node, changed

	case *ProjectNode:
		in, changed := rewrite(node.Input, env)
		node = NewProject(in, node.Cols...)
		if child, ok := in.(*ProjectNode); ok { // rule 5
			return NewProject(child.Input, node.Cols...), true
		}
		if s, err := in.OutSchema(env); err == nil { // rule 6
			names := s.Names()
			if len(names) == len(node.Cols) {
				same := true
				for i := range names {
					if names[i] != node.Cols[i] {
						same = false
						break
					}
				}
				if same {
					return in, true
				}
			}
		}
		if child, ok := in.(*JoinNode); ok { // rule 7
			if out, ok := pushProjectThroughJoin(node, child, env); ok {
				return out, true
			}
		}
		return node, changed

	case *JoinNode:
		l, lc := rewrite(node.Left, env)
		r, rc := rewrite(node.Right, env)
		return NewJoin(l, r), lc || rc

	case *UnionNode:
		l, lc := rewrite(node.Left, env)
		r, rc := rewrite(node.Right, env)
		return NewUnion(l, r), lc || rc

	case *DiffNode:
		l, lc := rewrite(node.Left, env)
		r, rc := rewrite(node.Right, env)
		return NewDiff(l, r), lc || rc

	case *RenameNode:
		in, c := rewrite(node.Input, env)
		return NewRename(in, node.Old, node.New), c

	default:
		return n, false
	}
}

// pushProjectThroughJoin applies rule 7. It keeps, on each side, the
// projected columns present on that side plus all shared (join)
// attributes, preserving each side's attribute order. The rewrite fires
// only when at least one side actually loses a column (otherwise it could
// loop) and when no projected column disappears (every projected column
// is on some side).
func pushProjectThroughJoin(p *ProjectNode, j *JoinNode, env SchemaEnv) (Node, bool) {
	ls, lerr := j.Left.OutSchema(env)
	rs, rerr := j.Right.OutSchema(env)
	if lerr != nil || rerr != nil {
		return nil, false
	}
	want := map[string]bool{}
	for _, c := range p.Cols {
		if !ls.Has(c) && !rs.Has(c) {
			return nil, false // ill-typed; leave for evaluation to report
		}
		want[c] = true
	}
	shared := map[string]bool{}
	for _, n := range ls.Names() {
		if rs.Has(n) {
			shared[n] = true
		}
	}
	side := func(s schema.Schema) ([]string, bool) {
		var cols []string
		narrowed := false
		for _, n := range s.Names() {
			if want[n] || shared[n] {
				cols = append(cols, n)
			} else {
				narrowed = true
			}
		}
		return cols, narrowed
	}
	lCols, lNarrow := side(ls)
	rCols, rNarrow := side(rs)
	if !lNarrow && !rNarrow {
		return nil, false
	}
	if len(lCols) == 0 || len(rCols) == 0 {
		// A side would project to nothing (no shared attrs and no wanted
		// columns there); zero-arity relations are not representable, so
		// leave the plan alone.
		return nil, false
	}
	l, r := j.Left, j.Right
	if lNarrow {
		l = NewProject(l, lCols...)
	}
	if rNarrow {
		r = NewProject(r, rCols...)
	}
	return NewProject(NewJoin(l, r), p.Cols...), true
}

func attrsWithin(a Atom, s schema.Schema) bool {
	for _, name := range a.attrs() {
		if !s.Has(name) {
			return false
		}
	}
	return true
}
