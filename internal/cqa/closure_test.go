package cqa

// Semantic-closure differential test (§2.5): "one proves correctness by
// showing that this operator would have the desired semantics, i.e. that
// the results are the same as they would be for equivalent relational
// algebra expressions over the corresponding (infinite) sets of points."
//
// We cannot enumerate infinite point sets, but we can probe them: for
// random heterogeneous relations and every operator, sample a dense grid
// of points and check that membership in the operator's output equals the
// point-wise definition computed from the inputs:
//
//	p ∈ ς_ξ(R)      ⇔  p ∈ R and ξ(p)
//	p ∈ π_X(R)      ⇔  ∃ extension of p in R        (∃ checked on the grid*)
//	p ∈ R ⋈ S       ⇔  p[α(R)] ∈ R and p[α(S)] ∈ S
//	p ∈ R ∪ S       ⇔  p ∈ R or p ∈ S
//	p ∈ R − S       ⇔  p ∈ R and p ∉ S
//
// (*) For projection only the sound direction is grid-checkable (a grid
// witness implies membership); the complete direction is covered exactly
// by the Fourier-Motzkin tests in internal/constraint. All relations here
// are built from grid-aligned constraints so grid witnesses exist.

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

const closureGrid = 6 // grid points per axis: 0..5

func gridRat(i int) rational.Rat { return rational.FromInt(int64(i)) }

// randClosureRelation builds a relation over [id rel-string; x,y con]
// whose constraints are grid-aligned boxes plus an occasional diagonal
// half-plane with integer intercept.
func randClosureRelation(rng *rand.Rand, s schema.Schema) *relation.Relation {
	r := relation.New(s)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		rv := map[string]relation.Value{}
		if rng.Intn(3) > 0 {
			rv["id"] = relation.Str(string(rune('A' + rng.Intn(2))))
		}
		x0 := rng.Intn(closureGrid)
		x1 := x0 + rng.Intn(closureGrid-x0)
		y0 := rng.Intn(closureGrid)
		y1 := y0 + rng.Intn(closureGrid-y0)
		cs := []constraint.Constraint{
			constraint.GeConst("x", gridRat(x0)), constraint.LeConst("x", gridRat(x1)),
			constraint.GeConst("y", gridRat(y0)), constraint.LeConst("y", gridRat(y1)),
		}
		if rng.Intn(3) == 0 {
			cs = append(cs, constraint.MustNew(
				constraint.Var("x").Add(constraint.Var("y")), "<=",
				constraint.ConstInt(int64(rng.Intn(2*closureGrid)))))
		}
		r.MustAdd(relation.NewTuple(rv, constraint.And(cs...)))
	}
	return r
}

// idValues are the probe values for the relational string attribute,
// NULL included (it is part of the relational point space).
func idValues() []relation.Value {
	return []relation.Value{relation.Str("A"), relation.Str("B"), relation.Null()}
}

func mustContains(t *testing.T, r *relation.Relation, p relation.Point) bool {
	t.Helper()
	ok, err := r.Contains(p)
	if err != nil {
		t.Fatalf("Contains(%v): %v", p, err)
	}
	return ok
}

func TestQuickClosureSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	for iter := 0; iter < 60; iter++ {
		r := randClosureRelation(rng, s)
		cond := Condition{AttrCmpConst("x", []CompOp{OpLe, OpLt, OpGe, OpEq, OpNe}[rng.Intn(5)],
			gridRat(rng.Intn(closureGrid)))}
		if rng.Intn(2) == 0 {
			cond = append(cond, StrEq("id", "A"))
		}
		out, err := Select(r, cond)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range idValues() {
			for x := 0; x < closureGrid; x++ {
				for y := 0; y < closureGrid; y++ {
					p := relation.Point{"id": id, "x": relation.Rat(gridRat(x)), "y": relation.Rat(gridRat(y))}
					inR := mustContains(t, r, p)
					condHolds := pointSatisfies(t, cond, s, p)
					want := inR && condHolds
					if got := mustContains(t, out, p); got != want {
						t.Fatalf("iter %d: select closure broken at %v: got %v, want %v\nR=%s\ncond=%s\nout=%s",
							iter, p, got, want, r, cond, out)
					}
				}
			}
		}
	}
}

// pointSatisfies evaluates a condition directly at a point (the
// semantic-side ξ(p), independent of the operator implementation).
func pointSatisfies(t *testing.T, cond Condition, s schema.Schema, p relation.Point) bool {
	t.Helper()
	for _, a := range cond {
		switch at := a.(type) {
		case StringAtom:
			lv := p[at.Attr]
			if lv.IsNull() {
				return false
			}
			var rv relation.Value
			if at.IsLit {
				rv = relation.Str(at.Lit)
			} else {
				rv = p[at.OtherAttr]
				if rv.IsNull() {
					return false
				}
			}
			eq := lv.Equal(rv)
			if (at.Op == OpEq) != eq {
				return false
			}
		case LinearAtom:
			assign := map[string]rational.Rat{}
			for _, v := range at.Expr.Vars() {
				pv := p[v]
				if pv.IsNull() {
					return false
				}
				rv, _ := pv.AsRat()
				assign[v] = rv
			}
			val, err := at.Expr.Eval(assign)
			if err != nil {
				t.Fatal(err)
			}
			ok := false
			switch at.Op {
			case OpEq:
				ok = val.IsZero()
			case OpNe:
				ok = !val.IsZero()
			case OpLt:
				ok = val.Sign() < 0
			case OpLe:
				ok = val.Sign() <= 0
			case OpGt:
				ok = val.Sign() > 0
			case OpGe:
				ok = val.Sign() >= 0
			}
			if !ok {
				return false
			}
		}
	}
	return true
}

func TestQuickClosureUnionDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	for iter := 0; iter < 60; iter++ {
		r1 := randClosureRelation(rng, s)
		r2 := randClosureRelation(rng, s)
		u, err := Union(r1, r2)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Difference(r1, r2)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range idValues() {
			for x := 0; x < closureGrid; x++ {
				for y := 0; y < closureGrid; y++ {
					p := relation.Point{"id": id, "x": relation.Rat(gridRat(x)), "y": relation.Rat(gridRat(y))}
					in1 := mustContains(t, r1, p)
					in2 := mustContains(t, r2, p)
					if got := mustContains(t, u, p); got != (in1 || in2) {
						t.Fatalf("iter %d: union closure broken at %v: %v vs %v", iter, p, got, in1 || in2)
					}
					if got := mustContains(t, d, p); got != (in1 && !in2) {
						t.Fatalf("iter %d: difference closure broken at %v: got %v want %v\nR1=%s\nR2=%s\nD=%s",
							iter, p, got, in1 && !in2, r1, r2, d)
					}
				}
			}
		}
	}
}

func TestQuickClosureJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	// R over [id; x], S over [id; y]: the join semantics p ∈ R⋈S iff the
	// restrictions to each schema are in the respective inputs.
	sR := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"))
	sS := schema.MustNew(schema.Rel("id", schema.String), schema.Con("y"))
	mk := func(s schema.Schema, v string) *relation.Relation {
		r := relation.New(s)
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			rv := map[string]relation.Value{}
			if rng.Intn(3) > 0 {
				rv["id"] = relation.Str(string(rune('A' + rng.Intn(2))))
			}
			lo := rng.Intn(closureGrid)
			hi := lo + rng.Intn(closureGrid-lo)
			r.MustAdd(relation.NewTuple(rv, constraint.And(
				constraint.GeConst(v, gridRat(lo)), constraint.LeConst(v, gridRat(hi)))))
		}
		return r
	}
	for iter := 0; iter < 80; iter++ {
		r := mk(sR, "x")
		sRel := mk(sS, "y")
		j, err := Join(r, sRel)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range idValues() {
			for x := 0; x < closureGrid; x++ {
				for y := 0; y < closureGrid; y++ {
					p := relation.Point{"id": id, "x": relation.Rat(gridRat(x)), "y": relation.Rat(gridRat(y))}
					pR := relation.Point{"id": id, "x": relation.Rat(gridRat(x))}
					pS := relation.Point{"id": id, "y": relation.Rat(gridRat(y))}
					want := mustContains(t, r, pR) && mustContains(t, sRel, pS)
					if got := mustContains(t, j, p); got != want {
						t.Fatalf("iter %d: join closure broken at %v: got %v want %v\nR=%s\nS=%s\nJ=%s",
							iter, p, got, want, r, sRel, j)
					}
				}
			}
		}
	}
}

func TestQuickClosureProjectSound(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	for iter := 0; iter < 60; iter++ {
		r := randClosureRelation(rng, s)
		pr, err := Project(r, "id", "x")
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range idValues() {
			for x := 0; x < closureGrid; x++ {
				// Grid-side existential: is there a y with (id,x,y) ∈ R?
				exists := false
				for y := 0; y < closureGrid; y++ {
					p := relation.Point{"id": id, "x": relation.Rat(gridRat(x)), "y": relation.Rat(gridRat(y))}
					if mustContains(t, r, p) {
						exists = true
						break
					}
				}
				pp := relation.Point{"id": id, "x": relation.Rat(gridRat(x))}
				got := mustContains(t, pr, pp)
				// Sound direction: a grid witness implies projection
				// membership. (The converse needs non-grid witnesses in
				// general; completeness of elimination is tested exactly in
				// internal/constraint.)
				if exists && !got {
					t.Fatalf("iter %d: projection lost point %v\nR=%s\nπ=%s", iter, pp, r, pr)
				}
			}
		}
	}
}
