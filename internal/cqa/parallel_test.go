package cqa

import (
	"runtime"
	"strings"
	"testing"

	"cdb/internal/datagen"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
)

// dump renders a relation's tuples in storage order (not sorted), so two
// equal dumps mean byte-identical output including tuple order — the
// determinism guarantee of the parallel execution layer.
func dump(r *relation.Relation) string {
	var b strings.Builder
	b.WriteString(r.Schema().String())
	for _, t := range r.Tuples() {
		b.WriteString("\n")
		b.WriteString(t.String())
	}
	return b.String()
}

// parContexts returns the execution contexts the equivalence tests
// exercise: parallelism 1, 4 and GOMAXPROCS, each with SeqThreshold 1 so
// even small inputs actually reach the worker pool.
func parContexts() map[string]*exec.Context {
	return map[string]*exec.Context{
		"par1":       {Parallelism: 1, SeqThreshold: 1},
		"par4":       {Parallelism: 4, SeqThreshold: 1},
		"gomaxprocs": {Parallelism: runtime.GOMAXPROCS(0), SeqThreshold: 1},
	}
}

func parInputs(t *testing.T, seed int64, n1, n2, idMod int) (*relation.Relation, *relation.Relation) {
	t.Helper()
	p := datagen.Scaled(10)
	p.Seed = seed
	r1 := datagen.BoxRelation(p, n1, idMod)
	p.Seed = seed + 1000
	r2 := datagen.BoxRelation(p, n2, idMod)
	if r1.Len() != n1 || r2.Len() != n2 {
		t.Fatalf("bad fixture sizes: %d, %d", r1.Len(), r2.Len())
	}
	return r1, r2
}

// TestParallelEquivalence asserts that every parallelised operator
// produces byte-identical output (same tuples, same order) at parallelism
// 1, 4 and GOMAXPROCS as the sequential path, on randomized workload
// relations.
func TestParallelEquivalence(t *testing.T) {
	cond := Condition{
		AttrCmpConst("x", OpLe, rational.FromInt(1500)),
		AttrCmpConst("y", OpNe, rational.FromInt(700)), // != splits tuples
		StrNe("id", "b3"),
	}
	for _, seed := range []int64{1, 42, 2003} {
		r1, r2 := parInputs(t, seed, 48, 40, 5)
		ops := map[string]func(*exec.Context) (*relation.Relation, error){
			"select":     func(ec *exec.Context) (*relation.Relation, error) { return SelectCtx(ec, r1, cond) },
			"project":    func(ec *exec.Context) (*relation.Relation, error) { return ProjectCtx(ec, r1, "id", "x") },
			"join":       func(ec *exec.Context) (*relation.Relation, error) { return JoinCtx(ec, r1, r2) },
			"intersect":  func(ec *exec.Context) (*relation.Relation, error) { return IntersectCtx(ec, r1, r2) },
			"difference": func(ec *exec.Context) (*relation.Relation, error) { return DifferenceCtx(ec, r1, r2) },
		}
		for name, op := range ops {
			want, err := op(nil) // sequential baseline
			if err != nil {
				t.Fatalf("seed %d %s sequential: %v", seed, name, err)
			}
			wantDump := dump(want)
			for ctxName, ec := range parContexts() {
				got, err := op(ec)
				if err != nil {
					t.Fatalf("seed %d %s %s: %v", seed, name, ctxName, err)
				}
				if d := dump(got); d != wantDump {
					t.Errorf("seed %d: %s at %s diverges from sequential output\nsequential:\n%s\nparallel:\n%s",
						seed, name, ctxName, wantDump, d)
				}
			}
		}
	}
}

// TestParallelEquivalenceCrossProduct exercises the join path with no
// shared relational attributes (every tuple pair reaches the
// satisfiability check).
func TestParallelEquivalenceCrossProduct(t *testing.T) {
	r1, r2 := parInputs(t, 7, 30, 30, 0)
	r2b, err := Rename(r2, "id", "id2")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Join(r1, r2b)
	if err != nil {
		t.Fatal(err)
	}
	for ctxName, ec := range parContexts() {
		got, err := JoinCtx(ec, r1, r2b)
		if err != nil {
			t.Fatalf("%s: %v", ctxName, err)
		}
		if dump(got) != dump(want) {
			t.Errorf("cross-product join at %s diverges from sequential output", ctxName)
		}
	}
}

// TestParallelEquivalenceEmpty checks the empty-input edge cases.
func TestParallelEquivalenceEmpty(t *testing.T) {
	r1, _ := parInputs(t, 5, 20, 1, 0)
	empty := relation.New(r1.Schema())
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	for name, pair := range map[string][2]*relation.Relation{
		"left-empty":  {empty, r1},
		"right-empty": {r1, empty},
		"both-empty":  {empty, empty},
	} {
		want, err := Join(pair[0], pair[1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := JoinCtx(ec, pair[0], pair[1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dump(got) != dump(want) {
			t.Errorf("%s: parallel join diverges", name)
		}
		wantD, err := Difference(pair[0], pair[1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gotD, err := DifferenceCtx(ec, pair[0], pair[1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if dump(gotD) != dump(wantD) {
			t.Errorf("%s: parallel difference diverges", name)
		}
	}
}

// TestOperatorStats checks the per-operator statistics recorded on the
// execution context.
func TestOperatorStats(t *testing.T) {
	r1, r2 := parInputs(t, 11, 30, 30, 0)
	r2b, err := Rename(r2, "id", "id2")
	if err != nil {
		t.Fatal(err)
	}
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	out, err := JoinCtx(ec, r1, r2b)
	if err != nil {
		t.Fatal(err)
	}
	stats := ec.Stats()
	// Rename (from the fixture) is not on ec; only the join records.
	if len(stats) != 1 {
		t.Fatalf("got %d stat records, want 1: %+v", len(stats), stats)
	}
	s := stats[0]
	if s.Op != "join" {
		t.Fatalf("op = %q, want join", s.Op)
	}
	if s.TuplesIn != int64(r1.Len()+r2b.Len()) {
		t.Errorf("TuplesIn = %d, want %d", s.TuplesIn, r1.Len()+r2b.Len())
	}
	if s.TuplesOut != int64(out.Len()) {
		t.Errorf("TuplesOut = %d, want %d", s.TuplesOut, out.Len())
	}
	// No shared relational attributes: the filter considers every pair,
	// and each pair is either envelope-pruned or decided — through the sat
	// oracle or the vector fast path.
	if want := int64(r1.Len() * r2b.Len()); s.PairsTotal != want {
		t.Errorf("PairsTotal = %d, want %d", s.PairsTotal, want)
	}
	if want := s.PairsTotal - s.PairsPruned; s.SatChecks+s.VectorHits != want {
		t.Errorf("SatChecks+VectorHits = %d+%d, want PairsTotal-PairsPruned = %d",
			s.SatChecks, s.VectorHits, want)
	}
	// pruned = filter rejects + unsatisfiable sat decisions, so every
	// candidate not in the output is accounted for exactly once.
	if s.PrunedUnsat != s.PairsTotal-s.TuplesOut {
		t.Errorf("PrunedUnsat = %d, want PairsTotal-TuplesOut = %d",
			s.PrunedUnsat, s.PairsTotal-s.TuplesOut)
	}
	if !s.Parallel {
		t.Error("join over 900 pairs at threshold 1 should report Parallel")
	}

	// With the filter off, the dense loop checks every pair.
	ecDense := &exec.Context{Parallelism: 4, SeqThreshold: 1, NoPrune: true}
	if _, err := JoinCtx(ecDense, r1, r2b); err != nil {
		t.Fatal(err)
	}
	d := ecDense.Stats()[0]
	if want := int64(r1.Len() * r2b.Len()); d.SatChecks != want {
		t.Errorf("dense SatChecks = %d, want %d", d.SatChecks, want)
	}
	if d.PairsTotal != d.SatChecks || d.PairsPruned != 0 {
		t.Errorf("dense PairsTotal/PairsPruned = %d/%d, want %d/0",
			d.PairsTotal, d.PairsPruned, d.SatChecks)
	}
	if d.PrunedUnsat != d.SatChecks-d.TuplesOut {
		t.Errorf("dense PrunedUnsat = %d, want SatChecks-TuplesOut = %d",
			d.PrunedUnsat, d.SatChecks-d.TuplesOut)
	}

	// Threshold fallback: same join with a huge threshold stays sequential.
	ec2 := &exec.Context{Parallelism: 4, SeqThreshold: 1 << 20}
	if _, err := JoinCtx(ec2, r1, r2b); err != nil {
		t.Fatal(err)
	}
	if ec2.Stats()[0].Parallel {
		t.Error("join below SeqThreshold must not report Parallel")
	}
}

// TestEvalCtxThreadsContext checks that plan evaluation hands the context
// down to every operator in the tree.
func TestEvalCtxThreadsContext(t *testing.T) {
	r1, r2 := parInputs(t, 13, 20, 20, 5)
	env := Env{"R1": r1, "R2": r2}
	plan := NewProject(NewSelect(NewJoin(Scan("R1"), Scan("R2")),
		Condition{AttrCmpConst("x", OpLe, rational.FromInt(2000))}), "id", "x")
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	got, err := plan.EvalCtx(env, ec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if dump(got) != dump(want) {
		t.Error("EvalCtx output diverges from Eval")
	}
	var ops []string
	for _, s := range ec.Stats() {
		ops = append(ops, s.Op)
	}
	if strings.Join(ops, ",") != "join,select,project" {
		t.Errorf("recorded ops = %v, want [join select project]", ops)
	}
}
