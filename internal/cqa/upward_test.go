package cqa

// Upward-compatibility cross-check (§3.2 Claim: "the heterogeneous data
// model is completely upwardly compatible with the relational data
// model"): on schemas whose attributes are all Relational, every CQA
// operator must behave exactly like classical relational algebra. This
// file implements a tiny independent reference engine over finite rows
// and property-tests random plans against it.

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// refRow is a finite row: attribute -> value (absent = NULL).
type refRow map[string]relation.Value

func (r refRow) key() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(r[k].Key())
		b.WriteByte(';')
	}
	return b.String()
}

// refRel is a set of rows (keyed canonically).
type refRel struct {
	attrs []string
	rows  map[string]refRow
}

func newRefRel(attrs ...string) *refRel {
	return &refRel{attrs: attrs, rows: map[string]refRow{}}
}

func (r *refRel) add(row refRow) {
	clean := refRow{}
	for k, v := range row {
		if !v.IsNull() {
			clean[k] = v
		}
	}
	r.rows[clean.key()] = clean
}

func refSelect(r *refRel, cond Condition) *refRel {
	out := newRefRel(r.attrs...)
	for _, row := range r.rows {
		keep := true
		for _, a := range cond {
			if !refAtomHolds(a, row) {
				keep = false
				break
			}
		}
		if keep {
			out.add(row)
		}
	}
	return out
}

func refAtomHolds(a Atom, row refRow) bool {
	switch at := a.(type) {
	case StringAtom:
		lv, ok := row[at.Attr]
		if !ok {
			return false
		}
		var rv relation.Value
		if at.IsLit {
			rv = relation.Str(at.Lit)
		} else {
			o, ok := row[at.OtherAttr]
			if !ok {
				return false
			}
			rv = o
		}
		eq := lv.Equal(rv)
		return (at.Op == OpEq && eq) || (at.Op == OpNe && !eq)
	case LinearAtom:
		assign := map[string]rational.Rat{}
		for _, v := range at.Expr.Vars() {
			val, ok := row[v]
			if !ok {
				return false // NULL: narrow semantics
			}
			rv, _ := val.AsRat()
			assign[v] = rv
		}
		got, err := at.Expr.Eval(assign)
		if err != nil {
			return false
		}
		switch at.Op {
		case OpEq:
			return got.IsZero()
		case OpNe:
			return !got.IsZero()
		case OpLt:
			return got.Sign() < 0
		case OpLe:
			return got.Sign() <= 0
		case OpGt:
			return got.Sign() > 0
		default:
			return got.Sign() >= 0
		}
	}
	return false
}

func refProject(r *refRel, cols ...string) *refRel {
	out := newRefRel(cols...)
	keep := map[string]bool{}
	for _, c := range cols {
		keep[c] = true
	}
	for _, row := range r.rows {
		nr := refRow{}
		for k, v := range row {
			if keep[k] {
				nr[k] = v
			}
		}
		out.add(nr)
	}
	return out
}

func refJoin(a, b *refRel) *refRel {
	shared := map[string]bool{}
	bAttrs := map[string]bool{}
	for _, x := range b.attrs {
		bAttrs[x] = true
	}
	var outAttrs []string
	outAttrs = append(outAttrs, a.attrs...)
	for _, x := range a.attrs {
		if bAttrs[x] {
			shared[x] = true
		}
	}
	for _, x := range b.attrs {
		if !shared[x] {
			outAttrs = append(outAttrs, x)
		}
	}
	out := newRefRel(outAttrs...)
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			ok := true
			for s := range shared {
				// NULL-safe identity matching: a missing attribute is the
				// distinguished NULL quasi-value, identical to itself (the
				// point semantics; coincides with classical natural join on
				// NULL-free data).
				va := ra[s] // zero Value = NULL
				vb := rb[s]
				if !va.Identical(vb) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nr := refRow{}
			for k, v := range ra {
				nr[k] = v
			}
			for k, v := range rb {
				nr[k] = v
			}
			out.add(nr)
		}
	}
	return out
}

func refUnion(a, b *refRel) *refRel {
	out := newRefRel(a.attrs...)
	for _, r := range a.rows {
		out.add(r)
	}
	for _, r := range b.rows {
		out.add(r)
	}
	return out
}

func refDiff(a, b *refRel) *refRel {
	out := newRefRel(a.attrs...)
	for k, r := range a.rows {
		if _, hit := b.rows[k]; !hit {
			out.add(r)
		}
	}
	return out
}

func refRename(a *refRel, old, new string) *refRel {
	attrs := append([]string{}, a.attrs...)
	for i := range attrs {
		if attrs[i] == old {
			attrs[i] = new
		}
	}
	out := newRefRel(attrs...)
	for _, r := range a.rows {
		nr := refRow{}
		for k, v := range r {
			if k == old {
				nr[new] = v
			} else {
				nr[k] = v
			}
		}
		out.add(nr)
	}
	return out
}

// toRef converts a pure-relational CQA relation to the reference form.
func toRef(t *testing.T, r *relation.Relation) *refRel {
	t.Helper()
	out := newRefRel(r.Schema().Names()...)
	for _, tp := range r.Tuples() {
		if !tp.Constraint().IsTrue() {
			t.Fatalf("non-empty constraint part on pure-relational tuple: %s", tp)
		}
		out.add(tp.RVals())
	}
	return out
}

func sameRows(a, b *refRel) bool {
	if len(a.rows) != len(b.rows) {
		return false
	}
	for k := range a.rows {
		if _, ok := b.rows[k]; !ok {
			return false
		}
	}
	return true
}

// randomPureRelation builds a pure-relational CQA relation and its
// reference twin.
func randomPureRelation(t *testing.T, rng *rand.Rand, s schema.Schema) (*relation.Relation, *refRel) {
	t.Helper()
	r := relation.New(s)
	ref := newRefRel(s.Names()...)
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		row := map[string]relation.Value{}
		for _, a := range s.Attrs() {
			if rng.Intn(4) == 0 {
				continue // NULL
			}
			if a.Type == schema.String {
				row[a.Name] = relation.Str(string(rune('A' + rng.Intn(3))))
			} else {
				row[a.Name] = relation.Rat(rational.FromInt(int64(rng.Intn(5))))
			}
		}
		r.MustAdd(relation.NewTuple(row, constraint.True()))
		ref.add(row)
	}
	return r, ref
}

// TestQuickUpwardCompatibility: random plans over random pure-relational
// data must agree with the reference relational engine, row for row.
func TestQuickUpwardCompatibility(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	s := schema.MustNew(
		schema.Rel("id", schema.String),
		schema.Rel("v", schema.Rational),
		schema.Rel("w", schema.Rational))
	sSub := schema.MustNew(
		schema.Rel("id", schema.String),
		schema.Rel("v", schema.Rational))

	randAtom := func() Atom {
		switch rng.Intn(4) {
		case 0:
			return StrEq("id", string(rune('A'+rng.Intn(3))))
		case 1:
			return StrNe("id", string(rune('A'+rng.Intn(3))))
		case 2:
			return AttrCmpConst("v", []CompOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)],
				rational.FromInt(int64(rng.Intn(5))))
		default:
			return AttrCmpAttr("v", []CompOp{OpEq, OpLe, OpNe}[rng.Intn(3)], "w")
		}
	}

	for iter := 0; iter < 200; iter++ {
		r1, ref1 := randomPureRelation(t, rng, s)
		r2, ref2 := randomPureRelation(t, rng, s)
		rj, refj := randomPureRelation(t, rng, sSub)

		// select
		cond := Condition{randAtom()}
		if rng.Intn(2) == 0 {
			cond = append(cond, randAtom())
		}
		gotS, err := Select(r1, cond)
		if err != nil {
			t.Fatalf("iter %d select: %v", iter, err)
		}
		if !sameRows(toRef(t, gotS), refSelect(ref1, cond)) {
			t.Fatalf("iter %d: select diverges for %s on\n%s", iter, cond, r1)
		}

		// project
		cols := [][]string{{"id"}, {"id", "v"}, {"v", "w"}}[rng.Intn(3)]
		gotP, err := Project(r1, cols...)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(toRef(t, gotP), refProject(ref1, cols...)) {
			t.Fatalf("iter %d: project %v diverges on\n%s", iter, cols, r1)
		}

		// join (shared attrs id, v)
		gotJ, err := Join(r1, rj)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(toRef(t, gotJ), refJoin(ref1, refj)) {
			t.Fatalf("iter %d: join diverges:\n%s\n⋈\n%s\ngot %s", iter, r1, rj, gotJ)
		}

		// union / difference
		gotU, err := Union(r1, r2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(toRef(t, gotU), refUnion(ref1, ref2)) {
			t.Fatalf("iter %d: union diverges", iter)
		}
		gotD, err := Difference(r1, r2)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(toRef(t, gotD), refDiff(ref1, ref2)) {
			t.Fatalf("iter %d: difference diverges:\n%s\n-\n%s\ngot %s", iter, r1, r2, gotD)
		}

		// rename
		gotR, err := Rename(r1, "v", "v2")
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(toRef(t, gotR), refRename(ref1, "v", "v2")) {
			t.Fatalf("iter %d: rename diverges", iter)
		}
	}
}
