package cqa

import (
	"math"
	"sort"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/rstar"
	"cdb/internal/storage"
)

// This file is the third candidate-enumeration strategy of the filter
// stage: bulk-load an R*-tree over one side's envelope boxes and
// index-nested-loop probe it with the other side's boxes — the paper's
// §5 index machinery (internal/rstar) finally wired into the CQA
// evaluator. The tree works in float64 while the envelopes are exact
// rationals, so every conversion is *outward* rounding: a rect always
// contains the rational box it stands for, which makes the probe a
// conservative superset pass exactly like the interval sweep — every
// emitted pair still passes the exact Envelope.Disjoint check, so the
// surviving candidate set (and with it the output bytes) is identical to
// the dense loop's.
//
// Unbounded interval sides become the global finite range of the
// attribute over both inputs: the range contains every finite endpoint
// in play, so clamping can never separate two rationally-intersecting
// intervals, and it keeps ±Inf out of the tree (STR tiling sorts by box
// centers, and an infinite coordinate would poison them).

// f64Down returns a float64 ≤ r (saturating at ±MaxFloat64).
func f64Down(r rational.Rat) float64 {
	f := r.Float64()
	if !math.IsInf(f, 0) {
		f = math.Nextafter(f, math.Inf(-1))
	}
	return clampFinite(f)
}

// f64Up returns a float64 ≥ r (saturating at ±MaxFloat64).
func f64Up(r rational.Rat) float64 {
	f := r.Float64()
	if !math.IsInf(f, 0) {
		f = math.Nextafter(f, math.Inf(1))
	}
	return clampFinite(f)
}

// clampFinite saturates infinities to the largest finite floats. The
// saturation is applied to both conversion directions, so every ≤
// relation between converted endpoints is preserved — beyond float
// range everything collapses to the same bound on both sides.
func clampFinite(f float64) float64 {
	switch {
	case math.IsInf(f, 1):
		return math.MaxFloat64
	case math.IsInf(f, -1):
		return -math.MaxFloat64
	}
	return f
}

// attrRange is one indexed attribute's global finite range over both
// sides: the substitute for unbounded interval sides.
type attrRange struct {
	lo, hi float64
	has    bool
}

// globalRanges widens every finite endpoint of attr over both sides and
// takes the min/max. Attributes with no finite endpoint anywhere get
// has=false and degenerate to the unit box (everything intersects —
// conservative, and chooseIndexAttrs never picks such an attribute).
func globalRanges(attrs []string, env1, env2 []constraint.Envelope) []attrRange {
	out := make([]attrRange, len(attrs))
	for d, a := range attrs {
		r := attrRange{lo: math.MaxFloat64, hi: -math.MaxFloat64}
		scan := func(envs []constraint.Envelope) {
			for _, e := range envs {
				iv, ok := e.Interval(a)
				if !ok || iv.IsEmpty() {
					continue
				}
				if iv.HasLower {
					r.has = true
					if f := f64Down(iv.Lower); f < r.lo {
						r.lo = f
					}
					if f := f64Up(iv.Lower); f > r.hi {
						r.hi = f
					}
				}
				if iv.HasUpper {
					r.has = true
					if f := f64Down(iv.Upper); f < r.lo {
						r.lo = f
					}
					if f := f64Up(iv.Upper); f > r.hi {
						r.hi = f
					}
				}
			}
		}
		scan(env1)
		scan(env2)
		if !r.has {
			r.lo, r.hi = 0, 1
		}
		out[d] = r
	}
	return out
}

// envRect converts one envelope's box over attrs into a query/data rect:
// bounded sides round outward, unbounded sides take the global range.
// ok is false when some attribute's interval is empty — that tuple's
// conjunction is unsatisfiable on its own, Envelope.Disjoint rejects
// every pair involving it, and it must not enter the tree at all (an
// empty rational interval has no float representation with min ≤ max).
func envRect(e constraint.Envelope, attrs []string, ranges []attrRange) (rstar.Rect, bool) {
	mins := make([]float64, len(attrs))
	maxs := make([]float64, len(attrs))
	for d, a := range attrs {
		iv, has := e.Interval(a)
		if has && iv.IsEmpty() {
			return rstar.Rect{}, false
		}
		lo, hi := ranges[d].lo, ranges[d].hi
		if has && iv.HasLower {
			lo = f64Down(iv.Lower)
		}
		if has && iv.HasUpper {
			hi = f64Up(iv.Upper)
		}
		if hi < lo { // outward rounding cannot produce this; guard anyway
			lo, hi = hi, lo
		}
		mins[d], maxs[d] = lo, hi
	}
	r, err := rstar.NewRect(mins, maxs)
	if err != nil {
		return rstar.Rect{}, false
	}
	return r, true
}

// indexDiffMatches precomputes difference's per-minuend subtrahend lists
// under the index strategy: one R*-tree is bulk-loaded over every
// subtrahend's envelope box, each minuend probes it, and the hits are
// narrowed by the exact relational-part and Disjoint checks, then sorted
// — so each list is exactly {j : SameRelationalPart ∧ ¬Disjoint} in input
// order, the same list the dense scan and the bucket lookup produce.
// Runs sequentially by design: Tree.Search is not safe under the worker
// fan-out (the pager's read path is stateful), so the tree work happens
// before exec.Map and the workers only read the finished lists. Returns
// nil if the tree could not be built or probed (caller falls back to
// dense).
func indexDiffMatches(attrs []string, t1s, t2s []relation.Tuple, env1, env2 []constraint.Envelope, conAttrs []string) [][]int {
	if len(attrs) == 0 {
		return nil
	}
	as := make([]int, len(t1s))
	for i := range as {
		as[i] = i
	}
	bs := make([]int, len(t2s))
	for j := range bs {
		bs[j] = j
	}
	out := make([][]int, len(t1s))
	cur := -1
	ok := indexPairs(attrs, as, bs, env1, env2, func(i, j int) {
		if i != cur { // probes run in minuend order; sort the finished list
			if cur >= 0 {
				sort.Ints(out[cur])
			}
			cur = i
		}
		if t1s[i].SameRelationalPart(t2s[j]) && !env1[i].Disjoint(env2[j], conAttrs) {
			out[i] = append(out[i], j)
		}
	})
	if !ok {
		return nil
	}
	if cur >= 0 {
		sort.Ints(out[cur])
	}
	return out
}

// indexPairs enumerates candidate pairs for one bucket by bulk-loading
// an R*-tree (STR packing, one in-memory pager per bucket) over the bs
// side's envelope boxes and probing it with each a ∈ as in input order.
// Every rationally-non-disjoint pair is emitted (conservative floats;
// see the file comment); emit applies the exact check. Pairs may be
// emitted in tree order — the caller re-sorts the surviving candidates
// into dense order, which is what keeps the bytes identical. Returns
// false if the tree could not be built or probed (the caller falls back
// to the dense loop for the bucket; with the in-memory pager this does
// not happen in practice).
func indexPairs(attrs []string, as, bs []int, env1, env2 []constraint.Envelope, emit func(i, j int)) bool {
	ranges := globalRanges(attrs, env1, env2)
	items := make([]rstar.BulkItem, 0, len(bs))
	for _, j := range bs {
		r, ok := envRect(env2[j], attrs, ranges)
		if !ok {
			continue // empty interval: no pair with j survives Disjoint
		}
		items = append(items, rstar.BulkItem{Rect: r, Data: int64(j)})
	}
	if len(items) == 0 {
		return true
	}
	tree, err := rstar.BulkLoad(storage.NewMemPager(4096), len(attrs), items, rstar.Options{})
	if err != nil {
		return false
	}
	for _, i := range as {
		q, ok := envRect(env1[i], attrs, ranges)
		if !ok {
			continue
		}
		hits, err := tree.Search(q)
		if err != nil {
			return false
		}
		for _, j := range hits {
			emit(i, int(j))
		}
	}
	return true
}
