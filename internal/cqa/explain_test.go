package cqa

import (
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/obs"
	"cdb/internal/rational"
)

// TestExplainSpanTotalsMatchStats is the acceptance check of the
// observability layer: evaluating a composed plan (project ∘ select ∘
// join) with tracing on must produce a span tree whose per-span
// sat-check, cache-hit and tuple totals sum to exactly the aggregates
// the flat -stats table reports — the EXPLAIN tree and -stats are two
// views of the same numbers.
func TestExplainSpanTotalsMatchStats(t *testing.T) {
	r1, r2 := parInputs(t, 13, 20, 20, 5)
	env := Env{"R1": r1, "R2": r2}
	plan := NewProject(NewSelect(NewJoin(Scan("R1"), Scan("R2")),
		Condition{AttrCmpConst("x", OpLe, rational.FromInt(2000))}), "id", "x")

	// Dense loop: with the pair filter on, this sparse workload prunes
	// every pair before a sat check and the totals comparison would be
	// vacuous. Span/stat consistency of the filter counters themselves is
	// covered by TestPairsStatsConsistent in pairing_test.go.
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1, NoPrune: true}
	ec.SatCache = constraint.NewSatCache(1024)
	ec.Tracer = obs.NewTracer()
	if _, err := plan.EvalCtx(env, ec); err != nil {
		t.Fatal(err)
	}

	roots := ec.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d root spans, want 1 (the outermost plan node)", len(roots))
	}
	var agg exec.OpStats
	for _, s := range ec.Summary() {
		agg.SatChecks += s.SatChecks
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.TuplesIn += s.TuplesIn
		agg.TuplesOut += s.TuplesOut
		agg.PrunedUnsat += s.PrunedUnsat
		agg.FMDecisions += s.FMDecisions
	}
	if agg.SatChecks == 0 {
		t.Fatal("fixture produced no satisfiability checks; the comparison is vacuous")
	}
	for _, cmp := range []struct {
		key  string
		want int64
	}{
		{"sat", agg.SatChecks},
		{"hit", agg.CacheHits},
		{"miss", agg.CacheMisses},
		{"in", agg.TuplesIn},
		{"pruned", agg.PrunedUnsat},
		{"fm", agg.FMDecisions},
	} {
		if got := obs.SumCounter(roots, cmp.key); got != cmp.want {
			t.Errorf("span %q total = %d, -stats aggregate = %d", cmp.key, got, cmp.want)
		}
	}
	// "out" is recorded by the scan spans too (they are not operators),
	// so the span total is stats-out plus the scanned input sizes.
	wantOut := agg.TuplesOut + int64(r1.Len()+r2.Len())
	if got := obs.SumCounter(roots, "out"); got != wantOut {
		t.Errorf("span out total = %d, want stats out + scans = %d", got, wantOut)
	}

	// The rendered tree shows the plan shape with operators folded onto
	// their plan nodes.
	rendered := obs.FormatTree(roots, obs.TreeOptions{})
	for _, want := range []string{"project", "select", "join", "scan R1", "scan R2", "fanout"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("EXPLAIN tree missing %q:\n%s", want, rendered)
		}
	}
	for _, name := range []string{"project", "select", "join"} {
		if n := strings.Count(rendered, "─ "+name); n > 1 {
			t.Errorf("%q rendered %d times; operator span not folded into its plan node:\n%s",
				name, n, rendered)
		}
	}
}

// TestTracingDoesNotChangeOutput pins the tentpole's no-interference
// contract: with tracing and metrics on, operator output is
// byte-identical (same tuples, same order) to the untraced run.
func TestTracingDoesNotChangeOutput(t *testing.T) {
	r1, r2 := parInputs(t, 17, 30, 30, 5)
	env := Env{"R1": r1, "R2": r2}
	plan := NewProject(NewSelect(NewJoin(Scan("R1"), Scan("R2")),
		Condition{AttrCmpConst("x", OpLe, rational.FromInt(2000)),
			AttrCmpConst("y", OpNe, rational.FromInt(700))}), "id", "x")

	plain := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	want, err := plan.EvalCtx(env, plain)
	if err != nil {
		t.Fatal(err)
	}

	traced := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	traced.Tracer = obs.NewTracer()
	traced.InstallMetrics(obs.NewRegistry())
	got, err := plan.EvalCtx(env, traced)
	if err != nil {
		t.Fatal(err)
	}
	if dump(got) != dump(want) {
		t.Errorf("tracing changed operator output\nuntraced:\n%s\ntraced:\n%s",
			dump(want), dump(got))
	}
	if len(traced.Tracer.Roots()) == 0 {
		t.Error("traced run collected no spans")
	}
}
