package cqa

import (
	"strings"
	"testing"
)

// TestProjectPushdownThroughJoin exercises rule 7 structurally (the
// semantic safety is covered by TestQuickOptimizeEquivalence).
func TestProjectPushdownThroughJoin(t *testing.T) {
	env := testEnv(t)
	se := env.Schemas()
	// Landownership: (name, landId rel; t con), Land: (landId rel; x,y con).
	// π_{name,x}(Landownership ⋈ Land): t and y can be dropped early;
	// landId (shared) must be kept on both sides.
	plan := NewProject(NewJoin(Scan("Landownership"), Scan("Land")), "name", "x")
	opt := Optimize(plan, se)
	top, ok := opt.(*ProjectNode)
	if !ok {
		t.Fatalf("optimized to %T (%s)", opt, opt)
	}
	join, ok := top.Input.(*JoinNode)
	if !ok {
		t.Fatalf("under projection: %T (%s)", top.Input, opt)
	}
	lp, lok := join.Left.(*ProjectNode)
	rp, rok := join.Right.(*ProjectNode)
	if !lok || !rok {
		t.Fatalf("projections not pushed to both sides: %s", opt)
	}
	if strings.Contains(strings.Join(lp.Cols, ","), "t") {
		t.Errorf("left side kept t: %v", lp.Cols)
	}
	if !contains(lp.Cols, "landId") || !contains(rp.Cols, "landId") {
		t.Errorf("shared attribute dropped: left %v right %v", lp.Cols, rp.Cols)
	}
	if contains(rp.Cols, "y") {
		t.Errorf("right side kept y: %v", rp.Cols)
	}
	// Semantics preserved.
	want, err := plan.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equivalent(want) {
		t.Errorf("rule 7 changed semantics:\n%s\nvs\n%s", want, got)
	}
	// Termination/stability: optimizing again changes nothing structurally.
	again := Optimize(opt, se)
	if again.String() != opt.String() {
		t.Errorf("optimizer not at fixpoint:\n%s\nvs\n%s", opt, again)
	}
}

// TestProjectPushdownSkipsWhenNothingToDrop: projecting exactly the join
// attributes plus everything leaves the plan unchanged (no loop fuel).
func TestProjectPushdownSkipsWhenNothingToDrop(t *testing.T) {
	env := testEnv(t)
	se := env.Schemas()
	plan := NewProject(NewJoin(Scan("Landownership"), Scan("Land")),
		"name", "landId", "t", "x", "y")
	opt := Optimize(plan, se)
	// Identity projection over the join collapses to the join itself
	// (rule 6), or stays a single projection; either way no nested
	// projections appear.
	if strings.Count(opt.String(), "project") > 1 {
		t.Errorf("unnecessary pushdown: %s", opt)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
