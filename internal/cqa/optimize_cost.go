package cqa

import (
	"sort"

	"cdb/internal/constraint"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// This file holds the cost-driven logical rewrites of the two-phase
// planner — the ones Optimize's purely syntactic fixpoint rules cannot
// make, because they need the estimator's numbers over actual relations:
//
//   - selection-atom ordering: the atoms of a selection over a base
//     relation are reordered most-selective-first, so the per-tuple
//     early-exit in SelectCtx rejects tuples after the fewest conjoin +
//     satisfiability rounds. Selectivity comes from the envelope
//     estimator: for a single-variable linear atom, the fraction of
//     input envelopes whose interval intersects the atom's
//     (constraint.AtomInterval + CountIntersecting); atoms the estimator
//     cannot score keep selectivity 1 and their original relative order.
//   - join reordering: a join-only subtree over base relations is
//     rebuilt left-deep starting from the pair with the smallest
//     estimated surviving-candidate count, growing greedily by the leaf
//     cheapest against the chosen set. Applied only on a ≥2× estimated
//     improvement over the original first join, and wrapped in a
//     projection restoring the original output attribute order, so a
//     plan that was already fine is left alone.
//
// Both rewrites preserve the point-set semantics exactly (conjunction
// and natural join are commutative/associative; the projection restores
// the schema); they may permute the storage order of output tuples,
// which the sorted renderers make invisible.

// optimizeCost applies the cost-driven rewrites to a plan. Rewrites fire
// only where the needed statistics are exact — inputs that are base
// relations in env — so the pass is cheap and never guesses.
func optimizeCost(n Node, env Env) Node {
	switch node := n.(type) {
	case *SelectNode:
		in := optimizeCost(node.Input, env)
		return NewSelect(in, orderAtoms(node.Cond, in, env))
	case *ProjectNode:
		return NewProject(optimizeCost(node.Input, env), node.Cols...)
	case *RenameNode:
		return NewRename(optimizeCost(node.Input, env), node.Old, node.New)
	case *UnionNode:
		return NewUnion(optimizeCost(node.Left, env), optimizeCost(node.Right, env))
	case *DiffNode:
		return NewDiff(optimizeCost(node.Left, env), optimizeCost(node.Right, env))
	case *JoinNode:
		if out, ok := reorderJoinChain(node, env); ok {
			return out
		}
		return NewJoin(optimizeCost(node.Left, env), optimizeCost(node.Right, env))
	default:
		return n
	}
}

// atomSelectivity estimates the fraction of scan tuples a single atom
// keeps, using the same envelope intervals the pairing estimator counts
// with. Only single-variable linear atoms over a constraint attribute are
// scorable (their conjoined constraint has a known interval); everything
// else — string atoms, multi-variable expressions, relational attributes,
// the tuple-splitting != — reports 1 (no information).
func atomSelectivity(a Atom, s schema.Schema, envs []constraint.Envelope) float64 {
	la, ok := a.(LinearAtom)
	if !ok || len(envs) == 0 {
		return 1
	}
	vars := la.Expr.Vars()
	if len(vars) != 1 {
		return 1
	}
	if attr, ok := s.Attr(vars[0]); !ok || attr.Kind != schema.Constraint {
		return 1
	}
	var con constraint.Constraint
	switch la.Op {
	case OpEq:
		con = constraint.Constraint{Expr: la.Expr, Op: constraint.Eq}
	case OpLe:
		con = constraint.Constraint{Expr: la.Expr, Op: constraint.Le}
	case OpLt:
		con = constraint.Constraint{Expr: la.Expr, Op: constraint.Lt}
	case OpGe:
		con = constraint.Constraint{Expr: la.Expr.Neg(), Op: constraint.Le}
	case OpGt:
		con = constraint.Constraint{Expr: la.Expr.Neg(), Op: constraint.Lt}
	default: // != keeps both half-spaces; no single interval describes it
		return 1
	}
	v, iv, ok := constraint.AtomInterval(con)
	if !ok {
		return 1
	}
	return float64(constraint.CountIntersecting(envs, v, iv)) / float64(len(envs))
}

// orderAtoms returns cond reordered most-selective-first when the
// selection reads a base relation; the sort is stable, so unscorable
// atoms (selectivity 1) keep their original relative order and a
// condition with no scorable atom comes back unchanged.
func orderAtoms(cond Condition, in Node, env Env) Condition {
	if len(cond) < 2 {
		return cond
	}
	r, ok := scanRelation(in, env)
	if !ok {
		return cond
	}
	envs := envelopes(r.Tuples())
	sel := make([]float64, len(cond))
	anyInfo := false
	for i, a := range cond {
		sel[i] = atomSelectivity(a, r.Schema(), envs)
		if sel[i] < 1 {
			anyInfo = true
		}
	}
	if !anyInfo {
		return cond
	}
	idx := make([]int, len(cond))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return sel[idx[x]] < sel[idx[y]] })
	out := make(Condition, len(cond))
	for i, j := range idx {
		out[i] = cond[j]
	}
	return out
}

// joinLeaves flattens a join-only subtree into its leaves, in evaluation
// order. ok is false when any non-join interior node or non-scan leaf
// appears — the chain rewrite only reasons about base relations.
func joinLeaves(n Node, env Env) ([]*ScanNode, bool) {
	switch node := n.(type) {
	case *JoinNode:
		l, ok := joinLeaves(node.Left, env)
		if !ok {
			return nil, false
		}
		r, ok := joinLeaves(node.Right, env)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	case *ScanNode:
		if _, ok := env[node.Name]; !ok {
			return nil, false
		}
		return []*ScanNode{node}, true
	default:
		return nil, false
	}
}

// reorderJoinChain rebuilds a ≥3-leaf join-only subtree left-deep in a
// cost-chosen order: the cheapest pair (smallest estimated surviving
// candidates) joins first, then the remaining leaves greedily by their
// cheapest estimate against any already-joined leaf — the estimator's
// pairwise numbers are exact, the greedy extension is the usual proxy
// for the unobservable intermediate sizes. The rewrite fires only when
// the chosen first pair is at least 2× cheaper than the join the
// original plan would run first, and the result is wrapped in a
// projection onto the original output names so the schema (and with it
// every downstream column reference) is unchanged.
func reorderJoinChain(n *JoinNode, env Env) (Node, bool) {
	leaves, ok := joinLeaves(n, env)
	if !ok || len(leaves) < 3 || len(leaves) > 6 {
		return nil, false
	}
	origSchema, err := n.OutSchema(env.Schemas())
	if err != nil {
		return nil, false
	}
	rels := make([]*relation.Relation, len(leaves))
	for i, l := range leaves {
		rels[i] = env[l.Name]
	}
	est := func(i, j int) int64 { return pairStatsFor(rels[i], rels[j]).est }
	// The original plan's first-evaluated join is its deepest-left node,
	// i.e. the first two leaves in evaluation order.
	origFirst := est(0, 1)
	bi, bj, best := 0, 1, origFirst
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if e := est(i, j); e < best {
				bi, bj, best = i, j, e
			}
		}
	}
	// Strict improvement required: at origFirst = 0 the ≥2× test alone
	// would pass on a tie (0·2 > 0 is false) and churn an optimal plan.
	if best >= origFirst || best*2 > origFirst {
		return nil, false
	}
	chosen := []int{bi, bj}
	used := map[int]bool{bi: true, bj: true}
	for len(chosen) < len(leaves) {
		nk, nc := -1, int64(0)
		for k := range leaves {
			if used[k] {
				continue
			}
			c := int64(-1)
			for _, x := range chosen {
				if e := est(x, k); c < 0 || e < c {
					c = e
				}
			}
			if nk < 0 || c < nc {
				nk, nc = k, c
			}
		}
		chosen = append(chosen, nk)
		used[nk] = true
	}
	var out Node = Scan(leaves[chosen[0]].Name)
	for _, k := range chosen[1:] {
		out = NewJoin(out, Scan(leaves[k].Name))
	}
	return NewProject(out, origSchema.Names()...), true
}
