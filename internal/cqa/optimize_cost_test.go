package cqa

import (
	"testing"

	"cdb/internal/datagen"
	"cdb/internal/rational"
)

// costEnv builds three base relations with very different pairing costs:
// Big1×Big2 overlap heavily (every envelope near the origin), while Tiny
// is far away from both, so any join touching Tiny is estimated far
// cheaper than Big1 ⋈ Big2.
func costEnv(t *testing.T) Env {
	t.Helper()
	p := datagen.Scaled(10)
	p.Seed = 41
	p2 := p
	p2.Seed = p.Seed + 1000
	p3 := p
	p3.Seed = p.Seed + 2000
	// One cluster each, same center seed: Big1 and Big2 overlap heavily.
	big1 := datagen.ClusteredBoxRelation(p, 24, 1, 80, 7)
	big2 := datagen.ClusteredBoxRelation(p2, 24, 1, 80, 7)
	// A different center seed puts Tiny's single tight cluster elsewhere.
	tiny := datagen.ClusteredBoxRelation(p3, 24, 1, 5, 1234)
	return Env{"Big1": big1, "Big2": big2, "Tiny": tiny}
}

// TestOrderAtomsSelectivityFirst: the cost rewrite reorders a selection's
// atoms most-selective-first over a base relation, without changing the
// selection's point-set semantics.
func TestOrderAtomsSelectivityFirst(t *testing.T) {
	env := costEnv(t)
	r := env["Big1"]
	envs := envelopes(r.Tuples())
	loose := AttrCmpConst("x", OpLe, rational.FromInt(1_000_000)) // keeps every envelope
	tight := AttrCmpConst("x", OpLe, rational.FromInt(-1_000_000))
	if s := atomSelectivity(tight, r.Schema(), envs); s != 0 {
		t.Fatalf("tight atom selectivity = %v, want 0", s)
	}
	if s := atomSelectivity(loose, r.Schema(), envs); s != 1 {
		t.Fatalf("loose atom selectivity = %v, want 1", s)
	}

	cond := Condition{loose, tight}
	got := orderAtoms(cond, Scan("Big1"), env)
	if got.String() != Condition([]Atom{tight, loose}).String() {
		t.Errorf("orderAtoms = %s, want the tight atom first", got)
	}

	// Unscorable-only conditions come back untouched (stable identity).
	neq := Condition{
		AttrCmpConst("x", OpNe, rational.FromInt(3)),
		AttrCmpConst("y", OpNe, rational.FromInt(4)),
	}
	if got := orderAtoms(neq, Scan("Big1"), env); got.String() != neq.String() {
		t.Errorf("orderAtoms reordered unscorable atoms: %s", got)
	}

	// Reordering must not change the result set.
	want, err := Select(r, cond)
	if err != nil {
		t.Fatal(err)
	}
	reordered, err := Select(r, orderAtoms(cond, Scan("Big1"), env))
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != reordered.String() {
		t.Errorf("atom reordering changed the selection result\nwant:\n%s\ngot:\n%s", want, reordered)
	}
}

// TestReorderJoinChain: a three-way join whose plan starts with the most
// expensive pair is rebuilt to start with a cheaper one, the output
// schema (names and order) is preserved by the wrapping projection, and
// the point set is unchanged. A chain already starting with its cheapest
// pair is left alone — the ≥2× gate.
func TestReorderJoinChain(t *testing.T) {
	env := costEnv(t)
	expensiveFirst := NewJoin(NewJoin(Scan("Big1"), Scan("Big2")), Scan("Tiny"))

	out, ok := reorderJoinChain(expensiveFirst, env)
	if !ok {
		t.Fatal("reorderJoinChain did not fire on an expensive-first chain")
	}
	proj, isProj := out.(*ProjectNode)
	if !isProj {
		t.Fatalf("rewritten chain is %T, want a schema-restoring projection", out)
	}
	origSchema, err := expensiveFirst.OutSchema(env.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	newSchema, err := proj.OutSchema(env.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	if origSchema.String() != newSchema.String() {
		t.Errorf("rewrite changed the output schema:\nwant %s\ngot  %s", origSchema, newSchema)
	}

	want, err := expensiveFirst.EvalCtx(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := out.EvalCtx(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("join reordering changed the result\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Tiny ⋈ Big1 first is already (near-)optimal: the gate must hold it.
	cheapFirst := NewJoin(NewJoin(Scan("Tiny"), Scan("Big1")), Scan("Big2"))
	if _, ok := reorderJoinChain(cheapFirst, env); ok {
		t.Error("reorderJoinChain churned a chain already starting with its cheapest pair")
	}

	// Chains with a non-scan leaf are out of scope.
	mixed := NewJoin(NewJoin(Scan("Big1"), NewProject(Scan("Big2"), "id", "x")), Scan("Tiny"))
	if _, ok := reorderJoinChain(mixed, env); ok {
		t.Error("reorderJoinChain fired on a chain with a non-scan leaf")
	}
}
