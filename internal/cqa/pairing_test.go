package cqa

import (
	"strings"
	"testing"

	"cdb/internal/datagen"
	"cdb/internal/exec"
	"cdb/internal/obs"
	"cdb/internal/relation"
)

// pruneInputs builds the three workload shapes the filter is designed
// around: skewed relational buckets (partition pruning), spatial clusters
// with all-NULL ids (envelope + sweep pruning), and the plain BoxRelation
// mix. Sizes stay small enough for the dense baseline to be cheap.
func pruneInputs(t *testing.T) map[string][2]*relation.Relation {
	t.Helper()
	p := datagen.Scaled(10)
	p.Seed = 19
	p2 := p
	p2.Seed = p.Seed + 1000
	return map[string][2]*relation.Relation{
		"boxes": {datagen.BoxRelation(p, 36, 4), datagen.BoxRelation(p2, 36, 4)},
		"skewed": {datagen.SkewedBoxRelation(p, 36, 6),
			datagen.SkewedBoxRelation(p2, 36, 6)},
		"clustered": {datagen.ClusteredBoxRelation(p, 36, 5, 50, 99),
			datagen.ClusteredBoxRelation(p2, 36, 5, 50, 99)},
	}
}

// TestPruningEquivalence is the filter's acceptance contract: with the
// candidate filter on, every binary operator produces byte-identical
// output (same tuples, same order) to the dense nested loop, sequentially
// and under the pool, on every workload shape — pruned pairs are exactly
// pairs the refine step would have rejected anyway.
func TestPruningEquivalence(t *testing.T) {
	ops := map[string]func(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error){
		"join":       JoinCtx,
		"intersect":  IntersectCtx,
		"difference": DifferenceCtx,
	}
	ctxs := map[string]func() (dense, filtered *exec.Context){
		"par1": func() (*exec.Context, *exec.Context) {
			return &exec.Context{Parallelism: 1, SeqThreshold: 1, NoPrune: true},
				&exec.Context{Parallelism: 1, SeqThreshold: 1}
		},
		"par4": func() (*exec.Context, *exec.Context) {
			return &exec.Context{Parallelism: 4, SeqThreshold: 1, NoPrune: true},
				&exec.Context{Parallelism: 4, SeqThreshold: 1}
		},
	}
	for wName, pair := range pruneInputs(t) {
		for opName, op := range ops {
			for ctxName, mk := range ctxs {
				ecDense, ecFilt := mk()
				want, err := op(ecDense, pair[0], pair[1])
				if err != nil {
					t.Fatalf("%s %s %s dense: %v", wName, opName, ctxName, err)
				}
				got, err := op(ecFilt, pair[0], pair[1])
				if err != nil {
					t.Fatalf("%s %s %s filtered: %v", wName, opName, ctxName, err)
				}
				if dump(got) != dump(want) {
					t.Errorf("%s %s %s: filtered output diverges from dense\ndense:\n%s\nfiltered:\n%s",
						wName, opName, ctxName, dump(want), dump(got))
				}
			}
		}
	}
}

// TestSweepMatchesDenseCandidates: the interval sweep and the dense
// bucket loop enumerate the same candidate set — forced via PlanMode,
// the plans must be identical.
func TestSweepMatchesDenseCandidates(t *testing.T) {
	p := datagen.Scaled(10)
	p.Seed = 23
	p2 := p
	p2.Seed = p.Seed + 1000
	for name, pair := range map[string][2]*relation.Relation{
		// All-NULL ids: one bucket, so the crossover decision is global.
		"clustered": {datagen.ClusteredBoxRelation(p, 40, 6, 60, 99),
			datagen.ClusteredBoxRelation(p2, 40, 6, 60, 99)},
		"skewed": {datagen.SkewedBoxRelation(p, 40, 5),
			datagen.SkewedBoxRelation(p2, 40, 5)},
	} {
		t1s, t2s := pair[0].Tuples(), pair[1].Tuples()
		sharedCon := []string{"x", "y"}
		sharedRel := []string{"id"}
		ecSweep := &exec.Context{PlanMode: exec.PlanSweep} // every bucket sweeps
		ecDense := &exec.Context{PlanMode: exec.PlanDense} // every bucket is dense
		sweep := pairCandidates(ecSweep, "", t1s, t2s, sharedRel, sharedCon)
		dense := pairCandidates(ecDense, "", t1s, t2s, sharedRel, sharedCon)
		if sweep.total != dense.total {
			t.Fatalf("%s: totals differ: %d vs %d", name, sweep.total, dense.total)
		}
		if len(sweep.cands) != len(dense.cands) {
			t.Fatalf("%s: sweep found %d candidates, dense loop %d",
				name, len(sweep.cands), len(dense.cands))
		}
		for i := range sweep.cands {
			if sweep.cands[i] != dense.cands[i] {
				t.Fatalf("%s: candidate %d differs: %d vs %d",
					name, i, sweep.cands[i], dense.cands[i])
			}
		}
		if sweep.pruned() == 0 {
			t.Errorf("%s: filter pruned nothing; the fixture is too easy", name)
		}
	}
}

// TestPairsStatsConsistent: the filter's pairs/filtered counters agree
// between the flat stats records, the span tree and the metric families —
// the invariant the explain tests rely on.
func TestPairsStatsConsistent(t *testing.T) {
	p := datagen.Scaled(10)
	p.Seed = 29
	p2 := p
	p2.Seed = p.Seed + 1000
	r1 := datagen.SkewedBoxRelation(p, 30, 6)
	r2 := datagen.SkewedBoxRelation(p2, 30, 6)
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	ec.Tracer = obs.NewTracer()
	reg := obs.NewRegistry()
	ec.InstallMetrics(reg)
	if _, err := JoinCtx(ec, r1, r2); err != nil {
		t.Fatal(err)
	}
	var pairs, filtered int64
	for _, s := range ec.Stats() {
		pairs += s.PairsTotal
		filtered += s.PairsPruned
	}
	if pairs != int64(r1.Len()*r2.Len()) {
		t.Errorf("PairsTotal = %d, want %d", pairs, r1.Len()*r2.Len())
	}
	if filtered == 0 {
		t.Fatal("filter pruned nothing; the consistency check is vacuous")
	}
	roots := ec.Tracer.Roots()
	if got := obs.SumCounter(roots, "pairs"); got != pairs {
		t.Errorf("span pairs total = %d, stats = %d", got, pairs)
	}
	if got := obs.SumCounter(roots, "filtered"); got != filtered {
		t.Errorf("span filtered total = %d, stats = %d", got, filtered)
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cqa_pairs_considered_total", "cqa_pairs_pruned_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %s:\n%s", want, buf.String())
		}
	}
}

// TestUnionStats: union runs on the pool like the other operators and
// records one stats row (the recorder-consistency fix).
func TestUnionStats(t *testing.T) {
	r1, r2 := parInputs(t, 31, 30, 30, 5)
	ec := &exec.Context{Parallelism: 4, SeqThreshold: 1}
	out, err := UnionCtx(ec, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	stats := ec.Stats()
	if len(stats) != 1 || stats[0].Op != "union" {
		t.Fatalf("stats = %+v, want one union record", stats)
	}
	s := stats[0]
	if s.TuplesIn != int64(r1.Len()+r2.Len()) {
		t.Errorf("TuplesIn = %d, want %d", s.TuplesIn, r1.Len()+r2.Len())
	}
	if s.TuplesOut != int64(out.Len()) {
		t.Errorf("TuplesOut = %d, want %d", s.TuplesOut, out.Len())
	}
	if !s.Parallel {
		t.Error("union at threshold 1 over 60 tuples should report Parallel")
	}

	ecSeq := &exec.Context{Parallelism: 4, SeqThreshold: 1 << 20}
	if _, err := UnionCtx(ecSeq, r1, r2); err != nil {
		t.Fatal(err)
	}
	if ecSeq.Stats()[0].Parallel {
		t.Error("union below SeqThreshold must not report Parallel")
	}
}
