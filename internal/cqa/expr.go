package cqa

import (
	"fmt"
	"strings"

	"cdb/internal/exec"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// Node is a CQA expression tree — the algebraic "plan" of a query. Plans
// are built by the query language front end (package query) or directly,
// optimised by Optimize, and evaluated bottom-up against an environment of
// named relations.
type Node interface {
	fmt.Stringer
	// Eval evaluates the subtree against the environment, sequentially.
	Eval(env Env) (*relation.Relation, error)
	// EvalCtx evaluates the subtree under an execution context: operators
	// fan their satisfiability work out over ec's worker pool and record
	// per-operator stats on ec. When ec traces, every node opens a span,
	// so the evaluated plan appears as a tree in EXPLAIN output (the
	// operator's own counters fold into the node's line). A nil ec is
	// Eval.
	EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error)
	// OutSchema computes the result schema without evaluating.
	OutSchema(env SchemaEnv) (schema.Schema, error)
}

// Env maps relation names to relations.
type Env map[string]*relation.Relation

// SchemaEnv maps relation names to schemas.
type SchemaEnv map[string]schema.Schema

// Schemas derives a SchemaEnv from an Env.
func (e Env) Schemas() SchemaEnv {
	out := make(SchemaEnv, len(e))
	for name, r := range e {
		out[name] = r.Schema()
	}
	return out
}

// ScanNode reads a named base (or intermediate) relation.
type ScanNode struct{ Name string }

// Scan returns a node reading the named relation.
func Scan(name string) *ScanNode { return &ScanNode{Name: name} }

func (n *ScanNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *ScanNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("scan", n.Name)
	defer ec.EndSpan(sp)
	r, ok := env[n.Name]
	if !ok {
		return nil, fmt.Errorf("cqa: unknown relation %q", n.Name)
	}
	sp.Set("out", int64(r.Len()))
	return r, nil
}

func (n *ScanNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	s, ok := env[n.Name]
	if !ok {
		return schema.Schema{}, fmt.Errorf("cqa: unknown relation %q", n.Name)
	}
	return s, nil
}

func (n *ScanNode) String() string { return n.Name }

// SelectNode applies a selection condition.
type SelectNode struct {
	Input Node
	Cond  Condition
}

// NewSelect returns a selection node.
func NewSelect(in Node, cond Condition) *SelectNode {
	return &SelectNode{Input: in, Cond: cond}
}

func (n *SelectNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *SelectNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("select", n.Cond.String())
	defer ec.EndSpan(sp)
	in, err := n.Input.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return SelectCtx(ec, in, n.Cond)
}

func (n *SelectNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	s, err := n.Input.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	if err := n.Cond.Validate(s); err != nil {
		return schema.Schema{}, err
	}
	return s, nil
}

func (n *SelectNode) String() string {
	return fmt.Sprintf("select %s from %s", n.Cond, n.Input)
}

// ProjectNode projects onto a column list.
type ProjectNode struct {
	Input Node
	Cols  []string
}

// NewProject returns a projection node.
func NewProject(in Node, cols ...string) *ProjectNode {
	return &ProjectNode{Input: in, Cols: cols}
}

func (n *ProjectNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *ProjectNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("project", strings.Join(n.Cols, ", "))
	defer ec.EndSpan(sp)
	in, err := n.Input.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return ProjectCtx(ec, in, n.Cols...)
}

func (n *ProjectNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	s, err := n.Input.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	return s.Project(n.Cols...)
}

func (n *ProjectNode) String() string {
	return fmt.Sprintf("project %s on %s", n.Input, strings.Join(n.Cols, ", "))
}

// JoinNode is the natural join of two inputs. Strategy, when non-empty,
// is the physical planner's pairing-strategy hint (exec.PlanDense/Sweep/
// Index) stamped by PlanPhysical; empty means the operator decides at
// execution time.
type JoinNode struct {
	Left, Right Node
	Strategy    string
}

// NewJoin returns a natural-join node.
func NewJoin(l, r Node) *JoinNode { return &JoinNode{Left: l, Right: r} }

func (n *JoinNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *JoinNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("join", "")
	defer ec.EndSpan(sp)
	l, err := n.Left.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return joinCtx(ec, "join", n.Strategy, l, r)
}

func (n *JoinNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	ls, err := n.Left.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	rs, err := n.Right.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	return ls.Join(rs)
}

func (n *JoinNode) String() string {
	return fmt.Sprintf("join %s and %s", n.Left, n.Right)
}

// UnionNode is the union of two inputs with equal schemas.
type UnionNode struct{ Left, Right Node }

// NewUnion returns a union node.
func NewUnion(l, r Node) *UnionNode { return &UnionNode{Left: l, Right: r} }

func (n *UnionNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *UnionNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("union", "")
	defer ec.EndSpan(sp)
	l, err := n.Left.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return UnionCtx(ec, l, r)
}

func (n *UnionNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	ls, err := n.Left.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	rs, err := n.Right.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	if !ls.Equal(rs) {
		return schema.Schema{}, fmt.Errorf("cqa: union schema mismatch: %s vs %s", ls, rs)
	}
	return ls, nil
}

func (n *UnionNode) String() string {
	return fmt.Sprintf("union %s and %s", n.Left, n.Right)
}

// DiffNode is the difference of two inputs with equal schemas. Strategy
// is the physical planner's pairing-strategy hint (see JoinNode).
type DiffNode struct {
	Left, Right Node
	Strategy    string
}

// NewDiff returns a difference node.
func NewDiff(l, r Node) *DiffNode { return &DiffNode{Left: l, Right: r} }

func (n *DiffNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *DiffNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("difference", "")
	defer ec.EndSpan(sp)
	l, err := n.Left.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	r, err := n.Right.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return differenceCtx(ec, n.Strategy, l, r)
}

func (n *DiffNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	ls, err := n.Left.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	rs, err := n.Right.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	if !ls.Equal(rs) {
		return schema.Schema{}, fmt.Errorf("cqa: difference schema mismatch: %s vs %s", ls, rs)
	}
	return ls, nil
}

func (n *DiffNode) String() string {
	return fmt.Sprintf("minus %s and %s", n.Left, n.Right)
}

// RenameNode renames one attribute.
type RenameNode struct {
	Input    Node
	Old, New string
}

// NewRename returns a rename node.
func NewRename(in Node, old, new string) *RenameNode {
	return &RenameNode{Input: in, Old: old, New: new}
}

func (n *RenameNode) Eval(env Env) (*relation.Relation, error) { return n.EvalCtx(env, nil) }

func (n *RenameNode) EvalCtx(env Env, ec *exec.Context) (*relation.Relation, error) {
	sp := ec.BeginSpan("rename", n.Old+" -> "+n.New)
	defer ec.EndSpan(sp)
	in, err := n.Input.EvalCtx(env, ec)
	if err != nil {
		return nil, err
	}
	return RenameCtx(ec, in, n.Old, n.New)
}

func (n *RenameNode) OutSchema(env SchemaEnv) (schema.Schema, error) {
	s, err := n.Input.OutSchema(env)
	if err != nil {
		return schema.Schema{}, err
	}
	return s.Rename(n.Old, n.New)
}

func (n *RenameNode) String() string {
	return fmt.Sprintf("rename %s to %s in %s", n.Old, n.New, n.Input)
}
