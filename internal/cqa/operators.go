package cqa

import (
	"fmt"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/relation"
	"cdb/internal/schema"
	"cdb/internal/vector"
)

// The operators come in pairs: Op(args) is the sequential convenience
// form and OpCtx(ec, args) the form that takes an execution context.
// OpCtx fans the per-tuple (Select, Project, Difference) or per-tuple-
// pair (Join, Intersect) satisfiability work out over ec's worker pool
// and records per-operator statistics on ec; results are merged in input
// index order, so the output is byte-identical to the sequential path.
// A nil context is valid and means sequential execution with no stats.
//
// Two cross-cutting invariants of every operator:
//
//   - canonical output: every emitted tuple has its constraint part in
//     canonical form (constraint.Conjunction.Canon), whatever the form of
//     the inputs;
//   - memoized decisions: every satisfiability decision goes through the
//     operator's recorder (exec.OpRecorder.Satisfiable), so a sat-cache
//     configured on ec is consulted and the hit/miss counts land in the
//     per-operator statistics. With no context or no cache the decisions
//     fall back to the raw Fourier-Motzkin eliminator, and the output is
//     byte-identical either way.

// Select returns ς_cond(r): the tuples of r restricted to the condition.
// Per the heterogeneous semantics, conditions over constraint attributes
// are conjoined (broad), while conditions over relational attributes filter
// by value with NULL matching nothing (narrow). Atoms using != over
// constraint attributes may split a tuple in two, so the output can have
// more tuples than the input (but never more points).
func Select(r *relation.Relation, cond Condition) (*relation.Relation, error) {
	return SelectCtx(nil, r, cond)
}

// SelectCtx is Select under an execution context: the per-tuple condition
// evaluation fans out over ec's worker pool.
func SelectCtx(ec *exec.Context, r *relation.Relation, cond Condition) (*relation.Relation, error) {
	if err := cond.Validate(r.Schema()); err != nil {
		return nil, err
	}
	rec := ec.StartOp("select", r.Len())
	tuples := r.Tuples()
	variantLists, err := exec.Map(ec, len(tuples), func(i int) ([]relation.Tuple, error) {
		variants := []relation.Tuple{tuples[i]}
		for _, a := range cond {
			var next []relation.Tuple
			for _, v := range variants {
				res, err := evalAtom(a, r.Schema(), v, ec, rec)
				if err != nil {
					return nil, err
				}
				next = append(next, res...)
			}
			variants = next
			if len(variants) == 0 {
				break
			}
		}
		return variants, nil
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(r.Schema())
	for _, variants := range variantLists {
		for _, v := range variants {
			if err := out.Add(v.Canon()); err != nil {
				return nil, err
			}
		}
	}
	rec.AddOut(out.Len())
	rec.Done(ec.ParallelFor(len(tuples)))
	return out, nil
}

// Project returns π_X(r): the restriction of every tuple to the attributes
// X. Constraint attributes outside X are eliminated exactly (Fourier-
// Motzkin projection of the constraint part); relational bindings outside X
// are dropped. Tuples whose projected constraint part is unsatisfiable are
// removed.
func Project(r *relation.Relation, cols ...string) (*relation.Relation, error) {
	return ProjectCtx(nil, r, cols...)
}

// ProjectCtx is Project under an execution context: the per-tuple
// Fourier-Motzkin eliminations fan out over ec's worker pool.
func ProjectCtx(ec *exec.Context, r *relation.Relation, cols ...string) (*relation.Relation, error) {
	ps, err := r.Schema().Project(cols...)
	if err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	for _, c := range cols {
		keep[c] = true
	}
	var dropCon []string
	for _, name := range r.Schema().ConstraintNames() {
		if !keep[name] {
			dropCon = append(dropCon, name)
		}
	}
	rec := ec.StartOp("project", r.Len())
	tuples := r.Tuples()
	results, err := exec.Map(ec, len(tuples), func(i int) (*relation.Tuple, error) {
		t := tuples[i]
		con := t.Constraint().Eliminate(dropCon...).Canon()
		if !rec.Satisfiable(con) {
			return nil, nil
		}
		rvals := map[string]relation.Value{}
		for name, v := range t.RVals() {
			if keep[name] {
				rvals[name] = v
			}
		}
		nt := relation.NewTuple(rvals, con)
		return &nt, nil
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(ps)
	for _, t := range results {
		if t == nil {
			continue
		}
		if err := out.Add(*t); err != nil {
			return nil, err
		}
	}
	rec.AddOut(out.Len())
	rec.Done(ec.ParallelFor(len(tuples)))
	return out, nil
}

// Join returns r1 ⋈ r2, the natural join. Shared attributes must agree in
// type and kind:
//
//   - shared relational attributes join when their bindings are identical,
//     where an unbound attribute is NULL and NULL is identical to NULL
//     (the paper's narrow semantics reads a missing attribute as "a null
//     value, distinct from all values in the domain" — a distinguished
//     quasi-value, so two NULLs denote the same point coordinate; note
//     this is set-semantics identity, not SQL's three-valued NULL = NULL);
//   - shared constraint attributes join by conjoining the two constraint
//     parts over the shared variables (the broad semantics make an
//     unconstrained attribute join everything);
//   - the result keeps only pairs whose combined constraint part is
//     satisfiable.
//
// Cross-product and intersection are the special cases with disjoint and
// identical schemas respectively (paper §2.4, remark under Natural-Join).
func Join(r1, r2 *relation.Relation) (*relation.Relation, error) {
	return JoinCtx(nil, r1, r2)
}

// JoinCtx is Join under an execution context: the tuple-pair merge and
// satisfiability checks fan out over ec's worker pool, indexed by the
// flattened (t1, t2) pair so output order matches the sequential
// nested-loop order exactly.
func JoinCtx(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error) {
	return joinCtx(ec, "join", "", r1, r2)
}

// joinCtx is the shared engine of Join and Intersect. hint is the
// physical planner's pairing-strategy annotation (""=decide here); the
// filter stage resolves it against the forced PlanMode and the runtime
// cost model (resolveStrategy) and records the resolved strategy plus the
// estimator's pair bound on the operator's stats, which EXPLAIN ANALYZE
// renders as strategy= / est_pairs= / act_pairs=.
func joinCtx(ec *exec.Context, op, hint string, r1, r2 *relation.Relation) (*relation.Relation, error) {
	js, err := r1.Schema().Join(r2.Schema())
	if err != nil {
		return nil, err
	}
	var sharedRel, sharedCon []string
	for _, a := range r1.Schema().Attrs() {
		if !r2.Schema().Has(a.Name) {
			continue
		}
		if a.Kind == schema.Relational {
			sharedRel = append(sharedRel, a.Name)
		} else {
			sharedCon = append(sharedCon, a.Name)
		}
	}
	t1s, t2s := r1.Tuples(), r2.Tuples()
	rec := ec.StartOp(op, len(t1s)+len(t2s))
	pairs := 0
	if len(t2s) > 0 {
		pairs = len(t1s) * len(t2s)
	}
	// refine is the expensive per-pair step, run only on pairs whose
	// relational parts are known to match. The relational-part copy
	// happens after the satisfiability reject, and JoinTuple merges both
	// sides in a single map allocation.
	refine := func(t1, t2 relation.Tuple) (*relation.Tuple, error) {
		con := t1.Constraint().Merge(t2.Constraint()).Canon()
		if !rec.Satisfiable(con) {
			return nil, nil
		}
		nt := relation.JoinTuple(t1, t2, con)
		return &nt, nil
	}
	// vectorRefine is refine with the satisfiability decision replaced by
	// exact polygon clipping when both sides carry a cached vector form:
	// same variable pair → clip (PairSat); fully disjoint variable pairs →
	// satisfiable outright (two nonempty regions over independent
	// variables always merge). Any other shape falls back to FM. PairSat
	// agrees with FM exactly, and sat pairs emit the same Merge+Canon
	// tuple, so the output bytes match refine's.
	vectorRefine := func(t1, t2 relation.Tuple) (*relation.Tuple, error) {
		f1, f2 := vector.FormOf(t1.Constraint()), vector.FormOf(t2.Constraint())
		if f1 != nil && f2 != nil {
			if f1.XVar == f2.XVar && f1.YVar == f2.YVar {
				sat, reject := vector.PairSat(f1, f2)
				rec.VectorHit(sat, reject)
				if !sat {
					return nil, nil
				}
			} else if f1.XVar != f2.XVar && f1.XVar != f2.YVar &&
				f1.YVar != f2.XVar && f1.YVar != f2.YVar {
				rec.VectorHit(true, false)
			} else {
				rec.VectorFallback()
				return refine(t1, t2)
			}
			con := t1.Constraint().Merge(t2.Constraint()).Canon()
			nt := relation.JoinTuple(t1, t2, con)
			return &nt, nil
		}
		rec.VectorFallback()
		return refine(t1, t2)
	}
	var results []*relation.Tuple
	items := pairs
	if ec.PruneEnabled() && pairs > 0 {
		// Filter stage: partition on sharedRel, envelope-reject over
		// sharedCon, strategy-switched enumeration per bucket. The
		// surviving candidates are in ascending flattened order, so
		// mapping over them preserves the sequential nested-loop output
		// order.
		plan := pairCandidates(ec, hint, t1s, t2s, sharedRel, sharedCon)
		rec.Pairing(plan.strategy, plan.estPairs)
		rec.Pairs(int64(plan.total), int64(plan.pruned()))
		items = len(plan.cands)
		step := refine
		if plan.strategy == exec.PlanVector {
			step = vectorRefine
		}
		results, err = exec.Map(ec, items, func(k int) (*relation.Tuple, error) {
			idx := plan.cands[k]
			return step(t1s[idx/len(t2s)], t2s[idx%len(t2s)])
		})
	} else {
		rec.Pairs(int64(pairs), 0)
		results, err = exec.Map(ec, pairs, func(i int) (*relation.Tuple, error) {
			t1, t2 := t1s[i/len(t2s)], t2s[i%len(t2s)]
			for _, name := range sharedRel {
				v1, _ := t1.RVal(name) // NULL when unbound
				v2, _ := t2.RVal(name)
				if !v1.Identical(v2) {
					return nil, nil
				}
			}
			return refine(t1, t2)
		})
	}
	if err != nil {
		return nil, err
	}
	out := relation.New(js)
	for _, t := range results {
		if t == nil {
			continue
		}
		if err := out.Add(*t); err != nil {
			return nil, err
		}
	}
	rec.AddOut(out.Len())
	rec.Done(ec.ParallelFor(items))
	return out, nil
}

// Intersect returns r1 ∩ r2. It requires equal schemas and is implemented
// as the natural join (of which it is the special case).
func Intersect(r1, r2 *relation.Relation) (*relation.Relation, error) {
	return IntersectCtx(nil, r1, r2)
}

// IntersectCtx is Intersect under an execution context (see JoinCtx).
func IntersectCtx(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error) {
	if !r1.Schema().Equal(r2.Schema()) {
		return nil, fmt.Errorf("cqa: intersect requires equal schemas: %s vs %s", r1.Schema(), r2.Schema())
	}
	return joinCtx(ec, "intersect", "", r1, r2)
}

// Union returns r1 ∪ r2. The schemas must be equal (as attribute sets with
// matching types and kinds).
func Union(r1, r2 *relation.Relation) (*relation.Relation, error) {
	return UnionCtx(nil, r1, r2)
}

// UnionCtx is Union under an execution context: the per-tuple
// normalisation work (satisfiability check plus simplification into
// canonical form) fans out over ec's worker pool; the dedup pass that
// follows is sequential in input order, replicating
// relation.NormalizeWith exactly, so the output is byte-identical to the
// sequential path.
func UnionCtx(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error) {
	if !r1.Schema().Equal(r2.Schema()) {
		return nil, fmt.Errorf("cqa: union requires equal schemas: %s vs %s", r1.Schema(), r2.Schema())
	}
	all := make([]relation.Tuple, 0, r1.Len()+r2.Len())
	all = append(all, r1.Tuples()...)
	all = append(all, r2.Tuples()...)
	rec := ec.StartOp("union", len(all))
	type normed struct {
		t  relation.Tuple
		ok bool
	}
	results, err := exec.Map(ec, len(all), func(i int) (normed, error) {
		t := all[i]
		if !t.Constraint().SatisfiableWith(rec.SatFunc()) {
			return normed{}, nil
		}
		nt := t.WithConstraint(t.Constraint().SimplifyWith(rec.SatFunc()).Canon())
		return normed{t: nt, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	// Dedup in input order, keyed by (relational part, constraint
	// fingerprint) and verified exactly — the NormalizeWith contract, so a
	// fingerprint collision can never merge distinct tuples.
	out := relation.New(r1.Schema())
	seen := map[string][]relation.Tuple{}
	for _, nr := range results {
		if !nr.ok {
			continue
		}
		dup := false
		k := nr.t.Key()
		for _, prev := range seen[k] {
			if prev.SameRelationalPart(nr.t) && prev.Constraint().EqualCanonical(nr.t.Constraint()) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[k] = append(seen[k], nr.t)
		if err := out.Add(nr.t); err != nil {
			return nil, err
		}
	}
	rec.AddOut(out.Len())
	rec.Done(ec.ParallelFor(len(all)))
	return out, nil
}

// Rename returns ϱ_{new|old}(r): attribute old renamed to new in the
// schema, the relational bindings, and the constraint variables.
func Rename(r *relation.Relation, old, new string) (*relation.Relation, error) {
	return RenameCtx(nil, r, old, new)
}

// RenameCtx is Rename under an execution context. Renaming is pure
// bookkeeping, so it always runs sequentially; the context only records
// its stats.
func RenameCtx(ec *exec.Context, r *relation.Relation, old, new string) (*relation.Relation, error) {
	rs, err := r.Schema().Rename(old, new)
	if err != nil {
		return nil, err
	}
	rec := ec.StartOp("rename", r.Len())
	out := relation.New(rs)
	for _, t := range r.Tuples() {
		rvals := map[string]relation.Value{}
		for name, v := range t.RVals() {
			if name == old {
				rvals[new] = v
			} else {
				rvals[name] = v
			}
		}
		if err := out.Add(relation.NewTuple(rvals, t.Constraint().Rename(old, new).Canon())); err != nil {
			return nil, err
		}
	}
	rec.AddOut(out.Len())
	rec.Done(false)
	return out, nil
}

// Difference returns r1 - r2: the points of r1 not in r2. The schemas must
// be equal.
//
// Tuples of r2 subtract from a tuple of r1 only when their relational parts
// are identical (NULL-safe identity, matching set difference in SQL);
// within such a match the constraint parts are subtracted exactly,
// producing a disjunction of constraint tuples (the closure principle at
// work: the complement of a conjunction of linear constraints expands into
// finitely many linear constraint tuples).
func Difference(r1, r2 *relation.Relation) (*relation.Relation, error) {
	return DifferenceCtx(nil, r1, r2)
}

// DifferenceCtx is Difference under an execution context: the per-tuple
// complement expansions (the heaviest CQA work) fan out over ec's worker
// pool.
//
// The subtrahends for each tuple of r1 go through the filter-and-refine
// split: the surviving subtrahend set is always {identical relational
// part ∧ envelopes not Disjoint}, but *how* it is enumerated follows the
// planner's strategy — dense scans all of r2 per tuple, sweep looks up
// the relational-part partition bucket, index probes one R*-tree built
// over all of r2's envelope boxes (precomputed sequentially: the tree is
// not safe under the worker fan-out). The survivors then pass an exact
// intersection pre-filter (Merge + sat) — subtracting a region that does
// not intersect t1 cannot change the semantics, but it would fragment the
// staircase expansion syntactically. The pre-filter runs in every mode,
// which is what keeps the output byte-identical with pruning on or off
// and across strategies: every envelope-pruned subtrahend is one the
// pre-filter's satisfiability decision rejects anyway.
func DifferenceCtx(ec *exec.Context, r1, r2 *relation.Relation) (*relation.Relation, error) {
	return differenceCtx(ec, "", r1, r2)
}

func differenceCtx(ec *exec.Context, hint string, r1, r2 *relation.Relation) (*relation.Relation, error) {
	if !r1.Schema().Equal(r2.Schema()) {
		return nil, fmt.Errorf("cqa: difference requires equal schemas: %s vs %s", r1.Schema(), r2.Schema())
	}
	t1s, t2s := r1.Tuples(), r2.Tuples()
	rec := ec.StartOp("difference", len(t1s)+len(t2s))
	prune := ec.PruneEnabled() && len(t2s) > 0
	conAttrs := r1.Schema().ConstraintNames()
	strategy := exec.PlanDense
	var part *relation.Partition
	var env1, env2 []constraint.Envelope
	var indexMatches [][]int
	if prune {
		relNames := r1.Schema().RelationalNames()
		part = relation.NewPartition(t2s, relNames)
		env1, env2 = envelopes(t1s), envelopes(t2s)
		stats := analyzePairing(env1, env2, relation.NewPartition(t1s, relNames), part, conAttrs)
		stats.elig1, stats.elig2 = countVectorEligible(t1s), countVectorEligible(t2s)
		strategy = resolveStrategy(ec, hint, stats, ec.SweepSize())
		if strategy == exec.PlanIndex {
			indexMatches = indexDiffMatches(stats.indexAttrs, t1s, t2s, env1, env2, conAttrs)
			if indexMatches == nil {
				strategy = exec.PlanDense
			}
		}
		rec.Pairing(strategy, stats.est)
	}
	rows, err := exec.Map(ec, len(t1s), func(i int) ([]relation.Tuple, error) {
		t1 := t1s[i]
		// Candidate subtrahends: relational parts must be identical, and —
		// with the filter on — envelopes must not be disjoint. All three
		// strategies produce the same match list in input order, so the
		// subtrahend order (and with it the staircase expansion) matches
		// the dense scan.
		var matches []int
		if prune {
			switch {
			case indexMatches != nil:
				matches = indexMatches[i]
			case strategy == exec.PlanSweep || strategy == exec.PlanVector:
				// Bucket lookup: same match list as the dense scan (bucket
				// lists keep input order), found without scanning all of r2.
				for _, j := range part.Lookup(t1) {
					if env1[i].Disjoint(env2[j], conAttrs) {
						continue
					}
					matches = append(matches, j)
				}
			default: // dense
				for j := range t2s {
					if !t1.SameRelationalPart(t2s[j]) || env1[i].Disjoint(env2[j], conAttrs) {
						continue
					}
					matches = append(matches, j)
				}
			}
			rec.Pairs(int64(len(t2s)), int64(len(t2s)-len(matches)))
		} else {
			for j := range t2s {
				if t1.SameRelationalPart(t2s[j]) {
					matches = append(matches, j)
				}
			}
			rec.Pairs(int64(len(t2s)), 0)
		}
		// Under PlanVector, decisions about t1's region run on its cached
		// polygon form where one exists; every vector decision agrees with
		// FM exactly, so the subtrahend list, the staircase expansion and
		// the output bytes match the FM path's.
		var f1 *vector.Form
		if strategy == exec.PlanVector {
			f1 = vector.FormOf(t1.Constraint())
		}
		// Refine, part 1 — intersection pre-filter: keep only subtrahends
		// whose region actually meets t1's.
		var subtrahends []constraint.Conjunction
		for _, j := range matches {
			if f1 != nil {
				f2 := vector.FormOf(t2s[j].Constraint())
				if f2 != nil && f2.XVar == f1.XVar && f2.YVar == f1.YVar {
					sat, reject := vector.PairSat(f1, f2)
					rec.VectorHit(sat, reject)
					if sat {
						subtrahends = append(subtrahends, t2s[j].Constraint())
					}
					continue
				}
				rec.VectorFallback()
			} else if strategy == exec.PlanVector {
				rec.VectorFallback()
			}
			if !rec.Satisfiable(t1.Constraint().Merge(t2s[j].Constraint()).Canon()) {
				continue
			}
			subtrahends = append(subtrahends, t2s[j].Constraint())
		}
		// Refine, part 2 — the staircase expansion. It prunes eagerly, so
		// every returned piece is already proven satisfiable; routing its
		// internal decisions through the recorder both memoizes them and
		// surfaces them in the stats. The pieces share t1's relational
		// part: tuples are immutable, so WithConstraint reuses the binding
		// map instead of copying it once per piece.
		//
		// With a vector form in hand the staircase decisions clip the
		// polygon instead: SubtractAllScoped hands over just the extra
		// atoms accumulated on top of t1, and the conjunction is only
		// rebuilt on the rare fallback (an atom the clipper cannot decide).
		var pieces constraint.Disjunction
		if f1 != nil {
			base := t1.Constraint()
			pieces = constraint.SubtractAllScoped(base, subtrahends, func(extras []constraint.Constraint) bool {
				if len(extras) == 0 {
					return true // t1 itself: nonempty, witnessed by its form
				}
				if sat, ok := vector.SatExtras(f1, extras); ok {
					rec.VectorHit(sat, false)
					return sat
				}
				rec.VectorFallback()
				return rec.Satisfiable(base.With(extras...))
			})
		} else {
			pieces = constraint.SubtractAllWith(t1.Constraint(), subtrahends, rec.SatFunc())
		}
		keepPieces := make([]relation.Tuple, 0, len(pieces))
		for _, con := range pieces {
			keepPieces = append(keepPieces, t1.WithConstraint(con.Canon()))
		}
		return keepPieces, nil
	})
	if err != nil {
		return nil, err
	}
	out := relation.New(r1.Schema())
	for _, pieces := range rows {
		for _, t := range pieces {
			if err := out.Add(t); err != nil {
				return nil, err
			}
		}
	}
	rec.AddOut(out.Len())
	rec.Done(ec.ParallelFor(len(t1s)))
	return out, nil
}
