package cqa

import (
	"sort"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/vector"
)

// This file is the filter stage of the binary operators' filter-and-refine
// split. The refine step — Merge+Canon plus a satisfiability decision per
// tuple pair, or the staircase subtraction in difference — is the
// quantifier-elimination cost that dominates CDB evaluation; the filter
// rejects pairs that provably cannot interact before any of it runs, using
// three cooperating mechanisms:
//
//  1. relational-part hash partitioning (relation.Partition): pairs whose
//     shared relational attributes are not NULL-safe-identical can never
//     merge, so each side is bucketed once and only matching buckets pair;
//  2. memoized envelopes (constraint.Envelope): within a bucket, a pair
//     whose envelopes are disjoint on a shared constraint attribute has an
//     unsatisfiable merged conjunction — rejected in O(shared attrs)
//     rational comparisons, no eliminator run;
//  3. strategy-switched enumeration: within a bucket the candidate pairs
//     are enumerated by one of three physical strategies, picked by the
//     planner (planner.go) — the dense nested loop, the interval sweep
//     (sort both sides on one attribute's envelope interval, plane-sweep
//     the overlaps), or the R*-tree index probe (bulk-load one side's
//     envelope boxes, probe with the other's; pairing_index.go). Under
//     PlanAuto, buckets below exec.Context.SweepSize still run dense
//     (strategy machinery costs more than the tiny loop it replaces); a
//     forced PlanMode disables that escape so equivalence tests exercise
//     the strategy they asked for.
//
// The contract that keeps outputs byte-identical to the dense nested loop:
// the surviving candidate set is exactly {bucket-matched pairs whose
// envelopes are not Disjoint}, whichever enumeration ran — the sweep and
// the index probe are both conservative superset passes (closed-endpoint
// overlap on one attribute; outward-rounded float boxes over two) with
// the full Disjoint check applied to every emitted pair — and the
// candidates are sorted into ascending flattened (i1·m + i2) order before
// the refine fan-out, which is the sequential nested-loop order. Every
// pruned pair is one the refine step would have rejected anyway, so
// pruning on and off, and every strategy, produce the same bytes.

// pairPlan is the filter stage's output for one binary-operator call.
type pairPlan struct {
	cands      []int    // surviving pairs as flattened indexes i1*m + i2, ascending
	total      int      // the dense candidate space |t1s|·|t2s|
	strategy   string   // the resolved pairing strategy (exec.PlanDense/Sweep/Index/Vector)
	enum       string   // the candidate-enumeration strategy (PlanVector substitutes the refine step, not the enumeration; equals strategy otherwise)
	estPairs   int64    // the estimator's upper bound on surviving candidates
	sweepAttr  string   // the sweep's sort attribute; "" = none bounded on both sides
	indexAttrs []string // the index probe's dimensions; nil = index not applicable
}

// pruned returns how many pairs the filter rejected.
func (p pairPlan) pruned() int { return p.total - len(p.cands) }

// envelopes computes (memoized) envelopes for every tuple's constraint part.
func envelopes(ts []relation.Tuple) []constraint.Envelope {
	out := make([]constraint.Envelope, len(ts))
	for i := range ts {
		out[i] = ts[i].Constraint().Envelope()
	}
	return out
}

// countVectorEligible counts the tuples whose constraint part has an
// exact polygon form (vector.FormOf non-nil). The probe is memoized on
// the canonical conjunction, so the forms computed here are the same
// ones the refine stage reuses — counting is not wasted work.
func countVectorEligible(ts []relation.Tuple) int {
	n := 0
	for i := range ts {
		if vector.FormOf(ts[i].Constraint()) != nil {
			n++
		}
	}
	return n
}

// pairCandidates runs the filter stage over t1s × t2s: partition on the
// shared relational attributes, analyze the pairing (estimate.go),
// resolve the pairing strategy (forced PlanMode > planner hint > cost
// model; planner.go), then enumerate candidates per bucket with that
// strategy (see the file comment).
func pairCandidates(ec *exec.Context, hint string, t1s, t2s []relation.Tuple, sharedRel, sharedCon []string) pairPlan {
	n, m := len(t1s), len(t2s)
	if n == 0 || m == 0 {
		return pairPlan{strategy: exec.PlanDense}
	}
	plan := pairPlan{total: n * m}
	env1, env2 := envelopes(t1s), envelopes(t2s)
	var p1, p2 *relation.Partition
	if len(sharedRel) > 0 {
		p1 = relation.NewPartition(t1s, sharedRel)
		p2 = relation.NewPartition(t2s, sharedRel)
	}
	stats := analyzePairing(env1, env2, p1, p2, sharedCon)
	stats.elig1, stats.elig2 = countVectorEligible(t1s), countVectorEligible(t2s)
	plan.strategy = resolveStrategy(ec, hint, stats, ec.SweepSize())
	plan.enum = plan.strategy
	if plan.strategy == exec.PlanVector {
		// Vector substitutes the refine step only; candidates are still
		// enumerated by whichever of dense/sweep/index the cost model
		// picks, keeping the candidate set strategy-independent.
		plan.enum = decideEnum(stats, ec.SweepSize())
	}
	plan.estPairs = stats.est
	plan.sweepAttr = stats.sweepAttr
	plan.indexAttrs = stats.indexAttrs
	auto := ec.Plan() == exec.PlanAuto
	emit := func(i, j int) {
		if !env1[i].Disjoint(env2[j], sharedCon) {
			plan.cands = append(plan.cands, i*m+j)
		}
	}
	dense := func(as, bs []int) {
		for _, i := range as {
			for _, j := range bs {
				emit(i, j)
			}
		}
	}
	runBucket := func(as, bs []int) {
		strat := plan.enum
		if auto && strat != exec.PlanDense && len(as)*len(bs) < ec.SweepSize() {
			strat = exec.PlanDense
		}
		switch strat {
		case exec.PlanSweep:
			sweepPairs(plan.sweepAttr, as, bs, env1, env2, emit)
		case exec.PlanIndex:
			// Buffer the probe's raw hits and commit only on success: a
			// mid-probe failure would otherwise leave half a bucket
			// emitted before the dense fallback re-enumerates it.
			var raw []int
			ok := indexPairs(plan.indexAttrs, as, bs, env1, env2, func(i, j int) {
				raw = append(raw, i*m+j)
			})
			if !ok {
				dense(as, bs)
				return
			}
			for _, f := range raw {
				emit(f/m, f%m)
			}
		default:
			dense(as, bs)
		}
	}
	if p1 == nil {
		as, bs := make([]int, n), make([]int, m)
		for i := range as {
			as[i] = i
		}
		for j := range bs {
			bs[j] = j
		}
		runBucket(as, bs)
	} else {
		for _, key := range p1.Keys() {
			bs := p2.Bucket(key)
			if len(bs) == 0 {
				continue
			}
			runBucket(p1.Bucket(key), bs)
		}
	}
	// Buckets emit in bucket order; the refine fan-out must see the
	// sequential nested-loop order.
	sort.Ints(plan.cands)
	return plan
}

// chooseSweepAttr picks the shared constraint attribute the interval
// sweep sorts on: the one where the most tuples on both sides carry
// two-sided envelope bounds (score = bounded₁·bounded₂ — a proxy for how
// selective sorting on that attribute will be). Returns "" when no
// attribute is bounded on both sides; the sweep would then degenerate to
// the dense loop anyway.
//
// Tie-breaking is deterministic and documented: candidates are visited
// in lexicographic attribute order (the schema's declaration order never
// matters) and a later attribute replaces the incumbent only with a
// strictly greater score, so on a tie the lexicographically first
// attribute among the highest-scoring ones wins. The regression test
// TestChooseSweepAttrTieBreak pins this.
func chooseSweepAttr(sharedCon []string, env1, env2 []constraint.Envelope) string {
	attrs := append([]string{}, sharedCon...)
	sort.Strings(attrs) // deterministic choice whatever the schema order
	best, bestScore := "", 0
	for _, a := range attrs {
		score := countBounded(env1, a) * countBounded(env2, a)
		if score > bestScore { // strict: ties keep the lex-first incumbent
			best, bestScore = a, score
		}
	}
	return best
}

func countBounded(envs []constraint.Envelope, attr string) int {
	n := 0
	for _, e := range envs {
		if iv, ok := e.Interval(attr); ok && iv.HasLower && iv.HasUpper {
			n++
		}
	}
	return n
}

// sweepItem is one tuple's envelope interval in the sweep attribute.
// A missing bound reads as the corresponding infinity.
type sweepItem struct {
	idx          int
	lo, hi       rational.Rat
	hasLo, hasHi bool
}

// sweepPairs enumerates, by a two-pointer sorted merge over the envelope
// intervals of attr, every (i ∈ as, j ∈ bs) pair whose closed intervals
// overlap, calling emit exactly once per such pair. Open endpoints are
// treated as closed here — a conservative superset that the exact
// Disjoint check inside emit narrows — so no pair the dense loop would
// keep is ever missed. Tuples with an empty interval in attr are dropped
// up front; the dense path drops them too (Disjoint reports empty
// intervals on sight), keeping the two candidate sets identical.
func sweepPairs(attr string, as, bs []int, env1, env2 []constraint.Envelope, emit func(i, j int)) {
	sa := sweepItems(attr, as, env1)
	sb := sweepItems(attr, bs, env2)
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		if !loLess(sb[j], sa[i]) { // sa[i] starts first (ties go to the a side)
			a := sa[i]
			for k := j; k < len(sb) && startsBeforeEnd(sb[k], a); k++ {
				emit(a.idx, sb[k].idx)
			}
			i++
		} else {
			b := sb[j]
			for k := i; k < len(sa) && startsBeforeEnd(sa[k], b); k++ {
				emit(sa[k].idx, b.idx)
			}
			j++
		}
	}
}

// sweepItems extracts and sorts one side's intervals by start, -∞ first.
func sweepItems(attr string, idxs []int, envs []constraint.Envelope) []sweepItem {
	out := make([]sweepItem, 0, len(idxs))
	for _, idx := range idxs {
		iv, ok := envs[idx].Interval(attr)
		if ok && iv.IsEmpty() {
			continue // unsatisfiable on its own; the dense path prunes it via Disjoint
		}
		it := sweepItem{idx: idx}
		if ok {
			it.lo, it.hasLo = iv.Lower, iv.HasLower
			it.hi, it.hasHi = iv.Upper, iv.HasUpper
		}
		out = append(out, it)
	}
	sort.Slice(out, func(x, y int) bool { return loLess(out[x], out[y]) })
	return out
}

// loLess is the sweep's total order on interval starts: -∞ first, then by
// start value, ties by tuple index.
func loLess(a, b sweepItem) bool {
	if !a.hasLo || !b.hasLo {
		if a.hasLo != b.hasLo {
			return !a.hasLo
		}
		return a.idx < b.idx
	}
	if c := a.lo.Cmp(b.lo); c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}

// startsBeforeEnd reports x.lo ≤ y.hi under closed-endpoint semantics
// with infinities — the sweep's conservative overlap half-condition (the
// other half, y.lo ≤ x.hi, is implied by the merge order).
func startsBeforeEnd(x, y sweepItem) bool {
	if !x.hasLo || !y.hasHi {
		return true
	}
	return x.lo.Cmp(y.hi) <= 0
}
