package cqa

import (
	"sort"

	"cdb/internal/constraint"
	"cdb/internal/relation"
)

// This file is the cardinality/selectivity side of the physical planner:
// it condenses one binary-operator input pair into the numbers the cost
// model (planner.go) ranks strategies with, built from the two filter
// mechanisms' own data structures — relation.Partition buckets for the
// relational part and memoized constraint.Envelope intervals for the
// constraint part. Because the estimates count exactly the pairs the
// filter stage can keep (bucket-matched ∧ per-attribute interval
// overlap), est is a true upper bound on the surviving candidates: the
// est_pairs ≥ act_pairs invariant EXPLAIN ANALYZE exposes and the
// property tests pin.

// pairStats is the estimator's summary of one t1s × t2s pairing problem.
type pairStats struct {
	n, m         int              // input sizes
	relPairs     int64            // pairs whose relational parts match (n·m with no shared relational attrs)
	overlap      map[string]int64 // per shared constraint attribute: pairs whose envelope intervals intersect
	sweepAttr    string           // the interval sweep's sort attribute ("" = none bounded on both sides)
	indexAttrs   []string         // the R*-tree strategy's dimensions, best-scored first (nil = index not applicable)
	est          int64            // min(relPairs, min over overlap): upper bound on surviving candidates
	elig1, elig2 int              // tuples per side whose constraint part is vector-eligible (vector.FormOf != nil)
}

// vectorFrac estimates the fraction of candidate pairs the vector fast
// path can decide without FM: both tuples eligible, assuming independence
// between the sides.
func (s pairStats) vectorFrac() float64 {
	if s.n == 0 || s.m == 0 {
		return 0
	}
	return float64(s.elig1) / float64(s.n) * float64(s.elig2) / float64(s.m)
}

// estSweep bounds the pairs the interval sweep enumerates: overlaps on
// the sweep attribute, further capped by the bucket structure it runs in.
func (s pairStats) estSweep() int64 {
	if s.sweepAttr == "" {
		return s.relPairs
	}
	return min64(s.relPairs, s.overlap[s.sweepAttr])
}

// estIndex bounds the pairs the R*-tree probe emits: pairs overlapping
// on every indexed dimension, so the tightest single dimension bounds it.
func (s pairStats) estIndex() int64 {
	out := s.relPairs
	for _, a := range s.indexAttrs {
		out = min64(out, s.overlap[a])
	}
	return out
}

// relOverlapPairs counts the pairs with NULL-safe-identical relational
// parts: Σ over shared bucket keys of |bucket1|·|bucket2| — exact, since
// the partitions were built on the same attribute list.
func relOverlapPairs(p1, p2 *relation.Partition) int64 {
	var total int64
	for _, key := range p1.Keys() {
		total += int64(len(p1.Bucket(key))) * int64(len(p2.Bucket(key)))
	}
	return total
}

// analyzePairing computes the planner's estimates for one pairing
// problem. p1/p2 are the relational-part partitions (nil when there are
// no shared relational attributes, meaning every pair bucket-matches).
func analyzePairing(env1, env2 []constraint.Envelope, p1, p2 *relation.Partition, sharedCon []string) pairStats {
	s := pairStats{n: len(env1), m: len(env2)}
	s.relPairs = int64(s.n) * int64(s.m)
	if p1 != nil && p2 != nil {
		s.relPairs = relOverlapPairs(p1, p2)
	}
	s.sweepAttr = chooseSweepAttr(sharedCon, env1, env2)
	s.indexAttrs = chooseIndexAttrs(sharedCon, env1, env2)
	s.est = s.relPairs
	if len(sharedCon) > 0 {
		s.overlap = make(map[string]int64, len(sharedCon))
		for _, a := range sharedCon {
			o := constraint.AttrOverlapCount(env1, env2, a)
			s.overlap[a] = o
			s.est = min64(s.est, o)
		}
	}
	return s
}

// chooseIndexAttrs picks the R*-tree strategy's dimensions: up to two
// shared constraint attributes, ranked by the same boundedness score as
// chooseSweepAttr (bounded₁·bounded₂, ties broken lexicographically so
// the choice is deterministic whatever the schema order), keeping only
// attributes bounded somewhere on both sides — a dimension nobody bounds
// prunes nothing and only widens the tree's boxes. Two dimensions is
// where the index earns its keep over the one-attribute sweep: the tree
// rejects on the conjunction of overlaps, the sweep on a single one.
func chooseIndexAttrs(sharedCon []string, env1, env2 []constraint.Envelope) []string {
	attrs := append([]string{}, sharedCon...)
	sort.Strings(attrs)
	type scored struct {
		attr  string
		score int
	}
	var ranked []scored
	for _, a := range attrs {
		if score := countBounded(env1, a) * countBounded(env2, a); score > 0 {
			ranked = append(ranked, scored{a, score})
		}
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
	if len(ranked) > 2 {
		ranked = ranked[:2]
	}
	out := make([]string, 0, len(ranked))
	for _, r := range ranked {
		out = append(out, r.attr)
	}
	return out
}

func min64(a, b int64) int64 {
	if b < a {
		return b
	}
	return a
}
