package cqa

import (
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
)

// TestSatCacheOutputIdentical asserts the determinism contract of the
// memoized engine: with the sat-cache on, every operator's output is
// byte-identical (tuples and order) to the cache-off run, at parallelism 1
// and 4. Run under -race by scripts/check.sh, this also exercises the
// cache's concurrency story through the worker pool.
func TestSatCacheOutputIdentical(t *testing.T) {
	cond := Condition{
		AttrCmpConst("x", OpLe, rational.FromInt(1500)),
		AttrCmpConst("y", OpNe, rational.FromInt(700)),
		StrNe("id", "b3"),
	}
	for _, seed := range []int64{1, 42} {
		r1, r2 := parInputs(t, seed, 40, 36, 5)
		ops := map[string]func(*exec.Context) (*relation.Relation, error){
			"select":     func(ec *exec.Context) (*relation.Relation, error) { return SelectCtx(ec, r1, cond) },
			"project":    func(ec *exec.Context) (*relation.Relation, error) { return ProjectCtx(ec, r1, "id", "x") },
			"join":       func(ec *exec.Context) (*relation.Relation, error) { return JoinCtx(ec, r1, r2) },
			"intersect":  func(ec *exec.Context) (*relation.Relation, error) { return IntersectCtx(ec, r1, r2) },
			"union":      func(ec *exec.Context) (*relation.Relation, error) { return UnionCtx(ec, r1, r2) },
			"difference": func(ec *exec.Context) (*relation.Relation, error) { return DifferenceCtx(ec, r1, r2) },
		}
		for name, op := range ops {
			for _, par := range []int{1, 4} {
				off := &exec.Context{Parallelism: par, SeqThreshold: 1}
				want, err := op(off)
				if err != nil {
					t.Fatalf("seed %d %s par %d cache-off: %v", seed, name, par, err)
				}
				on := &exec.Context{Parallelism: par, SeqThreshold: 1,
					SatCache: constraint.NewSatCache(0)}
				got, err := op(on)
				if err != nil {
					t.Fatalf("seed %d %s par %d cache-on: %v", seed, name, par, err)
				}
				if dump(got) != dump(want) {
					t.Errorf("seed %d: %s at par %d diverges with the sat-cache on\noff:\n%s\non:\n%s",
						seed, name, par, dump(want), dump(got))
				}
			}
		}
	}
}

// TestSatCacheWarmReuse checks that a cache shared across repeated operator
// runs actually hits — the warm-workload scenario cdbbench's canon
// experiment measures — and that the per-operator stats account for every
// decision as a hit or a miss.
func TestSatCacheWarmReuse(t *testing.T) {
	r1, r2 := parInputs(t, 7, 30, 30, 0)
	r2b, err := Rename(r2, "id", "id2")
	if err != nil {
		t.Fatal(err)
	}
	cache := constraint.NewSatCache(1 << 14)
	var want string
	for round := 0; round < 2; round++ {
		// Force a non-vector plan: this test exercises the sat cache, and
		// the vector fast path would decide these spatial pairs without
		// ever consulting the oracle.
		ec := &exec.Context{Parallelism: 4, SeqThreshold: 1, SatCache: cache, PlanMode: exec.PlanSweep}
		out, err := JoinCtx(ec, r1, r2b)
		if err != nil {
			t.Fatal(err)
		}
		if round == 0 {
			want = dump(out)
		} else if dump(out) != want {
			t.Fatal("warm run output diverges from cold run")
		}
		s := ec.Stats()[0]
		if s.CacheHits+s.CacheMisses != s.SatChecks {
			t.Fatalf("round %d: hits %d + misses %d != sat-checks %d",
				round, s.CacheHits, s.CacheMisses, s.SatChecks)
		}
		if round == 1 && s.CacheHits != s.SatChecks {
			t.Errorf("warm round: %d of %d decisions missed a fully warmed cache",
				s.CacheMisses, s.SatChecks)
		}
	}
	if st := cache.Stats(); st.Hits == 0 || st.Collisions != 0 {
		t.Errorf("cache stats after warm reuse: %s", st)
	}
}
