package cqa

import (
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func ge(v, k string) constraint.Constraint { return constraint.GeConst(v, q(k)) }
func le(v, k string) constraint.Constraint { return constraint.LeConst(v, q(k)) }
func eq(v, k string) constraint.Constraint { return constraint.EqConst(v, q(k)) }

// TestMissingAttributeInconsistency reproduces the paper's Example 2 and
// Proposition 1: the same data and query give different answers depending
// on the C/R flag of the missing attribute — the broad (constraint) reading
// returns {(x=1, y=17)}, the narrow (relational) reading returns ∅.
func TestMissingAttributeInconsistency(t *testing.T) {
	query := Condition{AttrCmpConst("y", OpEq, q("17"))}

	// Broad: y is a constraint attribute.
	broadSchema := schema.MustNew(schema.Con("x"), schema.Con("y"))
	broad := relation.New(broadSchema)
	broad.MustAdd(relation.ConstraintTuple(constraint.And(eq("x", "1"))))
	got, err := Select(broad, query)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("broad: got %d tuples, want 1", got.Len())
	}
	ok, err := got.Contains(relation.Point{"x": relation.Rat(q("1")), "y": relation.Rat(q("17"))})
	if err != nil || !ok {
		t.Errorf("broad: (1,17) not in result: %v %v", ok, err)
	}

	// Narrow: y is a relational attribute; the tuple has y = NULL.
	narrowSchema := schema.MustNew(schema.Con("x"), schema.Rel("y", schema.Rational))
	narrow := relation.New(narrowSchema)
	narrow.MustAdd(relation.ConstraintTuple(constraint.And(eq("x", "1"))))
	got2, err := Select(narrow, query)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 0 {
		t.Errorf("narrow: got %d tuples, want 0 (the employee whose age is missing must not match \"age=40\")", got2.Len())
	}
}

// TestHeterogeneousExample3 reproduces the paper's Example 3: R = {(x=1),
// (y=1), (x=17,y=17)} with schema [x: relational, y: constraint]. The
// asymmetric flags give an asymmetric but consistent interpretation.
func TestHeterogeneousExample3(t *testing.T) {
	s := schema.MustNew(schema.Rel("x", schema.Rational), schema.Con("y"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"x": relation.Rat(q("1"))}, constraint.True()))
	r.MustAdd(relation.ConstraintTuple(constraint.And(eq("y", "1"))))
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"x": relation.Rat(q("17"))},
		constraint.And(eq("y", "17"))))

	// ς_{x=17} R returns {(x=17, y=17)} only: the (y=1) tuple has x=NULL.
	rx, err := Select(r, Condition{AttrCmpConst("x", OpEq, q("17"))})
	if err != nil {
		t.Fatal(err)
	}
	if rx.Len() != 1 {
		t.Fatalf("select x=17: %d tuples, want 1:\n%s", rx.Len(), rx)
	}
	vx, _ := rx.Tuples()[0].RVal("x")
	if !vx.Equal(relation.Rat(q("17"))) {
		t.Errorf("select x=17 returned tuple with x=%s", vx)
	}

	// ς_{y=17} R returns {(x=1, y=17), (x=17, y=17)}: the x=1 tuple's
	// unconstrained y is interpreted broadly.
	ry, err := Select(r, Condition{AttrCmpConst("y", OpEq, q("17"))})
	if err != nil {
		t.Fatal(err)
	}
	if ry.Len() != 2 {
		t.Fatalf("select y=17: %d tuples, want 2:\n%s", ry.Len(), ry)
	}
	seen := map[string]bool{}
	for _, tp := range ry.Tuples() {
		v, ok := tp.RVal("x")
		if !ok {
			t.Fatalf("tuple with NULL x in result: %s", tp)
		}
		r, _ := v.AsRat()
		seen[r.String()] = true
		if !tp.Constraint().Entails(eq("y", "17")) {
			t.Errorf("result tuple does not pin y=17: %s", tp)
		}
	}
	if !seen["1"] || !seen["17"] {
		t.Errorf("select y=17 returned x values %v, want {1, 17}", seen)
	}
}

func landSchema() schema.Schema {
	return schema.MustNew(schema.Rel("landId", schema.String), schema.Con("x"), schema.Con("y"))
}

func landRel(t *testing.T) *relation.Relation {
	t.Helper()
	r := relation.New(landSchema())
	// Parcel A: [0,2]x[0,2]; parcel B: [3,5]x[0,1].
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"landId": relation.Str("A")},
		constraint.And(ge("x", "0"), le("x", "2"), ge("y", "0"), le("y", "2"))))
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"landId": relation.Str("B")},
		constraint.And(ge("x", "3"), le("x", "5"), ge("y", "0"), le("y", "1"))))
	return r
}

func TestSelectStringAtom(t *testing.T) {
	r := landRel(t)
	got, err := Select(r, Condition{StrEq("landId", "A")})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("got %d tuples", got.Len())
	}
	ne, err := Select(r, Condition{StrNe("landId", "A")})
	if err != nil {
		t.Fatal(err)
	}
	if ne.Len() != 1 {
		t.Fatalf("!= got %d tuples", ne.Len())
	}
	v, _ := ne.Tuples()[0].RVal("landId")
	if !v.Equal(relation.Str("B")) {
		t.Errorf("!= kept %s", v)
	}
	// Attribute-vs-attribute string comparison.
	s2 := schema.MustNew(schema.Rel("a", schema.String), schema.Rel("b", schema.String))
	r2 := relation.New(s2)
	r2.MustAdd(relation.NewTuple(map[string]relation.Value{"a": relation.Str("x"), "b": relation.Str("x")}, constraint.True()))
	r2.MustAdd(relation.NewTuple(map[string]relation.Value{"a": relation.Str("x"), "b": relation.Str("y")}, constraint.True()))
	r2.MustAdd(relation.NewTuple(map[string]relation.Value{"a": relation.Str("x")}, constraint.True())) // b NULL
	eqr, err := Select(r2, Condition{StrEqAttr("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if eqr.Len() != 1 {
		t.Errorf("a=b matched %d tuples, want 1 (NULL must not match)", eqr.Len())
	}
}

func TestSelectLinearOverConstraintAttrs(t *testing.T) {
	r := landRel(t)
	// x >= 4 clips parcel B and removes parcel A.
	got, err := Select(r, Condition{AttrCmpConst("x", OpGe, q("4"))})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("got %d tuples:\n%s", got.Len(), got)
	}
	iv, ok := got.Tuples()[0].Constraint().VarBounds("x")
	if !ok || !iv.Lower.Equal(q("4")) || !iv.Upper.Equal(q("5")) {
		t.Errorf("clipped bounds = %+v", iv)
	}
	// Multi-attribute linear atom: x + y <= 1 keeps only a corner of A.
	got2, err := Select(r, Condition{Linear(
		constraint.Var("x").Add(constraint.Var("y")), OpLe, constraint.ConstInt(1))})
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 1 {
		t.Fatalf("x+y<=1: got %d tuples", got2.Len())
	}
	id, _ := got2.Tuples()[0].RVal("landId")
	if !id.Equal(relation.Str("A")) {
		t.Errorf("x+y<=1 kept %s", id)
	}
}

func TestSelectNeSplitsRegion(t *testing.T) {
	r := landRel(t)
	got, err := Select(r, Condition{AttrCmpConst("x", OpNe, q("1"))})
	if err != nil {
		t.Fatal(err)
	}
	// Parcel A splits into x<1 and x>1; parcel B (x>=3) survives whole via
	// the x>1 branch only.
	if got.Len() != 3 {
		t.Fatalf("!= split produced %d tuples, want 3:\n%s", got.Len(), got)
	}
	probe := func(id, x, y string) bool {
		ok, err := got.Contains(relation.Point{
			"landId": relation.Str(id), "x": relation.Rat(q(x)), "y": relation.Rat(q(y))})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if probe("A", "1", "1") {
		t.Error("x=1 survived x!=1")
	}
	if !probe("A", "1/2", "1") || !probe("A", "3/2", "1") || !probe("B", "4", "1/2") {
		t.Error("points with x!=1 lost")
	}
}

func TestSelectOnRelationalRationalAttr(t *testing.T) {
	// Employee(age relational-rational): the paper's "whose age is 40".
	s := schema.MustNew(schema.Rel("name", schema.String), schema.Rel("age", schema.Rational))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("ann"), "age": relation.Rat(q("40"))}, constraint.True()))
	r.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("bob")}, constraint.True())) // age missing
	got, err := Select(r, Condition{AttrCmpConst("age", OpEq, q("40"))})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("got %d tuples, want only ann", got.Len())
	}
	name, _ := got.Tuples()[0].RVal("name")
	if !name.Equal(relation.Str("ann")) {
		t.Errorf("got %s", name)
	}
	// Range comparison against bound values.
	older, err := Select(r, Condition{AttrCmpConst("age", OpGt, q("30"))})
	if err != nil {
		t.Fatal(err)
	}
	if older.Len() != 1 {
		t.Errorf("age>30 matched %d", older.Len())
	}
}

func TestSelectValidation(t *testing.T) {
	r := landRel(t)
	if _, err := Select(r, Condition{AttrCmpConst("nope", OpEq, q("1"))}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Select(r, Condition{StrEq("x", "A")}); err == nil {
		t.Error("string atom over rational attribute accepted")
	}
	if _, err := Select(r, Condition{AttrCmpConst("landId", OpEq, q("1"))}); err == nil {
		t.Error("linear atom over string attribute accepted")
	}
	if _, err := Select(r, Condition{StringAtom{Attr: "landId", Op: OpLt, Lit: "A", IsLit: true}}); err == nil {
		t.Error("< on strings accepted")
	}
}

func TestProject(t *testing.T) {
	r := landRel(t)
	got, err := Project(r, "landId", "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Has("y") {
		t.Fatal("y survived projection")
	}
	// Parcel A projects to x in [0,2].
	sel, err := Select(got, Condition{StrEq("landId", "A")})
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := sel.Tuples()[0].Constraint().VarBounds("x")
	if !ok || !iv.Lower.IsZero() || !iv.Upper.Equal(q("2")) {
		t.Errorf("projected bounds = %+v", iv)
	}
	// Projection eliminates, not truncates: triangle x+y<=2, x,y>=0 on x
	// must give [0,2] even though no input constraint mentions only x.
	tri := relation.New(schema.MustNew(schema.Con("x"), schema.Con("y")))
	tri.MustAdd(relation.ConstraintTuple(constraint.And(
		ge("x", "0"), ge("y", "0"),
		constraint.MustNew(constraint.Var("x").Add(constraint.Var("y")), "<=", constraint.ConstInt(2)))))
	px, err := Project(tri, "x")
	if err != nil {
		t.Fatal(err)
	}
	iv2, _ := px.Tuples()[0].Constraint().VarBounds("x")
	if !iv2.Lower.IsZero() || !iv2.Upper.Equal(q("2")) {
		t.Errorf("triangle projection = %+v", iv2)
	}
	if _, err := Project(r, "ghost"); err == nil {
		t.Error("projecting unknown column accepted")
	}
}

func TestJoinSharedConstraintAttrs(t *testing.T) {
	// Land ⋈ Hurricane on shared constraint attrs x, y (paper Query 2 core).
	land := landRel(t)
	hur := relation.New(schema.MustNew(schema.Con("t"), schema.Con("x"), schema.Con("y")))
	// Path segment: x = t, y = 1, 0 <= t <= 4 — crosses A (x<=2) and B (3<=x).
	hur.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.MustNew(constraint.Var("x"), "=", constraint.Var("t")),
		eq("y", "1"), ge("t", "0"), le("t", "4"))))
	j, err := Join(land, hur)
	if err != nil {
		t.Fatal(err)
	}
	// A joins (t in [0,2]), B joins (t in [3,4]).
	if j.Len() != 2 {
		t.Fatalf("join produced %d tuples:\n%s", j.Len(), j)
	}
	ids, err := Project(j, "landId")
	if err != nil {
		t.Fatal(err)
	}
	if ids.Len() != 2 {
		t.Errorf("ids = %s", ids)
	}
	for _, tp := range j.Tuples() {
		id, _ := tp.RVal("landId")
		iv, ok := tp.Constraint().VarBounds("t")
		if !ok {
			t.Fatalf("joined tuple unsat: %s", tp)
		}
		switch {
		case id.Equal(relation.Str("A")):
			if !iv.Lower.IsZero() || !iv.Upper.Equal(q("2")) {
				t.Errorf("A time window = %+v", iv)
			}
		case id.Equal(relation.Str("B")):
			if !iv.Lower.Equal(q("3")) || !iv.Upper.Equal(q("4")) {
				t.Errorf("B time window = %+v", iv)
			}
		}
	}
}

func TestJoinSharedRelationalAttrs(t *testing.T) {
	owners := relation.New(schema.MustNew(
		schema.Rel("name", schema.String), schema.Rel("landId", schema.String)))
	owners.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("ann"), "landId": relation.Str("A")}, constraint.True()))
	owners.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("bob")}, constraint.True())) // landId NULL
	j, err := Join(owners, landRel(t))
	if err != nil {
		t.Fatal(err)
	}
	// ann joins parcel A; bob's NULL landId joins nothing (narrow).
	if j.Len() != 1 {
		t.Fatalf("join len = %d:\n%s", j.Len(), j)
	}
	name, _ := j.Tuples()[0].RVal("name")
	if !name.Equal(relation.Str("ann")) {
		t.Errorf("joined owner = %s", name)
	}
}

func TestJoinDisjointSchemasIsCrossProduct(t *testing.T) {
	a := relation.New(schema.MustNew(schema.Con("x")))
	a.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "0"), le("x", "1"))))
	a.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "5"), le("x", "6"))))
	b := relation.New(schema.MustNew(schema.Con("y")))
	b.MustAdd(relation.ConstraintTuple(constraint.And(ge("y", "0"), le("y", "1"))))
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 {
		t.Errorf("cross product size = %d", j.Len())
	}
	if !j.Schema().Has("x") || !j.Schema().Has("y") {
		t.Error("cross product schema wrong")
	}
}

func TestJoinSchemaConflict(t *testing.T) {
	a := relation.New(schema.MustNew(schema.Con("x")))
	b := relation.New(schema.MustNew(schema.Rel("x", schema.Rational)))
	if _, err := Join(a, b); err == nil {
		t.Error("kind conflict accepted")
	}
}

func TestIntersect(t *testing.T) {
	s := schema.MustNew(schema.Con("x"))
	a := relation.New(s)
	a.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "0"), le("x", "2"))))
	b := relation.New(s)
	b.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "1"), le("x", "3"))))
	got, err := Intersect(a, b)
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := got.Tuples()[0].Constraint().VarBounds("x")
	if !ok || !iv.Lower.Equal(q("1")) || !iv.Upper.Equal(q("2")) {
		t.Errorf("intersection = %+v", iv)
	}
	c := relation.New(schema.MustNew(schema.Con("y")))
	if _, err := Intersect(a, c); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestUnion(t *testing.T) {
	s := schema.MustNew(schema.Con("x"))
	a := relation.New(s)
	a.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "0"), le("x", "1"))))
	b := relation.New(s)
	b.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "2"), le("x", "3"))))
	got, err := Union(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Errorf("union len = %d", got.Len())
	}
	// Duplicate tuples are deduplicated.
	dup, err := Union(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Len() != 1 {
		t.Errorf("self-union len = %d", dup.Len())
	}
	c := relation.New(schema.MustNew(schema.Con("y")))
	if _, err := Union(a, c); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestRename(t *testing.T) {
	r := landRel(t)
	got, err := Rename(r, "x", "lon")
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Has("x") || !got.Schema().Has("lon") {
		t.Fatal("schema rename failed")
	}
	for _, tp := range got.Tuples() {
		if tp.Constraint().HasVar("x") {
			t.Error("constraint variable not renamed")
		}
	}
	got2, err := Rename(got, "landId", "id")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got2.Tuples()[0].RVal("id"); !ok {
		t.Error("relational binding not renamed")
	}
	if _, err := Rename(r, "x", "y"); err == nil {
		t.Error("rename onto existing attribute accepted")
	}
}

func TestDifference(t *testing.T) {
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"))
	mk := func(id string, lo, hi string) relation.Tuple {
		return relation.NewTuple(map[string]relation.Value{"id": relation.Str(id)},
			constraint.And(ge("x", lo), le("x", hi)))
	}
	r1 := relation.New(s)
	r1.MustAdd(mk("A", "0", "4"))
	r1.MustAdd(mk("B", "0", "4"))
	r2 := relation.New(s)
	r2.MustAdd(mk("A", "1", "2"))
	got, err := Difference(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	probe := func(id, x string) bool {
		ok, err := got.Contains(relation.Point{"id": relation.Str(id), "x": relation.Rat(q(x))})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	// A loses [1,2]; B untouched.
	if probe("A", "3/2") {
		t.Error("A kept subtracted region")
	}
	if !probe("A", "1/2") || !probe("A", "3") || !probe("B", "3/2") {
		t.Error("difference removed too much")
	}
	// Boundary: endpoints of the closed subtrahend are removed.
	if probe("A", "1") || probe("A", "2") {
		t.Error("closed endpoints survived")
	}
	// NULL-safe matching: subtracting a NULL-id tuple affects only NULL-id
	// tuples.
	r3 := relation.New(s)
	r3.MustAdd(relation.ConstraintTuple(constraint.And(ge("x", "0"), le("x", "4"))))
	got2, err := Difference(r1, r3)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equivalent(r1) {
		t.Error("NULL-id subtrahend affected bound-id tuples")
	}
	// Schema check.
	other := relation.New(schema.MustNew(schema.Con("x")))
	if _, err := Difference(r1, other); err == nil {
		t.Error("schema mismatch accepted")
	}
}

func TestDifferenceUpwardCompatible(t *testing.T) {
	// Pure relational difference must behave exactly like set difference.
	s := schema.MustNew(schema.Rel("id", schema.String))
	mk := func(ids ...string) *relation.Relation {
		r := relation.New(s)
		for _, id := range ids {
			r.MustAdd(relation.NewTuple(map[string]relation.Value{"id": relation.Str(id)}, constraint.True()))
		}
		return r
	}
	got, err := Difference(mk("a", "b", "c"), mk("b"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("difference len = %d:\n%s", got.Len(), got)
	}
	for _, tp := range got.Tuples() {
		v, _ := tp.RVal("id")
		if sv, _ := v.AsString(); sv == "b" {
			t.Error("subtracted tuple survived")
		}
	}
}
