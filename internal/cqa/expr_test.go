package cqa

import (
	"math/rand"
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	owners := relation.New(schema.MustNew(
		schema.Rel("name", schema.String), schema.Rel("landId", schema.String), schema.Con("t")))
	owners.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("ann"), "landId": relation.Str("A")},
		constraint.And(ge("t", "0"), le("t", "5"))))
	owners.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("bob"), "landId": relation.Str("A")},
		constraint.And(ge("t", "5"), le("t", "10"))))
	owners.MustAdd(relation.NewTuple(map[string]relation.Value{
		"name": relation.Str("cat"), "landId": relation.Str("B")},
		constraint.And(ge("t", "0"), le("t", "10"))))
	return Env{"Landownership": owners, "Land": landRelForEnv()}
}

func landRelForEnv() *relation.Relation {
	r := relation.New(schema.MustNew(
		schema.Rel("landId", schema.String), schema.Con("x"), schema.Con("y")))
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"landId": relation.Str("A")},
		constraint.And(ge("x", "0"), le("x", "2"), ge("y", "0"), le("y", "2"))))
	r.MustAdd(relation.NewTuple(map[string]relation.Value{"landId": relation.Str("B")},
		constraint.And(ge("x", "3"), le("x", "5"), ge("y", "0"), le("y", "1"))))
	return r
}

func TestPlanEvalQuery1(t *testing.T) {
	// Paper Query 1: who owned Land A and when.
	env := testEnv(t)
	plan := NewProject(
		NewSelect(Scan("Landownership"), Condition{StrEq("landId", "A")}),
		"name", "t")
	got, err := plan.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("query 1: %d tuples:\n%s", got.Len(), got)
	}
	if got.Schema().Has("landId") {
		t.Error("landId survived projection")
	}
}

func TestPlanSchemaErrors(t *testing.T) {
	env := testEnv(t)
	se := env.Schemas()
	if _, err := Scan("Missing").OutSchema(se); err == nil {
		t.Error("unknown scan schema resolved")
	}
	if _, err := Scan("Missing").Eval(env); err == nil {
		t.Error("unknown scan evaluated")
	}
	bad := NewSelect(Scan("Land"), Condition{AttrCmpConst("t", OpLe, q("1"))})
	if _, err := bad.OutSchema(se); err == nil {
		t.Error("condition over missing attribute resolved")
	}
	badU := NewUnion(Scan("Land"), Scan("Landownership"))
	if _, err := badU.OutSchema(se); err == nil {
		t.Error("union schema mismatch resolved")
	}
	if _, err := badU.Eval(env); err == nil {
		t.Error("union schema mismatch evaluated")
	}
	badD := NewDiff(Scan("Land"), Scan("Landownership"))
	if _, err := badD.OutSchema(se); err == nil {
		t.Error("diff schema mismatch resolved")
	}
}

func TestPlanString(t *testing.T) {
	plan := NewProject(
		NewSelect(NewJoin(Scan("A"), Scan("B")), Condition{AttrCmpConst("t", OpGe, q("4"))}),
		"name")
	s := plan.String()
	for _, want := range []string{"project", "select", "join A and B", "t >= 4", "name"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string %q missing %q", s, want)
		}
	}
}

func TestOptimizeSelectMergeAndPushdown(t *testing.T) {
	env := testEnv(t)
	se := env.Schemas()
	// select name="ann" from (select t>=1 from (join Landownership and Land))
	plan := NewSelect(
		NewSelect(
			NewJoin(Scan("Landownership"), Scan("Land")),
			Condition{AttrCmpConst("t", OpGe, q("1"))}),
		Condition{StrEq("name", "ann"), AttrCmpConst("x", OpLe, q("1"))})
	opt := Optimize(plan, se)

	// The top node should now be a join (every atom pushed to one side).
	join, ok := opt.(*JoinNode)
	if !ok {
		t.Fatalf("optimized plan is %T (%s), want join at top", opt, opt)
	}
	if _, ok := join.Left.(*SelectNode); !ok {
		t.Errorf("left side of join is %T, want select pushed down (%s)", join.Left, opt)
	}
	if _, ok := join.Right.(*SelectNode); !ok {
		t.Errorf("right side of join is %T, want select pushed down (%s)", join.Right, opt)
	}

	// Equivalence of results.
	want, err := plan.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := opt.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equivalent(want) {
		t.Errorf("optimization changed semantics:\nplan: %s\nopt:  %s\nwant %s\ngot %s", plan, opt, want, got)
	}
}

func TestOptimizeSelectThroughUnionAndDiff(t *testing.T) {
	env := Env{
		"P": landRelForEnv(),
		"Q": landRelForEnv(),
	}
	se := env.Schemas()
	cond := Condition{AttrCmpConst("x", OpLe, q("1"))}
	planU := NewSelect(NewUnion(Scan("P"), Scan("Q")), cond)
	optU := Optimize(planU, se)
	if _, ok := optU.(*UnionNode); !ok {
		t.Errorf("select not pushed through union: %s", optU)
	}
	wantU, _ := planU.Eval(env)
	gotU, err := optU.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !gotU.Equivalent(wantU) {
		t.Error("union pushdown changed semantics")
	}

	planD := NewSelect(NewDiff(Scan("P"), Scan("Q")), cond)
	optD := Optimize(planD, se)
	if _, ok := optD.(*DiffNode); !ok {
		t.Errorf("select not pushed through difference: %s", optD)
	}
	wantD, _ := planD.Eval(env)
	gotD, err := optD.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !gotD.Equivalent(wantD) {
		t.Error("difference pushdown changed semantics")
	}
}

func TestOptimizeProjectionRules(t *testing.T) {
	env := testEnv(t)
	se := env.Schemas()
	// Nested projection collapses.
	plan := NewProject(NewProject(Scan("Land"), "landId", "x"), "landId")
	opt := Optimize(plan, se)
	p, ok := opt.(*ProjectNode)
	if !ok {
		t.Fatalf("optimized to %T", opt)
	}
	if _, ok := p.Input.(*ScanNode); !ok {
		t.Errorf("nested projection not collapsed: %s", opt)
	}
	// Identity projection dropped.
	idPlan := NewProject(Scan("Land"), "landId", "x", "y")
	idOpt := Optimize(idPlan, se)
	if _, ok := idOpt.(*ScanNode); !ok {
		t.Errorf("identity projection not dropped: %s", idOpt)
	}
	// Equivalence.
	want, _ := plan.Eval(env)
	got, err := opt.Eval(env)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equivalent(want) {
		t.Error("projection rules changed semantics")
	}
}

// TestQuickOptimizeEquivalence generates random plans over random data and
// verifies that Optimize preserves semantics exactly.
func TestQuickOptimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	randRel := func() *relation.Relation {
		r := relation.New(s)
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			rv := map[string]relation.Value{}
			if rng.Intn(3) > 0 {
				rv["id"] = relation.Str(string(rune('A' + rng.Intn(3))))
			}
			lo := int64(rng.Intn(6))
			hi := lo + int64(rng.Intn(5))
			r.MustAdd(relation.NewTuple(rv, constraint.And(
				constraint.GeConst("x", rational.FromInt(lo)),
				constraint.LeConst("x", rational.FromInt(hi)),
				constraint.GeConst("y", rational.FromInt(-2)),
				constraint.LeConst("y", rational.FromInt(int64(rng.Intn(8)))))))
		}
		return r
	}
	randAtom := func() Atom {
		switch rng.Intn(4) {
		case 0:
			return StrEq("id", string(rune('A'+rng.Intn(3))))
		case 1:
			return AttrCmpConst("x", []CompOp{OpLe, OpLt, OpGe, OpGt, OpEq, OpNe}[rng.Intn(6)],
				rational.FromInt(int64(rng.Intn(8))))
		case 2:
			return AttrCmpAttr("x", OpLe, "y")
		default:
			return Linear(constraint.Var("x").Add(constraint.Var("y")), OpLe,
				constraint.ConstInt(int64(rng.Intn(10))))
		}
	}
	var build func(depth int) Node
	build = func(depth int) Node {
		if depth == 0 {
			return Scan([]string{"P", "Q"}[rng.Intn(2)])
		}
		switch rng.Intn(5) {
		case 0:
			return NewSelect(build(depth-1), Condition{randAtom()})
		case 1:
			cols := [][]string{{"id", "x", "y"}, {"id", "x"}, {"x"}, {"id"}}[rng.Intn(4)]
			return NewProject(build(depth-1), cols...)
		case 2:
			return NewUnion(build(depth-1), build(depth-1))
		case 3:
			return NewDiff(build(depth-1), build(depth-1))
		default:
			return NewSelect(build(depth-1), Condition{randAtom(), randAtom()})
		}
	}
	for iter := 0; iter < 40; iter++ {
		env := Env{"P": randRel(), "Q": randRel()}
		plan := build(2 + rng.Intn(2))
		want, err := plan.Eval(env)
		if err != nil {
			// The generator can produce ill-typed plans (e.g. selecting on a
			// projected-away attribute); those are rejected uniformly, which
			// is itself the contract — skip them here.
			continue
		}
		opt := Optimize(plan, env.Schemas())
		got, err := opt.Eval(env)
		if err != nil {
			t.Fatalf("iter %d: optimized eval: %v (%s)", iter, err, opt)
		}
		if !got.Equivalent(want) {
			t.Fatalf("iter %d: semantics changed\nplan: %s\nopt:  %s\nwant: %s\ngot:  %s",
				iter, plan, opt, want, got)
		}
	}
}
