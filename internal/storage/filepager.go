package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync"
)

// FilePager is a file-backed Pager: page i lives at byte offset
// headerSize + (i-1)*pageSize. A small header records the page size and
// the high-water page id so a database file can be reopened.
//
// Free pages are kept on an in-file free list (the first 4 bytes of a free
// page link to the next free page).
type FilePager struct {
	mu       sync.Mutex
	f        *os.File
	pageSize int
	next     PageID
	freeHead PageID
	stats    Stats
}

const filePagerHeaderSize = 16

var filePagerMagic = [4]byte{'C', 'D', 'B', '1'}

// OpenFilePager opens (or creates) a page file. For new files, size sets
// the page size (DefaultPageSize when <= 0); for existing files the stored
// page size is used and size is ignored.
func OpenFilePager(path string, size int) (*FilePager, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	p := &FilePager{f: f}
	if st.Size() == 0 {
		if size <= 0 {
			size = DefaultPageSize
		}
		p.pageSize = size
		p.next = 1
		if err := p.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
		return p, nil
	}
	var hdr [filePagerHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: read header: %w", err)
	}
	if [4]byte(hdr[0:4]) != filePagerMagic {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not a CDB page file", path)
	}
	p.pageSize = int(binary.LittleEndian.Uint32(hdr[4:8]))
	p.next = PageID(binary.LittleEndian.Uint32(hdr[8:12]))
	p.freeHead = PageID(binary.LittleEndian.Uint32(hdr[12:16]))
	return p, nil
}

func (p *FilePager) writeHeader() error {
	var hdr [filePagerHeaderSize]byte
	copy(hdr[0:4], filePagerMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(p.pageSize))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(p.next))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(p.freeHead))
	_, err := p.f.WriteAt(hdr[:], 0)
	return err
}

func (p *FilePager) offset(id PageID) int64 {
	return filePagerHeaderSize + int64(id-1)*int64(p.pageSize)
}

// PageSize returns the page size in bytes.
func (p *FilePager) PageSize() int { return p.pageSize }

// Allocate returns a fresh zeroed page, reusing freed pages when possible.
func (p *FilePager) Allocate() (PageID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Allocs++
	zero := make([]byte, p.pageSize)
	if p.freeHead != 0 {
		id := p.freeHead
		var link [4]byte
		if _, err := p.f.ReadAt(link[:], p.offset(id)); err != nil {
			return 0, err
		}
		p.freeHead = PageID(binary.LittleEndian.Uint32(link[:]))
		if _, err := p.f.WriteAt(zero, p.offset(id)); err != nil {
			return 0, err
		}
		return id, p.writeHeader()
	}
	id := p.next
	p.next++
	if _, err := p.f.WriteAt(zero, p.offset(id)); err != nil {
		return 0, err
	}
	return id, p.writeHeader()
}

// Read returns the page content.
func (p *FilePager) Read(id PageID) (*Page, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || id >= p.next {
		return nil, fmt.Errorf("storage: read of invalid page %d", id)
	}
	buf := make([]byte, p.pageSize)
	if _, err := p.f.ReadAt(buf, p.offset(id)); err != nil {
		return nil, fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.stats.Reads++
	return &Page{ID: id, Data: buf}, nil
}

// Write persists the page.
func (p *FilePager) Write(pg *Page) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pg.ID == 0 || pg.ID >= p.next {
		return fmt.Errorf("storage: write to invalid page %d", pg.ID)
	}
	if len(pg.Data) != p.pageSize {
		return fmt.Errorf("storage: write of %d bytes to %d-byte page", len(pg.Data), p.pageSize)
	}
	if _, err := p.f.WriteAt(pg.Data, p.offset(pg.ID)); err != nil {
		return err
	}
	p.stats.Writes++
	return nil
}

// Free links the page onto the free list.
func (p *FilePager) Free(id PageID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if id == 0 || id >= p.next {
		return fmt.Errorf("storage: free of invalid page %d", id)
	}
	var link [4]byte
	binary.LittleEndian.PutUint32(link[:], uint32(p.freeHead))
	if _, err := p.f.WriteAt(link[:], p.offset(id)); err != nil {
		return err
	}
	p.freeHead = id
	p.stats.Frees++
	return p.writeHeader()
}

// HighWater returns the highest page id ever allocated (0 when none).
func (p *FilePager) HighWater() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next - 1
}

// Sync flushes the header and fsyncs the file: every page written before
// Sync returns is durable. The snapshot store calls this before it
// appends the WAL records that reference those pages, which is what
// makes a commit atomic across a crash.
func (p *FilePager) Sync() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.writeHeader(); err != nil {
		return err
	}
	return p.f.Sync()
}

// Stats returns the operation counters.
func (p *FilePager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters.
func (p *FilePager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Close syncs and closes the underlying file.
func (p *FilePager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.writeHeader(); err != nil {
		p.f.Close()
		return err
	}
	if err := p.f.Sync(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
