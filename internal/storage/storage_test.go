package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestMemPagerBasics(t *testing.T) {
	p := NewMemPager(0)
	if p.PageSize() != DefaultPageSize {
		t.Errorf("page size = %d", p.PageSize())
	}
	id, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("allocated page id 0")
	}
	pg, err := p.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(pg.Data) != DefaultPageSize {
		t.Errorf("read %d bytes", len(pg.Data))
	}
	copy(pg.Data, "hello")
	if err := p.Write(pg); err != nil {
		t.Fatal(err)
	}
	// Reads return copies: mutating them must not corrupt the store.
	pg2, _ := p.Read(id)
	copy(pg2.Data, "WRECK")
	pg3, _ := p.Read(id)
	if !bytes.HasPrefix(pg3.Data, []byte("hello")) {
		t.Error("read did not return a copy")
	}
	st := p.Stats()
	if st.Reads != 3 || st.Writes != 1 || st.Allocs != 1 {
		t.Errorf("stats = %+v", st)
	}
	p.ResetStats()
	if p.Stats().Reads != 0 {
		t.Error("reset failed")
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(id); err == nil {
		t.Error("read of freed page succeeded")
	}
	if err := p.Write(&Page{ID: 99, Data: make([]byte, DefaultPageSize)}); err == nil {
		t.Error("write to unallocated page succeeded")
	}
}

func TestMemPagerWriteSizeCheck(t *testing.T) {
	p := NewMemPager(128)
	id, _ := p.Allocate()
	if err := p.Write(&Page{ID: id, Data: make([]byte, 64)}); err == nil {
		t.Error("short write accepted")
	}
}

func TestBufferPoolCounting(t *testing.T) {
	under := NewMemPager(128)
	pool := NewBufferPool(under, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		id, _ := pool.Allocate()
		ids[i] = id
		buf := make([]byte, 128)
		buf[0] = byte(i + 1)
		if err := pool.Write(&Page{ID: id, Data: buf}); err != nil {
			t.Fatal(err)
		}
	}
	under.ResetStats()
	// Page ids[2] and ids[1] are cached (capacity 2, LRU evicted ids[0]).
	if _, err := pool.Read(ids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(ids[1]); err != nil {
		t.Fatal(err)
	}
	if got := under.Stats().Reads; got != 0 {
		t.Errorf("cached reads hit disk %d times", got)
	}
	// ids[0] was evicted (written back) and must hit the disk.
	pg, err := pool.Read(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if pg.Data[0] != 1 {
		t.Errorf("evicted page content lost: %d", pg.Data[0])
	}
	if got := under.Stats().Reads; got != 1 {
		t.Errorf("disk reads = %d, want 1", got)
	}
	st := pool.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("pool stats = %+v", st)
	}
}

func TestBufferPoolFlush(t *testing.T) {
	under := NewMemPager(64)
	pool := NewBufferPool(under, 4)
	id, _ := pool.Allocate()
	buf := make([]byte, 64)
	copy(buf, "dirty")
	if err := pool.Write(&Page{ID: id, Data: buf}); err != nil {
		t.Fatal(err)
	}
	// Not yet on "disk".
	raw, _ := under.Read(id)
	if bytes.HasPrefix(raw.Data, []byte("dirty")) {
		t.Error("write-back wrote through immediately")
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	raw2, _ := under.Read(id)
	if !bytes.HasPrefix(raw2.Data, []byte("dirty")) {
		t.Error("flush did not persist")
	}
}

func TestBufferPoolPassThrough(t *testing.T) {
	under := NewMemPager(64)
	pool := NewBufferPool(under, 0)
	id, _ := pool.Allocate()
	buf := make([]byte, 64)
	buf[5] = 42
	if err := pool.Write(&Page{ID: id, Data: buf}); err != nil {
		t.Fatal(err)
	}
	under.ResetStats()
	if _, err := pool.Read(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(id); err != nil {
		t.Fatal(err)
	}
	if got := under.Stats().Reads; got != 2 {
		t.Errorf("pass-through reads = %d, want 2", got)
	}
}

func TestFilePagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.cdb")
	p, err := OpenFilePager(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := p.Allocate()
	id2, _ := p.Allocate()
	buf := make([]byte, 256)
	copy(buf, "persisted")
	if err := p.Write(&Page{ID: id2, Data: buf}); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(id1); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: page size, contents, and the free list must survive.
	p2, err := OpenFilePager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.PageSize() != 256 {
		t.Errorf("page size after reopen = %d", p2.PageSize())
	}
	pg, err := p2.Read(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(pg.Data, []byte("persisted")) {
		t.Error("content lost across reopen")
	}
	// Freed page is recycled.
	id3, err := p2.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if id3 != id1 {
		t.Errorf("free list not reused: got %d, want %d", id3, id1)
	}
	// Recycled page must be zeroed.
	pg3, _ := p2.Read(id3)
	for _, b := range pg3.Data {
		if b != 0 {
			t.Error("recycled page not zeroed")
			break
		}
	}
	if _, err := p2.Read(999); err == nil {
		t.Error("read of invalid page succeeded")
	}
}

func TestFilePagerRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := writeFile(path, []byte("not a page file at all...")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFilePager(path, 0); err == nil {
		t.Error("foreign file accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestBufferPoolAccessors(t *testing.T) {
	under := NewMemPager(128)
	pool := NewBufferPool(under, 2)
	if pool.PageSize() != 128 {
		t.Errorf("page size = %d", pool.PageSize())
	}
	id, _ := pool.Allocate()
	if err := pool.Write(&Page{ID: id, Data: make([]byte, 128)}); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if pool.Stats().Writes != 0 {
		t.Error("reset failed")
	}
	// Free drops the cached page and the underlying page.
	if err := pool.Free(id); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(id); err == nil {
		t.Error("read of freed page via pool succeeded")
	}
	if under.NumPages() != 0 {
		t.Errorf("underlying pages = %d", under.NumPages())
	}
}

func TestFilePagerStatsAndFreeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.cdb")
	p, err := OpenFilePager(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	id, _ := p.Allocate()
	pg, _ := p.Read(id)
	_ = p.Write(pg)
	st := p.Stats()
	if st.Allocs != 1 || st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v", st)
	}
	p.ResetStats()
	if p.Stats().Reads != 0 {
		t.Error("reset failed")
	}
	if err := p.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(999); err == nil {
		t.Error("free of invalid page accepted")
	}
	if err := p.Write(&Page{ID: 999, Data: make([]byte, 128)}); err == nil {
		t.Error("write to invalid page accepted")
	}
	if err := p.Write(&Page{ID: id, Data: make([]byte, 5)}); err == nil {
		t.Error("short write accepted")
	}
}
