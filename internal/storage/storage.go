// Package storage provides the paged-storage substrate under the CQA/CDB
// index layer.
//
// The paper's §5.4 experiments measure index quality in *disk accesses*:
// every R*-tree node visited during a query is one page read. This package
// makes that metric first-class: a Pager abstracts a page store and counts
// reads, writes and allocations; an optional LRU BufferPool models a cache
// between the tree and the "disk" (the paper's raw counts correspond to a
// pool of capacity zero); MemPager and FilePager provide in-memory and
// file-backed page stores with identical semantics.
package storage

import (
	"fmt"
	"sync"
)

// PageID identifies a page. Zero is never a valid page id.
type PageID uint32

// DefaultPageSize is the page size used throughout the system (a classic
// 4 KiB disk page).
const DefaultPageSize = 4096

// Page is one fixed-size page. Data always has the pager's page size.
type Page struct {
	ID   PageID
	Data []byte
}

// Stats counts page-level operations. Reads is the paper's "number of disk
// accesses" metric.
type Stats struct {
	Reads  uint64 // pages fetched from the store
	Writes uint64 // pages written to the store
	Allocs uint64 // pages allocated
	Frees  uint64 // pages freed
	Hits   uint64 // buffer pool hits (BufferPool only)
	Misses uint64 // buffer pool misses (BufferPool only)
}

// Pager is a page store.
//
// Read returns a copy of the page content; callers own the result.
// Write persists the page. Allocate returns a fresh zeroed page id.
type Pager interface {
	PageSize() int
	Allocate() (PageID, error)
	Read(id PageID) (*Page, error)
	Write(p *Page) error
	Free(id PageID) error
	Stats() Stats
	ResetStats()
}

// MemPager is an in-memory Pager. It is safe for concurrent use.
type MemPager struct {
	mu       sync.Mutex
	pageSize int
	pages    map[PageID][]byte
	next     PageID
	stats    Stats
}

// NewMemPager returns an in-memory pager with the given page size
// (DefaultPageSize when size <= 0).
func NewMemPager(size int) *MemPager {
	if size <= 0 {
		size = DefaultPageSize
	}
	return &MemPager{pageSize: size, pages: map[PageID][]byte{}, next: 1}
}

// PageSize returns the page size in bytes.
func (m *MemPager) PageSize() int { return m.pageSize }

// Allocate returns a fresh zeroed page.
func (m *MemPager) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.next
	m.next++
	m.pages[id] = make([]byte, m.pageSize)
	m.stats.Allocs++
	return id, nil
}

// Read returns a copy of the page.
func (m *MemPager) Read(id PageID) (*Page, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("storage: read of unallocated page %d", id)
	}
	m.stats.Reads++
	out := make([]byte, m.pageSize)
	copy(out, data)
	return &Page{ID: id, Data: out}, nil
}

// Write persists the page.
func (m *MemPager) Write(p *Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[p.ID]; !ok {
		return fmt.Errorf("storage: write to unallocated page %d", p.ID)
	}
	if len(p.Data) != m.pageSize {
		return fmt.Errorf("storage: write of %d bytes to %d-byte page", len(p.Data), m.pageSize)
	}
	buf := make([]byte, m.pageSize)
	copy(buf, p.Data)
	m.pages[p.ID] = buf
	m.stats.Writes++
	return nil
}

// Free releases the page.
func (m *MemPager) Free(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; !ok {
		return fmt.Errorf("storage: free of unallocated page %d", id)
	}
	delete(m.pages, id)
	m.stats.Frees++
	return nil
}

// Stats returns the operation counters.
func (m *MemPager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters.
func (m *MemPager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// NumPages returns the number of live pages.
func (m *MemPager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pages)
}

// HighWater returns the highest page id ever allocated (0 when none).
// Together with a caller-side reachability set this lets a layer above
// (the snapshot store) reclaim pages that were allocated but never
// referenced by a durable commit.
func (m *MemPager) HighWater() PageID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.next - 1
}

// Sync is a no-op: memory has no durability boundary.
func (m *MemPager) Sync() error { return nil }
