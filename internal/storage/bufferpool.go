package storage

import (
	"container/list"
	"sync"
)

// BufferPool is an LRU page cache layered over another Pager. Reads served
// from the pool do not count as disk accesses on the underlying pager —
// the pool's own Stats track hits and misses, while the underlying pager's
// Reads remain the true disk-access count.
//
// The §5.4 experiments run with no pool (or capacity 0) so that every node
// visit is a counted access, matching the paper's methodology; the pool
// exists to show the same workloads under a realistic cache (ablation).
type BufferPool struct {
	mu    sync.Mutex
	under Pager
	cap   int
	ll    *list.List // front = most recent; values are *poolEntry
	byID  map[PageID]*list.Element
	stats Stats
}

type poolEntry struct {
	id    PageID
	data  []byte
	dirty bool
}

// NewBufferPool wraps under with an LRU cache of the given capacity (in
// pages). Capacity <= 0 disables caching (pass-through).
func NewBufferPool(under Pager, capacity int) *BufferPool {
	return &BufferPool{
		under: under,
		cap:   capacity,
		ll:    list.New(),
		byID:  map[PageID]*list.Element{},
	}
}

// PageSize returns the underlying page size.
func (b *BufferPool) PageSize() int { return b.under.PageSize() }

// Allocate allocates on the underlying pager.
func (b *BufferPool) Allocate() (PageID, error) { return b.under.Allocate() }

// Read returns the page, from cache when possible.
func (b *BufferPool) Read(id PageID) (*Page, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Reads++
	if el, ok := b.byID[id]; ok {
		b.stats.Hits++
		b.ll.MoveToFront(el)
		e := el.Value.(*poolEntry)
		out := make([]byte, len(e.data))
		copy(out, e.data)
		return &Page{ID: id, Data: out}, nil
	}
	b.stats.Misses++
	p, err := b.under.Read(id)
	if err != nil {
		return nil, err
	}
	b.admit(id, p.Data, false)
	out := make([]byte, len(p.Data))
	copy(out, p.Data)
	return &Page{ID: id, Data: out}, nil
}

// Write stores the page in the pool (write-back) or directly when caching
// is disabled.
func (b *BufferPool) Write(p *Page) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Writes++
	if b.cap <= 0 {
		return b.under.Write(p)
	}
	buf := make([]byte, len(p.Data))
	copy(buf, p.Data)
	if el, ok := b.byID[p.ID]; ok {
		e := el.Value.(*poolEntry)
		e.data = buf
		e.dirty = true
		b.ll.MoveToFront(el)
		return nil
	}
	return b.admitLocked(p.ID, buf, true)
}

// admit inserts a clean/dirty page into the cache, evicting as needed.
// Caller holds the lock.
func (b *BufferPool) admit(id PageID, data []byte, dirty bool) {
	if b.cap <= 0 {
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	_ = b.admitLocked(id, buf, dirty)
}

func (b *BufferPool) admitLocked(id PageID, buf []byte, dirty bool) error {
	el := b.ll.PushFront(&poolEntry{id: id, data: buf, dirty: dirty})
	b.byID[id] = el
	for b.ll.Len() > b.cap {
		back := b.ll.Back()
		e := back.Value.(*poolEntry)
		if e.dirty {
			if err := b.under.Write(&Page{ID: e.id, Data: e.data}); err != nil {
				return err
			}
		}
		b.ll.Remove(back)
		delete(b.byID, e.id)
	}
	return nil
}

// Flush writes every dirty cached page through to the underlying pager.
func (b *BufferPool) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	for el := b.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		if e.dirty {
			if err := b.under.Write(&Page{ID: e.id, Data: e.data}); err != nil {
				return err
			}
			e.dirty = false
		}
	}
	return nil
}

// Free drops the page from the cache and the underlying pager.
func (b *BufferPool) Free(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if el, ok := b.byID[id]; ok {
		b.ll.Remove(el)
		delete(b.byID, id)
	}
	return b.under.Free(id)
}

// Stats returns the pool's counters (Reads/Hits/Misses are pool-level;
// the underlying pager holds the true disk counts).
func (b *BufferPool) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the pool counters.
func (b *BufferPool) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}
