package render

import (
	"strings"
	"testing"

	"cdb/internal/geometry"
	"cdb/internal/hurricane"
	"cdb/internal/spatial"
)

func demoLayer() *spatial.Layer {
	l := spatial.NewLayer("demo")
	l.MustAdd(spatial.Feature{ID: "park", Geom: spatial.RegionGeom(geometry.RectPoly(0, 0, 10, 10))})
	l.MustAdd(spatial.Feature{ID: "road", Geom: spatial.LineGeom(geometry.MustPolyline(
		geometry.Pt(-5, 5), geometry.Pt(15, 5)))})
	l.MustAdd(spatial.Feature{ID: "well", Geom: spatial.PointGeom(geometry.Pt(3, 3))})
	return l
}

func TestLayerSVG(t *testing.T) {
	svg, err := Layer(demoLayer(), Options{Width: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "<polygon", "<polyline", "<circle",
		">park<", ">road<", ">well<", `width="300"`,
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Labels off.
	svg2, err := Layer(demoLayer(), Options{NoLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg2, "<text") {
		t.Error("labels drawn with NoLabels")
	}
	// Empty layer errors.
	if _, err := Layer(spatial.NewLayer("empty"), Options{}); err != nil {
		if !strings.Contains(err.Error(), "nothing to draw") {
			t.Errorf("unexpected error %v", err)
		}
	} else {
		t.Error("empty layer rendered")
	}
}

func TestRelationSVGReverseConversion(t *testing.T) {
	// Render the hurricane case study straight from its constraint
	// representation — the full §6 display pipeline.
	d := hurricane.Build()
	land, _ := d.Get("Land")
	svg, err := Relation(land, "landId", "x", "y", Options{Width: 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{">A<", ">B<", ">C<", "<polygon"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// The track relation renders its segments as degenerate regions or
	// lines.
	track, _ := d.Get("Track")
	svg2, err := Relation(track, "segId", "x", "y", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg2, "<polyline") && !strings.Contains(svg2, "<polygon") {
		t.Errorf("track rendered nothing:\n%s", svg2)
	}
	// Unsuitable relations error cleanly.
	owners, _ := d.Get("Landownership")
	if _, err := Relation(owners, "name", "x", "y", Options{}); err == nil {
		t.Error("non-spatial relation rendered")
	}
}

func TestEscape(t *testing.T) {
	l := spatial.NewLayer("x")
	l.MustAdd(spatial.Feature{ID: `a<b>&"c"`, Geom: spatial.PointGeom(geometry.Pt(0, 0))})
	svg, err := Layer(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, `a<b>`) {
		t.Error("unescaped markup in output")
	}
	if !strings.Contains(svg, "a&lt;b&gt;&amp;&quot;c&quot;") {
		t.Errorf("escape wrong:\n%s", svg)
	}
}

func TestSortedIDs(t *testing.T) {
	ids := SortedIDs(demoLayer())
	if len(ids) != 3 || ids[0] != "park" || ids[2] != "well" {
		t.Errorf("ids = %v", ids)
	}
}
