// Package render implements the display side of §6's conversion argument:
//
//	"When displaying a feature as part of data visualization or query
//	 output, the reverse conversion must take place. In order to display
//	 a feature, its boundary points have to be computed from the
//	 constraints. The spatial outlines corresponding to each tuple must
//	 be found and combined together to obtain the feature boundary."
//
// It renders feature layers and spatial constraint relations as SVG: the
// constraint-side path runs ConjunctionVertices/ConvexHull per tuple (the
// §6 reverse conversion, exact), then rounds only at the final
// coordinate-printing step.
package render

import (
	"fmt"
	"sort"
	"strings"

	"cdb/internal/geometry"
	"cdb/internal/relation"
	"cdb/internal/spatial"
)

// Options tune the SVG output. The zero value picks sensible defaults.
type Options struct {
	// Width of the SVG viewport in pixels (height follows the data's
	// aspect ratio). Default 640.
	Width int
	// Margin in data units added around the bounding box. Default: 5% of
	// the larger data extent.
	Margin float64
	// Labels draws feature IDs at geometry anchors. Default true-ish via
	// NoLabels.
	NoLabels bool
}

// palette cycles deterministic feature colours.
var palette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759",
	"#76b7b2", "#edc948", "#b07aa1", "#9c755f",
}

type canvas struct {
	b                      strings.Builder
	minX, minY, maxX, maxY float64
	scale                  float64
	width, height          int
}

// Layer renders a feature layer to an SVG document.
func Layer(l *spatial.Layer, opts Options) (string, error) {
	return Layers([]*spatial.Layer{l}, opts)
}

// Layers renders several layers into one SVG document (shared scale).
func Layers(ls []*spatial.Layer, opts Options) (string, error) {
	var feats []spatial.Feature
	for _, l := range ls {
		feats = append(feats, l.Features()...)
	}
	if len(feats) == 0 {
		return "", fmt.Errorf("render: nothing to draw")
	}
	c, err := newCanvas(feats, opts)
	if err != nil {
		return "", err
	}
	for i, f := range feats {
		c.feature(f, palette[i%len(palette)], !opts.NoLabels)
	}
	return c.finish(), nil
}

// Relation renders a spatial constraint relation: the §6 reverse
// conversion (constraints → vertex lists) followed by drawing. Tuples
// sharing a feature ID share a colour.
func Relation(r *relation.Relation, fidName, xVar, yVar string, opts Options) (string, error) {
	groups, order, err := spatial.RelationGeometries(r, fidName, xVar, yVar)
	if err != nil {
		return "", err
	}
	var feats []spatial.Feature
	colorOf := map[string]string{}
	for i, id := range order {
		colorOf[id] = palette[i%len(palette)]
		for k, g := range groups[id] {
			fid := id
			if len(groups[id]) > 1 {
				fid = fmt.Sprintf("%s#%d", id, k+1)
			}
			feats = append(feats, spatial.Feature{ID: fid, Geom: g})
		}
	}
	if len(feats) == 0 {
		return "", fmt.Errorf("render: nothing to draw")
	}
	c, err := newCanvas(feats, opts)
	if err != nil {
		return "", err
	}
	for _, f := range feats {
		base := f.ID
		if i := strings.IndexByte(base, '#'); i >= 0 {
			base = base[:i]
		}
		// Label only the first piece of a feature.
		label := !opts.NoLabels && (f.ID == base || strings.HasSuffix(f.ID, "#1"))
		c.feature(f, colorOf[base], label)
	}
	return c.finish(), nil
}

func newCanvas(feats []spatial.Feature, opts Options) (*canvas, error) {
	width := opts.Width
	if width <= 0 {
		width = 640
	}
	c := &canvas{width: width}
	first := true
	for _, f := range feats {
		minX, minY, maxX, maxY := f.Geom.BBox()
		fx, fy := minX.Float64(), minY.Float64()
		gx, gy := maxX.Float64(), maxY.Float64()
		if first {
			c.minX, c.minY, c.maxX, c.maxY = fx, fy, gx, gy
			first = false
			continue
		}
		c.minX, c.minY = minF(c.minX, fx), minF(c.minY, fy)
		c.maxX, c.maxY = maxF(c.maxX, gx), maxF(c.maxY, gy)
	}
	margin := opts.Margin
	if margin <= 0 {
		margin = 0.05 * maxF(c.maxX-c.minX, c.maxY-c.minY)
		if margin == 0 {
			margin = 1
		}
	}
	c.minX -= margin
	c.minY -= margin
	c.maxX += margin
	c.maxY += margin
	spanX, spanY := c.maxX-c.minX, c.maxY-c.minY
	c.scale = float64(c.width) / spanX
	c.height = int(spanY*c.scale + 0.5)
	if c.height < 1 {
		c.height = 1
	}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.width, c.height, c.width, c.height)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="#fafafa"/>`+"\n", c.width, c.height)
	return c, nil
}

func (c *canvas) pt(p geometry.Point) (float64, float64) {
	// SVG y grows downward: flip.
	x := (p.X.Float64() - c.minX) * c.scale
	y := (c.maxY - p.Y.Float64()) * c.scale
	return x, y
}

func (c *canvas) feature(f spatial.Feature, color string, label bool) {
	var anchor geometry.Point
	switch f.Geom.Kind() {
	case spatial.KindPoint:
		p := f.Geom.Point()
		x, y := c.pt(p)
		fmt.Fprintf(&c.b, `<circle cx="%.2f" cy="%.2f" r="4" fill="%s"><title>%s</title></circle>`+"\n",
			x, y, color, escape(f.ID))
		anchor = p
	case spatial.KindLine:
		verts := f.Geom.Line().Vertices()
		var pts []string
		for _, v := range verts {
			x, y := c.pt(v)
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", x, y))
		}
		fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"><title>%s</title></polyline>`+"\n",
			strings.Join(pts, " "), color, escape(f.ID))
		anchor = verts[0]
	default:
		verts := f.Geom.Region().Vertices()
		var pts []string
		for _, v := range verts {
			x, y := c.pt(v)
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", x, y))
		}
		fmt.Fprintf(&c.b, `<polygon points="%s" fill="%s" fill-opacity="0.35" stroke="%s" stroke-width="1.5"><title>%s</title></polygon>`+"\n",
			strings.Join(pts, " "), color, color, escape(f.ID))
		anchor = verts[0]
	}
	if label {
		x, y := c.pt(anchor)
		fmt.Fprintf(&c.b, `<text x="%.2f" y="%.2f" font-size="11" font-family="sans-serif" fill="#333">%s</text>`+"\n",
			x+5, y-5, escape(f.ID))
	}
}

func (c *canvas) finish() string {
	c.b.WriteString("</svg>\n")
	return c.b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SortedIDs is a small helper for deterministic legends in callers.
func SortedIDs(l *spatial.Layer) []string {
	var ids []string
	for _, f := range l.Features() {
		ids = append(ids, f.ID)
	}
	sort.Strings(ids)
	return ids
}
