// Package hurricane builds the paper's §3.3 Hurricane Database — the case
// study of the heterogeneous data model — and its five typical queries.
//
// The three relations follow the paper's schemas exactly:
//
//	Land          [landId: string, relational; x, y: rational, constraint]
//	Landownership [name: string, relational; t: rational, constraint;
//	               landId: string, relational]
//	Hurricane     [t, x, y: rational, constraint]
//
// (The paper prints the attribute both as "landID" and "landId"; we use
// "landId" uniformly so the natural join works by name.)
//
// The concrete instance of Figure 2 is not recoverable from the text (the
// figure is an image), so this package reconstructs a consistent instance:
// three parcels, four ownership records, and a two-segment hurricane
// track that crosses parcels A and B but misses C. Queries 1-3 are the
// paper's; the text after query 3 is cut off in the available copy, so
// queries 4-5 are reconstructed in the spirit of §4 (whole-feature
// operators over the same data). All of this is documented in DESIGN.md.
package hurricane

import (
	"cdb/internal/constraint"
	"cdb/internal/db"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func ge(v, k string) constraint.Constraint { return constraint.GeConst(v, q(k)) }
func le(v, k string) constraint.Constraint { return constraint.LeConst(v, q(k)) }

// Build constructs the Hurricane Database instance.
//
// Geometry (all coordinates rational):
//
//	parcel A: [0,4] x [0,4]      owned by ann  (t in [0,5]),
//	                             then  by bob  (t in [6,10])
//	parcel B: [5,9] x [0,4]      owned by carol (t in [0,10])
//	parcel C: [0,4] x [5,9]      owned by dave  (t in [2,8])
//
//	hurricane track (x = t - 1):
//	  segment 1: t in [0,6],  y = 2
//	  segment 2: t in [6,11], y = 2 + (t-6)/2
//
// so the eye crosses A while 1 <= t <= 5 and B while 6 <= t <= 10, and
// never enters C.
//
// A fourth relation Track is the spatial (feature-ID-keyed) view of the
// hurricane path used by the whole-feature queries: one feature per track
// segment.
func Build() *db.Database {
	d := db.New()

	land := relation.New(schema.MustNew(
		schema.Rel("landId", schema.String), schema.Con("x"), schema.Con("y")))
	addParcel := func(id string, x0, x1, y0, y1 string) {
		land.MustAdd(relation.NewTuple(
			map[string]relation.Value{"landId": relation.Str(id)},
			constraint.And(ge("x", x0), le("x", x1), ge("y", y0), le("y", y1))))
	}
	addParcel("A", "0", "4", "0", "4")
	addParcel("B", "5", "9", "0", "4")
	addParcel("C", "0", "4", "5", "9")
	mustPut(d, "Land", land)

	owners := relation.New(schema.MustNew(
		schema.Rel("name", schema.String), schema.Con("t"),
		schema.Rel("landId", schema.String)))
	addOwner := func(name, id, t0, t1 string) {
		owners.MustAdd(relation.NewTuple(
			map[string]relation.Value{
				"name":   relation.Str(name),
				"landId": relation.Str(id),
			},
			constraint.And(ge("t", t0), le("t", t1))))
	}
	addOwner("ann", "A", "0", "5")
	addOwner("bob", "A", "6", "10")
	addOwner("carol", "B", "0", "10")
	addOwner("dave", "C", "2", "8")
	mustPut(d, "Landownership", owners)

	hurr := relation.New(schema.MustNew(
		schema.Con("t"), schema.Con("x"), schema.Con("y")))
	// Segment 1: x = t - 1, y = 2, 0 <= t <= 6.
	hurr.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.MustNew(constraint.Var("x"), "=",
			constraint.Var("t").Sub(constraint.ConstInt(1))),
		constraint.EqConst("y", q("2")),
		ge("t", "0"), le("t", "6"))))
	// Segment 2: x = t - 1, y = 2 + (t-6)/2, 6 <= t <= 11.
	hurr.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.MustNew(constraint.Var("x"), "=",
			constraint.Var("t").Sub(constraint.ConstInt(1))),
		constraint.MustNew(constraint.Var("y"), "=",
			constraint.Var("t").Scale(q("1/2")).Add(constraint.Const(q("-1")))),
		ge("t", "6"), le("t", "11"))))
	mustPut(d, "Hurricane", hurr)

	// Track: the spatial projection of the hurricane path, keyed by
	// segment ID (a spatial constraint relation in the §4.2 sense).
	track := relation.New(schema.MustNew(
		schema.Rel("segId", schema.String), schema.Con("x"), schema.Con("y")))
	// Segment 1 spans x in [-1, 5] at y = 2.
	track.MustAdd(relation.NewTuple(
		map[string]relation.Value{"segId": relation.Str("seg1")},
		constraint.And(constraint.EqConst("y", q("2")), ge("x", "-1"), le("x", "5"))))
	// Segment 2: from (5,2) to (10, 9/2): y = 2 + (x-5)/2.
	track.MustAdd(relation.NewTuple(
		map[string]relation.Value{"segId": relation.Str("seg2")},
		constraint.And(
			constraint.MustNew(constraint.Var("y"), "=",
				constraint.Var("x").Scale(q("1/2")).Add(constraint.Const(q("-1/2")))),
			ge("x", "5"), le("x", "10"))))
	mustPut(d, "Track", track)

	return d
}

func mustPut(d *db.Database, name string, r *relation.Relation) {
	if err := d.Put(name, r); err != nil {
		panic(err)
	}
}

// NamedQuery is one case-study query: its name, the program text in the
// paper's ASCII query language, and what it asks.
type NamedQuery struct {
	Name        string
	Description string
	Text        string
}

// Queries returns the five case-study queries. 1-3 are the paper's §3.3
// queries verbatim (modulo the landID/landId spelling); 4-5 are
// reconstructed whole-feature queries (§4) — the available text of the
// paper cuts off after query 3.
func Queries() []NamedQuery {
	return []NamedQuery{
		{
			Name:        "Query 1",
			Description: "who owned Land A and when",
			Text: `R0 = select landId = A from Landownership
R1 = project R0 on name, t`,
		},
		{
			Name:        "Query 2",
			Description: "all landIds that the hurricane passed",
			Text: `R0 = join Hurricane and Land
R1 = project R0 on landId`,
		},
		{
			Name:        "Query 3",
			Description: "names of those whose land was hit by the hurricane between time 4 and 9",
			Text: `R0 = join Landownership and Land
R1 = join R0 and Hurricane
R2 = select t >= 4, t <= 9 from R1
R3 = project R2 on name`,
		},
		{
			Name:        "Query 4 (reconstructed)",
			Description: "parcels within distance 1 of the hurricane track (Buffer-Join)",
			Text:        `R0 = buffer-join Land and Track within 1`,
		},
		{
			Name:        "Query 5 (reconstructed)",
			Description: "the 2 parcels nearest to the weather station at (10, 10) (k-Nearest)",
			Text:        `R0 = k-nearest 2 in Land to point(10, 10)`,
		},
	}
}
