package hurricane

import (
	"sort"
	"testing"

	"cdb/internal/db"
	"cdb/internal/relation"
)

// names extracts the sorted distinct values of a string attribute.
func names(r *relation.Relation, attr string) []string {
	set := map[string]bool{}
	for _, t := range r.Tuples() {
		if v, ok := t.RVal(attr); ok {
			if s, ok := v.AsString(); ok {
				set[s] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestBuildSchemas(t *testing.T) {
	d := Build()
	want := []string{"Land", "Landownership", "Hurricane", "Track"}
	got := d.Names()
	if len(got) != len(want) {
		t.Fatalf("relations = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("relations = %v, want %v", got, want)
			break
		}
	}
	land, _ := d.Get("Land")
	if land.Len() != 3 {
		t.Errorf("Land tuples = %d", land.Len())
	}
	hurr, _ := d.Get("Hurricane")
	if hurr.Len() != 2 {
		t.Errorf("Hurricane tuples = %d", hurr.Len())
	}
	// Paper schema check: Hurricane is all-constraint.
	for _, a := range hurr.Schema().Attrs() {
		if a.Kind.String() != "constraint" {
			t.Errorf("Hurricane attribute %s not constraint", a.Name)
		}
	}
}

func TestQuery1WhoOwnedLandA(t *testing.T) {
	d := Build()
	out, err := d.Run(Queries()[0].Text)
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "name")
	if len(got) != 2 || got[0] != "ann" || got[1] != "bob" {
		t.Errorf("owners of A = %v, want [ann bob]", got)
	}
	if out.Schema().Has("landId") {
		t.Error("landId survived projection")
	}
	// Ownership intervals preserved: ann's tuple pins t in [0,5].
	for _, tp := range out.Tuples() {
		iv, ok := tp.Constraint().VarBounds("t")
		if !ok || !iv.HasLower || !iv.HasUpper {
			t.Errorf("ownership window lost: %s", tp)
		}
	}
}

func TestQuery2LandsPassed(t *testing.T) {
	d := Build()
	out, err := d.Run(Queries()[1].Text)
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "landId")
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("lands passed = %v, want [A B] (C must be missed)", got)
	}
}

func TestQuery3OwnersHitBetween4And9(t *testing.T) {
	d := Build()
	out, err := d.Run(Queries()[2].Text)
	if err != nil {
		t.Fatal(err)
	}
	got := names(out, "name")
	// ann owns A through t=5 and A is hit during [1,5] ∩ [4,9] = [4,5];
	// carol owns B and B is hit during [6,10] ∩ [4,9] = [6,9];
	// bob takes over A only at t=6, after the hurricane left A;
	// dave's parcel C is never hit.
	if len(got) != 2 || got[0] != "ann" || got[1] != "carol" {
		t.Errorf("hit owners = %v, want [ann carol]", got)
	}
}

func TestQuery4BufferJoin(t *testing.T) {
	d := Build()
	out, err := d.Run(Queries()[3].Text)
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ land, seg string }
	got := map[pair]bool{}
	for _, tp := range out.Tuples() {
		l, _ := tp.RVal("landId")
		s, _ := tp.RVal("segId")
		ls, _ := l.AsString()
		ss, _ := s.AsString()
		got[pair{ls, ss}] = true
	}
	// seg1 (y=2, x in [-1,5]) crosses A and touches B at (5,2);
	// seg2 crosses B; C's closest approach (corner (4,5) to seg1 y=2) is 3.
	want := []pair{{"A", "seg1"}, {"B", "seg1"}, {"B", "seg2"}}
	for _, p := range want {
		if !got[p] {
			t.Errorf("missing %v (got %v)", p, got)
		}
	}
	for p := range got {
		if p.land == "C" {
			t.Errorf("C within buffer 1: %v", p)
		}
	}
}

func TestQuery5KNearest(t *testing.T) {
	d := Build()
	out, err := d.Run(Queries()[4].Text)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("k-nearest returned %d rows:\n%s", out.Len(), out)
	}
	// From (10,10): B's corner (9,4) is at sqdist 37, C's corner (4,9) at
	// 37 (tie, broken by ID), A's corner (4,4) at 72.
	got := names(out, "landId")
	if len(got) != 2 || got[0] != "B" || got[1] != "C" {
		t.Errorf("nearest parcels = %v, want [B C]", got)
	}
}

func TestDatabaseSurvivesSerialisation(t *testing.T) {
	d := Build()
	path := t.TempDir() + "/hurricane.cqa"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Re-run all five queries on the reloaded database.
	reloaded := mustLoad(t, path)
	for _, nq := range Queries() {
		a, err := d.Run(nq.Text)
		if err != nil {
			t.Fatalf("%s: %v", nq.Name, err)
		}
		b, err := reloaded.Run(nq.Text)
		if err != nil {
			t.Fatalf("%s after reload: %v", nq.Name, err)
		}
		if !a.Equivalent(b) {
			t.Errorf("%s: results differ after serialisation round trip", nq.Name)
		}
	}
}

func mustLoad(t *testing.T, path string) *db.Database {
	t.Helper()
	d, err := db.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
