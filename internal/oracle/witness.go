package oracle

import (
	"math/rand"
	"sort"
	"strings"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// WitnessOptions tunes witness point generation. The zero value selects
// the defaults below.
type WitnessOptions struct {
	// RandomPerVar is the number of seeded-random rational coordinates added
	// per constraint attribute on top of the structural candidates
	// (default 4).
	RandomPerVar int
	// MaxPerVar caps the candidate coordinates per constraint attribute
	// (default 16).
	MaxPerVar int
	// MaxPoints caps the total witness set; larger grids are sampled
	// (default 400).
	MaxPoints int
}

func (o WitnessOptions) withDefaults() WitnessOptions {
	if o.RandomPerVar == 0 {
		o.RandomPerVar = 4
	}
	if o.MaxPerVar == 0 {
		o.MaxPerVar = 16
	}
	if o.MaxPoints == 0 {
		o.MaxPoints = 400
	}
	return o
}

// Extra feeds operator arguments into witness generation: selection-
// condition boundaries and string literals that appear in no input tuple
// still deserve probe points.
type Extra struct {
	Atoms   []constraint.Constraint
	Strings map[string][]string // relational attribute -> extra literal pool
}

// maxVertexAtoms caps the quadratic boundary-vertex pass.
const maxVertexAtoms = 32

// Witnesses generates a finite probe set over schema s: for every
// constraint attribute, candidate coordinates are gathered from the
// constraint geometry of the given relations (single-variable boundary
// intercepts, pairwise boundary-line intersections solved exactly by
// Cramer's rule), enriched with midpoints between neighbours, just-outside
// offsets, zero, and seeded-random rational points; for every relational
// attribute, the observed values plus NULL plus a never-seen literal. The
// witness set is the (capped, rng-sampled) cartesian product.
//
// Witness points only determine *coverage* — every membership comparison
// made at a witness point is exact — so the generator is free to use any
// heuristic; no correctness rests on it.
func Witnesses(rng *rand.Rand, s schema.Schema, opts WitnessOptions, extra Extra, rels ...*relation.Relation) []relation.Point {
	opts = opts.withDefaults()
	conAttr := map[string]bool{}
	for _, name := range s.ConstraintNames() {
		conAttr[name] = true
	}

	// Gather the atom pool.
	var atoms []constraint.Constraint
	for _, r := range rels {
		for _, t := range r.Tuples() {
			atoms = append(atoms, t.Constraint().Constraints()...)
		}
	}
	atoms = append(atoms, extra.Atoms...)

	// Structural candidates per variable.
	cands := map[string]map[string]rational.Rat{}
	add := func(v string, val rational.Rat) {
		if !conAttr[v] {
			return
		}
		if cands[v] == nil {
			cands[v] = map[string]rational.Rat{}
		}
		cands[v][val.Key()] = val
	}
	for _, c := range atoms {
		if vars := c.Expr.Vars(); len(vars) == 1 {
			v := vars[0]
			a := c.Expr.Coef(v)
			add(v, c.Expr.ConstTerm().Div(a).Neg()) // a*v + k OP 0  =>  v = -k/a
		}
	}
	vtx := atoms
	if len(vtx) > maxVertexAtoms {
		vtx = vtx[:maxVertexAtoms]
	}
	for i := 0; i < len(vtx); i++ {
		for j := i + 1; j < len(vtx); j++ {
			addVertex(add, vtx[i], vtx[j])
		}
	}

	// Per-attribute coordinate axes.
	type axis struct {
		name string
		vals []relation.Value
	}
	var axes []axis
	for _, a := range s.Attrs() {
		if a.Kind == schema.Constraint {
			axes = append(axes, axis{a.Name, ratValues(rng, sortedRats(cands[a.Name]), opts)})
			continue
		}
		axes = append(axes, axis{a.Name, relValues(rels, a, extra.Strings[a.Name])})
	}

	// The grid, capped by sampling.
	total := 1
	for _, ax := range axes {
		total *= len(ax.vals)
		if total > opts.MaxPoints {
			total = opts.MaxPoints + 1
			break
		}
	}
	var out []relation.Point
	if total <= opts.MaxPoints {
		idx := make([]int, len(axes))
		for {
			p := relation.Point{}
			for k, ax := range axes {
				p[ax.name] = ax.vals[idx[k]]
			}
			out = append(out, p)
			k := len(axes) - 1
			for ; k >= 0; k-- {
				idx[k]++
				if idx[k] < len(axes[k].vals) {
					break
				}
				idx[k] = 0
			}
			if k < 0 {
				break
			}
		}
		return out
	}
	seen := map[string]bool{}
	for draws := 0; draws < 2*opts.MaxPoints && len(out) < opts.MaxPoints; draws++ {
		p := relation.Point{}
		var key strings.Builder
		for _, ax := range axes {
			v := ax.vals[rng.Intn(len(ax.vals))]
			p[ax.name] = v
			key.WriteString(v.Key())
			key.WriteByte('|')
		}
		if seen[key.String()] {
			continue
		}
		seen[key.String()] = true
		out = append(out, p)
	}
	return out
}

// addVertex solves the boundary lines of two atoms as a 2x2 linear system
// (Cramer's rule) when they jointly involve exactly two variables, and
// feeds the intersection coordinates into the candidate sets. Vertices are
// where FM-projected bounds and difference staircases have their corners,
// so they are the highest-yield probes.
func addVertex(add func(string, rational.Rat), c1, c2 constraint.Constraint) {
	varSet := map[string]bool{}
	for _, v := range c1.Expr.Vars() {
		varSet[v] = true
	}
	for _, v := range c2.Expr.Vars() {
		varSet[v] = true
	}
	if len(varSet) != 2 {
		return
	}
	vars := make([]string, 0, 2)
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	u, v := vars[0], vars[1]
	a1, b1, k1 := c1.Expr.Coef(u), c1.Expr.Coef(v), c1.Expr.ConstTerm()
	a2, b2, k2 := c2.Expr.Coef(u), c2.Expr.Coef(v), c2.Expr.ConstTerm()
	det := a1.Mul(b2).Sub(a2.Mul(b1))
	if det.IsZero() {
		return
	}
	// a1 u + b1 v + k1 = 0, a2 u + b2 v + k2 = 0.
	add(u, b1.Mul(k2).Sub(b2.Mul(k1)).Div(det))
	add(v, a2.Mul(k1).Sub(a1.Mul(k2)).Div(det))
}

// sortedRats returns the candidate values in ascending order.
func sortedRats(m map[string]rational.Rat) []rational.Rat {
	out := make([]rational.Rat, 0, len(m))
	for _, r := range m {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ratValues enriches the structural candidates of one constraint attribute
// into its witness axis: midpoints between neighbours (interior probes),
// one-off outside offsets (just-past-the-boundary probes), zero, and
// seeded-random exact-rational convex combinations plus small wild values.
func ratValues(rng *rand.Rand, base []rational.Rat, opts WitnessOptions) []relation.Value {
	set := map[string]rational.Rat{}
	add := func(r rational.Rat) { set[r.Key()] = r }
	add(rational.Zero)
	for _, r := range base {
		add(r)
	}
	for i := 0; i+1 < len(base); i++ {
		add(base[i].Add(base[i+1]).Mul(rational.Half))
	}
	if len(base) > 0 {
		one := rational.One
		add(base[0].Sub(one))
		add(base[len(base)-1].Add(one))
		// Random convex combinations a + (b-a)*k/d: exact rationals inside
		// the observed span, denominators 1..4.
		for i := 0; i < opts.RandomPerVar; i++ {
			a := base[rng.Intn(len(base))]
			b := base[rng.Intn(len(base))]
			d := int64(1 + rng.Intn(4))
			k := rng.Int63n(d + 1)
			add(a.Add(b.Sub(a).Mul(rational.New(k, d))))
		}
	}
	for i := 0; i < opts.RandomPerVar; i++ {
		add(rational.New(rng.Int63n(41)-20, 1+rng.Int63n(3)))
	}
	vals := sortedRats(set)
	if len(vals) > opts.MaxPerVar {
		perm := rng.Perm(len(vals))[:opts.MaxPerVar]
		sort.Ints(perm)
		sampled := make([]rational.Rat, 0, opts.MaxPerVar)
		for _, i := range perm {
			sampled = append(sampled, vals[i])
		}
		vals = sampled
	}
	out := make([]relation.Value, len(vals))
	for i, r := range vals {
		out[i] = relation.Rat(r)
	}
	return out
}

// relValues builds the witness axis of one relational attribute: NULL (the
// narrow missing-value quasi-value), every value observed in the inputs,
// any extra literals (e.g. from selection conditions), and one value
// guaranteed to appear nowhere.
func relValues(rels []*relation.Relation, a schema.Attribute, extra []string) []relation.Value {
	byKey := map[string]relation.Value{}
	for _, r := range rels {
		if !r.Schema().Has(a.Name) {
			continue
		}
		for _, t := range r.Tuples() {
			if v, ok := t.RVal(a.Name); ok {
				byKey[v.Key()] = v
			}
		}
	}
	for _, s := range extra {
		v := relation.Str(s)
		byKey[v.Key()] = v
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := []relation.Value{relation.Null()}
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	if a.Type == schema.String {
		return append(out, relation.Str("~unseen~"))
	}
	return append(out, relation.Int(999983))
}
