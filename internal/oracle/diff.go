package oracle

// The differential harness: random heterogeneous inputs (internal/datagen)
// -> run the engine operator and the oracle's pointwise ground truth ->
// compare membership on the combined witness set. Any disagreement is
// minimised by greedy tuple deletion before it is reported, so a failure
// report names a near-minimal (tuple, tuple) pair, the probe point and
// both verdicts — everything needed to reproduce and debug by hand.
//
// The engine side of every comparison is the *naive* membership decision
// (In) applied to the engine's output relation, so both sides of the diff
// rest on the same obviously-correct foundation: direct substitution and
// sign tests. The engine's FM eliminator, canonicaliser, sat-cache,
// staircase subtraction and parallel merge all sit between the inputs and
// that output — which is exactly the machinery under test.

import (
	"fmt"
	"math/rand"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/datagen"
	"cdb/internal/exec"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// AllOps is the default operator mix: all seven CQA operators.
var AllOps = []string{"select", "project", "join", "intersect", "union", "rename", "difference"}

// Config drives one Diff run. The zero value of every field selects a
// sensible default; Seed 0 really means seed 0 (runs are reproducible
// from the printed seed either way).
type Config struct {
	Cases     int    // random cases to run (default 100)
	Seed      int64  // base seed; case i derives its own rng from it
	Workers   int    // engine worker-pool size (0 = GOMAXPROCS)
	MaxTuples int    // max tuples per random input relation (default 5)
	Plan      string // engine PlanMode ("" = auto); "vector" forces the vector fast path
	Spatial   bool   // draw polygon-shaped spatial inputs instead of random heterogeneous ones
	Ops       []string
	Witness   WitnessOptions
}

func (c Config) withDefaults() Config {
	if c.Cases == 0 {
		c.Cases = 100
	}
	if c.MaxTuples == 0 {
		c.MaxTuples = 5
	}
	if len(c.Ops) == 0 {
		c.Ops = AllOps
	}
	return c
}

// Failure is one engine/oracle disagreement, minimised.
type Failure struct {
	Case   int               `json:"case"`
	Op     string            `json:"op"`
	Apply  string            `json:"apply"`
	Point  map[string]string `json:"point,omitempty"`
	Engine bool              `json:"engine"`
	Oracle bool              `json:"oracle"`
	R1     string            `json:"r1"`
	R2     string            `json:"r2,omitempty"`
	Err    string            `json:"error,omitempty"`
}

func (f Failure) String() string {
	if f.Err != "" {
		return fmt.Sprintf("case %d %s: %s\nr1 = %s\nr2 = %s", f.Case, f.Apply, f.Err, f.R1, f.R2)
	}
	return fmt.Sprintf("case %d %s at point %v: engine=%v oracle=%v\nr1 = %s\nr2 = %s",
		f.Case, f.Apply, f.Point, f.Engine, f.Oracle, f.R1, f.R2)
}

// Report summarises a Diff run.
type Report struct {
	Cases    int            `json:"cases"`
	Seed     int64          `json:"seed"`
	Workers  int            `json:"workers"`
	Points   int            `json:"points_compared"`
	PerOp    map[string]int `json:"cases_per_op"`
	Failures []Failure      `json:"failures"`
}

// Diff runs the differential harness: cfg.Cases random (inputs, operator)
// cases, engine vs oracle, membership compared at every witness point.
// Case i is fully determined by cfg.Seed and i, so any failure reproduces
// from the report's seed alone.
func Diff(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Cases: cfg.Cases, Seed: cfg.Seed, Workers: exec.New(cfg.Workers).Workers(),
		PerOp: map[string]int{}}
	for i := 0; i < cfg.Cases; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*1_000_003))
		op := cfg.Ops[i%len(cfg.Ops)]
		rep.PerOp[op]++
		a, r1, r2, err := randomCase(rng, op, cfg.MaxTuples, cfg.Spatial)
		if err != nil {
			return nil, fmt.Errorf("oracle: case %d: %w", i, err)
		}
		ec := exec.New(cfg.Workers)
		ec.SeqThreshold = 1
		ec.PlanMode = cfg.Plan
		eng, err := RunEngine(ec, a, r1, r2)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{Case: i, Op: op, Apply: a.String(),
				R1: r1.String(), R2: renderR2(r2), Err: "engine: " + err.Error()})
			continue
		}
		pts := witnessesFor(rng, a, r1, r2, cfg.Witness)
		for _, p := range pts {
			rep.Points++
			engIn, err1 := In(eng, p)
			oraIn, err2 := a.Holds(r1, r2, p)
			if err1 != nil || err2 != nil {
				rep.Failures = append(rep.Failures, Failure{Case: i, Op: op, Apply: a.String(),
					Point: renderPoint(p), R1: r1.String(), R2: renderR2(r2),
					Err: fmt.Sprintf("membership: engine=%v oracle=%v", err1, err2)})
				break
			}
			if engIn != oraIn {
				m1, m2 := minimize(a, r1, r2, p, cfg.Workers, cfg.Plan)
				rep.Failures = append(rep.Failures, Failure{Case: i, Op: op, Apply: a.String(),
					Point: renderPoint(p), Engine: engIn, Oracle: oraIn,
					R1: m1.String(), R2: renderR2(m2)})
				break
			}
		}
	}
	return rep, nil
}

// RunEngine executes one operator application on the engine under an
// execution context. Exported so cdbbench and the tests drive exactly the
// operator dispatch the harness uses.
func RunEngine(ec *exec.Context, a Apply, r1, r2 *relation.Relation) (*relation.Relation, error) {
	switch a.Op {
	case "select":
		return cqa.SelectCtx(ec, r1, a.Cond)
	case "project":
		return cqa.ProjectCtx(ec, r1, a.Cols...)
	case "join":
		return cqa.JoinCtx(ec, r1, r2)
	case "intersect":
		return cqa.IntersectCtx(ec, r1, r2)
	case "union":
		return cqa.UnionCtx(ec, r1, r2)
	case "rename":
		return cqa.RenameCtx(ec, r1, a.Old, a.New)
	case "difference":
		return cqa.DifferenceCtx(ec, r1, r2)
	default:
		return nil, fmt.Errorf("oracle: unknown operator %q", a.Op)
	}
}

// randomCase draws one (application, inputs) case for the operator.
func randomCase(rng *rand.Rand, op string, maxTuples int, spatial bool) (Apply, *relation.Relation, *relation.Relation, error) {
	a := Apply{Op: op}
	input := func() *relation.Relation {
		if spatial {
			return datagen.RandomPolygonRelation(rng, maxTuples)
		}
		return datagen.RandomRelation(rng, datagen.RandomSchema(rng), maxTuples)
	}
	switch op {
	case "select":
		r1 := input()
		a.Cond = randomCondition(rng, r1.Schema())
		return a, r1, nil, nil
	case "project":
		r1 := input()
		s := r1.Schema()
		names := s.Names()
		// A random non-empty subset, in schema order.
		for len(a.Cols) == 0 {
			a.Cols = nil
			for _, n := range names {
				if rng.Intn(2) == 0 {
					a.Cols = append(a.Cols, n)
				}
			}
		}
		return a, r1, nil, nil
	case "rename":
		r1 := input()
		names := r1.Schema().Names()
		a.Old = names[rng.Intn(len(names))]
		a.New = "r" + a.Old
		return a, r1, nil, nil
	case "join":
		if spatial {
			// Spatial relations share one schema, so the natural join is
			// the intersection — exactly the pairing the vector fast path
			// accelerates.
			return a, input(), input(), nil
		}
		r1, r2, err := datagen.RandomJoinPair(rng, maxTuples)
		return a, r1, r2, err
	case "intersect", "union", "difference":
		if spatial {
			return a, input(), input(), nil
		}
		r1, r2 := datagen.RandomRelationPair(rng, maxTuples)
		return a, r1, r2, nil
	default:
		return a, nil, nil, fmt.Errorf("unknown operator %q", op)
	}
}

// randomCondition draws a 1-2 atom selection condition over s: linear
// atoms (every comparison operator, including the tuple-splitting !=) over
// the constraint attributes, string atoms (=, !=, attribute-to-attribute)
// over the relational ones, with literals that sometimes match nothing.
func randomCondition(rng *rand.Rand, s schema.Schema) cqa.Condition {
	rel := s.RelationalNames()
	con := s.ConstraintNames()
	pool := []string{"a", "b", "c", "zz"}
	n := 1 + rng.Intn(2)
	var cond cqa.Condition
	for i := 0; i < n; i++ {
		if len(rel) > 0 && rng.Intn(3) == 0 {
			attr := rel[rng.Intn(len(rel))]
			switch {
			case len(rel) > 1 && rng.Intn(4) == 0:
				cond = append(cond, cqa.StrEqAttr(rel[0], rel[1]))
			case rng.Intn(2) == 0:
				cond = append(cond, cqa.StrEq(attr, pool[rng.Intn(len(pool))]))
			default:
				cond = append(cond, cqa.StrNe(attr, pool[rng.Intn(len(pool))]))
			}
			continue
		}
		ops := []cqa.CompOp{cqa.OpEq, cqa.OpNe, cqa.OpLt, cqa.OpLe, cqa.OpGt, cqa.OpGe}
		v := con[rng.Intn(len(con))]
		k := rational.FromInt(int64(rng.Intn(17) - 8))
		if len(con) > 1 && rng.Intn(3) == 0 {
			cond = append(cond, cqa.AttrCmpAttr(v, ops[rng.Intn(len(ops))], con[rng.Intn(len(con))]))
			continue
		}
		cond = append(cond, cqa.AttrCmpConst(v, ops[rng.Intn(len(ops))], k))
	}
	return cond
}

// witnessesFor builds the witness set for one case over the application's
// OUTPUT schema, feeding the operator's own arguments (condition
// boundaries, rename) into the candidate pools.
func witnessesFor(rng *rand.Rand, a Apply, r1, r2 *relation.Relation, opts WitnessOptions) []relation.Point {
	switch a.Op {
	case "select":
		var extra Extra
		for _, atom := range a.Cond {
			switch at := atom.(type) {
			case cqa.LinearAtom:
				// Only the boundary line matters for witness candidates; the
				// comparison direction is irrelevant.
				extra.Atoms = append(extra.Atoms, constraint.Constraint{Expr: at.Expr, Op: constraint.Le})
			case cqa.StringAtom:
				if at.IsLit {
					if extra.Strings == nil {
						extra.Strings = map[string][]string{}
					}
					extra.Strings[at.Attr] = append(extra.Strings[at.Attr], at.Lit)
				}
			}
		}
		return Witnesses(rng, r1.Schema(), opts, extra, r1)
	case "project":
		ps, err := r1.Schema().Project(a.Cols...)
		if err != nil {
			return nil
		}
		return Witnesses(rng, ps, opts, Extra{}, r1)
	case "rename":
		pts := Witnesses(rng, r1.Schema(), opts, Extra{}, r1)
		out := make([]relation.Point, len(pts))
		for i, p := range pts {
			q := relation.Point{}
			for k, v := range p {
				if k == a.Old {
					q[a.New] = v
				} else {
					q[k] = v
				}
			}
			out[i] = q
		}
		return out
	case "join":
		js, err := r1.Schema().Join(r2.Schema())
		if err != nil {
			return nil
		}
		return Witnesses(rng, js, opts, Extra{}, r1, r2)
	default: // intersect, union, difference: schemas are equal
		return Witnesses(rng, r1.Schema(), opts, Extra{}, r1, r2)
	}
}

// minimize greedily deletes tuples from both inputs while the engine and
// the oracle still disagree at point p, converging on a near-minimal
// counterexample (typically a single tuple pair).
func minimize(a Apply, r1, r2 *relation.Relation, p relation.Point, workers int, plan string) (*relation.Relation, *relation.Relation) {
	disagrees := func(c1, c2 *relation.Relation) bool {
		ec := exec.New(workers)
		ec.SeqThreshold = 1
		ec.PlanMode = plan
		out, err := RunEngine(ec, a, c1, c2)
		if err != nil {
			return false
		}
		engIn, err1 := In(out, p)
		oraIn, err2 := a.Holds(c1, c2, p)
		if err1 != nil || err2 != nil {
			return false
		}
		return engIn != oraIn
	}
	shrink := func(r *relation.Relation, other *relation.Relation, first bool) *relation.Relation {
		if r == nil {
			return nil
		}
		cur := r
		for i := 0; i < cur.Len(); {
			cand := relation.New(cur.Schema())
			for j, t := range cur.Tuples() {
				if j != i {
					cand.MustAdd(t)
				}
			}
			var ok bool
			if first {
				ok = disagrees(cand, other)
			} else {
				ok = disagrees(other, cand)
			}
			if ok {
				cur = cand
			} else {
				i++
			}
		}
		return cur
	}
	// Two alternating passes reach a fixpoint in practice.
	for round := 0; round < 2; round++ {
		r1 = shrink(r1, r2, true)
		r2 = shrink(r2, r1, false)
	}
	return r1, r2
}

func renderR2(r2 *relation.Relation) string {
	if r2 == nil {
		return ""
	}
	return r2.String()
}

func renderPoint(p relation.Point) map[string]string {
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v.String()
	}
	return out
}
