package oracle

import (
	"testing"
)

// TestDiffAgainstEngine is the core differential acceptance test: seeded
// random cases across all seven operators, engine vs oracle, at both a
// single worker and a small pool. Any failure prints the minimised
// counterexample and the seed that reproduces it.
func TestDiffAgainstEngine(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rep, err := Diff(Config{Cases: 210, Seed: 1, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Points == 0 {
			t.Fatalf("workers=%d: no witness points compared", workers)
		}
		for _, f := range rep.Failures {
			t.Errorf("workers=%d seed=%d: %s", workers, rep.Seed, f.String())
		}
		if len(rep.Failures) > 3 {
			t.Fatalf("workers=%d: %d failures (showing first 3)", workers, len(rep.Failures))
		}
	}
}

// TestDiffReproducible pins that a run is a pure function of its seed.
func TestDiffReproducible(t *testing.T) {
	a, err := Diff(Config{Cases: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diff(Config{Cases: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Points != b.Points || len(a.Failures) != len(b.Failures) {
		t.Fatalf("same seed, different runs: points %d vs %d, failures %d vs %d",
			a.Points, b.Points, len(a.Failures), len(b.Failures))
	}
}

// TestDiffSpatialVector drives the harness in spatial mode with the
// vector fast path forced: polygon-shaped inputs (convex, triangulated
// concave, and fallback strips), every decision the clipper can take
// going through exact polygon geometry. Agreement with the pointwise
// oracle here is the vector path's semantic acceptance test.
func TestDiffSpatialVector(t *testing.T) {
	for _, plan := range []string{"vector", "auto"} {
		rep, err := Diff(Config{Cases: 120, Seed: 3, Spatial: true, Plan: plan})
		if err != nil {
			t.Fatalf("plan=%s: %v", plan, err)
		}
		if rep.Points == 0 {
			t.Fatalf("plan=%s: no witness points compared", plan)
		}
		for _, f := range rep.Failures {
			t.Errorf("plan=%s seed=%d: %s", plan, rep.Seed, f.String())
		}
		if len(rep.Failures) > 3 {
			t.Fatalf("plan=%s: %d failures (showing first 3)", plan, len(rep.Failures))
		}
	}
}
