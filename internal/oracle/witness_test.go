package oracle

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

func testRelation(t *testing.T) *relation.Relation {
	t.Helper()
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(
		map[string]relation.Value{"id": relation.Str("a")},
		constraint.And(cons(t, "x <= 5, y >= 0, x + y <= 6")...)))
	return r
}

// TestWitnessesCoverBoundaries: the structural pass must probe the exact
// boundary coordinates (the x=5 intercept here) and both sides of them.
func TestWitnessesCoverBoundaries(t *testing.T) {
	r := testRelation(t)
	pts := Witnesses(rand.New(rand.NewSource(1)), r.Schema(), WitnessOptions{}, Extra{}, r)
	if len(pts) == 0 {
		t.Fatal("no witness points")
	}
	var onBoundary, above, below, sawNullID, sawBoundID bool
	for _, p := range pts {
		for _, name := range r.Schema().Names() {
			if _, ok := p[name]; !ok {
				t.Fatalf("witness point misses attribute %q: %v", name, p)
			}
		}
		x, _ := p["x"].AsRat()
		switch x.Sub(rational.FromInt(5)).Sign() {
		case 0:
			onBoundary = true
		case 1:
			above = true
		case -1:
			below = true
		}
		if p["id"].IsNull() {
			sawNullID = true
		} else {
			sawBoundID = true
		}
	}
	if !onBoundary || !above || !below {
		t.Errorf("witness x-coordinates miss the x=5 boundary neighbourhood: on=%v above=%v below=%v",
			onBoundary, above, below)
	}
	if !sawNullID || !sawBoundID {
		t.Errorf("witness relational axis misses NULL or the observed value: null=%v bound=%v",
			sawNullID, sawBoundID)
	}
}

// TestWitnessesDeterministic: same seed, same points (the acceptance runs
// depend on reproducibility from the printed seed).
func TestWitnessesDeterministic(t *testing.T) {
	r := testRelation(t)
	a := Witnesses(rand.New(rand.NewSource(9)), r.Schema(), WitnessOptions{}, Extra{}, r)
	b := Witnesses(rand.New(rand.NewSource(9)), r.Schema(), WitnessOptions{}, Extra{}, r)
	if len(a) != len(b) {
		t.Fatalf("same seed, different point counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k, v := range a[i] {
			if !v.Identical(b[i][k]) {
				t.Fatalf("same seed, point %d differs at %q: %s vs %s", i, k, v, b[i][k])
			}
		}
	}
}

// TestWitnessesCapped: the grid sampler respects MaxPoints.
func TestWitnessesCapped(t *testing.T) {
	r := testRelation(t)
	pts := Witnesses(rand.New(rand.NewSource(3)), r.Schema(), WitnessOptions{MaxPoints: 10}, Extra{}, r)
	if len(pts) > 10 {
		t.Fatalf("MaxPoints=10 but got %d points", len(pts))
	}
	if len(pts) == 0 {
		t.Fatal("sampling produced no points")
	}
}
