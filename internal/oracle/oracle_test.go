package oracle

import (
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/query"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// cons parses a comma-separated constraint list; tests die on bad input.
func cons(t *testing.T, src string) []constraint.Constraint {
	t.Helper()
	cs, err := query.ParseConstraints(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return cs
}

func pt(kv map[string]relation.Value) relation.Point { return relation.Point(kv) }

func ratv(n int64) relation.Value { return relation.Rat(rational.FromInt(n)) }

func TestInNarrowAndBroadSemantics(t *testing.T) {
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(
		map[string]relation.Value{"id": relation.Str("a")},
		constraint.And(cons(t, "x <= 5")...)))
	// Narrow NULL: this tuple binds id to NULL, admitting only NULL.
	r.MustAdd(relation.NewTuple(nil, constraint.And(cons(t, "x = 7")...)))

	cases := []struct {
		name string
		p    relation.Point
		want bool
	}{
		{"boundary in", pt(map[string]relation.Value{"id": relation.Str("a"), "x": ratv(5)}), true},
		{"interior in", pt(map[string]relation.Value{"id": relation.Str("a"), "x": ratv(-100)}), true},
		{"outside", pt(map[string]relation.Value{"id": relation.Str("a"), "x": ratv(6)}), false},
		{"wrong id", pt(map[string]relation.Value{"id": relation.Str("b"), "x": ratv(5)}), false},
		{"null id matches null tuple", pt(map[string]relation.Value{"id": relation.Null(), "x": ratv(7)}), true},
		{"null id misses bound tuple", pt(map[string]relation.Value{"id": relation.Null(), "x": ratv(5)}), false},
		{"bound id misses null tuple", pt(map[string]relation.Value{"id": relation.Str("a"), "x": ratv(7)}), false},
	}
	for _, c := range cases {
		got, err := In(r, c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: In = %v, want %v", c.name, got, c.want)
		}
	}

	// A point missing an attribute is a caller error, not a miss.
	if _, err := In(r, pt(map[string]relation.Value{"id": relation.Str("a")})); err == nil {
		t.Error("expected error for point missing attribute x")
	}
}

func TestInBroadUnconstrained(t *testing.T) {
	// An empty conjunction constrains nothing: the tuple admits every
	// rational coordinate (broad semantics).
	s := schema.MustNew(schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(nil, constraint.True()))
	got, err := In(r, pt(map[string]relation.Value{"x": ratv(123456), "y": relation.Rat(rational.New(-7, 3))}))
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("unconstrained tuple must admit every point")
	}
}

func TestNaiveSat(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"", true},
		{"0 < 0", false}, // the False sentinel
		{"x <= 5", true},
		{"x <= 5, x >= 6", false},
		{"x <= 5, x >= 5", true},
		{"x < 5, x >= 5", false},
		{"x < 0, x >= 0", false},      // strict closure trap: closure feasible, set empty
		{"x = 3, x <= 2", false},
		{"x = 3, x <= 3", true},
		{"x + y <= 1, x >= 1, y >= 1", false},
		{"x + y <= 2, x >= 1, y >= 1", true},
		{"x - y < 0, y - z < 0, z - x < 0", false}, // strict cycle
		{"x - y <= 0, y - z <= 0, z - x <= 0", true},
		{"2x + 3y = 6, x = 3, y >= 1", false},
		{"2x + 3y = 6, x = 3, y = 0", true},
	}
	for _, c := range cases {
		if got := naiveSat(cons(t, c.src)); got != c.want {
			t.Errorf("naiveSat(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestInProjection(t *testing.T) {
	// r(x, y) with x = y and y <= 3; projecting onto x keeps x <= 3.
	s := schema.MustNew(schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(nil, constraint.And(cons(t, "x = y, y <= 3")...)))

	in, err := inProjection(r, []string{"x"}, pt(map[string]relation.Value{"x": ratv(2)}))
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Error("x=2 should be in π_x(r)")
	}
	in, err = inProjection(r, []string{"x"}, pt(map[string]relation.Value{"x": ratv(4)}))
	if err != nil {
		t.Fatal(err)
	}
	if in {
		t.Error("x=4 should not be in π_x(r)")
	}
}

func TestInProjectionDropsRelational(t *testing.T) {
	// Dropping a relational attribute is purely existential: both a bound
	// and a NULL binding witness the projection.
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"))
	r := relation.New(s)
	r.MustAdd(relation.NewTuple(
		map[string]relation.Value{"id": relation.Str("a")},
		constraint.And(cons(t, "x <= 1")...)))
	in, err := inProjection(r, []string{"x"}, pt(map[string]relation.Value{"x": ratv(0)}))
	if err != nil {
		t.Fatal(err)
	}
	if !in {
		t.Error("x=0 should be in π_x(r)")
	}
}

func TestCondHolds(t *testing.T) {
	p := pt(map[string]relation.Value{
		"id":  relation.Str("a"),
		"tag": relation.Null(),
		"x":   ratv(3),
	})
	cases := []struct {
		name string
		cond cqa.Condition
		want bool
	}{
		{"str eq hit", cqa.Condition{cqa.StrEq("id", "a")}, true},
		{"str eq miss", cqa.Condition{cqa.StrEq("id", "b")}, false},
		{"str ne", cqa.Condition{cqa.StrNe("id", "b")}, true},
		{"null matches nothing", cqa.Condition{cqa.StrEq("tag", "a")}, false},
		{"null not even ne", cqa.Condition{cqa.StrNe("tag", "zzz")}, false},
		{"linear le hit", cqa.Condition{cqa.AttrCmpConst("x", cqa.OpLe, rational.FromInt(3))}, true},
		{"linear lt miss", cqa.Condition{cqa.AttrCmpConst("x", cqa.OpLt, rational.FromInt(3))}, false},
		{"linear ne", cqa.Condition{cqa.AttrCmpConst("x", cqa.OpNe, rational.FromInt(2))}, true},
		{"conjunction", cqa.Condition{cqa.StrEq("id", "a"), cqa.AttrCmpConst("x", cqa.OpGe, rational.FromInt(3))}, true},
	}
	for _, c := range cases {
		got, err := CondHolds(c.cond, p)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: CondHolds = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestApplyHoldsDifference(t *testing.T) {
	s := schema.MustNew(schema.Con("x"))
	r1 := relation.New(s)
	r1.MustAdd(relation.NewTuple(nil, constraint.And(cons(t, "x <= 10, x >= 0")...)))
	r2 := relation.New(s)
	r2.MustAdd(relation.NewTuple(nil, constraint.And(cons(t, "x <= 7, x >= 3")...)))
	a := Apply{Op: "difference"}
	for _, c := range []struct {
		x    int64
		want bool
	}{{-1, false}, {0, true}, {2, true}, {3, false}, {7, false}, {8, true}, {10, true}, {11, false}} {
		got, err := a.Holds(r1, r2, pt(map[string]relation.Value{"x": ratv(c.x)}))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("x=%d: Holds = %v, want %v", c.x, got, c.want)
		}
	}
}
