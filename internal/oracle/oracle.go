// Package oracle is the semantic correctness oracle for the CQA engine: a
// deliberately-naive, obviously-correct reference evaluator for the
// point-set semantics of constraint relations (§2.5's closure principle
// says every operator's output *denotes exactly the right point set* — this
// package is how that claim is checked, rather than assumed).
//
// The oracle has three parts:
//
//   - exact rational point membership (In, Holds): a point is in a relation
//     iff some tuple admits it, decided by direct substitution and sign
//     tests over exact rationals — no Fourier-Motzkin, no canonicalisation,
//     no caches, no simplex, none of the engine's optimised machinery;
//   - witness point generation (Witnesses): finite probe sets built from
//     the constraint geometry (single-variable intercepts, pairwise
//     boundary vertices, midpoints, just-outside offsets) plus seeded
//     random rational points;
//   - set-theoretic operator evaluation (Apply.Holds): for each of the
//     seven CQA operators, the textbook pointwise characterisation of the
//     output's semantics in terms of the inputs' semantics. Project is the
//     only operator that needs more than membership of the inputs — its
//     existential quantifier over the dropped attributes is decided by an
//     independent, unoptimised textbook Fourier-Motzkin (naiveSat) that
//     shares no code with the engine's eliminator.
//
// On top of these, diff.go implements the differential harness: random
// inputs, engine run vs oracle evaluation, membership compared on the
// combined witness set, failures minimised before reporting.
//
// Everything is exact rational arithmetic; there is no floating point
// anywhere in this package.
package oracle

import (
	"fmt"
	"sort"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// evalExpr evaluates a linear expression at a point by direct
// substitution. ok=false when a referenced attribute is NULL or non-
// rational at the point (the narrow missing-value semantics: a NULL never
// satisfies a comparison).
func evalExpr(e constraint.Expr, p relation.Point) (rational.Rat, bool) {
	sum := e.ConstTerm()
	for _, t := range e.Terms() {
		v, present := p[t.Var]
		if !present {
			return rational.Zero, false
		}
		r, isRat := v.AsRat()
		if !isRat {
			return rational.Zero, false
		}
		sum = sum.Add(t.Coef.Mul(r))
	}
	return sum, true
}

// atomHolds evaluates one atomic constraint at a point: substitute, then a
// single sign test.
func atomHolds(c constraint.Constraint, p relation.Point) bool {
	v, ok := evalExpr(c.Expr, p)
	if !ok {
		return false
	}
	switch c.Op {
	case constraint.Eq:
		return v.IsZero()
	case constraint.Le:
		return v.Sign() <= 0
	default: // Lt
		return v.Sign() < 0
	}
}

// tupleAdmits reports whether tuple t admits point p under schema s: every
// relational attribute's binding (NULL when unbound) must be identical to
// the point's value (narrow semantics), and the point must satisfy every
// atomic constraint (broad semantics: an unconstrained attribute imposes
// nothing).
func tupleAdmits(t relation.Tuple, s schema.Schema, p relation.Point) bool {
	for _, a := range s.Attrs() {
		if a.Kind != schema.Relational {
			continue
		}
		tv, _ := t.RVal(a.Name) // NULL when unbound
		if !tv.Identical(p[a.Name]) {
			return false
		}
	}
	for _, c := range t.Constraint().Constraints() {
		if !atomHolds(c, p) {
			return false
		}
	}
	return true
}

// In reports exact membership of point p in the semantics of r, by the
// naive definition: some tuple admits the point. The point must bind every
// attribute of r's schema, with rational values for constraint attributes.
func In(r *relation.Relation, p relation.Point) (bool, error) {
	for _, a := range r.Schema().Attrs() {
		v, present := p[a.Name]
		if !present {
			return false, fmt.Errorf("oracle: point missing attribute %q", a.Name)
		}
		if a.Kind == schema.Constraint {
			if _, isRat := v.AsRat(); !isRat {
				return false, fmt.Errorf("oracle: point has non-rational value for constraint attribute %q", a.Name)
			}
		}
	}
	for _, t := range r.Tuples() {
		if tupleAdmits(t, r.Schema(), p) {
			return true, nil
		}
	}
	return false, nil
}

// naiveSat decides satisfiability of a conjunction of atomic constraints
// by textbook Fourier-Motzkin elimination, independently of the engine's
// eliminator: equalities are split into two inequalities up front (no
// Gauss substitution step), variables are eliminated in sorted order (no
// heuristics), and nothing is swept, canonicalised or cached. Exponential
// in the worst case — callers keep inputs small; correctness is the only
// concern here.
func naiveSat(cs []constraint.Constraint) bool {
	// Split e = 0 into e <= 0 and -e <= 0.
	work := make([]constraint.Constraint, 0, len(cs))
	for _, c := range cs {
		if c.Op == constraint.Eq {
			work = append(work,
				constraint.Constraint{Expr: c.Expr, Op: constraint.Le},
				constraint.Constraint{Expr: c.Expr.Neg(), Op: constraint.Le})
			continue
		}
		work = append(work, c)
	}
	varSet := map[string]bool{}
	for _, c := range work {
		for _, v := range c.Expr.Vars() {
			varSet[v] = true
		}
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		var lowers, uppers, rest []constraint.Constraint
		for _, c := range work {
			a := c.Expr.Coef(v)
			switch {
			case a.IsZero():
				rest = append(rest, c)
			case a.Sign() > 0:
				uppers = append(uppers, c)
			default:
				lowers = append(lowers, c)
			}
		}
		work = rest
		for _, lo := range lowers {
			al := lo.Expr.Coef(v) // < 0
			for _, up := range uppers {
				au := up.Expr.Coef(v) // > 0
				comb := up.Expr.Scale(al.Neg()).Add(lo.Expr.Scale(au))
				op := constraint.Le
				if lo.Op == constraint.Lt || up.Op == constraint.Lt {
					op = constraint.Lt
				}
				work = append(work, constraint.Constraint{Expr: comb, Op: op})
			}
		}
	}
	// All variables eliminated: every residual is constant.
	for _, c := range work {
		k := c.Expr.ConstTerm()
		if c.Op == constraint.Le && k.Sign() > 0 {
			return false
		}
		if c.Op == constraint.Lt && k.Sign() >= 0 {
			return false
		}
	}
	return true
}

// Sat is naiveSat over a conjunction: the oracle's independent
// satisfiability decision, used as the reference in the Fourier-Motzkin
// fuzz target and the projection oracle.
func Sat(j constraint.Conjunction) bool {
	return naiveSat(j.Constraints())
}

// inProjection reports exact membership of q (a point over the projected
// schema, attributes keep) in π_keep(r): some tuple must match q on the
// kept relational attributes and have a satisfiable residual constraint
// once the kept constraint attributes are pinned to q's coordinates. The
// dropped relational attributes are existentially free (the witness
// extension can always copy the tuple's own binding), and the residual
// satisfiability over the dropped constraint attributes is decided by
// naiveSat.
func inProjection(r *relation.Relation, keep []string, q relation.Point) (bool, error) {
	keepSet := map[string]bool{}
	for _, k := range keep {
		keepSet[k] = true
	}
	for _, k := range keep {
		a, ok := r.Schema().Attr(k)
		if !ok {
			return false, fmt.Errorf("oracle: projection attribute %q not in schema", k)
		}
		v, present := q[k]
		if !present {
			return false, fmt.Errorf("oracle: point missing attribute %q", k)
		}
		if a.Kind == schema.Constraint {
			if _, isRat := v.AsRat(); !isRat {
				return false, fmt.Errorf("oracle: point has non-rational value for constraint attribute %q", k)
			}
		}
	}
	for _, t := range r.Tuples() {
		ok := true
		for _, a := range r.Schema().Attrs() {
			if a.Kind != schema.Relational || !keepSet[a.Name] {
				continue
			}
			tv, _ := t.RVal(a.Name)
			if !tv.Identical(q[a.Name]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		residual := make([]constraint.Constraint, 0, t.Constraint().Len())
		for _, c := range t.Constraint().Constraints() {
			e := c.Expr
			for _, v := range c.Expr.Vars() {
				if !keepSet[v] {
					continue
				}
				rv, _ := q[v].AsRat()
				e = e.Substitute(v, constraint.Const(rv))
			}
			residual = append(residual, constraint.Constraint{Expr: e, Op: c.Op})
		}
		if naiveSat(residual) {
			return true, nil
		}
	}
	return false, nil
}

// CondHolds evaluates a selection condition at a point: every atom must
// hold. NULL relational values satisfy nothing (narrow semantics), exactly
// as the engine's per-tuple evaluation behaves on the admitted points.
func CondHolds(cond cqa.Condition, p relation.Point) (bool, error) {
	for _, a := range cond {
		switch at := a.(type) {
		case cqa.StringAtom:
			lv, present := p[at.Attr]
			if !present || lv.IsNull() {
				return false, nil
			}
			var rv relation.Value
			if at.IsLit {
				rv = relation.Str(at.Lit)
			} else {
				ov, ok := p[at.OtherAttr]
				if !ok || ov.IsNull() {
					return false, nil
				}
				rv = ov
			}
			eq := lv.Equal(rv)
			if (at.Op == cqa.OpEq && !eq) || (at.Op == cqa.OpNe && eq) {
				return false, nil
			}
		case cqa.LinearAtom:
			v, ok := evalExpr(at.Expr, p)
			if !ok {
				return false, nil // a NULL operand matches nothing
			}
			s := v.Sign()
			hold := false
			switch at.Op {
			case cqa.OpEq:
				hold = s == 0
			case cqa.OpNe:
				hold = s != 0
			case cqa.OpLt:
				hold = s < 0
			case cqa.OpLe:
				hold = s <= 0
			case cqa.OpGt:
				hold = s > 0
			case cqa.OpGe:
				hold = s >= 0
			}
			if !hold {
				return false, nil
			}
		default:
			return false, fmt.Errorf("oracle: unknown atom type %T", a)
		}
	}
	return true, nil
}

// Apply describes one CQA operator application — the unit the differential
// harness compares engine-vs-oracle on. R2-less operators (select,
// project, rename) ignore the second relation.
type Apply struct {
	Op   string        // select | project | join | intersect | union | rename | difference
	Cond cqa.Condition // select
	Cols []string      // project: kept attributes
	Old  string        // rename
	New  string        // rename
}

// String renders the application for failure reports.
func (a Apply) String() string {
	switch a.Op {
	case "select":
		return fmt.Sprintf("select %s", a.Cond)
	case "project":
		return fmt.Sprintf("project on %v", a.Cols)
	case "rename":
		return fmt.Sprintf("rename %s to %s", a.Old, a.New)
	default:
		return a.Op
	}
}

// restrict returns the sub-point of p over schema s.
func restrict(p relation.Point, s schema.Schema) relation.Point {
	out := relation.Point{}
	for _, name := range s.Names() {
		out[name] = p[name]
	}
	return out
}

// Holds is the oracle's ground truth: membership of point p (over the
// OUTPUT schema of the application) in the semantics of a(r1, r2), decided
// set-theoretically from the inputs via the operators' pointwise
// characterisations:
//
//	p ∈ ς_ξ(r)    iff  p ∈ r and ξ(p)
//	p ∈ π_X(r)    iff  some extension of p to α(r) is in r
//	p ∈ r1 ⋈ r2   iff  p|α(r1) ∈ r1 and p|α(r2) ∈ r2
//	p ∈ r1 ∩ r2   iff  p ∈ r1 and p ∈ r2
//	p ∈ r1 ∪ r2   iff  p ∈ r1 or p ∈ r2
//	p ∈ ϱ_{n|o}r  iff  p[n↦o] ∈ r
//	p ∈ r1 − r2   iff  p ∈ r1 and p ∉ r2
func (a Apply) Holds(r1, r2 *relation.Relation, p relation.Point) (bool, error) {
	switch a.Op {
	case "select":
		in, err := In(r1, p)
		if err != nil || !in {
			return false, err
		}
		return CondHolds(a.Cond, p)
	case "project":
		return inProjection(r1, a.Cols, p)
	case "join":
		in1, err := In(r1, restrict(p, r1.Schema()))
		if err != nil || !in1 {
			return false, err
		}
		return In(r2, restrict(p, r2.Schema()))
	case "intersect":
		in1, err := In(r1, p)
		if err != nil || !in1 {
			return false, err
		}
		return In(r2, p)
	case "union":
		in1, err := In(r1, p)
		if err != nil || in1 {
			return in1, err
		}
		return In(r2, p)
	case "rename":
		q := relation.Point{}
		for k, v := range p {
			if k == a.New {
				q[a.Old] = v
			} else {
				q[k] = v
			}
		}
		return In(r1, q)
	case "difference":
		in1, err := In(r1, p)
		if err != nil || !in1 {
			return false, err
		}
		in2, err := In(r2, p)
		return !in2, err
	default:
		return false, fmt.Errorf("oracle: unknown operator %q", a.Op)
	}
}
