// Package obs is the observability layer of CQA/CDB: a hierarchical
// query tracer, a metrics registry with Prometheus text exposition, and
// an optional HTTP listener serving /metrics, expvar and net/http/pprof.
//
// The package is deliberately stdlib-only and imports nothing from the
// rest of the repository, so every layer — the constraint engine, the
// execution layer, the algebra, the catalog, the CLIs — can depend on it
// without cycles.
//
// The tracer answers the question the flat -stats table cannot: *where*
// inside a composed query plan the Fourier-Motzkin decisions, sat-cache
// misses and pool queueing happen. Spans form a tree (query → statement
// → plan node → operator → fan-out); each span carries named integer
// counters updated atomically from pool workers. FormatTree renders the
// tree EXPLAIN ANALYZE-style; TraceJSON exports it for machines.
//
// Everything is nil-safe: a nil *Tracer and a nil *Span accept every
// call as a no-op, so call sites instrument unconditionally and pay a
// single pointer test when observability is off.
package obs

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Tracer collects a forest of spans for one query session. The zero
// value is ready to use; the nil *Tracer is valid and records nothing.
//
// Spans are retained until Reset, so a long-lived session (the cqacdb
// REPL) should Reset between programs the way it resets -stats.
type Tracer struct {
	// SlowThreshold, when positive, makes every span whose wall time
	// reaches it log itself through Logger on End (the -slowlog flag).
	SlowThreshold time.Duration

	// Logger receives slow-span reports. Nil disables slow logging even
	// with a threshold set.
	Logger *slog.Logger

	// Metrics, when non-nil, receives every finished span's latency in
	// the cdb_span_seconds histogram, labelled by span name.
	Metrics *Registry

	// Clock overrides time.Now for deterministic tests. Nil = time.Now.
	Clock func() time.Time

	// QueryID, when set, is the flight-recorder identity of the query
	// this tracer is collecting: every root span is stamped with a
	// "query_id" label (visible in EXPLAIN ANALYZE and trace JSON) and
	// every slow-span log record carries it, so a slow span in the logs
	// joins against the query history ring. Set it before the query
	// starts; the per-query tracer owners (the server and the CLIs)
	// reassign it between queries.
	QueryID string

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock()
	}
	return time.Now()
}

// StartSpan opens a root span. Nil-safe (returns a nil span).
func (t *Tracer) StartSpan(name, detail string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, Name: name, Detail: detail, start: t.now()}
	if t.QueryID != "" {
		s.SetLabel("query_id", t.QueryID)
	}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans collected so far, in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span{}, t.roots...)
}

// Reset discards all collected spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.mu.Unlock()
}

// Span is one traced region: a named node of the query-execution tree
// carrying a wall-time interval and a set of named integer counters.
// Counter updates are safe from concurrent pool workers; opening child
// spans is safe from any goroutine. The nil *Span accepts every call.
type Span struct {
	Name   string // span kind: "query", "stmt", "join", "fanout", ...
	Detail string // human detail: the condition, the relation name, ...

	tracer *Tracer
	start  time.Time
	end    time.Time

	mu       sync.Mutex
	children []*Span
	counters map[string]int64
	labels   map[string]string
}

// StartChild opens a child span.
func (s *Span) StartChild(name, detail string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, Name: name, Detail: detail, start: s.tracer.now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Add increments the named counter by n.
func (s *Span) Add(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 8)
	}
	s.counters[key] += n
	s.mu.Unlock()
}

// Set stores the named counter's value.
func (s *Span) Set(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 8)
	}
	s.counters[key] = n
	s.mu.Unlock()
}

// SetLabel stores a named string label on the span. Labels carry the
// non-numeric facts EXPLAIN ANALYZE wants per plan node — the physical
// planner's chosen pairing strategy, for one — and render ahead of the
// counters in FormatTree. Safe from concurrent pool workers.
func (s *Span) SetLabel(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 2)
	}
	s.labels[key] = value
	s.mu.Unlock()
}

// Label returns the named label's value ("" when absent).
func (s *Span) Label(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.labels[key]
}

// Labels returns a copy of the span's labels (nil when there are none).
func (s *Span) Labels() map[string]string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.labels) == 0 {
		return nil
	}
	out := make(map[string]string, len(s.labels))
	for k, v := range s.labels {
		out[k] = v
	}
	return out
}

// Counter returns the named counter's current value (0 when absent).
func (s *Span) Counter(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Counters returns a copy of the span's counters.
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// CounterKeys returns the span's counter keys, sorted.
func (s *Span) CounterKeys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Children returns the span's children, in start order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span{}, s.children...)
}

// End closes the span, stamping its wall time, feeding the latency
// histogram (when the tracer has a Metrics registry) and logging the
// span when it is slower than the tracer's threshold. Idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = s.tracer.now()
	wall := s.end.Sub(s.start)
	s.mu.Unlock()

	t := s.tracer
	if t.Metrics != nil {
		t.Metrics.HistogramVec("cdb_span_seconds",
			"Span wall time by span name.", "span", DefLatencyBuckets).
			With(s.Name).Observe(wall.Seconds())
	}
	if t.SlowThreshold > 0 && wall >= t.SlowThreshold && t.Logger != nil {
		args := []any{"span", s.Name, "wall", wall}
		if t.QueryID != "" {
			args = append(args, "query", t.QueryID)
		}
		if s.Detail != "" {
			args = append(args, "detail", s.Detail)
		}
		for _, k := range s.CounterKeys() {
			args = append(args, k, s.Counter(k))
		}
		t.Logger.Warn("slow span", args...)
	}
}

// Wall returns the span's wall time: end-start once ended, zero before.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Walk visits s and every descendant depth-first in start order, passing
// each span's depth (s itself is depth 0). Nil-safe.
func Walk(s *Span, visit func(sp *Span, depth int)) {
	walk(s, 0, visit)
}

func walk(s *Span, depth int, visit func(*Span, int)) {
	if s == nil {
		return
	}
	visit(s, depth)
	for _, c := range s.Children() {
		walk(c, depth+1, visit)
	}
}

// SumCounter totals the named counter over the forest rooted at spans.
func SumCounter(spans []*Span, key string) int64 {
	var total int64
	for _, root := range spans {
		Walk(root, func(sp *Span, _ int) { total += sp.Counter(key) })
	}
	return total
}
