package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestServeMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("cdb_http_test_total", "HTTP test counter.").Add(7)
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := getBody(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cdb_http_test_total 7") {
		t.Errorf("/metrics: code %d, body:\n%s", code, body)
	}

	code, body = getBody(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars: code %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["cdb"]; !ok {
		t.Error("/debug/vars missing the registry snapshot under \"cdb\"")
	}

	// pprof is mounted (cmdline is cheap and always available).
	code, _ = getBody(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
	code, body = getBody(t, base+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index: code %d", code)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still serving after Close")
	}
}

func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("127.0.0.1:99999", NewRegistry()); err == nil {
		t.Error("bad address accepted")
	}
}

func TestMetricsContentType(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition type", ct)
	}
}
