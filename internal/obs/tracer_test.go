package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a tracer clock advancing a fixed step per call, so
// span wall times (and therefore golden renderings) are deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Unix(0, 0)
	var mu sync.Mutex
	var n int64
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestSpanHierarchyAndCounters(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("query", "R = ...")
	child := root.StartChild("join", "")
	child.Add("sat", 3)
	child.Add("sat", 2)
	child.Set("out", 7)
	grand := child.StartChild("fanout", "")
	grand.Set("items", 25)
	grand.End()
	child.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0] != root {
		t.Fatalf("roots = %v, want [root]", roots)
	}
	if got := child.Counter("sat"); got != 5 {
		t.Errorf("sat counter = %d, want 5 (Add accumulates)", got)
	}
	if got := child.Counter("out"); got != 7 {
		t.Errorf("out counter = %d, want 7", got)
	}
	if got := child.Counter("absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}
	var names []string
	Walk(root, func(sp *Span, depth int) {
		names = append(names, strings.Repeat(">", depth)+sp.Name)
	})
	if got := strings.Join(names, " "); got != "query >join >>fanout" {
		t.Errorf("walk order = %q", got)
	}
	if got := SumCounter(roots, "sat"); got != 5 {
		t.Errorf("SumCounter(sat) = %d, want 5", got)
	}
	if keys := child.CounterKeys(); strings.Join(keys, ",") != "out,sat" {
		t.Errorf("CounterKeys = %v, want sorted [out sat]", keys)
	}

	tr.Reset()
	if len(tr.Roots()) != 0 {
		t.Error("Reset did not clear roots")
	}
}

func TestSpanEndIdempotentAndWall(t *testing.T) {
	tr := NewTracer()
	tr.Clock = fakeClock(time.Millisecond)
	sp := tr.StartSpan("stmt", "") // t=1ms
	sp.End()                       // t=2ms
	w1 := sp.Wall()
	sp.End() // must not re-stamp
	if w2 := sp.Wall(); w1 != time.Millisecond || w2 != w1 {
		t.Errorf("wall = %v then %v, want 1ms both (idempotent End)", w1, w2)
	}
	unended := tr.StartSpan("open", "")
	if unended.Wall() != 0 {
		t.Error("Wall before End must be 0")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("query", "")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every span method must be a no-op on nil, not a panic.
	child := sp.StartChild("join", "")
	if child != nil {
		t.Fatal("nil span must hand out nil children")
	}
	sp.Add("sat", 1)
	sp.Set("out", 1)
	sp.End()
	if sp.Counter("sat") != 0 || sp.Counters() != nil || sp.CounterKeys() != nil ||
		sp.Children() != nil || sp.Wall() != 0 {
		t.Error("nil span accessors must return zero values")
	}
	if tr.Roots() != nil {
		t.Error("nil tracer Roots must be nil")
	}
	tr.Reset()
	Walk(nil, func(*Span, int) { t.Error("Walk(nil) must not visit") })
	if SumCounter(nil, "sat") != 0 {
		t.Error("SumCounter(nil) must be 0")
	}
}

func TestSpanCountersConcurrent(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("join", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp.Add("sat", 1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	if got := sp.Counter("sat"); got != 4000 {
		t.Errorf("lost counter updates: %d, want 4000", got)
	}
}

func TestSlowSpanLogging(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer()
	tr.Clock = fakeClock(10 * time.Millisecond)
	tr.SlowThreshold = 5 * time.Millisecond
	tr.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	sp := tr.StartSpan("join", "R1 x R2")
	sp.Set("sat", 42)
	sp.End() // wall = 10ms >= threshold
	got := buf.String()
	for _, want := range []string{"slow span", "span=join", "sat=42", "R1 x R2"} {
		if !strings.Contains(got, want) {
			t.Errorf("slow log missing %q:\n%s", want, got)
		}
	}

	// Below threshold: silent.
	buf.Reset()
	tr2 := NewTracer()
	tr2.Clock = fakeClock(time.Millisecond)
	tr2.SlowThreshold = 5 * time.Millisecond
	tr2.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	tr2.StartSpan("fast", "").End()
	if buf.Len() != 0 {
		t.Errorf("fast span logged: %s", buf.String())
	}
}

func TestSpanLatencyMetric(t *testing.T) {
	tr := NewTracer()
	tr.Clock = fakeClock(time.Millisecond)
	tr.Metrics = NewRegistry()
	tr.StartSpan("select", "").End()
	tr.StartSpan("select", "").End()
	h := tr.Metrics.HistogramVec("cdb_span_seconds",
		"Span wall time by span name.", "span", DefLatencyBuckets).With("select")
	if h.Count() != 2 {
		t.Errorf("span histogram count = %d, want 2", h.Count())
	}
}

// buildExplainFixture constructs the span forest the golden files pin: a
// query root, a statement, a plan subtree project∘select∘join with the
// operator-recorder spans folded in, and a fanout child under the join.
func buildExplainFixture() *Tracer {
	tr := NewTracer()
	tr.Clock = fakeClock(time.Millisecond)
	query := tr.StartSpan("query", "R = project select ... from join A and B on id, x")
	stmt := query.StartChild("stmt", "R = ...")
	project := stmt.StartChild("project", "id, x")
	sel := project.StartChild("select", "x <= 1500")
	join := sel.StartChild("join", "")
	fanout := join.StartChild("fanout", "")
	fanout.Set("items", 900)
	fanout.Set("workers", 4)
	fanout.Set("queue_ns", 120_000)
	fanout.Set("busy_ns", 3_400_000)
	fanout.Set("maxbusy_ns", 1_100_000)
	fanout.End()
	// The operator recorder's span: same name as the plan node, leaf —
	// FormatTree folds it into the join line.
	joinRec := join.StartChild("join", "")
	joinRec.Set("in", 60)
	joinRec.Set("out", 42)
	joinRec.Set("sat", 900)
	joinRec.Set("pruned", 858)
	joinRec.Set("par", 1)
	joinRec.End()
	join.End()
	selRec := sel.StartChild("select", "")
	selRec.Set("in", 42)
	selRec.Set("out", 17)
	selRec.Set("sat", 42)
	selRec.Set("pruned", 25)
	selRec.Set("hit", 30)
	selRec.Set("miss", 12)
	selRec.Set("fm", 12)
	selRec.End()
	sel.End()
	projRec := project.StartChild("project", "")
	projRec.Set("in", 17)
	projRec.Set("out", 17)
	projRec.End()
	project.End()
	stmt.Set("out", 17)
	stmt.End()
	query.End()
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate by writing the GOT block below to %s): %v\nGOT:\n%s", path, err, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch\nGOT:\n%s\nWANT:\n%s", path, got, want)
	}
}

func TestFormatTreeGolden(t *testing.T) {
	tr := buildExplainFixture()
	got := FormatTree(tr.Roots(), TreeOptions{}) // no wall: fully deterministic
	checkGolden(t, "explain.golden", []byte(got))
}

func TestFormatTreeFoldingPreservesTotals(t *testing.T) {
	tr := buildExplainFixture()
	roots := tr.Roots()
	rendered := FormatTree(roots, TreeOptions{})
	// The operator-recorder spans folded away: one line per plan node.
	if n := strings.Count(rendered, "─ join"); n != 1 {
		t.Errorf("join appears %d times, want 1 (recorder span folded):\n%s", n, rendered)
	}
	// ... but their counters survive on the folded line.
	if !strings.Contains(rendered, "sat=900") {
		t.Errorf("folded join line lost its counters:\n%s", rendered)
	}
	// And tree totals are untouched by rendering.
	if got := SumCounter(roots, "sat"); got != 942 {
		t.Errorf("SumCounter(sat) = %d, want 942", got)
	}
}

func TestFormatTreeWallAndDetailTruncation(t *testing.T) {
	tr := NewTracer()
	tr.Clock = fakeClock(time.Millisecond)
	sp := tr.StartSpan("select", strings.Repeat("x", 100))
	sp.End()
	out := FormatTree(tr.Roots(), TreeOptions{Wall: true, MaxDetail: 10})
	if !strings.Contains(out, "wall=1ms") {
		t.Errorf("missing wall time:\n%s", out)
	}
	if !strings.Contains(out, "xxxxxxxxx…") || strings.Contains(out, strings.Repeat("x", 11)) {
		t.Errorf("detail not truncated to 10 runes:\n%s", out)
	}
}

func TestTraceJSON(t *testing.T) {
	tr := buildExplainFixture()
	b, err := TraceJSON(tr.Roots())
	if err != nil {
		t.Fatal(err)
	}
	var spans []SpanJSON
	if err := json.Unmarshal(b, &spans); err != nil {
		t.Fatalf("TraceJSON output not valid JSON: %v", err)
	}
	if len(spans) != 1 || spans[0].Name != "query" {
		t.Fatalf("root = %+v, want one query span", spans)
	}
	if spans[0].StartNS != 0 {
		t.Errorf("first root start offset = %d, want 0", spans[0].StartNS)
	}
	stmt := spans[0].Children[0]
	if stmt.Name != "stmt" || stmt.Counters["out"] != 17 {
		t.Errorf("stmt span wrong: %+v", stmt)
	}
	if stmt.StartNS <= 0 {
		t.Errorf("child start offset = %d, want > 0", stmt.StartNS)
	}
	join := stmt.Children[0].Children[0].Children[0]
	if join.Name != "join" || len(join.Children) != 2 {
		t.Errorf("join span wrong (JSON keeps recorder spans unfolded): %+v", join)
	}
}

// TestSpanLabels covers the string-label side of spans: set/get,
// nil-safety, rendering ahead of counters, fold inheritance (the
// operator recorder's strategy label surfaces on the plan-node line,
// without overriding one the plan node set itself), and JSON export.
func TestSpanLabels(t *testing.T) {
	tr := NewTracer()
	join := tr.StartSpan("join", "")
	join.Set("pairs", 12)
	rec := join.StartChild("join", "")
	rec.SetLabel("strategy", "index")
	rec.Set("sat", 3)
	rec.End()
	join.End()

	if got := rec.Label("strategy"); got != "index" {
		t.Errorf("Label(strategy) = %q, want index", got)
	}
	if got := rec.Label("absent"); got != "" {
		t.Errorf("Label(absent) = %q, want empty", got)
	}
	if ls := join.Labels(); ls != nil {
		t.Errorf("plan node has no own labels, got %v", ls)
	}

	out := FormatTree(tr.Roots(), TreeOptions{})
	if !strings.Contains(out, "[strategy=index sat=3 pairs=12]") {
		t.Errorf("folded line should lead with the strategy label:\n%s", out)
	}

	// A label the plan node set itself survives the fold.
	tr2 := NewTracer()
	d := tr2.StartSpan("difference", "")
	d.SetLabel("strategy", "dense")
	rec2 := d.StartChild("difference", "")
	rec2.SetLabel("strategy", "sweep")
	rec2.End()
	d.End()
	if out := FormatTree(tr2.Roots(), TreeOptions{}); !strings.Contains(out, "strategy=dense") {
		t.Errorf("fold overwrote the parent's own label:\n%s", out)
	}

	b, err := TraceJSON(tr.Roots())
	if err != nil {
		t.Fatal(err)
	}
	var spans []SpanJSON
	if err := json.Unmarshal(b, &spans); err != nil {
		t.Fatal(err)
	}
	if spans[0].Children[0].Labels["strategy"] != "index" {
		t.Errorf("TraceJSON lost the label: %+v", spans[0].Children[0])
	}

	var nilSpan *Span
	nilSpan.SetLabel("k", "v")
	if nilSpan.Label("k") != "" || nilSpan.Labels() != nil {
		t.Error("nil span label methods not nil-safe")
	}
}
