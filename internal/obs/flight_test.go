package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestNewQueryID(t *testing.T) {
	re := regexp.MustCompile(`^q[0-9]+-[0-9a-f]{8}$`)
	a, b := NewQueryID(), NewQueryID()
	for _, id := range []string{a, b} {
		if !re.MatchString(id) {
			t.Fatalf("query id %q does not match %v", id, re)
		}
	}
	if a == b {
		t.Fatalf("consecutive query ids collide: %q", a)
	}
}

func TestOutcomeOf(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, OutcomeOK},
		{context.DeadlineExceeded, OutcomeTimeout},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), OutcomeTimeout},
		{context.Canceled, OutcomeCanceled},
		{fmt.Errorf("wrapped: %w", context.Canceled), OutcomeCanceled},
		{errors.New("parse error"), OutcomeError},
	}
	for _, c := range cases {
		if got := OutcomeOf(c.err); got != c.want {
			t.Errorf("OutcomeOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, act int64
		want     float64
	}{
		{100, 100, 1}, // perfect
		{100, 10, 10}, // overestimate
		{10, 100, 10}, // underestimate (symmetric)
		{0, 0, 1},     // both clamped to 1
		{0, 50, 50},   // est clamped
		{50, 0, 50},   // act clamped
	}
	for _, c := range cases {
		if got := QError(c.est, c.act); got != c.want {
			t.Errorf("QError(%d, %d) = %v, want %v", c.est, c.act, got, c.want)
		}
	}
}

func TestNilFlightIsNoOp(t *testing.T) {
	var f *Flight
	f.Start("q1", "s", "stmt", nil, nil)
	if f.Cancel("q1") {
		t.Fatal("nil flight canceled something")
	}
	f.Finish(FlightRecord{ID: "q1"})
	if got := f.Active(); got != nil {
		t.Fatalf("nil flight Active = %v", got)
	}
	if got := f.Recent(0, 0); got != nil {
		t.Fatalf("nil flight Recent = %v", got)
	}
	if f.Len() != 0 {
		t.Fatal("nil flight Len != 0")
	}
}

func TestFlightRingEviction(t *testing.T) {
	f := NewFlight(3)
	for i := 1; i <= 5; i++ {
		f.Finish(FlightRecord{ID: fmt.Sprintf("q%d", i), WallMS: float64(i)})
	}
	if f.Len() != 3 {
		t.Fatalf("ring len = %d, want 3", f.Len())
	}
	got := f.Recent(0, 0)
	want := []string{"q5", "q4", "q3"} // newest first, eldest two evicted
	if len(got) != len(want) {
		t.Fatalf("Recent returned %d records, want %d", len(got), len(want))
	}
	for i, rec := range got {
		if rec.ID != want[i] {
			t.Fatalf("Recent[%d] = %q, want %q (full: %+v)", i, rec.ID, want[i], got)
		}
	}
}

func TestRecentFiltersAndLimit(t *testing.T) {
	f := NewFlight(8)
	for i := 1; i <= 6; i++ {
		f.Finish(FlightRecord{ID: fmt.Sprintf("q%d", i), WallMS: float64(i * 10)})
	}
	// min_ms filter: only queries at least 35ms of wall time.
	got := f.Recent(35*time.Millisecond, 0)
	if len(got) != 3 || got[0].ID != "q6" || got[2].ID != "q4" {
		t.Fatalf("min-wall filter: %+v", got)
	}
	// limit truncates after filtering, newest first.
	got = f.Recent(0, 2)
	if len(got) != 2 || got[0].ID != "q6" || got[1].ID != "q5" {
		t.Fatalf("limit: %+v", got)
	}
}

func TestActiveAndCancel(t *testing.T) {
	f := NewFlight(4)
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	f.Start("q1", "s1", "R = join A and B", cancel1, func() []string { return []string{"sweep"} })
	f.Start("q2", "s2", "R = select x from A", nil, nil)

	active := f.Active()
	if len(active) != 2 || active[0].ID != "q1" || active[1].ID != "q2" {
		t.Fatalf("active listing: %+v", active)
	}
	if got := active[0].Strategies; len(got) != 1 || got[0] != "sweep" {
		t.Fatalf("progress strategies: %v", got)
	}
	if active[1].Strategies != nil {
		t.Fatalf("nil progress reported strategies: %v", active[1].Strategies)
	}

	if f.Cancel("nope") {
		t.Fatal("Cancel of unknown id reported true")
	}
	if !f.Cancel("q1") {
		t.Fatal("Cancel of live query reported false")
	}
	if ctx1.Err() == nil {
		t.Fatal("Cancel did not fire the context cancellation")
	}
	// A cancelled query stays listed until its Finish record arrives.
	if got := f.Active(); len(got) != 2 {
		t.Fatalf("cancelled query left the registry early: %+v", got)
	}
	f.Finish(FlightRecord{ID: "q1", Outcome: OutcomeCanceled})
	if got := f.Active(); len(got) != 1 || got[0].ID != "q2" {
		t.Fatalf("registry after finish: %+v", got)
	}
}

func TestDeriveStrategiesAndQError(t *testing.T) {
	f := NewFlight(4)
	f.Finish(FlightRecord{
		ID: "q1",
		Ops: []OpRoll{
			{Op: "select", In: 10, Out: 5}, // unary: ignored by derive
			{Op: "join", Strategy: "sweep", EstPairs: 100, ActPairs: 50},
			{Op: "join", Strategy: "index", EstPairs: 400, ActPairs: 10},
			{Op: "intersect", Strategy: "sweep", EstPairs: 20, ActPairs: 20},
		},
	})
	rec := f.Recent(0, 1)[0]
	if want := []string{"sweep", "index"}; strings.Join(rec.Strategies, ",") != strings.Join(want, ",") {
		t.Fatalf("strategies = %v, want %v", rec.Strategies, want)
	}
	if rec.EstPairs != 520 || rec.ActPairs != 80 {
		t.Fatalf("pair totals = %d/%d, want 520/80", rec.EstPairs, rec.ActPairs)
	}
	if rec.QError != 40 { // the index node: 400 est vs 10 act
		t.Fatalf("q-error = %v, want 40 (worst node)", rec.QError)
	}
}

func TestFlightNDJSONLog(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlight(4)
	f.Log = &buf
	f.Finish(FlightRecord{ID: "q1", Statement: "R = join A and B",
		WallMS: 2.5, Rows: 7, Outcome: OutcomeOK, CacheHitRate: -1})
	f.Finish(FlightRecord{ID: "q2", Outcome: OutcomeError, Error: "boom", CacheHitRate: -1})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("query log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec FlightRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec.ID != "q1" || rec.Rows != 7 || rec.Outcome != OutcomeOK || rec.CacheHitRate != -1 {
		t.Fatalf("record round-trip: %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil || rec.Error != "boom" {
		t.Fatalf("error record round-trip: %v %+v", err, rec)
	}
}

func TestFlightMetricsFamilies(t *testing.T) {
	reg := NewRegistry()
	f := NewFlight(4)
	f.Metrics = reg
	f.Finish(FlightRecord{ID: "q1", WallMS: 3, Rows: 12, Outcome: OutcomeOK,
		Ops: []OpRoll{{Op: "join", Strategy: "dense", EstPairs: 64, ActPairs: 8}}})
	f.Finish(FlightRecord{ID: "q2", WallMS: 5, Outcome: OutcomeTimeout})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`cdb_query_duration_seconds_count{outcome="ok"} 1`,
		`cdb_query_duration_seconds_count{outcome="timeout"} 1`,
		"cdb_query_rows_count 2",
		"cdb_planner_qerror_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestMisestimateWarning(t *testing.T) {
	var buf bytes.Buffer
	f := NewFlight(4)
	f.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	// Below the default threshold of 16: quiet.
	f.Finish(FlightRecord{ID: "q1",
		Ops: []OpRoll{{Op: "join", Strategy: "sweep", EstPairs: 100, ActPairs: 10}}})
	if strings.Contains(buf.String(), "misestimate") {
		t.Fatalf("q-error 10 warned below threshold:\n%s", buf.String())
	}
	// At the threshold: one warning carrying the evidence.
	f.Finish(FlightRecord{ID: "q2",
		Ops: []OpRoll{{Op: "join", Strategy: "index", EstPairs: 1600, ActPairs: 100}}})
	out := buf.String()
	for _, want := range []string{"planner misestimate", "query=q2", "strategy=index",
		"est_pairs=1600", "act_pairs=100", "q_error=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("misestimate log missing %q:\n%s", want, out)
		}
	}
	// A custom threshold overrides the default.
	buf.Reset()
	f.QErrorThreshold = 4
	f.Finish(FlightRecord{ID: "q3",
		Ops: []OpRoll{{Op: "join", Strategy: "sweep", EstPairs: 50, ActPairs: 10}}})
	if !strings.Contains(buf.String(), "planner misestimate") {
		t.Fatalf("q-error 5 not warned at threshold 4:\n%s", buf.String())
	}
}

func TestTracerQueryIDStamping(t *testing.T) {
	tr := NewTracer()
	tr.QueryID = "q9-deadbeef"
	root := tr.StartSpan("query", "R = join A and B")
	child := root.StartChild("join", "")
	child.End()
	root.End()
	if got := root.Label("query_id"); got != "q9-deadbeef" {
		t.Fatalf("root span query_id label = %q", got)
	}
	if got := child.Label("query_id"); got != "" {
		t.Fatalf("child span unexpectedly labelled: %q", got)
	}

	// Slow-span records carry the id too.
	var buf bytes.Buffer
	tr2 := NewTracer()
	tr2.QueryID = "q10-cafecafe"
	tr2.SlowThreshold = time.Nanosecond
	tr2.Logger = slog.New(slog.NewTextHandler(&buf, nil))
	sp := tr2.StartSpan("query", "slow one")
	time.Sleep(time.Millisecond)
	sp.End()
	if !strings.Contains(buf.String(), "query=q10-cafecafe") {
		t.Fatalf("slow-span log missing query id:\n%s", buf.String())
	}
}
