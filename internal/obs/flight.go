package obs

// This file is the query flight recorder: the workload-level half of the
// observability layer. The tracer and the metrics registry answer "what
// did this one query do"; the flight recorder answers the three
// operational questions a resident process gets asked — what is running
// *right now* (the in-flight registry, pg_stat_activity-style), what ran
// recently and how did it go (a bounded history ring, slow-query-log-
// style), and how far off was the planner (per-node q-error telemetry,
// the measurement substrate for estimator work).
//
// Like the rest of the package it is stdlib-only and nil-safe: the nil
// *Flight accepts every call as a no-op, so the CLIs record
// unconditionally and pay one pointer test when the recorder is off.
// Recording never changes what a query computes — the recorder only
// observes identifiers, counters and outcomes that execution produced
// anyway.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultFlightCapacity is the history ring's default size (the
// -query-history flag of cqacdbd).
const DefaultFlightCapacity = 512

// DefaultQErrorThreshold is the planner-accuracy ratio beyond which a
// finished query's misestimated nodes are logged. 16 is two doublings
// past "the estimate was off by 4×": far enough that envelope slack on
// healthy workloads stays quiet, close enough that a strategy picked on
// a wildly wrong cardinality surfaces itself.
const DefaultQErrorThreshold = 16

// Query outcomes recorded per finished query.
const (
	OutcomeOK       = "ok"
	OutcomeError    = "error"
	OutcomeTimeout  = "timeout"
	OutcomeCanceled = "canceled"
)

// OutcomeOf classifies a query's terminal error as a flight-record
// outcome: nil is OutcomeOK, a deadline is OutcomeTimeout, a
// cancellation (client disconnect or DELETE /v1/queries/{id}) is
// OutcomeCanceled, anything else OutcomeError.
func OutcomeOf(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeTimeout
	case errors.Is(err, context.Canceled):
		return OutcomeCanceled
	}
	return OutcomeError
}

var queryCounter atomic.Int64

// NewQueryID returns a fresh query identity "q<seq>-<8 hex>": the
// process-monotonic sequence keeps ids log-sortable and collision-free
// within a run, the random suffix keeps them unique across restarts (so
// an NDJSON query log appended over several runs never repeats an id).
func NewQueryID() string {
	seq := queryCounter.Add(1)
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A broken crypto/rand should not stop query execution; the
		// sequence alone is still unique within the process.
		return fmt.Sprintf("q%d", seq)
	}
	return fmt.Sprintf("q%d-%s", seq, hex.EncodeToString(b[:]))
}

// OpRoll is one operator invocation's rollup inside a flight record —
// the per-plan-node numbers a finished query leaves behind. It mirrors
// the execution layer's per-operator stats (exec.OpStats) without
// importing it: obs stays dependency-free, and exec.FlightRollup does
// the conversion.
type OpRoll struct {
	Op          string  `json:"op"`
	In          int64   `json:"in"`
	Out         int64   `json:"out"`
	Sat         int64   `json:"sat,omitempty"`
	Pruned      int64   `json:"pruned,omitempty"`
	Pairs       int64   `json:"pairs,omitempty"`
	PairsPruned int64   `json:"pairs_pruned,omitempty"`
	CacheHits   int64   `json:"cache_hits,omitempty"`
	CacheMisses int64   `json:"cache_misses,omitempty"`
	FM          int64   `json:"fm,omitempty"`
	Strategy    string  `json:"strategy,omitempty"` // binary nodes: the pairing strategy that ran
	EstPairs    int64   `json:"est_pairs,omitempty"`
	ActPairs    int64   `json:"act_pairs,omitempty"`
	WallMS      float64 `json:"wall_ms"`
}

// FlightRecord is one finished query: identity, what ran, how long, how
// much came out, how it ended, and the planner-accuracy evidence. It is
// the unit of the history ring, of the /v1/queries/recent response, and
// of the -query-log NDJSON stream (one record per line).
type FlightRecord struct {
	ID          string   `json:"id"`
	Session     string   `json:"session,omitempty"`
	Statement   string   `json:"statement"`
	StartUnixMS int64    `json:"start_unix_ms"`
	WallMS      float64  `json:"wall_ms"`
	Rows        int      `json:"rows"`
	Outcome     string   `json:"outcome"`
	Error       string   `json:"error,omitempty"`
	Strategies  []string `json:"strategies,omitempty"` // distinct pairing strategies, first-use order

	// Planner accuracy, summed/maxed over the binary plan nodes:
	// est/act pair totals and the worst per-node q-error
	// (max(est/act, act/est), counts clamped to ≥1).
	EstPairs int64   `json:"est_pairs,omitempty"`
	ActPairs int64   `json:"act_pairs,omitempty"`
	QError   float64 `json:"q_error,omitempty"`

	// CacheHitRate is the sat-cache hit rate over this query's decisions
	// alone (hits/(hits+misses) of the per-query counter delta). -1
	// marks "no cache configured", distinguishing it from a true 0 (all
	// misses).
	CacheHitRate float64 `json:"cache_hit_rate"`

	Ops []OpRoll `json:"ops,omitempty"`
}

// QError returns the planner-accuracy ratio max(est/act, act/est) with
// both counts clamped to ≥1, so empty nodes are well-defined: a perfect
// estimate is 1, a 100-pairs-estimated-but-10-materialised node is 10.
func QError(est, act int64) float64 {
	e, a := float64(max64(est, 1)), float64(max64(act, 1))
	if e > a {
		return e / a
	}
	return a / e
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ActiveQuery is one in-flight query as reported by Flight.Active (the
// GET /v1/queries wire shape).
type ActiveQuery struct {
	ID          string   `json:"id"`
	Session     string   `json:"session,omitempty"`
	Statement   string   `json:"statement"`
	StartUnixMS int64    `json:"start_unix_ms"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	Strategies  []string `json:"strategies,omitempty"` // pairing strategies chosen so far
}

// activeEntry is the registry's record of a running query.
type activeEntry struct {
	id, session, statement string
	start                  time.Time
	seq                    int64 // registration order, for deterministic listing
	cancel                 context.CancelFunc
	progress               func() []string // strategies chosen so far; nil = unknown
}

// Flight is the query flight recorder: a registry of in-flight queries
// (cancellable by id), a fixed-capacity ring of finished-query records,
// and the telemetry sinks those records feed. All methods are safe for
// concurrent use and no-ops on the nil receiver.
//
// The configuration fields must be set before the first query starts and
// not mutated after.
type Flight struct {
	// Metrics, when non-nil, receives per-finished-query families:
	// cdb_query_duration_seconds (by outcome), cdb_query_rows, and
	// cdb_planner_qerror (one observation per binary plan node).
	Metrics *Registry

	// Log, when non-nil, receives every finished query as one NDJSON
	// line (the -query-log flag). Writes are serialised by the
	// recorder's mutex.
	Log io.Writer

	// Logger, when non-nil, receives planner-misestimate warnings: one
	// per binary node whose q-error reaches QErrorThreshold.
	Logger *slog.Logger

	// QErrorThreshold overrides DefaultQErrorThreshold when positive.
	QErrorThreshold float64

	// Clock overrides time.Now for deterministic tests.
	Clock func() time.Time

	capacity int

	mu     sync.Mutex
	active map[string]*activeEntry
	seq    int64
	ring   []FlightRecord // fixed-size once full; next points at the eldest
	next   int
}

// NewFlight returns a recorder whose history ring holds capacity
// finished queries (<= 0 means DefaultFlightCapacity).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{capacity: capacity, active: map[string]*activeEntry{}}
}

func (f *Flight) now() time.Time {
	if f.Clock != nil {
		return f.Clock()
	}
	return time.Now()
}

func (f *Flight) threshold() float64 {
	if f.QErrorThreshold > 0 {
		return f.QErrorThreshold
	}
	return DefaultQErrorThreshold
}

// Start registers an in-flight query. cancel, when non-nil, is what
// Cancel(id) invokes — the same context cancellation path a deadline
// uses. progress, when non-nil, is polled by Active for the pairing
// strategies chosen so far; it must be safe to call concurrently with
// the running query.
func (f *Flight) Start(id, session, statement string, cancel context.CancelFunc, progress func() []string) {
	if f == nil || id == "" {
		return
	}
	f.mu.Lock()
	f.seq++
	f.active[id] = &activeEntry{
		id: id, session: session, statement: statement,
		start: f.now(), seq: f.seq, cancel: cancel, progress: progress,
	}
	f.mu.Unlock()
}

// Cancel cancels the in-flight query by id, reporting whether it was
// found. The query itself observes the cancellation at its next
// claim-time checkpoint (exec.Map) and finishes with OutcomeCanceled;
// the entry leaves the registry when its Finish record arrives, not
// here, so a cancelled query is still listed until it actually stops.
func (f *Flight) Cancel(id string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	e, ok := f.active[id]
	f.mu.Unlock()
	if !ok {
		return false
	}
	if e.cancel != nil {
		e.cancel()
	}
	return true
}

// Active snapshots the in-flight queries in start order.
func (f *Flight) Active() []ActiveQuery {
	if f == nil {
		return nil
	}
	now := f.now()
	f.mu.Lock()
	entries := make([]*activeEntry, 0, len(f.active))
	for _, e := range f.active {
		entries = append(entries, e)
	}
	f.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].seq < entries[j].seq })
	out := make([]ActiveQuery, len(entries))
	for i, e := range entries {
		out[i] = ActiveQuery{
			ID: e.id, Session: e.session, Statement: e.statement,
			StartUnixMS: e.start.UnixMilli(),
			ElapsedMS:   float64(now.Sub(e.start).Microseconds()) / 1000,
		}
		if e.progress != nil {
			out[i].Strategies = e.progress()
		}
	}
	return out
}

// Finish deregisters the query and records its terminal state: derived
// planner-accuracy fields are computed from rec.Ops, the record enters
// the history ring (evicting the eldest at capacity), the metric
// families and the NDJSON log are fed, and misestimated nodes beyond
// the q-error threshold are logged. Safe to call for ids that never
// Started (CLI one-shots have no registry).
func (f *Flight) Finish(rec FlightRecord) {
	if f == nil {
		return
	}
	f.derive(&rec)
	f.observe(rec)

	f.mu.Lock()
	delete(f.active, rec.ID)
	if len(f.ring) < f.capacity {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[f.next] = rec
		f.next = (f.next + 1) % f.capacity
	}
	var logErr error
	if f.Log != nil {
		b, err := json.Marshal(rec)
		if err == nil {
			_, err = f.Log.Write(append(b, '\n'))
		}
		logErr = err
	}
	f.mu.Unlock()

	if logErr != nil && f.Logger != nil {
		f.Logger.Warn("query log write failed", "query", rec.ID, "err", logErr)
	}
}

// derive fills the record's planner-accuracy summary from its per-node
// rollups: distinct strategies in first-use order, est/act pair totals,
// and the worst per-node q-error.
func (f *Flight) derive(rec *FlightRecord) {
	rec.Strategies = nil
	rec.EstPairs, rec.ActPairs, rec.QError = 0, 0, 0
	seen := map[string]bool{}
	for _, op := range rec.Ops {
		if op.Strategy == "" {
			continue // unary node: no pairing, no estimate
		}
		if !seen[op.Strategy] {
			seen[op.Strategy] = true
			rec.Strategies = append(rec.Strategies, op.Strategy)
		}
		rec.EstPairs += op.EstPairs
		rec.ActPairs += op.ActPairs
		if q := QError(op.EstPairs, op.ActPairs); q > rec.QError {
			rec.QError = q
		}
	}
}

// observe feeds the telemetry sinks for one finished query.
func (f *Flight) observe(rec FlightRecord) {
	if f.Metrics != nil {
		f.Metrics.HistogramVec("cdb_query_duration_seconds",
			"Query wall time in seconds, by outcome.", "outcome", nil).
			With(rec.Outcome).Observe(rec.WallMS / 1000)
		f.Metrics.NewHistogram("cdb_query_rows",
			"Result rows per finished query.", RowBuckets).
			Observe(float64(rec.Rows))
	}
	threshold := f.threshold()
	for _, op := range rec.Ops {
		if op.Strategy == "" {
			continue
		}
		q := QError(op.EstPairs, op.ActPairs)
		if f.Metrics != nil {
			f.Metrics.NewHistogram("cdb_planner_qerror",
				"Planner cardinality q-error max(est/act, act/est) per binary plan node.",
				QErrorBuckets).Observe(q)
		}
		if q >= threshold && f.Logger != nil {
			f.Logger.Warn("planner misestimate",
				"query", rec.ID, "node", op.Op, "strategy", op.Strategy,
				"est_pairs", op.EstPairs, "act_pairs", op.ActPairs,
				"q_error", q)
		}
	}
}

// RowBuckets are the cdb_query_rows histogram bounds (result
// cardinalities, decade steps).
var RowBuckets = []float64{0, 1, 10, 100, 1000, 10000, 100000}

// QErrorBuckets are the cdb_planner_qerror histogram bounds: powers of
// two from "perfect" to "three orders of magnitude off".
var QErrorBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}

// Recent returns up to limit finished queries whose wall time is at
// least minWall, newest first. limit <= 0 means all retained records.
func (f *Flight) Recent(minWall time.Duration, limit int) []FlightRecord {
	if f == nil {
		return nil
	}
	minMS := float64(minWall.Microseconds()) / 1000
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.ring)
	out := make([]FlightRecord, 0, n)
	for i := 0; i < n; i++ {
		// Newest first: walk backwards from the slot before next. While
		// the ring is filling next is 0, so the walk starts at ring[n-1];
		// once full, next points at the eldest and next-1 is the newest.
		rec := f.ring[(f.next-1-i+2*n)%n]
		if rec.WallMS < minMS {
			continue
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// Len returns the number of retained finished-query records.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.ring)
}
