package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the optional observability HTTP listener (-metrics-addr):
// it serves the registry in Prometheus text format, the expvar JSON
// snapshot, and the standard pprof profiling endpoints, on a mux of its
// own so nothing leaks onto http.DefaultServeMux.
//
//	/metrics             Prometheus text exposition of the registry
//	/debug/vars          expvar (incl. the registry snapshot under "cdb")
//	/debug/pprof/...     net/http/pprof: profile, heap, goroutine, trace, ...
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ServeMetrics starts the observability listener on addr (host:port;
// ":0" picks a free port) and serves in a background goroutine until
// Close. The registry is also published to expvar under "cdb".
func ServeMetrics(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: Handler(reg), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Handler returns the observability mux (exposed separately so an
// embedding application can mount it on its own server).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, reg)
	return mux
}

// Mount registers the observability endpoints (/metrics, /debug/vars,
// /debug/pprof/...) on an existing mux, so a process with an API server
// of its own — cqacdbd — exposes them on the same listener instead of a
// second port. The patterns carry no method or host, so they coexist
// with method-qualified API routes on the same mux. The registry is
// also published to expvar under "cdb" (once per process: expvar is
// global, so the first registry mounted wins).
func Mount(mux *http.ServeMux, reg *Registry) {
	reg.PublishExpvar("cdb")
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Addr returns the listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }
