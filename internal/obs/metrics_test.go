package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cdb_things_total", "Things.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("cdb_level", "Level.")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	h := r.NewHistogram("cdb_latency_seconds", "Latency.", []float64{0.001, 0.1})
	h.Observe(0.0005) // bucket le=0.001
	h.Observe(0.05)   // bucket le=0.1
	h.Observe(5)      // +Inf bucket
	if h.Count() != 3 {
		t.Errorf("histogram count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 5.05 || got > 5.06 {
		t.Errorf("histogram sum = %v, want ~5.0505", got)
	}
}

func TestRegistrationIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("cdb_x_total", "X.")
	b := r.NewCounter("cdb_x_total", "X.")
	if a != b {
		t.Error("re-registering the same counter must return the same metric")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.NewGauge("cdb_x_total", "X.")
}

func TestVecFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cdb_op_total", "Per-op.", "op")
	v.With("join").Add(3)
	v.With("select").Add(1)
	v.With("join").Inc()
	if got := v.With("join").Value(); got != 4 {
		t.Errorf("join series = %d, want 4", got)
	}
	hv := r.HistogramVec("cdb_op_seconds", "Per-op latency.", "op", nil)
	hv.With("join").Observe(0.01)
	if hv.With("join").Count() != 1 {
		t.Error("histogram vec series lost an observation")
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("cdb_c_total", "")
	h := r.NewHistogram("cdb_h_seconds", "", nil)
	v := r.CounterVec("cdb_v_total", "", "op")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				v.With("join").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || v.With("join").Value() != 8000 {
		t.Errorf("lost updates: counter=%d hist=%d vec=%d",
			c.Value(), h.Count(), v.With("join").Value())
	}
	if got := h.Sum(); got < 7.99 || got > 8.01 {
		t.Errorf("histogram sum = %v, want ~8.0 (CAS accumulation lost adds)", got)
	}
}

// buildMetricsFixture fills a registry the way the engine does: plain
// counters, a function-backed counter, a gauge, per-operator vec
// families and a fixed-bucket histogram.
func buildMetricsFixture() *Registry {
	r := NewRegistry()
	r.NewCounterFunc("cdb_fm_decisions_total",
		"Raw Fourier-Motzkin satisfiability decisions (process-wide).",
		func() int64 { return 1234 })
	r.NewGauge("cdb_satcache_entries", "Live sat-cache entries.").Set(256)
	sat := r.CounterVec("cdb_op_sat_checks_total", "Satisfiability decisions per operator.", "op")
	sat.With("select").Add(42)
	sat.With("join").Add(900)
	h := r.NewHistogram("cdb_op_seconds", "Operator wall time.", []float64{0.001, 0.1})
	h.Observe(0.0004)
	h.Observe(0.02)
	h.Observe(0.02)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildMetricsFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden", buf.Bytes())
}

func TestWritePrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	r := buildMetricsFixture()
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two scrapes of unchanged state differ")
	}
}

func TestSnapshot(t *testing.T) {
	snap := buildMetricsFixture().Snapshot()
	if got := snap["cdb_fm_decisions_total"]; got != int64(1234) {
		t.Errorf("func counter snapshot = %v, want 1234", got)
	}
	if got := snap["cdb_satcache_entries"]; got != int64(256) {
		t.Errorf("gauge snapshot = %v, want 256", got)
	}
	ops, ok := snap["cdb_op_sat_checks_total"].(map[string]any)
	if !ok || ops["join"] != int64(900) || ops["select"] != int64(42) {
		t.Errorf("vec snapshot = %v", snap["cdb_op_sat_checks_total"])
	}
	hist, ok := snap["cdb_op_seconds"].(map[string]any)
	if !ok || hist["count"] != int64(3) {
		t.Errorf("histogram snapshot = %v", snap["cdb_op_seconds"])
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := buildMetricsFixture().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cdb_op_seconds_bucket{le="0.001"} 1`,
		`cdb_op_seconds_bucket{le="0.1"} 3`,
		`cdb_op_seconds_bucket{le="+Inf"} 3`,
		`cdb_op_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
