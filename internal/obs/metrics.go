package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a small
// registry of counters, gauges and histograms with lock-free hot paths
// (atomic adds; the registry mutex is touched only on registration and
// scrape), rendered in the Prometheus text exposition format and as an
// expvar snapshot. It covers exactly what the engine needs — int64
// counters/gauges, callback metrics reading existing atomic state (the
// sat-cache counters, constraint.DecisionCount), and latency histograms
// with fixed buckets — not the general labelled-metrics problem: one
// optional label key per family is enough to split series per operator
// or per span name.

// DefLatencyBuckets are the default histogram bounds for span and
// operator latencies, in seconds (10µs .. 10s, decade steps).
var DefLatencyBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter (n must be non-negative for Prometheus
// semantics; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Observations are lock-free.
type Histogram struct {
	bounds  []float64      // upper bounds, ascending; +Inf implicit
	buckets []atomic.Int64 // len(bounds)+1
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one metric name: its metadata plus the series under it (one
// per label value; the empty label value is the unlabelled series).
type family struct {
	name, help, typ string
	label           string    // label key for vec families, "" otherwise
	bounds          []float64 // histogram families

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Gauge | func() int64 | *Histogram
	order  []string
}

// Registry holds metric families and renders them for scraping. The
// zero value is not usable; construct with NewRegistry. All methods are
// safe for concurrent use. Registration methods are idempotent: asking
// for an existing name returns the existing metric, and panic only on a
// type/label conflict (a programming error).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help, typ, label string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, label: label,
			bounds: bounds, series: map[string]any{}}
		r.fams[name] = f
		return f
	}
	if f.typ != typ || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/label=%q (was %s/label=%q)",
			name, typ, label, f.typ, f.label))
	}
	return f
}

func (f *family) get(labelValue string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.series[labelValue]
	if !ok {
		m = make()
		f.series[labelValue] = m
		f.order = append(f.order, labelValue)
	}
	return m
}

// NewCounter registers (or fetches) an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.family(name, help, typeCounter, "", nil)
	return f.get("", func() any { return &Counter{} }).(*Counter)
}

// NewGauge registers (or fetches) an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.family(name, help, typeGauge, "", nil)
	return f.get("", func() any { return &Gauge{} }).(*Gauge)
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge to state that already lives in an atomic
// elsewhere (constraint.DecisionCount, the sat-cache counters).
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	f := r.family(name, help, typeCounter, "", nil)
	f.get("", func() any { return fn })
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	f := r.family(name, help, typeGauge, "", nil)
	f.get("", func() any { return fn })
}

// NewHistogram registers (or fetches) an unlabelled histogram with the
// given upper bounds (nil = DefLatencyBuckets).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	f := r.family(name, help, typeHistogram, "", bounds)
	return f.get("", func() any { return newHistogram(bounds) }).(*Histogram)
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// CounterVec is a family of counters split by one label.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a counter family with one label key.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, typeCounter, label, nil)}
}

// With returns the counter for the given label value.
func (v CounterVec) With(labelValue string) *Counter {
	return v.f.get(labelValue, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges split by one label.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a gauge family with one label key.
// The canonical use is an info-style metric (cdb_build_info) whose
// label carries the fact and whose value is always 1.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, typeGauge, label, nil)}
}

// With returns the gauge for the given label value.
func (v GaugeVec) With(labelValue string) *Gauge {
	return v.f.get(labelValue, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms split by one label.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a histogram family with one label
// key and the given bounds (nil = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return HistogramVec{r.family(name, help, typeHistogram, label, bounds)}
}

// With returns the histogram for the given label value.
func (v HistogramVec) With(labelValue string) *Histogram {
	return v.f.get(labelValue, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// --- exposition ---

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (families sorted by name, series by label value, so
// output is deterministic and golden-testable).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	values := append([]string{}, f.order...)
	series := make([]any, len(values))
	for i, lv := range values {
		series[i] = f.series[lv]
	}
	f.mu.Unlock()
	sort.Sort(&labelSort{values, series})

	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for i, m := range series {
		labels := ""
		if f.label != "" {
			labels = fmt.Sprintf("{%s=%q}", f.label, values[i])
		}
		switch m := m.(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m.Value())
		case func() int64:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, m())
		case *Histogram:
			cum := int64(0)
			for bi, bound := range m.bounds {
				cum += m.buckets[bi].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, mergeLE(f.label, values[i], formatFloat(bound)), cum)
			}
			cum += m.buckets[len(m.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, mergeLE(f.label, values[i], "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labels, formatFloat(m.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, labels, m.Count())
		}
	}
	return nil
}

func mergeLE(labelKey, labelValue, le string) string {
	if labelKey == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`{%s=%q,le=%q}`, labelKey, labelValue, le)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type labelSort struct {
	values []string
	series []any
}

func (s *labelSort) Len() int           { return len(s.values) }
func (s *labelSort) Less(i, j int) bool { return s.values[i] < s.values[j] }
func (s *labelSort) Swap(i, j int) {
	s.values[i], s.values[j] = s.values[j], s.values[i]
	s.series[i], s.series[j] = s.series[j], s.series[i]
}

// --- expvar bridge ---

// Snapshot returns the registry as a plain value tree for expvar (and
// tests): metric name → value, label value → value for vec families,
// {count, sum} for histograms.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := map[string]any{}
	for _, f := range fams {
		f.mu.Lock()
		values := append([]string{}, f.order...)
		series := make(map[string]any, len(values))
		for _, lv := range values {
			series[lv] = snapshotMetric(f.series[lv])
		}
		f.mu.Unlock()
		if f.label == "" {
			out[f.name] = series[""]
		} else {
			out[f.name] = series
		}
	}
	return out
}

func snapshotMetric(m any) any {
	switch m := m.(type) {
	case *Counter:
		return m.Value()
	case *Gauge:
		return m.Value()
	case func() int64:
		return m()
	case *Histogram:
		return map[string]any{"count": m.Count(), "sum": m.Sum()}
	}
	return nil
}

var expvarPublished sync.Map // name -> struct{}

// PublishExpvar exposes the registry under the given expvar name
// (idempotent per name; expvar itself panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, struct{}{}); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
