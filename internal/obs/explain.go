package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// counterOrder is the display order of the well-known counters; keys not
// listed here render after these, alphabetically. The names match the
// -stats table columns where both exist.
var counterOrder = []string{
	"in", "out", "sat", "pruned", "hit", "miss", "fm",
	"pairs", "filtered", "est_pairs", "act_pairs",
	"items", "workers", "relations", "tuples",
	"queue_ns", "busy_ns", "maxbusy_ns",
}

// TreeOptions tune FormatTree.
type TreeOptions struct {
	// Wall includes per-span wall times. Golden tests turn it off (or
	// install a fake tracer Clock) for deterministic output.
	Wall bool
	// MaxDetail truncates span details longer than this many runes
	// (0 = default 60). The JSON export always keeps the full detail.
	MaxDetail int
}

// FormatTree renders a span forest as an EXPLAIN ANALYZE-style plan
// tree. An operator span whose name equals its parent plan-node span's
// name is folded into the parent line — counters merge and its children
// (the pool fanout spans) are hoisted up a level. The cqa plan nodes
// and the operator recorders both open spans; folding shows them as the
// single plan line a reader expects, and counter totals over the
// rendered tree equal totals over the raw spans.
func FormatTree(roots []*Span, opt TreeOptions) string {
	var b strings.Builder
	for _, root := range roots {
		formatSpan(&b, root, "", "", opt)
	}
	return b.String()
}

func formatSpan(b *strings.Builder, s *Span, selfPrefix, childPrefix string, opt TreeOptions) {
	counters := s.Counters()
	labels := s.Labels()
	wall := s.Wall()
	children := s.Children()

	// Fold a child span of the same name (the operator recorder under
	// its plan node) into this line: its counters merge here, its labels
	// fill in any the plan node did not set itself, and its own children
	// (the pool fanout spans) are hoisted into this node.
	var kept []*Span
	var fold func(list []*Span)
	fold = func(list []*Span) {
		for _, c := range list {
			if c.Name == s.Name {
				for k, v := range c.Counters() {
					counters[k] += v
				}
				for k, v := range c.Labels() {
					if _, ok := labels[k]; !ok {
						if labels == nil {
							labels = make(map[string]string, 2)
						}
						labels[k] = v
					}
				}
				fold(c.Children())
				continue
			}
			kept = append(kept, c)
		}
	}
	fold(children)

	b.WriteString(selfPrefix)
	b.WriteString(s.Name)
	if d := truncateDetail(s.Detail, opt.MaxDetail); d != "" {
		fmt.Fprintf(b, " %s", d)
	}
	if line := annotationLine(labels, counters); line != "" {
		fmt.Fprintf(b, "  [%s]", line)
	}
	if opt.Wall && wall > 0 {
		fmt.Fprintf(b, "  wall=%s", wall.Round(time.Microsecond))
	}
	b.WriteByte('\n')

	for i, c := range kept {
		last := i == len(kept)-1
		self, next := childPrefix+"├─ ", childPrefix+"│  "
		if last {
			self, next = childPrefix+"└─ ", childPrefix+"   "
		}
		formatSpan(b, c, self, next, opt)
	}
}

func truncateDetail(d string, max int) string {
	if max <= 0 {
		max = 60
	}
	r := []rune(d)
	if len(r) <= max {
		return d
	}
	return string(r[:max-1]) + "…"
}

// annotationLine renders labels (sorted by key) ahead of the counters —
// the planner's strategy= annotation reads first on a plan-node line.
func annotationLine(labels map[string]string, counters map[string]int64) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, labels[k]))
	}
	if line := counterLine(counters); line != "" {
		parts = append(parts, line)
	}
	return strings.Join(parts, " ")
}

// counterLine renders counters in display order, humanizing *_ns keys
// as durations.
func counterLine(counters map[string]int64) string {
	if len(counters) == 0 {
		return ""
	}
	seen := make(map[string]bool, len(counters))
	var parts []string
	emit := func(k string) {
		v, ok := counters[k]
		if !ok || seen[k] {
			return
		}
		seen[k] = true
		if strings.HasSuffix(k, "_ns") {
			parts = append(parts, fmt.Sprintf("%s=%s",
				strings.TrimSuffix(k, "_ns"), time.Duration(v).Round(time.Microsecond)))
			return
		}
		parts = append(parts, fmt.Sprintf("%s=%d", k, v))
	}
	for _, k := range counterOrder {
		emit(k)
	}
	rest := make([]string, 0, len(counters))
	for k := range counters {
		if !seen[k] {
			rest = append(rest, k)
		}
	}
	sort.Strings(rest)
	for _, k := range rest {
		emit(k)
	}
	return strings.Join(parts, " ")
}

// SpanJSON is the machine-readable form of one span (the -trace-json
// output). Wall time is in nanoseconds; Start is the offset from the
// trace's first span in nanoseconds, so traces diff cleanly across runs.
type SpanJSON struct {
	Name     string            `json:"name"`
	Detail   string            `json:"detail,omitempty"`
	StartNS  int64             `json:"start_ns"`
	WallNS   int64             `json:"wall_ns"`
	Labels   map[string]string `json:"labels,omitempty"`
	Counters map[string]int64  `json:"counters,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// TraceJSON marshals a span forest as indented JSON.
func TraceJSON(roots []*Span) ([]byte, error) {
	var base time.Time
	for _, r := range roots {
		if base.IsZero() || r.start.Before(base) {
			base = r.start
		}
	}
	out := make([]SpanJSON, 0, len(roots))
	for _, r := range roots {
		out = append(out, spanJSON(r, base))
	}
	return json.MarshalIndent(out, "", "  ")
}

func spanJSON(s *Span, base time.Time) SpanJSON {
	j := SpanJSON{
		Name:     s.Name,
		Detail:   s.Detail,
		StartNS:  s.start.Sub(base).Nanoseconds(),
		WallNS:   s.Wall().Nanoseconds(),
		Labels:   s.Labels(),
		Counters: s.Counters(),
	}
	if len(j.Counters) == 0 {
		j.Counters = nil
	}
	for _, c := range s.Children() {
		j.Children = append(j.Children, spanJSON(c, base))
	}
	return j
}
