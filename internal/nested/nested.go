// Package nested implements the Dedale-style nested representation the
// paper's §6 discusses as the alternative fix for the first redundancy of
// flat constraint relations:
//
//	"Should the relation include attributes other than the spatial
//	 extent, these attributes are duplicated for each of the constraint
//	 tuples representing the same feature. ... Dedale chose to depart
//	 from the relational model and use the nested model instead: the
//	 constraint part of all tuples representing the same feature are
//	 grouped into a set, and stored as one nested attribute value; the
//	 non-spatial attributes for each feature are only stored once,
//	 together with this nested value. The nest and unnest operators in
//	 Dedale are necessary to work with this data model."
//
// A NestedRelation stores, per feature, the relational bindings once plus
// the set of constraint tuples forming the feature's extent. Nest and
// Unnest convert losslessly to and from the flat heterogeneous relation;
// StorageCells quantifies the redundancy the nesting removes.
package nested

import (
	"fmt"
	"sort"
	"strings"

	"cdb/internal/constraint"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// Tuple is one nested tuple: relational bindings stored once, plus the
// nested set of constraint tuples (the feature's extent pieces).
type Tuple struct {
	rvals  map[string]relation.Value
	extent []constraint.Conjunction
}

// RVals returns a copy of the relational bindings.
func (t Tuple) RVals() map[string]relation.Value {
	out := make(map[string]relation.Value, len(t.rvals))
	for k, v := range t.rvals {
		out[k] = v
	}
	return out
}

// Extent returns the nested constraint tuples. The result must not be
// mutated.
func (t Tuple) Extent() []constraint.Conjunction { return t.extent }

// String renders "(id="A" | {piece; piece})".
func (t Tuple) String() string {
	keys := make([]string, 0, len(t.rvals))
	for k := range t.rvals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, t.rvals[k]))
	}
	pieces := make([]string, len(t.extent))
	for i, e := range t.extent {
		pieces[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + " | {" + strings.Join(pieces, "; ") + "})"
}

// Relation is a nested constraint relation over a flat heterogeneous
// schema (the nesting groups the constraint part; the schema is shared
// with the flat form).
type Relation struct {
	schema schema.Schema
	tuples []Tuple
}

// Schema returns the flat schema the nesting is over.
func (n *Relation) Schema() schema.Schema { return n.schema }

// Len returns the number of nested tuples (features).
func (n *Relation) Len() int { return len(n.tuples) }

// Tuples returns the nested tuples. The result must not be mutated.
func (n *Relation) Tuples() []Tuple { return n.tuples }

// Nest groups a flat heterogeneous relation by its relational part: each
// group becomes one nested tuple whose extent is the set of the group's
// constraint parts. Groups appear in first-occurrence order.
func Nest(r *relation.Relation) *Relation {
	n := &Relation{schema: r.Schema()}
	index := map[string]int{}
	for _, t := range r.Tuples() {
		key := rvalsKey(t.RVals())
		if i, ok := index[key]; ok {
			n.tuples[i].extent = append(n.tuples[i].extent, t.Constraint())
			continue
		}
		index[key] = len(n.tuples)
		n.tuples = append(n.tuples, Tuple{
			rvals:  t.RVals(),
			extent: []constraint.Conjunction{t.Constraint()},
		})
	}
	return n
}

func rvalsKey(rvals map[string]relation.Value) string {
	keys := make([]string, 0, len(rvals))
	for k := range rvals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(rvals[k].Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Unnest flattens back to the heterogeneous relation: one flat tuple per
// extent piece, the relational bindings duplicated onto each (this is
// exactly the §6 type-1 redundancy being re-introduced).
func (n *Relation) Unnest() (*relation.Relation, error) {
	out := relation.New(n.schema)
	for _, t := range n.tuples {
		for _, con := range t.extent {
			if err := out.Add(relation.NewTuple(t.rvals, con)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// StorageCells counts stored values as a representation-size measure:
// one cell per relational binding plus one per atomic constraint. The
// difference between Flat and Nested on the same data is the §6 type-1
// redundancy.
type StorageCells struct {
	RelationalCells int
	ConstraintCells int
}

// Total returns the combined cell count.
func (s StorageCells) Total() int { return s.RelationalCells + s.ConstraintCells }

// NestedCells measures the nested form.
func (n *Relation) NestedCells() StorageCells {
	var s StorageCells
	for _, t := range n.tuples {
		s.RelationalCells += len(t.rvals)
		for _, e := range t.extent {
			s.ConstraintCells += e.Len()
		}
	}
	return s
}

// FlatCells measures a flat relation with the same counting rules.
func FlatCells(r *relation.Relation) StorageCells {
	var s StorageCells
	for _, t := range r.Tuples() {
		s.RelationalCells += len(t.RVals())
		s.ConstraintCells += t.Constraint().Len()
	}
	return s
}

// Select filters the nested relation by a per-piece constraint: each
// extent piece is conjoined with the extra constraints and kept when
// satisfiable; features whose whole extent empties are dropped. This is
// the nested-model analogue of CQA select over constraint attributes
// (conditions over relational attributes belong on the flat view).
func (n *Relation) Select(cs ...constraint.Constraint) *Relation {
	out := &Relation{schema: n.schema}
	for _, t := range n.tuples {
		var kept []constraint.Conjunction
		for _, e := range t.extent {
			ne := e.With(cs...)
			if ne.IsSatisfiable() {
				kept = append(kept, ne)
			}
		}
		if len(kept) > 0 {
			out.tuples = append(out.tuples, Tuple{rvals: t.rvals, extent: kept})
		}
	}
	return out
}

// String renders the nested relation.
func (n *Relation) String() string {
	var b strings.Builder
	b.WriteString(n.schema.String())
	b.WriteString(" nested {")
	for _, t := range n.tuples {
		b.WriteString("\n  ")
		b.WriteString(t.String())
	}
	if len(n.tuples) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}")
	return b.String()
}
