package nested

import (
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/geometry"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/spatial"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

// zigzagLayer builds a layer whose features have many pieces (a long
// polyline and a concave region) — the §6 scenario where flat storage
// duplicates the feature attributes per piece.
func zigzagLayer(t *testing.T) *relation.Relation {
	t.Helper()
	layer := spatial.NewLayer("z")
	// A river with 9 segments: 9 flat tuples for one feature.
	verts := []geometry.Point{geometry.Pt(0, 0)}
	for i := 1; i <= 9; i++ {
		verts = append(verts, geometry.Pt(int64(i*10), int64((i%2)*10)))
	}
	layer.MustAdd(spatial.Feature{ID: "river", Geom: spatial.LineGeom(geometry.MustPolyline(verts...))})
	// A staircase region with several triangles.
	layer.MustAdd(spatial.Feature{ID: "stairs", Geom: spatial.RegionGeom(geometry.MustPolygon(
		geometry.Pt(0, 20), geometry.Pt(30, 20), geometry.Pt(30, 26),
		geometry.Pt(20, 26), geometry.Pt(20, 32), geometry.Pt(10, 32),
		geometry.Pt(10, 38), geometry.Pt(0, 38)))})
	r, err := spatial.ToRelation(layer, "fid", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNestUnnestRoundTrip(t *testing.T) {
	flat := zigzagLayer(t)
	n := Nest(flat)
	if n.Len() != 2 {
		t.Fatalf("nested features = %d (flat tuples %d)", n.Len(), flat.Len())
	}
	back, err := n.Unnest()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equivalent(flat) {
		t.Error("nest/unnest round trip changed semantics")
	}
	if back.Len() != flat.Len() {
		t.Errorf("unnest tuple count %d, flat %d", back.Len(), flat.Len())
	}
}

func TestType1RedundancySavings(t *testing.T) {
	flat := zigzagLayer(t)
	n := Nest(flat)
	fc := FlatCells(flat)
	nc := n.NestedCells()
	// The constraint cells are identical (the extent is the same data)...
	if fc.ConstraintCells != nc.ConstraintCells {
		t.Errorf("constraint cells changed: %d vs %d", fc.ConstraintCells, nc.ConstraintCells)
	}
	// ...but the relational cells shrink from one-per-piece to
	// one-per-feature: 9 river pieces + several stairs pieces vs 2.
	if nc.RelationalCells != 2 {
		t.Errorf("nested relational cells = %d, want 2", nc.RelationalCells)
	}
	if fc.RelationalCells <= nc.RelationalCells*4 {
		t.Errorf("flat relational cells %d vs nested %d — expected a large type-1 redundancy",
			fc.RelationalCells, nc.RelationalCells)
	}
	t.Logf("flat cells=%d (rel %d), nested cells=%d (rel %d)",
		fc.Total(), fc.RelationalCells, nc.Total(), nc.RelationalCells)
}

func TestNestedSelect(t *testing.T) {
	flat := zigzagLayer(t)
	n := Nest(flat)
	// Clip to x <= 15: the river keeps only its first pieces, the stairs
	// keep their left part.
	sel := n.Select(constraint.LeConst("x", q("15")))
	if sel.Len() != 2 {
		t.Fatalf("clip kept %d features", sel.Len())
	}
	for _, tp := range sel.Tuples() {
		for _, e := range tp.Extent() {
			iv, ok := e.VarBounds("x")
			if !ok || !iv.HasUpper || iv.Upper.Cmp(q("15")) > 0 {
				t.Errorf("piece not clipped: %s", e)
			}
		}
	}
	// Clipping to an empty window drops everything.
	empty := n.Select(constraint.LeConst("x", q("-100")))
	if empty.Len() != 0 {
		t.Errorf("empty clip kept %d features", empty.Len())
	}
	// Nested select ≡ flat select + nest: cross-check via unnest.
	flatSel, err := sel.Unnest()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: flat-side select through the algebra-free path (tuple by
	// tuple) — identical semantics by construction, so compare the
	// regions pointwise at probe points.
	probe := func(r *relation.Relation, fid string, x, y string) bool {
		ok, err := r.Contains(relation.Point{
			"fid": relation.Str(fid), "x": relation.Rat(q(x)), "y": relation.Rat(q(y))})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !probe(flatSel, "river", "5", "5") {
		t.Error("river start lost")
	}
	if probe(flatSel, "river", "85", "5") {
		t.Error("clipped river piece survived")
	}
}

func TestNestedString(t *testing.T) {
	flat := zigzagLayer(t)
	n := Nest(flat)
	s := n.String()
	if !strings.Contains(s, "nested {") || !strings.Contains(s, `fid="river"`) {
		t.Errorf("rendering: %s", s)
	}
	if n.Tuples()[0].String() == "" {
		t.Error("tuple rendering empty")
	}
}

func TestNestWithoutRelationalPart(t *testing.T) {
	// All-constraint relations nest into a single group (empty relational
	// key), mirroring the paper's Hurricane relation.
	r := relation.New(spatial.SpatialSchema("fid", "x", "y"))
	r.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("0")), constraint.LeConst("x", q("1")))))
	r.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("2")), constraint.LeConst("x", q("3")))))
	n := Nest(r)
	if n.Len() != 1 || len(n.Tuples()[0].Extent()) != 2 {
		t.Errorf("nested = %s", n)
	}
	back, err := n.Unnest()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equivalent(r) {
		t.Error("round trip broke semantics")
	}
}
