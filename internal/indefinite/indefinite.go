// Package indefinite implements constraint-specified incomplete
// information, the §3.1 aside:
//
//	"Incomplete information can be specified by constraints, and has
//	 been discussed in the context of constraint databases. Just as for
//	 unknown data, the semantics of this constraint specification is
//	 different from constraint tuples. The semantics is disjunctive
//	 rather than conjunctive; one of the values satisfying the
//	 constraints is correct, rather than all of them."
//
// An indefinite tuple reuses the heterogeneous tuple shape, but its
// constraint part now describes what is *known* about a single underlying
// value: any one satisfying assignment may be the truth. Queries
// therefore have two answer modes (Koubarakis):
//
//   - possible: the condition holds in at least one completion
//     (satisfiability of the conjunction);
//   - certain: the condition holds in every completion (entailment —
//     the conjunction with the condition's complement is unsatisfiable).
//
// Certain answers are monotone refinements of possible answers:
// certain ⊆ possible always (for consistent tuples).
package indefinite

import (
	"fmt"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// Relation is a set of indefinite tuples over a heterogeneous schema.
// Relational attributes hold definite values (or NULL = truly unknown and
// treated as never-certain, possibly-anything is not assumed); constraint
// attributes carry the indefinite constraint specification.
type Relation struct {
	inner *relation.Relation
}

// New wraps a heterogeneous relation, reinterpreting its constraint parts
// disjunctively. Tuples with unsatisfiable constraint parts are
// *inconsistent* (they describe no possible world) and are rejected.
func New(r *relation.Relation) (*Relation, error) {
	for i, t := range r.Tuples() {
		if !t.IsSatisfiable() {
			return nil, fmt.Errorf("indefinite: tuple %d is inconsistent (no completion): %s", i, t)
		}
	}
	return &Relation{inner: r}, nil
}

// Schema returns the schema.
func (r *Relation) Schema() schema.Schema { return r.inner.Schema() }

// Len returns the number of indefinite tuples.
func (r *Relation) Len() int { return r.inner.Len() }

// Inner returns the underlying heterogeneous relation (whose conjunctive
// reading is the "set of possible values" view).
func (r *Relation) Inner() *relation.Relation { return r.inner }

// Mode selects the answer semantics.
type Mode int

const (
	// Possibly: the condition holds in some completion.
	Possibly Mode = iota
	// Certainly: the condition holds in every completion.
	Certainly
)

func (m Mode) String() string {
	if m == Certainly {
		return "certainly"
	}
	return "possibly"
}

// Select returns the indefinite tuples whose condition holds possibly or
// certainly. The output keeps each tuple's original constraint
// specification (selection on indefinite data filters tuples; it must not
// strengthen what is known about them).
func (r *Relation) Select(cond cqa.Condition, mode Mode) (*Relation, error) {
	if err := cond.Validate(r.inner.Schema()); err != nil {
		return nil, err
	}
	out := relation.New(r.inner.Schema())
	for _, t := range r.inner.Tuples() {
		ok, err := holds(t, r.inner.Schema(), cond, mode)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := out.Add(t); err != nil {
				return nil, err
			}
		}
	}
	return &Relation{inner: out}, nil
}

// holds decides one tuple against the condition under the mode.
//
// Certainly distributes over conjunction, so it is decided atom by atom.
// Possibly does not (two atoms can each be possible but not jointly), so
// it is decided by joint satisfiability, branching over the disjunctive
// (!=) atoms.
func holds(t relation.Tuple, s schema.Schema, cond cqa.Condition, mode Mode) (bool, error) {
	if mode == Certainly {
		for _, a := range cond {
			ok, err := atomHolds(t, s, a, Certainly)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	// Possibly: ground string atoms (definite) first, then search the
	// branch product of the linear atoms for one satisfiable completion.
	var branchLists [][]constraint.Constraint
	for _, a := range cond {
		switch at := a.(type) {
		case cqa.StringAtom:
			ok, err := atomHolds(t, s, at, Possibly)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		case cqa.LinearAtom:
			cs, err := linearToConstraints(t, s, at)
			if err != nil {
				return false, err
			}
			if cs == nil {
				return false, nil
			}
			branchLists = append(branchLists, cs)
		default:
			return false, fmt.Errorf("indefinite: unsupported atom %T", a)
		}
	}
	var search func(i int, con constraint.Conjunction) bool
	search = func(i int, con constraint.Conjunction) bool {
		if i == len(branchLists) {
			return con.IsSatisfiable()
		}
		for _, c := range branchLists[i] {
			if search(i+1, con.With(c)) {
				return true
			}
		}
		return false
	}
	return search(0, t.Constraint()), nil
}

// linearToConstraints grounds a linear atom against the tuple's definite
// relational values; it returns nil when a referenced relational
// attribute is NULL (no completion can be claimed). For Ne the two strict
// branches are returned.
func linearToConstraints(t relation.Tuple, s schema.Schema, a cqa.LinearAtom) ([]constraint.Constraint, error) {
	e := a.Expr
	for _, v := range a.Expr.Vars() {
		attr, ok := s.Attr(v)
		if !ok {
			return nil, fmt.Errorf("indefinite: unknown attribute %q", v)
		}
		if attr.Kind != schema.Relational {
			continue
		}
		val, bound := t.RVal(v)
		if !bound {
			return nil, nil
		}
		rv, _ := val.AsRat()
		e = e.Substitute(v, constraint.Const(rv))
	}
	switch a.Op {
	case cqa.OpEq:
		return []constraint.Constraint{{Expr: e, Op: constraint.Eq}}, nil
	case cqa.OpLe:
		return []constraint.Constraint{{Expr: e, Op: constraint.Le}}, nil
	case cqa.OpLt:
		return []constraint.Constraint{{Expr: e, Op: constraint.Lt}}, nil
	case cqa.OpGe:
		return []constraint.Constraint{{Expr: e.Neg(), Op: constraint.Le}}, nil
	case cqa.OpGt:
		return []constraint.Constraint{{Expr: e.Neg(), Op: constraint.Lt}}, nil
	default: // OpNe
		return []constraint.Constraint{
			{Expr: e, Op: constraint.Lt},
			{Expr: e.Neg(), Op: constraint.Lt},
		}, nil
	}
}

// atomHolds decides one atom for one tuple.
func atomHolds(t relation.Tuple, s schema.Schema, a cqa.Atom, mode Mode) (bool, error) {
	switch at := a.(type) {
	case cqa.StringAtom:
		// Relational string values are definite: both modes coincide,
		// except NULL, which is never certain and (conservatively) never
		// claimed possible either — NULL means unknown *identity*, not an
		// unconstrained value.
		lv, bound := t.RVal(at.Attr)
		if !bound {
			return false, nil
		}
		var rv relation.Value
		if at.IsLit {
			rv = relation.Str(at.Lit)
		} else {
			o, ok := t.RVal(at.OtherAttr)
			if !ok {
				return false, nil
			}
			rv = o
		}
		eq := lv.Equal(rv)
		return (at.Op == cqa.OpEq) == eq, nil

	case cqa.LinearAtom:
		cs, err := linearToConstraints(t, s, at)
		if err != nil {
			return false, err
		}
		if cs == nil {
			return false, nil
		}
		con := t.Constraint()
		if mode == Possibly {
			// Some completion satisfies some branch.
			for _, c := range cs {
				if con.With(c).IsSatisfiable() {
					return true, nil
				}
			}
			return false, nil
		}
		// Certainly: every completion satisfies the atom ⇔ the atom's
		// complement intersected with the knowledge is empty. For Ne the
		// complement is equality; for the others it is the usual single
		// complement.
		var complements []constraint.Constraint
		if at.Op == cqa.OpNe {
			complements = []constraint.Constraint{{Expr: firstExprOf(cs), Op: constraint.Eq}}
		} else {
			complements = cs[0].Complement()
		}
		for _, neg := range complements {
			if con.With(neg).IsSatisfiable() {
				return false, nil
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("indefinite: unsupported atom %T", a)
	}
}

// firstExprOf recovers the grounded expression from the Ne branch pair
// (branch 0 is expr < 0).
func firstExprOf(cs []constraint.Constraint) constraint.Expr {
	return cs[0].Expr
}

// String renders the relation with a disjunctive-semantics marker.
func (r *Relation) String() string {
	return "indefinite " + r.inner.String()
}
