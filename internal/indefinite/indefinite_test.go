package indefinite

import (
	"math/rand"
	"strings"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/cqa"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

// sensors builds an indefinite relation: each sensor's reading is only
// known up to an interval.
func sensors(t *testing.T) *Relation {
	t.Helper()
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("temp"))
	flat := relation.New(s)
	add := func(id, lo, hi string) {
		flat.MustAdd(relation.NewTuple(
			map[string]relation.Value{"id": relation.Str(id)},
			constraint.And(
				constraint.GeConst("temp", q(lo)),
				constraint.LeConst("temp", q(hi)))))
	}
	add("s1", "10", "20") // could be anything in [10,20]
	add("s2", "25", "25") // known exactly
	add("s3", "18", "30")
	r, err := New(flat)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func idsOf(t *testing.T, r *Relation) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, tp := range r.Inner().Tuples() {
		v, _ := tp.RVal("id")
		s, _ := v.AsString()
		out[s] = true
	}
	return out
}

func TestPossibleVsCertain(t *testing.T) {
	r := sensors(t)
	cond := cqa.Condition{cqa.AttrCmpConst("temp", cqa.OpGe, q("19"))}

	poss, err := r.Select(cond, Possibly)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := r.Select(cond, Certainly)
	if err != nil {
		t.Fatal(err)
	}
	p, c := idsOf(t, poss), idsOf(t, cert)
	// temp >= 19: s1 possibly (20 >= 19) but not certainly (10 < 19);
	// s2 certainly (25); s3 possibly but not certainly.
	if !p["s1"] || !p["s2"] || !p["s3"] {
		t.Errorf("possible = %v", p)
	}
	if c["s1"] || !c["s2"] || c["s3"] {
		t.Errorf("certain = %v", c)
	}
	// Certain ⊆ possible.
	for id := range c {
		if !p[id] {
			t.Errorf("certain id %s not possible", id)
		}
	}
	// Selection must not strengthen the knowledge: s1's interval stays
	// [10,20] in the possible answer.
	for _, tp := range poss.Inner().Tuples() {
		v, _ := tp.RVal("id")
		if sv, _ := v.AsString(); sv == "s1" {
			iv, _ := tp.Constraint().VarBounds("temp")
			if !iv.Lower.Equal(q("10")) || !iv.Upper.Equal(q("20")) {
				t.Errorf("s1 knowledge changed: %+v", iv)
			}
		}
	}
}

func TestJointPossibilityIsNotPerAtom(t *testing.T) {
	r := sensors(t)
	// temp <= 12 and temp >= 18 are each possible for s1, but not jointly.
	cond := cqa.Condition{
		cqa.AttrCmpConst("temp", cqa.OpLe, q("12")),
		cqa.AttrCmpConst("temp", cqa.OpGe, q("18")),
	}
	poss, err := r.Select(cond, Possibly)
	if err != nil {
		t.Fatal(err)
	}
	if len(idsOf(t, poss)) != 0 {
		t.Errorf("jointly impossible condition reported possible: %v", idsOf(t, poss))
	}
}

func TestNeBranching(t *testing.T) {
	r := sensors(t)
	// temp != 25: s2 (exactly 25) is neither possibly nor certainly != 25;
	// s1 is certainly != 25 (its interval excludes 25); s3 possibly (could
	// be 26) but not certainly (could be 25).
	cond := cqa.Condition{cqa.AttrCmpConst("temp", cqa.OpNe, q("25"))}
	poss, _ := r.Select(cond, Possibly)
	cert, _ := r.Select(cond, Certainly)
	p, c := idsOf(t, poss), idsOf(t, cert)
	if p["s2"] || !p["s1"] || !p["s3"] {
		t.Errorf("possible != 25: %v", p)
	}
	if !c["s1"] || c["s2"] || c["s3"] {
		t.Errorf("certain != 25: %v", c)
	}
}

func TestStringAtomsAreDefinite(t *testing.T) {
	r := sensors(t)
	cond := cqa.Condition{cqa.StrEq("id", "s2")}
	for _, mode := range []Mode{Possibly, Certainly} {
		out, err := r.Select(cond, mode)
		if err != nil {
			t.Fatal(err)
		}
		got := idsOf(t, out)
		if len(got) != 1 || !got["s2"] {
			t.Errorf("%s id=s2: %v", mode, got)
		}
	}
	// NULL relational attribute: neither possible nor certain.
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("temp"))
	flat := relation.New(s)
	flat.MustAdd(relation.ConstraintTuple(constraint.And(constraint.EqConst("temp", q("5")))))
	rr, err := New(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Possibly, Certainly} {
		out, _ := rr.Select(cond, mode)
		if out.Len() != 0 {
			t.Errorf("%s over NULL id matched", mode)
		}
	}
}

func TestInconsistentTupleRejected(t *testing.T) {
	s := schema.MustNew(schema.Con("temp"))
	flat := relation.New(s)
	flat.MustAdd(relation.ConstraintTuple(constraint.And(
		constraint.GeConst("temp", q("5")), constraint.LeConst("temp", q("1")))))
	if _, err := New(flat); err == nil {
		t.Error("inconsistent tuple accepted")
	}
}

// TestQuickCertainImpliesPossible: on random indefinite relations and
// random conditions, every certain answer is a possible answer, and both
// coincide for point (fully definite) tuples.
func TestQuickCertainImpliesPossible(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("v"))
	for iter := 0; iter < 120; iter++ {
		flat := relation.New(s)
		definite := map[string]bool{}
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			id := string(rune('a' + i))
			lo := int64(rng.Intn(10))
			span := int64(rng.Intn(4))
			if span == 0 {
				definite[id] = true
			}
			flat.MustAdd(relation.NewTuple(
				map[string]relation.Value{"id": relation.Str(id)},
				constraint.And(
					constraint.GeConst("v", rational.FromInt(lo)),
					constraint.LeConst("v", rational.FromInt(lo+span)))))
		}
		r, err := New(flat)
		if err != nil {
			t.Fatal(err)
		}
		op := []cqa.CompOp{cqa.OpLe, cqa.OpLt, cqa.OpGe, cqa.OpGt, cqa.OpEq, cqa.OpNe}[rng.Intn(6)]
		cond := cqa.Condition{cqa.AttrCmpConst("v", op, rational.FromInt(int64(rng.Intn(12))))}
		poss, err := r.Select(cond, Possibly)
		if err != nil {
			t.Fatal(err)
		}
		cert, err := r.Select(cond, Certainly)
		if err != nil {
			t.Fatal(err)
		}
		p, c := idsOf(t, poss), idsOf(t, cert)
		for id := range c {
			if !p[id] {
				t.Fatalf("iter %d: certain id %s not possible (cond %s)", iter, id, cond)
			}
		}
		for id := range definite {
			if p[id] != c[id] {
				t.Fatalf("iter %d: definite tuple %s: possible=%v certain=%v (cond %s)",
					iter, id, p[id], c[id], cond)
			}
		}
	}
}

func TestAccessorsAndModes(t *testing.T) {
	r := sensors(t)
	if r.Schema().Len() != 2 || r.Len() != 3 {
		t.Errorf("schema/len accessors wrong")
	}
	if !strings.HasPrefix(r.String(), "indefinite ") {
		t.Errorf("String = %q", r.String())
	}
	if Possibly.String() != "possibly" || Certainly.String() != "certainly" {
		t.Error("mode strings")
	}
	// Relational rational attributes are definite: ground them in linear
	// atoms through both modes.
	s := schema.MustNew(schema.Rel("age", schema.Rational), schema.Con("v"))
	flat := relation.New(s)
	flat.MustAdd(relation.NewTuple(
		map[string]relation.Value{"age": relation.Rat(q("40"))},
		constraint.And(constraint.GeConst("v", q("0")), constraint.LeConst("v", q("10")))))
	flat.MustAdd(relation.ConstraintTuple(constraint.And(constraint.EqConst("v", q("5"))))) // age NULL
	ind, err := New(flat)
	if err != nil {
		t.Fatal(err)
	}
	cond := cqa.Condition{cqa.AttrCmpConst("age", cqa.OpEq, q("40"))}
	for _, mode := range []Mode{Possibly, Certainly} {
		out, err := ind.Select(cond, mode)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 1 {
			t.Errorf("%s age=40 matched %d (NULL age must not match)", mode, out.Len())
		}
	}
	// Validation errors propagate.
	if _, err := ind.Select(cqa.Condition{cqa.AttrCmpConst("ghost", cqa.OpEq, q("1"))}, Possibly); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Strict and Gt/Lt operators through both modes.
	for _, op := range []cqa.CompOp{cqa.OpLt, cqa.OpGt, cqa.OpLe, cqa.OpGe} {
		for _, mode := range []Mode{Possibly, Certainly} {
			if _, err := ind.Select(cqa.Condition{cqa.AttrCmpConst("v", op, q("5"))}, mode); err != nil {
				t.Fatalf("op %v mode %v: %v", op, mode, err)
			}
		}
	}
}
