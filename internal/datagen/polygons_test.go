package datagen

import (
	"math/rand"
	"testing"

	"cdb/internal/vector"
)

func TestPolygonRelationEligible(t *testing.T) {
	p := Scaled(100)
	r := PolygonRelation(p, 40, 4, 30, 99)
	if r.Len() != 40 {
		t.Fatalf("len = %d, want 40", r.Len())
	}
	for i, tu := range r.Tuples() {
		if vector.FormOf(tu.Constraint().Canon()) == nil {
			t.Errorf("tuple %d not vector-eligible: %s", i, tu.Constraint())
		}
	}
	if PolygonRelation(p, 40, 4, 30, 99).String() != r.String() {
		t.Error("PolygonRelation not deterministic")
	}
}

func TestConcavePolygonRelationEligible(t *testing.T) {
	p := Scaled(100)
	r := ConcavePolygonRelation(p, 30, 3, 25, 99)
	if r.Len() != 30 {
		t.Fatalf("len = %d, want 30", r.Len())
	}
	for i, tu := range r.Tuples() {
		if vector.FormOf(tu.Constraint().Canon()) == nil {
			t.Errorf("piece %d not vector-eligible: %s", i, tu.Constraint())
		}
	}
	if ConcavePolygonRelation(p, 30, 3, 25, 99).String() != r.String() {
		t.Error("ConcavePolygonRelation not deterministic")
	}
}

func TestRandomPolygonRelationShape(t *testing.T) {
	eligible, fallback := 0, 0
	for seed := int64(0); seed < 30; seed++ {
		r := RandomPolygonRelation(rand.New(rand.NewSource(seed)), 5)
		if r.Len() < 1 || r.Len() > 5 {
			t.Fatalf("seed %d: len = %d, want 1..5", seed, r.Len())
		}
		for _, tu := range r.Tuples() {
			if vector.FormOf(tu.Constraint().Canon()) != nil {
				eligible++
			} else {
				fallback++
			}
		}
		again := RandomPolygonRelation(rand.New(rand.NewSource(seed)), 5)
		if again.String() != r.String() {
			t.Fatalf("seed %d: not reproducible", seed)
		}
	}
	if eligible == 0 || fallback == 0 {
		t.Fatalf("workload mix degenerate: %d eligible, %d fallback tuples", eligible, fallback)
	}
}
