package datagen

import "testing"

func TestPaperParams(t *testing.T) {
	p := Paper()
	if p.NumData != 10000 || p.NumQueries != 100 || p.CoordMax != 3000 ||
		p.SizeMin != 1 || p.SizeMax != 100 {
		t.Errorf("paper params drifted: %+v", p)
	}
}

func TestBoxesDistribution(t *testing.T) {
	p := Paper()
	p.NumData = 500
	boxes := Boxes(p)
	if len(boxes) != 500 {
		t.Fatalf("len = %d", len(boxes))
	}
	for i, b := range boxes {
		w := b.Max[0] - b.Min[0]
		h := b.Max[1] - b.Min[1]
		if w < p.SizeMin || w > p.SizeMax || h < p.SizeMin || h > p.SizeMax {
			t.Fatalf("box %d size out of range: %gx%g", i, w, h)
		}
		if b.Min[0] < 0 || b.Min[0] > p.CoordMax || b.Min[1] < 0 || b.Min[1] > p.CoordMax {
			t.Fatalf("box %d corner out of range: %v", i, b)
		}
	}
}

func TestPointsAreDegenerate(t *testing.T) {
	p := Paper()
	p.NumData = 200
	for i, b := range Points(p) {
		if b.Min[0] != b.Max[0] || b.Min[1] != b.Max[1] {
			t.Fatalf("point %d not degenerate: %v", i, b)
		}
	}
}

func TestDeterminism(t *testing.T) {
	p := Paper()
	p.NumData, p.NumQueries = 100, 20
	a, b := Boxes(p), Boxes(p)
	for i := range a {
		if a[i].Min[0] != b[i].Min[0] || a[i].Max[1] != b[i].Max[1] {
			t.Fatal("same seed produced different data")
		}
	}
	p2 := p
	p2.Seed++
	c := Boxes(p2)
	same := true
	for i := range a {
		if a[i].Min[0] != c[i].Min[0] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestOneAttrQueriesUnbounded(t *testing.T) {
	p := Paper()
	p.NumQueries = 50
	for _, q := range OneAttrQueries(p, 1) {
		if q.Min[1] < -1e307 || q.Max[1] > 1e307 {
			t.Fatal("restricted dimension unbounded")
		}
		if q.Min[0] > -1e307 || q.Max[0] < 1e307 {
			t.Fatal("free dimension bounded")
		}
		if l := q.Max[1] - q.Min[1]; l < p.SizeMin || l > p.SizeMax {
			t.Fatalf("query length %g out of range", l)
		}
	}
}

func TestMixedQueriesHaveBothKinds(t *testing.T) {
	p := Paper()
	p.NumQueries = 100
	one, two := 0, 0
	for _, q := range MixedQueries(p) {
		restricted := 0
		for i := 0; i < 2; i++ {
			if q.Min[i] > -1e307 {
				restricted++
			}
		}
		switch restricted {
		case 1:
			one++
		case 2:
			two++
		default:
			t.Fatalf("query restricts %d dims", restricted)
		}
	}
	if one == 0 || two == 0 {
		t.Errorf("mixed workload unbalanced: %d one-attr, %d two-attr", one, two)
	}
}

func TestDiagonalBoxesHugDiagonal(t *testing.T) {
	p := Paper()
	p.NumData = 300
	for i, b := range DiagonalBoxes(p) {
		if b.Min[0] != b.Min[1] {
			t.Fatalf("box %d not on diagonal: %v", i, b)
		}
	}
}

func TestScaled(t *testing.T) {
	p := Scaled(10)
	if p.NumData != 1000 {
		t.Errorf("scaled data = %d", p.NumData)
	}
	if p.NumQueries < 10 {
		t.Errorf("scaled queries = %d", p.NumQueries)
	}
	if full := Scaled(1); full.NumData != 10000 {
		t.Errorf("unscaled = %d", full.NumData)
	}
}
