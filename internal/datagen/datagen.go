// Package datagen generates the synthetic workloads of the paper's §5.4
// experiments, with the published parameters:
//
//	"1. Randomly generate 10,000 bounding boxes representing data tuples,
//	    with height and width in [1,100]; store them in the data file.
//	 2. Randomly generate 100 queries, which are rectangles of height and
//	    width in [1,100]; store them in the query file. For experiment 3,
//	    generate 500 queries.
//	 3. All rectangles are obtained by randomly generating (a) the
//	    upper-left coordinates, and (b) the height and width of each
//	    rectangle. All coordinates are between [0, 3000]."
//
// The original data/query files were not published; fixed seeds make our
// samples reproducible, and any sample from the same distribution
// reproduces the shape of Figures 4-5 (see DESIGN.md, substitutions).
//
// The same generator also produces the *relational* variants (experiments
// 1-B and 2-B): a relational attribute holds a single value per tuple, so
// its "bounding box" is a degenerate point.
package datagen

import (
	"fmt"
	"math/rand"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/rstar"
	"cdb/internal/schema"
)

// Params describe one §5.4 workload.
type Params struct {
	NumData    int     // data rectangles (paper: 10,000)
	NumQueries int     // query rectangles (paper: 100; experiment 3: 500)
	CoordMax   float64 // upper-left coordinate range [0, CoordMax] (paper: 3000)
	SizeMin    float64 // minimum height/width (paper: 1)
	SizeMax    float64 // maximum height/width (paper: 100)
	Seed       int64   // RNG seed (fixed for reproducibility)
}

// Paper returns the exact parameters published in §5.4.
func Paper() Params {
	return Params{
		NumData:    10000,
		NumQueries: 100,
		CoordMax:   3000,
		SizeMin:    1,
		SizeMax:    100,
		Seed:       2003, // the paper's publication year; any seed reproduces the shape
	}
}

// Scaled returns the paper parameters shrunk by factor k (for fast test
// runs); k = 1 is the paper scale.
func Scaled(k int) Params {
	p := Paper()
	if k > 1 {
		p.NumData /= k
		p.NumQueries /= k
		if p.NumQueries < 10 {
			p.NumQueries = 10
		}
	}
	return p
}

// rect draws one rectangle per the paper's recipe: upper-left corner
// uniform in [0, CoordMax]², width and height uniform in
// [SizeMin, SizeMax].
func rect(rng *rand.Rand, p Params) rstar.Rect {
	x := rng.Float64() * p.CoordMax
	y := rng.Float64() * p.CoordMax
	w := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
	h := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
	return rstar.Rect2(x, y, x+w, y+h)
}

// point draws a degenerate rectangle (a single value per attribute) — the
// relational-attribute variant.
func point(rng *rand.Rand, p Params) rstar.Rect {
	x := rng.Float64() * p.CoordMax
	y := rng.Float64() * p.CoordMax
	return rstar.Rect2(x, y, x, y)
}

// Boxes generates the data file for the constraint-attribute experiments
// (1-A, 2-A): proper bounding boxes.
func Boxes(p Params) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]rstar.Rect, p.NumData)
	for i := range out {
		out[i] = rect(rng, p)
	}
	return out
}

// Points generates the data file for the relational-attribute experiments
// (1-B, 2-B): degenerate boxes (single values).
func Points(p Params) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]rstar.Rect, p.NumData)
	for i := range out {
		out[i] = point(rng, p)
	}
	return out
}

// TwoAttrQueries generates the query file for the two-attribute
// experiments (Figure 4): full rectangles restricting both x and y.
func TwoAttrQueries(p Params) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed + 1))
	out := make([]rstar.Rect, p.NumQueries)
	for i := range out {
		out[i] = rect(rng, p)
	}
	return out
}

// OneAttrQueries generates the query file for the one-attribute
// experiments (Figure 5): each query restricts only the given dimension;
// the other is unbounded ("the bound of the other attribute is set from
// minimum to maximum").
func OneAttrQueries(p Params, dim int) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed + 2))
	out := make([]rstar.Rect, p.NumQueries)
	for i := range out {
		lo := rng.Float64() * p.CoordMax
		length := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
		out[i] = rstar.UnboundedQuery(2, map[int][2]float64{dim: {lo, lo + length}})
	}
	return out
}

// MixedQueries generates the inferred experiment-3 workload: each query is
// randomly a one-attribute (either dimension) or two-attribute rectangle.
func MixedQueries(p Params) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed + 3))
	out := make([]rstar.Rect, p.NumQueries)
	for i := range out {
		switch rng.Intn(3) {
		case 0:
			out[i] = rect(rng, p)
		case 1:
			lo := rng.Float64() * p.CoordMax
			length := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
			out[i] = rstar.UnboundedQuery(2, map[int][2]float64{0: {lo, lo + length}})
		default:
			lo := rng.Float64() * p.CoordMax
			length := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
			out[i] = rstar.UnboundedQuery(2, map[int][2]float64{1: {lo, lo + length}})
		}
	}
	return out
}

// DiagonalBoxes generates the §5.3 adversarial corner-case data: boxes
// hugging the main diagonal, so that "x small" and "y large" are each
// ~50% selective but their conjunction is almost empty.
func DiagonalBoxes(p Params) []rstar.Rect {
	rng := rand.New(rand.NewSource(p.Seed + 4))
	out := make([]rstar.Rect, p.NumData)
	for i := range out {
		base := rng.Float64() * p.CoordMax
		w := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
		h := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
		out[i] = rstar.Rect2(base, base, base+w, base+h)
	}
	return out
}

// BoxRelation materialises the first n workload rectangles as a
// heterogeneous constraint relation over the schema
// (id string relational, x rational constraint, y rational constraint):
// each box becomes the constraint tuple lo_x <= x <= hi_x, lo_y <= y <=
// hi_y with coordinates rounded to integers (keeping the exact rational
// arithmetic cheap). It is the bridge from the §5.4 workload generator to
// the CQA operator benchmarks and the parallel-equivalence tests.
//
// idMod controls the relational part: ids repeat modulo idMod so joins
// and differences find matching relational parts (idMod <= 0 gives every
// tuple a unique id), and every seventh tuple leaves id NULL so the
// narrow NULL semantics paths are exercised too.
func BoxRelation(p Params, n, idMod int) *relation.Relation {
	boxes := Boxes(p)
	if n > len(boxes) {
		n = len(boxes)
	}
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	for i := 0; i < n; i++ {
		b := boxes[i]
		rvals := map[string]relation.Value{}
		if i%7 != 0 {
			id := i
			if idMod > 0 {
				id = i % idMod
			}
			rvals["id"] = relation.Str(fmt.Sprintf("b%d", id))
		}
		con := constraint.And(
			constraint.GeConst("x", rational.FromInt(int64(b.Min[0]))),
			constraint.LeConst("x", rational.FromInt(int64(b.Max[0]))),
			constraint.GeConst("y", rational.FromInt(int64(b.Min[1]))),
			constraint.LeConst("y", rational.FromInt(int64(b.Max[1]))),
		)
		r.MustAdd(relation.NewTuple(rvals, con))
	}
	return r
}

// boxTuple materialises one rectangle as a constraint tuple over the
// BoxRelation schema, with the relational id left NULL when id is empty.
func boxTuple(b rstar.Rect, id string) relation.Tuple {
	rvals := map[string]relation.Value{}
	if id != "" {
		rvals["id"] = relation.Str(id)
	}
	con := constraint.And(
		constraint.GeConst("x", rational.FromInt(int64(b.Min[0]))),
		constraint.LeConst("x", rational.FromInt(int64(b.Max[0]))),
		constraint.GeConst("y", rational.FromInt(int64(b.Min[1]))),
		constraint.LeConst("y", rational.FromInt(int64(b.Max[1]))),
	)
	return relation.NewTuple(rvals, con)
}

// SkewedBoxRelation is the BoxRelation variant with a Zipf-skewed
// relational part: ids are drawn from idBuckets values with exponent 1.5
// (a few very popular ids, a long tail of rare ones), and every eleventh
// tuple leaves id NULL. Boxes still spread over the full coordinate
// range, so relational-part partitioning — not constraint geometry — is
// what separates the tuples. Deterministic in p.Seed.
func SkewedBoxRelation(p Params, n, idBuckets int) *relation.Relation {
	if idBuckets < 1 {
		idBuckets = 1
	}
	rng := rand.New(rand.NewSource(p.Seed + 5))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(idBuckets-1))
	boxes := Boxes(p)
	if n > len(boxes) {
		n = len(boxes)
	}
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	for i := 0; i < n; i++ {
		id := ""
		if i%11 != 0 {
			id = fmt.Sprintf("s%d", zipf.Uint64())
		}
		r.MustAdd(boxTuple(boxes[i], id))
	}
	return r
}

// ClusteredBoxRelation is the BoxRelation variant with spatially
// clustered constraint parts and an all-NULL relational part: boxes
// gather around `clusters` shared centers (Gaussian spread around each),
// so envelope pruning and the interval sweep — not relational
// partitioning — separate the tuples. centerSeed draws the cluster
// centers independently of p.Seed, so two relations built with different
// p.Seed but the same centerSeed share cluster geography (their clusters
// overlap; everything else is disjoint). Deterministic in both seeds.
func ClusteredBoxRelation(p Params, n, clusters int, spread float64, centerSeed int64) *relation.Relation {
	if clusters < 1 {
		clusters = 1
	}
	crng := rand.New(rand.NewSource(centerSeed))
	type center struct{ x, y float64 }
	centers := make([]center, clusters)
	for i := range centers {
		centers[i] = center{crng.Float64() * p.CoordMax, crng.Float64() * p.CoordMax}
	}
	rng := rand.New(rand.NewSource(p.Seed + 6))
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
	r := relation.New(s)
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > p.CoordMax {
			return p.CoordMax
		}
		return v
	}
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		x := clamp(c.x + rng.NormFloat64()*spread)
		y := clamp(c.y + rng.NormFloat64()*spread)
		w := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
		h := p.SizeMin + rng.Float64()*(p.SizeMax-p.SizeMin)
		r.MustAdd(boxTuple(rstar.Rect2(x, y, x+w, y+h), ""))
	}
	return r
}
