package datagen

// Polygon-shaped spatial workloads for the vector fast path
// (internal/vector): tuples whose constraint parts are exact convex
// polygons — the eligible shape — plus concave polygons triangulated
// into convex pieces, and deliberately ineligible shapes (half-open
// strips) that exercise the FM fallback. The generators share the
// BoxRelation schema (one relational string id, constraint attributes x
// and y) so the polygon workloads compose with every box workload.

import (
	"math"
	"math/rand"

	"cdb/internal/constraint"
	"cdb/internal/convert"
	"cdb/internal/geometry"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// spatialSchema is the shared schema of the box and polygon workloads.
func spatialSchema() schema.Schema {
	return schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"), schema.Con("y"))
}

// convexConjunction draws one random convex polygon around (cx, cy): the
// hull of 3-7 integer points within ±spread of the center, converted to
// a conjunction over (x, y). Degenerate draws (collinear, coincident)
// retry; the loop terminates with probability 1 for spread ≥ 2.
func convexConjunction(rng *rand.Rand, cx, cy, spread float64) constraint.Conjunction {
	for {
		pts := make([]geometry.Point, 3+rng.Intn(5))
		for i := range pts {
			pts[i] = geometry.Pt(
				int64(math.Round(cx+(rng.Float64()*2-1)*spread)),
				int64(math.Round(cy+(rng.Float64()*2-1)*spread)))
		}
		hull, err := geometry.ConvexHull(pts)
		if err != nil {
			continue
		}
		j, err := convert.ConvexPolygonToConjunction(hull, "x", "y")
		if err != nil {
			continue
		}
		return j
	}
}

// starConjunctions draws one random star-shaped concave polygon around
// (cx, cy) — spikes alternating between an outer and an inner radius —
// and triangulates it into convex conjunctions by ear clipping. The
// rounding to integer vertices can degenerate the ring, so bad draws
// retry.
func starConjunctions(rng *rand.Rand, cx, cy, spread float64) []constraint.Conjunction {
	for {
		spikes := 3 + rng.Intn(3)
		outer := spread
		inner := spread * (0.25 + rng.Float64()*0.35)
		phase := rng.Float64() * 2 * math.Pi
		pts := make([]geometry.Point, 0, 2*spikes)
		for i := 0; i < 2*spikes; i++ {
			r := outer
			if i%2 == 1 {
				r = inner
			}
			a := phase + float64(i)*math.Pi/float64(spikes)
			pts = append(pts, geometry.Pt(
				int64(math.Round(cx+r*math.Cos(a))),
				int64(math.Round(cy+r*math.Sin(a)))))
		}
		poly, err := geometry.NewPolygon(pts)
		if err != nil {
			continue
		}
		js, err := convert.PolygonToConjunctions(poly, "x", "y")
		if err != nil || len(js) == 0 {
			continue
		}
		return js
	}
}

// PolygonRelation is the polygon analogue of ClusteredBoxRelation: n
// tuples whose constraint parts are random convex polygons gathered
// around `clusters` shared centers, with an all-NULL relational part.
// Every tuple is eligible for the vector fast path by construction.
// centerSeed draws the centers independently of p.Seed, exactly like
// ClusteredBoxRelation, so two relations with different p.Seed but the
// same centerSeed overlap cluster by cluster. Deterministic in both
// seeds.
func PolygonRelation(p Params, n, clusters int, spread float64, centerSeed int64) *relation.Relation {
	if clusters < 1 {
		clusters = 1
	}
	crng := rand.New(rand.NewSource(centerSeed))
	type center struct{ x, y float64 }
	centers := make([]center, clusters)
	for i := range centers {
		centers[i] = center{spread + crng.Float64()*p.CoordMax, spread + crng.Float64()*p.CoordMax}
	}
	rng := rand.New(rand.NewSource(p.Seed + 7))
	r := relation.New(spatialSchema())
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(clusters)]
		r.MustAdd(relation.NewTuple(nil, convexConjunction(rng, c.x, c.y, spread)))
	}
	return r
}

// ConcavePolygonRelation builds concave star-shaped polygons around
// shared cluster centers and emits their convex triangulation pieces as
// tuples — the canonical "exact polygon geometry stored as constraint
// tuples" workload. Every piece is vector-eligible; a whole polygon is
// the union of its pieces. Stops once n tuples are emitted (the last
// polygon's pieces may be truncated). Deterministic in both seeds.
func ConcavePolygonRelation(p Params, n, clusters int, spread float64, centerSeed int64) *relation.Relation {
	if clusters < 1 {
		clusters = 1
	}
	crng := rand.New(rand.NewSource(centerSeed))
	type center struct{ x, y float64 }
	centers := make([]center, clusters)
	for i := range centers {
		centers[i] = center{spread + crng.Float64()*p.CoordMax, spread + crng.Float64()*p.CoordMax}
	}
	rng := rand.New(rand.NewSource(p.Seed + 8))
	r := relation.New(spatialSchema())
	for r.Len() < n {
		c := centers[rng.Intn(clusters)]
		for _, j := range starConjunctions(rng, c.x, c.y, spread) {
			if r.Len() >= n {
				break
			}
			r.MustAdd(relation.NewTuple(nil, j))
		}
	}
	return r
}

// RandomPolygonRelation draws a small spatial relation for the
// differential oracle's spatial mode: up to maxTuples tuples over the
// box/polygon schema whose constraint parts mix vector-eligible convex
// polygons (most), triangulated concave-star pieces, and deliberately
// ineligible half-open strips (the FM-fallback shape). Coordinates stay
// small (centers in [4, 16]) so the harness's witness points and random
// selection constants actually interact with the regions. About a third
// of the tuples carry a relational id from a 3-value pool, so the
// partitioned paths run too.
func RandomPolygonRelation(rng *rand.Rand, maxTuples int) *relation.Relation {
	r := relation.New(spatialSchema())
	n := 1 + rng.Intn(maxTuples)
	addTuple := func(j constraint.Conjunction) {
		var rvals map[string]relation.Value
		if rng.Intn(3) == 0 {
			rvals = map[string]relation.Value{"id": relation.Str([]string{"a", "b", "c"}[rng.Intn(3)])}
		}
		r.MustAdd(relation.NewTuple(rvals, j))
	}
	for r.Len() < n {
		cx, cy := 4+rng.Float64()*12, 4+rng.Float64()*12
		switch roll := rng.Intn(10); {
		case roll < 6: // convex polygon: the eligible fast-path shape
			addTuple(convexConjunction(rng, cx, cy, 2+rng.Float64()*4))
		case roll < 8: // concave star, triangulated into eligible pieces
			for _, j := range starConjunctions(rng, cx, cy, 3+rng.Float64()*4) {
				if r.Len() >= n {
					break
				}
				addTuple(j)
			}
		default: // half-open strip: bounded in x only, FM-fallback shape
			lo := int64(math.Round(cx - 3))
			addTuple(constraint.And(
				constraint.GeConst("x", rational.FromInt(lo)),
				constraint.LeConst("x", rational.FromInt(lo+int64(1+rng.Intn(6)))),
				constraint.GeConst("y", rational.FromInt(int64(math.Round(cy-3))))))
		}
	}
	return r
}
