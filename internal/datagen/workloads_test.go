package datagen

import (
	"testing"

	"cdb/internal/relation"
)

// TestSkewedBoxRelationShape: deterministic, Zipf-skewed ids (the most
// popular bucket dominates), NULL ids sprinkled in.
func TestSkewedBoxRelationShape(t *testing.T) {
	p := Scaled(10)
	p.Seed = 5
	r := SkewedBoxRelation(p, 120, 10)
	if r.Len() != 120 {
		t.Fatalf("Len = %d, want 120", r.Len())
	}
	if r2 := SkewedBoxRelation(p, 120, 10); r.String() != r2.String() {
		t.Fatal("same params produced different relations")
	}
	counts := map[string]int{}
	nulls := 0
	for _, tp := range r.Tuples() {
		v, ok := tp.RVal("id")
		if !ok {
			nulls++
			continue
		}
		counts[v.Key()]++
	}
	if nulls == 0 {
		t.Error("no NULL ids; the narrow-semantics path is unexercised")
	}
	max, total := 0, 0
	for _, n := range counts {
		total += n
		if n > max {
			max = n
		}
	}
	// Zipf with exponent 1.5: the top bucket should hold well over a
	// uniform share (total/10).
	if max*3 < total {
		t.Errorf("top id bucket holds %d of %d bound ids; distribution not skewed", max, total)
	}
}

// TestClusteredBoxRelationShape: deterministic, all-NULL relational part,
// boxes gathered around shared centers — two relations with different
// tuple seeds but one centerSeed must overlap far more than two with
// different centerSeeds.
func TestClusteredBoxRelationShape(t *testing.T) {
	p := Scaled(10)
	p.Seed = 5
	p2 := p
	p2.Seed = 1005
	r := ClusteredBoxRelation(p, 80, 4, 40, 7)
	if r.Len() != 80 {
		t.Fatalf("Len = %d, want 80", r.Len())
	}
	if r2 := ClusteredBoxRelation(p, 80, 4, 40, 7); r.String() != r2.String() {
		t.Fatal("same params produced different relations")
	}
	for i, tp := range r.Tuples() {
		if _, ok := tp.RVal("id"); ok {
			t.Fatalf("tuple %d has a bound id; clustered workload should be all-NULL", i)
		}
	}
	sameGeo := ClusteredBoxRelation(p2, 80, 4, 40, 7)
	otherGeo := ClusteredBoxRelation(p2, 80, 4, 40, 8888)
	same := overlapCount(r, sameGeo)
	other := overlapCount(r, otherGeo)
	if same <= other {
		t.Errorf("shared centerSeed gives %d overlapping pairs, distinct centers %d; clustering has no effect",
			same, other)
	}
}

// overlapCount counts tuple pairs whose merged constraint parts are
// satisfiable (boxes intersect).
func overlapCount(r1, r2 *relation.Relation) int {
	n := 0
	for _, t1 := range r1.Tuples() {
		for _, t2 := range r2.Tuples() {
			if t1.Constraint().Merge(t2.Constraint()).Canon().IsSatisfiable() {
				n++
			}
		}
	}
	return n
}
