package datagen

// Random heterogeneous schemas and relations for the differential oracle
// (internal/oracle) and the metamorphic suite. Unlike the §5.4 workload
// generators above — which reproduce the paper's box distributions — these
// draw from the whole heterogeneous data model: mixed C/R schemas, tuples
// with NULL relational bindings (narrow semantics), unconstrained
// attributes (broad semantics), equalities, strict inequalities, multi-
// variable atoms, and the occasional unsatisfiable conjunction. Everything
// is driven by the caller's *rand.Rand, so a run is reproducible from its
// seed.

import (
	"fmt"
	"math/rand"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/relation"
	"cdb/internal/schema"
)

// randomRelAttrs and randomConAttrs are the attribute-name pools for
// RandomSchema. Fixed names keep failure reports readable and let two
// schemas drawn independently share attributes (exercising natural join).
var (
	randomRelAttrs = []string{"id", "tag"}
	randomConAttrs = []string{"x", "y", "z"}
)

// RandomSchema draws a heterogeneous schema: 0-2 relational string
// attributes and 1-3 constraint attributes.
func RandomSchema(rng *rand.Rand) schema.Schema {
	var attrs []schema.Attribute
	nRel := rng.Intn(3)
	for i := 0; i < nRel; i++ {
		attrs = append(attrs, schema.Rel(randomRelAttrs[i], schema.String))
	}
	nCon := 1 + rng.Intn(3)
	for i := 0; i < nCon; i++ {
		attrs = append(attrs, schema.Con(randomConAttrs[i]))
	}
	return schema.MustNew(attrs...)
}

// randomRat draws a small rational constant: integers in [-10, 10], with an
// occasional half or third so non-integer boundaries are exercised.
func randomRat(rng *rand.Rand) rational.Rat {
	n := int64(rng.Intn(21) - 10)
	switch rng.Intn(4) {
	case 0:
		return rational.New(2*n+1, 2)
	case 1:
		return rational.New(3*n-1, 3)
	default:
		return rational.FromInt(n)
	}
}

// randomAtom draws one atomic linear constraint over the given variables:
// mostly single-variable bounds (the common CDB shape), sometimes a two-
// variable half-plane or an equality, with every operator in {=, <=, <}
// reachable. Coefficients are small nonzero integers.
func randomAtom(rng *rand.Rand, vars []string) constraint.Constraint {
	nz := func() rational.Rat {
		for {
			c := int64(rng.Intn(5) - 2)
			if c != 0 {
				return rational.FromInt(c)
			}
		}
	}
	expr := constraint.Var(vars[rng.Intn(len(vars))]).Scale(nz())
	if len(vars) > 1 && rng.Intn(3) == 0 {
		expr = expr.Add(constraint.Var(vars[rng.Intn(len(vars))]).Scale(nz()))
	}
	expr = expr.AddConst(randomRat(rng).Neg())
	op := constraint.Le
	switch rng.Intn(6) {
	case 0:
		op = constraint.Eq
	case 1:
		op = constraint.Lt
	}
	return constraint.Constraint{Expr: expr, Op: op}
}

// RandomConjunction draws a conjunction of 0-4 random atoms over vars. The
// empty conjunction (broad "true") comes up deliberately often, and the
// draw is allowed to produce unsatisfiable conjunctions — downstream
// consumers must prune them, which is exactly what the oracle checks.
func RandomConjunction(rng *rand.Rand, vars []string) constraint.Conjunction {
	if len(vars) == 0 || rng.Intn(8) == 0 {
		return constraint.True()
	}
	n := rng.Intn(5)
	cs := make([]constraint.Constraint, 0, n)
	for i := 0; i < n; i++ {
		cs = append(cs, randomAtom(rng, vars))
	}
	return constraint.And(cs...)
}

// randomRelVals draws the relational part of a tuple: each relational
// attribute is bound with probability ~3/4 to a value from a three-letter
// pool (so independently drawn tuples collide, exercising join matches,
// difference subtraction and dedup), and left NULL otherwise (narrow
// missing-attribute semantics).
func randomRelVals(rng *rand.Rand, s schema.Schema) map[string]relation.Value {
	pool := []string{"a", "b", "c"}
	rvals := map[string]relation.Value{}
	for _, name := range s.RelationalNames() {
		if rng.Intn(4) != 0 {
			rvals[name] = relation.Str(pool[rng.Intn(len(pool))])
		}
	}
	return rvals
}

// RandomTuple draws one heterogeneous tuple for schema s.
func RandomTuple(rng *rand.Rand, s schema.Schema) relation.Tuple {
	return relation.NewTuple(randomRelVals(rng, s), RandomConjunction(rng, s.ConstraintNames()))
}

// RandomRelation draws a relation over s with up to maxTuples random
// tuples (possibly zero — the empty relation is a corner case worth
// hitting). Tuples are NOT normalised or canonicalised: the raw forms are
// what the operators must cope with.
func RandomRelation(rng *rand.Rand, s schema.Schema, maxTuples int) *relation.Relation {
	r := relation.New(s)
	n := rng.Intn(maxTuples + 1)
	for i := 0; i < n; i++ {
		r.MustAdd(RandomTuple(rng, s))
	}
	return r
}

// RandomRelationPair draws two relations over the same random schema —
// the input shape for the binary operators that require equal schemas
// (union, intersect, difference) and a natural join with full overlap.
func RandomRelationPair(rng *rand.Rand, maxTuples int) (*relation.Relation, *relation.Relation) {
	s := RandomSchema(rng)
	return RandomRelation(rng, s, maxTuples), RandomRelation(rng, s, maxTuples)
}

// RandomJoinPair draws two relations over independently drawn schemas that
// share attributes by name (the fixed pools guarantee overlap is common
// but not certain), renaming on collision is left to the caller. The
// second schema is re-drawn until the pair is join-compatible (it always
// is with the fixed pools, since shared names agree in type and kind).
func RandomJoinPair(rng *rand.Rand, maxTuples int) (*relation.Relation, *relation.Relation, error) {
	s1 := RandomSchema(rng)
	s2 := RandomSchema(rng)
	if _, err := s1.Join(s2); err != nil {
		return nil, nil, fmt.Errorf("datagen: random schemas not join-compatible: %w", err)
	}
	return RandomRelation(rng, s1, maxTuples), RandomRelation(rng, s2, maxTuples), nil
}
