package datagen

import (
	"math/rand"
	"testing"

	"cdb/internal/schema"
)

func TestRandomSchemaShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sawRel, sawNoRel := false, false
	for i := 0; i < 100; i++ {
		s := RandomSchema(rng)
		if len(s.ConstraintNames()) == 0 {
			t.Fatal("random schema must have at least one constraint attribute")
		}
		if len(s.RelationalNames()) > 0 {
			sawRel = true
		} else {
			sawNoRel = true
		}
		for _, a := range s.Attrs() {
			if a.Kind == schema.Constraint && a.Type != schema.Rational {
				t.Fatalf("constraint attribute %q not rational", a.Name)
			}
		}
	}
	if !sawRel || !sawNoRel {
		t.Errorf("schema draw lacks variety: withRel=%v withoutRel=%v", sawRel, sawNoRel)
	}
}

func TestRandomRelationReproducible(t *testing.T) {
	a := RandomRelation(rand.New(rand.NewSource(5)), RandomSchema(rand.New(rand.NewSource(4))), 6)
	b := RandomRelation(rand.New(rand.NewSource(5)), RandomSchema(rand.New(rand.NewSource(4))), 6)
	if a.String() != b.String() {
		t.Fatalf("same seeds, different relations:\n%s\nvs\n%s", a, b)
	}
}

func TestRandomConjunctionVariety(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vars := []string{"x", "y"}
	empty, unsat := 0, 0
	for i := 0; i < 300; i++ {
		j := RandomConjunction(rng, vars)
		if j.Len() == 0 {
			empty++
		}
		if !j.IsSatisfiable() {
			unsat++
		}
	}
	if empty == 0 {
		t.Error("empty (broad true) conjunction never drawn")
	}
	if unsat == 0 {
		t.Error("unsatisfiable conjunction never drawn — operators' pruning paths go unexercised")
	}
}

func TestRandomJoinPairCompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		r1, r2, err := RandomJoinPair(rng, 4)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if _, err := r1.Schema().Join(r2.Schema()); err != nil {
			t.Fatalf("case %d: schemas not join-compatible: %v", i, err)
		}
	}
}
