// Package convert maps losslessly between the two finite representations
// the paper's §6 discusses for the CDB middle layer:
//
//   - the constraint representation: a spatial extent as a disjunction of
//     conjunctions of rational linear constraints (a set of constraint
//     tuples), and
//   - the vector (geometric) representation: vertex lists — polygons and
//     polylines.
//
// Going geometry → constraints: a convex polygon is one conjunction of
// half-plane constraints (one per edge); a concave polygon triangulates
// into a union of convex pieces; a polyline segment becomes the paper's
// three-constraint form (collinearity equation plus parameter bounds).
//
// Going constraints → geometry: the vertices of a bounded two-dimensional
// conjunction are enumerated exactly by intersecting constraint boundary
// lines pairwise and keeping the feasible intersections; the convex hull
// of those vertices is the region (conjunctions of linear constraints are
// convex). Both directions are exact: no coordinate is ever rounded.
package convert

import (
	"fmt"

	"cdb/internal/constraint"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

// halfPlane returns the constraint "p is on the left of a→b (inclusive)":
// cross(b-a, (x,y)-a) >= 0, which is linear in x and y.
func halfPlane(a, b geometry.Point, xVar, yVar string) constraint.Constraint {
	// cross = (b.X-a.X)*(y - a.Y) - (b.Y-a.Y)*(x - a.X) >= 0
	dx := b.X.Sub(a.X)
	dy := b.Y.Sub(a.Y)
	expr := constraint.NewExpr([]constraint.Term{
		{Var: yVar, Coef: dx},
		{Var: xVar, Coef: dy.Neg()},
	}, dy.Mul(a.X).Sub(dx.Mul(a.Y)))
	// expr >= 0  <=>  -expr <= 0
	return constraint.Constraint{Expr: expr.Neg(), Op: constraint.Le}
}

// ConvexPolygonToConjunction converts a convex polygon into a single
// conjunction of half-plane constraints over the two variables.
func ConvexPolygonToConjunction(p geometry.Polygon, xVar, yVar string) (constraint.Conjunction, error) {
	if !p.IsConvex() {
		return constraint.Conjunction{}, fmt.Errorf("convert: polygon is not convex; use PolygonToConjunctions")
	}
	verts := p.Vertices()
	cs := make([]constraint.Constraint, 0, len(verts))
	for i := range verts {
		cs = append(cs, halfPlane(verts[i], verts[(i+1)%len(verts)], xVar, yVar))
	}
	return constraint.And(cs...), nil
}

// PolygonToConjunctions converts any simple polygon into a union of convex
// constraint tuples (its triangulation) — §6's "union of convex polyhedra".
func PolygonToConjunctions(p geometry.Polygon, xVar, yVar string) ([]constraint.Conjunction, error) {
	if p.IsConvex() {
		j, err := ConvexPolygonToConjunction(p, xVar, yVar)
		if err != nil {
			return nil, err
		}
		return []constraint.Conjunction{j}, nil
	}
	tris, err := p.Triangulate()
	if err != nil {
		return nil, err
	}
	out := make([]constraint.Conjunction, 0, len(tris))
	for _, tr := range tris {
		j, err := ConvexPolygonToConjunction(tr, xVar, yVar)
		if err != nil {
			return nil, err
		}
		out = append(out, j)
	}
	return out, nil
}

// SegmentToConjunction converts a segment into the paper's constraint
// form for one piece of a linear feature: "one [constraint] for the line
// collinear with the segment, one for its starting point, and one for the
// ending point" — realised as the collinearity equation plus bounding-box
// bounds along both axes (two bounds are needed for axis-parallel
// segments).
func SegmentToConjunction(s geometry.Segment, xVar, yVar string) constraint.Conjunction {
	a, b := s.A, s.B
	dx := b.X.Sub(a.X)
	dy := b.Y.Sub(a.Y)
	// Collinearity: (x - a.X)*dy - (y - a.Y)*dx = 0.
	line := constraint.Constraint{
		Expr: constraint.NewExpr([]constraint.Term{
			{Var: xVar, Coef: dy},
			{Var: yVar, Coef: dx.Neg()},
		}, dx.Mul(a.Y).Sub(dy.Mul(a.X))),
		Op: constraint.Eq,
	}
	cs := []constraint.Constraint{line}
	cs = append(cs,
		constraint.GeConst(xVar, rational.Min(a.X, b.X)),
		constraint.LeConst(xVar, rational.Max(a.X, b.X)),
		constraint.GeConst(yVar, rational.Min(a.Y, b.Y)),
		constraint.LeConst(yVar, rational.Max(a.Y, b.Y)),
	)
	return constraint.And(cs...)
}

// PolylineToConjunctions converts a polyline into one constraint tuple per
// segment — the representation whose per-feature tuple count the paper's
// §6 redundancy discussion is about.
func PolylineToConjunctions(l geometry.Polyline, xVar, yVar string) []constraint.Conjunction {
	segs := l.Segments()
	out := make([]constraint.Conjunction, len(segs))
	for i, s := range segs {
		out[i] = SegmentToConjunction(s, xVar, yVar)
	}
	return out
}

// PointToConjunction converts a point into the equality-constraint tuple
// (x = px ∧ y = py) — the degenerate case showing relational tuples are
// constraint tuples over equality constraints.
func PointToConjunction(p geometry.Point, xVar, yVar string) constraint.Conjunction {
	return constraint.And(
		constraint.EqConst(xVar, p.X),
		constraint.EqConst(yVar, p.Y),
	)
}

// UnboundedError reports that a conjunction's region extends to infinity
// in variable Var, so it has no finite vertex representation. It is a
// typed error so callers probing for vector eligibility (the fast path's
// FormOf) can branch on it without string matching.
type UnboundedError struct {
	Var string
}

func (e *UnboundedError) Error() string {
	return fmt.Sprintf("convert: conjunction is unbounded in %s", e.Var)
}

// ConjunctionVertices enumerates the vertices of the closure of a
// two-dimensional conjunction over (xVar, yVar): all feasible pairwise
// intersections of constraint boundary lines. The conjunction must be
// bounded: unbounded regions (including half-open single-atom inputs like
// x <= 5, which earlier versions mis-converted into an empty vertex list)
// are rejected with an *UnboundedError.
func ConjunctionVertices(j constraint.Conjunction, xVar, yVar string) ([]geometry.Point, error) {
	for _, v := range j.Vars() {
		if v != xVar && v != yVar {
			return nil, fmt.Errorf("convert: conjunction mentions %q beyond (%s, %s)", v, xVar, yVar)
		}
	}
	if !j.IsSatisfiable() {
		return nil, fmt.Errorf("convert: conjunction is unsatisfiable")
	}
	for _, v := range []string{xVar, yVar} {
		iv, ok := j.VarBounds(v)
		if !ok || !iv.HasLower || !iv.HasUpper {
			return nil, &UnboundedError{Var: v}
		}
	}
	verts := ClosureVertices(j, xVar, yVar)
	if len(verts) == 0 {
		return nil, fmt.Errorf("convert: no vertices found (region not a bounded polytope?)")
	}
	return verts, nil
}

// ClosureVertices is the enumeration core of ConjunctionVertices without
// any of its Fourier–Motzkin guards: it intersects constraint boundary
// lines pairwise and keeps the points on the closure of the region (every
// strict constraint relaxed to its boundary). For a bounded satisfiable
// conjunction the convex hull of the result is exactly the closure of the
// region; for unbounded or unsatisfiable input the result is merely the
// feasible boundary intersections (possibly none) and the caller must
// establish boundedness itself. The vector fast path depends on this
// split: its eligibility probe decides boundedness geometrically
// (recession cone) and must make zero FM decisions.
func ClosureVertices(j constraint.Conjunction, xVar, yVar string) []geometry.Point {
	cs := j.Constraints()
	var verts []geometry.Point
	seen := map[string]bool{}
	add := func(p geometry.Point) {
		k := p.String()
		if !seen[k] {
			seen[k] = true
			verts = append(verts, p)
		}
	}
	onClosure := func(p geometry.Point) bool {
		assign := map[string]rational.Rat{xVar: p.X, yVar: p.Y}
		for _, c := range cs {
			v, err := c.Expr.Eval(assign)
			if err != nil {
				return false
			}
			// Closure: strict constraints relax to their boundary.
			switch c.Op {
			case constraint.Eq:
				if !v.IsZero() {
					return false
				}
			default:
				if v.Sign() > 0 {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < len(cs); i++ {
		for k := i + 1; k < len(cs); k++ {
			p, ok := lineIntersection(cs[i], cs[k], xVar, yVar)
			if ok && onClosure(p) {
				add(p)
			}
		}
	}
	return verts
}

// lineIntersection solves the 2x2 system given by the boundary lines of
// two constraints. Returns ok=false for parallel or degenerate lines.
func lineIntersection(c1, c2 constraint.Constraint, xVar, yVar string) (geometry.Point, bool) {
	a1, b1 := c1.Expr.Coef(xVar), c1.Expr.Coef(yVar)
	a2, b2 := c2.Expr.Coef(xVar), c2.Expr.Coef(yVar)
	k1, k2 := c1.Expr.ConstTerm().Neg(), c2.Expr.ConstTerm().Neg()
	// a1 x + b1 y = k1 ; a2 x + b2 y = k2
	det := a1.Mul(b2).Sub(a2.Mul(b1))
	if det.IsZero() {
		return geometry.Point{}, false
	}
	x := k1.Mul(b2).Sub(k2.Mul(b1)).Div(det)
	y := a1.Mul(k2).Sub(a2.Mul(k1)).Div(det)
	return geometry.Point{X: x, Y: y}, true
}

// ConjunctionToPolygon reconstructs the polygon of a bounded full-
// dimensional conjunction (the §6 reverse conversion used when displaying
// constraint data). Degenerate regions (points, segments) are rejected —
// use ConjunctionVertices for those.
func ConjunctionToPolygon(j constraint.Conjunction, xVar, yVar string) (geometry.Polygon, error) {
	verts, err := ConjunctionVertices(j, xVar, yVar)
	if err != nil {
		return geometry.Polygon{}, err
	}
	hull, err := geometry.ConvexHull(verts)
	if err != nil {
		return geometry.Polygon{}, fmt.Errorf("convert: region is degenerate: %w", err)
	}
	return hull, nil
}

// ConjunctionToSegment reconstructs a segment from a one-dimensional
// (collinear, bounded) conjunction — the reverse of SegmentToConjunction.
func ConjunctionToSegment(j constraint.Conjunction, xVar, yVar string) (geometry.Segment, error) {
	verts, err := ConjunctionVertices(j, xVar, yVar)
	if err != nil {
		return geometry.Segment{}, err
	}
	if len(verts) < 2 {
		return geometry.Segment{}, fmt.Errorf("convert: region is a point, not a segment")
	}
	// The extreme pair: maximise pairwise squared distance.
	bi, bk := 0, 1
	best := verts[0].SqDist(verts[1])
	for i := 0; i < len(verts); i++ {
		for k := i + 1; k < len(verts); k++ {
			if d := verts[i].SqDist(verts[k]); best.Less(d) {
				bi, bk, best = i, k, d
			}
		}
	}
	for _, v := range verts {
		if geometry.Orientation(verts[bi], verts[bk], v) != 0 {
			return geometry.Segment{}, fmt.Errorf("convert: region is two-dimensional, not a segment")
		}
	}
	return geometry.Segment{A: verts[bi], B: verts[bk]}, nil
}
