package convert

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func holdsAt(j constraint.Conjunction, x, y int64) bool {
	ok, err := j.Holds(map[string]rational.Rat{
		"x": rational.FromInt(x), "y": rational.FromInt(y)})
	if err != nil {
		panic(err)
	}
	return ok
}

func TestConvexPolygonToConjunction(t *testing.T) {
	sq := geometry.RectPoly(0, 0, 4, 4)
	j, err := ConvexPolygonToConjunction(sq, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	// Grid cross-check against exact polygon containment.
	for x := int64(-1); x <= 5; x++ {
		for y := int64(-1); y <= 5; y++ {
			want := sq.Contains(geometry.Pt(x, y))
			if got := holdsAt(j, x, y); got != want {
				t.Errorf("(%d,%d): conjunction=%v polygon=%v", x, y, got, want)
			}
		}
	}
	// Non-convex input is rejected.
	l := geometry.MustPolygon(geometry.Pt(0, 0), geometry.Pt(4, 0), geometry.Pt(4, 2),
		geometry.Pt(2, 2), geometry.Pt(2, 4), geometry.Pt(0, 4))
	if _, err := ConvexPolygonToConjunction(l, "x", "y"); err == nil {
		t.Error("concave polygon accepted")
	}
}

func TestPolygonToConjunctionsConcave(t *testing.T) {
	l := geometry.MustPolygon(geometry.Pt(0, 0), geometry.Pt(4, 0), geometry.Pt(4, 2),
		geometry.Pt(2, 2), geometry.Pt(2, 4), geometry.Pt(0, 4))
	cons, err := PolygonToConjunctions(l, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) < 2 {
		t.Fatalf("concave polygon gave %d pieces", len(cons))
	}
	inAny := func(x, y int64) bool {
		for _, j := range cons {
			if holdsAt(j, x, y) {
				return true
			}
		}
		return false
	}
	for x := int64(-1); x <= 5; x++ {
		for y := int64(-1); y <= 5; y++ {
			want := l.Contains(geometry.Pt(x, y))
			if got := inAny(x, y); got != want {
				t.Errorf("(%d,%d): union=%v polygon=%v", x, y, got, want)
			}
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, seg := range []geometry.Segment{
		geometry.Seg(0, 0, 4, 2),
		geometry.Seg(1, 1, 1, 5),  // vertical
		geometry.Seg(-2, 3, 4, 3), // horizontal
		geometry.Seg(2, 2, 0, 0),  // reversed diagonal
	} {
		j := SegmentToConjunction(seg, "x", "y")
		// Midpoint is on the segment; points off it are not.
		mid := seg.Midpoint()
		ok, _ := j.Holds(map[string]rational.Rat{"x": mid.X, "y": mid.Y})
		if !ok {
			t.Errorf("%s: midpoint rejected", seg)
		}
		off := mid.Add(geometry.Pt(0, 1).Sub(geometry.Pt(0, 0)))
		if seg.Contains(off) {
			off = mid.Add(geometry.Pt(1, 0).Sub(geometry.Pt(0, 0)))
		}
		ok, _ = j.Holds(map[string]rational.Rat{"x": off.X, "y": off.Y})
		if ok {
			t.Errorf("%s: off-segment point accepted", seg)
		}
		// Round trip.
		back, err := ConjunctionToSegment(j, "x", "y")
		if err != nil {
			t.Fatalf("%s: %v", seg, err)
		}
		sameFwd := back.A.Equal(seg.A) && back.B.Equal(seg.B)
		sameRev := back.A.Equal(seg.B) && back.B.Equal(seg.A)
		if !sameFwd && !sameRev {
			t.Errorf("%s: round trip gave %s", seg, back)
		}
	}
}

func TestPolylineToConjunctions(t *testing.T) {
	l := geometry.MustPolyline(geometry.Pt(0, 0), geometry.Pt(4, 0), geometry.Pt(4, 4))
	cons := PolylineToConjunctions(l, "x", "y")
	if len(cons) != 2 {
		t.Fatalf("pieces = %d", len(cons))
	}
	// The paper's redundancy observation: the joint vertex satisfies both
	// neighbouring tuples.
	for i, j := range cons {
		ok, _ := j.Holds(map[string]rational.Rat{"x": q("4"), "y": q("0")})
		if !ok {
			t.Errorf("piece %d misses the joint vertex", i)
		}
	}
}

func TestPointToConjunction(t *testing.T) {
	j := PointToConjunction(geometry.PtQ("3/2", "-7"), "x", "y")
	ok, _ := j.Holds(map[string]rational.Rat{"x": q("3/2"), "y": q("-7")})
	if !ok {
		t.Error("point rejected")
	}
	ok, _ = j.Holds(map[string]rational.Rat{"x": q("3/2"), "y": q("0")})
	if ok {
		t.Error("wrong point accepted")
	}
}

func TestConjunctionToPolygonRoundTrip(t *testing.T) {
	polys := []geometry.Polygon{
		geometry.RectPoly(0, 0, 4, 4),
		geometry.MustPolygon(geometry.Pt(0, 0), geometry.Pt(6, 0), geometry.Pt(3, 5)),
		geometry.MustPolygon(geometry.PtQ("1/2", "0"), geometry.PtQ("5/2", "1/3"), geometry.PtQ("1", "7/2")),
	}
	for _, p := range polys {
		j, err := ConvexPolygonToConjunction(p, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ConjunctionToPolygon(j, "x", "y")
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !back.Area().Equal(p.Area()) {
			t.Errorf("%s: round-trip area %s vs %s", p, back.Area(), p.Area())
		}
		// Vertex sets must coincide.
		for _, v := range p.Vertices() {
			found := false
			for _, w := range back.Vertices() {
				if v.Equal(w) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: vertex %s lost in round trip", p, v)
			}
		}
	}
}

func TestConjunctionToPolygonErrors(t *testing.T) {
	// Unbounded.
	unb := constraint.And(constraint.GeConst("x", q("0")), constraint.GeConst("y", q("0")))
	if _, err := ConjunctionToPolygon(unb, "x", "y"); err == nil {
		t.Error("unbounded region accepted")
	}
	// Unsatisfiable.
	unsat := constraint.And(constraint.GeConst("x", q("1")), constraint.LeConst("x", q("0")),
		constraint.EqConst("y", q("0")))
	if _, err := ConjunctionToPolygon(unsat, "x", "y"); err == nil {
		t.Error("unsat region accepted")
	}
	// Extra variable.
	extra := constraint.And(constraint.EqConst("z", q("0")))
	if _, err := ConjunctionVertices(extra, "x", "y"); err == nil {
		t.Error("extra variable accepted")
	}
	// Degenerate (a point) is rejected by ConjunctionToPolygon.
	pt := PointToConjunction(geometry.Pt(1, 1), "x", "y")
	if _, err := ConjunctionToPolygon(pt, "x", "y"); err == nil {
		t.Error("point region accepted as polygon")
	}
	// ...but its vertex is enumerable.
	vs, err := ConjunctionVertices(pt, "x", "y")
	if err != nil || len(vs) != 1 || !vs[0].Equal(geometry.Pt(1, 1)) {
		t.Errorf("point vertices = %v, %v", vs, err)
	}
}

// TestQuickTriangleRoundTrip: random triangles survive the
// constraints→vertices round trip with exact area.
func TestQuickTriangleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for iter := 0; iter < 200; iter++ {
		a := geometry.Pt(int64(rng.Intn(20)-10), int64(rng.Intn(20)-10))
		b := geometry.Pt(int64(rng.Intn(20)-10), int64(rng.Intn(20)-10))
		c := geometry.Pt(int64(rng.Intn(20)-10), int64(rng.Intn(20)-10))
		if geometry.Orientation(a, b, c) == 0 {
			continue
		}
		tri, err := geometry.NewPolygon([]geometry.Point{a, b, c})
		if err != nil {
			continue
		}
		j, err := ConvexPolygonToConjunction(tri, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ConjunctionToPolygon(j, "x", "y")
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, tri, err)
		}
		if !back.Area().Equal(tri.Area()) {
			t.Fatalf("iter %d: area %s != %s", iter, back.Area(), tri.Area())
		}
	}
}

// TestExample8VectorProjection reproduces §6 Example 8: projecting a
// region stored as a vertex sequence onto an axis is just the extrema of
// the coordinates — and must agree with the constraint-side projection via
// Fourier-Motzkin.
func TestExample8VectorProjection(t *testing.T) {
	tri := geometry.MustPolygon(geometry.Pt(1, 1), geometry.Pt(7, 2), geometry.Pt(3, 6))
	// Vector side: extrema of vertex x-coordinates.
	minX, _, maxX, _ := tri.BBox()
	// Constraint side: FM projection onto x.
	j, err := ConvexPolygonToConjunction(tri, "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	iv, ok := j.Project("x").VarBounds("x")
	if !ok {
		t.Fatal("projection unsat")
	}
	if !iv.Lower.Equal(minX) || !iv.Upper.Equal(maxX) {
		t.Errorf("FM projection [%s, %s] != vector extrema [%s, %s]",
			iv.Lower, iv.Upper, minX, maxX)
	}
}
