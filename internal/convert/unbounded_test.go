package convert

import (
	"errors"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/geometry"
	"cdb/internal/rational"
)

// Regression tests for the typed unbounded rejection: half-open and
// single-atom conjunctions have feasible boundary intersections (or none
// at all) but no finite vertex representation, and must come back as
// *UnboundedError — never as a mis-converted polygon.
func TestConjunctionVerticesUnboundedTyped(t *testing.T) {
	five := rational.FromInt(5)
	zero := rational.Zero
	cases := []struct {
		name string
		j    constraint.Conjunction
		av   string // variable the error should name
	}{
		{
			// Half-open strip: x bounded, y only bounded below.
			"half-open",
			constraint.And(
				constraint.GeConst("x", zero), constraint.LeConst("x", five),
				constraint.GeConst("y", zero)),
			"y",
		},
		{
			// Single atom: a half-plane, unbounded in both variables.
			"single-atom",
			constraint.And(constraint.LeConst("x", five)),
			"x",
		},
		{
			// Quadrant: two feasible boundary lines intersect at the
			// origin, so the old pairwise enumeration would have found a
			// "vertex" and silently built a wrong region.
			"quadrant",
			constraint.And(constraint.GeConst("x", zero), constraint.GeConst("y", zero)),
			"x",
		},
		{
			// Canonical form must behave the same as the raw form.
			"half-open-canon",
			constraint.And(
				constraint.GeConst("x", zero), constraint.LeConst("x", five),
				constraint.GeConst("y", zero)).Canon(),
			"y",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ConjunctionVertices(tc.j, "x", "y")
			if err == nil {
				t.Fatal("unbounded conjunction accepted")
			}
			var ue *UnboundedError
			if !errors.As(err, &ue) {
				t.Fatalf("error %v is not *UnboundedError", err)
			}
			if ue.Var != tc.av {
				t.Fatalf("UnboundedError.Var = %q, want %q", ue.Var, tc.av)
			}
		})
	}
}

// The quadrant case through ClosureVertices: the FM-free core reports the
// feasible boundary intersections as-is — it is the caller's job to
// establish boundedness, which is exactly what the typed error above is
// for.
func TestClosureVerticesNoBoundednessGuard(t *testing.T) {
	quad := constraint.And(
		constraint.GeConst("x", rational.Zero), constraint.GeConst("y", rational.Zero))
	verts := ClosureVertices(quad, "x", "y")
	if len(verts) != 1 || !verts[0].Equal(geometry.Pt(0, 0)) {
		t.Fatalf("quadrant closure vertices = %v, want just the origin", verts)
	}
}

// Bounded regions still convert, and ClosureVertices agrees with the
// guarded ConjunctionVertices on them.
func TestClosureVerticesMatchesGuardedOnBounded(t *testing.T) {
	box := constraint.And(
		constraint.GeConst("x", rational.Zero), constraint.LeConst("x", rational.FromInt(2)),
		constraint.GeConst("y", rational.Zero), constraint.LeConst("y", rational.FromInt(3)))
	want, err := ConjunctionVertices(box, "x", "y")
	if err != nil {
		t.Fatalf("bounded box rejected: %v", err)
	}
	got := ClosureVertices(box, "x", "y")
	if len(got) != len(want) {
		t.Fatalf("core found %d vertices, guarded %d", len(got), len(want))
	}
	if len(got) != 4 {
		t.Fatalf("box has %d vertices, want 4", len(got))
	}
}
