package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
)

// randRelTuples builds tuples with random relational parts over (a, b):
// a few repeating string values per attribute plus NULLs, so buckets and
// NULL-safe identity are both exercised. The constraint part is True.
func randRelTuples(rng *rand.Rand, n int) []Tuple {
	out := make([]Tuple, n)
	for i := range out {
		rvals := map[string]Value{}
		if rng.Intn(4) != 0 { // every ~4th leaves a NULL
			rvals["a"] = Str(fmt.Sprintf("a%d", rng.Intn(3)))
		}
		if rng.Intn(4) != 0 {
			rvals["b"] = Str(fmt.Sprintf("b%d", rng.Intn(3)))
		}
		out[i] = NewTuple(rvals, constraint.True())
	}
	return out
}

// TestPartitionKeyMatchesIdentity: equal keys over the full attribute set
// iff SameRelationalPart, including NULL = NULL.
func TestPartitionKeyMatchesIdentity(t *testing.T) {
	attrs := []string{"a", "b"}
	rng := rand.New(rand.NewSource(41))
	ts := randRelTuples(rng, 40)
	for i := range ts {
		for j := range ts {
			same := ts[i].SameRelationalPart(ts[j])
			keys := ts[i].PartitionKey(attrs) == ts[j].PartitionKey(attrs)
			if same != keys {
				t.Fatalf("tuples %d,%d: SameRelationalPart=%v but key equality=%v (%s vs %s)",
					i, j, same, keys, ts[i], ts[j])
			}
		}
	}
}

// TestPartitionKeyNoAliasing: length prefixes keep adjacent fields from
// running together ("ab","c" must not collide with "a","bc").
func TestPartitionKeyNoAliasing(t *testing.T) {
	t1 := NewTuple(map[string]Value{"a": Str("ab"), "b": Str("c")}, constraint.True())
	t2 := NewTuple(map[string]Value{"a": Str("a"), "b": Str("bc")}, constraint.True())
	attrs := []string{"a", "b"}
	if t1.PartitionKey(attrs) == t2.PartitionKey(attrs) {
		t.Fatalf("adjacent fields alias: %q", t1.PartitionKey(attrs))
	}
}

// TestPartitionLookupMatchesScan: Lookup returns exactly the indexes a
// SameRelationalPart scan finds, in input order.
func TestPartitionLookupMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ts := randRelTuples(rng, 60)
	p := NewPartition(ts, []string{"a", "b"})
	for i, probe := range ts {
		var want []int
		for j := range ts {
			if probe.SameRelationalPart(ts[j]) {
				want = append(want, j)
			}
		}
		got := p.Lookup(probe)
		if len(got) != len(want) {
			t.Fatalf("tuple %d: Lookup returned %v, scan found %v", i, got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("tuple %d: Lookup returned %v, scan found %v", i, got, want)
			}
		}
	}
	// Bucket sizes cover all tuples exactly once.
	total := 0
	for _, k := range p.Keys() {
		total += len(p.Bucket(k))
	}
	if total != len(ts) {
		t.Fatalf("buckets hold %d indexes, want %d", total, len(ts))
	}
	if !sort.StringsAreSorted(p.Keys()) {
		t.Fatal("Keys() not sorted")
	}
}

// TestJoinTupleMatchesComposition: the fused single-allocation merge
// builds the same tuple as copying both sides into a fresh map.
func TestJoinTupleMatchesComposition(t *testing.T) {
	con := constraint.And(
		constraint.GeConst("x", rational.FromInt(1)),
		constraint.LeConst("x", rational.FromInt(5)),
	).Canon()
	t1 := NewTuple(map[string]Value{"a": Str("left"), "shared": Str("s")}, constraint.True())
	t2 := NewTuple(map[string]Value{"b": Str("right"), "shared": Str("s")}, constraint.True())

	fused := JoinTuple(t1, t2, con)
	m := t1.RVals()
	for k, v := range t2.RVals() {
		m[k] = v
	}
	composed := NewTuple(m, con)
	if fused.String() != composed.String() || fused.Key() != composed.Key() {
		t.Fatalf("JoinTuple diverges from two-copy composition:\nfused:    %s\ncomposed: %s",
			fused, composed)
	}
	if !fused.Constraint().EqualCanonical(con) {
		t.Fatal("JoinTuple dropped the constraint part")
	}
}
