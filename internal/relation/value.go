// Package relation implements heterogeneous constraint relations — the data
// model of CQA/CDB (§2.3 and §3 of the paper).
//
// A tuple has two parts:
//
//   - a relational part: bindings of relational attributes to concrete
//     values (a missing binding is NULL, the narrow interpretation);
//   - a constraint part: a conjunction of rational linear constraints over
//     the constraint attributes (an unconstrained attribute admits every
//     value, the broad interpretation).
//
// A relation is a finite set of such tuples over a fixed schema; its
// semantics is the union of the (possibly infinite) point sets denoted by
// its tuples.
package relation

import (
	"fmt"

	"cdb/internal/rational"
)

// ValueKind discriminates Value.
type ValueKind int

const (
	// KindNull is the absent/unknown value of a relational attribute.
	KindNull ValueKind = iota
	// KindString is a symbolic value.
	KindString
	// KindRational is an exact rational value.
	KindRational
)

// Value is a concrete value of a relational attribute: a string, a
// rational, or NULL. The zero value is NULL.
type Value struct {
	kind ValueKind
	s    string
	r    rational.Rat
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Rat returns a rational value.
func Rat(r rational.Rat) Value { return Value{kind: KindRational, r: r} }

// Int returns a rational value equal to the integer n.
func Int(n int64) Value { return Rat(rational.FromInt(n)) }

// Kind returns the kind of v.
func (v Value) Kind() ValueKind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsString returns the string payload; ok is false for non-string values.
func (v Value) AsString() (string, bool) {
	return v.s, v.kind == KindString
}

// AsRat returns the rational payload; ok is false for non-rational values.
func (v Value) AsRat() (rational.Rat, bool) {
	return v.r, v.kind == KindRational
}

// Equal implements query-level equality: NULL is not equal to anything,
// including NULL (SQL three-valued flavour collapsed to false). Use
// Identical for set-identity comparisons.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull || v.kind != o.kind {
		return false
	}
	if v.kind == KindString {
		return v.s == o.s
	}
	return v.r.Equal(o.r)
}

// Identical implements set-identity equality: NULL is identical to NULL.
// This is the notion used by union deduplication and difference matching.
func (v Value) Identical(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	default:
		return v.r.Equal(o.r)
	}
}

// Compare orders values for deterministic output: NULL < strings < rationals;
// strings lexicographic, rationals numeric.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		return int(v.kind) - int(o.kind)
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	default:
		return v.r.Cmp(o.r)
	}
}

// String renders the value; strings are quoted, NULL renders as "null".
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return fmt.Sprintf("%q", v.s)
	default:
		return v.r.String()
	}
}

// Key returns a canonical comparable key for the value.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00null"
	case KindString:
		return "s:" + v.s
	default:
		return "r:" + v.r.Key()
	}
}
