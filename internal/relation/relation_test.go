package relation

import (
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/schema"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func landSchema() schema.Schema {
	return schema.MustNew(schema.Rel("landId", schema.String), schema.Con("x"), schema.Con("y"))
}

// unitSquare returns the constraint part for [x0,x0+1]x[y0,y0+1].
func square(x0, y0 int64) constraint.Conjunction {
	return constraint.And(
		constraint.GeConst("x", rational.FromInt(x0)),
		constraint.LeConst("x", rational.FromInt(x0+1)),
		constraint.GeConst("y", rational.FromInt(y0)),
		constraint.LeConst("y", rational.FromInt(y0+1)),
	)
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() || Str("a").IsNull() {
		t.Error("IsNull wrong")
	}
	if Null().Equal(Null()) {
		t.Error("NULL = NULL under query equality")
	}
	if !Null().Identical(Null()) {
		t.Error("NULL not identical to NULL")
	}
	if !Str("a").Equal(Str("a")) || Str("a").Equal(Str("b")) {
		t.Error("string equality wrong")
	}
	if !Rat(q("1/2")).Equal(Rat(q("2/4"))) {
		t.Error("rational equality wrong")
	}
	if Str("a").Equal(Rat(q("1"))) {
		t.Error("cross-kind equality")
	}
	if Int(3).Compare(Int(4)) >= 0 || Str("a").Compare(Str("b")) >= 0 {
		t.Error("Compare ordering wrong")
	}
	if got := Str("hi").String(); got != `"hi"` {
		t.Errorf("String = %s", got)
	}
}

func TestTupleBasics(t *testing.T) {
	tp := NewTuple(map[string]Value{"landId": Str("A"), "junk": Null()}, square(0, 0))
	if _, ok := tp.RVal("junk"); ok {
		t.Error("explicit NULL binding not normalised away")
	}
	v, ok := tp.RVal("landId")
	if !ok || !v.Equal(Str("A")) {
		t.Error("RVal lost binding")
	}
	up := tp.WithRVal("owner", Str("bob"))
	if _, ok := tp.RVal("owner"); ok {
		t.Error("WithRVal mutated original")
	}
	if v, _ := up.RVal("owner"); !v.Equal(Str("bob")) {
		t.Error("WithRVal did not bind")
	}
	if !tp.IsSatisfiable() {
		t.Error("square unsatisfiable")
	}
	bad := tp.AndConstraints(constraint.GeConst("x", q("9")))
	if bad.IsSatisfiable() {
		t.Error("contradiction satisfiable")
	}
	if !tp.IsSatisfiable() {
		t.Error("AndConstraints mutated original")
	}
}

func TestTupleSameRelationalPart(t *testing.T) {
	a := NewTuple(map[string]Value{"id": Str("A")}, constraint.True())
	b := NewTuple(map[string]Value{"id": Str("A")}, square(0, 0))
	c := NewTuple(map[string]Value{"id": Str("B")}, constraint.True())
	d := NewTuple(nil, constraint.True())
	if !a.SameRelationalPart(b) || a.SameRelationalPart(c) || a.SameRelationalPart(d) {
		t.Error("SameRelationalPart wrong")
	}
	if !d.SameRelationalPart(NewTuple(map[string]Value{}, square(1, 1))) {
		t.Error("empty relational parts should match")
	}
}

func TestAddValidation(t *testing.T) {
	r := New(landSchema())
	if err := r.Add(NewTuple(map[string]Value{"nope": Str("A")}, constraint.True())); err == nil {
		t.Error("unknown attribute accepted")
	}
	if err := r.Add(NewTuple(map[string]Value{"x": Str("A")}, constraint.True())); err == nil {
		t.Error("value binding for constraint attribute accepted")
	}
	if err := r.Add(NewTuple(map[string]Value{"landId": Int(3)}, constraint.True())); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := r.Add(ConstraintTuple(constraint.And(constraint.EqConst("z", q("1"))))); err == nil {
		t.Error("constraint over unknown attribute accepted")
	}
	// Constraint over a relational rational attribute must be rejected.
	s2 := schema.MustNew(schema.Rel("age", schema.Rational), schema.Con("t"))
	r2 := New(s2)
	if err := r2.Add(ConstraintTuple(constraint.And(constraint.EqConst("age", q("40"))))); err == nil {
		t.Error("constraint over relational attribute accepted")
	}
	if err := r2.Add(NewTuple(map[string]Value{"age": Rat(q("40"))}, constraint.True())); err != nil {
		t.Errorf("valid tuple rejected: %v", err)
	}
}

func TestContainsSemantics(t *testing.T) {
	r := New(landSchema())
	r.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, square(0, 0)))
	r.MustAdd(ConstraintTuple(square(5, 5))) // landId is NULL here

	pt := func(id Value, x, y string) Point {
		return Point{"landId": id, "x": Rat(q(x)), "y": Rat(q(y))}
	}
	ok, err := r.Contains(pt(Str("A"), "1/2", "1/2"))
	if err != nil || !ok {
		t.Errorf("interior point of A: %v %v", ok, err)
	}
	ok, _ = r.Contains(pt(Str("B"), "1/2", "1/2"))
	if ok {
		t.Error("wrong id matched")
	}
	// Narrow semantics: NULL landId tuple only matches NULL point value.
	ok, _ = r.Contains(pt(Str("A"), "11/2", "11/2"))
	if ok {
		t.Error("null-landId tuple matched a concrete id")
	}
	ok, _ = r.Contains(pt(Null(), "11/2", "11/2"))
	if !ok {
		t.Error("null point value did not match null-landId tuple")
	}
	// Constraint part must hold.
	ok, _ = r.Contains(pt(Str("A"), "9", "9"))
	if ok {
		t.Error("point outside square matched")
	}
	// Invalid probes.
	if _, err := r.Contains(Point{"landId": Str("A"), "x": Rat(q("0"))}); err == nil {
		t.Error("partial point accepted")
	}
	if _, err := r.Contains(Point{"landId": Str("A"), "x": Rat(q("0")), "y": Null()}); err == nil {
		t.Error("null constraint coordinate accepted")
	}
}

func TestNormalize(t *testing.T) {
	r := New(landSchema())
	sq := square(0, 0)
	r.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, sq))
	r.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, sq)) // duplicate
	r.MustAdd(ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("2")), constraint.LeConst("x", q("1"))))) // unsat
	n := r.Normalize()
	if n.Len() != 1 {
		t.Errorf("Normalize: %d tuples, want 1:\n%s", n.Len(), n)
	}
	if !n.Equivalent(r) {
		t.Error("Normalize changed semantics")
	}
}

func TestEquivalent(t *testing.T) {
	s := landSchema()
	// [0,2] as one tuple vs two overlapping halves.
	whole := New(s)
	whole.MustAdd(ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("0")), constraint.LeConst("x", q("2")))))
	halves := New(s)
	halves.MustAdd(ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("0")), constraint.LeConst("x", q("3/2")))))
	halves.MustAdd(ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("1")), constraint.LeConst("x", q("2")))))
	if !whole.Equivalent(halves) {
		t.Error("split interval not equivalent to whole")
	}
	// Different extents are not equivalent.
	shorter := New(s)
	shorter.MustAdd(ConstraintTuple(constraint.And(
		constraint.GeConst("x", q("0")), constraint.LeConst("x", q("1")))))
	if whole.Equivalent(shorter) {
		t.Error("different extents equivalent")
	}
	// Different relational parts are not equivalent.
	named := New(s)
	named.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, constraint.And(
		constraint.GeConst("x", q("0")), constraint.LeConst("x", q("2")))))
	if whole.Equivalent(named) {
		t.Error("null vs bound relational part equivalent")
	}
	// Schema mismatch.
	other := New(schema.MustNew(schema.Con("x")))
	if whole.Equivalent(other) {
		t.Error("different schemas equivalent")
	}
}

func TestSortedDeterminism(t *testing.T) {
	r := New(landSchema())
	r.MustAdd(NewTuple(map[string]Value{"landId": Str("B")}, constraint.True()))
	r.MustAdd(NewTuple(map[string]Value{"landId": Str("A")}, constraint.True()))
	s := r.Sorted()
	v0, _ := s[0].RVal("landId")
	if !v0.Equal(Str("A")) {
		t.Errorf("sorted order wrong: %v", s)
	}
	_ = r.String() // must not panic
}
