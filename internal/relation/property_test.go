package relation

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/schema"
)

// randRelation builds a random heterogeneous relation (possibly with
// unsatisfiable and duplicate tuples) for normalisation properties.
func randRelation(rng *rand.Rand) *Relation {
	s := schema.MustNew(schema.Rel("id", schema.String), schema.Con("x"))
	r := New(s)
	n := 1 + rng.Intn(5)
	for i := 0; i < n; i++ {
		rv := map[string]Value{}
		if rng.Intn(3) > 0 {
			rv["id"] = Str(string(rune('A' + rng.Intn(2))))
		}
		lo := int64(rng.Intn(10) - 5)
		hi := lo + int64(rng.Intn(6)-2) // sometimes empty (hi < lo)
		t := NewTuple(rv, constraint.And(
			constraint.GeConst("x", rational.FromInt(lo)),
			constraint.LeConst("x", rational.FromInt(hi))))
		r.MustAdd(t)
		if rng.Intn(4) == 0 {
			r.MustAdd(t) // duplicate
		}
	}
	return r
}

// TestQuickNormalizeProperties: Normalize preserves semantics, is
// idempotent, removes unsatisfiable tuples, and never grows the tuple
// count.
func TestQuickNormalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 150; iter++ {
		r := randRelation(rng)
		n := r.Normalize()
		if !n.Equivalent(r) {
			t.Fatalf("iter %d: Normalize changed semantics:\n%s\nvs\n%s", iter, r, n)
		}
		if n.Len() > r.Len() {
			t.Fatalf("iter %d: Normalize grew the relation", iter)
		}
		for _, tp := range n.Tuples() {
			if !tp.IsSatisfiable() {
				t.Fatalf("iter %d: unsatisfiable tuple survived: %s", iter, tp)
			}
		}
		nn := n.Normalize()
		if nn.Len() != n.Len() {
			t.Fatalf("iter %d: Normalize not idempotent: %d -> %d", iter, n.Len(), nn.Len())
		}
	}
}

// TestQuickEquivalentIsEquivalence: Equivalent is reflexive and symmetric
// on random relations, and respects Normalize.
func TestQuickEquivalentIsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 80; iter++ {
		a := randRelation(rng)
		b := randRelation(rng)
		if !a.Equivalent(a) {
			t.Fatalf("iter %d: not reflexive", iter)
		}
		if a.Equivalent(b) != b.Equivalent(a) {
			t.Fatalf("iter %d: not symmetric", iter)
		}
		// Splitting a tuple's interval into two pieces preserves
		// equivalence.
		split := New(a.Schema())
		for _, tp := range a.Tuples() {
			iv, ok := tp.Constraint().VarBounds("x")
			if !ok || !iv.HasLower || !iv.HasUpper || iv.IsPoint() {
				split.MustAdd(tp)
				continue
			}
			mid := iv.Lower.Add(iv.Upper).Mul(rational.Half)
			split.MustAdd(tp.WithConstraint(tp.Constraint().With(
				constraint.LeConst("x", mid))))
			split.MustAdd(tp.WithConstraint(tp.Constraint().With(
				constraint.GeConst("x", mid))))
		}
		if !split.Equivalent(a) {
			t.Fatalf("iter %d: interval split broke equivalence:\n%s\nvs\n%s", iter, a, split)
		}
	}
}
