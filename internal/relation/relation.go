package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"cdb/internal/constraint"
	"cdb/internal/rational"
	"cdb/internal/schema"
)

// Tuple is one heterogeneous constraint tuple: concrete bindings for (some
// of) the relational attributes plus a conjunction of linear constraints
// over the constraint attributes.
//
// Tuples are immutable; the With* methods return modified copies.
type Tuple struct {
	rvals map[string]Value
	con   constraint.Conjunction
}

// NewTuple builds a tuple from relational bindings and a constraint part.
// NULL bindings may be expressed either by omitting the attribute or by an
// explicit Null() value; both normalise to "absent".
func NewTuple(rvals map[string]Value, con constraint.Conjunction) Tuple {
	m := make(map[string]Value, len(rvals))
	for k, v := range rvals {
		if !v.IsNull() {
			m[k] = v
		}
	}
	return Tuple{rvals: m, con: con}
}

// JoinTuple returns the natural-join combination of t and o: the union of
// their relational bindings (o's win on shared names — the join guard has
// already checked shared bindings identical) with con as the constraint
// part. It is the refine-stage fast path of the CQA join: one map
// allocation per surviving pair, instead of the copy-merge-copy that
// composing RVals with NewTuple costs. Safe because tuples never store
// NULL bindings, so the merged map preserves the invariant unfiltered.
func JoinTuple(t, o Tuple, con constraint.Conjunction) Tuple {
	m := make(map[string]Value, len(t.rvals)+len(o.rvals))
	for k, v := range t.rvals {
		m[k] = v
	}
	for k, v := range o.rvals {
		m[k] = v
	}
	return Tuple{rvals: m, con: con}
}

// ConstraintTuple builds a tuple with only a constraint part.
func ConstraintTuple(con constraint.Conjunction) Tuple {
	return Tuple{rvals: map[string]Value{}, con: con}
}

// RVal returns the binding of relational attribute name; NULL (and
// ok=false) when absent.
func (t Tuple) RVal(name string) (Value, bool) {
	v, ok := t.rvals[name]
	if !ok {
		return Null(), false
	}
	return v, true
}

// RVals returns a copy of the relational bindings.
func (t Tuple) RVals() map[string]Value {
	out := make(map[string]Value, len(t.rvals))
	for k, v := range t.rvals {
		out[k] = v
	}
	return out
}

// Constraint returns the constraint part of the tuple.
func (t Tuple) Constraint() constraint.Conjunction { return t.con }

// WithRVal returns t with relational attribute name bound to v.
func (t Tuple) WithRVal(name string, v Value) Tuple {
	out := t.RVals()
	if v.IsNull() {
		delete(out, name)
	} else {
		out[name] = v
	}
	return Tuple{rvals: out, con: t.con}
}

// WithConstraint returns t with the constraint part replaced.
func (t Tuple) WithConstraint(con constraint.Conjunction) Tuple {
	return Tuple{rvals: t.rvals, con: con}
}

// AndConstraints returns t with extra constraints conjoined.
func (t Tuple) AndConstraints(cs ...constraint.Constraint) Tuple {
	return Tuple{rvals: t.rvals, con: t.con.With(cs...)}
}

// IsSatisfiable reports whether the constraint part admits a solution.
func (t Tuple) IsSatisfiable() bool { return t.con.IsSatisfiable() }

// Canon returns t with its constraint part in canonical form (see
// constraint.Conjunction.Canon). Every CQA operator emits canonical tuples;
// Canon is how the invariant is (re-)established at the boundaries — load,
// ad-hoc construction.
func (t Tuple) Canon() Tuple {
	return Tuple{rvals: t.rvals, con: t.con.Canon()}
}

// relationalKey is a canonical key of the relational part (used for
// difference matching and deduplication).
func (t Tuple) relationalKey() string {
	keys := make([]string, 0, len(t.rvals))
	for k := range t.rvals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(t.rvals[k].Key())
		b.WriteByte(';')
	}
	return b.String()
}

// Key returns a canonical syntactic key for the whole tuple: the relational
// part followed by the hex fingerprint of the constraint part's canonical
// form. Equal keys imply equivalent tuples up to fingerprint collision
// (~2^-64); code that must be exact (Normalize's dedup) verifies key matches
// with constraint.Conjunction.EqualCanonical.
func (t Tuple) Key() string {
	return t.relationalKey() + "|" + strconv.FormatUint(t.con.Fingerprint(), 16)
}

// SameRelationalPart reports whether t and o have identical relational
// parts (same bound attributes with identical values; NULL matches NULL).
func (t Tuple) SameRelationalPart(o Tuple) bool {
	if len(t.rvals) != len(o.rvals) {
		return false
	}
	for k, v := range t.rvals {
		ov, ok := o.rvals[k]
		if !ok || !v.Identical(ov) {
			return false
		}
	}
	return true
}

// String renders the tuple as "(name="A", t >= 2, t <= 5)".
func (t Tuple) String() string {
	keys := make([]string, 0, len(t.rvals))
	for k := range t.rvals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys)+1)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, t.rvals[k]))
	}
	if !t.con.IsTrue() {
		parts = append(parts, t.con.String())
	}
	if len(parts) == 0 {
		return "(true)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Relation is a finite set of heterogeneous constraint tuples over a fixed
// schema.
type Relation struct {
	schema schema.Schema
	tuples []Tuple
}

// New returns an empty relation with the given schema.
func New(s schema.Schema) *Relation {
	return &Relation{schema: s}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() schema.Schema { return r.schema }

// Len returns the number of constraint tuples (the size of the finite
// representation, not of the semantics).
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples. The result must not be mutated.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Add validates t against the schema and appends it:
//
//   - every relational binding must name a relational attribute of the
//     schema and match its type;
//   - every variable of the constraint part must name a constraint
//     attribute of the schema.
func (r *Relation) Add(t Tuple) error {
	for name, v := range t.rvals {
		a, ok := r.schema.Attr(name)
		if !ok {
			return fmt.Errorf("relation: binding for unknown attribute %q", name)
		}
		if a.Kind != schema.Relational {
			return fmt.Errorf("relation: value binding for constraint attribute %q (use constraints)", name)
		}
		switch a.Type {
		case schema.String:
			if v.Kind() != KindString {
				return fmt.Errorf("relation: attribute %q expects string, got %s", name, v)
			}
		case schema.Rational:
			if v.Kind() != KindRational {
				return fmt.Errorf("relation: attribute %q expects rational, got %s", name, v)
			}
		}
	}
	for _, v := range t.con.Vars() {
		a, ok := r.schema.Attr(v)
		if !ok {
			return fmt.Errorf("relation: constraint over unknown attribute %q", v)
		}
		if a.Kind != schema.Constraint {
			return fmt.Errorf("relation: constraint over relational attribute %q", v)
		}
	}
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAdd is like Add but panics on error. Intended for fixtures and tests.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// Clone returns a deep-enough copy (tuples are immutable, so sharing them
// is safe).
func (r *Relation) Clone() *Relation {
	return &Relation{schema: r.schema, tuples: append([]Tuple{}, r.tuples...)}
}

// Normalize removes unsatisfiable tuples, simplifies constraint parts into
// canonical form, and deduplicates canonically identical tuples. The
// semantics is unchanged.
func (r *Relation) Normalize() *Relation {
	return r.NormalizeWith(nil)
}

// NormalizeWith is Normalize with every satisfiability decision routed
// through sat (nil = raw Fourier-Motzkin); pass exec.Context.SatFunc to
// memoize the decisions. Deduplication is keyed by (relational part,
// constraint fingerprint) and verified exactly with EqualCanonical on key
// matches, so a fingerprint collision can never merge distinct tuples.
func (r *Relation) NormalizeWith(sat constraint.SatFunc) *Relation {
	out := New(r.schema)
	seen := map[string][]int{} // tuple key -> indexes into out.tuples
	for _, t := range r.tuples {
		if !t.con.SatisfiableWith(sat) {
			continue
		}
		nt := t.WithConstraint(t.con.SimplifyWith(sat).Canon())
		k := nt.Key()
		dup := false
		for _, i := range seen[k] {
			if out.tuples[i].SameRelationalPart(nt) &&
				out.tuples[i].con.EqualCanonical(nt.con) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[k] = append(seen[k], len(out.tuples))
		out.tuples = append(out.tuples, nt)
	}
	return out
}

// Point is a full assignment of schema attributes, used to probe relation
// semantics. Relational attributes may be assigned NULL — per the paper, a
// missing relational attribute is "assumed to have a null value, distinct
// from all values in the domain", so NULL is part of the point space of
// relational attributes. Constraint attributes must be rational and
// non-NULL.
type Point map[string]Value

// Contains reports whether the point is in the semantics of the relation:
// some tuple admits it.
//
// A tuple admits the point iff every relational attribute's binding (NULL
// when unbound; narrow semantics) is identical to the point's value, and
// the point's rational coordinates satisfy the constraint part (broad
// semantics: unconstrained attributes impose nothing).
func (r *Relation) Contains(p Point) (bool, error) {
	for _, a := range r.schema.Attrs() {
		v, present := p[a.Name]
		if !present || (a.Kind == schema.Constraint && v.Kind() != KindRational) {
			return false, fmt.Errorf("relation: point missing or non-rational for attribute %q", a.Name)
		}
	}
	for _, t := range r.tuples {
		ok, err := tupleAdmits(t, r.schema, p)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

func tupleAdmits(t Tuple, s schema.Schema, p Point) (bool, error) {
	assign := map[string]rational.Rat{}
	for _, a := range s.Attrs() {
		pv := p[a.Name]
		switch a.Kind {
		case schema.Relational:
			tv, _ := t.RVal(a.Name) // NULL when unbound
			if !tv.Identical(pv) {
				return false, nil
			}
		case schema.Constraint:
			rv, _ := pv.AsRat()
			assign[a.Name] = rv
		}
	}
	return t.con.Holds(assign)
}

// Equivalent reports whether r and o have equal schemas and the same
// semantics. Decided per relational-part group: within each group the
// constraint parts are compared as disjunctions via mutual containment
// (each tuple's region must be covered by the other side's union).
func (r *Relation) Equivalent(o *Relation) bool {
	if !r.schema.Equal(o.schema) {
		return false
	}
	return covers(r, o) && covers(o, r)
}

// covers reports whether every point of a is a point of b.
func covers(a, b *Relation) bool {
	groupsB := map[string][]constraint.Conjunction{}
	fpB := map[string]map[uint64]bool{} // relationalKey -> cover fingerprints
	for _, t := range b.tuples {
		if !t.IsSatisfiable() {
			continue
		}
		rk := t.relationalKey()
		groupsB[rk] = append(groupsB[rk], t.con)
		if fpB[rk] == nil {
			fpB[rk] = map[uint64]bool{}
		}
		fpB[rk][t.con.Fingerprint()] = true
	}
	for _, t := range a.tuples {
		if !t.IsSatisfiable() {
			continue
		}
		rk := t.relationalKey()
		cover := groupsB[rk]
		// Fast path: a canonically identical cover tuple covers t outright,
		// skipping the (expensive) staircase subtraction. The fingerprint
		// probe is advisory; the EqualCanonical verification is exact.
		if fpB[rk][t.con.Fingerprint()] {
			covered := false
			for _, c := range cover {
				if c.EqualCanonical(t.con) {
					covered = true
					break
				}
			}
			if covered {
				continue
			}
		}
		// t.con minus the union of covers must be empty.
		if constraint.SubtractAll(t.con, cover).IsSatisfiable() {
			return false
		}
	}
	return true
}

// Sorted returns the tuples in a deterministic display order: by relational
// part, then by the rendered constraint part. (Not by Key — hash order would
// be stable but human-hostile in printed and saved output.)
func (r *Relation) Sorted() []Tuple {
	out := append([]Tuple{}, r.tuples...)
	sort.Slice(out, func(i, j int) bool {
		ki, kj := out[i].relationalKey(), out[j].relationalKey()
		if ki != kj {
			return ki < kj
		}
		return out[i].con.String() < out[j].con.String()
	})
	return out
}

// String renders the relation with its schema and tuples, one per line.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.schema.String())
	b.WriteString(" {")
	for _, t := range r.Sorted() {
		b.WriteString("\n  ")
		b.WriteString(t.String())
	}
	if r.Len() > 0 {
		b.WriteString("\n")
	}
	b.WriteString("}")
	return b.String()
}
