package relation

import (
	"sort"
	"strconv"
	"strings"
)

// This file implements relational-part hash partitioning — the second leg
// of the binary CQA operators' filter-and-refine split (package cqa).
// Join's shared-relational-attribute guard and difference's
// SameRelationalPart scan are both NULL-safe identity tests; partitioning
// each side once on that identity turns the O(n·m) guard evaluations into
// bucket lookups, so only pairs inside a matching bucket reach the
// envelope filter and the refine step.

// PartitionKey returns the NULL-safe identity key of t's bindings over
// attrs: two tuples get equal keys iff their values are Identical on
// every listed attribute (an absent binding is NULL, and NULL is
// identical to NULL — the paper's narrow semantics). Each value key is
// length-prefixed so adjacent fields cannot alias.
func (t Tuple) PartitionKey(attrs []string) string {
	var b strings.Builder
	for _, a := range attrs {
		v, _ := t.RVal(a) // NULL when unbound
		k := v.Key()
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String()
}

// Partition is a hash index of a tuple slice on its relational identity
// over a fixed attribute list. Buckets hold indexes into the indexed
// slice in input order, so bucket-driven pair enumeration preserves the
// sequential nested-loop order within a bucket.
type Partition struct {
	attrs   []string
	buckets map[string][]int
}

// NewPartition indexes ts on the given attributes (see PartitionKey).
// Indexing the full relational attribute set of a schema partitions
// exactly by SameRelationalPart: bindings outside the schema cannot
// exist, and absent bindings read as NULL on both sides.
func NewPartition(ts []Tuple, attrs []string) *Partition {
	p := &Partition{
		attrs:   append([]string{}, attrs...),
		buckets: make(map[string][]int),
	}
	for i := range ts {
		k := ts[i].PartitionKey(p.attrs)
		p.buckets[k] = append(p.buckets[k], i)
	}
	return p
}

// Lookup returns the indexes of the indexed tuples whose identity over
// the partition's attributes matches t's, in input order. The result
// must not be mutated.
func (p *Partition) Lookup(t Tuple) []int {
	return p.buckets[t.PartitionKey(p.attrs)]
}

// Bucket returns the indexes under an explicit key (see PartitionKey).
// The result must not be mutated.
func (p *Partition) Bucket(key string) []int { return p.buckets[key] }

// Keys returns the bucket keys in sorted order, for deterministic
// iteration over the buckets.
func (p *Partition) Keys() []string {
	out := make([]string, 0, len(p.buckets))
	for k := range p.buckets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of buckets.
func (p *Partition) Len() int { return len(p.buckets) }
