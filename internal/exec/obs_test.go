package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdb/internal/constraint"
	"cdb/internal/obs"
	"cdb/internal/rational"
)

func TestMapCancelsOnError(t *testing.T) {
	c := &Context{Parallelism: 2, SeqThreshold: 1}
	const n = 1000
	var calls atomic.Int64
	_, err := Map(c, n, func(i int) (int, error) {
		calls.Add(1)
		if i == 0 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		// Slow enough that the other worker observes the stop flag long
		// before draining all n indices.
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil || err.Error() != "boom at 0" {
		t.Fatalf("err = %v, want boom at 0", err)
	}
	if got := calls.Load(); got >= n/2 {
		t.Errorf("fn ran %d/%d times after the error; cancellation did not stop the fan-out", got, n)
	}
}

func TestMapCancelKeepsLowestIndexError(t *testing.T) {
	// Even with cancellation, the reported error must be the one a
	// sequential left-to-right loop would hit first — across many runs so
	// scheduling varies.
	for run := 0; run < 20; run++ {
		c := &Context{Parallelism: 8, SeqThreshold: 1}
		_, err := Map(c, 200, func(i int) (int, error) {
			if i%7 == 3 { // errors at 3, 10, 17, ...
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom at 3" {
			t.Fatalf("run %d: err = %v, want boom at 3", run, err)
		}
	}
}

// satConj returns a trivially satisfiable one-atom conjunction (x >= 0)
// whose decision runs the raw eliminator when uncached.
func satConj(t *testing.T) constraint.Conjunction {
	t.Helper()
	con, err := constraint.New(constraint.Var("x"), ">=", constraint.Const(rational.FromInt(0)))
	if err != nil {
		t.Fatal(err)
	}
	return constraint.And(con)
}

func TestSummaryMergesFMDecisions(t *testing.T) {
	c := New(1)
	j := satConj(t)
	var perOp []int64
	for i := 0; i < 2; i++ {
		rec := c.StartOp("select", 1)
		if !rec.Satisfiable(j) { // no cache: raw eliminator, FM delta >= 1
			t.Fatal("x >= 0 must be satisfiable")
		}
		rec.Done(false)
		perOp = append(perOp, c.Stats()[i].FMDecisions)
		if perOp[i] < 1 {
			t.Fatalf("record %d FMDecisions = %d, want >= 1 (raw decision ran)", i, perOp[i])
		}
	}
	sum := c.Summary()
	if len(sum) != 1 || sum[0].Op != "select" {
		t.Fatalf("summary = %+v, want one select row", sum)
	}
	if want := perOp[0] + perOp[1]; sum[0].FMDecisions != want {
		t.Errorf("summary FMDecisions = %d, want merged %d", sum[0].FMDecisions, want)
	}
}

func TestFormatStatsFMColumn(t *testing.T) {
	out := FormatStats([]OpStats{
		{Op: "join", TuplesIn: 10, TuplesOut: 3, SatChecks: 25, PrunedUnsat: 22,
			CacheHits: 5, CacheMisses: 20, FMDecisions: 31,
			Wall: 1500 * time.Microsecond, Parallel: true},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row:\n%s", len(lines), out)
	}
	header, row := lines[0], lines[1]
	for _, col := range []string{"operator", "cache-hit", "cache-miss", "fm", "wall", "mode"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	// fm sits between cache-miss and wall, matching the header order.
	fi := strings.Fields(row)
	hi := strings.Fields(header)
	if len(fi) != len(hi) {
		t.Fatalf("row has %d fields, header %d:\n%s", len(fi), len(hi), out)
	}
	for i, h := range hi {
		if h == "fm" && fi[i] != "31" {
			t.Errorf("fm column = %q, want 31:\n%s", fi[i], out)
		}
	}
}

func TestBeginEndSpanNesting(t *testing.T) {
	c := New(1)
	c.Tracer = obs.NewTracer()
	outer := c.BeginSpan("stmt", "R = ...")
	inner := c.BeginSpan("join", "")
	c.EndSpan(inner)
	c.EndSpan(outer)
	sibling := c.BeginSpan("stmt", "S = ...")
	c.EndSpan(sibling)

	roots := c.Tracer.Roots()
	if len(roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(roots))
	}
	if kids := roots[0].Children(); len(kids) != 1 || kids[0].Name != "join" {
		t.Fatalf("first root children = %v, want [join]", kids)
	}
	if len(roots[1].Children()) != 0 {
		t.Error("sibling statement must not nest under the closed one")
	}
}

func TestBeginSpanNilSafe(t *testing.T) {
	var nilCtx *Context
	sp := nilCtx.BeginSpan("stmt", "")
	if sp != nil {
		t.Fatal("nil context must not trace")
	}
	nilCtx.EndSpan(sp)
	if nilCtx.Tracing() {
		t.Error("nil context reports tracing")
	}
	untraced := New(2)
	if sp := untraced.BeginSpan("stmt", ""); sp != nil {
		t.Fatal("context without tracer must not trace")
	}
}

func TestOpRecorderDepositsSpanCounters(t *testing.T) {
	c := New(1)
	c.Tracer = obs.NewTracer()
	plan := c.BeginSpan("select", "x >= 0")
	rec := c.StartOp("select", 10)
	rec.SatCheck(true)
	rec.SatCheck(false)
	rec.AddOut(1)
	rec.Done(false)
	c.EndSpan(plan)

	roots := c.Tracer.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	kids := roots[0].Children()
	if len(kids) != 1 || kids[0].Name != "select" {
		t.Fatalf("recorder span missing under the plan span: %v", kids)
	}
	sp := kids[0]
	if sp.Counter("in") != 10 || sp.Counter("out") != 1 ||
		sp.Counter("sat") != 2 || sp.Counter("pruned") != 1 {
		t.Errorf("span counters wrong: %v", sp.Counters())
	}
	// Zero counters are omitted, and the -stats record carries the same
	// numbers — the two views agree.
	if _, ok := sp.Counters()["hit"]; ok {
		t.Error("zero cache-hit counter should be omitted from the span")
	}
	s := c.Stats()[0]
	if s.SatChecks != sp.Counter("sat") || s.TuplesOut != sp.Counter("out") {
		t.Errorf("stats record %+v disagrees with span %v", s, sp.Counters())
	}
}

func TestMapFanoutSpan(t *testing.T) {
	c := &Context{Parallelism: 4, SeqThreshold: 1}
	c.Tracer = obs.NewTracer()
	op := c.BeginSpan("join", "")
	const n = 100
	if _, err := Map(c, n, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	c.EndSpan(op)

	kids := c.Tracer.Roots()[0].Children()
	if len(kids) != 1 || kids[0].Name != "fanout" {
		t.Fatalf("fanout span missing: %v", kids)
	}
	f := kids[0]
	if f.Counter("items") != n {
		t.Errorf("items = %d, want %d", f.Counter("items"), n)
	}
	if w := f.Counter("workers"); w < 1 || w > 4 {
		t.Errorf("workers = %d, want 1..4", w)
	}
	if f.Counter("busy_ns") < f.Counter("maxbusy_ns") {
		t.Errorf("summed busy %d < max busy %d", f.Counter("busy_ns"), f.Counter("maxbusy_ns"))
	}
	if f.Wall() <= 0 {
		t.Error("fanout span not ended")
	}
}

func TestMapNoFanoutSpanWhenUntraced(t *testing.T) {
	// Without a tracer (or without an open span) Map must not allocate
	// any span machinery — and produce identical results.
	c := &Context{Parallelism: 4, SeqThreshold: 1}
	out, err := Map(c, 50, func(i int) (int, error) { return i * 2, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	c.Tracer = obs.NewTracer() // tracer present but no open span
	if _, err := Map(c, 50, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if roots := c.Tracer.Roots(); len(roots) != 0 {
		t.Errorf("Map opened %d root spans without an enclosing operator span", len(roots))
	}
}

func TestInstallMetrics(t *testing.T) {
	c := New(1)
	c.SatCache = constraint.NewSatCache(64)
	reg := obs.NewRegistry()
	c.InstallMetrics(reg)
	if c.Metrics != reg {
		t.Fatal("InstallMetrics did not set Context.Metrics")
	}
	rec := c.StartOp("select", 3)
	rec.Satisfiable(satConj(t))
	rec.AddOut(1)
	rec.Done(false)

	snap := reg.Snapshot()
	ops, ok := snap["cdb_op_sat_checks_total"].(map[string]any)
	if !ok || ops["select"] != int64(1) {
		t.Errorf("op sat-check metric = %v", snap["cdb_op_sat_checks_total"])
	}
	if v, ok := snap["cdb_fm_decisions_total"].(int64); !ok || v < 1 {
		t.Errorf("fm decision metric = %v, want >= 1", snap["cdb_fm_decisions_total"])
	}
	if v, ok := snap["cdb_satcache_misses_total"].(int64); !ok || v < 1 {
		t.Errorf("sat-cache miss metric = %v, want >= 1", snap["cdb_satcache_misses_total"])
	}
	// Nil-safety.
	var nilCtx *Context
	nilCtx.InstallMetrics(reg)
	New(1).InstallMetrics(nil)
}

func TestFlightRollup(t *testing.T) {
	ops := []OpStats{
		{Op: "select", TuplesIn: 10, TuplesOut: 4, SatChecks: 10, PrunedUnsat: 6,
			CacheHits: 7, CacheMisses: 3, FMDecisions: 3, Wall: 1500 * time.Microsecond},
		{Op: "join", TuplesIn: 8, TuplesOut: 5, PairsTotal: 16, PairsPruned: 10,
			EstPairs: 9, Strategy: "sweep", Wall: 2 * time.Millisecond, Parallel: true},
	}
	rolls := FlightRollup(ops)
	if len(rolls) != 2 {
		t.Fatalf("rollup count %d, want 2", len(rolls))
	}
	sel := rolls[0]
	if sel.Op != "select" || sel.In != 10 || sel.Out != 4 || sel.Sat != 10 ||
		sel.Pruned != 6 || sel.CacheHits != 7 || sel.CacheMisses != 3 || sel.FM != 3 {
		t.Fatalf("select roll: %+v", sel)
	}
	if sel.WallMS != 1.5 {
		t.Fatalf("select wall %v ms, want 1.5", sel.WallMS)
	}
	// Unary operators carry no estimate: est/act stay zero even if the
	// raw pair counters were somehow set.
	if sel.Strategy != "" || sel.EstPairs != 0 || sel.ActPairs != 0 {
		t.Fatalf("unary roll gained planner fields: %+v", sel)
	}
	join := rolls[1]
	if join.Strategy != "sweep" || join.EstPairs != 9 {
		t.Fatalf("join roll: %+v", join)
	}
	// act_pairs is the filter's survivor count: pairs minus pruned.
	if join.ActPairs != 6 {
		t.Fatalf("join act_pairs %d, want 16-10=6", join.ActPairs)
	}
	if FlightRollup(nil) != nil {
		t.Fatal("empty rollup should be nil")
	}
}
