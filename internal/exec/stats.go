package exec

import (
	"fmt"
	"strings"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"cdb/internal/constraint"
	"cdb/internal/obs"
)

// OpStats is one operator invocation's execution record.
type OpStats struct {
	Op           string        // operator name: select, project, join, intersect, union, rename, difference
	TuplesIn     int64         // input tuples (both sides summed for binary operators)
	TuplesOut    int64         // output tuples
	SatChecks    int64         // satisfiability decisions made
	PrunedUnsat  int64         // candidates discarded: filter-stage rejects plus unsatisfiable sat decisions
	PairsTotal   int64         // binary operators: candidate tuple pairs enumerable (the dense n·m space)
	PairsPruned  int64         // binary operators: pairs rejected by the filter stage before any constraint work
	CacheHits    int64         // sat decisions answered by the memoized engine
	CacheMisses  int64         // sat decisions that ran the raw eliminator (cache enabled)
	FMDecisions  int64         // raw Fourier-Motzkin eliminator runs during the operator (process-wide delta; attribution is exact when one operator runs at a time)
	EstPairs     int64         // binary operators: the planner's pre-execution estimate of surviving candidate pairs (upper bound; compare to PairsTotal-PairsPruned)
	Strategy     string        // binary operators: the pairing strategy that ran (dense, sweep, index, vector); empty for unary operators
	VectorHits   int64         // sat decisions answered by the vector fast path (exact polygon clipping, no FM)
	VectorFalls  int64         // vector-path fallbacks: decisions the fast path could not take (ineligible form, extra variable, strict-degenerate) and handed to FM
	FloatRejects int64         // vector-path pairs rejected by the outward-rounded float bounding-box filter before any exact arithmetic
	Wall         time.Duration // wall time of the operator
	Parallel     bool          // whether the worker pool was used
}

// OpRecorder accumulates one operator invocation's statistics. Its
// counter methods are safe to call concurrently from pool workers, and
// every method is a no-op on the nil receiver, so operators record
// unconditionally whether or not a Context is present.
type OpRecorder struct {
	c            *Context
	op           string
	tuplesIn     int64
	start        time.Time
	fmStart      int64
	span         *obs.Span
	satChecks    atomic.Int64
	pruned       atomic.Int64
	pairsTotal   atomic.Int64
	pairsPruned  atomic.Int64
	tuplesOut    atomic.Int64
	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	vectorHits   atomic.Int64
	vectorFalls  atomic.Int64
	floatRejects atomic.Int64
	estPairs     int64  // written by Pairing before the fan-out starts
	strategy     string // written by Pairing before the fan-out starts
}

// VectorHit records one satisfiability decision answered geometrically
// by the vector fast path, with floatReject reporting that the cheap
// float bounding-box filter already decided it. It counts into vec (and
// float-rej, and pruned on unsat) but NOT into sat-checks: sat-checks
// means decisions routed through the sat oracle (cache + eliminator),
// preserving the invariant cache-hits + cache-misses = sat-checks
// whenever a cache is configured. The total decision count of an
// operator is therefore sat-checks + vec.
func (r *OpRecorder) VectorHit(sat, floatReject bool) {
	if r == nil {
		return
	}
	r.vectorHits.Add(1)
	if floatReject {
		r.floatRejects.Add(1)
	}
	if !sat {
		r.pruned.Add(1)
	}
}

// VectorFallback records one decision the vector fast path declined
// (caller then decides through Satisfiable, which does its own counting).
func (r *OpRecorder) VectorFallback() {
	if r == nil {
		return
	}
	r.vectorFalls.Add(1)
}

// StartOp opens a recorder for one operator invocation. Returns nil (a
// valid no-op recorder) on the nil Context. When the context traces,
// the recorder is also a span: it opens a child of the current span
// (typically the plan node that invoked the operator) and deposits its
// counters there on Done, so the flat -stats table and the EXPLAIN tree
// are two views of the same numbers.
func (c *Context) StartOp(op string, tuplesIn int) *OpRecorder {
	if c == nil {
		return nil
	}
	return &OpRecorder{
		c: c, op: op, tuplesIn: int64(tuplesIn),
		start:   time.Now(),
		fmStart: constraint.DecisionCount(),
		span:    c.BeginSpan(op, ""),
	}
}

// SatCheck records one satisfiability decision and, when it came out
// unsatisfiable, one pruned candidate.
func (r *OpRecorder) SatCheck(sat bool) {
	if r == nil {
		return
	}
	r.satChecks.Add(1)
	if !sat {
		r.pruned.Add(1)
	}
}

// Satisfiable decides j through the context's memoized engine (falling back
// to the raw eliminator when no cache is configured, or on the nil
// recorder) and records the decision: one sat-check, one pruned candidate if
// unsatisfiable, and — when the cache is enabled — one hit or miss. This is
// the decision entry point the CQA operators use.
func (r *OpRecorder) Satisfiable(j constraint.Conjunction) bool {
	if r == nil {
		return j.IsSatisfiable()
	}
	sat, hit := r.c.Satisfiable(j)
	r.satChecks.Add(1)
	if !sat {
		r.pruned.Add(1)
	}
	if r.c.SatCache != nil {
		if hit {
			r.cacheHits.Add(1)
		} else {
			r.cacheMisses.Add(1)
		}
	}
	return sat
}

// SatFunc adapts the recorder to a constraint.SatFunc so decision
// procedures threaded through the constraint package (SubtractAllWith,
// SimplifyWith) both consult the memoized engine and show up in the
// operator's statistics. The nil recorder yields nil (raw Fourier-Motzkin).
func (r *OpRecorder) SatFunc() constraint.SatFunc {
	if r == nil {
		return nil
	}
	return r.Satisfiable
}

// Pairs records a binary operator's filter stage: total is the candidate
// pair space the dense nested loop would enumerate, pruned the pairs the
// filter rejected before any constraint work (partition bucket mismatch
// or disjoint envelopes). Filter-pruned pairs also count as pruned
// candidates — the -stats `pruned` column reads filter rejects plus
// unsatisfiable sat decisions, so with the filter off the same pairs
// surface there through SatCheck instead. Safe from pool workers.
func (r *OpRecorder) Pairs(total, pruned int64) {
	if r == nil {
		return
	}
	r.pairsTotal.Add(total)
	r.pairsPruned.Add(pruned)
	r.pruned.Add(pruned)
}

// Pairing records the physical planner's decision for a binary
// operator's filter stage: the concrete strategy that will enumerate
// candidates (dense, sweep or index — auto already resolved) and the
// cost model's upper-bound estimate of surviving pairs. Call it once,
// before the refine fan-out starts — unlike the counters it is not
// synchronised, mirroring how the strategy decision itself happens on
// the plan-tree goroutine.
func (r *OpRecorder) Pairing(strategy string, estPairs int64) {
	if r == nil {
		return
	}
	r.strategy = strategy
	r.estPairs = estPairs
}

// AddOut records n output tuples.
func (r *OpRecorder) AddOut(n int) {
	if r == nil {
		return
	}
	r.tuplesOut.Add(int64(n))
}

// Done closes the recorder and appends the operator's record to the
// Context. parallel reports whether the worker pool was used. With
// tracing on it also closes the operator's span (counters deposited
// there first), and with a Metrics registry installed it folds the
// record into the per-operator metric families.
func (r *OpRecorder) Done(parallel bool) {
	if r == nil {
		return
	}
	s := OpStats{
		Op:           r.op,
		TuplesIn:     r.tuplesIn,
		TuplesOut:    r.tuplesOut.Load(),
		SatChecks:    r.satChecks.Load(),
		PrunedUnsat:  r.pruned.Load(),
		PairsTotal:   r.pairsTotal.Load(),
		PairsPruned:  r.pairsPruned.Load(),
		CacheHits:    r.cacheHits.Load(),
		CacheMisses:  r.cacheMisses.Load(),
		FMDecisions:  constraint.DecisionCount() - r.fmStart,
		EstPairs:     r.estPairs,
		Strategy:     r.strategy,
		VectorHits:   r.vectorHits.Load(),
		VectorFalls:  r.vectorFalls.Load(),
		FloatRejects: r.floatRejects.Load(),
		Wall:         time.Since(r.start),
		Parallel:     parallel,
	}
	if r.span != nil {
		setNonZero := func(k string, v int64) {
			if v != 0 {
				r.span.Set(k, v)
			}
		}
		setNonZero("in", s.TuplesIn)
		setNonZero("out", s.TuplesOut)
		setNonZero("sat", s.SatChecks)
		setNonZero("pruned", s.PrunedUnsat)
		setNonZero("pairs", s.PairsTotal)
		setNonZero("filtered", s.PairsPruned)
		setNonZero("hit", s.CacheHits)
		setNonZero("miss", s.CacheMisses)
		setNonZero("fm", s.FMDecisions)
		setNonZero("vec", s.VectorHits)
		setNonZero("vec_fallback", s.VectorFalls)
		setNonZero("float_reject", s.FloatRejects)
		if s.Strategy != "" {
			// The planner's view of this operator: chosen strategy,
			// estimated surviving pairs, and what actually survived —
			// est_pairs ≥ act_pairs by the estimator's upper-bound
			// contract, and the gap is the estimation error EXPLAIN
			// ANALYZE exists to expose.
			r.span.SetLabel("strategy", s.Strategy)
			r.span.Set("est_pairs", s.EstPairs)
			r.span.Set("act_pairs", s.PairsTotal-s.PairsPruned)
		}
		if parallel {
			r.span.Set("par", 1)
		}
		r.c.EndSpan(r.span)
	}
	if m := r.c.Metrics; m != nil {
		addOpMetric(m, "cdb_op_tuples_in_total", "Input tuples per operator.", r.op, s.TuplesIn)
		addOpMetric(m, "cdb_op_tuples_out_total", "Output tuples per operator.", r.op, s.TuplesOut)
		addOpMetric(m, "cdb_op_sat_checks_total", "Satisfiability decisions per operator.", r.op, s.SatChecks)
		addOpMetric(m, "cdb_op_pruned_unsat_total", "Candidates pruned as unsatisfiable per operator.", r.op, s.PrunedUnsat)
		addOpMetric(m, "cqa_pairs_considered_total", "Candidate tuple pairs enumerable by the binary CQA operators (the dense pair space).", r.op, s.PairsTotal)
		addOpMetric(m, "cqa_pairs_pruned_total", "Candidate pairs rejected by the filter stage (partition + envelope) before any satisfiability work.", r.op, s.PairsPruned)
		addOpMetric(m, "cdb_op_cache_hits_total", "Sat-cache hits per operator.", r.op, s.CacheHits)
		addOpMetric(m, "cdb_op_cache_misses_total", "Sat-cache misses per operator.", r.op, s.CacheMisses)
		addOpMetric(m, "cdb_vector_hits_total", "Satisfiability decisions answered by the vector fast path (exact polygon clipping).", r.op, s.VectorHits)
		addOpMetric(m, "cdb_vector_fallbacks_total", "Vector fast-path fallbacks to the Fourier-Motzkin refine stage.", r.op, s.VectorFalls)
		addOpMetric(m, "cdb_vector_float_rejects_total", "Vector fast-path pairs rejected by the outward-rounded float bbox filter.", r.op, s.FloatRejects)
		m.HistogramVec("cdb_op_seconds", "Operator wall time.", "op", obs.DefLatencyBuckets).
			With(r.op).Observe(s.Wall.Seconds())
	}
	r.c.mu.Lock()
	r.c.ops = append(r.c.ops, s)
	r.c.mu.Unlock()
}

func addOpMetric(m *obs.Registry, name, help, op string, v int64) {
	if v != 0 {
		m.CounterVec(name, help, "op").With(op).Add(v)
	}
}

// Stats returns a copy of the operator records collected so far, in
// completion order.
func (c *Context) Stats() []OpStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]OpStats{}, c.ops...)
}

// Reset discards the collected operator records.
func (c *Context) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ops = nil
	c.mu.Unlock()
}

// Summary aggregates the collected records per operator name, preserving
// first-appearance order. The Parallel flag is set if any aggregated
// invocation used the pool.
func (c *Context) Summary() []OpStats {
	stats := c.Stats()
	index := map[string]int{}
	var out []OpStats
	for _, s := range stats {
		i, ok := index[s.Op]
		if !ok {
			index[s.Op] = len(out)
			out = append(out, s)
			continue
		}
		out[i].TuplesIn += s.TuplesIn
		out[i].TuplesOut += s.TuplesOut
		out[i].SatChecks += s.SatChecks
		out[i].PrunedUnsat += s.PrunedUnsat
		out[i].PairsTotal += s.PairsTotal
		out[i].PairsPruned += s.PairsPruned
		out[i].CacheHits += s.CacheHits
		out[i].CacheMisses += s.CacheMisses
		out[i].FMDecisions += s.FMDecisions
		out[i].VectorHits += s.VectorHits
		out[i].VectorFalls += s.VectorFalls
		out[i].FloatRejects += s.FloatRejects
		out[i].EstPairs += s.EstPairs
		if out[i].Strategy != s.Strategy {
			// Same operator ran under different strategies across the
			// aggregated invocations: no single label is truthful.
			out[i].Strategy = "mixed"
		}
		out[i].Wall += s.Wall
		out[i].Parallel = out[i].Parallel || s.Parallel
	}
	return out
}

// FlightRollup converts per-operator records into the flight recorder's
// rollup shape (obs.OpRoll), one entry per operator invocation — plan
// nodes stay separate so the recorder's per-node q-error telemetry sees
// each binary node's est_pairs/act_pairs individually, not a summed
// blur. Pass ctx.Stats() for per-node records or ctx.Summary() for a
// per-operator-name aggregate.
func FlightRollup(ops []OpStats) []obs.OpRoll {
	if len(ops) == 0 {
		return nil
	}
	out := make([]obs.OpRoll, len(ops))
	for i, s := range ops {
		out[i] = obs.OpRoll{
			Op:          s.Op,
			In:          s.TuplesIn,
			Out:         s.TuplesOut,
			Sat:         s.SatChecks,
			Pruned:      s.PrunedUnsat,
			Pairs:       s.PairsTotal,
			PairsPruned: s.PairsPruned,
			CacheHits:   s.CacheHits,
			CacheMisses: s.CacheMisses,
			FM:          s.FMDecisions,
			Strategy:    s.Strategy,
			WallMS:      float64(s.Wall.Microseconds()) / 1000,
		}
		if s.Strategy != "" {
			out[i].EstPairs = s.EstPairs
			out[i].ActPairs = s.PairsTotal - s.PairsPruned
		}
	}
	return out
}

// FormatStats renders operator records as an aligned table (the -stats
// output of cmd/cqacdb and cmd/cdbbench).
func FormatStats(stats []OpStats) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "operator\tin\tout\tpairs\tfiltered\test\tsat-checks\tpruned\tcache-hit\tcache-miss\tfm\tvec\tvec-fb\tfloat-rej\twall\tmode\tstrategy")
	for _, s := range stats {
		mode := "seq"
		if s.Parallel {
			mode = "par"
		}
		strategy := s.Strategy
		if strategy == "" {
			strategy = "-"
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\t%s\n",
			s.Op, s.TuplesIn, s.TuplesOut, s.PairsTotal, s.PairsPruned, s.EstPairs,
			s.SatChecks, s.PrunedUnsat,
			s.CacheHits, s.CacheMisses, s.FMDecisions,
			s.VectorHits, s.VectorFalls, s.FloatRejects,
			s.Wall.Round(time.Microsecond), mode, strategy)
	}
	w.Flush()
	return b.String()
}
