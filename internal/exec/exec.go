// Package exec is the parallel execution layer of CQA/CDB. It sits
// between the algebra (package cqa) and the data model (package relation)
// and turns the embarrassingly parallel inner loops of the CQA operators
// — the per-tuple-pair satisfiability checks that the closure principle
// (paper §2.5) forces on Select, Project, Join, Intersect and Difference —
// into fan-outs over a bounded worker pool.
//
// The design contract is determinism: Map assigns every work item a fixed
// index and merges results in index order, so a parallel operator run is
// byte-identical to the sequential one. Parallelism only changes wall
// time, never output. Below a tunable input-size threshold the pool is
// bypassed entirely and work runs inline on the calling goroutine.
//
// A *Context carries the policy (worker count, sequential threshold) and
// collects per-operator statistics (tuples in/out, satisfiability checks,
// pruned-unsatisfiable count, wall time). The nil *Context is valid
// everywhere and means "sequential, no stats": operators thread a Context
// unconditionally and callers that do not care pass nil.
package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cdb/internal/constraint"
)

// DefaultSeqThreshold is the input size below which Map runs inline on
// the calling goroutine when the Context does not set its own threshold.
// Fanning out a handful of cheap checks costs more in scheduling than it
// saves; the default is sized so that only inputs with real work reach
// the pool.
const DefaultSeqThreshold = 64

// Context carries the parallel execution policy and collects per-operator
// statistics. The zero value and the nil pointer are both valid: a nil
// *Context executes sequentially and records nothing, the zero value
// executes with GOMAXPROCS workers and the default threshold.
//
// A Context may be reused across operators and queries; Stats accumulates
// until Reset. The policy fields must not be mutated while an operator is
// running.
type Context struct {
	// Parallelism is the worker-pool size. Zero or negative means
	// GOMAXPROCS(0). One forces sequential execution.
	Parallelism int

	// SeqThreshold is the input size (work items: tuples for Select /
	// Project / Difference, tuple pairs for Join) below which operators
	// run sequentially. Zero or negative means DefaultSeqThreshold; set
	// it to 1 to parallelise everything.
	SeqThreshold int

	// SatCache, when non-nil, memoizes the satisfiability decisions that
	// operators route through this context (see OpRecorder.Satisfiable and
	// SatFunc), keyed by canonical-form fingerprint. It is safe under the
	// worker pool and may be shared across contexts and queries. Nil means
	// every decision runs the raw Fourier-Motzkin eliminator.
	SatCache *constraint.SatCache

	mu  sync.Mutex
	ops []OpStats
}

// New returns a Context with the given worker-pool size (0 = GOMAXPROCS)
// and the default sequential threshold.
func New(parallelism int) *Context {
	return &Context{Parallelism: parallelism}
}

// Workers returns the effective worker-pool size.
func (c *Context) Workers() int {
	if c == nil || c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

func (c *Context) threshold() int {
	if c == nil || c.SeqThreshold <= 0 {
		return DefaultSeqThreshold
	}
	return c.SeqThreshold
}

// ParallelFor reports whether a fan-out over n work items will use the
// worker pool (rather than run inline).
func (c *Context) ParallelFor(n int) bool {
	return c != nil && c.Workers() > 1 && n >= c.threshold()
}

// Satisfiable decides j through the context's sat-cache when one is
// configured (the second result reports a cache hit); otherwise — including
// on the nil Context — it runs the raw decision procedure. Operator code
// should prefer OpRecorder.Satisfiable, which also records the decision in
// the per-operator statistics.
func (c *Context) Satisfiable(j constraint.Conjunction) (sat, hit bool) {
	if c == nil || c.SatCache == nil {
		return j.IsSatisfiable(), false
	}
	return c.SatCache.Satisfiable(j)
}

// SatFunc returns the context's memoized decision function for threading
// into constraint.*With procedures (SimplifyWith, SubtractAllWith, ...).
// Nil — meaning raw Fourier-Motzkin — on the nil Context or when no
// SatCache is configured.
func (c *Context) SatFunc() constraint.SatFunc {
	if c == nil {
		return nil
	}
	return c.SatCache.Func()
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. When the Context parallelises (see ParallelFor) the calls are
// spread over a bounded worker pool with dynamic work stealing; the
// result slice is still index-stable, so output is identical to the
// sequential path whatever the scheduling.
//
// On error the lowest-index error is returned (matching what a
// sequential left-to-right loop would hit first); in the parallel case
// fn may also have been called for later indices, so fn must be safe to
// call for any index regardless of other indices' failures. fn must not
// mutate shared state without its own synchronisation.
func Map[T any](c *Context, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if !c.ParallelFor(n) {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := c.Workers()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
