// Package exec is the parallel execution layer of CQA/CDB. It sits
// between the algebra (package cqa) and the data model (package relation)
// and turns the embarrassingly parallel inner loops of the CQA operators
// — the per-tuple-pair satisfiability checks that the closure principle
// (paper §2.5) forces on Select, Project, Join, Intersect and Difference —
// into fan-outs over a bounded worker pool.
//
// The design contract is determinism: Map assigns every work item a fixed
// index and merges results in index order, so a parallel operator run is
// byte-identical to the sequential one. Parallelism only changes wall
// time, never output. Below a tunable input-size threshold the pool is
// bypassed entirely and work runs inline on the calling goroutine.
//
// A *Context carries the policy (worker count, sequential threshold) and
// collects per-operator statistics (tuples in/out, satisfiability checks,
// pruned-unsatisfiable count, wall time). The nil *Context is valid
// everywhere and means "sequential, no stats": operators thread a Context
// unconditionally and callers that do not care pass nil.
//
// The context is also where the observability layer (package obs) hooks
// in: an optional Tracer collects a hierarchical span tree (query →
// statement → plan node → operator → fan-out) rendered as an EXPLAIN
// ANALYZE-style plan tree, and an optional Metrics registry aggregates
// per-operator counters and latencies for Prometheus scraping. Both are
// nil by default and cost only pointer tests when off; operator outputs
// are byte-identical with observability on or off.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cdb/internal/constraint"
	"cdb/internal/obs"
)

// DefaultSeqThreshold is the input size below which Map runs inline on
// the calling goroutine when the Context does not set its own threshold.
// Fanning out a handful of cheap checks costs more in scheduling than it
// saves; the default is sized so that only inputs with real work reach
// the pool.
const DefaultSeqThreshold = 64

// DefaultSweepThreshold is the bucket pair count (|bucket1|·|bucket2|)
// below which the binary operators' filter stage enumerates candidates
// with the dense nested loop instead of the sorted interval sweep, when
// the Context does not set its own threshold. Sorting two tiny buckets
// costs more than scanning them — the same crossover reasoning as
// DefaultSeqThreshold.
const DefaultSweepThreshold = 64

// Context carries the parallel execution policy and collects per-operator
// statistics. The zero value and the nil pointer are both valid: a nil
// *Context executes sequentially and records nothing, the zero value
// executes with GOMAXPROCS workers and the default threshold.
//
// A Context may be reused across operators and queries; Stats accumulates
// until Reset. The policy fields must not be mutated while an operator is
// running.
type Context struct {
	// Parallelism is the worker-pool size. Zero or negative means
	// GOMAXPROCS(0). One forces sequential execution.
	Parallelism int

	// SeqThreshold is the input size (work items: tuples for Select /
	// Project / Difference, tuple pairs for Join) below which operators
	// run sequentially. Zero or negative means DefaultSeqThreshold; set
	// it to 1 to parallelise everything.
	SeqThreshold int

	// NoPrune disables the filter-and-refine candidate pruning in the
	// binary CQA operators (join, intersect, difference): envelope
	// rejects, relational-part partitioning and the interval sweep. The
	// zero value — pruning on — is correct for all callers, including the
	// nil Context, because the filter is a pure optimisation: outputs are
	// byte-identical either way. Set it to measure the dense nested loop
	// (cdbbench) or to rule the filter out while debugging.
	NoPrune bool

	// SweepThreshold is the bucket pair count below which the filter
	// stage's candidate enumeration falls back from the interval sweep to
	// the dense loop. Zero or negative means DefaultSweepThreshold.
	SweepThreshold int

	// PlanMode pins the pairing strategy of the binary CQA operators.
	// Empty or PlanAuto — the zero value, correct for every caller —
	// lets the physical planner's cost model choose per operator; the
	// explicit modes (PlanDense, PlanSweep, PlanIndex) force one
	// strategy everywhere, which is how the strategy-equivalence tests
	// and `cdbbench -expt plan` measure each strategy in isolation.
	// Outputs are byte-identical across all modes; only the order of
	// candidate enumeration inside the filter stage differs, and the
	// surviving candidate set is re-sorted to the dense order.
	PlanMode string

	// Ctx, when non-nil, bounds every fan-out run under this context:
	// Map (and through it each CQA operator's per-tuple loop) stops
	// claiming work items once Ctx is done and returns Ctx's error, and
	// the statement loops in the query and calculus front ends check it
	// between statements. This is how a server-side deadline or a client
	// disconnect stops a query mid-batch instead of burning workers to
	// the end of the pair space. Nil — including on the nil Context —
	// means never cancelled. Like the other policy fields it must not be
	// replaced while an operator is running; the server serialises
	// queries per session, which makes the per-request swap safe.
	Ctx context.Context

	// SatCache, when non-nil, memoizes the satisfiability decisions that
	// operators route through this context (see OpRecorder.Satisfiable and
	// SatFunc), keyed by canonical-form fingerprint. It is safe under the
	// worker pool and may be shared across contexts and queries. Nil means
	// every decision runs the raw Fourier-Motzkin eliminator.
	SatCache *constraint.SatCache

	// Tracer, when non-nil, receives a hierarchical span for every plan
	// node, operator invocation and pool fan-out executed under this
	// context (see BeginSpan and OpRecorder). Nil disables tracing.
	Tracer *obs.Tracer

	// Metrics, when non-nil, aggregates per-operator counters (tuples,
	// sat checks, pruned, cache hits/misses) and operator latencies into
	// the registry, labelled by operator name. Set it directly or via
	// InstallMetrics. Nil disables metric emission.
	Metrics *obs.Registry

	mu    sync.Mutex
	ops   []OpStats
	spans []*obs.Span // active span stack (plan-tree level; LIFO)
}

// New returns a Context with the given worker-pool size (0 = GOMAXPROCS)
// and the default sequential threshold.
func New(parallelism int) *Context {
	return &Context{Parallelism: parallelism}
}

// Workers returns the effective worker-pool size.
func (c *Context) Workers() int {
	if c == nil || c.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallelism
}

func (c *Context) threshold() int {
	if c == nil || c.SeqThreshold <= 0 {
		return DefaultSeqThreshold
	}
	return c.SeqThreshold
}

// ParallelFor reports whether a fan-out over n work items will use the
// worker pool (rather than run inline).
func (c *Context) ParallelFor(n int) bool {
	return c != nil && c.Workers() > 1 && n >= c.threshold()
}

// PruneEnabled reports whether the binary operators should run their
// filter stage. True on the nil Context: pruning never changes output,
// so it needs no opt-in.
func (c *Context) PruneEnabled() bool { return c == nil || !c.NoPrune }

// SweepSize returns the effective sweep crossover threshold.
func (c *Context) SweepSize() int {
	if c == nil || c.SweepThreshold <= 0 {
		return DefaultSweepThreshold
	}
	return c.SweepThreshold
}

// Pairing strategies for the binary CQA operators' filter stage. These
// are the values of Context.PlanMode (where PlanAuto means "cost model
// decides") and of the per-operator Strategy stats column / strategy=
// EXPLAIN label (where the auto decision has been resolved to one of the
// concrete strategies). PlanVector is the vector fast path: candidate
// enumeration is unchanged, but the refine stage decides satisfiability
// by exact polygon clipping (internal/vector) on the eligible pairs
// instead of Fourier–Motzkin, falling back per pair otherwise.
const (
	PlanAuto   = "auto"
	PlanDense  = "dense"
	PlanSweep  = "sweep"
	PlanIndex  = "index"
	PlanVector = "vector"
)

// Plan returns the effective planning mode: PlanAuto on the nil Context
// or when PlanMode is unset.
func (c *Context) Plan() string {
	if c == nil || c.PlanMode == "" {
		return PlanAuto
	}
	return c.PlanMode
}

// ValidPlanMode reports whether s names a planning mode ("" counts: it
// is the zero-value spelling of auto). The CLIs and the server validate
// the -plan knob with this before it reaches a Context.
func ValidPlanMode(s string) bool {
	switch s {
	case "", PlanAuto, PlanDense, PlanSweep, PlanIndex, PlanVector:
		return true
	}
	return false
}

// Err reports why the context's Ctx was cancelled: nil while it is live
// (or when no Ctx is set), context.Canceled / context.DeadlineExceeded
// after. Operators and statement loops call it at their checkpoints; the
// nil Context is never cancelled.
func (c *Context) Err() error {
	if c == nil || c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Satisfiable decides j through the context's sat-cache when one is
// configured (the second result reports a cache hit); otherwise — including
// on the nil Context — it runs the raw decision procedure. Operator code
// should prefer OpRecorder.Satisfiable, which also records the decision in
// the per-operator statistics.
func (c *Context) Satisfiable(j constraint.Conjunction) (sat, hit bool) {
	if c == nil || c.SatCache == nil {
		return j.IsSatisfiable(), false
	}
	return c.SatCache.Satisfiable(j)
}

// SatFunc returns the context's memoized decision function for threading
// into constraint.*With procedures (SimplifyWith, SubtractAllWith, ...).
// Nil — meaning raw Fourier-Motzkin — on the nil Context or when no
// SatCache is configured.
func (c *Context) SatFunc() constraint.SatFunc {
	if c == nil {
		return nil
	}
	return c.SatCache.Func()
}

// Map runs fn(i) for every i in [0, n) and returns the results in index
// order. When the Context parallelises (see ParallelFor) the calls are
// spread over a bounded worker pool with dynamic index claiming from a
// shared atomic counter (each worker repeatedly claims the next unrun
// index; there are no per-worker queues and no stealing between them);
// the result slice is still index-stable, so output is identical to the
// sequential path whatever the scheduling.
//
// On error the lowest-index error is returned (matching what a
// sequential left-to-right loop would hit first). An error also cancels
// the fan-out: workers observe a shared flag and stop claiming new
// indices, so later indices short-circuit. Because indices are claimed
// contiguously from zero, every index below an executed failing index
// has itself been executed, which is what keeps the lowest-index-error
// contract exact under cancellation. fn may still have been called for
// some later indices (those claimed before the flag was set), so fn
// must be safe to call for any index regardless of other indices'
// failures. fn must not mutate shared state without its own
// synchronisation.
//
// When the context carries a Ctx and it is cancelled mid-batch, workers
// stop claiming new indices the same way and Map returns the context's
// error (fn errors from already-claimed indices still win, preserving
// the lowest-index contract for work that actually ran). Indices that
// were never claimed are simply not executed; a worker already inside
// fn finishes that call — cancellation is a claim-time checkpoint, not
// preemption — so fn should itself watch Ctx if a single item can block
// for long.
//
// When the context traces (an operator span is open), the parallel path
// opens a "fanout" child span recording the pool's shape and health:
// items, workers, summed queue wait (delay between the fan-out start
// and each worker's first claim) and per-worker busy time (summed and
// maximum), which is how pool starvation and skew show up in EXPLAIN.
func Map[T any](c *Context, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if !c.ParallelFor(n) {
		out := make([]T, n)
		for i := 0; i < n; i++ {
			if err := c.Err(); err != nil {
				return nil, err
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := c.Workers()
	if workers > n {
		workers = n
	}
	fanout := c.currentSpan().StartChild("fanout", "")
	traced := fanout != nil
	var start time.Time
	var queueNS, busyNS, maxBusyNS atomic.Int64
	if traced {
		start = time.Now()
	}
	var done <-chan struct{}
	if c != nil && c.Ctx != nil {
		done = c.Ctx.Done()
	}
	var stop atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var busy time.Duration
			if traced {
				queueNS.Add(time.Since(start).Nanoseconds())
				defer func() {
					busyNS.Add(busy.Nanoseconds())
					maxOf(&maxBusyNS, busy.Nanoseconds())
				}()
			}
			for {
				if stop.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						stop.Store(true)
						return
					default:
					}
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var t0 time.Time
				if traced {
					t0 = time.Now()
				}
				out[i], errs[i] = fn(i)
				if traced {
					busy += time.Since(t0)
				}
				if errs[i] != nil {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if traced {
		fanout.Set("items", int64(n))
		fanout.Set("workers", int64(workers))
		fanout.Set("queue_ns", queueNS.Load())
		fanout.Set("busy_ns", busyNS.Load())
		fanout.Set("maxbusy_ns", maxBusyNS.Load())
		fanout.End()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// maxOf raises *m to v if v is larger (racing raises settle to the max).
func maxOf(m *atomic.Int64, v int64) {
	for {
		old := m.Load()
		if v <= old || m.CompareAndSwap(old, v) {
			return
		}
	}
}

// --- tracing ---

// Tracing reports whether the context carries a tracer.
func (c *Context) Tracing() bool { return c != nil && c.Tracer != nil }

// BeginSpan opens a span under the context's current span (or as a new
// root) and makes it current. Callers must close it with EndSpan in
// LIFO order — the plan-tree evaluation that opens these spans is
// single-goroutine, which is what makes a plain stack sound; only the
// counters inside a span are touched by pool workers. Nil-safe: without
// a tracer it returns nil and EndSpan(nil) is a no-op.
func (c *Context) BeginSpan(name, detail string) *obs.Span {
	if !c.Tracing() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var sp *obs.Span
	if len(c.spans) > 0 {
		sp = c.spans[len(c.spans)-1].StartChild(name, detail)
	} else {
		sp = c.Tracer.StartSpan(name, detail)
	}
	c.spans = append(c.spans, sp)
	return sp
}

// EndSpan closes sp and pops it (and anything left above it) off the
// context's span stack.
func (c *Context) EndSpan(sp *obs.Span) {
	if sp == nil || c == nil {
		return
	}
	c.mu.Lock()
	for i := len(c.spans) - 1; i >= 0; i-- {
		if c.spans[i] == sp {
			c.spans = c.spans[:i]
			break
		}
	}
	c.mu.Unlock()
	sp.End()
}

// currentSpan returns the innermost open span (nil when not tracing).
func (c *Context) currentSpan() *obs.Span {
	if !c.Tracing() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) == 0 {
		return nil
	}
	return c.spans[len(c.spans)-1]
}

// InstallMetrics wires the context's observable state into reg: the
// per-operator counter and latency families (emitted by OpRecorder.Done
// from then on), the process-wide raw Fourier-Motzkin decision counter,
// and — when the context has a SatCache — the cache's counters. Call it
// once after the context is fully configured.
func (c *Context) InstallMetrics(reg *obs.Registry) {
	if c == nil || reg == nil {
		return
	}
	c.Metrics = reg
	reg.NewCounterFunc("cdb_fm_decisions_total",
		"Raw Fourier-Motzkin satisfiability decisions (process-wide).",
		constraint.DecisionCount)
	c.SatCache.RegisterMetrics(reg)
}
