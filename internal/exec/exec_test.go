package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapSequentialOrder(t *testing.T) {
	out, err := Map(nil, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapParallelOrderAndCoverage(t *testing.T) {
	c := &Context{Parallelism: 8, SeqThreshold: 1}
	const n = 1000
	var calls atomic.Int64
	out, err := Map(c, n, func(i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("fn called %d times, want %d", calls.Load(), n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d: result order not index-stable", i, v)
		}
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(New(4), 0, func(i int) (int, error) { return 0, errors.New("must not be called") })
	if err != nil || out != nil {
		t.Fatalf("Map over 0 items: got %v, %v", out, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, par := range []int{1, 4} {
		c := &Context{Parallelism: par, SeqThreshold: 1}
		_, err := Map(c, 100, func(i int) (int, error) {
			if i == 17 || i == 90 {
				return 0, fmt.Errorf("boom at %d", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "boom at 17" {
			t.Fatalf("par=%d: got err %v, want lowest-index error (boom at 17)", par, err)
		}
	}
}

func TestParallelForThreshold(t *testing.T) {
	c := &Context{Parallelism: 4, SeqThreshold: 50}
	if c.ParallelFor(49) {
		t.Fatal("49 items below threshold 50 must run sequentially")
	}
	if !c.ParallelFor(50) {
		t.Fatal("50 items at threshold 50 must parallelise")
	}
	seq := &Context{Parallelism: 1, SeqThreshold: 1}
	if seq.ParallelFor(1 << 20) {
		t.Fatal("parallelism 1 must never use the pool")
	}
	var nilCtx *Context
	if nilCtx.ParallelFor(1 << 20) {
		t.Fatal("nil context must be sequential")
	}
	def := &Context{Parallelism: 4}
	if def.ParallelFor(DefaultSeqThreshold - 1) {
		t.Fatal("default threshold not applied")
	}
}

func TestWorkersDefaults(t *testing.T) {
	var nilCtx *Context
	if got := nilCtx.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("nil context workers = %d, want GOMAXPROCS", got)
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("parallelism 0 workers = %d, want GOMAXPROCS", got)
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("workers = %d, want 3", got)
	}
}

func TestStatsRecording(t *testing.T) {
	c := New(2)
	rec := c.StartOp("join", 120)
	rec.SatCheck(true)
	rec.SatCheck(false)
	rec.SatCheck(true)
	rec.AddOut(2)
	rec.Done(true)

	rec2 := c.StartOp("select", 10)
	rec2.SatCheck(false)
	rec2.Done(false)

	stats := c.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d records, want 2", len(stats))
	}
	j := stats[0]
	if j.Op != "join" || j.TuplesIn != 120 || j.TuplesOut != 2 ||
		j.SatChecks != 3 || j.PrunedUnsat != 1 || !j.Parallel {
		t.Fatalf("join record wrong: %+v", j)
	}
	if j.Wall < 0 {
		t.Fatalf("negative wall time: %v", j.Wall)
	}
	c.Reset()
	if len(c.Stats()) != 0 {
		t.Fatal("Reset did not clear records")
	}
}

func TestStatsConcurrentCounters(t *testing.T) {
	c := New(8)
	c.SeqThreshold = 1
	rec := c.StartOp("join", 0)
	const n = 2000
	_, err := Map(c, n, func(i int) (struct{}, error) {
		rec.SatCheck(i%3 == 0)
		rec.AddOut(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rec.Done(true)
	s := c.Stats()[0]
	if s.SatChecks != n || s.TuplesOut != n {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Context
	rec := c.StartOp("join", 5) // nil recorder
	rec.SatCheck(true)
	rec.AddOut(1)
	rec.Done(false)
	if c.Stats() != nil {
		t.Fatal("nil context must have no stats")
	}
	c.Reset() // must not panic
}

func TestSummaryAggregates(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		rec := c.StartOp("select", 10)
		rec.AddOut(4)
		rec.SatCheck(true)
		rec.Done(i == 1)
	}
	rec := c.StartOp("join", 7)
	rec.Done(false)
	sum := c.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d summary rows, want 2", len(sum))
	}
	if sum[0].Op != "select" || sum[0].TuplesIn != 30 || sum[0].TuplesOut != 12 ||
		sum[0].SatChecks != 3 || !sum[0].Parallel {
		t.Fatalf("select summary wrong: %+v", sum[0])
	}
	if sum[1].Op != "join" || sum[1].TuplesIn != 7 || sum[1].Parallel {
		t.Fatalf("join summary wrong: %+v", sum[1])
	}
}

func TestFormatStats(t *testing.T) {
	out := FormatStats([]OpStats{
		{Op: "join", TuplesIn: 10, TuplesOut: 3, SatChecks: 25, PrunedUnsat: 22,
			Wall: 1500 * time.Microsecond, Parallel: true},
	})
	for _, want := range []string{"operator", "join", "25", "par"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatStats output missing %q:\n%s", want, out)
		}
	}
}

// TestMapContextCancelParallel is the blocked-worker regression test for
// the Ctx checkpoint: one worker is stuck inside fn while the caller's
// deadline fires. The other worker must stop claiming indices (instead
// of burning through the rest of the batch), and Map must surface the
// context's error once the stuck call returns.
func TestMapContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &Context{Parallelism: 2, SeqThreshold: 1, Ctx: ctx}
	const n = 1000
	release := make(chan struct{})
	blocked := make(chan struct{})
	var calls atomic.Int64
	type result struct {
		out []int
		err error
	}
	done := make(chan result, 1)
	go func() {
		out, err := Map(c, n, func(i int) (int, error) {
			calls.Add(1)
			if i == 0 {
				close(blocked) // signal: worker 0 is now stuck mid-item
				<-release
				return i, nil
			}
			// Every other item parks until cancellation so the test is
			// deterministic: no worker can race through the batch before
			// the deadline fires.
			<-ctx.Done()
			return i, nil
		})
		done <- result{out, err}
	}()
	<-blocked
	cancel()
	// The free worker observes Ctx at its next claim and stops; Map still
	// waits for the stuck call (cancellation is not preemption).
	select {
	case <-done:
		t.Fatal("Map returned while a worker was still blocked in fn")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	res := <-done
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", res.err)
	}
	if res.out != nil {
		t.Fatalf("cancelled Map returned a result slice")
	}
	if got := calls.Load(); got >= n {
		t.Fatalf("cancellation did not stop the batch: %d of %d items ran", got, n)
	}
}

// TestMapContextCancelInline covers the sequential path: the inline loop
// checks Ctx between items, so a mid-batch cancellation stops a
// below-threshold fan-out too.
func TestMapContextCancelInline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &Context{Parallelism: 1, Ctx: ctx}
	var calls int
	_, err := Map(c, 100, func(i int) (int, error) {
		calls++
		if i == 3 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Map error = %v, want context.Canceled", err)
	}
	if calls != 4 {
		t.Fatalf("inline Map ran %d items after cancel at item 3, want 4", calls)
	}
}

// TestMapContextFnErrorWins: an fn error from an index that actually ran
// takes precedence over the concurrent cancellation, preserving the
// lowest-index-error contract for executed work.
func TestMapContextFnErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	c := &Context{Parallelism: 2, SeqThreshold: 1, Ctx: ctx}
	_, err := Map(c, 8, func(i int) (int, error) {
		if i == 0 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Map error = %v, want fn error to win over cancellation", err)
	}
}

func TestContextErrNilSafety(t *testing.T) {
	var c *Context
	if err := c.Err(); err != nil {
		t.Fatalf("nil Context Err = %v", err)
	}
	if err := (&Context{}).Err(); err != nil {
		t.Fatalf("Ctx-less Context Err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := (&Context{Ctx: ctx}).Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Context Err = %v, want context.Canceled", err)
	}
}
