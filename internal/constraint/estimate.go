package constraint

import (
	"sort"

	"cdb/internal/rational"
)

// This file is the constraint-level half of the cost-based planner: exact
// interval-overlap counting over envelope intervals. The physical planner
// (package cqa) asks, per shared attribute, "how many tuple pairs could
// survive the envelope filter?" — and because the answer is computed from
// the same memoized Envelope intervals the filter itself uses, with the
// same exact open-endpoint semantics, the count is a true upper bound on
// the surviving candidates: every pair the filter keeps intersects on
// every shared attribute, hence is counted here. That is the invariant
// the planner's est_pairs ≥ act_pairs property rests on.
//
// The count is exact (not a histogram approximation) and still cheap: a
// pair (x, y) of non-empty intervals fails to intersect iff x ends
// strictly before y starts or vice versa, and the two separation
// conditions are mutually exclusive, so
//
//	overlaps = |A|·|B| − before(A, B) − before(B, A)
//
// where before(A, B) counts pairs with x.Upper open-aware-strictly below
// y.Lower. Each before() term sorts one side's endpoints once and binary-
// searches per interval on the other side: O((n+m)·log(n+m)) rational
// comparisons, versus O(n·m) for the filter it predicts.

// endpointKey is a totally ordered encoding of an interval endpoint under
// the exact open-endpoint semantics of Interval.Intersects: an open upper
// bound at a behaves as a−ε, an open lower bound at a as a+ε, so that
// "upper separates from lower" is exactly key(upper) < key(lower).
type endpointKey struct {
	val rational.Rat
	eps int // -1 open upper, 0 closed, +1 open lower
}

func (k endpointKey) less(o endpointKey) bool {
	if c := k.val.Cmp(o.val); c != 0 {
		return c < 0
	}
	return k.eps < o.eps
}

// attrIntervals extracts the non-empty intervals for variable v from each
// envelope, dropping empty ones: an empty envelope interval means that
// side's conjunction is unsatisfiable on its own, and Envelope.Disjoint
// rejects every pair involving it, so it cannot contribute candidates.
func attrIntervals(envs []Envelope, v string) []Interval {
	ivs := make([]Interval, 0, len(envs))
	for _, e := range envs {
		iv, ok := e.Interval(v)
		if !ok {
			ivs = append(ivs, Interval{}) // unbounded both ways
			continue
		}
		if iv.IsEmpty() {
			continue
		}
		ivs = append(ivs, iv)
	}
	return ivs
}

// beforeCount counts pairs (x ∈ xs, y ∈ ys) where x's upper endpoint lies
// open-aware-strictly below y's lower endpoint — i.e. the pair separates
// with x entirely to the left. Intervals without the relevant bound can
// never separate on this side and drop out of the count.
func beforeCount(xs, ys []Interval) int64 {
	keys := make([]endpointKey, 0, len(ys))
	for _, y := range ys {
		if !y.HasLower {
			continue
		}
		eps := 0
		if y.LowerOpen {
			eps = 1
		}
		keys = append(keys, endpointKey{val: y.Lower, eps: eps})
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	var n int64
	for _, x := range xs {
		if !x.HasUpper {
			continue
		}
		eps := 0
		if x.UpperOpen {
			eps = -1
		}
		k := endpointKey{val: x.Upper, eps: eps}
		// Count keys strictly greater than k: x separates from those ys.
		idx := sort.Search(len(keys), func(i int) bool { return k.less(keys[i]) })
		n += int64(len(keys) - idx)
	}
	return n
}

// AttrOverlapCount returns the exact number of pairs (i, j) whose
// envelope intervals for variable v intersect (Interval.Intersects
// semantics; envelopes without a bound for v intersect everything
// non-empty, envelopes with an empty interval for v intersect nothing).
// Because Envelope.Disjoint rejects exactly the pairs some shared
// variable separates, this is an upper bound on the pairs surviving the
// envelope filter over any variable set containing v.
func AttrOverlapCount(a, b []Envelope, v string) int64 {
	xs, ys := attrIntervals(a, v), attrIntervals(b, v)
	total := int64(len(xs)) * int64(len(ys))
	if total == 0 {
		return 0
	}
	return total - beforeCount(xs, ys) - beforeCount(ys, xs)
}

// CountIntersecting returns how many envelopes have a v-interval
// intersecting iv — the selectivity numerator for a single-variable atom
// bounding v to iv. Envelopes without a bound for v always count.
func CountIntersecting(envs []Envelope, v string, iv Interval) int64 {
	if iv.IsEmpty() {
		return 0
	}
	var n int64
	for _, e := range envs {
		ei, ok := e.Interval(v)
		if !ok || ei.Intersects(iv) {
			n++
		}
	}
	return n
}

// AtomInterval interprets a single constraint as a one-variable bound:
// for a·v + k OP 0 it returns v and the interval of values of v the atom
// admits. ok is false for constant or multi-variable atoms, which bound
// no single variable. This is the per-atom selectivity hook the logical
// optimizer uses to order select conditions cheapest-reject-first.
func AtomInterval(c Constraint) (string, Interval, bool) {
	ts := c.Expr.Terms()
	if len(ts) != 1 {
		return "", Interval{}, false
	}
	a, v := ts[0].Coef, ts[0].Var
	bound := c.Expr.ConstTerm().Div(a).Neg() // a*v + k OP 0  =>  v OP' -k/a
	var iv Interval
	switch {
	case c.Op == Eq:
		tightenLower(&iv, bound, false)
		tightenUpper(&iv, bound, false)
	case a.Sign() > 0: // v <= bound (open if Lt)
		tightenUpper(&iv, bound, c.Op == Lt)
	default: // v >= bound
		tightenLower(&iv, bound, c.Op == Lt)
	}
	return v, iv, true
}
