package constraint

import "sync"

// This file implements the axis-aligned envelope of a conjunction — the
// cheap bounding box behind the filter stage of the binary CQA operators'
// filter-and-refine split (package cqa). The expensive refine step
// (Merge+Canon plus a Fourier-Motzkin satisfiability decision per tuple
// pair) is exactly the quantifier-elimination cost the CDB literature
// identifies as the evaluation bottleneck; the envelope lets the pairing
// layer reject most non-interacting pairs in O(shared variables) rational
// comparisons without ever running the eliminator.
//
// The envelope is conservative by construction: it is derived only from
// the single-variable atoms (a·v + k OP 0 bounds v at -k/a), and a
// variable touched only by multi-variable atoms stays unbounded, i.e.
// (-∞, +∞). Therefore the exact solution-set projection onto any variable
// (VarBounds, a full Fourier-Motzkin projection) is always contained in
// the envelope's interval — the soundness property the filter relies on:
// envelope-disjoint on a shared variable implies the merged conjunction
// is unsatisfiable, so the refine step would have rejected the pair too.
// ExactEnvelope is the tightened (and much more expensive) counterpart
// for callers that want VarBounds precision.

// Envelope is the axis-aligned bounding box of a conjunction: at most one
// rational interval per variable. Variables without an entry are
// unbounded in both directions. The zero Envelope bounds nothing.
type Envelope struct {
	ivs map[string]Interval
}

// Interval returns the envelope's interval for variable v. ok is false
// when the envelope carries no bound for v (unbounded both ways).
func (e Envelope) Interval(v string) (Interval, bool) {
	iv, ok := e.ivs[v]
	return iv, ok
}

// Disjoint reports whether e and o provably cannot overlap on any of the
// given variables: some listed variable has separated intervals, or an
// empty interval on either side (an empty interval means that side's
// conjunction is unsatisfiable on its own). Disjoint envelopes imply the
// merged conjunction is unsatisfiable, so a filter stage may reject the
// pair without a satisfiability decision. Not-disjoint proves nothing —
// the refine step still decides exactly.
func (e Envelope) Disjoint(o Envelope, vars []string) bool {
	for _, v := range vars {
		iv1, ok1 := e.ivs[v]
		iv2, ok2 := o.ivs[v]
		if (ok1 && iv1.IsEmpty()) || (ok2 && iv2.IsEmpty()) {
			return true
		}
		if ok1 && ok2 && !iv1.Intersects(iv2) {
			return true
		}
	}
	return false
}

// envBox memoizes a conjunction's envelope next to the fingerprint.
// Canon attaches one shared box to the canonical value it returns, so
// every copy of that conjunction (tuples share constraint parts freely)
// computes the envelope at most once, on first use.
type envBox struct {
	once sync.Once
	env  Envelope
}

// Envelope returns the conjunction's axis-aligned envelope, derived from
// its single-variable atoms (see the file comment for the soundness
// contract). On a canonical conjunction the result is memoized alongside
// the fingerprint: computed on first use, shared by all copies. Non-
// canonical conjunctions compute it afresh on every call — the operators
// only ever ask on canonical forms.
func (j Conjunction) Envelope() Envelope {
	if j.env == nil {
		return envelopeOf(j.cs)
	}
	j.env.once.Do(func() { j.env.env = envelopeOf(j.cs) })
	return j.env.env
}

// envelopeOf derives the envelope from the single-variable atoms of cs.
// Multi-variable and constant atoms contribute nothing (conservative).
func envelopeOf(cs []Constraint) Envelope {
	var ivs map[string]Interval
	for _, c := range cs {
		ts := c.Expr.Terms()
		if len(ts) != 1 {
			continue
		}
		a, v := ts[0].Coef, ts[0].Var
		bound := c.Expr.ConstTerm().Div(a).Neg() // a*v + k OP 0  =>  v OP' -k/a
		if ivs == nil {
			ivs = map[string]Interval{}
		}
		iv := ivs[v]
		switch {
		case c.Op == Eq:
			tightenLower(&iv, bound, false)
			tightenUpper(&iv, bound, false)
		case a.Sign() > 0: // v <= bound (open if Lt)
			tightenUpper(&iv, bound, c.Op == Lt)
		default: // v >= bound
			tightenLower(&iv, bound, c.Op == Lt)
		}
		ivs[v] = iv
	}
	return Envelope{ivs: ivs}
}

// ExactEnvelope computes the exact per-variable bounds of j — one full
// Fourier-Motzkin projection (VarBounds) per variable, so it costs what
// the filter stage exists to avoid. ok is false when j is unsatisfiable.
// It exists for the soundness property tests (every Envelope interval
// must contain the ExactEnvelope interval) and for planners that want a
// tightened envelope for long-lived relations.
func (j Conjunction) ExactEnvelope() (Envelope, bool) {
	ivs := map[string]Interval{}
	for _, v := range j.Vars() {
		iv, ok := j.VarBounds(v)
		if !ok {
			return Envelope{}, false
		}
		ivs[v] = iv
	}
	return Envelope{ivs: ivs}, true
}
