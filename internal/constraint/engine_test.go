package constraint

import (
	"math/rand"
	"sync"
	"testing"

	"cdb/internal/rational"
)

// TestSatCacheAgreesWithRawDecisions checks the only property that matters:
// the memoized answer is always the raw Fourier-Motzkin answer, queried in
// any order, hot or cold.
func TestSatCacheAgreesWithRawDecisions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cache := NewSatCache(0)
	var conjs []Conjunction
	for i := 0; i < 100; i++ {
		conjs = append(conjs, randConj(rng))
	}
	for round := 0; round < 3; round++ {
		for i, j := range conjs {
			got, _ := cache.Satisfiable(j)
			if want := j.IsSatisfiable(); got != want {
				t.Fatalf("round %d case %d: cache says %v, raw says %v: %s", round, i, got, want, j)
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Error("three rounds over the same questions produced no hits")
	}
	if st.Hits+st.Misses != int64(3*len(conjs)) {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 3*len(conjs))
	}
}

// TestSatCacheHitsOnEquivalentForms checks that memoization happens at the
// canonical-form level: rescaled and reordered variants of the same
// conjunction share one entry.
func TestSatCacheHitsOnEquivalentForms(t *testing.T) {
	cache := NewSatCache(64)
	x, y := Var("x"), Var("y")
	a := And(
		Constraint{Expr: x.Add(y).Sub(ConstInt(2)), Op: Le},
		Constraint{Expr: x.Neg(), Op: Le},
	)
	b := And( // same atoms, reordered and rescaled
		Constraint{Expr: x.Neg().Scale(rational.FromInt(2)), Op: Le},
		Constraint{Expr: x.Add(y).Sub(ConstInt(2)).Scale(rational.FromInt(3)), Op: Le},
	)
	if _, hit := cache.Satisfiable(a); hit {
		t.Fatal("first lookup hit")
	}
	if _, hit := cache.Satisfiable(b); !hit {
		t.Fatal("equivalent canonical form missed the cache")
	}
	if st := cache.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestSatCacheEviction checks the LRU bound: a capacity-16 cache (one entry
// per shard) holds at most 16 entries and reports evictions.
func TestSatCacheEviction(t *testing.T) {
	cache := NewSatCache(16)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		cache.Satisfiable(randConj(rng))
	}
	st := cache.Stats()
	if st.Entries > 16 {
		t.Errorf("entries = %d, want <= 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("200 distinct questions through 16 entries produced no evictions")
	}
}

// TestSatCacheConcurrent hammers one cache from many goroutines (run under
// -race by scripts/check.sh) and re-verifies every answer against the raw
// decision procedure.
func TestSatCacheConcurrent(t *testing.T) {
	cache := NewSatCache(128)
	seed := rand.New(rand.NewSource(9))
	var conjs []Conjunction
	var want []bool
	for i := 0; i < 60; i++ {
		j := randConj(seed)
		conjs = append(conjs, j)
		want = append(want, j.IsSatisfiable())
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 500; i++ {
				k := rng.Intn(len(conjs))
				if got, _ := cache.Satisfiable(conjs[k]); got != want[k] {
					select {
					case errs <- conjs[k].String():
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if s, bad := <-errs; bad {
		t.Fatalf("concurrent cache answer diverged from raw decision on %s", s)
	}
}

// TestSatFuncThreading checks the *With plumbing end to end: a counting
// SatFunc must see every decision that Simplify and SubtractAll make, and
// the results must match the nil (raw) path exactly.
func TestSatFuncThreading(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cache := NewSatCache(0)
	calls := 0
	counting := func(j Conjunction) bool {
		calls++
		sat, _ := cache.Satisfiable(j)
		return sat
	}
	for i := 0; i < 40; i++ {
		j, k := randConj(rng), randConj(rng)
		plain := SubtractAll(j, []Conjunction{k})
		cached := SubtractAllWith(j, []Conjunction{k}, counting)
		if len(plain) != len(cached) {
			t.Fatalf("case %d: SubtractAllWith disagrees: %d vs %d disjuncts", i, len(plain), len(cached))
		}
		for d := range plain {
			if !plain[d].Equivalent(cached[d]) {
				t.Fatalf("case %d disjunct %d: %s vs %s", i, d, plain[d], cached[d])
			}
		}
		if !j.Simplify().Equivalent(j.SimplifyWith(counting)) {
			t.Fatalf("case %d: SimplifyWith disagrees", i)
		}
	}
	if calls == 0 {
		t.Fatal("SatFunc was never consulted")
	}
}
