package constraint

import (
	"sort"

	"cdb/internal/rational"
)

// This file implements an exact rational simplex optimiser over the closure
// of a conjunction of linear constraints (strict inequalities are relaxed to
// their closures: sup/inf are still exact, attainment may be open).
//
// It serves three roles:
//   - computing extrema of linear objectives (bounding boxes for the R*-tree
//     index layer, §5 of the paper; vertex extraction for the vector
//     representation, §6);
//   - an independent feasibility decision cross-checking Fourier-Motzkin in
//     the test suite;
//   - the optimisation substrate for the whole-feature spatial operators.
//
// The implementation is the standard two-phase primal simplex on a dense
// rational dictionary with Bland's anti-cycling rule. Free variables are
// handled by the x = x⁺ - x⁻ split.

// SimplexStatus is the outcome of an optimisation.
type SimplexStatus int

const (
	// Optimal: a finite optimum was found.
	Optimal SimplexStatus = iota
	// Unbounded: the objective is unbounded over the feasible region.
	Unbounded
	// Infeasible: the (closed relaxation of the) system has no solution.
	Infeasible
)

func (s SimplexStatus) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	default:
		return "infeasible"
	}
}

// SimplexResult carries the outcome of Maximize/Minimize.
type SimplexResult struct {
	Status SimplexStatus
	// Value is the optimum (valid when Status == Optimal).
	Value rational.Rat
	// Point is an optimal assignment of the original variables
	// (valid when Status == Optimal).
	Point map[string]rational.Rat
}

// Maximize maximises obj over the closure of j.
func Maximize(j Conjunction, obj Expr) SimplexResult {
	return optimize(j, obj, true)
}

// Minimize minimises obj over the closure of j.
func Minimize(j Conjunction, obj Expr) SimplexResult {
	r := optimize(j, obj.Neg(), true)
	if r.Status == Optimal {
		r.Value = r.Value.Neg()
	}
	return r
}

func optimize(j Conjunction, obj Expr, _ bool) SimplexResult {
	// Collect variables from both the system and the objective.
	varSet := map[string]bool{}
	for _, v := range j.Vars() {
		varSet[v] = true
	}
	for _, v := range obj.Vars() {
		varSet[v] = true
	}
	vars := make([]string, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Strings(vars)

	// Split each free variable v into vPlus - vMinus (both >= 0).
	// Column layout: 2*len(vars) structural columns.
	n := 2 * len(vars)
	col := func(v string, plus bool) int {
		i := sort.SearchStrings(vars, v)
		if plus {
			return 2 * i
		}
		return 2*i + 1
	}

	// Rows: one per inequality; equalities become two inequalities.
	// Each row: sum a_j x_j <= b.
	type row struct {
		a []rational.Rat
		b rational.Rat
	}
	var rows []row
	addRow := func(e Expr) {
		// e <= 0  ->  sum coef*var <= -const
		r := row{a: make([]rational.Rat, n), b: e.ConstTerm().Neg()}
		for _, t := range e.Terms() {
			r.a[col(t.Var, true)] = r.a[col(t.Var, true)].Add(t.Coef)
			r.a[col(t.Var, false)] = r.a[col(t.Var, false)].Sub(t.Coef)
		}
		rows = append(rows, r)
	}
	for _, c := range j.Constraints() {
		switch c.Op {
		case Eq:
			addRow(c.Expr)
			addRow(c.Expr.Neg())
		default: // Le, Lt (closure)
			addRow(c.Expr)
		}
	}
	m := len(rows)

	// Objective coefficients over structural columns.
	cobj := make([]rational.Rat, n)
	for _, t := range obj.Terms() {
		cobj[col(t.Var, true)] = cobj[col(t.Var, true)].Add(t.Coef)
		cobj[col(t.Var, false)] = cobj[col(t.Var, false)].Sub(t.Coef)
	}

	// Dictionary representation (Chvátal): basic variables expressed in
	// terms of nonbasic ones. Variable ids: 0..n-1 structural,
	// n..n+m-1 slacks, n+m is the phase-1 artificial x0.
	// dict[i] = constant + sum over nonbasic of coef * x_nb.
	total := n + m + 1
	x0 := n + m

	nonbasic := make([]int, 0, n+1)
	for jx := 0; jx < n; jx++ {
		nonbasic = append(nonbasic, jx)
	}
	basic := make([]int, m)
	// dictRows[i][k]: coefficient of nonbasic[k] in the expression of
	// basic[i]; dictB[i]: constant.
	dictB := make([]rational.Rat, m)
	dictRows := make([][]rational.Rat, m)
	for i := 0; i < m; i++ {
		basic[i] = n + i
		dictB[i] = rows[i].b
		dictRows[i] = make([]rational.Rat, len(nonbasic))
		for k, jx := range nonbasic {
			dictRows[i][k] = rows[i].a[jx].Neg()
		}
	}

	// objRow: objective expressed over nonbasic variables.
	objConst := rational.Zero
	objRow := make([]rational.Rat, len(nonbasic))
	setObj := func(c []rational.Rat, cx0 rational.Rat) {
		objConst = rational.Zero
		for k := range objRow {
			objRow[k] = rational.Zero
		}
		for k, jx := range nonbasic {
			switch {
			case jx == x0:
				objRow[k] = cx0
			case jx < n && c != nil:
				objRow[k] = c[jx]
			}
		}
	}

	pivot := func(entK, leaveI int) {
		// basic[leaveI] leaves; nonbasic[entK] enters.
		ent, lea := nonbasic[entK], basic[leaveI]
		a := dictRows[leaveI][entK] // coefficient of entering var; nonzero
		inv := a.Inv()
		// Solve the leaving row for the entering variable:
		// x_ent = (x_lea - const - sum_{k != entK} coef_k x_k) / a
		newRow := make([]rational.Rat, len(nonbasic))
		newB := dictB[leaveI].Mul(inv).Neg()
		for k := range dictRows[leaveI] {
			if k == entK {
				newRow[k] = inv // coefficient of x_lea (replaces x_ent slot)
			} else {
				newRow[k] = dictRows[leaveI][k].Mul(inv).Neg()
			}
		}
		// Substitute into all other rows.
		for i := range dictRows {
			if i == leaveI {
				continue
			}
			c := dictRows[i][entK]
			if c.IsZero() {
				continue
			}
			dictB[i] = dictB[i].Add(c.Mul(newB))
			for k := range dictRows[i] {
				if k == entK {
					dictRows[i][k] = c.Mul(newRow[k])
				} else {
					dictRows[i][k] = dictRows[i][k].Add(c.Mul(newRow[k]))
				}
			}
		}
		// Substitute into the objective.
		c := objRow[entK]
		if !c.IsZero() {
			objConst = objConst.Add(c.Mul(newB))
			for k := range objRow {
				if k == entK {
					objRow[k] = c.Mul(newRow[k])
				} else {
					objRow[k] = objRow[k].Add(c.Mul(newRow[k]))
				}
			}
		}
		dictRows[leaveI] = newRow
		dictB[leaveI] = newB
		nonbasic[entK], basic[leaveI] = lea, ent
	}

	// run executes simplex pivots until optimal or unbounded.
	run := func() SimplexStatus {
		for {
			// Bland's rule: entering = lowest-id nonbasic with positive
			// objective coefficient.
			entK := -1
			for k := range nonbasic {
				if objRow[k].Sign() > 0 && (entK == -1 || nonbasic[k] < nonbasic[entK]) {
					entK = k
				}
			}
			if entK == -1 {
				return Optimal
			}
			// Ratio test: leaving = row minimising b_i / (-coef), coef < 0.
			leaveI := -1
			var best rational.Rat
			for i := range dictRows {
				c := dictRows[i][entK]
				if c.Sign() >= 0 {
					continue
				}
				ratio := dictB[i].Div(c.Neg())
				if leaveI == -1 || ratio.Cmp(best) < 0 ||
					(ratio.Equal(best) && basic[i] < basic[leaveI]) {
					leaveI, best = i, ratio
				}
			}
			if leaveI == -1 {
				return Unbounded
			}
			pivot(entK, leaveI)
		}
	}

	// Phase 1 if some b_i < 0.
	needPhase1 := false
	for i := range dictB {
		if dictB[i].Sign() < 0 {
			needPhase1 = true
			break
		}
	}
	if needPhase1 {
		// Add x0 to every row (coefficient +1 in the dictionary) and
		// maximise -x0.
		nonbasic = append(nonbasic, x0)
		for i := range dictRows {
			dictRows[i] = append(dictRows[i], rational.One)
		}
		objRow = append(objRow, rational.Zero)
		setObj(nil, rational.FromInt(-1))
		// Special first pivot: enter x0, leave the most negative row.
		entK := len(nonbasic) - 1
		leaveI := 0
		for i := range dictB {
			if dictB[i].Cmp(dictB[leaveI]) < 0 {
				leaveI = i
			}
		}
		pivot(entK, leaveI)
		if st := run(); st != Optimal {
			// Phase-1 objective -x0 <= 0 is always bounded above.
			return SimplexResult{Status: Infeasible}
		}
		if objConst.Sign() < 0 {
			return SimplexResult{Status: Infeasible}
		}
		// Drive x0 out of the basis if it lingers (degenerate optimum).
		for i, bv := range basic {
			if bv == x0 {
				entK := -1
				for k := range nonbasic {
					if !dictRows[i][k].IsZero() {
						entK = k
						break
					}
				}
				if entK == -1 {
					// Row is 0 = 0; drop it.
					basic = append(basic[:i], basic[i+1:]...)
					dictB = append(dictB[:i], dictB[i+1:]...)
					dictRows = append(dictRows[:i], dictRows[i+1:]...)
				} else {
					pivot(entK, i)
				}
				break
			}
		}
		// Remove x0 from the nonbasic set.
		for k, v := range nonbasic {
			if v == x0 {
				nonbasic = append(nonbasic[:k], nonbasic[k+1:]...)
				for i := range dictRows {
					dictRows[i] = append(dictRows[i][:k], dictRows[i][k+1:]...)
				}
				objRow = append(objRow[:k], objRow[k+1:]...)
				break
			}
		}
		// Restore the real objective, substituting basic variables.
		setObj(cobj, rational.Zero)
		for i, bv := range basic {
			if bv < n && !cobj[bv].IsZero() {
				c := cobj[bv]
				objConst = objConst.Add(c.Mul(dictB[i]))
				for k := range objRow {
					objRow[k] = objRow[k].Add(c.Mul(dictRows[i][k]))
				}
			}
		}
	} else {
		setObj(cobj, rational.Zero)
	}

	if st := run(); st == Unbounded {
		return SimplexResult{Status: Unbounded}
	}

	// Extract the solution point.
	val := make([]rational.Rat, total)
	for i, bv := range basic {
		val[bv] = dictB[i]
	}
	point := make(map[string]rational.Rat, len(vars))
	for _, v := range vars {
		point[v] = val[col(v, true)].Sub(val[col(v, false)])
	}
	return SimplexResult{Status: Optimal, Value: objConst, Point: point}
}

// FeasiblePoint returns a rational assignment satisfying the closure of j,
// or ok=false if the closure is infeasible. Note: for conjunctions whose
// only solutions lie on strict boundaries (e.g. x < 0 ∧ x >= 0 has a
// feasible closure but is itself unsatisfiable), use IsSatisfiable for the
// exact open-set decision.
func FeasiblePoint(j Conjunction) (map[string]rational.Rat, bool) {
	r := Maximize(j, Expr{})
	if r.Status != Optimal {
		return nil, false
	}
	return r.Point, true
}
