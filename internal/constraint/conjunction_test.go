package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

// box returns the conjunction lo <= v <= hi.
func box(v string, lo, hi string) Conjunction {
	return And(GeConst(v, q(lo)), LeConst(v, q(hi)))
}

func TestSatisfiabilityBasics(t *testing.T) {
	tests := []struct {
		name string
		j    Conjunction
		want bool
	}{
		{"empty", True(), true},
		{"false", False(), false},
		{"point", And(EqConst("x", q("3"))), true},
		{"interval", box("x", "0", "1"), true},
		{"empty interval", box("x", "1", "0"), false},
		{"degenerate closed", box("x", "1", "1"), true},
		{"degenerate open", And(GtConst("x", q("1")), LtConst("x", q("1"))), false},
		{"half open empty", And(GeConst("x", q("1")), LtConst("x", q("1"))), false},
		{"strict gap", And(GtConst("x", q("1")), LtConst("x", q("2"))), true},
		{"eq vs ineq", And(EqConst("x", q("5")), LeConst("x", q("4"))), false},
		{"eq chain", And(EqConst("x", q("1")), MustNew(Var("y"), "=", Var("x")), LeConst("y", q("0"))), false},
		{"2d triangle", And(
			GeConst("x", q("0")), GeConst("y", q("0")),
			MustNew(Var("x").Add(Var("y")), "<=", ConstInt(1))), true},
		{"2d empty", And(
			GeConst("x", q("2")), GeConst("y", q("2")),
			MustNew(Var("x").Add(Var("y")), "<=", ConstInt(1))), false},
		{"paper example x=y and x<2", And(
			MustNew(Var("x"), "=", Var("y")), LtConst("x", q("2"))), true},
		{"x+y=2.5", And(MustNew(Var("x").Add(Var("y")), "=", Const(q("5/2")))), true},
	}
	for _, tt := range tests {
		if got := tt.j.IsSatisfiable(); got != tt.want {
			t.Errorf("%s: IsSatisfiable = %v, want %v (%s)", tt.name, got, tt.want, tt.j)
		}
	}
}

func TestEntails(t *testing.T) {
	j := box("x", "0", "2")
	if !j.Entails(LeConst("x", q("3"))) {
		t.Error("0<=x<=2 should entail x<=3")
	}
	if j.Entails(LeConst("x", q("1"))) {
		t.Error("0<=x<=2 should not entail x<=1")
	}
	if !j.Entails(LeConst("x", q("2"))) {
		t.Error("boundary entailment x<=2 failed")
	}
	if j.Entails(LtConst("x", q("2"))) {
		t.Error("0<=x<=2 should not entail x<2")
	}
	// Equality entailment.
	pt := And(EqConst("x", q("1")), EqConst("y", q("2")))
	if !pt.Entails(MustNew(Var("x").Add(Var("y")), "=", ConstInt(3))) {
		t.Error("point should entail x+y=3")
	}
	// Implicit equality from two inequalities.
	sandwich := And(LeConst("x", q("1")), GeConst("x", q("1")))
	if !sandwich.Entails(EqConst("x", q("1"))) {
		t.Error("x<=1 ∧ x>=1 should entail x=1")
	}
}

func TestEquivalent(t *testing.T) {
	a := box("x", "0", "1")
	b := And(
		MustNew(Var("x").Scale(q("2")), ">=", ConstInt(0)),
		MustNew(Var("x").Scale(q("3")), "<=", ConstInt(3)),
	)
	if !a.Equivalent(b) {
		t.Error("scaled boxes not equivalent")
	}
	if a.Equivalent(box("x", "0", "2")) {
		t.Error("different boxes equivalent")
	}
	if !False().Equivalent(box("x", "2", "1")) {
		t.Error("two unsatisfiable conjunctions should be equivalent")
	}
	if False().Equivalent(a) {
		t.Error("false equivalent to satisfiable")
	}
}

func TestSimplify(t *testing.T) {
	j := And(
		LeConst("x", q("5")),
		LeConst("x", q("3")), // dominates x<=5
		LeConst("x", q("3")), // duplicate
		GeConst("x", q("0")),
	)
	s := j.Simplify()
	if s.Len() != 2 {
		t.Errorf("Simplify kept %d constraints (%s), want 2", s.Len(), s)
	}
	if !s.Equivalent(j) {
		t.Error("Simplify changed semantics")
	}
	if got := box("x", "2", "1").Simplify(); got.IsSatisfiable() {
		t.Error("Simplify of unsat not False")
	}
	// Redundant non-parallel constraint: x>=0 ∧ y>=0 entails x+y>=0.
	k := And(GeConst("x", q("0")), GeConst("y", q("0")),
		MustNew(Var("x").Add(Var("y")), ">=", ConstInt(0)))
	if ks := k.Simplify(); ks.Len() != 2 {
		t.Errorf("entailed constraint not removed: %s", ks)
	}
}

func TestEliminateProjection(t *testing.T) {
	// Triangle 0<=x, 0<=y, x+y<=1 projected onto x is [0,1].
	tri := And(GeConst("x", q("0")), GeConst("y", q("0")),
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(1)))
	px := tri.Project("x")
	iv, ok := px.VarBounds("x")
	if !ok || !iv.HasLower || !iv.HasUpper {
		t.Fatalf("projection bounds missing: %v %v", iv, ok)
	}
	if !iv.Lower.IsZero() || !iv.Upper.Equal(q("1")) || iv.LowerOpen || iv.UpperOpen {
		t.Errorf("projection of triangle onto x = %+v", iv)
	}
	// Projecting away everything from a satisfiable system yields true.
	if got := tri.Eliminate("x", "y"); !got.IsSatisfiable() || got.Len() != 0 {
		t.Errorf("full elimination = %s", got)
	}
	// Equality substitution: x = y ∧ 0<=y<=2, eliminate y -> 0<=x<=2.
	j := And(MustNew(Var("x"), "=", Var("y"))).Merge(box("y", "0", "2"))
	pj := j.Eliminate("y")
	if !pj.Equivalent(box("x", "0", "2")) {
		t.Errorf("eliminate via equality = %s", pj)
	}
}

func TestEliminateStrictness(t *testing.T) {
	// y < x ∧ x <= 3, eliminate x: y < 3.
	j := And(MustNew(Var("y"), "<", Var("x")), LeConst("x", q("3")))
	p := j.Eliminate("x")
	iv, ok := p.VarBounds("y")
	if !ok || !iv.HasUpper || !iv.UpperOpen || !iv.Upper.Equal(q("3")) {
		t.Errorf("strictness lost: %+v ok=%v", iv, ok)
	}
}

func TestEliminateUnsatisfiable(t *testing.T) {
	j := And(LeConst("x", q("0")), GeConst("x", q("1")), LeConst("y", q("5")))
	p := j.Eliminate("x")
	if p.IsSatisfiable() {
		t.Errorf("projection of unsat system satisfiable: %s", p)
	}
}

func TestVarBounds(t *testing.T) {
	j := And(GtConst("x", q("-1")), LeConst("x", q("7/2")))
	iv, ok := j.VarBounds("x")
	if !ok {
		t.Fatal("unexpected unsat")
	}
	if !iv.HasLower || !iv.LowerOpen || !iv.Lower.Equal(q("-1")) {
		t.Errorf("lower = %+v", iv)
	}
	if !iv.HasUpper || iv.UpperOpen || !iv.Upper.Equal(q("7/2")) {
		t.Errorf("upper = %+v", iv)
	}
	// Unbounded variable.
	free := And(LeConst("y", q("0")))
	iv2, ok := free.VarBounds("x")
	if !ok || iv2.HasLower || iv2.HasUpper {
		t.Errorf("free var bounds = %+v", iv2)
	}
	// Point.
	iv3, _ := And(EqConst("x", q("4"))).VarBounds("x")
	if !iv3.IsPoint() || !iv3.Lower.Equal(q("4")) {
		t.Errorf("point bounds = %+v", iv3)
	}
	// Unsat.
	if _, ok := box("x", "1", "0").VarBounds("x"); ok {
		t.Error("bounds of unsat reported ok")
	}
}

func TestIntervalPredicates(t *testing.T) {
	iv := Interval{Lower: q("0"), Upper: q("1"), HasLower: true, HasUpper: true}
	if !iv.Contains(q("0")) || !iv.Contains(q("1")) || !iv.Contains(q("1/2")) {
		t.Error("closed interval containment")
	}
	if iv.Contains(q("-1")) || iv.Contains(q("2")) {
		t.Error("outside containment")
	}
	open := Interval{Lower: q("0"), Upper: q("1"), HasLower: true, HasUpper: true, LowerOpen: true, UpperOpen: true}
	if open.Contains(q("0")) || open.Contains(q("1")) {
		t.Error("open interval endpoints contained")
	}
	if !(Interval{Lower: q("1"), Upper: q("1"), HasLower: true, HasUpper: true, UpperOpen: true}).IsEmpty() {
		t.Error("half-open point not empty")
	}
}

func TestHoldsConjunction(t *testing.T) {
	tri := And(GeConst("x", q("0")), GeConst("y", q("0")),
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(1)))
	ok, err := tri.Holds(map[string]rational.Rat{"x": q("1/4"), "y": q("1/4")})
	if err != nil || !ok {
		t.Errorf("interior point: %v %v", ok, err)
	}
	ok, _ = tri.Holds(map[string]rational.Rat{"x": q("1"), "y": q("1")})
	if ok {
		t.Error("exterior point held")
	}
}

func TestSubtractDNF(t *testing.T) {
	// [0,4] - [1,2] = [0,1) ∪ (2,4].
	d := Subtract(box("x", "0", "4"), box("x", "1", "2"))
	pts := map[string]bool{
		"0": true, "1/2": true, "1": false, "3/2": false,
		"2": false, "5/2": true, "4": true, "5": false, "-1": false,
	}
	for xs, want := range pts {
		got, err := d.Holds(map[string]rational.Rat{"x": q(xs)})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("x=%s: in difference = %v, want %v", xs, got, want)
		}
	}
	// Disjuncts must be pairwise disjoint (staircase property).
	for i := range d {
		for k := i + 1; k < len(d); k++ {
			if d[i].Merge(d[k]).IsSatisfiable() {
				t.Errorf("disjuncts %d and %d overlap", i, k)
			}
		}
	}
}

func TestSubtractEverything(t *testing.T) {
	d := Subtract(box("x", "0", "1"), box("x", "-1", "2"))
	if d.IsSatisfiable() {
		t.Errorf("subtracting a superset left %v", d)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	d := Subtract(box("x", "0", "1"), box("x", "5", "6"))
	if !d.IsSatisfiable() {
		t.Fatal("subtracting disjoint region emptied the set")
	}
	// The union of disjuncts must be equivalent to the original box:
	// sample a grid.
	for _, xs := range []string{"0", "1/2", "1"} {
		ok, _ := d.Holds(map[string]rational.Rat{"x": q(xs)})
		if !ok {
			t.Errorf("x=%s lost", xs)
		}
	}
}

func TestSubtractAll(t *testing.T) {
	// [0,10] - [1,2] - [3,4] : check representative points.
	d := SubtractAll(box("x", "0", "10"), []Conjunction{box("x", "1", "2"), box("x", "3", "4")})
	want := map[string]bool{"0": true, "3/2": false, "5/2": true, "7/2": false, "9": true}
	for xs, w := range want {
		got, _ := d.Holds(map[string]rational.Rat{"x": q(xs)})
		if got != w {
			t.Errorf("x=%s: %v, want %v", xs, got, w)
		}
	}
}

func TestComplementEquality2D(t *testing.T) {
	// Subtracting the line x=y from a square leaves two open triangles.
	sq := box("x", "0", "1").Merge(box("y", "0", "1"))
	line := And(MustNew(Var("x"), "=", Var("y")))
	d := Subtract(sq, line)
	at := func(x, y string) bool {
		ok, _ := d.Holds(map[string]rational.Rat{"x": q(x), "y": q(y)})
		return ok
	}
	if at("1/2", "1/2") {
		t.Error("diagonal point survived subtraction")
	}
	if !at("1/4", "3/4") || !at("3/4", "1/4") {
		t.Error("off-diagonal points lost")
	}
}

// TestQuickSubtractPointwise property-tests DNF subtraction against direct
// pointwise evaluation on random 1-D interval pairs.
func TestQuickSubtractPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a, b := rational.FromInt(int64(rng.Intn(20)-10)), rational.FromInt(int64(rng.Intn(20)-10))
		c, d := rational.FromInt(int64(rng.Intn(20)-10)), rational.FromInt(int64(rng.Intn(20)-10))
		j1 := And(GeConst("x", rational.Min(a, b)), LeConst("x", rational.Max(a, b)))
		j2 := And(GeConst("x", rational.Min(c, d)), LeConst("x", rational.Max(c, d)))
		diff := Subtract(j1, j2)
		for p := -12; p <= 12; p++ {
			pt := map[string]rational.Rat{"x": rational.New(int64(p), 1)}
			in1, _ := j1.Holds(pt)
			in2, _ := j2.Holds(pt)
			got, _ := diff.Holds(pt)
			if got != (in1 && !in2) {
				t.Fatalf("iter %d p=%d: diff=%v, want %v (j1=%s j2=%s)", iter, p, got, in1 && !in2, j1, j2)
			}
		}
	}
}

// TestQuickEliminatePreservesSolutions: for random 2-D systems, a point
// satisfies the projection iff it extends to a solution — checked in the
// sound direction (solution implies projection) plus bound tightness via
// the simplex cross-check in simplex_test.go.
func TestQuickEliminateSound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 100; iter++ {
		var cs []Constraint
		n := 2 + rng.Intn(3)
		for i := 0; i < n; i++ {
			e := Var("x").Scale(rational.FromInt(int64(rng.Intn(5) - 2))).
				Add(Var("y").Scale(rational.FromInt(int64(rng.Intn(5) - 2)))).
				AddConst(rational.FromInt(int64(rng.Intn(11) - 5)))
			op := []Op{Le, Lt, Eq}[rng.Intn(3)]
			cs = append(cs, Constraint{Expr: e, Op: op})
		}
		j := And(cs...)
		proj := j.Eliminate("y")
		// Any concrete solution of j must satisfy the projection on x.
		for px := -6; px <= 6; px++ {
			for py := -6; py <= 6; py++ {
				pt := map[string]rational.Rat{
					"x": rational.FromInt(int64(px)),
					"y": rational.FromInt(int64(py)),
				}
				in, _ := j.Holds(pt)
				if in {
					pOK, _ := proj.Holds(map[string]rational.Rat{"x": rational.FromInt(int64(px))})
					if !pOK {
						t.Fatalf("iter %d: solution (%d,%d) of %s rejected by projection %s", iter, px, py, j, proj)
					}
				}
			}
		}
	}
}
