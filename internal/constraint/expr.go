// Package constraint implements the rational linear constraint engine that
// underlies CQA/CDB — the §2.2 choice of rational linear constraints as the
// constraint class, and the decision procedures that make the §2.5 closure
// principle effective for every algebra operator.
//
// The package provides:
//
//   - Expr: linear expressions sum(coef_i * var_i) + const over exact
//     rationals;
//   - Constraint: atomic linear constraints Expr OP 0 with OP in {=, <=, <};
//   - Conjunction: a constraint tuple in the sense of Kanellakis, Kuper and
//     Revesz — a finite conjunction of atomic constraints whose semantics is
//     the (possibly infinite) set of variable assignments satisfying it;
//   - exact decision procedures: satisfiability, entailment and equivalence
//     via Fourier-Motzkin elimination;
//   - projection (variable elimination), the engine behind CQA's project
//     operator;
//   - an independent exact rational simplex used for optimisation (bounding
//     boxes, extrema) and as a cross-check of the Fourier-Motzkin results;
//   - complementation into disjunctive normal form, the engine behind CQA's
//     difference operator.
//
// Everything operates over exact rationals (package rational); there is no
// floating point anywhere on a decision path.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"cdb/internal/rational"
)

// Term is one coefficient-variable pair of a linear expression.
type Term struct {
	Var  string
	Coef rational.Rat
}

// Expr is an immutable linear expression: sum of terms plus a constant.
// The zero value is the expression 0.
//
// Invariants: terms are sorted by variable name, contain no duplicates, and
// contain no zero coefficients.
type Expr struct {
	terms []Term
	c     rational.Rat
}

// NewExpr builds an expression from arbitrary terms and a constant.
// Duplicate variables are summed; zero coefficients are dropped.
func NewExpr(terms []Term, constant rational.Rat) Expr {
	m := make(map[string]rational.Rat, len(terms))
	for _, t := range terms {
		m[t.Var] = m[t.Var].Add(t.Coef)
	}
	out := make([]Term, 0, len(m))
	for v, c := range m {
		if !c.IsZero() {
			out = append(out, Term{Var: v, Coef: c})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return Expr{terms: out, c: constant}
}

// Var returns the expression consisting of the single variable v.
func Var(v string) Expr {
	return Expr{terms: []Term{{Var: v, Coef: rational.One}}}
}

// Const returns the constant expression c.
func Const(c rational.Rat) Expr { return Expr{c: c} }

// ConstInt returns the constant expression n.
func ConstInt(n int64) Expr { return Const(rational.FromInt(n)) }

// Add returns e + f.
func (e Expr) Add(f Expr) Expr {
	out := make([]Term, 0, len(e.terms)+len(f.terms))
	i, j := 0, 0
	for i < len(e.terms) && j < len(f.terms) {
		a, b := e.terms[i], f.terms[j]
		switch {
		case a.Var < b.Var:
			out = append(out, a)
			i++
		case a.Var > b.Var:
			out = append(out, b)
			j++
		default:
			if s := a.Coef.Add(b.Coef); !s.IsZero() {
				out = append(out, Term{Var: a.Var, Coef: s})
			}
			i++
			j++
		}
	}
	out = append(out, e.terms[i:]...)
	out = append(out, f.terms[j:]...)
	return Expr{terms: out, c: e.c.Add(f.c)}
}

// Sub returns e - f.
func (e Expr) Sub(f Expr) Expr { return e.Add(f.Scale(rational.FromInt(-1))) }

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(rational.FromInt(-1)) }

// Scale returns k * e.
func (e Expr) Scale(k rational.Rat) Expr {
	if k.IsZero() {
		return Expr{}
	}
	out := make([]Term, len(e.terms))
	for i, t := range e.terms {
		out[i] = Term{Var: t.Var, Coef: t.Coef.Mul(k)}
	}
	return Expr{terms: out, c: e.c.Mul(k)}
}

// AddConst returns e + k.
func (e Expr) AddConst(k rational.Rat) Expr {
	return Expr{terms: e.terms, c: e.c.Add(k)}
}

// Coef returns the coefficient of variable v (zero if absent).
func (e Expr) Coef(v string) rational.Rat {
	i := sort.Search(len(e.terms), func(i int) bool { return e.terms[i].Var >= v })
	if i < len(e.terms) && e.terms[i].Var == v {
		return e.terms[i].Coef
	}
	return rational.Zero
}

// ConstTerm returns the constant term of e.
func (e Expr) ConstTerm() rational.Rat { return e.c }

// Terms returns the terms of e in variable order. The result must not be
// mutated.
func (e Expr) Terms() []Term { return e.terms }

// IsConst reports whether e has no variables.
func (e Expr) IsConst() bool { return len(e.terms) == 0 }

// HasVar reports whether variable v occurs in e.
func (e Expr) HasVar(v string) bool { return !e.Coef(v).IsZero() }

// Vars returns the variables of e in sorted order.
func (e Expr) Vars() []string {
	out := make([]string, len(e.terms))
	for i, t := range e.terms {
		out[i] = t.Var
	}
	return out
}

// NumVars returns the number of distinct variables in e.
func (e Expr) NumVars() int { return len(e.terms) }

// Eval evaluates e under the given assignment. Missing variables evaluate
// as an error.
func (e Expr) Eval(assign map[string]rational.Rat) (rational.Rat, error) {
	sum := e.c
	for _, t := range e.terms {
		v, ok := assign[t.Var]
		if !ok {
			return rational.Zero, fmt.Errorf("constraint: unbound variable %q", t.Var)
		}
		sum = sum.Add(t.Coef.Mul(v))
	}
	return sum, nil
}

// Substitute returns e with every occurrence of v replaced by repl.
func (e Expr) Substitute(v string, repl Expr) Expr {
	c := e.Coef(v)
	if c.IsZero() {
		return e
	}
	// e = c*v + rest  ->  c*repl + rest
	rest := make([]Term, 0, len(e.terms)-1)
	for _, t := range e.terms {
		if t.Var != v {
			rest = append(rest, t)
		}
	}
	return Expr{terms: rest, c: e.c}.Add(repl.Scale(c))
}

// Rename returns e with variable old renamed to new. It panics if new
// already occurs in e (renaming must not merge variables silently).
func (e Expr) Rename(old, new string) Expr {
	if !e.Coef(old).IsZero() && !e.Coef(new).IsZero() {
		panic(fmt.Sprintf("constraint: rename %s->%s would merge variables", old, new))
	}
	return e.Substitute(old, Var(new))
}

// Equal reports whether e and f are identical expressions (same terms and
// constant).
func (e Expr) Equal(f Expr) bool {
	if len(e.terms) != len(f.terms) || !e.c.Equal(f.c) {
		return false
	}
	for i := range e.terms {
		if e.terms[i].Var != f.terms[i].Var || !e.terms[i].Coef.Equal(f.terms[i].Coef) {
			return false
		}
	}
	return true
}

// String renders e in human-readable form, e.g. "2x + 3/2y - 5".
func (e Expr) String() string {
	if len(e.terms) == 0 {
		return e.c.String()
	}
	var b strings.Builder
	for i, t := range e.terms {
		coef := t.Coef
		if i == 0 {
			if coef.Sign() < 0 {
				b.WriteString("-")
				coef = coef.Neg()
			}
		} else {
			if coef.Sign() < 0 {
				b.WriteString(" - ")
				coef = coef.Neg()
			} else {
				b.WriteString(" + ")
			}
		}
		if !coef.Equal(rational.One) {
			b.WriteString(coef.String())
		}
		b.WriteString(t.Var)
	}
	if !e.c.IsZero() {
		if e.c.Sign() < 0 {
			b.WriteString(" - ")
			b.WriteString(e.c.Neg().String())
		} else {
			b.WriteString(" + ")
			b.WriteString(e.c.String())
		}
	}
	return b.String()
}
