package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

func TestIndependentGroups(t *testing.T) {
	// x and y linked by x+y<=1; t separate.
	j := And(
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(1)),
		GeConst("x", q("0")),
		LeConst("t", q("5")),
	)
	groups := j.IndependentGroups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 1 || groups[0][0] != "t" {
		t.Errorf("groups = %v", groups)
	}
	if len(groups[1]) != 2 || groups[1][0] != "x" || groups[1][1] != "y" {
		t.Errorf("groups = %v", groups)
	}
	if j.Independent("x", "y") {
		t.Error("x,y reported independent")
	}
	if !j.Independent("x", "t") || !j.Independent("y", "t") {
		t.Error("t not independent")
	}
	if j.Independent("x", "x") {
		t.Error("variable independent of itself")
	}
	// A box is fully independent per axis.
	bx := box("x", "0", "1").Merge(box("y", "0", "1"))
	if got := bx.IndependentGroups(); len(got) != 2 {
		t.Errorf("box groups = %v", got)
	}
	// Chains are transitive: x~y, y~z puts all three together.
	chain := And(
		MustNew(Var("x"), "<=", Var("y")),
		MustNew(Var("y"), "<=", Var("z")),
	)
	if got := chain.IndependentGroups(); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("chain groups = %v", got)
	}
	// Empty conjunction.
	if got := True().IndependentGroups(); len(got) != 0 {
		t.Errorf("true groups = %v", got)
	}
}

func TestFactorByGroupsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vars := []string{"a", "b", "c", "d"}
	for iter := 0; iter < 100; iter++ {
		var cs []Constraint
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			// Random constraint over 1-2 variables.
			v1 := vars[rng.Intn(len(vars))]
			e := Var(v1).Scale(rational.FromInt(int64(1 + rng.Intn(3))))
			if rng.Intn(2) == 0 {
				v2 := vars[rng.Intn(len(vars))]
				if v2 != v1 {
					e = e.Add(Var(v2).Scale(rational.FromInt(int64(rng.Intn(5) - 2))))
				}
			}
			cs = append(cs, Constraint{Expr: e.AddConst(rational.FromInt(int64(rng.Intn(9) - 4))), Op: Le})
		}
		j := And(cs...)
		factors := j.FactorByGroups()
		// Conjunction of factors must be equivalent to j.
		recombined := True()
		for _, f := range factors {
			recombined = recombined.Merge(f)
		}
		if !recombined.Equivalent(j) {
			t.Fatalf("iter %d: factoring changed semantics: %s vs %s", iter, j, recombined)
		}
		// No factor may span two groups.
		groups := j.IndependentGroups()
		if len(factors) != max(len(groups), 1) {
			t.Fatalf("iter %d: %d factors for %d groups", iter, len(factors), len(groups))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRelationalAttributeIsIndependent(t *testing.T) {
	// The paper's observation: a relational attribute (ground equality)
	// is automatically independent of all other attributes. In constraint
	// form: x = 3 links x to nothing.
	j := And(
		EqConst("x", q("3")),
		MustNew(Var("y").Add(Var("z")), "<=", ConstInt(1)),
	)
	if !j.Independent("x", "y") || !j.Independent("x", "z") {
		t.Error("ground-equality attribute not independent")
	}
}
