package constraint

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSubtractAllScopedMatchesSubtractAllWith checks the scoped staircase
// against the reference one on random 2-D region stacks: when scoped
// decides exactly what the sat oracle would, the emitted disjuncts must be
// identical atoms in identical order.
func TestSubtractAllScopedMatchesSubtractAllWith(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randBox := func() Conjunction {
		x0 := rng.Int63n(8)
		y0 := rng.Int63n(8)
		j := box("x", itoa(x0), itoa(x0+1+rng.Int63n(4))).
			Merge(box("y", itoa(y0), itoa(y0+1+rng.Int63n(4))))
		if rng.Intn(2) == 0 {
			// A diagonal cut keeps the staircase from degenerating into
			// pure interval reasoning.
			j = j.With(MustNew(Var("x"), "<=", Var("y").Add(ConstInt(rng.Int63n(6)))))
		}
		if rng.Intn(3) == 0 {
			return j.Canon()
		}
		return j // raw form, as operators see them
	}
	for i := 0; i < 80; i++ {
		base := randBox()
		ks := make([]Conjunction, 1+rng.Intn(3))
		for i := range ks {
			ks[i] = randBox()
		}
		want := SubtractAllWith(base, ks, nil)
		got := SubtractAllScoped(base, ks, func(extras []Constraint) bool {
			return base.With(extras...).IsSatisfiable()
		})
		if len(got) != len(want) {
			t.Fatalf("case %d: %d disjuncts, want %d", i, len(got), len(want))
		}
		for d := range want {
			if got[d].Key() != want[d].Key() {
				t.Fatalf("case %d disjunct %d: %q != %q", i, d, got[d].Key(), want[d].Key())
			}
		}
	}
}

// TestSubtractAllScopedExtrasReconstruct checks the scoped contract: the
// conjunction under decision is always base ∧ extras.
func TestSubtractAllScopedExtrasReconstruct(t *testing.T) {
	base := box("x", "0", "10").Merge(box("y", "0", "10"))
	ks := []Conjunction{
		box("x", "2", "4").Merge(box("y", "2", "4")),
		box("x", "6", "8"),
	}
	want := SubtractAllWith(base, ks, nil)
	var decisions int
	got := SubtractAllScoped(base, ks, func(extras []Constraint) bool {
		decisions++
		return base.With(extras...).IsSatisfiable()
	})
	if decisions == 0 {
		t.Fatal("scoped decider never consulted")
	}
	if len(got) != len(want) {
		t.Fatalf("%d disjuncts, want %d", len(got), len(want))
	}
}

func TestMemoCachesPerCanonicalForm(t *testing.T) {
	j := box("x", "0", "1").Canon()
	var calls int32
	compute := func() any { atomic.AddInt32(&calls, 1); return "payload" }
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := j.Memo(compute); v != "payload" {
				t.Errorf("Memo = %v", v)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	// Copies share the box.
	k := j
	if v := k.Memo(func() any { return "other" }); v != "payload" {
		t.Fatalf("copy recomputed: %v", v)
	}
	// Non-canonical conjunctions compute uncached every time.
	raw := box("x", "0", "1")
	n1 := raw.Memo(func() any { return 1 })
	n2 := raw.Memo(func() any { return 2 })
	if n1 != 1 || n2 != 2 {
		t.Fatalf("raw form should not cache: %v %v", n1, n2)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
