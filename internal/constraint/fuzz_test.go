package constraint_test

// Native fuzz targets for the constraint kernel. The external test package
// lets the targets parse arbitrary fuzz input with query.ParseConstraints
// and check the engine's decisions against the independent naive oracle
// (internal/oracle) without an import cycle.
//
// Run with: go test ./internal/constraint -run '^$' -fuzz FuzzCanon
// The committed corpora under testdata/fuzz/ replay as ordinary tests.

import (
	"sort"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/oracle"
	"cdb/internal/query"
)

// fuzzConstraints parses fuzz input into a conjunction, discarding inputs
// that don't parse or would make textbook Fourier-Motzkin blow up (the
// oracle is intentionally exponential; fuzzing is about correctness, not
// endurance).
func fuzzConstraints(src string) ([]constraint.Constraint, bool) {
	cs, err := query.ParseConstraints(src)
	if err != nil {
		return nil, false
	}
	if len(cs) > 8 {
		return nil, false
	}
	vars := map[string]bool{}
	for _, c := range cs {
		for _, v := range c.Expr.Vars() {
			vars[v] = true
		}
	}
	if len(vars) > 4 {
		return nil, false
	}
	return cs, true
}

var fuzzSeeds = []string{
	"",                      // empty conjunction = broad true
	"0 < 0",                 // the False sentinel
	"x <= 5",
	"x <= 5, x >= 6",
	"x < 0, x >= 0",         // strict trap: closure feasible, set empty
	"x = 3, x <= 2",
	"2x + 3y = 6, x - y <= 0",
	"x + y <= 1, x - y <= 1, -x <= 0",
	"x/2 <= 3/4",
	"x - y < 0, y - z < 0, z - x < 0",
	"x = y, y = z, z = x",
	"-2x <= -4, x <= 2",
}

// FuzzCanon checks the canonicaliser: Canon must be a fixpoint, preserve
// semantics (Equivalent), and agree with the original on satisfiability.
func FuzzCanon(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cs, ok := fuzzConstraints(src)
		if !ok {
			return
		}
		j := constraint.And(cs...)
		c := j.Canon()
		if got, want := c.Canon().String(), c.String(); got != want {
			t.Fatalf("Canon not a fixpoint on %q:\n  once  %s\n  twice %s", src, want, got)
		}
		if j.IsSatisfiable() != c.IsSatisfiable() {
			t.Fatalf("Canon changed satisfiability of %q: %v -> %v", src, j.IsSatisfiable(), c.IsSatisfiable())
		}
		if !j.Equivalent(c) {
			t.Fatalf("Canon not semantics-preserving on %q:\n  j = %s\n  canon = %s", src, j, c)
		}
	})
}

// FuzzFourierMotzkin checks the optimised eliminator (Gauss substitution,
// redundancy sweeps, memoisation) against the oracle's textbook
// Fourier-Motzkin on the same input: satisfiability must agree, and
// eliminating any one variable must preserve satisfiability.
func FuzzFourierMotzkin(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cs, ok := fuzzConstraints(src)
		if !ok {
			return
		}
		j := constraint.And(cs...)
		engine := j.IsSatisfiable()
		if naive := oracle.Sat(j); engine != naive {
			t.Fatalf("satisfiability disagreement on %q: engine=%v oracle=%v", src, engine, naive)
		}
		varSet := map[string]bool{}
		for _, c := range cs {
			for _, v := range c.Expr.Vars() {
				varSet[v] = true
			}
		}
		vars := make([]string, 0, len(varSet))
		for v := range varSet {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		for _, v := range vars {
			e := j.Eliminate(v)
			if e.IsSatisfiable() != engine {
				t.Fatalf("Eliminate(%s) changed satisfiability of %q: %v -> %v", v, src, engine, e.IsSatisfiable())
			}
			if oracle.Sat(e) != engine {
				t.Fatalf("oracle rejects Eliminate(%s) of %q: engine=%v oracle(e)=%v", v, src, engine, oracle.Sat(e))
			}
		}
	})
}
