package constraint

import (
	"fmt"

	"cdb/internal/rational"
)

// Op is the relational operator of an atomic constraint Expr OP 0.
// Only {=, <=, <} are stored; >=, > and user-level comparisons between two
// expressions are normalised into this form by the constructors.
type Op int

const (
	Eq Op = iota // Expr = 0
	Le           // Expr <= 0
	Lt           // Expr < 0
)

func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Le:
		return "<="
	case Lt:
		return "<"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is an atomic rational linear constraint, stored in the
// normal form Expr OP 0.
type Constraint struct {
	Expr Expr
	Op   Op
}

// New returns the constraint lhs op rhs for a user-level comparison
// operator: one of "=", "==", "!=" is not accepted here (disequality is not
// convex; see Complement), "<", "<=", ">", ">=".
func New(lhs Expr, op string, rhs Expr) (Constraint, error) {
	switch op {
	case "=", "==":
		return Constraint{Expr: lhs.Sub(rhs), Op: Eq}, nil
	case "<=":
		return Constraint{Expr: lhs.Sub(rhs), Op: Le}, nil
	case "<":
		return Constraint{Expr: lhs.Sub(rhs), Op: Lt}, nil
	case ">=":
		return Constraint{Expr: rhs.Sub(lhs), Op: Le}, nil
	case ">":
		return Constraint{Expr: rhs.Sub(lhs), Op: Lt}, nil
	default:
		return Constraint{}, fmt.Errorf("constraint: unsupported operator %q", op)
	}
}

// MustNew is like New but panics on error. Intended for fixtures and tests.
func MustNew(lhs Expr, op string, rhs Expr) Constraint {
	c, err := New(lhs, op, rhs)
	if err != nil {
		panic(err)
	}
	return c
}

// EqConst returns the constraint v = k.
func EqConst(v string, k rational.Rat) Constraint {
	return Constraint{Expr: Var(v).Sub(Const(k)), Op: Eq}
}

// LeConst returns the constraint v <= k.
func LeConst(v string, k rational.Rat) Constraint {
	return Constraint{Expr: Var(v).Sub(Const(k)), Op: Le}
}

// GeConst returns the constraint v >= k.
func GeConst(v string, k rational.Rat) Constraint {
	return Constraint{Expr: Const(k).Sub(Var(v)), Op: Le}
}

// LtConst returns the constraint v < k.
func LtConst(v string, k rational.Rat) Constraint {
	return Constraint{Expr: Var(v).Sub(Const(k)), Op: Lt}
}

// GtConst returns the constraint v > k.
func GtConst(v string, k rational.Rat) Constraint {
	return Constraint{Expr: Const(k).Sub(Var(v)), Op: Lt}
}

// IsTrivial reports whether c has no variables, together with its truth
// value in that case. For constraints with variables it returns (false, _).
func (c Constraint) IsTrivial() (trivial, value bool) {
	if !c.Expr.IsConst() {
		return false, false
	}
	k := c.Expr.ConstTerm()
	switch c.Op {
	case Eq:
		return true, k.IsZero()
	case Le:
		return true, k.Sign() <= 0
	default: // Lt
		return true, k.Sign() < 0
	}
}

// Holds evaluates c under the assignment.
func (c Constraint) Holds(assign map[string]rational.Rat) (bool, error) {
	v, err := c.Expr.Eval(assign)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case Eq:
		return v.IsZero(), nil
	case Le:
		return v.Sign() <= 0, nil
	default:
		return v.Sign() < 0, nil
	}
}

// Complement returns the negation of c as a disjunction of constraints
// (one constraint for inequalities, two for equalities):
//
//	¬(e = 0)  ≡  e < 0  ∨  -e < 0
//	¬(e <= 0) ≡  -e < 0
//	¬(e < 0)  ≡  -e <= 0
func (c Constraint) Complement() []Constraint {
	switch c.Op {
	case Eq:
		return []Constraint{
			{Expr: c.Expr, Op: Lt},
			{Expr: c.Expr.Neg(), Op: Lt},
		}
	case Le:
		return []Constraint{{Expr: c.Expr.Neg(), Op: Lt}}
	default: // Lt
		return []Constraint{{Expr: c.Expr.Neg(), Op: Le}}
	}
}

// Substitute returns c with variable v replaced by repl.
func (c Constraint) Substitute(v string, repl Expr) Constraint {
	return Constraint{Expr: c.Expr.Substitute(v, repl), Op: c.Op}
}

// Rename returns c with variable old renamed to new.
func (c Constraint) Rename(old, new string) Constraint {
	return Constraint{Expr: c.Expr.Rename(old, new), Op: c.Op}
}

// HasVar reports whether variable v occurs in c.
func (c Constraint) HasVar(v string) bool { return c.Expr.HasVar(v) }

// Key returns a canonical string key: equal keys imply identical constraint
// semantics (for the same Op family). The canonicalisation is Canonical
// (see canon.go).
func (c Constraint) Key() string {
	cc := c.Canonical()
	return cc.Op.String() + "|" + cc.Expr.String()
}

// String renders c in the form "expr OP 0" with the constant moved to the
// right-hand side for readability, e.g. "x + 2y <= 5".
func (c Constraint) String() string {
	lhs := Expr{terms: c.Expr.terms}
	rhs := c.Expr.c.Neg()
	if len(c.Expr.terms) == 0 {
		return fmt.Sprintf("%s %s 0", c.Expr.c, c.Op)
	}
	return fmt.Sprintf("%s %s %s", lhs, c.Op, rhs)
}
