package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

// randConj builds a random conjunction of up to 4 linear constraints over
// {x, y, z} with small integer coefficients — small enough that the
// quickcheck loops below can afford full semantic (Equivalent) comparisons.
func randConj(rng *rand.Rand) Conjunction {
	n := rng.Intn(5)
	cs := make([]Constraint, 0, n)
	vars := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		e := ConstInt(int64(rng.Intn(21) - 10))
		terms := 0
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				coef := int64(rng.Intn(9) - 4)
				if coef == 0 {
					continue
				}
				e = e.Add(Var(v).Scale(rational.FromInt(coef)))
				terms++
			}
		}
		if terms == 0 {
			// Constant-only atoms are trivial; make Le so roughly half are
			// trivially true and half trivially false.
			cs = append(cs, Constraint{Expr: e, Op: Le})
			continue
		}
		cs = append(cs, Constraint{Expr: e, Op: []Op{Eq, Le, Lt}[rng.Intn(3)]})
	}
	return And(cs...)
}

// TestCanonProperties is the quickcheck-style contract of Canon: it
// preserves semantics, is idempotent, and never grows the conjunction.
func TestCanonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		j := randConj(rng)
		cj := j.Canon()
		if !j.Equivalent(cj) {
			t.Fatalf("case %d: Canon changed semantics\nbefore: %s\nafter:  %s", i, j, cj)
		}
		if cc := cj.Canon(); !equalAtoms(cc.cs, cj.cs) || cc.fp != cj.fp {
			t.Fatalf("case %d: Canon not idempotent\nonce:  %s\ntwice: %s", i, cj, cc)
		}
		if cj.Len() > j.Len() {
			t.Fatalf("case %d: Canon grew the conjunction: %d -> %d atoms\nbefore: %s\nafter:  %s",
				i, j.Len(), cj.Len(), j, cj)
		}
	}
}

// TestFingerprintInvariance checks that the fingerprint is stable under the
// syntactic noise Canon is meant to absorb — atom reordering and positive
// rescaling — and that it distinguishes semantically different forms often
// enough to be a useful key (a strict inequality vs its non-strict twin).
func TestFingerprintInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		j := randConj(rng)
		cs := append([]Constraint{}, j.Constraints()...)
		rng.Shuffle(len(cs), func(a, b int) { cs[a], cs[b] = cs[b], cs[a] })
		shuffled := And(cs...)
		if j.Fingerprint() != shuffled.Fingerprint() {
			t.Fatalf("case %d: fingerprint not order-invariant: %s", i, j)
		}
		if !j.EqualCanonical(shuffled) {
			t.Fatalf("case %d: EqualCanonical not order-invariant: %s", i, j)
		}
		// Rescale every atom by a positive rational (any nonzero works for
		// equalities, but positive is valid for every operator).
		scaled := make([]Constraint, len(cs))
		for k, c := range cs {
			f := rational.New(int64(rng.Intn(5)+1), int64(rng.Intn(5)+1))
			scaled[k] = Constraint{Expr: c.Expr.Scale(f), Op: c.Op}
		}
		if j.Fingerprint() != And(scaled...).Fingerprint() {
			t.Fatalf("case %d: fingerprint not scale-invariant: %s", i, j)
		}
	}
	// Distinctness spot checks.
	le := And(Constraint{Expr: Var("x").Sub(ConstInt(1)), Op: Le})
	lt := And(Constraint{Expr: Var("x").Sub(ConstInt(1)), Op: Lt})
	if le.Fingerprint() == lt.Fingerprint() {
		t.Error("x <= 1 and x < 1 share a fingerprint")
	}
	if le.EqualCanonical(lt) {
		t.Error("x <= 1 and x < 1 compare EqualCanonical")
	}
}

// TestCanonFoldsParallelBounds checks the half-plane folding: parallel
// bounds keep only the tighter one, duplicates collapse, trivially true
// atoms vanish.
func TestCanonFoldsParallelBounds(t *testing.T) {
	x := Var("x")
	j := And(
		Constraint{Expr: x.Sub(ConstInt(5)), Op: Le},                            // x <= 5
		Constraint{Expr: x.Scale(rational.FromInt(2)).Sub(ConstInt(6)), Op: Le}, // 2x <= 6, i.e. x <= 3
		Constraint{Expr: x.Sub(ConstInt(5)), Op: Le},                            // duplicate
		Constraint{Expr: ConstInt(-1), Op: Le},                                  // trivially true
	)
	cj := j.Canon()
	if cj.Len() != 1 {
		t.Fatalf("want 1 folded atom, got %d: %s", cj.Len(), cj)
	}
	want := And(Constraint{Expr: x.Sub(ConstInt(3)), Op: Le})
	if !cj.EqualCanonical(want) {
		t.Fatalf("folded to %s, want x <= 3", cj)
	}
	// Equal bound, mixed strictness: the strict one wins.
	k := And(
		Constraint{Expr: x.Sub(ConstInt(3)), Op: Le},
		Constraint{Expr: x.Sub(ConstInt(3)), Op: Lt},
	).Canon()
	if k.Len() != 1 || k.Constraints()[0].Op != Lt {
		t.Fatalf("strictness fold: got %s", k)
	}
}

// TestFalseSentinelSurvivesCanon is the regression test for the False()
// sentinel (0 < 0): it must survive Canon and Fingerprint unchanged, and
// And/With must not drop it (only trivially *true* atoms are dropped).
func TestFalseSentinelSurvivesCanon(t *testing.T) {
	f := False()
	if f.IsSatisfiable() {
		t.Fatal("False() is satisfiable")
	}
	if f.Len() != 1 {
		t.Fatalf("False() has %d atoms, want 1", f.Len())
	}
	// Canon on the pre-flagged sentinel is the identity.
	if cf := f.Canon(); !equalAtoms(cf.cs, f.cs) || cf.fp != f.fp {
		t.Fatalf("Canon perturbed False(): %#v", cf)
	}
	// Rebuilding the sentinel through And clears the canon flag; Canon must
	// collapse it right back to the identical sentinel, fingerprint and all.
	rebuilt := And(f.Constraints()...)
	if rebuilt.Len() != 1 {
		t.Fatalf("And dropped the false sentinel: %d atoms", rebuilt.Len())
	}
	if rebuilt.Fingerprint() != f.Fingerprint() {
		t.Fatal("rebuilt sentinel changed fingerprint")
	}
	if !rebuilt.EqualCanonical(f) {
		t.Fatal("rebuilt sentinel not EqualCanonical to False()")
	}
	// With must keep the sentinel when extending, and Canon of any
	// conjunction containing it must collapse to exactly False().
	ext := f.With(Constraint{Expr: Var("x").Sub(ConstInt(1)), Op: Le})
	if ext.IsSatisfiable() {
		t.Fatal("extending False() became satisfiable")
	}
	if cj := ext.Canon(); !equalAtoms(cj.cs, f.cs) || cj.fp != f.fp {
		t.Fatalf("Canon of extended-false is not the False() sentinel: %s", cj)
	}
	// A trivially false atom anywhere collapses the whole conjunction.
	mixed := And(
		Constraint{Expr: Var("y"), Op: Le},
		Constraint{Expr: ConstInt(3), Op: Lt}, // 3 < 0
	)
	if cj := mixed.Canon(); cj.Fingerprint() != f.Fingerprint() {
		t.Fatalf("trivially false atom did not collapse to False(): %s", cj)
	}
}

// TestTrueCanonical checks the other distinguished form: the empty
// conjunction is canonical, with a stable fingerprint distinct from False.
func TestTrueCanonical(t *testing.T) {
	tr := True()
	if cj := tr.Canon(); cj.Len() != 0 || cj.fp != tr.fp {
		t.Fatalf("Canon perturbed True(): %#v", cj)
	}
	if tr.Fingerprint() == False().Fingerprint() {
		t.Fatal("True and False share a fingerprint")
	}
	if And().Fingerprint() != tr.Fingerprint() {
		t.Fatal("And() and True() disagree")
	}
}
