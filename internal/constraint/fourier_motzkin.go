package constraint

import (
	"sync/atomic"

	"cdb/internal/rational"
)

// This file implements exact Fourier-Motzkin variable elimination, the
// workhorse behind:
//
//   - Conjunction.IsSatisfiable (eliminate everything, check residuals);
//   - Project / Eliminate (the CQA project operator on constraint tuples);
//   - VarBounds (projection onto a single variable yields its exact bounds).
//
// Equalities are eliminated by substitution (Gauss step) before the
// quadratic lower×upper combination step, which both preserves exactness and
// curbs the output size. After each eliminated variable an optional
// redundancy sweep keeps intermediate systems small; see eliminateOpts.

// eliminateOpts tunes the eliminator. The zero value is the default
// production configuration.
type eliminateOpts struct {
	// skipRedundancy disables the per-step redundancy sweep. Exposed for the
	// DESIGN.md ablation benchmark; never set in production paths.
	skipRedundancy bool
}

// Eliminate returns a conjunction over the remaining variables whose
// semantics is the projection of j onto the complement of vars: an
// assignment of the remaining variables satisfies the result iff it can be
// extended to an assignment of vars satisfying j.
//
// If j is unsatisfiable the result is unsatisfiable (False after Simplify).
func (j Conjunction) Eliminate(vars ...string) Conjunction {
	return j.eliminateWith(eliminateOpts{}, vars...)
}

func (j Conjunction) eliminateWith(opts eliminateOpts, vars ...string) Conjunction {
	cs := append([]Constraint{}, j.cs...)
	for _, v := range vars {
		cs = eliminateVar(cs, v)
		if !opts.skipRedundancy && len(cs) > 8 {
			cs = sweepRedundant(cs)
		}
		// Early exit: a trivially false residual makes everything false.
		for _, c := range cs {
			if triv, val := c.IsTrivial(); triv && !val {
				return False()
			}
		}
	}
	return And(cs...)
}

// EliminateNoSweep is Eliminate with the per-step redundancy sweep
// disabled. It exists only for the DESIGN.md ablation benchmark that
// quantifies how much the sweep curbs the Fourier-Motzkin output blowup;
// production code paths always sweep.
func (j Conjunction) EliminateNoSweep(vars ...string) Conjunction {
	return j.eliminateWith(eliminateOpts{skipRedundancy: true}, vars...)
}

// Project returns the projection of j onto keep: all other variables are
// eliminated.
func (j Conjunction) Project(keep ...string) Conjunction {
	keepSet := map[string]bool{}
	for _, v := range keep {
		keepSet[v] = true
	}
	var drop []string
	for _, v := range j.Vars() {
		if !keepSet[v] {
			drop = append(drop, v)
		}
	}
	return j.Eliminate(drop...)
}

// eliminateVar removes variable v from the system by substitution (if an
// equality defines v) or by the Fourier-Motzkin combination step.
func eliminateVar(cs []Constraint, v string) []Constraint {
	// Gauss step: find an equality containing v and substitute.
	for i, c := range cs {
		if c.Op == Eq {
			a := c.Expr.Coef(v)
			if !a.IsZero() {
				// a*v + rest = 0  =>  v = -rest/a
				rest := c.Expr.Sub(Var(v).Scale(a))
				repl := rest.Scale(a.Inv().Neg())
				out := make([]Constraint, 0, len(cs)-1)
				for k, d := range cs {
					if k == i {
						continue
					}
					nd := d.Substitute(v, repl)
					if triv, val := nd.IsTrivial(); triv && val {
						continue
					}
					out = append(out, nd)
				}
				return out
			}
		}
	}

	// Fourier-Motzkin step: partition into lower bounds (coef<0), upper
	// bounds (coef>0) and constraints not involving v.
	var lowers, uppers, rest []Constraint
	for _, c := range cs {
		a := c.Expr.Coef(v)
		switch {
		case a.IsZero():
			rest = append(rest, c)
		case a.Sign() > 0:
			uppers = append(uppers, c)
		default:
			lowers = append(lowers, c)
		}
	}
	out := rest
	for _, lo := range lowers {
		al := lo.Expr.Coef(v) // < 0
		for _, up := range uppers {
			au := up.Expr.Coef(v) // > 0
			// (-al)*up + au*lo eliminates v; both multipliers positive so
			// inequality directions are preserved.
			comb := up.Expr.Scale(al.Neg()).Add(lo.Expr.Scale(au))
			op := Le
			if lo.Op == Lt || up.Op == Lt {
				op = Lt
			}
			nc := Constraint{Expr: comb, Op: op}
			if triv, val := nc.IsTrivial(); triv && val {
				continue
			}
			out = append(out, nc)
		}
	}
	return out
}

// sweepRedundant removes syntactic duplicates and constraints dominated by
// a parallel constraint (same canonical normal, weaker bound). It does not
// run full entailment (that would recurse into satisfiability); it is a
// cheap but effective guard against the quadratic FM blowup.
func sweepRedundant(cs []Constraint) []Constraint {
	type best struct {
		idx int
	}
	// Group inequalities by the canonical direction of their variable part;
	// within a group keep only the tightest bound.
	groups := map[string]best{}
	var out []Constraint
	keep := make([]bool, len(cs))
	for i, c := range cs {
		if c.Op == Eq {
			keep[i] = true
			continue
		}
		cc := c.Canonical()
		varPart := Expr{terms: cc.Expr.terms}
		key := varPart.String()
		prev, ok := groups[key]
		if !ok {
			groups[key] = best{idx: i}
			keep[i] = true
			continue
		}
		p := cs[prev.idx].Canonical()
		// Same variable part: compare constants. varPart + c <= 0 is tighter
		// when c is larger.
		pc, nc := p.Expr.ConstTerm(), cc.Expr.ConstTerm()
		tighter := nc.Cmp(pc) > 0 ||
			(nc.Equal(pc) && cc.Op == Lt && p.Op == Le)
		if tighter {
			keep[prev.idx] = false
			groups[key] = best{idx: i}
			keep[i] = true
		}
	}
	for i, c := range cs {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}

// decisions counts raw satisfiability runs of the Fourier-Motzkin
// eliminator, process-wide. It is what the sat-cache saves: cdbbench's
// canon experiment reads the delta with the cache on vs off on the same
// workload.
var decisions atomic.Int64

// DecisionCount returns the number of raw Fourier-Motzkin satisfiability
// decisions made by this process so far. Monotonic; read deltas.
func DecisionCount() int64 { return decisions.Load() }

// satisfiable decides satisfiability of a conjunction of constraints by
// eliminating every variable and checking the residual trivial constraints.
func satisfiable(cs []Constraint) bool {
	decisions.Add(1)
	// Collect variables.
	varSet := map[string]bool{}
	for _, c := range cs {
		for _, v := range c.Expr.Vars() {
			varSet[v] = true
		}
	}
	work := append([]Constraint{}, cs...)
	for v := range varSet {
		work = eliminateVar(work, v)
		if len(work) > 8 {
			work = sweepRedundant(work)
		}
		for _, c := range work {
			if triv, val := c.IsTrivial(); triv && !val {
				return false
			}
		}
	}
	for _, c := range work {
		if triv, val := c.IsTrivial(); triv && !val {
			return false
		}
	}
	return true
}

// Interval is a (possibly unbounded, possibly open) rational interval.
type Interval struct {
	Lower, Upper         rational.Rat
	HasLower, HasUpper   bool
	LowerOpen, UpperOpen bool
}

// IsPoint reports whether the interval is a single point.
func (iv Interval) IsPoint() bool {
	return iv.HasLower && iv.HasUpper && !iv.LowerOpen && !iv.UpperOpen &&
		iv.Lower.Equal(iv.Upper)
}

// IsEmpty reports whether the interval contains no rationals.
func (iv Interval) IsEmpty() bool {
	if !iv.HasLower || !iv.HasUpper {
		return false
	}
	c := iv.Lower.Cmp(iv.Upper)
	if c > 0 {
		return true
	}
	return c == 0 && (iv.LowerOpen || iv.UpperOpen)
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x rational.Rat) bool {
	if iv.HasLower {
		c := x.Cmp(iv.Lower)
		if c < 0 || (c == 0 && iv.LowerOpen) {
			return false
		}
	}
	if iv.HasUpper {
		c := x.Cmp(iv.Upper)
		if c > 0 || (c == 0 && iv.UpperOpen) {
			return false
		}
	}
	return true
}

// Intersects reports whether the two intervals share at least one
// rational. Open endpoints are exact: [a, b] and [b, c] intersect (the
// rationals are dense, the shared endpoint is a point of both), while
// [a, b) and [b, c] — or any touch where either side is open — do not.
func (iv Interval) Intersects(o Interval) bool {
	if iv.IsEmpty() || o.IsEmpty() {
		return false
	}
	if iv.HasUpper && o.HasLower {
		c := iv.Upper.Cmp(o.Lower)
		if c < 0 || (c == 0 && (iv.UpperOpen || o.LowerOpen)) {
			return false
		}
	}
	if o.HasUpper && iv.HasLower {
		c := o.Upper.Cmp(iv.Lower)
		if c < 0 || (c == 0 && (o.UpperOpen || iv.LowerOpen)) {
			return false
		}
	}
	return true
}

// VarBounds returns the exact range of variable v over the solutions of j,
// computed by projecting j onto v. The second result is false when j is
// unsatisfiable.
func (j Conjunction) VarBounds(v string) (Interval, bool) {
	proj := j.Project(v)
	var iv Interval
	for _, c := range proj.Constraints() {
		if triv, val := c.IsTrivial(); triv {
			if !val {
				return Interval{}, false
			}
			continue
		}
		a := c.Expr.Coef(v)
		// a*v + k OP 0
		k := c.Expr.ConstTerm()
		bound := k.Div(a).Neg() // v OP' -k/a
		switch {
		case c.Op == Eq:
			tightenLower(&iv, bound, false)
			tightenUpper(&iv, bound, false)
		case a.Sign() > 0: // v <= bound (open if Lt)
			tightenUpper(&iv, bound, c.Op == Lt)
		default: // v >= bound
			tightenLower(&iv, bound, c.Op == Lt)
		}
	}
	if iv.IsEmpty() {
		return Interval{}, false
	}
	return iv, true
}

func tightenLower(iv *Interval, b rational.Rat, open bool) {
	if !iv.HasLower || b.Cmp(iv.Lower) > 0 || (b.Equal(iv.Lower) && open) {
		iv.HasLower, iv.Lower, iv.LowerOpen = true, b, open
	}
}

func tightenUpper(iv *Interval, b rational.Rat, open bool) {
	if !iv.HasUpper || b.Cmp(iv.Upper) < 0 || (b.Equal(iv.Upper) && open) {
		iv.HasUpper, iv.Upper, iv.UpperOpen = true, b, open
	}
}
