package constraint

import (
	"sort"
	"strings"
	"sync"

	"cdb/internal/rational"
)

// Conjunction is a finite conjunction of atomic linear constraints — a
// "constraint tuple" in the Kanellakis-Kuper-Revesz framework. Its semantics
// is the set of assignments satisfying every constraint; the empty
// conjunction denotes "true" (all assignments).
type Conjunction struct {
	cs []Constraint

	// canon marks cs as being in canonical form (see Canon in canon.go), in
	// which case fp caches the structural fingerprint. Every constructor
	// that could perturb the form leaves canon false.
	canon bool
	fp    uint64

	// env, when non-nil, lazily memoizes the axis-aligned envelope (see
	// envelope.go). Canon attaches a fresh box; copies of the conjunction
	// share it, so the envelope is computed at most once per canonical
	// form. Constructors that perturb the form leave env nil (Envelope
	// then computes uncached).
	env *envBox

	// aux, when non-nil, lazily memoizes one externally computed derived
	// value (see Memo). Same lifecycle as env: Canon attaches a fresh box,
	// copies share it, perturbing constructors leave it nil. It keeps the
	// constraint layer representation-neutral: higher layers (the vector
	// fast path in internal/vector) can cache an alternate finite
	// representation per canonical form without this package knowing its
	// type.
	aux *auxBox
}

// auxBox lazily holds one derived value per canonical form (the same
// shared-box pattern as envBox, but with an opaque payload chosen by the
// first caller of Memo).
type auxBox struct {
	once sync.Once
	val  any
}

// Memo returns the auxiliary value memoized on j's canonical form,
// computing it with compute on first use. All copies of a canonical
// conjunction share the box, so compute runs at most once per canonical
// form — concurrent callers block on the same sync.Once. On conjunctions
// without a box (non-canonical constructors leave aux nil) the value is
// computed uncached on every call.
//
// All callers of Memo on a process must agree on the computed type: the
// first compute wins and later calls get its value back regardless of the
// compute they pass.
func (j Conjunction) Memo(compute func() any) any {
	if j.aux == nil {
		return compute()
	}
	j.aux.once.Do(func() { j.aux.val = compute() })
	return j.aux.val
}

// And returns the conjunction of the given constraints. Trivially true
// constraints are dropped; a trivially false constraint makes the result
// unsatisfiable but is kept so the caller can detect it via IsSatisfiable.
func And(cs ...Constraint) Conjunction {
	out := make([]Constraint, 0, len(cs))
	for _, c := range cs {
		if triv, val := c.IsTrivial(); triv && val {
			continue
		}
		out = append(out, c)
	}
	return Conjunction{cs: out}
}

// True is the empty conjunction (satisfied by every assignment).
func True() Conjunction {
	return Conjunction{canon: true, fp: fingerprintOf(nil), env: trueEnvBox, aux: trueAuxBox}
}

// False returns a canonical unsatisfiable conjunction (0 < 0). The sentinel
// is pre-flagged canonical: Canon and Fingerprint leave it unchanged (its
// single atom is trivially false, which Canon collapses back to False), and
// And/With keep it (only trivially *true* atoms are dropped).
func False() Conjunction {
	return Conjunction{cs: falseAtoms, canon: true, fp: falseFingerprint, env: falseEnvBox, aux: falseAuxBox}
}

var (
	falseAtoms       = []Constraint{{Expr: Expr{}, Op: Lt}}
	falseFingerprint = fingerprintOf(falseAtoms)
	// Shared envelope and aux boxes for the two canonical sentinels (their
	// sync.Once is safe to share process-wide; both envelopes are trivially
	// empty — 0 < 0 has no variable term, so even False bounds nothing).
	trueEnvBox  = &envBox{}
	falseEnvBox = &envBox{}
	trueAuxBox  = &auxBox{}
	falseAuxBox = &auxBox{}
)

// With returns j extended with additional constraints.
func (j Conjunction) With(cs ...Constraint) Conjunction {
	out := make([]Constraint, 0, len(j.cs)+len(cs))
	out = append(out, j.cs...)
	for _, c := range cs {
		if triv, val := c.IsTrivial(); triv && val {
			continue
		}
		out = append(out, c)
	}
	return Conjunction{cs: out}
}

// Merge returns the conjunction of j and k.
func (j Conjunction) Merge(k Conjunction) Conjunction {
	return j.With(k.cs...)
}

// Constraints returns the constraints of j. The result must not be mutated.
func (j Conjunction) Constraints() []Constraint { return j.cs }

// Len returns the number of atomic constraints in j.
func (j Conjunction) Len() int { return len(j.cs) }

// IsTrue reports whether j is the empty conjunction.
func (j Conjunction) IsTrue() bool { return len(j.cs) == 0 }

// Vars returns the sorted set of variables occurring in j.
func (j Conjunction) Vars() []string {
	set := map[string]bool{}
	for _, c := range j.cs {
		for _, v := range c.Expr.Vars() {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HasVar reports whether variable v occurs in j.
func (j Conjunction) HasVar(v string) bool {
	for _, c := range j.cs {
		if c.HasVar(v) {
			return true
		}
	}
	return false
}

// Holds evaluates j under the assignment.
func (j Conjunction) Holds(assign map[string]rational.Rat) (bool, error) {
	for _, c := range j.cs {
		ok, err := c.Holds(assign)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Substitute returns j with variable v replaced by repl in every constraint.
func (j Conjunction) Substitute(v string, repl Expr) Conjunction {
	out := make([]Constraint, 0, len(j.cs))
	for _, c := range j.cs {
		nc := c.Substitute(v, repl)
		if triv, val := nc.IsTrivial(); triv && val {
			continue
		}
		out = append(out, nc)
	}
	return Conjunction{cs: out}
}

// Rename returns j with variable old renamed to new.
func (j Conjunction) Rename(old, new string) Conjunction {
	out := make([]Constraint, len(j.cs))
	for i, c := range j.cs {
		out[i] = c.Rename(old, new)
	}
	return Conjunction{cs: out}
}

// IsSatisfiable reports whether some rational assignment satisfies j.
// Decided exactly by Fourier-Motzkin elimination (complete for linear
// rational arithmetic / dense orders). Every call runs the eliminator from
// scratch; hot paths that re-ask the same questions should go through a
// SatCache (engine.go) or thread a SatFunc into the *With variants.
func (j Conjunction) IsSatisfiable() bool {
	return satisfiable(j.cs)
}

// SatFunc decides satisfiability of a conjunction. It is how the memoized
// engine (a SatCache, typically owned by an exec.Context) is threaded into
// the decision procedures below: a nil SatFunc means "raw Fourier-Motzkin".
type SatFunc func(Conjunction) bool

// SatisfiableWith is IsSatisfiable through sat (nil = raw Fourier-Motzkin).
func (j Conjunction) SatisfiableWith(sat SatFunc) bool {
	if sat == nil {
		return j.IsSatisfiable()
	}
	return sat(j)
}

// Entails reports whether every assignment satisfying j also satisfies c,
// i.e. j ∧ ¬c is unsatisfiable (for every disjunct of ¬c).
func (j Conjunction) Entails(c Constraint) bool {
	return j.EntailsWith(c, nil)
}

// EntailsWith is Entails with the satisfiability sub-queries routed through
// sat (nil = raw Fourier-Motzkin).
func (j Conjunction) EntailsWith(c Constraint, sat SatFunc) bool {
	for _, neg := range c.Complement() {
		q := Conjunction{cs: append(append([]Constraint{}, j.cs...), neg)}
		if q.SatisfiableWith(sat) {
			return false
		}
	}
	return true
}

// EntailsAll reports whether j entails every constraint of k.
func (j Conjunction) EntailsAll(k Conjunction) bool {
	for _, c := range k.cs {
		if !j.Entails(c) {
			return false
		}
	}
	return true
}

// Equivalent reports whether j and k denote the same set of assignments.
// Both must be satisfiable or both unsatisfiable; satisfiable conjunctions
// are compared by mutual entailment.
func (j Conjunction) Equivalent(k Conjunction) bool {
	js, ks := j.IsSatisfiable(), k.IsSatisfiable()
	if !js || !ks {
		return js == ks
	}
	return j.EntailsAll(k) && k.EntailsAll(j)
}

// Simplify returns an equivalent conjunction with exact duplicates and
// redundant constraints removed. A constraint is redundant if the remaining
// constraints entail it. Unsatisfiable conjunctions simplify to False().
func (j Conjunction) Simplify() Conjunction {
	return j.SimplifyWith(nil)
}

// SimplifyWith is Simplify with every satisfiability decision (the initial
// check and the entailment sub-queries of the redundancy pass) routed
// through sat (nil = raw Fourier-Motzkin).
func (j Conjunction) SimplifyWith(sat SatFunc) Conjunction {
	if !j.SatisfiableWith(sat) {
		return False()
	}
	// Cheap pass: canonical-key dedup.
	seen := map[string]bool{}
	uniq := make([]Constraint, 0, len(j.cs))
	for _, c := range j.cs {
		if triv, val := c.IsTrivial(); triv && val {
			continue
		}
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, c)
	}
	// Expensive pass: drop constraints entailed by the rest.
	out := append([]Constraint{}, uniq...)
	for i := 0; i < len(out); {
		rest := Conjunction{cs: append(append([]Constraint{}, out[:i]...), out[i+1:]...)}
		if rest.EntailsWith(out[i], sat) {
			out = append(out[:i], out[i+1:]...)
		} else {
			i++
		}
	}
	return Conjunction{cs: out}
}

// Key returns a canonical string for the *syntactic* form of j (sorted
// canonical constraint keys). Equal keys imply equivalent conjunctions; the
// converse does not hold (use Equivalent for semantic comparison).
func (j Conjunction) Key() string {
	keys := make([]string, len(j.cs))
	for i, c := range j.cs {
		keys[i] = c.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, " & ")
}

// String renders j as " c1, c2, ..." matching the paper's comma-separated
// conjunction syntax; the empty conjunction renders as "true".
func (j Conjunction) String() string {
	if len(j.cs) == 0 {
		return "true"
	}
	parts := make([]string, len(j.cs))
	for i, c := range j.cs {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
