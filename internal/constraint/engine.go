package constraint

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cdb/internal/obs"
)

// This file implements the memoized satisfiability engine: a sharded,
// mutex-guarded, bounded-LRU cache of satisfiability decisions keyed by the
// canonical-form fingerprint (canon.go). It is the CQA/CDB answer to the
// cost profile of re-proving the same satisfiability questions on every
// operator invocation: the closure principle makes every operator emit
// finite sets of constraint tuples, and across a query plan (or a repeated
// workload) the same conjunctions recur constantly — joins re-check the
// same merged parts, difference re-checks the same staircase disjuncts,
// normalisation re-checks operator outputs.
//
// Concurrency: the cache is safe for concurrent use from the exec worker
// pool. Lookups and inserts take only a per-shard mutex; the Fourier-
// Motzkin run for a miss happens outside any lock, so parallel workers
// never serialise on the eliminator. Two workers racing on the same miss
// both compute (identical, side-effect-free results) and both store —
// idempotent, and cheaper than holding a lock across elimination.
//
// Exactness: entries are keyed by fingerprint but store the interned
// canonical atoms, and every hit verifies them with EqualCanonical. A
// fingerprint collision therefore can never return a wrong answer — it is
// counted and treated as a miss (the colliding entry is replaced).

// DefaultSatCacheSize is the entry bound used when NewSatCache is given a
// non-positive capacity.
const DefaultSatCacheSize = 4096

const satCacheShards = 16 // power of two; shard = fingerprint low bits

// SatCache is a bounded, sharded LRU memo of satisfiability decisions.
// The zero value is not usable; construct with NewSatCache.
type SatCache struct {
	shards [satCacheShards]satShard

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	collisions atomic.Int64
}

type satShard struct {
	mu      sync.Mutex
	cap     int
	entries map[uint64]*satEntry
	// Intrusive LRU list: front = most recent.
	front, back *satEntry
}

// satEntry is one memoized decision; cs holds the interned canonical atoms
// for exact verification on fingerprint hits.
type satEntry struct {
	fp         uint64
	cs         []Constraint
	sat        bool
	prev, next *satEntry
}

// NewSatCache returns a cache bounded to roughly capacity entries
// (non-positive = DefaultSatCacheSize), spread over the shards.
func NewSatCache(capacity int) *SatCache {
	if capacity <= 0 {
		capacity = DefaultSatCacheSize
	}
	per := capacity / satCacheShards
	if per < 1 {
		per = 1
	}
	c := &SatCache{}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].entries = make(map[uint64]*satEntry, per)
	}
	return c
}

// Satisfiable decides j through the memo: canonicalise, look up the
// fingerprint, and only on a miss run the Fourier-Motzkin eliminator. The
// second result reports whether the answer came from the cache.
func (c *SatCache) Satisfiable(j Conjunction) (sat, hit bool) {
	cj := j.Canon()
	s := &c.shards[cj.fp&(satCacheShards-1)]

	s.mu.Lock()
	if e, ok := s.entries[cj.fp]; ok {
		if equalAtoms(e.cs, cj.cs) {
			s.moveToFront(e)
			sat = e.sat
			s.mu.Unlock()
			c.hits.Add(1)
			return sat, true
		}
		c.collisions.Add(1)
	}
	s.mu.Unlock()

	// Miss: decide outside the lock so parallel workers never serialise on
	// the eliminator, then store. Racing computations of the same question
	// are idempotent.
	sat = cj.IsSatisfiable()
	c.misses.Add(1)

	s.mu.Lock()
	if e, ok := s.entries[cj.fp]; ok {
		// Raced insert or collision replacement: refresh in place.
		e.cs, e.sat = cj.cs, sat
		s.moveToFront(e)
	} else {
		e := &satEntry{fp: cj.fp, cs: cj.cs, sat: sat}
		s.entries[cj.fp] = e
		s.pushFront(e)
		if len(s.entries) > s.cap {
			victim := s.back
			s.unlink(victim)
			delete(s.entries, victim.fp)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
	return sat, false
}

// Func adapts the cache to a SatFunc for the *With decision procedures
// (EntailsWith, SimplifyWith, SubtractAllWith). A nil receiver yields a nil
// SatFunc, i.e. raw Fourier-Motzkin.
func (c *SatCache) Func() SatFunc {
	if c == nil {
		return nil
	}
	return func(j Conjunction) bool {
		sat, _ := c.Satisfiable(j)
		return sat
	}
}

// CacheStats is a point-in-time snapshot of a SatCache's counters.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	Collisions int64 // fingerprint collisions detected (exactness guard)
	Entries    int   // current resident entries across all shards
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d (%.1f%% hit rate) evictions=%d collisions=%d entries=%d",
		s.Hits, s.Misses, 100*s.HitRate(), s.Evictions, s.Collisions, s.Entries)
}

// RegisterMetrics exposes the cache's counters on the registry as
// scrape-time callback metrics reading the same atomics the hot path
// updates — emitting costs the cache nothing per decision. Nil-safe on
// both receiver and registry (no-op), so callers wire unconditionally.
func (c *SatCache) RegisterMetrics(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	r.NewCounterFunc("cdb_satcache_hits_total",
		"Satisfiability decisions answered by the memoized engine.", c.hits.Load)
	r.NewCounterFunc("cdb_satcache_misses_total",
		"Satisfiability decisions that ran the raw eliminator (cache enabled).", c.misses.Load)
	r.NewCounterFunc("cdb_satcache_evictions_total",
		"LRU evictions from the sat-cache.", c.evictions.Load)
	r.NewCounterFunc("cdb_satcache_collisions_total",
		"Fingerprint collisions detected (and corrected) by the exactness guard.", c.collisions.Load)
	r.NewGaugeFunc("cdb_satcache_entries",
		"Resident sat-cache entries across all shards.", func() int64 {
			return int64(c.Stats().Entries)
		})
}

// Stats returns a snapshot of the cache counters. Nil-safe (zero stats).
func (c *SatCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Collisions: c.collisions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// --- intrusive LRU list (shard mutex held) ---

func (s *satShard) pushFront(e *satEntry) {
	e.prev, e.next = nil, s.front
	if s.front != nil {
		s.front.prev = e
	}
	s.front = e
	if s.back == nil {
		s.back = e
	}
}

func (s *satShard) unlink(e *satEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.front = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.back = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *satShard) moveToFront(e *satEntry) {
	if s.front == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// equalAtoms compares two canonical atom slices structurally.
func equalAtoms(a, b []Constraint) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Op != b[i].Op || !a[i].Expr.Equal(b[i].Expr) {
			return false
		}
	}
	return true
}
