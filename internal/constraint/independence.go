package constraint

import "sort"

// Variable independence (§3.2 of the paper, citing Chomicki-Goldin-Kuper-
// Toman): two attributes are independent in a constraint tuple when its
// formula can be decomposed into a conjunction of formulas each mentioning
// only one of them. Independence is what makes orthogonal-range indexing
// and per-attribute reasoning sound; the paper notes that a relational
// attribute is automatically independent of all others (its "constraint"
// is a ground equality), which this package-level analysis generalises to
// the constraint part.
//
// IndependentGroups computes the finest syntactic decomposition: the
// connected components of the constraint graph (variables are nodes; each
// atomic constraint connects the variables it mentions). Syntactic
// independence is sound (variables in different components are truly
// independent) but not complete — x+y <= 1 ∧ x-y <= 1 links x and y even
// though no finite refutation exists here; Simplify first to remove
// redundant links.

// IndependentGroups returns the variables of j partitioned into groups
// such that no atomic constraint spans two groups. Groups and their
// members are sorted for determinism.
func (j Conjunction) IndependentGroups() [][]string {
	parent := map[string]string{}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, v := range j.Vars() {
		parent[v] = v
	}
	for _, c := range j.cs {
		vars := c.Expr.Vars()
		for i := 1; i < len(vars); i++ {
			union(vars[0], vars[i])
		}
	}
	groups := map[string][]string{}
	for _, v := range j.Vars() {
		r := find(v)
		groups[r] = append(groups[r], v)
	}
	out := make([][]string, 0, len(groups))
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, k int) bool { return out[i][0] < out[k][0] })
	return out
}

// Independent reports whether variables a and b are syntactically
// independent in j (no chain of constraints links them).
func (j Conjunction) Independent(a, b string) bool {
	if a == b {
		return false
	}
	for _, g := range j.IndependentGroups() {
		inA, inB := false, false
		for _, v := range g {
			if v == a {
				inA = true
			}
			if v == b {
				inB = true
			}
		}
		if inA && inB {
			return false
		}
	}
	return true
}

// FactorByGroups splits j into one conjunction per independent group
// (ground constraints — no variables — are attached to the first group,
// or returned as a trailing conjunction when there are no variables).
// The conjunction of the factors is equivalent to j.
func (j Conjunction) FactorByGroups() []Conjunction {
	groups := j.IndependentGroups()
	if len(groups) == 0 {
		return []Conjunction{j}
	}
	idx := map[string]int{}
	for gi, g := range groups {
		for _, v := range g {
			idx[v] = gi
		}
	}
	buckets := make([][]Constraint, len(groups))
	for _, c := range j.cs {
		vars := c.Expr.Vars()
		if len(vars) == 0 {
			buckets[0] = append(buckets[0], c)
			continue
		}
		gi := idx[vars[0]]
		buckets[gi] = append(buckets[gi], c)
	}
	out := make([]Conjunction, len(groups))
	for i, b := range buckets {
		out[i] = Conjunction{cs: b}
	}
	return out
}
