package constraint

import "cdb/internal/rational"

// This file implements complementation of conjunctions into disjunctive
// normal form. It is the engine behind CQA's difference operator: the
// constraint part of a tuple difference t1 - t2 is  φ(t1) ∧ ¬φ(t2), which
// expands into a finite union of constraint tuples (the closure principle:
// the output is again representable in the input's constraint class).

// Disjunction is a finite disjunction of conjunctions (DNF). The empty
// disjunction denotes "false".
type Disjunction []Conjunction

// ComplementInto returns base ∧ ¬j as a disjunction of satisfiable
// conjunctions.
//
// The expansion follows the standard "staircase" decomposition, which keeps
// the disjuncts pairwise disjoint: for j = c1 ∧ c2 ∧ ... ∧ cn,
//
//	¬j = ¬c1  ∨  (c1 ∧ ¬c2)  ∨  (c1 ∧ c2 ∧ ¬c3)  ∨ ...
//
// with each ¬ci itself a disjunction of at most two atomic constraints
// (two for equalities). Unsatisfiable disjuncts are pruned eagerly.
func ComplementInto(base Conjunction, j Conjunction) Disjunction {
	return complementInto(base, j, false, nil)
}

// ComplementIntoWith is ComplementInto with the eager pruning's
// satisfiability decisions routed through sat (nil = raw Fourier-Motzkin).
// The pruning is the dominant cost of the difference operator, which is why
// it is the main consumer of the memoized engine.
func ComplementIntoWith(base Conjunction, j Conjunction, sat SatFunc) Disjunction {
	return complementInto(base, j, false, sat)
}

// complementInto implements ComplementInto; lazyPrune skips the eager
// satisfiability pruning (DESIGN.md ablation; production always prunes).
func complementInto(base Conjunction, j Conjunction, lazyPrune bool, sat SatFunc) Disjunction {
	if !lazyPrune && !base.SatisfiableWith(sat) {
		return nil
	}
	cs := j.Constraints()
	var out Disjunction
	prefix := base
	for _, c := range cs {
		for _, neg := range c.Complement() {
			cand := prefix.With(neg)
			if lazyPrune || cand.SatisfiableWith(sat) {
				out = append(out, cand)
			}
		}
		prefix = prefix.With(c)
		if !lazyPrune && !prefix.SatisfiableWith(sat) {
			// base already entails ¬(remaining prefix); nothing further to
			// subtract from.
			break
		}
	}
	return out
}

// Subtract returns the difference j - k as a disjunction of satisfiable
// conjunctions: assignments satisfying j but not k.
func Subtract(j, k Conjunction) Disjunction {
	return ComplementInto(j, k)
}

// SubtractLazy is Subtract without the eager per-disjunct satisfiability
// pruning: the result may contain unsatisfiable disjuncts that downstream
// consumers must filter. It exists only for the DESIGN.md ablation
// benchmark; production paths always prune eagerly.
func SubtractLazy(j, k Conjunction) Disjunction {
	return complementInto(j, k, true, nil)
}

// SubtractAll returns j minus every conjunction in ks. The result is a
// disjunction of satisfiable conjunctions covering exactly the assignments
// in j and in none of the ks.
func SubtractAll(j Conjunction, ks []Conjunction) Disjunction {
	return SubtractAllWith(j, ks, nil)
}

// SubtractAllWith is SubtractAll with every satisfiability decision routed
// through sat (nil = raw Fourier-Motzkin).
func SubtractAllWith(j Conjunction, ks []Conjunction, sat SatFunc) Disjunction {
	work := Disjunction{j}
	for _, k := range ks {
		var next Disjunction
		for _, piece := range work {
			next = append(next, ComplementIntoWith(piece, k, sat)...)
		}
		work = next
		if len(work) == 0 {
			return nil
		}
	}
	return work
}

// SubtractAllScoped is SubtractAllWith with every satisfiability decision
// replaced by scoped(extras), where extras lists the atoms accumulated on
// top of j by the staircase so far (negations emitted into the candidate
// disjunct plus the prefix atoms of already-processed subtrahends). The
// conjunction under decision is always j ∧ extras; callers that can
// decide that conjunction from j's shape plus the extra atoms alone (the
// vector fast path decides it by clipping j's cached polygon) avoid
// rebuilding and re-canonicalising the conjunction per decision. The
// emitted disjuncts and their order are exactly those of SubtractAllWith
// whenever scoped agrees with the sat oracle.
func SubtractAllScoped(j Conjunction, ks []Conjunction, scoped func(extras []Constraint) bool) Disjunction {
	type piece struct {
		con    Conjunction
		extras []Constraint
	}
	work := []piece{{con: j}}
	for _, k := range ks {
		var next []piece
		for _, p := range work {
			if !scoped(p.extras) {
				continue
			}
			prefix, pext := p.con, p.extras
			for _, c := range k.Constraints() {
				for _, neg := range c.Complement() {
					ext := appendExtra(pext, neg)
					if scoped(ext) {
						next = append(next, piece{con: prefix.With(neg), extras: ext})
					}
				}
				prefix = prefix.With(c)
				pext = appendExtra(pext, c)
				if !scoped(pext) {
					break
				}
			}
		}
		work = next
		if len(work) == 0 {
			return nil
		}
	}
	out := make(Disjunction, len(work))
	for i, p := range work {
		out[i] = p.con
	}
	return out
}

// appendExtra appends with a fresh backing array: staircase pieces fan out
// from shared prefixes, so in-place append would alias between siblings.
func appendExtra(xs []Constraint, c Constraint) []Constraint {
	out := make([]Constraint, len(xs)+1)
	copy(out, xs)
	out[len(xs)] = c
	return out
}

// IsSatisfiable reports whether any disjunct is satisfiable.
func (d Disjunction) IsSatisfiable() bool {
	for _, j := range d {
		if j.IsSatisfiable() {
			return true
		}
	}
	return false
}

// Holds evaluates the disjunction under the assignment: true if any
// disjunct holds.
func (d Disjunction) Holds(assign map[string]rational.Rat) (bool, error) {
	for _, j := range d {
		ok, err := j.Holds(assign)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
