package constraint

import "cdb/internal/rational"

// This file implements complementation of conjunctions into disjunctive
// normal form. It is the engine behind CQA's difference operator: the
// constraint part of a tuple difference t1 - t2 is  φ(t1) ∧ ¬φ(t2), which
// expands into a finite union of constraint tuples (the closure principle:
// the output is again representable in the input's constraint class).

// Disjunction is a finite disjunction of conjunctions (DNF). The empty
// disjunction denotes "false".
type Disjunction []Conjunction

// ComplementInto returns base ∧ ¬j as a disjunction of satisfiable
// conjunctions.
//
// The expansion follows the standard "staircase" decomposition, which keeps
// the disjuncts pairwise disjoint: for j = c1 ∧ c2 ∧ ... ∧ cn,
//
//	¬j = ¬c1  ∨  (c1 ∧ ¬c2)  ∨  (c1 ∧ c2 ∧ ¬c3)  ∨ ...
//
// with each ¬ci itself a disjunction of at most two atomic constraints
// (two for equalities). Unsatisfiable disjuncts are pruned eagerly.
func ComplementInto(base Conjunction, j Conjunction) Disjunction {
	return complementInto(base, j, false, nil)
}

// ComplementIntoWith is ComplementInto with the eager pruning's
// satisfiability decisions routed through sat (nil = raw Fourier-Motzkin).
// The pruning is the dominant cost of the difference operator, which is why
// it is the main consumer of the memoized engine.
func ComplementIntoWith(base Conjunction, j Conjunction, sat SatFunc) Disjunction {
	return complementInto(base, j, false, sat)
}

// complementInto implements ComplementInto; lazyPrune skips the eager
// satisfiability pruning (DESIGN.md ablation; production always prunes).
func complementInto(base Conjunction, j Conjunction, lazyPrune bool, sat SatFunc) Disjunction {
	if !lazyPrune && !base.SatisfiableWith(sat) {
		return nil
	}
	cs := j.Constraints()
	var out Disjunction
	prefix := base
	for _, c := range cs {
		for _, neg := range c.Complement() {
			cand := prefix.With(neg)
			if lazyPrune || cand.SatisfiableWith(sat) {
				out = append(out, cand)
			}
		}
		prefix = prefix.With(c)
		if !lazyPrune && !prefix.SatisfiableWith(sat) {
			// base already entails ¬(remaining prefix); nothing further to
			// subtract from.
			break
		}
	}
	return out
}

// Subtract returns the difference j - k as a disjunction of satisfiable
// conjunctions: assignments satisfying j but not k.
func Subtract(j, k Conjunction) Disjunction {
	return ComplementInto(j, k)
}

// SubtractLazy is Subtract without the eager per-disjunct satisfiability
// pruning: the result may contain unsatisfiable disjuncts that downstream
// consumers must filter. It exists only for the DESIGN.md ablation
// benchmark; production paths always prune eagerly.
func SubtractLazy(j, k Conjunction) Disjunction {
	return complementInto(j, k, true, nil)
}

// SubtractAll returns j minus every conjunction in ks. The result is a
// disjunction of satisfiable conjunctions covering exactly the assignments
// in j and in none of the ks.
func SubtractAll(j Conjunction, ks []Conjunction) Disjunction {
	return SubtractAllWith(j, ks, nil)
}

// SubtractAllWith is SubtractAll with every satisfiability decision routed
// through sat (nil = raw Fourier-Motzkin).
func SubtractAllWith(j Conjunction, ks []Conjunction, sat SatFunc) Disjunction {
	work := Disjunction{j}
	for _, k := range ks {
		var next Disjunction
		for _, piece := range work {
			next = append(next, ComplementIntoWith(piece, k, sat)...)
		}
		work = next
		if len(work) == 0 {
			return nil
		}
	}
	return work
}

// IsSatisfiable reports whether any disjunct is satisfiable.
func (d Disjunction) IsSatisfiable() bool {
	for _, j := range d {
		if j.IsSatisfiable() {
			return true
		}
	}
	return false
}

// Holds evaluates the disjunction under the assignment: true if any
// disjunct holds.
func (d Disjunction) Holds(assign map[string]rational.Rat) (bool, error) {
	for _, j := range d {
		ok, err := j.Holds(assign)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
