package constraint_test

// Property test (ISSUE 4 satellite): the simplex-based FeasiblePoint and
// the Fourier-Motzkin IsSatisfiable are two independent decision
// procedures over the same polyhedra — on closed systems (Le/Eq only)
// they must agree exactly, and on arbitrary systems satisfiability must
// imply closure feasibility. Randomised, seeded, 250 cases each.

import (
	"math/rand"
	"testing"

	"cdb/internal/constraint"
	"cdb/internal/datagen"
	"cdb/internal/rational"
)

// closedConjunction draws a random conjunction and closes it: every strict
// inequality weakens to its closure, where simplex and Fourier-Motzkin
// decide the exact same question.
func closedConjunction(rng *rand.Rand, vars []string) constraint.Conjunction {
	j := datagen.RandomConjunction(rng, vars)
	cs := j.Constraints()
	out := make([]constraint.Constraint, 0, len(cs))
	for _, c := range cs {
		if c.Op == constraint.Lt {
			c = constraint.Constraint{Expr: c.Expr, Op: constraint.Le}
		}
		out = append(out, c)
	}
	return constraint.And(out...)
}

func TestSimplexAgreesWithFourierMotzkin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vars := []string{"x", "y", "z"}
	sat, unsat := 0, 0
	before := constraint.DecisionCount()
	for i := 0; i < 250; i++ {
		j := closedConjunction(rng, vars)
		fm := j.IsSatisfiable()
		p, simplex := constraint.FeasiblePoint(j)
		if fm != simplex {
			t.Fatalf("case %d: decision procedures disagree on %s: fourier-motzkin=%v simplex=%v",
				i, j, fm, simplex)
		}
		if simplex {
			sat++
			// The point simplex returns must actually satisfy the system —
			// checked by direct substitution, no third procedure involved.
			for _, c := range j.Constraints() {
				for _, v := range c.Expr.Vars() {
					if _, ok := p[v]; !ok {
						p[v] = rational.Zero
					}
				}
			}
			holds, err := j.Holds(p)
			if err != nil {
				t.Fatalf("case %d: evaluating witness point: %v", i, err)
			}
			if !holds {
				t.Fatalf("case %d: simplex witness %v does not satisfy %s", i, p, j)
			}
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate draw: sat=%d unsat=%d — property is vacuous", sat, unsat)
	}
	after := constraint.DecisionCount()
	if after < before {
		t.Fatalf("DecisionCount went backwards: %d -> %d", before, after)
	}
	if after == before {
		t.Fatal("DecisionCount did not advance across 250 satisfiability decisions")
	}
}

// TestSimplexClosureNecessary: on arbitrary (possibly strict) systems the
// exact decision implies closure feasibility — one direction only; the
// x < 0 ∧ x >= 0 trap shows the converse is false.
func TestSimplexClosureNecessary(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	vars := []string{"x", "y"}
	for i := 0; i < 250; i++ {
		j := datagen.RandomConjunction(rng, vars)
		if j.IsSatisfiable() {
			if _, ok := constraint.FeasiblePoint(j); !ok {
				t.Fatalf("case %d: %s is satisfiable but simplex finds its closure infeasible", i, j)
			}
		}
	}
}

// TestDecisionCountMonotone pins the contract the benchmarks read deltas
// against: concurrent decisions only ever increase the counter.
func TestDecisionCountMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	prev := constraint.DecisionCount()
	for i := 0; i < 50; i++ {
		j := datagen.RandomConjunction(rng, []string{"x", "y"})
		_ = j.IsSatisfiable()
		cur := constraint.DecisionCount()
		if cur < prev {
			t.Fatalf("DecisionCount decreased: %d -> %d", prev, cur)
		}
		prev = cur
	}
}
