package constraint

import (
	"sort"

	"cdb/internal/rational"
)

// This file implements the canonical form of constraint tuples — the shared
// representation contract that every CQA operator emits (see package cqa) —
// and the 64-bit structural fingerprint computed over it.
//
// Canonical form matters for the same reason it mattered in the original
// CQA/CDB system: without normalisation and simplification the finite
// representations that the closure principle (paper §2.5) guarantees bloat
// from operator to operator, and the same satisfiability questions get
// re-proved endlessly. A canonical Conjunction is:
//
//   - atom-canonical: every constraint is scaled so its lexicographically
//     first variable coefficient has absolute value 1 (sign +1 for
//     equalities), per Constraint.Canonical;
//   - trivial-free: trivially true atoms are dropped; a trivially false
//     atom collapses the whole conjunction to False() (whose 0 < 0
//     sentinel is itself canonical and survives Canon unchanged);
//   - folded: parallel half-planes (same canonical variable part, same
//     inequality direction) are folded keeping only the tighter bound, and
//     duplicate atoms are removed;
//   - sorted: atoms are in a stable total order, so two conjunctions built
//     from the same atoms in any order canonicalise identically.
//
// The fingerprint is an FNV-1a hash over the canonical atoms. Equal
// fingerprints make equal canonical forms overwhelmingly likely but not
// certain; callers that must be exact (the sat-cache, Normalize) verify
// with EqualCanonical on fingerprint hits.

// Canonical returns c scaled so that its first (lexicographically smallest)
// variable coefficient has absolute value 1; for equalities the sign is also
// normalised to +1. Trivial constraints are returned unchanged. Two
// constraints denote the same half-space / hyperplane iff their canonical
// forms are Equal (modulo Eq sign, handled here).
func (c Constraint) Canonical() Constraint {
	ts := c.Expr.Terms()
	if len(ts) == 0 {
		return c
	}
	lead := ts[0].Coef
	var k rational.Rat
	if c.Op == Eq {
		k = lead.Inv() // may flip sign: fine for equalities
	} else {
		k = lead.Abs().Inv() // positive scale only: preserves inequality direction
	}
	if k.Equal(rational.One) {
		return c
	}
	return Constraint{Expr: c.Expr.Scale(k), Op: c.Op}
}

// Canon returns the canonical form of j: an equivalent conjunction with
// atom-canonical, trivial-free, folded, stably sorted constraints (see the
// file comment). Canon is idempotent, never grows the conjunction, and is
// cheap — it does no satisfiability reasoning, so a canonical conjunction
// can still be unsatisfiable (except for trivially false atoms, which
// collapse to False()).
//
// The result is flagged internally, so Canon on an already-canonical
// conjunction returns it unchanged in O(1); every constructor that could
// perturb the form (With, Merge, Substitute, ...) clears the flag.
func (j Conjunction) Canon() Conjunction {
	if j.canon {
		return j
	}
	// Pass 1: canonicalise atoms, drop trivially true, collapse on
	// trivially false.
	atoms := make([]Constraint, 0, len(j.cs))
	for _, c := range j.cs {
		if triv, val := c.IsTrivial(); triv {
			if val {
				continue
			}
			return False()
		}
		atoms = append(atoms, c.Canonical())
	}
	// Pass 2: dedupe equalities exactly; fold parallel inequalities
	// (identical canonical variable part) keeping only the tighter bound.
	// Opposite-direction half-planes have different canonical variable
	// parts (the inequality scale is positive), so they are never folded.
	kept := make([]Constraint, 0, len(atoms))
	group := map[string]int{} // canonical group key -> index into kept
	for _, c := range atoms {
		varPart := Expr{terms: c.Expr.terms}
		if c.Op == Eq {
			key := "=|" + varPart.String() + "|" + c.Expr.c.Key()
			if _, dup := group[key]; dup {
				continue
			}
			group[key] = len(kept)
			kept = append(kept, c)
			continue
		}
		key := varPart.String()
		i, ok := group[key]
		if !ok {
			group[key] = len(kept)
			kept = append(kept, c)
			continue
		}
		// Same variable part: varPart + k OP 0 is tighter when k is larger;
		// at equal k the strict inequality is tighter.
		prev := kept[i]
		pk, ck := prev.Expr.ConstTerm(), c.Expr.ConstTerm()
		if cmp := ck.Cmp(pk); cmp > 0 || (cmp == 0 && c.Op == Lt && prev.Op == Le) {
			kept[i] = c
		}
	}
	// Pass 3: stable total order.
	sort.Slice(kept, func(a, b int) bool { return lessConstraint(kept[a], kept[b]) })
	return Conjunction{cs: kept, canon: true, fp: fingerprintOf(kept), env: &envBox{}, aux: &auxBox{}}
}

// lessConstraint is the stable total order of canonical atoms: by operator,
// then by rendered expression. Exact ties are identical atoms.
func lessConstraint(a, b Constraint) bool {
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	return a.Expr.String() < b.Expr.String()
}

// Fingerprint returns the 64-bit structural hash of j's canonical form.
// Equivalent-up-to-canonicalisation conjunctions (reordered atoms, scaled
// coefficients, redundant parallel bounds) have equal fingerprints; distinct
// canonical forms collide only with hash probability (~2^-64). Use
// EqualCanonical to verify a fingerprint match exactly.
func (j Conjunction) Fingerprint() uint64 {
	if j.canon {
		return j.fp
	}
	return j.Canon().fp
}

// EqualCanonical reports whether j and k have identical canonical forms —
// the exact predicate behind a Fingerprint match. Canonically equal
// conjunctions are equivalent; the converse does not hold (use Equivalent
// for the semantic comparison).
func (j Conjunction) EqualCanonical(k Conjunction) bool {
	cj, ck := j.Canon(), k.Canon()
	return equalAtoms(cj.cs, ck.cs)
}

// FNV-1a, 64 bit.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fingerprintOf hashes a slice of (canonical) constraints. Every field is
// terminated with an out-of-band byte so adjacent fields cannot alias.
func fingerprintOf(cs []Constraint) uint64 {
	h := uint64(fnvOffset64)
	field := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= fnvPrime64
		}
		h ^= 0xff
		h *= fnvPrime64
	}
	for _, c := range cs {
		h ^= uint64(c.Op) + 1
		h *= fnvPrime64
		for _, t := range c.Expr.Terms() {
			field(t.Var)
			field(t.Coef.Key())
		}
		field(c.Expr.ConstTerm().Key())
	}
	return h
}
