package constraint

import (
	"testing"

	"cdb/internal/rational"
)

func TestNewNormalisesOperators(t *testing.T) {
	x, three := Var("x"), ConstInt(3)
	tests := []struct {
		op   string
		want string
	}{
		{"=", "x = 3"},
		{"==", "x = 3"},
		{"<=", "x <= 3"},
		{"<", "x < 3"},
		{">=", "-x <= -3"},
		{">", "-x < -3"},
	}
	for _, tt := range tests {
		c, err := New(x, tt.op, three)
		if err != nil {
			t.Fatalf("New(%q): %v", tt.op, err)
		}
		if got := c.String(); got != tt.want {
			t.Errorf("New(%q) = %q, want %q", tt.op, got, tt.want)
		}
	}
	if _, err := New(x, "!=", three); err == nil {
		t.Error("New(!=) should fail (not convex)")
	}
}

func TestConstraintHolds(t *testing.T) {
	c := MustNew(Var("x").Add(Var("y")), "<=", ConstInt(5))
	at := func(x, y string) bool {
		ok, err := c.Holds(map[string]rational.Rat{"x": q(x), "y": q(y)})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !at("2", "3") { // boundary of <=
		t.Error("2+3 <= 5 failed")
	}
	if at("3", "3") {
		t.Error("3+3 <= 5 held")
	}
	lt := MustNew(Var("x"), "<", ConstInt(0))
	if ok, _ := lt.Holds(map[string]rational.Rat{"x": rational.Zero}); ok {
		t.Error("0 < 0 held")
	}
}

func TestIsTrivial(t *testing.T) {
	tests := []struct {
		c             Constraint
		trivial, want bool
	}{
		{Constraint{Expr: ConstInt(0), Op: Eq}, true, true},
		{Constraint{Expr: ConstInt(1), Op: Eq}, true, false},
		{Constraint{Expr: ConstInt(-1), Op: Le}, true, true},
		{Constraint{Expr: ConstInt(0), Op: Le}, true, true},
		{Constraint{Expr: ConstInt(0), Op: Lt}, true, false},
		{Constraint{Expr: Var("x"), Op: Le}, false, false},
	}
	for i, tt := range tests {
		triv, val := tt.c.IsTrivial()
		if triv != tt.trivial || (triv && val != tt.want) {
			t.Errorf("case %d: (%v,%v)", i, triv, val)
		}
	}
}

func TestComplement(t *testing.T) {
	pt := func(x string) map[string]rational.Rat {
		return map[string]rational.Rat{"x": q(x)}
	}
	for _, c := range []Constraint{
		LeConst("x", q("2")),
		LtConst("x", q("2")),
		EqConst("x", q("2")),
	} {
		comp := c.Complement()
		for _, x := range []string{"-10", "0", "2", "3", "17/8"} {
			orig, _ := c.Holds(pt(x))
			negHolds := false
			for _, n := range comp {
				if ok, _ := n.Holds(pt(x)); ok {
					negHolds = true
				}
			}
			if orig == negHolds {
				t.Errorf("%s: complement not exclusive/exhaustive at x=%s", c, x)
			}
		}
	}
}

func TestCanonicalKey(t *testing.T) {
	// 2x <= 4 and x <= 2 denote the same half plane.
	a := MustNew(Var("x").Scale(q("2")), "<=", ConstInt(4))
	b := MustNew(Var("x"), "<=", ConstInt(2))
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	// x <= 2 and x >= 2 must differ.
	c := MustNew(Var("x"), ">=", ConstInt(2))
	if b.Key() == c.Key() {
		t.Error("<= and >= share a key")
	}
	// Equalities: x = 2 and -x = -2 coincide.
	d := MustNew(Var("x").Neg(), "=", ConstInt(-2))
	e := MustNew(Var("x"), "=", ConstInt(2))
	if d.Key() != e.Key() {
		t.Errorf("eq keys differ: %q vs %q", d.Key(), e.Key())
	}
	// <= and < with the same hyperplane must differ.
	f := MustNew(Var("x"), "<", ConstInt(2))
	if b.Key() == f.Key() {
		t.Error("<= and < share a key")
	}
}

func TestConstraintSubstituteRename(t *testing.T) {
	c := MustNew(Var("x").Add(Var("y")), "<=", ConstInt(3))
	s := c.Substitute("y", ConstInt(1))
	if got := s.String(); got != "x <= 2" {
		t.Errorf("got %q", got)
	}
	r := c.Rename("y", "t")
	if got := r.String(); got != "t + x <= 3" {
		t.Errorf("got %q", got)
	}
}
