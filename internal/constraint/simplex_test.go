package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

func TestSimplexSimpleMax(t *testing.T) {
	// max x+y s.t. x<=2, y<=3, x,y>=0  ->  5 at (2,3).
	j := box("x", "0", "2").Merge(box("y", "0", "3"))
	r := Maximize(j, Var("x").Add(Var("y")))
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !r.Value.Equal(q("5")) {
		t.Errorf("value = %s, want 5", r.Value)
	}
	if !r.Point["x"].Equal(q("2")) || !r.Point["y"].Equal(q("3")) {
		t.Errorf("point = %v", r.Point)
	}
}

func TestSimplexMin(t *testing.T) {
	j := box("x", "-3", "4")
	r := Minimize(j, Var("x"))
	if r.Status != Optimal || !r.Value.Equal(q("-3")) {
		t.Errorf("min x = %v %s", r.Status, r.Value)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// x >= 5 forces phase 1 (negative b in <= form). min x = 5.
	j := And(GeConst("x", q("5")), LeConst("x", q("9")))
	r := Minimize(j, Var("x"))
	if r.Status != Optimal || !r.Value.Equal(q("5")) {
		t.Errorf("got %v %s", r.Status, r.Value)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	j := And(LeConst("x", q("0")), GeConst("x", q("1")))
	r := Maximize(j, Var("x"))
	if r.Status != Infeasible {
		t.Errorf("status = %v", r.Status)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	j := And(GeConst("x", q("0")))
	r := Maximize(j, Var("x"))
	if r.Status != Unbounded {
		t.Errorf("status = %v", r.Status)
	}
	// But minimisation is bounded.
	r2 := Minimize(j, Var("x"))
	if r2.Status != Optimal || !r2.Value.IsZero() {
		t.Errorf("min over x>=0: %v %s", r2.Status, r2.Value)
	}
}

func TestSimplexWithEqualities(t *testing.T) {
	// x + y = 10, x - y = 2  ->  unique point (6, 4); any objective optimal there.
	j := And(
		MustNew(Var("x").Add(Var("y")), "=", ConstInt(10)),
		MustNew(Var("x").Sub(Var("y")), "=", ConstInt(2)),
	)
	r := Maximize(j, Var("x").Scale(q("3")).Add(Var("y")))
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !r.Point["x"].Equal(q("6")) || !r.Point["y"].Equal(q("4")) {
		t.Errorf("point = %v", r.Point)
	}
	if !r.Value.Equal(q("22")) {
		t.Errorf("value = %s", r.Value)
	}
}

func TestSimplexFractionalVertex(t *testing.T) {
	// max y s.t. y <= x/2, y <= 3 - x  ->  vertex at x=2, y=1.
	j := And(
		MustNew(Var("y"), "<=", Var("x").Scale(q("1/2"))),
		MustNew(Var("y"), "<=", ConstInt(3).Sub(Var("x"))),
		GeConst("y", q("0")),
	)
	r := Maximize(j, Var("y"))
	if r.Status != Optimal || !r.Value.Equal(q("1")) {
		t.Errorf("got %v %s (point %v)", r.Status, r.Value, r.Point)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Degenerate vertex: many constraints meeting at origin. Bland's rule
	// must terminate.
	j := And(
		GeConst("x", q("0")), GeConst("y", q("0")),
		MustNew(Var("x").Add(Var("y")), ">=", ConstInt(0)),
		MustNew(Var("x").Sub(Var("y")), ">=", ConstInt(0)),
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(4)),
	)
	r := Maximize(j, Var("y"))
	if r.Status != Optimal || !r.Value.Equal(q("2")) {
		t.Errorf("got %v %s", r.Status, r.Value)
	}
}

func TestFeasiblePoint(t *testing.T) {
	j := And(GeConst("x", q("3")), LeConst("x", q("3")))
	pt, ok := FeasiblePoint(j)
	if !ok || !pt["x"].Equal(q("3")) {
		t.Errorf("pt = %v ok = %v", pt, ok)
	}
	if _, ok := FeasiblePoint(box("x", "2", "1")); ok {
		t.Error("feasible point of empty box")
	}
}

// TestQuickSimplexAgreesWithFM cross-checks the two independent decision
// procedures: for random systems, simplex feasibility of the closure must
// match Fourier-Motzkin satisfiability of the closure, and the extrema of
// each variable must match VarBounds.
func TestQuickSimplexAgreesWithFM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 150; iter++ {
		var cs []Constraint
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			e := Var("x").Scale(rational.FromInt(int64(rng.Intn(7) - 3))).
				Add(Var("y").Scale(rational.FromInt(int64(rng.Intn(7) - 3)))).
				AddConst(rational.New(int64(rng.Intn(21)-10), int64(1+rng.Intn(3))))
			op := []Op{Le, Eq}[rng.Intn(2)] // closed system: closure == itself
			cs = append(cs, Constraint{Expr: e, Op: op})
		}
		j := And(cs...)
		fmSat := j.IsSatisfiable()
		_, spSat := FeasiblePoint(j)
		if fmSat != spSat {
			t.Fatalf("iter %d: FM=%v simplex=%v for %s", iter, fmSat, spSat, j)
		}
		if !fmSat {
			continue
		}
		for _, v := range []string{"x", "y"} {
			iv, ok := j.VarBounds(v)
			if !ok {
				t.Fatalf("iter %d: VarBounds unsat but FM sat", iter)
			}
			maxR := Maximize(j, Var(v))
			minR := Minimize(j, Var(v))
			if iv.HasUpper != (maxR.Status == Optimal) {
				t.Fatalf("iter %d %s: FM upper=%v simplex=%v for %s", iter, v, iv.HasUpper, maxR.Status, j)
			}
			if iv.HasUpper && !iv.Upper.Equal(maxR.Value) {
				t.Fatalf("iter %d %s: FM upper=%s simplex=%s for %s", iter, v, iv.Upper, maxR.Value, j)
			}
			if iv.HasLower != (minR.Status == Optimal) {
				t.Fatalf("iter %d %s: FM lower=%v simplex=%v for %s", iter, v, iv.HasLower, minR.Status, j)
			}
			if iv.HasLower && !iv.Lower.Equal(minR.Value) {
				t.Fatalf("iter %d %s: FM lower=%s simplex=%s for %s", iter, v, iv.Lower, minR.Value, j)
			}
		}
	}
}

// TestQuickSimplexPointFeasible verifies that returned optimal points
// actually satisfy the system.
func TestQuickSimplexPointFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		var cs []Constraint
		for i := 0; i < 3; i++ {
			e := Var("x").Scale(rational.FromInt(int64(rng.Intn(5) - 2))).
				Add(Var("y").Scale(rational.FromInt(int64(rng.Intn(5) - 2)))).
				AddConst(rational.FromInt(int64(rng.Intn(9) - 4)))
			cs = append(cs, Constraint{Expr: e, Op: Le})
		}
		// Bound the region so optima exist.
		j := And(cs...).Merge(box("x", "-10", "10")).Merge(box("y", "-10", "10"))
		r := Maximize(j, Var("x").Add(Var("y").Scale(q("2"))))
		if r.Status == Infeasible {
			if j.IsSatisfiable() {
				t.Fatalf("iter %d: simplex infeasible, FM satisfiable: %s", iter, j)
			}
			continue
		}
		if r.Status != Optimal {
			t.Fatalf("iter %d: status %v on bounded region", iter, r.Status)
		}
		ok, err := j.Holds(r.Point)
		if err != nil || !ok {
			t.Fatalf("iter %d: optimal point %v violates %s (err %v)", iter, r.Point, j, err)
		}
	}
}

func BenchmarkSatisfiability(b *testing.B) {
	j := And(
		GeConst("x", q("0")), GeConst("y", q("0")), GeConst("t", q("0")),
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(10)),
		MustNew(Var("x").Sub(Var("t")), "<=", ConstInt(2)),
		MustNew(Var("y").Add(Var("t")), "<=", ConstInt(8)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !j.IsSatisfiable() {
			b.Fatal("unsat")
		}
	}
}

func BenchmarkEliminate(b *testing.B) {
	j := And(
		GeConst("x", q("0")), GeConst("y", q("0")), GeConst("t", q("0")),
		MustNew(Var("x").Add(Var("y")).Add(Var("t")), "<=", ConstInt(10)),
		MustNew(Var("x").Sub(Var("y")), "<=", ConstInt(2)),
		MustNew(Var("y").Sub(Var("t")), "<=", ConstInt(3)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = j.Eliminate("y", "t")
	}
}

func BenchmarkSimplexMaximize(b *testing.B) {
	j := And(
		GeConst("x", q("0")), GeConst("y", q("0")),
		MustNew(Var("x").Add(Var("y")), "<=", ConstInt(10)),
		MustNew(Var("x").Scale(q("2")).Add(Var("y")), "<=", ConstInt(14)),
	)
	obj := Var("x").Add(Var("y").Scale(q("3")))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := Maximize(j, obj); r.Status != Optimal {
			b.Fatal(r.Status)
		}
	}
}
