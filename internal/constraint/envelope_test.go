package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

// intervalContains reports whether outer ⊇ inner as sets of rationals.
func intervalContains(outer, inner Interval) bool {
	if inner.IsEmpty() {
		return true
	}
	if outer.HasLower {
		if !inner.HasLower {
			return false
		}
		c := outer.Lower.Cmp(inner.Lower)
		if c > 0 || (c == 0 && outer.LowerOpen && !inner.LowerOpen) {
			return false
		}
	}
	if outer.HasUpper {
		if !inner.HasUpper {
			return false
		}
		c := outer.Upper.Cmp(inner.Upper)
		if c < 0 || (c == 0 && outer.UpperOpen && !inner.UpperOpen) {
			return false
		}
	}
	return true
}

// TestEnvelopeDerivation pins how the envelope reads single-variable
// atoms and ignores everything else.
func TestEnvelopeDerivation(t *testing.T) {
	two, five := rational.FromInt(2), rational.FromInt(5)
	cases := []struct {
		name string
		j    Conjunction
		v    string
		want func(iv Interval, ok bool) bool
	}{
		{"two-sided", And(GeConst("x", two), LeConst("x", five)), "x",
			func(iv Interval, ok bool) bool {
				return ok && iv.HasLower && iv.HasUpper &&
					iv.Lower.Equal(two) && iv.Upper.Equal(five) &&
					!iv.LowerOpen && !iv.UpperOpen
			}},
		{"strict-upper", And(LtConst("x", five)), "x",
			func(iv Interval, ok bool) bool {
				return ok && !iv.HasLower && iv.HasUpper && iv.Upper.Equal(five) && iv.UpperOpen
			}},
		{"equality", And(EqConst("x", two)), "x",
			func(iv Interval, ok bool) bool {
				return ok && iv.IsPoint() && iv.Lower.Equal(two)
			}},
		{"unconstrained-var", And(GeConst("x", two)), "y",
			func(iv Interval, ok bool) bool { return !ok }},
		{"multi-var-atom-ignored",
			And(Constraint{Expr: Var("x").Add(Var("y")).Add(ConstInt(-3)), Op: Le}), "x",
			func(iv Interval, ok bool) bool { return !ok }},
	}
	for _, tc := range cases {
		iv, ok := tc.j.Envelope().Interval(tc.v)
		if !tc.want(iv, ok) {
			t.Errorf("%s: envelope interval for %q = %+v (ok=%v)", tc.name, tc.v, iv, ok)
		}
	}
}

// TestIntervalIntersects pins the endpoint semantics of the overlap test.
func TestIntervalIntersects(t *testing.T) {
	mk := func(lo, hi int64, loOpen, hiOpen bool) Interval {
		return Interval{
			Lower: rational.FromInt(lo), HasLower: true, LowerOpen: loOpen,
			Upper: rational.FromInt(hi), HasUpper: true, UpperOpen: hiOpen,
		}
	}
	unbounded := Interval{}
	cases := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"overlap", mk(1, 3, false, false), mk(2, 4, false, false), true},
		{"touching-closed", mk(1, 2, false, false), mk(2, 3, false, false), true},
		{"touching-open-left", mk(1, 2, false, true), mk(2, 3, false, false), false},
		{"touching-open-right", mk(1, 2, false, false), mk(2, 3, true, false), false},
		{"separated", mk(1, 2, false, false), mk(3, 4, false, false), false},
		{"unbounded-both", unbounded, mk(10, 20, false, false), true},
		{"empty-side", mk(3, 2, false, false), unbounded, false},
	}
	for _, tc := range cases {
		if got := tc.a.Intersects(tc.b); got != tc.want {
			t.Errorf("%s: Intersects = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.b.Intersects(tc.a); got != tc.want {
			t.Errorf("%s (flipped): Intersects = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestEnvelopeContainsExactBounds is the filter's soundness property: on
// random conjunctions, every envelope interval contains the exact
// Fourier-Motzkin projection (VarBounds) of that variable — the envelope
// over-approximates, never clips.
func TestEnvelopeContainsExactBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 400; i++ {
		j := randConj(rng).Canon()
		if !j.IsSatisfiable() {
			continue
		}
		env := j.Envelope()
		for _, v := range j.Vars() {
			exact, ok := j.VarBounds(v)
			if !ok {
				t.Fatalf("case %d: satisfiable conjunction with unsat VarBounds(%q): %s", i, v, j)
			}
			outer, bounded := env.Interval(v)
			if !bounded {
				continue // (-∞,∞) contains everything
			}
			if !intervalContains(outer, exact) {
				t.Errorf("case %d: envelope %+v does not contain exact bounds %+v for %q in %s",
					i, outer, exact, v, j)
			}
		}
	}
}

// TestEnvelopeDisjointImpliesUnsat is the filter's reject-side soundness:
// whenever two random conjunctions have disjoint envelopes on the shared
// variables, their merge must be unsatisfiable — a pruned pair is one the
// refine step would have rejected anyway.
func TestEnvelopeDisjointImpliesUnsat(t *testing.T) {
	vars := []string{"x", "y", "z"}
	rng := rand.New(rand.NewSource(37))
	disjoint := 0
	for i := 0; i < 600; i++ {
		a, b := randConj(rng).Canon(), randConj(rng).Canon()
		if !a.Envelope().Disjoint(b.Envelope(), vars) {
			continue
		}
		disjoint++
		if merged := a.Merge(b).Canon(); merged.IsSatisfiable() {
			t.Errorf("case %d: disjoint envelopes but satisfiable merge: %s AND %s", i, a, b)
		}
	}
	if disjoint == 0 {
		t.Fatal("no disjoint pairs generated; the property was never exercised")
	}
}

// TestEnvelopeMemoized checks that Canon attaches a shared envelope box:
// copies of a canonical conjunction share one lazily-computed envelope.
func TestEnvelopeMemoized(t *testing.T) {
	j := And(GeConst("x", rational.FromInt(1)), LeConst("x", rational.FromInt(9))).Canon()
	if j.env == nil {
		t.Fatal("Canon did not attach an envelope box")
	}
	cp := j
	_ = j.Envelope()
	if cp.env != j.env {
		t.Fatal("copy does not share the envelope box")
	}
	iv, ok := cp.Envelope().Interval("x")
	if !ok || !iv.HasLower || !iv.HasUpper {
		t.Fatalf("memoized envelope lost the bounds: %+v (ok=%v)", iv, ok)
	}
	// True and False are canonical constants with pre-attached boxes.
	if True().env == nil || False().env == nil {
		t.Error("True/False constants carry no envelope box")
	}
}
