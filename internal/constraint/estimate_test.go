package constraint

import (
	"math/rand"
	"testing"

	"cdb/internal/rational"
)

// randBoundedEnv builds a conjunction whose envelope carries a random
// mix of bounds on "x": none, one-sided, two-sided (possibly empty),
// open or closed, so the overlap counter sees every endpoint shape.
func randBoundedEnv(rng *rand.Rand) Envelope {
	var cs []Constraint
	if rng.Intn(6) > 0 { // 1-in-6 envelopes leave x unbounded
		lo := rational.FromInt(int64(rng.Intn(21) - 10))
		hi := rational.FromInt(int64(rng.Intn(21) - 10))
		switch rng.Intn(4) {
		case 0:
			cs = append(cs, GeConst("x", lo))
		case 1:
			cs = append(cs, LeConst("x", hi))
		case 2: // possibly empty when hi < lo
			if rng.Intn(2) == 0 {
				cs = append(cs, GeConst("x", lo))
			} else {
				cs = append(cs, GtConst("x", lo))
			}
			if rng.Intn(2) == 0 {
				cs = append(cs, LeConst("x", hi))
			} else {
				cs = append(cs, LtConst("x", hi))
			}
		case 3:
			cs = append(cs, EqConst("x", lo))
		}
	}
	if rng.Intn(3) == 0 { // unrelated bound on another variable
		cs = append(cs, GeConst("y", rational.FromInt(int64(rng.Intn(5)))))
	}
	return And(cs...).Envelope()
}

// TestAttrOverlapCountMatchesBruteForce checks the sort-and-search
// counter against the O(n·m) definition (Interval.Intersects semantics,
// missing interval = unbounded) on many random envelope sets.
func TestAttrOverlapCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	full := Interval{} // unbounded both ways
	for round := 0; round < 200; round++ {
		a := make([]Envelope, rng.Intn(12))
		b := make([]Envelope, rng.Intn(12))
		for i := range a {
			a[i] = randBoundedEnv(rng)
		}
		for i := range b {
			b[i] = randBoundedEnv(rng)
		}
		var want int64
		for _, ea := range a {
			ia, ok := ea.Interval("x")
			if !ok {
				ia = full
			}
			for _, eb := range b {
				ib, ok := eb.Interval("x")
				if !ok {
					ib = full
				}
				if ia.Intersects(ib) {
					want++
				}
			}
		}
		if got := AttrOverlapCount(a, b, "x"); got != want {
			t.Fatalf("round %d: AttrOverlapCount = %d, brute force = %d", round, got, want)
		}
	}
}

// TestAttrOverlapCountEndpoints pins the open-endpoint edge cases the
// epsilon encoding exists for: closed touch intersects, any open touch
// does not, empty intervals count nothing.
func TestAttrOverlapCountEndpoints(t *testing.T) {
	five := rational.FromInt(5)
	env := func(cs ...Constraint) []Envelope { return []Envelope{And(cs...).Envelope()} }
	cases := []struct {
		name string
		a, b []Envelope
		want int64
	}{
		{"closed-touch", env(LeConst("x", five)), env(GeConst("x", five)), 1},
		{"open-upper-touch", env(LtConst("x", five)), env(GeConst("x", five)), 0},
		{"open-lower-touch", env(LeConst("x", five)), env(GtConst("x", five)), 0},
		{"empty-side", env(GtConst("x", five), LtConst("x", five)), env(GeConst("x", five)), 0},
		{"point-point", env(EqConst("x", five)), env(EqConst("x", five)), 1},
		{"unbounded-vs-empty", env(), env(GtConst("x", five), LeConst("x", five)), 0},
	}
	for _, tc := range cases {
		if got := AttrOverlapCount(tc.a, tc.b, "x"); got != tc.want {
			t.Errorf("%s: AttrOverlapCount = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCountIntersecting checks the single-atom selectivity numerator,
// including the unbounded-envelope and empty-query conventions.
func TestCountIntersecting(t *testing.T) {
	envs := []Envelope{
		And(GeConst("x", rational.FromInt(0)), LeConst("x", rational.FromInt(4))).Envelope(),
		And(GeConst("x", rational.FromInt(10))).Envelope(),
		And().Envelope(), // unbounded: always intersects
	}
	_, iv, ok := AtomInterval(LeConst("x", rational.FromInt(5)))
	if !ok {
		t.Fatal("AtomInterval rejected a single-variable atom")
	}
	if got := CountIntersecting(envs, "x", iv); got != 2 {
		t.Errorf("CountIntersecting(x <= 5) = %d, want 2", got)
	}
	empty := Interval{HasLower: true, HasUpper: true,
		Lower: rational.FromInt(3), Upper: rational.FromInt(1)}
	if got := CountIntersecting(envs, "x", empty); got != 0 {
		t.Errorf("CountIntersecting(empty) = %d, want 0", got)
	}
}

// TestAtomInterval pins the per-operator interval derivation against the
// envelope's own reading of the same atoms, and the multi-variable
// rejection.
func TestAtomInterval(t *testing.T) {
	five := rational.FromInt(5)
	for _, c := range []Constraint{
		GeConst("x", five), GtConst("x", five), LeConst("x", five),
		LtConst("x", five), EqConst("x", five),
	} {
		v, iv, ok := AtomInterval(c)
		if !ok || v != "x" {
			t.Fatalf("AtomInterval(%v): v=%q ok=%v", c, v, ok)
		}
		want, wok := And(c).Envelope().Interval("x")
		same := wok &&
			iv.HasLower == want.HasLower && iv.HasUpper == want.HasUpper &&
			iv.LowerOpen == want.LowerOpen && iv.UpperOpen == want.UpperOpen &&
			(!iv.HasLower || iv.Lower.Equal(want.Lower)) &&
			(!iv.HasUpper || iv.Upper.Equal(want.Upper))
		if !same {
			t.Errorf("AtomInterval(%v) = %+v, envelope says %+v", c, iv, want)
		}
	}
	if _, _, ok := AtomInterval(Constraint{
		Expr: Var("x").Add(Var("y")), Op: Le,
	}); ok {
		t.Error("AtomInterval accepted a multi-variable atom")
	}
}
