package constraint

import (
	"testing"

	"cdb/internal/rational"
)

func q(s string) rational.Rat { return rational.MustParse(s) }

func TestNewExprMergesAndSorts(t *testing.T) {
	e := NewExpr([]Term{
		{Var: "y", Coef: q("2")},
		{Var: "x", Coef: q("1")},
		{Var: "y", Coef: q("-2")},
		{Var: "z", Coef: q("0")},
	}, q("5"))
	if got := e.String(); got != "x + 5" {
		t.Errorf("got %q", got)
	}
	if e.NumVars() != 1 {
		t.Errorf("NumVars = %d", e.NumVars())
	}
}

func TestExprAddSub(t *testing.T) {
	e := Var("x").Add(Var("y").Scale(q("2"))).AddConst(q("1"))
	f := Var("x").Scale(q("-1")).Add(Var("z"))
	sum := e.Add(f)
	if got := sum.String(); got != "2y + z + 1" {
		t.Errorf("sum = %q", got)
	}
	diff := e.Sub(e)
	if !diff.IsConst() || !diff.ConstTerm().IsZero() {
		t.Errorf("e-e = %q", diff)
	}
}

func TestExprScale(t *testing.T) {
	e := Var("x").Add(ConstInt(3))
	if got := e.Scale(q("2")).String(); got != "2x + 6" {
		t.Errorf("2*(x+3) = %q", got)
	}
	if !e.Scale(rational.Zero).IsConst() {
		t.Error("0*e not const")
	}
}

func TestExprCoefAndVars(t *testing.T) {
	e := NewExpr([]Term{{Var: "a", Coef: q("1")}, {Var: "c", Coef: q("-3")}}, q("0"))
	if !e.Coef("a").Equal(q("1")) || !e.Coef("c").Equal(q("-3")) || !e.Coef("b").IsZero() {
		t.Error("Coef wrong")
	}
	vars := e.Vars()
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "c" {
		t.Errorf("Vars = %v", vars)
	}
	if !e.HasVar("a") || e.HasVar("b") {
		t.Error("HasVar wrong")
	}
}

func TestExprEval(t *testing.T) {
	e := Var("x").Scale(q("2")).Add(Var("y").Neg()).AddConst(q("1"))
	v, err := e.Eval(map[string]rational.Rat{"x": q("3"), "y": q("4")})
	if err != nil || !v.Equal(q("3")) {
		t.Errorf("Eval = %v, %v", v, err)
	}
	if _, err := e.Eval(map[string]rational.Rat{"x": q("3")}); err == nil {
		t.Error("Eval with unbound var did not fail")
	}
}

func TestExprSubstitute(t *testing.T) {
	// x + 2y with y := x - 1  ->  3x - 2
	e := Var("x").Add(Var("y").Scale(q("2")))
	got := e.Substitute("y", Var("x").Sub(ConstInt(1)))
	if got.String() != "3x - 2" {
		t.Errorf("got %q", got)
	}
	// Substituting an absent variable is a no-op.
	if !e.Substitute("z", ConstInt(7)).Equal(e) {
		t.Error("substituting absent var changed expr")
	}
}

func TestExprRename(t *testing.T) {
	e := Var("x").Add(Var("y"))
	if got := e.Rename("x", "t").String(); got != "t + y" {
		t.Errorf("got %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("rename onto existing var did not panic")
		}
	}()
	e.Rename("x", "y")
}

func TestExprString(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{Expr{}, "0"},
		{ConstInt(-3), "-3"},
		{Var("x"), "x"},
		{Var("x").Neg(), "-x"},
		{Var("x").Scale(q("3/2")), "3/2x"},
		{Var("x").Sub(Var("y")), "x - y"},
		{Var("x").Add(ConstInt(-2)), "x - 2"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
