package rstar

import (
	"math/rand"
	"path/filepath"
	"testing"

	"cdb/internal/storage"
)

// TestTreeOnFilePager builds an R*-tree on a real file, closes it, reopens
// the file, and verifies the tree answers identically — the full
// disk-persistence integration path.
func TestTreeOnFilePager(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.cdb")
	pager, err := storage.OpenFilePager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(pager, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta := tree.MetaPage()
	rng := rand.New(rand.NewSource(31))
	ref := &brute{}
	for i := 0; i < 800; i++ {
		r := randRect(rng, 2, 1000, 50)
		if err := tree.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
		ref.add(r, int64(i))
	}
	q := Rect2(100, 100, 400, 400)
	before, err := tree.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if err := pager.Close(); err != nil {
		t.Fatal(err)
	}

	pager2, err := storage.OpenFilePager(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pager2.Close()
	tree2, err := Open(pager2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 800 {
		t.Errorf("reopened len = %d", tree2.Len())
	}
	after, err := tree2.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.search(q)
	if len(after) != len(want) || len(after) != len(before) {
		t.Errorf("results drifted: before %d, after %d, want %d", len(before), len(after), len(want))
	}
	for _, id := range after {
		if !want[id] {
			t.Errorf("spurious id %d after reopen", id)
		}
	}
	// The reopened tree stays writable.
	if err := tree2.Insert(Rect2(1, 1, 2, 2), 9999); err != nil {
		t.Fatal(err)
	}
	got, _ := tree2.Search(Rect2(1.5, 1.5, 1.5, 1.5))
	found := false
	for _, id := range got {
		if id == 9999 {
			found = true
		}
	}
	if !found {
		t.Error("insert after reopen lost")
	}
}

// TestTreeUnderBufferPool layers an LRU pool between the tree and the
// pager: queries must return the same results, and repeated queries must
// hit the cache (fewer reads on the underlying pager) — the cache-ablation
// counterpart to the paper's raw-access counting.
func TestTreeUnderBufferPool(t *testing.T) {
	under := storage.NewMemPager(512)
	pool := storage.NewBufferPool(under, 256)
	tree, err := New(pool, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	ref := &brute{}
	for i := 0; i < 1500; i++ {
		r := randRect(rng, 2, 2000, 60)
		if err := tree.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
		ref.add(r, int64(i))
	}
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	q := Rect2(0, 0, 500, 500)
	got, err := tree.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.search(q)
	if len(got) != len(want) {
		t.Fatalf("pooled search: %d, want %d", len(got), len(want))
	}
	// Second identical query: the pool absorbs the node reads entirely.
	under.ResetStats()
	if _, err := tree.Search(q); err != nil {
		t.Fatal(err)
	}
	if underlying := under.Stats().Reads; underlying != 0 {
		t.Errorf("warm query hit the disk %d times", underlying)
	}
	if pool.Stats().Hits == 0 {
		t.Error("pool recorded no hits")
	}
}
