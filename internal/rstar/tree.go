package rstar

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"cdb/internal/storage"
)

// Options tune the tree. The zero value selects the Beckmann et al.
// defaults.
type Options struct {
	// MinFill is m/M, the minimum node fill ratio. Default 0.4 (the R*
	// paper's recommendation).
	MinFill float64
	// ReinsertFrac is the fraction of entries removed by forced
	// reinsertion on overflow. Default 0.3 (the R* paper's p = 30%).
	ReinsertFrac float64
	// DisableReinsert turns forced reinsertion off (overflow always
	// splits). This degrades the tree towards a plain R-tree and exists
	// for the DESIGN.md ablation benchmark.
	DisableReinsert bool
}

// Tree is an R*-tree over a Pager. One node occupies exactly one page, so
// the pager's read counter is the paper's "number of disk accesses".
type Tree struct {
	pager  storage.Pager
	dim    int
	opts   Options
	meta   storage.PageID // metadata page
	root   storage.PageID
	height int // number of levels; leaves are level 0
	size   int // number of data entries
	maxE   int
	minE   int
}

// New creates an empty R*-tree of the given dimension on the pager.
func New(pager storage.Pager, dim int, opts Options) (*Tree, error) {
	if dim < 1 || dim > 16 {
		return nil, fmt.Errorf("rstar: unsupported dimension %d", dim)
	}
	if opts.MinFill <= 0 || opts.MinFill > 0.5 {
		opts.MinFill = 0.4
	}
	if opts.ReinsertFrac <= 0 || opts.ReinsertFrac >= 0.5 {
		opts.ReinsertFrac = 0.3
	}
	maxE := maxEntries(pager.PageSize(), dim)
	if maxE < 4 {
		return nil, fmt.Errorf("rstar: page size %d too small for dimension %d", pager.PageSize(), dim)
	}
	minE := int(float64(maxE) * opts.MinFill)
	if minE < 1 {
		minE = 1
	}
	t := &Tree{pager: pager, dim: dim, opts: opts, maxE: maxE, minE: minE, height: 1}
	metaID, err := pager.Allocate()
	if err != nil {
		return nil, err
	}
	t.meta = metaID
	rootID, err := pager.Allocate()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	if err := t.store(&node{id: rootID, leaf: true}); err != nil {
		return nil, err
	}
	return t, t.saveMeta()
}

// Open reopens a tree previously created with New on a persistent pager,
// given its metadata page id.
func Open(pager storage.Pager, metaPage storage.PageID) (*Tree, error) {
	p, err := pager.Read(metaPage)
	if err != nil {
		return nil, err
	}
	if string(p.Data[0:4]) != "RST1" {
		return nil, fmt.Errorf("rstar: page %d is not a tree metadata page", metaPage)
	}
	t := &Tree{pager: pager, meta: metaPage}
	t.dim = int(binary.LittleEndian.Uint32(p.Data[4:8]))
	t.root = storage.PageID(binary.LittleEndian.Uint32(p.Data[8:12]))
	t.height = int(binary.LittleEndian.Uint32(p.Data[12:16]))
	t.size = int(binary.LittleEndian.Uint64(p.Data[16:24]))
	t.opts.MinFill = math.Float64frombits(binary.LittleEndian.Uint64(p.Data[24:32]))
	t.opts.ReinsertFrac = math.Float64frombits(binary.LittleEndian.Uint64(p.Data[32:40]))
	t.opts.DisableReinsert = p.Data[40] == 1
	t.maxE = maxEntries(pager.PageSize(), t.dim)
	t.minE = int(float64(t.maxE) * t.opts.MinFill)
	if t.minE < 1 {
		t.minE = 1
	}
	return t, nil
}

func (t *Tree) saveMeta() error {
	buf := make([]byte, t.pager.PageSize())
	copy(buf[0:4], "RST1")
	binary.LittleEndian.PutUint32(buf[4:8], uint32(t.dim))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(t.root))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(t.size))
	binary.LittleEndian.PutUint64(buf[24:32], math.Float64bits(t.opts.MinFill))
	binary.LittleEndian.PutUint64(buf[32:40], math.Float64bits(t.opts.ReinsertFrac))
	if t.opts.DisableReinsert {
		buf[40] = 1
	}
	return t.pager.Write(&storage.Page{ID: t.meta, Data: buf})
}

// MetaPage returns the metadata page id (pass to Open to reopen).
func (t *Tree) MetaPage() storage.PageID { return t.meta }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of data entries.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int { return t.height }

// MaxEntries returns the node capacity M.
func (t *Tree) MaxEntries() int { return t.maxE }

func (t *Tree) load(id storage.PageID) (*node, error) {
	p, err := t.pager.Read(id)
	if err != nil {
		return nil, err
	}
	return decodeNode(id, p.Data, t.dim)
}

func (t *Tree) store(n *node) error {
	buf, err := encodeNode(n, t.pager.PageSize(), t.dim)
	if err != nil {
		return err
	}
	return t.pager.Write(&storage.Page{ID: n.id, Data: buf})
}

// Insert adds a rectangle with an opaque data id.
func (t *Tree) Insert(r Rect, data int64) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("rstar: inserting %d-dim rect into %d-dim tree", r.Dim(), t.dim)
	}
	overflowed := map[int]bool{}
	if err := t.insertEntry(entry{rect: r, data: data}, 0, overflowed); err != nil {
		return err
	}
	t.size++
	return t.saveMeta()
}

// insertEntry inserts an entry at the given level (0 = leaf).
func (t *Tree) insertEntry(e entry, level int, overflowed map[int]bool) error {
	path, nodes, err := t.choosePath(e.rect, level)
	if err != nil {
		return err
	}
	n := nodes[len(nodes)-1]
	n.entries = append(n.entries, e)
	return t.handleOverflowAndAdjust(path, nodes, level, overflowed)
}

// choosePath descends ChooseSubtree from the root to the target level,
// returning the page-id path and loaded nodes (root first).
func (t *Tree) choosePath(r Rect, level int) ([]storage.PageID, []*node, error) {
	var path []storage.PageID
	var nodes []*node
	id := t.root
	depth := 0
	for {
		n, err := t.load(id)
		if err != nil {
			return nil, nil, err
		}
		path = append(path, id)
		nodes = append(nodes, n)
		nodeLevel := t.height - 1 - depth
		if nodeLevel == level {
			return path, nodes, nil
		}
		if n.leaf {
			return nil, nil, fmt.Errorf("rstar: reached leaf above target level %d", level)
		}
		childLevel := nodeLevel - 1
		idx := t.chooseSubtree(n, r, childLevel == 0)
		id = n.entries[idx].child
		depth++
	}
}

// chooseSubtree picks the entry of n to descend into for rectangle r.
// When the children are leaves, R* minimises overlap enlargement; higher
// up it minimises area enlargement (ties: smaller area).
func (t *Tree) chooseSubtree(n *node, r Rect, childrenAreLeaves bool) int {
	best := 0
	if childrenAreLeaves {
		bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
		for i, e := range n.entries {
			enlarged := e.rect.Union(r)
			var before, after float64
			for j, o := range n.entries {
				if j == i {
					continue
				}
				before += e.rect.OverlapArea(o.rect)
				after += enlarged.OverlapArea(o.rect)
			}
			dOverlap := after - before
			enl := e.rect.Enlargement(r)
			area := e.rect.Area()
			if dOverlap < bestOverlap ||
				(dOverlap == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, dOverlap, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(r)
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// handleOverflowAndAdjust stores the modified tail node, resolving
// overflow by forced reinsertion or split, and adjusts MBRs up the path.
func (t *Tree) handleOverflowAndAdjust(path []storage.PageID, nodes []*node, level int, overflowed map[int]bool) error {
	// Walk from the tail upwards.
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		lvl := t.height - 1 - i
		if len(n.entries) <= t.maxE {
			if err := t.store(n); err != nil {
				return err
			}
			t.adjustMBR(nodes, i)
			continue
		}
		// Overflow treatment.
		isRoot := i == 0
		if !isRoot && !t.opts.DisableReinsert && !overflowed[lvl] {
			overflowed[lvl] = true
			return t.reinsert(path, nodes, i, lvl, overflowed)
		}
		left, right, err := t.split(n)
		if err != nil {
			return err
		}
		if isRoot {
			// Grow a new root.
			newRootID, err := t.pager.Allocate()
			if err != nil {
				return err
			}
			root := &node{id: newRootID, leaf: false, entries: []entry{
				{rect: left.mbr(), child: left.id},
				{rect: right.mbr(), child: right.id},
			}}
			if err := t.store(root); err != nil {
				return err
			}
			t.root = newRootID
			t.height++
			return t.saveMeta()
		}
		parent := nodes[i-1]
		// Replace the child entry with the two halves.
		idx := indexOfChild(parent, n.id)
		if idx < 0 {
			return fmt.Errorf("rstar: parent lost child %d", n.id)
		}
		parent.entries[idx] = entry{rect: left.mbr(), child: left.id}
		parent.entries = append(parent.entries, entry{rect: right.mbr(), child: right.id})
		// Loop continues with the parent (which may itself overflow).
	}
	return nil
}

// adjustMBR updates the parent entry's rectangle for nodes[i].
func (t *Tree) adjustMBR(nodes []*node, i int) {
	if i == 0 {
		return
	}
	parent, child := nodes[i-1], nodes[i]
	if idx := indexOfChild(parent, child.id); idx >= 0 && len(child.entries) > 0 {
		parent.entries[idx].rect = child.mbr()
	}
}

func indexOfChild(parent *node, id storage.PageID) int {
	for i, e := range parent.entries {
		if e.child == id {
			return i
		}
	}
	return -1
}

// reinsert implements R* forced reinsertion: remove the p⋅M entries whose
// centers are farthest from the node MBR's center, shrink the node, then
// insert them again at the same level (far-first ordering).
func (t *Tree) reinsert(path []storage.PageID, nodes []*node, i, lvl int, overflowed map[int]bool) error {
	n := nodes[i]
	p := int(float64(t.maxE) * t.opts.ReinsertFrac)
	if p < 1 {
		p = 1
	}
	center := n.mbr().Center()
	sort.SliceStable(n.entries, func(a, b int) bool {
		return centerSqDistTo(n.entries[a].rect, center) > centerSqDistTo(n.entries[b].rect, center)
	})
	removed := append([]entry{}, n.entries[:p]...)
	n.entries = append([]entry{}, n.entries[p:]...)
	if err := t.store(n); err != nil {
		return err
	}
	// Tighten MBRs up the path.
	for j := i; j >= 1; j-- {
		t.adjustMBR(nodes, j)
		if err := t.store(nodes[j-1]); err != nil {
			return err
		}
	}
	for _, e := range removed {
		if err := t.insertEntry(e, lvl, overflowed); err != nil {
			return err
		}
	}
	return nil
}

func centerSqDistTo(r Rect, c []float64) float64 {
	rc := r.Center()
	d := 0.0
	for i := range c {
		d += (rc[i] - c[i]) * (rc[i] - c[i])
	}
	return d
}

// split implements R* ChooseSplitAxis / ChooseSplitIndex. It reuses n's
// page for the left node and allocates a new page for the right node.
func (t *Tree) split(n *node) (*node, *node, error) {
	entries := n.entries
	m := t.minE
	type distribution struct {
		axis, k int
		margin  float64
	}
	bestAxis, bestMargin := 0, math.Inf(1)
	// ChooseSplitAxis: minimise total margin over all distributions.
	for axis := 0; axis < t.dim; axis++ {
		sorted := sortByAxis(entries, axis)
		total := 0.0
		for k := m; k <= len(sorted)-m; k++ {
			l := mbrOf(sorted[:k])
			r := mbrOf(sorted[k:])
			total += l.Margin() + r.Margin()
		}
		if total < bestMargin {
			bestMargin, bestAxis = total, axis
		}
	}
	// ChooseSplitIndex: minimise overlap, ties by combined area.
	sorted := sortByAxis(entries, bestAxis)
	bestK, bestOverlap, bestArea := m, math.Inf(1), math.Inf(1)
	for k := m; k <= len(sorted)-m; k++ {
		l := mbrOf(sorted[:k])
		r := mbrOf(sorted[k:])
		ov := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	rightID, err := t.pager.Allocate()
	if err != nil {
		return nil, nil, err
	}
	left := &node{id: n.id, leaf: n.leaf, entries: append([]entry{}, sorted[:bestK]...)}
	right := &node{id: rightID, leaf: n.leaf, entries: append([]entry{}, sorted[bestK:]...)}
	if err := t.store(left); err != nil {
		return nil, nil, err
	}
	if err := t.store(right); err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

// sortByAxis returns the entries sorted by (min, max) along the axis.
func sortByAxis(entries []entry, axis int) []entry {
	out := append([]entry{}, entries...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].rect.Min[axis] != out[j].rect.Min[axis] {
			return out[i].rect.Min[axis] < out[j].rect.Min[axis]
		}
		return out[i].rect.Max[axis] < out[j].rect.Max[axis]
	})
	return out
}

func mbrOf(entries []entry) Rect {
	r := entries[0].rect
	for _, e := range entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Search returns the data ids of all entries whose rectangles intersect
// the query. Every node visited costs one page read on the pager — the
// experiments read the disk-access count off the pager's stats.
func (t *Tree) Search(query Rect) ([]int64, error) {
	if query.Dim() != t.dim {
		return nil, fmt.Errorf("rstar: %d-dim query on %d-dim tree", query.Dim(), t.dim)
	}
	var out []int64
	err := t.walk(t.root, query, func(e entry) {
		out = append(out, e.data)
	})
	return out, err
}

func (t *Tree) walk(id storage.PageID, query Rect, emit func(entry)) error {
	n, err := t.load(id)
	if err != nil {
		return err
	}
	for _, e := range n.entries {
		if !e.rect.Intersects(query) {
			continue
		}
		if n.leaf {
			emit(e)
		} else if err := t.walk(e.child, query, emit); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes one entry matching (rect, data) exactly. It returns false
// when no such entry exists. Underfull nodes are condensed: their entries
// are reinserted at the appropriate level, per the classic R-tree delete.
func (t *Tree) Delete(r Rect, data int64) (bool, error) {
	leafID, path, nodes, err := t.findLeaf(t.root, nil, nil, r, data, t.height-1)
	if err != nil || leafID == 0 {
		return false, err
	}
	leaf := nodes[len(nodes)-1]
	for i, e := range leaf.entries {
		if e.data == data && rectEqual(e.rect, r) {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	if err := t.condense(path, nodes); err != nil {
		return false, err
	}
	t.size--
	// Shrink the root when it is internal with a single child.
	for {
		root, err := t.load(t.root)
		if err != nil {
			return false, err
		}
		if root.leaf || len(root.entries) != 1 {
			break
		}
		old := t.root
		t.root = root.entries[0].child
		t.height--
		if err := t.pager.Free(old); err != nil {
			return false, err
		}
	}
	return true, t.saveMeta()
}

// findLeaf locates the leaf containing (r, data); returns a zero leaf id
// when absent.
func (t *Tree) findLeaf(id storage.PageID, path []storage.PageID, nodes []*node, r Rect, data int64, lvl int) (storage.PageID, []storage.PageID, []*node, error) {
	n, err := t.load(id)
	if err != nil {
		return 0, nil, nil, err
	}
	path = append(path, id)
	nodes = append(nodes, n)
	if n.leaf {
		for _, e := range n.entries {
			if e.data == data && rectEqual(e.rect, r) {
				return id, path, nodes, nil
			}
		}
		return 0, nil, nil, nil
	}
	for _, e := range n.entries {
		if e.rect.Contains(r) {
			leafID, p2, n2, err := t.findLeaf(e.child, path, nodes, r, data, lvl-1)
			if err != nil {
				return 0, nil, nil, err
			}
			if leafID != 0 {
				return leafID, p2, n2, nil
			}
		}
	}
	return 0, nil, nil, nil
}

func rectEqual(a, b Rect) bool {
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}

// condense removes underfull nodes along the path bottom-up and reinserts
// their orphaned entries at the right level.
func (t *Tree) condense(path []storage.PageID, nodes []*node) error {
	type orphan struct {
		e   entry
		lvl int
	}
	var orphans []orphan
	for i := len(nodes) - 1; i >= 1; i-- {
		n := nodes[i]
		lvl := t.height - 1 - i
		parent := nodes[i-1]
		idx := indexOfChild(parent, n.id)
		if len(n.entries) < t.minE {
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, lvl: lvl})
			}
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			if err := t.pager.Free(n.id); err != nil {
				return err
			}
		} else {
			if err := t.store(n); err != nil {
				return err
			}
			if len(n.entries) > 0 && idx >= 0 {
				parent.entries[idx].rect = n.mbr()
			}
		}
	}
	if err := t.store(nodes[0]); err != nil {
		return err
	}
	for _, o := range orphans {
		if err := t.insertEntry(o.e, o.lvl, map[int]bool{}); err != nil {
			return err
		}
	}
	return nil
}
