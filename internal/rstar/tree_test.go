package rstar

import (
	"math/rand"
	"testing"

	"cdb/internal/storage"
)

func TestRectOps(t *testing.T) {
	a := Rect2(0, 0, 2, 2)
	b := Rect2(1, 1, 3, 4)
	if got := a.Area(); got != 4 {
		t.Errorf("area = %g", got)
	}
	if got := a.Margin(); got != 4 {
		t.Errorf("margin = %g", got)
	}
	u := a.Union(b)
	if u.Min[0] != 0 || u.Max[1] != 4 {
		t.Errorf("union = %v", u)
	}
	if !a.Intersects(b) || a.Intersects(Rect2(3, 3, 4, 4)) {
		t.Error("intersects wrong")
	}
	if !a.Intersects(Rect2(2, 0, 3, 1)) {
		t.Error("edge touch should intersect")
	}
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("overlap = %g", got)
	}
	if got := a.Enlargement(b); got != 8 {
		t.Errorf("enlargement = %g", got)
	}
	if !u.Contains(a) || a.Contains(u) {
		t.Error("contains wrong")
	}
	if _, err := NewRect([]float64{1}, []float64{0}); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func newTestTree(t *testing.T, dim, pageSize int, opts Options) (*Tree, *storage.MemPager) {
	t.Helper()
	pager := storage.NewMemPager(pageSize)
	tree, err := New(pager, dim, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree, pager
}

func TestInsertSearchSmall(t *testing.T) {
	tree, _ := newTestTree(t, 2, 512, Options{})
	boxes := []Rect{
		Rect2(0, 0, 1, 1),
		Rect2(5, 5, 6, 6),
		Rect2(0.5, 0.5, 2, 2),
		Rect2(10, 10, 11, 11),
	}
	for i, b := range boxes {
		if err := tree.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Len() != 4 {
		t.Errorf("len = %d", tree.Len())
	}
	got, err := tree.Search(Rect2(0, 0, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("search hit %v", got)
	}
	all, _ := tree.Search(Rect2(-100, -100, 100, 100))
	if len(all) != 4 {
		t.Errorf("full search hit %d", len(all))
	}
	none, _ := tree.Search(Rect2(20, 20, 30, 30))
	if len(none) != 0 {
		t.Errorf("empty search hit %v", none)
	}
	if _, err := tree.Search(Rect1(0, 1)); err == nil {
		t.Error("dim mismatch accepted")
	}
	if err := tree.Insert(Rect1(0, 1), 9); err == nil {
		t.Error("insert dim mismatch accepted")
	}
}

// searchBrute is the reference implementation.
type brute struct {
	rects []Rect
	ids   []int64
}

func (b *brute) add(r Rect, id int64) {
	b.rects = append(b.rects, r)
	b.ids = append(b.ids, id)
}

func (b *brute) search(q Rect) map[int64]bool {
	out := map[int64]bool{}
	for i, r := range b.rects {
		if r.Intersects(q) {
			out[b.ids[i]] = true
		}
	}
	return out
}

func randRect(rng *rand.Rand, dim int, coordMax, sizeMax float64) Rect {
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := 0; i < dim; i++ {
		min[i] = rng.Float64() * coordMax
		max[i] = min[i] + rng.Float64()*sizeMax
	}
	return Rect{Min: min, Max: max}
}

// TestQuickTreeMatchesBruteForce inserts thousands of random rectangles
// (forcing many splits and reinsertions) and cross-checks every query
// against the brute-force reference.
func TestQuickTreeMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		dim := dim
		tree, _ := newTestTree(t, dim, 512, Options{})
		ref := &brute{}
		rng := rand.New(rand.NewSource(int64(dim)))
		for i := 0; i < 2000; i++ {
			r := randRect(rng, dim, 1000, 50)
			if err := tree.Insert(r, int64(i)); err != nil {
				t.Fatal(err)
			}
			ref.add(r, int64(i))
		}
		if tree.Height() < 2 {
			t.Fatalf("dim %d: tree did not grow (height %d)", dim, tree.Height())
		}
		for k := 0; k < 50; k++ {
			q := randRect(rng, dim, 1000, 200)
			got, err := tree.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.search(q)
			if len(got) != len(want) {
				t.Fatalf("dim %d query %d: got %d ids, want %d", dim, k, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("dim %d query %d: spurious id %d", dim, k, id)
				}
			}
		}
	}
}

func TestNodeFillInvariant(t *testing.T) {
	tree, _ := newTestTree(t, 2, 512, Options{})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		if err := tree.Insert(randRect(rng, 2, 3000, 100), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Walk all nodes: every non-root node must satisfy m <= count <= M, and
	// every parent rect must cover its child's MBR.
	var walk func(id storage.PageID, isRoot bool) Rect
	var fail bool
	walk = func(id storage.PageID, isRoot bool) Rect {
		n, err := tree.load(id)
		if err != nil {
			t.Fatal(err)
		}
		if !isRoot && (len(n.entries) < tree.minE || len(n.entries) > tree.maxE) {
			t.Errorf("node %d has %d entries (m=%d M=%d)", id, len(n.entries), tree.minE, tree.maxE)
			fail = true
		}
		if !n.leaf {
			for _, e := range n.entries {
				childMBR := walk(e.child, false)
				if !e.rect.Contains(childMBR) {
					t.Errorf("parent entry %v does not cover child MBR %v", e.rect, childMBR)
					fail = true
				}
			}
		}
		return n.mbr()
	}
	walk(tree.root, true)
	if fail {
		t.FailNow()
	}
}

func TestDelete(t *testing.T) {
	tree, _ := newTestTree(t, 2, 512, Options{})
	ref := &brute{}
	rng := rand.New(rand.NewSource(77))
	var rects []Rect
	for i := 0; i < 1200; i++ {
		r := randRect(rng, 2, 500, 30)
		rects = append(rects, r)
		if err := tree.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the even ids.
	for i := 0; i < 1200; i += 2 {
		ok, err := tree.Delete(rects[i], int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 1; i < 1200; i += 2 {
		ref.add(rects[i], int64(i))
	}
	if tree.Len() != 600 {
		t.Errorf("len after deletes = %d", tree.Len())
	}
	// Deleting a missing entry returns false.
	ok, err := tree.Delete(rects[0], 0)
	if err != nil || ok {
		t.Errorf("double delete: %v %v", ok, err)
	}
	for k := 0; k < 30; k++ {
		q := randRect(rng, 2, 500, 100)
		got, err := tree.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.search(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", k, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("query %d: spurious id %d", k, id)
			}
		}
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	tree, _ := newTestTree(t, 1, 256, Options{})
	for i := 0; i < 300; i++ {
		if err := tree.Insert(Rect1(float64(i), float64(i+1)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if ok, err := tree.Delete(Rect1(float64(i), float64(i+1)), int64(i)); err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	if tree.Len() != 0 {
		t.Errorf("len = %d", tree.Len())
	}
	got, err := tree.Search(Rect1(-1e9, 1e9))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty tree returned %v", got)
	}
	// The tree must remain usable.
	if err := tree.Insert(Rect1(5, 6), 999); err != nil {
		t.Fatal(err)
	}
	got2, _ := tree.Search(Rect1(5.5, 5.5))
	if len(got2) != 1 || got2[0] != 999 {
		t.Errorf("reuse search = %v", got2)
	}
}

func TestOpenPersistedTree(t *testing.T) {
	pager := storage.NewMemPager(512)
	tree, err := New(pager, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if err := tree.Insert(randRect(rng, 2, 100, 10), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	re, err := Open(pager, tree.MetaPage())
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 500 || re.Dim() != 2 || re.Height() != tree.Height() {
		t.Errorf("reopened: len=%d dim=%d h=%d", re.Len(), re.Dim(), re.Height())
	}
	a, _ := tree.Search(Rect2(0, 0, 50, 50))
	b, _ := re.Search(Rect2(0, 0, 50, 50))
	if len(a) != len(b) {
		t.Errorf("reopened search differs: %d vs %d", len(a), len(b))
	}
	if _, err := Open(pager, tree.root); err == nil {
		t.Error("opening a non-meta page succeeded")
	}
}

func TestSearchCountsAccesses(t *testing.T) {
	tree, pager := newTestTree(t, 2, 512, Options{})
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		if err := tree.Insert(randRect(rng, 2, 3000, 100), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	pager.ResetStats()
	if _, err := tree.Search(Rect2(0, 0, 10, 10)); err != nil {
		t.Fatal(err)
	}
	small := pager.Stats().Reads
	pager.ResetStats()
	if _, err := tree.Search(Rect2(0, 0, 3000, 3000)); err != nil {
		t.Fatal(err)
	}
	large := pager.Stats().Reads
	if small == 0 {
		t.Error("search cost zero accesses")
	}
	if small >= large {
		t.Errorf("small query (%d accesses) not cheaper than full scan (%d)", small, large)
	}
}

func TestReinsertImprovesTree(t *testing.T) {
	// The ablation hook: with forced reinsertion disabled the tree must
	// still be correct (brute-force check), and with it enabled a skewed
	// workload should not be worse on total accesses.
	rng := rand.New(rand.NewSource(21))
	var rects []Rect
	for i := 0; i < 3000; i++ {
		rects = append(rects, randRect(rng, 2, 3000, 80))
	}
	build := func(opts Options) (*Tree, *storage.MemPager) {
		pager := storage.NewMemPager(512)
		tree, err := New(pager, 2, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rects {
			if err := tree.Insert(r, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		return tree, pager
	}
	star, starPager := build(Options{})
	plain, plainPager := build(Options{DisableReinsert: true})
	ref := &brute{}
	for i, r := range rects {
		ref.add(r, int64(i))
	}
	starPager.ResetStats()
	plainPager.ResetStats()
	var starReads, plainReads uint64
	for k := 0; k < 100; k++ {
		q := randRect(rng, 2, 3000, 150)
		want := ref.search(q)
		for _, tc := range []struct {
			tree  *Tree
			pager *storage.MemPager
			reads *uint64
		}{{star, starPager, &starReads}, {plain, plainPager, &plainReads}} {
			before := tc.pager.Stats().Reads
			got, err := tc.tree.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			*tc.reads += tc.pager.Stats().Reads - before
			if len(got) != len(want) {
				t.Fatalf("query %d: got %d, want %d", k, len(got), len(want))
			}
		}
	}
	t.Logf("R* reads=%d, plain-split reads=%d over 100 queries", starReads, plainReads)
}
