package rstar

import (
	"fmt"
	"math"
	"sort"

	"cdb/internal/storage"
)

// Bulk loading via Sort-Tile-Recursive (STR, Leutenegger et al.): packs a
// static data set into a tree with near-100% node fill and tiled leaves.
// The §5.4 experiments load their 10,000 boxes up front, which is exactly
// the bulk-load use case; the ablation benchmark compares query accesses
// of a bulk-loaded tree against one built by repeated R* insertion.
//
// Bulk-loaded trees are ordinary trees: later Insert/Delete calls work
// normally (nodes split once they overflow).

// BulkItem is one (rectangle, data id) pair for BulkLoad.
type BulkItem struct {
	Rect Rect
	Data int64
}

// BulkLoad builds a tree over the items using STR packing. The items
// slice is not retained (but is reordered in place).
func BulkLoad(pager storage.Pager, dim int, items []BulkItem, opts Options) (*Tree, error) {
	t, err := New(pager, dim, opts)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	for _, it := range items {
		if it.Rect.Dim() != dim {
			return nil, fmt.Errorf("rstar: %d-dim item in %d-dim bulk load", it.Rect.Dim(), dim)
		}
	}
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{rect: it.Rect, data: it.Data}
	}

	level := entries
	leaf := true
	height := 0
	var lastID storage.PageID
	for {
		height++
		parents, rootID, err := t.packLevel(level, leaf)
		if err != nil {
			return nil, err
		}
		lastID = rootID
		if len(parents) == 1 {
			break
		}
		level = parents
		leaf = false
	}
	// Free the placeholder empty root allocated by New and adopt the
	// packed root.
	if err := t.pager.Free(t.root); err != nil {
		return nil, err
	}
	t.root = lastID
	t.height = height
	t.size = len(items)
	return t, t.saveMeta()
}

// packLevel tiles one level's entries into nodes and returns the parent
// entries (and, when a single node was produced, its page id).
func (t *Tree) packLevel(entries []entry, leaf bool) ([]entry, storage.PageID, error) {
	tileSTR(entries, t.dim, 0, t.maxE)
	var parents []entry
	var lastID storage.PageID
	for start := 0; start < len(entries); start += t.maxE {
		end := start + t.maxE
		if end > len(entries) {
			end = len(entries)
		}
		id, err := t.pager.Allocate()
		if err != nil {
			return nil, 0, err
		}
		n := &node{id: id, leaf: leaf, entries: append([]entry{}, entries[start:end]...)}
		if err := t.store(n); err != nil {
			return nil, 0, err
		}
		parents = append(parents, entry{rect: n.mbr(), child: id})
		lastID = id
	}
	return parents, lastID, nil
}

// tileSTR orders entries so that consecutive runs of m form spatially
// coherent tiles: sort by the center of axis d, split into slabs sized
// for the remaining dimensions, recurse.
func tileSTR(entries []entry, dim, d, m int) {
	if len(entries) <= m || d >= dim {
		return
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ci := (entries[i].rect.Min[d] + entries[i].rect.Max[d]) / 2
		cj := (entries[j].rect.Min[d] + entries[j].rect.Max[d]) / 2
		return ci < cj
	})
	if d == dim-1 {
		return // final axis: sequential chunks of m are the tiles
	}
	nTiles := int(math.Ceil(float64(len(entries)) / float64(m)))
	slabs := int(math.Ceil(math.Pow(float64(nTiles), 1/float64(dim-d))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	// Round the slab size to a multiple of m so tiles do not straddle
	// slab boundaries.
	if rem := slabSize % m; rem != 0 {
		slabSize += m - rem
	}
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		tileSTR(entries[start:end], dim, d+1, m)
	}
}
