package rstar

import (
	"fmt"
	"sort"
	"strings"

	"cdb/internal/storage"
)

// This file addresses the open problem the paper states at the end of §5:
//
//	"Given a constraint relation over attributes X = {x1, ..., xk},
//	 determine a set of subsets of X that should correspond to indices
//	 over X, with one index per subset."
//
// PartitionedIndex generalises the two §5 strategies to an arbitrary
// partition of the attributes (JointIndex is the one-block partition,
// SeparateIndex the all-singletons partition): one R*-tree per block,
// query results intersected across blocks. Advise then solves the open
// problem empirically, the way §5.3 says it must be solved ("the
// selectivity of various attributes and the kinds of queries that are
// 'typical' will need to be considered"): it enumerates all partitions of
// the attribute set, replays a training workload on each, and returns the
// cheapest — an exact workload-driven physical-design search, feasible
// because partitions of small k are few (Bell(4) = 15).

// PartitionedIndex maintains one multi-dimensional R*-tree per attribute
// block.
type PartitionedIndex struct {
	dim    int
	blocks [][]int
	trees  []*Tree
	pagers []*storage.MemPager
}

// NewPartitionedIndex builds an index for the given partition of
// {0..dim-1}. Blocks must be disjoint, non-empty, and cover every
// dimension.
func NewPartitionedIndex(dim int, blocks [][]int, pageSize int, opts Options) (*PartitionedIndex, error) {
	seen := make([]bool, dim)
	for _, b := range blocks {
		if len(b) == 0 {
			return nil, fmt.Errorf("rstar: empty block in partition")
		}
		for _, d := range b {
			if d < 0 || d >= dim {
				return nil, fmt.Errorf("rstar: dimension %d out of range", d)
			}
			if seen[d] {
				return nil, fmt.Errorf("rstar: dimension %d in two blocks", d)
			}
			seen[d] = true
		}
	}
	for d, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("rstar: dimension %d not covered by partition", d)
		}
	}
	p := &PartitionedIndex{dim: dim, blocks: blocks}
	for _, b := range blocks {
		pager := storage.NewMemPager(pageSize)
		tree, err := New(pager, len(b), opts)
		if err != nil {
			return nil, err
		}
		p.trees = append(p.trees, tree)
		p.pagers = append(p.pagers, pager)
	}
	return p, nil
}

// Dim returns the total number of indexed attributes.
func (p *PartitionedIndex) Dim() int { return p.dim }

// Blocks returns the attribute partition. The result must not be mutated.
func (p *PartitionedIndex) Blocks() [][]int { return p.blocks }

// projectRect restricts a rect to the block's dimensions.
func projectRect(r Rect, block []int) Rect {
	min := make([]float64, len(block))
	max := make([]float64, len(block))
	for i, d := range block {
		min[i], max[i] = r.Min[d], r.Max[d]
	}
	return Rect{Min: min, Max: max}
}

// Add indexes the item in every block tree.
func (p *PartitionedIndex) Add(r Rect, id int64) error {
	if r.Dim() != p.dim {
		return fmt.Errorf("rstar: %d-dim item on %d-dim partitioned index", r.Dim(), p.dim)
	}
	for i, b := range p.blocks {
		if err := p.trees[i].Insert(projectRect(r, b), id); err != nil {
			return err
		}
	}
	return nil
}

// Query runs one sub-query per block containing at least one restricted
// dimension and intersects the id sets; access counts sum over the
// sub-queries (the §5.4.1 accounting).
func (p *PartitionedIndex) Query(q Rect) ([]int64, uint64, error) {
	if q.Dim() != p.dim {
		return nil, 0, fmt.Errorf("rstar: %d-dim query on %d-dim partitioned index", q.Dim(), p.dim)
	}
	var accesses uint64
	var result map[int64]bool
	restricted := 0
	for i, b := range p.blocks {
		blockRestricted := false
		for _, d := range b {
			if !unbounded(q, d) {
				blockRestricted = true
				break
			}
		}
		if !blockRestricted {
			continue
		}
		restricted++
		before := p.pagers[i].Stats().Reads
		ids, err := p.trees[i].Search(projectRect(q, b))
		if err != nil {
			return nil, 0, err
		}
		accesses += p.pagers[i].Stats().Reads - before
		set := make(map[int64]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		if result == nil {
			result = set
			continue
		}
		for id := range result {
			if !set[id] {
				delete(result, id)
			}
		}
	}
	if restricted == 0 {
		before := p.pagers[0].Stats().Reads
		ids, err := p.trees[0].Search(projectRect(q, p.blocks[0]))
		if err != nil {
			return nil, 0, err
		}
		return ids, p.pagers[0].Stats().Reads - before, nil
	}
	out := make([]int64, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	return out, accesses, nil
}

// PartitionCost is the measured cost of one candidate partition.
type PartitionCost struct {
	Blocks   [][]int
	Accesses uint64
}

// String renders the partition as "{x0,x1}{x2}".
func (pc PartitionCost) String() string {
	var b strings.Builder
	for _, blk := range pc.Blocks {
		b.WriteByte('{')
		for i, d := range blk {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "x%d", d)
		}
		b.WriteByte('}')
	}
	return b.String()
}

// Advice is the advisor's result: every candidate's measured cost, best
// first.
type Advice struct {
	Best       PartitionCost
	Candidates []PartitionCost
}

// Advise enumerates all partitions of the attribute set, builds each
// candidate index over the data, replays the workload, and returns the
// measured costs sorted ascending. dim must be at most 5 (Bell(5) = 52
// candidates; beyond that a heuristic search would be needed, which the
// paper leaves open too).
func Advise(dim int, data []Rect, workload []Rect, pageSize int, opts Options) (Advice, error) {
	if dim < 1 || dim > 5 {
		return Advice{}, fmt.Errorf("rstar: advisor supports 1..5 attributes, got %d", dim)
	}
	var adv Advice
	for _, blocks := range setPartitions(dim) {
		idx, err := NewPartitionedIndex(dim, blocks, pageSize, opts)
		if err != nil {
			return Advice{}, err
		}
		for i, r := range data {
			if err := idx.Add(r, int64(i)); err != nil {
				return Advice{}, err
			}
		}
		var total uint64
		for _, q := range workload {
			_, a, err := idx.Query(q)
			if err != nil {
				return Advice{}, err
			}
			total += a
		}
		adv.Candidates = append(adv.Candidates, PartitionCost{Blocks: blocks, Accesses: total})
	}
	sort.SliceStable(adv.Candidates, func(i, j int) bool {
		return adv.Candidates[i].Accesses < adv.Candidates[j].Accesses
	})
	adv.Best = adv.Candidates[0]
	return adv, nil
}

// setPartitions enumerates all partitions of {0..n-1} via restricted
// growth strings. Blocks and partitions come out in a deterministic
// order, each block sorted.
func setPartitions(n int) [][][]int {
	var out [][][]int
	rgs := make([]int, n)
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == n {
			nBlocks := maxUsed + 1
			blocks := make([][]int, nBlocks)
			for d, b := range rgs {
				blocks[b] = append(blocks[b], d)
			}
			cp := make([][]int, nBlocks)
			for k := range blocks {
				cp[k] = append([]int{}, blocks[k]...)
			}
			out = append(out, cp)
			return
		}
		for b := 0; b <= maxUsed+1; b++ {
			rgs[i] = b
			next := maxUsed
			if b > maxUsed {
				next = b
			}
			rec(i+1, next)
		}
	}
	if n > 0 {
		rgs[0] = 0
		rec(1, 0)
	}
	return out
}
