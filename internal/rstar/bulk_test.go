package rstar

import (
	"math/rand"
	"testing"

	"cdb/internal/storage"
)

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 2500} {
		pager := storage.NewMemPager(512)
		rng := rand.New(rand.NewSource(int64(n)))
		ref := &brute{}
		var items []BulkItem
		for i := 0; i < n; i++ {
			r := randRect(rng, 2, 3000, 100)
			items = append(items, BulkItem{Rect: r, Data: int64(i)})
			ref.add(r, int64(i))
		}
		tree, err := BulkLoad(pager, 2, items, Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Len() != n {
			t.Errorf("n=%d: Len = %d", n, tree.Len())
		}
		for k := 0; k < 25; k++ {
			q := randRect(rng, 2, 3000, 400)
			got, err := tree.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.search(q)
			if len(got) != len(want) {
				t.Fatalf("n=%d query %d: got %d, want %d", n, k, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("n=%d query %d: spurious id %d", n, k, id)
				}
			}
		}
	}
}

func TestBulkLoadedTreeAcceptsUpdates(t *testing.T) {
	pager := storage.NewMemPager(512)
	rng := rand.New(rand.NewSource(8))
	ref := &brute{}
	var items []BulkItem
	for i := 0; i < 1000; i++ {
		r := randRect(rng, 2, 1000, 40)
		items = append(items, BulkItem{Rect: r, Data: int64(i)})
	}
	tree, err := BulkLoad(pager, 2, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Insert more, delete some of the bulk-loaded ones.
	for i := 1000; i < 1400; i++ {
		r := randRect(rng, 2, 1000, 40)
		if err := tree.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
		items = append(items, BulkItem{Rect: r, Data: int64(i)})
	}
	for i := 0; i < 500; i++ {
		ok, err := tree.Delete(items[i].Rect, items[i].Data)
		if err != nil || !ok {
			t.Fatalf("delete %d: %v %v", i, ok, err)
		}
	}
	for i := 500; i < len(items); i++ {
		ref.add(items[i].Rect, items[i].Data)
	}
	if tree.Len() != 900 {
		t.Errorf("Len = %d", tree.Len())
	}
	for k := 0; k < 25; k++ {
		q := randRect(rng, 2, 1000, 200)
		got, err := tree.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.search(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", k, len(got), len(want))
		}
	}
}

func TestBulkLoadNodeFill(t *testing.T) {
	pager := storage.NewMemPager(512)
	rng := rand.New(rand.NewSource(3))
	var items []BulkItem
	for i := 0; i < 3000; i++ {
		items = append(items, BulkItem{Rect: randRect(rng, 2, 3000, 50), Data: int64(i)})
	}
	tree, err := BulkLoad(pager, 2, items, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// STR packing should need close to the minimum number of leaves:
	// count all nodes and compare with ceil-based bound.
	var nodes, entries int
	var walk func(id storage.PageID)
	walk = func(id storage.PageID) {
		n, err := tree.load(id)
		if err != nil {
			t.Fatal(err)
		}
		nodes++
		if n.leaf {
			entries += len(n.entries)
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(tree.root)
	if entries != 3000 {
		t.Errorf("leaf entries = %d", entries)
	}
	minLeaves := (3000 + tree.maxE - 1) / tree.maxE
	// Allow a small slack for slab rounding.
	if nodes > minLeaves+minLeaves/4+3 {
		t.Errorf("bulk load used %d nodes; ~%d leaves expected", nodes, minLeaves)
	}
	// Incremental build of the same data uses strictly more nodes.
	pager2 := storage.NewMemPager(512)
	inc, err := New(pager2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := inc.Insert(it.Rect, it.Data); err != nil {
			t.Fatal(err)
		}
	}
	var incNodes int
	var walk2 func(id storage.PageID)
	walk2 = func(id storage.PageID) {
		n, err := inc.load(id)
		if err != nil {
			t.Fatal(err)
		}
		incNodes++
		if !n.leaf {
			for _, e := range n.entries {
				walk2(e.child)
			}
		}
	}
	walk2(inc.root)
	if incNodes <= nodes {
		t.Errorf("incremental build used %d nodes, bulk %d — packing should be denser", incNodes, nodes)
	}
	t.Logf("bulk nodes=%d incremental nodes=%d (M=%d)", nodes, incNodes, tree.maxE)
}

func TestBulkLoadValidation(t *testing.T) {
	pager := storage.NewMemPager(512)
	if _, err := BulkLoad(pager, 2, []BulkItem{{Rect: Rect1(0, 1)}}, Options{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}
