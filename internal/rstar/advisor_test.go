package rstar

import (
	"math/rand"
	"testing"
)

func TestSetPartitions(t *testing.T) {
	// Bell numbers: 1, 2, 5, 15, 52.
	for n, want := range map[int]int{1: 1, 2: 2, 3: 5, 4: 15, 5: 52} {
		if got := len(setPartitions(n)); got != want {
			t.Errorf("partitions(%d) = %d, want %d", n, got, want)
		}
	}
	// Every partition of 3 covers all dims exactly once.
	for _, blocks := range setPartitions(3) {
		seen := map[int]int{}
		for _, b := range blocks {
			for _, d := range b {
				seen[d]++
			}
		}
		for d := 0; d < 3; d++ {
			if seen[d] != 1 {
				t.Fatalf("partition %v covers dim %d %d times", blocks, d, seen[d])
			}
		}
	}
}

func TestPartitionedIndexValidation(t *testing.T) {
	if _, err := NewPartitionedIndex(2, [][]int{{0}}, 512, Options{}); err == nil {
		t.Error("uncovered dimension accepted")
	}
	if _, err := NewPartitionedIndex(2, [][]int{{0, 1}, {1}}, 512, Options{}); err == nil {
		t.Error("overlapping blocks accepted")
	}
	if _, err := NewPartitionedIndex(2, [][]int{{0, 1}, {}}, 512, Options{}); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := NewPartitionedIndex(2, [][]int{{0, 5}}, 512, Options{}); err == nil {
		t.Error("out-of-range dimension accepted")
	}
	p, err := NewPartitionedIndex(2, [][]int{{0, 1}}, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Add(Rect1(0, 1), 0); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := p.Query(Rect1(0, 1)); err == nil {
		t.Error("query dim mismatch accepted")
	}
}

// TestPartitionedIndexMatchesStrategies: the one-block partition must
// behave exactly like JointIndex and the all-singletons partition like
// SeparateIndex (results and access counts).
func TestPartitionedIndexMatchesStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var rects []Rect
	for i := 0; i < 1200; i++ {
		rects = append(rects, randRect(rng, 2, 3000, 100))
	}
	joint, _ := NewJointIndex(2, 512, Options{})
	sep, _ := NewSeparateIndex(2, 512, Options{})
	asJoint, _ := NewPartitionedIndex(2, [][]int{{0, 1}}, 512, Options{})
	asSep, _ := NewPartitionedIndex(2, [][]int{{0}, {1}}, 512, Options{})
	for i, r := range rects {
		for _, ix := range []Index{joint, sep, asJoint, asSep} {
			if err := ix.Add(r, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	queries := []Rect{
		Rect2(100, 100, 500, 500),
		UnboundedQuery(2, map[int][2]float64{0: {0, 400}}),
		UnboundedQuery(2, nil),
	}
	for qi, q := range queries {
		idsJ, aj, _ := joint.Query(q)
		idsPJ, apj, err := asJoint.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(idsJ) != len(idsPJ) || aj != apj {
			t.Errorf("query %d: joint (%d ids, %d acc) vs partition{01} (%d ids, %d acc)",
				qi, len(idsJ), aj, len(idsPJ), apj)
		}
		idsS, as, _ := sep.Query(q)
		idsPS, aps, err := asSep.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(idsS) != len(idsPS) || as != aps {
			t.Errorf("query %d: separate (%d ids, %d acc) vs partition{0}{1} (%d ids, %d acc)",
				qi, len(idsS), as, len(idsPS), aps)
		}
	}
}

// TestAdviseRecoversPaperResults: the advisor must pick the joint
// partition for a two-attribute workload and the separate partition for a
// one-attribute workload — the two §5.4 findings, now derived instead of
// asserted.
func TestAdviseRecoversPaperResults(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var data []Rect
	for i := 0; i < 1500; i++ {
		data = append(data, randRect(rng, 2, 3000, 100))
	}
	var twoAttr, oneAttr []Rect
	for i := 0; i < 40; i++ {
		twoAttr = append(twoAttr, randRect(rng, 2, 3000, 100))
		lo := rng.Float64() * 2900
		oneAttr = append(oneAttr, UnboundedQuery(2, map[int][2]float64{0: {lo, lo + 100}}))
	}
	advTwo, err := Advise(2, data, twoAttr, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(advTwo.Best.Blocks) != 1 {
		t.Errorf("two-attr workload: best = %s, want the joint partition (candidates %v)",
			advTwo.Best, advTwo.Candidates)
	}
	advOne, err := Advise(2, data, oneAttr, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(advOne.Best.Blocks) != 2 {
		t.Errorf("one-attr workload: best = %s, want singletons", advOne.Best)
	}
}

// TestAdviseThreeAttributes: with a third never-queried attribute, the
// best partition must not pay for indexing it jointly with the queried
// pair.
func TestAdviseThreeAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var data []Rect
	for i := 0; i < 800; i++ {
		data = append(data, randRect(rng, 3, 3000, 100))
	}
	// Queries restrict dims 0 and 1 together; dim 2 never.
	var workload []Rect
	for i := 0; i < 30; i++ {
		lo0, lo1 := rng.Float64()*2900, rng.Float64()*2900
		workload = append(workload, UnboundedQuery(3, map[int][2]float64{
			0: {lo0, lo0 + 100}, 1: {lo1, lo1 + 100}}))
	}
	adv, err := Advise(3, data, workload, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Best partition must contain the block {0,1} (dim 2 anywhere else).
	has01 := false
	for _, b := range adv.Best.Blocks {
		if len(b) == 2 && b[0] == 0 && b[1] == 1 {
			has01 = true
		}
	}
	if !has01 {
		t.Errorf("best partition %s does not group the co-queried attributes (candidates: %v)",
			adv.Best, adv.Candidates)
	}
	if adv.Best.String() == "" {
		t.Error("empty partition rendering")
	}
}

func TestAdviseValidation(t *testing.T) {
	if _, err := Advise(6, nil, nil, 512, Options{}); err == nil {
		t.Error("dim 6 accepted")
	}
	if _, err := Advise(0, nil, nil, 512, Options{}); err == nil {
		t.Error("dim 0 accepted")
	}
}
