package rstar

import (
	"encoding/binary"
	"fmt"
	"math"

	"cdb/internal/storage"
)

// entry is one slot of a node: a rectangle plus either a child page
// (internal nodes) or an opaque data id (leaves).
type entry struct {
	rect  Rect
	child storage.PageID // internal nodes
	data  int64          // leaves
}

// node is the in-memory image of one page.
type node struct {
	id      storage.PageID
	leaf    bool
	entries []entry
}

// mbr returns the bounding rectangle of all entries.
func (n *node) mbr() Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Node page layout:
//
//	[0]    leaf flag
//	[1:3]  entry count (uint16)
//	then count entries of (2*dim float64 coords, 8-byte payload)
const nodeHeaderSize = 3

// entrySize returns the on-page size of one entry for dimension dim.
func entrySize(dim int) int { return 16*dim + 8 }

// maxEntries returns the node capacity for a page size and dimension.
func maxEntries(pageSize, dim int) int {
	return (pageSize - nodeHeaderSize) / entrySize(dim)
}

// encodeNode serialises n into a page buffer of the given size.
func encodeNode(n *node, pageSize, dim int) ([]byte, error) {
	need := nodeHeaderSize + len(n.entries)*entrySize(dim)
	if need > pageSize {
		return nil, fmt.Errorf("rstar: node with %d entries exceeds page size", len(n.entries))
	}
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = 1
	}
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(n.entries)))
	off := nodeHeaderSize
	for _, e := range n.entries {
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.rect.Min[i]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.rect.Max[i]))
			off += 8
		}
		if n.leaf {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.data))
		} else {
			binary.LittleEndian.PutUint64(buf[off:], uint64(e.child))
		}
		off += 8
	}
	return buf, nil
}

// decodeNode deserialises a page buffer.
func decodeNode(id storage.PageID, buf []byte, dim int) (*node, error) {
	if len(buf) < nodeHeaderSize {
		return nil, fmt.Errorf("rstar: short page")
	}
	n := &node{id: id, leaf: buf[0] == 1}
	count := int(binary.LittleEndian.Uint16(buf[1:3]))
	if nodeHeaderSize+count*entrySize(dim) > len(buf) {
		return nil, fmt.Errorf("rstar: corrupt node: %d entries exceed page", count)
	}
	off := nodeHeaderSize
	n.entries = make([]entry, count)
	for k := 0; k < count; k++ {
		min := make([]float64, dim)
		max := make([]float64, dim)
		for i := 0; i < dim; i++ {
			min[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			max[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		payload := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		e := entry{rect: Rect{Min: min, Max: max}}
		if n.leaf {
			e.data = int64(payload)
		} else {
			e.child = storage.PageID(payload)
		}
		n.entries[k] = e
	}
	return n, nil
}
