// Package rstar implements the R*-tree of Beckmann, Kriegel, Schneider and
// Seeger (SIGMOD 1990) — the index structure used by the paper's §5
// experiments — on top of the paged storage substrate, so that every node
// visit is a counted page access.
//
// The tree is dimension-generic: the experiments build 2-dimensional trees
// (joint index over two attributes) and 1-dimensional trees (separate index
// per attribute). Keys are axis-aligned rectangles: a relational attribute
// value is a degenerate interval, a constraint attribute's range is a
// proper interval, so both attribute kinds index uniformly — exactly the
// observation the paper builds on.
package rstar

import (
	"fmt"
	"math"
	"strings"
)

// Rect is an axis-aligned rectangle in dim dimensions: Min[i] <= Max[i].
//
// The index layer works in float64: it is a conservative filter in front of
// the exact constraint layer (bounding boxes computed from exact rational
// bounds are out-rounded), so float rounding can only cost a false
// positive, never a lost result.
type Rect struct {
	Min, Max []float64
}

// NewRect validates and builds a rectangle.
func NewRect(min, max []float64) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("rstar: dim mismatch %d vs %d", len(min), len(max))
	}
	if len(min) == 0 {
		return Rect{}, fmt.Errorf("rstar: zero-dimensional rect")
	}
	for i := range min {
		if math.IsNaN(min[i]) || math.IsNaN(max[i]) {
			return Rect{}, fmt.Errorf("rstar: NaN coordinate")
		}
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rstar: min > max in dimension %d", i)
		}
	}
	return Rect{Min: append([]float64{}, min...), Max: append([]float64{}, max...)}, nil
}

// MustRect is like NewRect but panics on error (fixture helper).
func MustRect(min, max []float64) Rect {
	r, err := NewRect(min, max)
	if err != nil {
		panic(err)
	}
	return r
}

// Rect1 returns the 1-D interval [lo, hi].
func Rect1(lo, hi float64) Rect { return MustRect([]float64{lo}, []float64{hi}) }

// Rect2 returns the 2-D box [x0,x1]×[y0,y1].
func Rect2(x0, y0, x1, y1 float64) Rect {
	return MustRect([]float64{x0, y0}, []float64{x1, y1})
}

// Dim returns the dimensionality.
func (r Rect) Dim() int { return len(r.Min) }

// Area returns the volume (area in 2-D, length in 1-D).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Margin returns the summed edge lengths (the R* margin measure).
func (r Rect) Margin() float64 {
	m := 0.0
	for i := range r.Min {
		m += r.Max[i] - r.Min[i]
	}
	return m
}

// Union returns the smallest rectangle covering both.
func (r Rect) Union(o Rect) Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Min))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], o.Min[i])
		max[i] = math.Max(r.Max[i], o.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Intersects reports whether the closed rectangles overlap.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.Min {
		if r.Max[i] < o.Min[i] || o.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains o.
func (r Rect) Contains(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection (0 when disjoint).
func (r Rect) OverlapArea(o Rect) float64 {
	a := 1.0
	for i := range r.Min {
		lo := math.Max(r.Min[i], o.Min[i])
		hi := math.Min(r.Max[i], o.Max[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Enlargement returns the area growth needed to include o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// Center returns the rectangle's center point.
func (r Rect) Center() []float64 {
	c := make([]float64, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return c
}

// CenterSqDist returns the squared distance between the centers.
func (r Rect) CenterSqDist(o Rect) float64 {
	a, b := r.Center(), o.Center()
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	return d
}

// Project returns the 1-D rectangle of dimension i.
func (r Rect) Project(i int) Rect {
	return Rect{Min: []float64{r.Min[i]}, Max: []float64{r.Max[i]}}
}

func (r Rect) String() string {
	parts := make([]string, len(r.Min))
	for i := range r.Min {
		parts[i] = fmt.Sprintf("[%g,%g]", r.Min[i], r.Max[i])
	}
	return strings.Join(parts, "x")
}
