package rstar

import (
	"fmt"

	"cdb/internal/storage"
)

// This file implements the two indexing strategies compared in §5 of the
// paper for a relation with k indexed (rational) attributes:
//
//   - JointIndex: a single k-dimensional R*-tree over all attributes
//     together (the paper's proposal);
//   - SeparateIndex: one 1-dimensional R*-tree per attribute, with query
//     results intersected by data id (the strategy of the original
//     constraint-database indexing literature [Kanellakis et al. 1996],
//     the paper's baseline);
//   - ScanIndex: no index at all — a linear scan over the stored tuples,
//     the sanity floor.
//
// All three implement Index, and all three report the number of page
// accesses a query costs, so the experiment harness can interchange them.
//
// An "item" is a data id plus one interval per attribute. A relational
// attribute value is the degenerate interval [v, v]; a constraint
// attribute contributes its exact bounding interval. Open/closed-ness is
// deliberately dropped here: the index is a conservative filter, the exact
// constraint layer refines.

// Index is a multi-attribute index over items with k per-attribute
// intervals.
type Index interface {
	// Add indexes the item. The rect must have the index's dimension.
	Add(r Rect, id int64) error
	// Query returns the candidate ids whose rects intersect the query,
	// plus the number of page accesses spent.
	Query(q Rect) (ids []int64, accesses uint64, err error)
	// Dim returns the number of indexed attributes.
	Dim() int
}

// JointIndex is a single multi-dimensional R*-tree over all attributes.
type JointIndex struct {
	tree  *Tree
	pager storage.Pager
}

// NewJointIndex builds a joint index of the given dimension on a fresh
// in-memory pager.
func NewJointIndex(dim int, pageSize int, opts Options) (*JointIndex, error) {
	pager := storage.NewMemPager(pageSize)
	tree, err := New(pager, dim, opts)
	if err != nil {
		return nil, err
	}
	return &JointIndex{tree: tree, pager: pager}, nil
}

// Dim returns the indexed dimension count.
func (j *JointIndex) Dim() int { return j.tree.Dim() }

// Tree exposes the underlying R*-tree (for structural assertions).
func (j *JointIndex) Tree() *Tree { return j.tree }

// Add indexes one item.
func (j *JointIndex) Add(r Rect, id int64) error { return j.tree.Insert(r, id) }

// Query searches the single tree. A query restricting only some of the
// attributes leaves the other dimensions at (-inf, +inf), exactly as the
// paper describes ("the bound of the other attribute is set from minimum
// to maximum").
func (j *JointIndex) Query(q Rect) ([]int64, uint64, error) {
	before := j.pager.Stats().Reads
	ids, err := j.tree.Search(q)
	if err != nil {
		return nil, 0, err
	}
	return ids, j.pager.Stats().Reads - before, nil
}

// SeparateIndex maintains one 1-D R*-tree per attribute. A k-attribute
// query runs one search per restricted attribute and intersects the id
// sets; the access count is the sum over the sub-queries (§5.4.1: "the
// overall number of disk accesses was the sum of the numbers for the two
// subqueries").
type SeparateIndex struct {
	trees  []*Tree
	pagers []*storage.MemPager
}

// NewSeparateIndex builds dim 1-dimensional indices.
func NewSeparateIndex(dim int, pageSize int, opts Options) (*SeparateIndex, error) {
	s := &SeparateIndex{}
	for i := 0; i < dim; i++ {
		pager := storage.NewMemPager(pageSize)
		tree, err := New(pager, 1, opts)
		if err != nil {
			return nil, err
		}
		s.trees = append(s.trees, tree)
		s.pagers = append(s.pagers, pager)
	}
	return s, nil
}

// Dim returns the number of attributes.
func (s *SeparateIndex) Dim() int { return len(s.trees) }

// Add indexes the item's per-attribute intervals in the per-attribute
// trees.
func (s *SeparateIndex) Add(r Rect, id int64) error {
	if r.Dim() != len(s.trees) {
		return fmt.Errorf("rstar: %d-dim item on %d separate indices", r.Dim(), len(s.trees))
	}
	for i, t := range s.trees {
		if err := t.Insert(r.Project(i), id); err != nil {
			return err
		}
	}
	return nil
}

// unbounded reports whether the query leaves dimension i effectively
// unrestricted (infinite on both sides).
func unbounded(q Rect, i int) bool {
	return q.Min[i] < -1e307 && q.Max[i] > 1e307
}

// Query runs one sub-query per restricted attribute and intersects the
// results by id.
func (s *SeparateIndex) Query(q Rect) ([]int64, uint64, error) {
	if q.Dim() != len(s.trees) {
		return nil, 0, fmt.Errorf("rstar: %d-dim query on %d separate indices", q.Dim(), len(s.trees))
	}
	var accesses uint64
	var result map[int64]bool
	restricted := 0
	for i, t := range s.trees {
		if unbounded(q, i) {
			continue
		}
		restricted++
		before := s.pagers[i].Stats().Reads
		ids, err := t.Search(q.Project(i))
		if err != nil {
			return nil, 0, err
		}
		accesses += s.pagers[i].Stats().Reads - before
		set := make(map[int64]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		if result == nil {
			result = set
			continue
		}
		for id := range result {
			if !set[id] {
				delete(result, id)
			}
		}
	}
	if restricted == 0 {
		// Fully unrestricted query: every item qualifies; scan one tree.
		before := s.pagers[0].Stats().Reads
		ids, err := s.trees[0].Search(q.Project(0))
		if err != nil {
			return nil, 0, err
		}
		return ids, s.pagers[0].Stats().Reads - before, nil
	}
	out := make([]int64, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	return out, accesses, nil
}

// ScanIndex is the no-index baseline: items are stored in page-sized runs
// and every query reads all of them.
type ScanIndex struct {
	dim     int
	items   []scanItem
	perPage int
}

type scanItem struct {
	r  Rect
	id int64
}

// NewScanIndex builds a linear-scan "index".
func NewScanIndex(dim, pageSize int) *ScanIndex {
	per := pageSize / entrySize(dim)
	if per < 1 {
		per = 1
	}
	return &ScanIndex{dim: dim, perPage: per}
}

// Dim returns the number of attributes.
func (s *ScanIndex) Dim() int { return s.dim }

// Add stores the item.
func (s *ScanIndex) Add(r Rect, id int64) error {
	if r.Dim() != s.dim {
		return fmt.Errorf("rstar: %d-dim item on %d-dim scan", r.Dim(), s.dim)
	}
	s.items = append(s.items, scanItem{r: r, id: id})
	return nil
}

// Query scans everything: accesses = ceil(n / itemsPerPage).
func (s *ScanIndex) Query(q Rect) ([]int64, uint64, error) {
	var out []int64
	for _, it := range s.items {
		if it.r.Intersects(q) {
			out = append(out, it.id)
		}
	}
	pages := (len(s.items) + s.perPage - 1) / s.perPage
	return out, uint64(pages), nil
}

// UnboundedQuery builds a query rect restricting only the listed
// dimensions; the rest span (-inf, inf). bounds maps dimension index to
// [lo, hi].
func UnboundedQuery(dim int, bounds map[int][2]float64) Rect {
	const inf = 1e308
	min := make([]float64, dim)
	max := make([]float64, dim)
	for i := 0; i < dim; i++ {
		min[i], max[i] = -inf, inf
	}
	for i, b := range bounds {
		min[i], max[i] = b[0], b[1]
	}
	return Rect{Min: min, Max: max}
}
