package rstar

import (
	"math/rand"
	"sort"
	"testing"
)

func buildIndexes(t *testing.T, rects []Rect) (*JointIndex, *SeparateIndex, *ScanIndex, *brute) {
	t.Helper()
	joint, err := NewJointIndex(2, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := NewSeparateIndex(2, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scan := NewScanIndex(2, 512)
	ref := &brute{}
	for i, r := range rects {
		for _, ix := range []Index{joint, sep, scan} {
			if err := ix.Add(r, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		ref.add(r, int64(i))
	}
	return joint, sep, scan, ref
}

func sortedIDs(ids []int64) []int64 {
	out := append([]int64{}, ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestStrategiesAgree: all three strategies must return the same ids as
// brute force, for both two-attribute and one-attribute queries.
func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	var rects []Rect
	for i := 0; i < 1500; i++ {
		rects = append(rects, randRect(rng, 2, 3000, 100))
	}
	joint, sep, scan, ref := buildIndexes(t, rects)

	queries := []Rect{
		Rect2(100, 100, 400, 400),                            // both attributes
		Rect2(0, 0, 3000, 3000),                              // everything
		UnboundedQuery(2, map[int][2]float64{0: {0, 500}}),   // x only
		UnboundedQuery(2, map[int][2]float64{1: {200, 900}}), // y only
		UnboundedQuery(2, nil),                               // unrestricted
		Rect2(2900, 2900, 3200, 3200),                        // corner
	}
	for qi, q := range queries {
		want := ref.search(q)
		for name, ix := range map[string]Index{"joint": joint, "separate": sep, "scan": scan} {
			ids, accesses, err := ix.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != len(want) {
				t.Errorf("query %d via %s: %d ids, want %d", qi, name, len(ids), len(want))
				continue
			}
			for _, id := range ids {
				if !want[id] {
					t.Errorf("query %d via %s: spurious id %d", qi, name, id)
				}
			}
			if accesses == 0 {
				t.Errorf("query %d via %s: zero accesses reported", qi, name)
			}
		}
	}
}

// TestPaperShapeTwoAttributeQueries asserts the headline result of §5.4.1:
// on queries restricting both attributes, the joint index costs fewer
// accesses than two separate indices.
func TestPaperShapeTwoAttributeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rects []Rect
	for i := 0; i < 3000; i++ {
		rects = append(rects, randRect(rng, 2, 3000, 100))
	}
	joint, sep, _, _ := buildIndexes(t, rects)
	var jointTotal, sepTotal uint64
	for k := 0; k < 60; k++ {
		q := randRect(rng, 2, 3000, 100)
		_, aj, err := joint.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		_, as, err := sep.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		jointTotal += aj
		sepTotal += as
	}
	if jointTotal >= sepTotal {
		t.Errorf("joint (%d) not cheaper than separate (%d) on two-attribute queries", jointTotal, sepTotal)
	}
	t.Logf("two-attribute queries: joint=%d separate=%d accesses", jointTotal, sepTotal)
}

// TestPaperShapeOneAttributeQueries asserts §5.4.2: on queries restricting
// a single attribute, the separate index is better (it searches one
// 1-D tree; the joint tree must fan out across the unrestricted
// dimension).
func TestPaperShapeOneAttributeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var rects []Rect
	for i := 0; i < 3000; i++ {
		rects = append(rects, randRect(rng, 2, 3000, 100))
	}
	joint, sep, _, _ := buildIndexes(t, rects)
	var jointTotal, sepTotal uint64
	for k := 0; k < 60; k++ {
		lo := rng.Float64() * 2900
		q := UnboundedQuery(2, map[int][2]float64{0: {lo, lo + rng.Float64()*100}})
		_, aj, err := joint.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		_, as, err := sep.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		jointTotal += aj
		sepTotal += as
	}
	if sepTotal >= jointTotal {
		t.Errorf("separate (%d) not cheaper than joint (%d) on one-attribute queries", sepTotal, jointTotal)
	}
	t.Logf("one-attribute queries: joint=%d separate=%d accesses", jointTotal, sepTotal)
}

// TestCornerCaseLowJointSelectivity reproduces the §5.3 thought experiment:
// two constraints individually of ~50% selectivity whose conjunction is
// nearly empty. The joint index answers in logarithmic accesses; the
// separate indices pay for half the relation twice.
func TestCornerCaseLowJointSelectivity(t *testing.T) {
	joint, err := NewJointIndex(2, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sep, err := NewSeparateIndex(2, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(44))
	// Data along the diagonal: x small ⟺ y small. Query: x < a AND y > b
	// with a small, b large — each half selective alone, conjunction empty.
	for i := 0; i < 4000; i++ {
		base := rng.Float64() * 3000
		r := Rect2(base, base, base+10, base+10)
		if err := joint.Add(r, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := sep.Add(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	q := Rect2(-1e308, 1500, 1500, 1e308) // x <= 1500 AND y >= 1500
	idsJ, aj, err := joint.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	idsS, as, err := sep.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(sortedIDs(idsJ)) != len(sortedIDs(idsS)) {
		t.Fatalf("strategies disagree: %d vs %d", len(idsJ), len(idsS))
	}
	if aj*3 > as {
		t.Errorf("corner case advantage too small: joint=%d separate=%d", aj, as)
	}
	t.Logf("corner case: joint=%d separate=%d accesses, %d results", aj, as, len(idsJ))
}

func TestScanIndexAccessesConstant(t *testing.T) {
	scan := NewScanIndex(2, 512)
	for i := 0; i < 1000; i++ {
		if err := scan.Add(Rect2(float64(i), 0, float64(i+1), 1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, a1, _ := scan.Query(Rect2(0, 0, 1, 1))
	_, a2, _ := scan.Query(Rect2(0, 0, 1000, 1))
	if a1 != a2 {
		t.Errorf("scan accesses vary: %d vs %d", a1, a2)
	}
	if a1 == 0 {
		t.Error("scan accesses zero")
	}
	if err := scan.Add(Rect1(0, 1), 5); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestSeparateIndexValidation(t *testing.T) {
	sep, err := NewSeparateIndex(2, 512, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sep.Add(Rect1(0, 1), 1); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := sep.Query(Rect1(0, 1)); err == nil {
		t.Error("query dim mismatch accepted")
	}
}
