package server

// Golden test for the wire format (ISSUE 6 satellite): pin the JSON
// response shape of /v1/query so accidental field renames or encoding
// changes show up as a reviewable diff. Regenerate with:
//
//	go test ./internal/server -run TestGoldenQueryResponse -update
//
// Volatile values (the session id, the query id, elapsed wall time,
// start timestamps) are normalised before comparison so the file is
// stable across runs.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

var (
	sessionIDRe = regexp.MustCompile(`"s[0-9]+-[0-9a-f]{8}"`)
	queryIDRe   = regexp.MustCompile(`"q[0-9]+(-[0-9a-f]{8})?"`)
	elapsedRe   = regexp.MustCompile(`"elapsed_ms": [0-9.]+`)
	wallRe      = regexp.MustCompile(`"wall_ms": [0-9.]+`)
	startRe     = regexp.MustCompile(`"start_unix_ms": [0-9]+`)
)

func normalize(body []byte) string {
	out := sessionIDRe.ReplaceAll(body, []byte(`"SESSION"`))
	out = queryIDRe.ReplaceAll(out, []byte(`"QUERY"`))
	out = elapsedRe.ReplaceAll(out, []byte(`"elapsed_ms": 0`))
	out = wallRe.ReplaceAll(out, []byte(`"wall_ms": 0`))
	out = startRe.ReplaceAll(out, []byte(`"start_unix_ms": 0`))
	return string(out)
}

func TestGoldenQueryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	// par 1 keeps the stats block deterministic (no parallel flag flips).
	id := openSession(t, ts, `{"par": 1}`)
	status, _, body := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name", "stats": true}`, id))
	if status != 200 {
		t.Fatalf("query: %d %s", status, body)
	}
	got := normalize(body)

	path := filepath.Join("testdata", "query_response.golden.json")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("response shape differs from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenQueriesRecent pins the flight-record wire shape of
// GET /v1/queries/recent the same way: a deterministic program on a
// fresh par-1 session, volatile identities and wall times normalised.
func TestGoldenQueriesRecent(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	id := openSession(t, ts, `{"par": 1}`)
	status, _, body := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "R0 = join Landownership and Land\nR1 = select t >= 4, t <= 9 from R0\nR2 = project R1 on name"}`, id))
	if status != 200 {
		t.Fatalf("query: %d %s", status, body)
	}
	status, recent := getJSON(t, ts.URL+"/v1/queries/recent")
	if status != 200 {
		t.Fatalf("queries/recent: %d %s", status, recent)
	}
	got := normalize(recent)

	path := filepath.Join("testdata", "queries_recent.golden.json")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("flight-record shape differs from %s (re-run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}
