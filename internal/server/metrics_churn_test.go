package server

// Metrics exposition under concurrent session churn: sessions open, run
// cached queries and close while /metrics is scraped. The scrape must
// stay deterministic (sorted families, stable text) and the aggregate
// sat-cache counters must stay monotone — closing a session folds its
// counters into the retired totals instead of dropping them. Run under
// -race this also exercises the flight recorder's Start/Finish path
// against concurrent /v1/queries and history reads.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

var satHitsRe = regexp.MustCompile(`(?m)^cdb_satcache_hits_total ([0-9]+)$`)
var satMissesRe = regexp.MustCompile(`(?m)^cdb_satcache_misses_total ([0-9]+)$`)

func scrapeMetrics(url string) (string, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	return string(b), nil
}

func counterValue(t *testing.T, text string, re *regexp.Regexp) int64 {
	t.Helper()
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("exposition missing %v:\n%s", re, text)
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMetricsExpositionUnderSessionChurn(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)

	// post is a goroutine-safe variant of postJSON: it returns errors
	// instead of calling t.Fatalf (FailNow must not run off the test
	// goroutine).
	post := func(url, body string) (int, []byte, error) {
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// One full lifecycle per iteration: open, query (the
				// repeated shape keeps the sat-cache busy), close. The
				// close folds the session's cache counters into the
				// retired totals the scraper watches.
				status, body, err := post(ts.URL+"/v1/sessions", `{"par": 1, "sat_cache": 64}`)
				if err != nil || status != http.StatusCreated {
					t.Errorf("churn %d: open: %d %v", w, status, err)
					return
				}
				var info sessionInfo
				if err := json.Unmarshal(body, &info); err != nil {
					t.Errorf("churn %d: open decode: %v", w, err)
					return
				}
				status, body, err = post(ts.URL+"/v1/query", fmt.Sprintf(
					`{"session": %q, "query": "R = select x >= 1 from Land"}`, info.ID))
				if err != nil || status != http.StatusOK {
					t.Errorf("churn %d: query: %d %v %s", w, status, err, body)
					return
				}
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+info.ID, nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("churn %d: close: %v", w, err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}

	// Scrape concurrently with the churn: the sat-cache aggregates must
	// never move backwards, even as the sessions carrying their counters
	// come and go (the retired fold keeps the series monotone).
	var lastHits, lastMisses int64
	deadline := time.Now().Add(250 * time.Millisecond)
	for time.Now().Before(deadline) {
		text, err := scrapeMetrics(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		hits := counterValue(t, text, satHitsRe)
		misses := counterValue(t, text, satMissesRe)
		if hits < lastHits || misses < lastMisses {
			t.Fatalf("sat-cache counters moved backwards: hits %d->%d, misses %d->%d",
				lastHits, hits, lastMisses, misses)
		}
		lastHits, lastMisses = hits, misses
		// Concurrent reads of the flight surfaces must be safe too.
		if _, body := getJSON(t, ts.URL+"/v1/queries"); body == nil {
			t.Fatal("queries listing failed")
		}
		if _, body := getJSON(t, ts.URL+"/v1/queries/recent?limit=4"); body == nil {
			t.Fatal("recent listing failed")
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: every churn session closed itself, so nothing in the
	// exposition is time-varying and two consecutive scrapes are
	// byte-identical.
	a, err := scrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("idle scrapes differ:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if !strings.Contains(a, "cqacdbd_sessions_active 0") {
		t.Fatalf("churn sessions leaked:\n%s", grepLines(a, "sessions_active"))
	}
	if lastHits+lastMisses == 0 {
		t.Fatal("churn produced no sat-cache traffic; the monotonicity check was vacuous")
	}
}
