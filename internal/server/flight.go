package server

// The flight-recorder HTTP surface: the in-flight query inspector
// (GET /v1/queries, pg_stat_activity-style), cancel-by-id
// (DELETE /v1/queries/{id}), the bounded finished-query history
// (GET /v1/queries/recent, slow-query-log-style) and a human-readable
// rollup of both on /debug/queries. The recorder itself lives in
// internal/obs (obs.Flight); these handlers only render it.

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cdb/internal/exec"
	"cdb/internal/obs"
)

// statusClientClosedRequest is the nginx-convention 499 status for a
// query that ended because it was cancelled — by DELETE /v1/queries/{id}
// or by its client disconnecting — rather than by the deadline (504).
// The error envelope has the same shape either way.
const statusClientClosedRequest = 499

// handleQueriesActive serves GET /v1/queries: every query executing
// right now, with identity, session, statement, elapsed time and the
// pairing strategies its plan has chosen so far.
func (s *Server) handleQueriesActive(w http.ResponseWriter, r *http.Request) {
	active := s.flight.Active()
	if active == nil {
		active = []obs.ActiveQuery{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": active})
}

// handleQueriesRecent serves GET /v1/queries/recent?min_ms=&limit=: the
// history ring newest first, optionally filtered to queries at least
// min_ms of wall time (the slow-query view) and truncated to limit.
func (s *Server) handleQueriesRecent(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minWall time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad min_ms %q", v))
			return
		}
		minWall = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad limit %q", v))
			return
		}
		limit = n
	}
	recent := s.flight.Recent(minWall, limit)
	if recent == nil {
		recent = []obs.FlightRecord{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": recent})
}

// handleQueryCancel serves DELETE /v1/queries/{id}: it fires the
// query's context cancellation — the same path a deadline takes — so the
// query stops at its next claim-time checkpoint and finishes with
// outcome "canceled" and HTTP 499.
func (s *Server) handleQueryCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.flight.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no such query %q", id))
		return
	}
	s.log.Info("query cancel requested", "query", id)
	writeJSON(w, http.StatusOK, map[string]any{"canceled": id})
}

// handleQueriesDebug serves GET /debug/queries: the active registry and
// the recent tail as plain text for a human with curl.
func (s *Server) handleQueriesDebug(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	active := s.flight.Active()
	fmt.Fprintf(&b, "active queries: %d\n", len(active))
	for _, q := range active {
		fmt.Fprintf(&b, "  %-16s %-14s %10.1fms  %s", q.ID, q.Session, q.ElapsedMS, q.Statement)
		if len(q.Strategies) > 0 {
			fmt.Fprintf(&b, "  [%s]", strings.Join(q.Strategies, ","))
		}
		b.WriteByte('\n')
	}
	recent := s.flight.Recent(0, 20)
	fmt.Fprintf(&b, "\nrecent queries (newest first, %d shown of %d retained):\n",
		len(recent), s.flight.Len())
	for _, rec := range recent {
		fmt.Fprintf(&b, "  %-16s %-14s %-8s %10.1fms %7d rows  %s",
			rec.ID, rec.Session, rec.Outcome, rec.WallMS, rec.Rows, rec.Statement)
		if len(rec.Strategies) > 0 {
			fmt.Fprintf(&b, "  [%s q_error=%.1f]", strings.Join(rec.Strategies, ","), rec.QError)
		}
		b.WriteByte('\n')
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(b.String()))
}

// writeQueryError writes the standard error envelope plus the query's
// flight-recorder id, so a failed query's wire response joins against
// /v1/queries/recent and the query log.
func (s *Server) writeQueryError(w http.ResponseWriter, status int, msg, qid string) {
	writeJSON(w, status, map[string]any{"error": msg, "status": status, "query_id": qid})
}

// strategiesSoFar reads the distinct pairing strategies the session's
// running query has chosen so far, in first-use order — the "strategy so
// far" column of GET /v1/queries. The execution context's stats are
// mutex-guarded, so polling them concurrently with the query is safe.
func strategiesSoFar(ec *exec.Context) []string {
	var out []string
	seen := map[string]bool{}
	for _, op := range ec.Stats() {
		if op.Strategy != "" && !seen[op.Strategy] {
			seen[op.Strategy] = true
			out = append(out, op.Strategy)
		}
	}
	return out
}
