package server

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cdb/internal/exec"
	"cdb/internal/hurricane"
)

// The ISSUE acceptance bar: N ≥ 8 concurrent sessions issue interleaved
// multi-request programs and every response is byte-identical to what
// the REPL path (db.RunCtx + NormalizeWith, rendered by Sorted +
// String) produces for the same statement prefix.

// equivPrograms are per-session statement sequences. Each inner slice
// is one /v1/query request; a session's requests share bindings, so
// later requests reference earlier targets — exactly like typing the
// statements into one REPL.
var equivPrograms = [][][]string{
	{
		{"R0 = join Landownership and Land"},
		{"R1 = select t >= 4, t <= 9 from R0", "R2 = project R1 on name"},
	},
	{
		{"A = select x >= 6 from Land", "B = project A on landId"},
		{"C = join B and Landownership"},
	},
	{
		{"H = join Hurricane and Track"},
		{"H2 = select t >= 0 from H", "H3 = project H2 on x, y"},
	},
	{
		{"P = project Landownership on name, landId"},
		{"Q = join P and Land", "S = select x <= 8 from Q"},
	},
}

// referenceLines runs the first n statements of prog through the REPL
// execution path on a fresh database and renders the final result the
// way the server does.
func referenceLines(t *testing.T, prog []string, ec *exec.Context) (string, []string) {
	t.Helper()
	rel, err := hurricane.Build().RunCtx(strings.Join(prog, "\n"), ec)
	if err != nil {
		t.Fatalf("reference RunCtx(%q): %v", prog, err)
	}
	lines := make([]string, 0, len(rel.Sorted()))
	for _, tp := range rel.Sorted() {
		lines = append(lines, tp.String())
	}
	return rel.Schema().String(), lines
}

func TestConcurrentSessionsMatchREPL(t *testing.T) {
	const sessionsPerProgram = 3 // 4 programs × 3 = 12 concurrent sessions
	_, ts := newTestServer(t, Config{}, nil)

	var wg sync.WaitGroup
	for p, prog := range equivPrograms {
		for dup := 0; dup < sessionsPerProgram; dup++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				runEquivSession(t, ts, p, dup, prog)
			}()
		}
	}
	wg.Wait()
}

// runEquivSession opens one session, issues the program's requests in
// order, and checks each response against the REPL reference for the
// statement prefix executed so far.
func runEquivSession(t *testing.T, ts *httptest.Server, p, dup int, prog [][]string) {
	// Vary the knobs across duplicates so sequential and parallel
	// sessions are both represented in the same concurrent run.
	opts := [...]string{`{"par": 1}`, `{"par": 4}`, `{"par": 2, "sat_cache": 0}`}[dup%3]
	id := openSession(t, ts, opts)

	var prefix []string
	for _, stmts := range prog {
		prefix = append(prefix, stmts...)
		status, resp, body := runQueryReq(t, ts, fmt.Sprintf(
			`{"session": %q, "query": %q}`, id, strings.Join(stmts, "\n")))
		if status != 200 {
			t.Errorf("program %d dup %d: status %d: %s", p, dup, status, body)
			return
		}
		// The reference always runs sequentially without a cache: if the
		// server output matches it regardless of this session's knobs,
		// the parallel path is byte-identical too.
		wantSchema, wantLines := referenceLines(t, prefix, exec.New(1))
		if resp.Schema != wantSchema {
			t.Errorf("program %d dup %d after %q: schema %q, want %q",
				p, dup, prefix, resp.Schema, wantSchema)
			return
		}
		if len(resp.Tuples) != len(wantLines) {
			t.Errorf("program %d dup %d after %q: %d tuples, want %d\ngot:  %v\nwant: %v",
				p, dup, prefix, len(resp.Tuples), len(wantLines), resp.Tuples, wantLines)
			return
		}
		for i := range wantLines {
			if resp.Tuples[i] != wantLines[i] {
				t.Errorf("program %d dup %d after %q: tuple %d differs\ngot:  %s\nwant: %s",
					p, dup, prefix, i, resp.Tuples[i], wantLines[i])
				return
			}
		}
	}
}

// TestSessionIsolation: two sessions bind the same target name to
// different results; neither sees the other's binding, and the shared
// base database is untouched.
func TestSessionIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{}, nil)
	a := openSession(t, ts, ``)
	b := openSession(t, ts, ``)

	if status, _, _ := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "R = select x >= 6 from Land"}`, a)); status != 200 {
		t.Fatal("session a query failed")
	}
	if status, _, _ := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "R = project Landownership on name"}`, b)); status != 200 {
		t.Fatal("session b query failed")
	}

	// a's R is still the Land selection...
	status, resp, _ := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "Z = project R on landId"}`, a))
	if status != 200 || !strings.Contains(resp.Schema, "landId") {
		t.Fatalf("session a lost its binding: %d %q", status, resp.Schema)
	}
	// ...and b's R is the name projection.
	status, resp, _ = runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "Z = select name = ann from R"}`, b))
	if status != 200 || resp.Count != 1 {
		t.Fatalf("session b lost its binding: %d count=%d", status, resp.Count)
	}
	// A third, fresh session sees only the base relations: R undefined.
	c := openSession(t, ts, ``)
	if status, _, _ := runQueryReq(t, ts, fmt.Sprintf(
		`{"session": %q, "query": "Z = project R on landId"}`, c)); status != 422 {
		t.Fatalf("fresh session sees another session's binding: %d", status)
	}
}
